package lynx_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"lynx"
	"lynx/internal/apps/kvstore"
	"lynx/internal/workload"
)

// TestRackReplicaKillPublicAPI is the public-facade chaos scenario: an RF=3
// rack with invariants armed, node 1's accelerator frozen mid-run through
// the fault plane, a write workload against node 0. Every acknowledged write
// must survive on the surviving replicas, the dead peer must be detected,
// and request conservation must stay green.
func TestRackReplicaKillPublicAPI(t *testing.T) {
	const killAt = 6 * time.Millisecond
	ck := lynx.NewInvariantChecker()
	rack, err := lynx.BuildRack(lynx.RackConfig{
		Nodes: 3, Replicas: 3, Seed: 9, Check: ck,
		Faults: lynx.FaultConfig{
			Seed:   9,
			Stalls: []lynx.FaultStall{{Accel: "gpu1", Queue: -1, At: killAt, For: time.Hour}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := rack.OwnedKeys(0)
	if len(keys) == 0 {
		t.Fatal("node 0 owns no keys")
	}
	res := rack.Measure(workload.Config{
		Proto: workload.UDP, Target: rack.Node(0).Addr(), Payload: 64,
		Body: func(seq uint64, buf []byte) {
			copy(buf[workload.SeqBytes:],
				kvstore.EncodeSet(keys[seq%uint64(len(keys))], 0, []byte("public-api-value")))
		},
		Clients: 4, Duration: 20 * time.Millisecond, Warmup: 2 * time.Millisecond,
		Timeout: 2 * time.Millisecond, Retries: 3,
	})
	if res.Received == 0 {
		t.Fatal("no writes acknowledged")
	}
	repl := rack.Node(0).Repl
	if repl == nil {
		t.Fatal("RF=3 rack has no replication layer on node 0")
	}
	slot, ok := rack.PeerSlot(0, 1)
	if !ok {
		t.Fatal("node 1 is not a peer of node 0")
	}
	if !repl.PeerDead(slot) {
		t.Fatalf("killed peer not detected (stats %v)", repl.Stats())
	}
	if lag := repl.ReplicationLag(slot, killAt); lag <= 0 || lag > 50*time.Millisecond {
		t.Errorf("failover latency %v outside (0, 50ms]", lag)
	}
	// Zero lost acknowledged writes: the workload's acknowledged SETs all
	// wrote the same value, so it must be readable under every key any
	// surviving replica holds a newer-than-preload entry for.
	for _, ni := range []int{0, 2} {
		store := rack.Node(ni).Store
		found := 0
		for _, key := range keys {
			if v, _, ok := store.Get(key); ok && string(v) == "public-api-value" {
				found++
			}
		}
		if found == 0 {
			t.Errorf("node %d holds no acknowledged writes", ni)
		}
	}
	rack.Close()
	if rep := ck.Snapshot(); !rep.OK() {
		t.Errorf("invariants: %s", rep)
	}
}

// TestRackShardMapPublicAPI exercises the standalone shard-map facade.
func TestRackShardMapPublicAPI(t *testing.T) {
	m := lynx.NewShardMap(0)
	for _, n := range []string{"a", "b", "c"} {
		if err := m.Join(n); err != nil {
			t.Fatal(err)
		}
	}
	owned := map[string]int{}
	for s := 0; s < m.Shards(); s++ {
		owner, ok := m.Owner(s)
		if !ok {
			t.Fatalf("shard %d unowned", s)
		}
		owned[owner]++
	}
	if len(owned) != 3 {
		t.Errorf("ownership concentrated on %d of 3 members: %v", len(owned), owned)
	}
}

// TestRackDeterminismPublicAPI replays the same seeded rack twice and
// requires identical results through the public facade.
func TestRackDeterminismPublicAPI(t *testing.T) {
	run := func() (string, string) {
		rack, err := lynx.BuildRack(lynx.RackConfig{Nodes: 3, Replicas: 2, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		keys := rack.OwnedKeys(0)
		res := rack.Measure(workload.Config{
			Proto: workload.UDP, Target: rack.Node(0).Addr(), Payload: 64,
			Body: func(seq uint64, buf []byte) {
				copy(buf[workload.SeqBytes:],
					kvstore.EncodeSet(keys[seq%uint64(len(keys))], 0, []byte("determinism-value")))
			},
			Clients: 4, Duration: 5 * time.Millisecond, Warmup: time.Millisecond,
		})
		stats := ""
		if repl := rack.Node(0).Repl; repl != nil {
			stats = repl.Stats().String()
		}
		rack.Close()
		return fmt.Sprintf("sent=%d received=%d p99=%v", res.Sent, res.Received, res.Hist.P99()), stats
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1 != r2 || s1 != s2 {
		t.Errorf("seeded rack runs diverged:\n  %s | %s\n  %s | %s", r1, s1, r2, s2)
	}
}

// TestRackWriteClassifier pins the wire-format contract the rack's dispatch
// classifier relies on: the 8-byte id header followed by a memcached ASCII
// set/delete, whose key bytes shard identically to the string form.
func TestRackWriteClassifier(t *testing.T) {
	m := lynx.NewShardMap(64)
	req := kvstore.EncodeSet("key-042", 0, []byte("v"))
	payload := make([]byte, workload.SeqBytes+len(req))
	binary.LittleEndian.PutUint64(payload, 7)
	copy(payload[workload.SeqBytes:], req)
	body := payload[workload.SeqBytes:]
	if !bytes.HasPrefix(body, []byte("set key-042 ")) {
		t.Fatalf("unexpected set encoding: %q", body)
	}
	if got, want := m.ShardOfBytes([]byte("key-042")), m.ShardOf("key-042"); got != want {
		t.Errorf("byte and string shard hashes disagree: %d vs %d", got, want)
	}
}
