package lynx_test

import (
	"fmt"
	"testing"
	"time"

	"lynx"
	"lynx/internal/workload"
)

// batchEchoRun builds the canonical echo deployment with the given extra
// options, drives it, and returns a fingerprint of everything observable:
// workload counters, latency percentiles, and the server's runtime stats.
func batchEchoRun(extra ...lynx.Option) string {
	opts := append([]lynx.Option{lynx.WithSeed(99)}, extra...)
	cluster := lynx.NewCluster(opts...)
	defer cluster.Close()
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", lynx.K40m, false, "server1")
	client := cluster.AddClient("client1")
	srv := cluster.NewServer(bf.Platform(7))
	// 8 queues at a 5us kernel produce TX completions faster than the MQ
	// manager's sweep, so drain runs longer than one message actually form.
	h, _ := srv.Register(gpu, lynx.QueueConfig{Kind: lynx.ServerQueue, Slots: 16, SlotSize: 128}, 8)
	svc, _ := srv.AddService(lynx.UDP, 7000, nil, 8, h)
	qs := h.AccelQueues()
	gpu.LaunchPersistent(cluster.Testbed().Sim, 8, func(tb *lynx.TB) {
		q := qs[tb.Index()]
		for {
			m := q.Recv(tb.Proc())
			tb.Compute(5 * time.Microsecond)
			if q.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
				return
			}
		}
	})
	srv.Start()
	// Enough concurrent clients that dispatch bursts actually form; a lighter
	// load degenerates every batch to runs of one message.
	res := cluster.MeasureLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: svc.Addr(), Payload: 64,
		Clients: 32, Duration: 5 * time.Millisecond, Warmup: time.Millisecond,
	}, client)
	return fmt.Sprintf("%d/%d/%v/%v/%v",
		res.Sent, res.Received, res.Hist.Median(), res.Hist.P99(), srv.Stats())
}

// The explicit all-ones batching configuration must be semantically invisible:
// a run with WithBatching(batch size 1 everywhere) is byte-identical to a run
// with no batching option at all — same virtual-time results, same stats.
func TestWithBatchingUnitByteIdentical(t *testing.T) {
	plain := batchEchoRun()
	unit := batchEchoRun(lynx.WithBatching(lynx.BatchConfig{Doorbell: 1, CQDrain: 1, Quantum: 1}))
	if plain != unit {
		t.Fatalf("unit batching changed observable results:\n  plain: %s\n  unit:  %s", plain, unit)
	}
}

// Batched runs must stay deterministic (same seed, same config, same bytes)
// and actually deliver the workload.
func TestWithBatchingDeterministicAndLive(t *testing.T) {
	a := batchEchoRun(lynx.WithBatching(lynx.DefaultBatchConfig()))
	b := batchEchoRun(lynx.WithBatching(lynx.DefaultBatchConfig()))
	if a != b {
		t.Fatalf("batched run nondeterministic:\n  %s\n  %s", a, b)
	}
	if a == batchEchoRun() {
		t.Fatal("default batching produced bit-identical results to unbatched — batched paths likely never ran")
	}
}

// A batched run with runtime invariants armed and the profiling plane active
// must finish with zero violations and a coherent profile.
func TestWithBatchingInvariantsClean(t *testing.T) {
	cluster := lynx.NewCluster(
		lynx.WithSeed(5),
		lynx.WithBatching(lynx.BatchConfig{Doorbell: 4, CQDrain: 8, Quantum: 4, CoalesceWindow: 2 * time.Microsecond}),
		lynx.WithInvariants(),
		lynx.WithProfile(),
	)
	defer cluster.Close()
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", lynx.K40m, false, "server1")
	client := cluster.AddClient("client1")
	srv := cluster.NewServer(bf.Platform(7))
	h, err := srv.Register(gpu, lynx.QueueConfig{Kind: lynx.ServerQueue, Slots: 16, SlotSize: 128}, 4)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := srv.AddService(lynx.UDP, 7000, nil, 4, h)
	if err != nil {
		t.Fatal(err)
	}
	qs := h.AccelQueues()
	gpu.LaunchPersistent(cluster.Testbed().Sim, 4, func(tb *lynx.TB) {
		q := qs[tb.Index()]
		for {
			m := q.Recv(tb.Proc())
			tb.Compute(20 * time.Microsecond)
			if q.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
				return
			}
		}
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	res := cluster.MeasureLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: svc.Addr(), Payload: 64,
		Clients: 8, Duration: 10 * time.Millisecond, Warmup: time.Millisecond,
	}, client)
	if res.Received < 100 {
		t.Fatalf("batched deployment answered only %d requests", res.Received)
	}
	if rep := cluster.InvariantReport(); !rep.OK() {
		t.Fatalf("invariant violations under batching:\n%v", rep)
	}
	prof := cluster.ProfileReport()
	if prof.SpansClosed == 0 {
		t.Fatal("profiling plane recorded no closed spans under batching")
	}
}

// WithBatching must reject invalid configurations at cluster construction.
func TestWithBatchingInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCluster accepted a negative doorbell batch size")
		}
	}()
	lynx.NewCluster(lynx.WithBatching(lynx.BatchConfig{Doorbell: -2, CQDrain: 1, Quantum: 1}))
}
