// benchcmp compares two `go test -bench` output files statistically, in the
// spirit of benchstat but with no dependency outside the standard library
// (this repo builds offline). For every benchmark name and metric present in
// both files it reports the median before/after, the delta, and a two-sided
// Mann-Whitney U significance test at α=0.05; insignificant deltas are
// marked "~" so noise is not misread as change.
//
// Usage:
//
//	benchcmp old.txt new.txt [-json out.json]
//
// The optional -json file records the full comparison (per-metric samples,
// medians, delta, p-value) for archival and for embedding into regression
// sentinel artifacts (lynxbench -baseline -bench-json out.json). The
// statistics and the row schema live in internal/bench, shared with the
// sentinel's diff machinery.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lynx/internal/bench"
)

func main() {
	jsonOut := flag.String("json", "", "also write the full comparison as JSON to this file")
	flag.CommandLine.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchcmp old.txt new.txt [-json out.json]\n")
		flag.PrintDefaults()
	}
	// Accept flags after the two positional file arguments too.
	args := os.Args[1:]
	var files []string
	var flags []string
	for i := 0; i < len(args); i++ {
		if strings.HasPrefix(args[i], "-") {
			flags = append(flags, args[i])
			if args[i] == "-json" && i+1 < len(args) {
				flags = append(flags, args[i+1])
				i++
			}
			continue
		}
		files = append(files, args[i])
	}
	if err := flag.CommandLine.Parse(flags); err != nil {
		os.Exit(2)
	}
	if len(files) != 2 {
		flag.CommandLine.Usage()
		os.Exit(2)
	}
	oldS, oldOrder, err := bench.ParseFile(files[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	newS, newOrder, err := bench.ParseFile(files[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}

	cmp := bench.Compare(oldS, newS, oldOrder, newOrder)
	cmp.OldFile, cmp.NewFile = files[0], files[1]
	fmt.Print(cmp.Table())

	if *jsonOut != "" {
		if err := cmp.WriteFile(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(1)
		}
	}
}
