// benchcmp compares two `go test -bench` output files statistically, in the
// spirit of benchstat but with no dependency outside the standard library
// (this repo builds offline). For every benchmark name and metric present in
// both files it reports the median before/after, the delta, and a two-sided
// Mann-Whitney U significance test at α=0.05; insignificant deltas are
// marked "~" so noise is not misread as change.
//
// Usage:
//
//	benchcmp old.txt new.txt [-json out.json]
//
// The optional -json file records the full comparison (per-metric samples,
// medians, delta, p-value) for archival, e.g. BENCH_PR7.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sampleKey identifies one metric series of one benchmark.
type sampleKey struct {
	Bench  string
	Metric string
}

// parseBench reads go-test benchmark output: lines of the form
//
//	BenchmarkName-8  1234  5678 ns/op  90 events/sec  0 B/op  0 allocs/op
//
// and returns metric samples keyed by (name, unit). The -N GOMAXPROCS
// suffix is stripped so files from different machines still line up.
func parseBench(path string) (map[sampleKey][]float64, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	samples := make(map[sampleKey][]float64)
	var order []string
	seen := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if !seen[name] {
			seen[name] = true
			order = append(order, name)
		}
		// fields[1] is the iteration count; after that, (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			k := sampleKey{Bench: name, Metric: fields[i+1]}
			samples[k] = append(samples[k], v)
		}
	}
	return samples, order, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mannWhitneyP returns the two-sided p-value of the Mann-Whitney U test via
// the normal approximation with tie correction — adequate for the n≈10
// sample counts benchmark comparisons use (and the same default benchstat
// falls back to at larger n).
func mannWhitneyP(a, b []float64) float64 {
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 == 0 || n2 == 0 {
		return 1
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Midranks with tie accounting.
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u := r1 - n1*(n1+1)/2
	mu := n1 * n2 / 2
	n := n1 + n2
	sigma2 := n1 * n2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		// All values identical: no evidence of difference.
		return 1
	}
	z := (u - mu) / math.Sqrt(sigma2)
	// Continuity correction toward the mean.
	if z > 0 {
		z -= 0.5 / math.Sqrt(sigma2)
	} else if z < 0 {
		z += 0.5 / math.Sqrt(sigma2)
	}
	return 2 * (1 - stdNormalCDF(math.Abs(z)))
}

func stdNormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// row is one (benchmark, metric) comparison in the JSON record.
type row struct {
	Benchmark   string    `json:"benchmark"`
	Metric      string    `json:"metric"`
	OldSamples  []float64 `json:"old_samples"`
	NewSamples  []float64 `json:"new_samples"`
	OldMedian   float64   `json:"old_median"`
	NewMedian   float64   `json:"new_median"`
	DeltaPct    float64   `json:"delta_pct"`
	PValue      float64   `json:"p_value"`
	Significant bool      `json:"significant"`
}

func main() {
	jsonOut := flag.String("json", "", "also write the full comparison as JSON to this file")
	flag.CommandLine.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchcmp old.txt new.txt [-json out.json]\n")
		flag.PrintDefaults()
	}
	// Accept flags after the two positional file arguments too.
	args := os.Args[1:]
	var files []string
	var flags []string
	for i := 0; i < len(args); i++ {
		if strings.HasPrefix(args[i], "-") {
			flags = append(flags, args[i])
			if args[i] == "-json" && i+1 < len(args) {
				flags = append(flags, args[i+1])
				i++
			}
			continue
		}
		files = append(files, args[i])
	}
	if err := flag.CommandLine.Parse(flags); err != nil {
		os.Exit(2)
	}
	if len(files) != 2 {
		flag.CommandLine.Usage()
		os.Exit(2)
	}
	oldS, oldOrder, err := parseBench(files[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	newS, newOrder, err := parseBench(files[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}

	// Stable report order: benchmarks as they appear in the old file, then
	// new-only ones; within a benchmark, a fixed metric order.
	metricOrder := []string{"ns/op", "events/sec", "B/op", "allocs/op"}
	benches := append([]string(nil), oldOrder...)
	for _, b := range newOrder {
		found := false
		for _, o := range oldOrder {
			if o == b {
				found = true
				break
			}
		}
		if !found {
			benches = append(benches, b)
		}
	}

	var rows []row
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-44s %-11s %14s %14s %9s %8s\n", "benchmark", "metric", "old median", "new median", "delta", "p")
	for _, b := range benches {
		for _, m := range metricOrder {
			k := sampleKey{Bench: b, Metric: m}
			o, haveOld := oldS[k]
			n, haveNew := newS[k]
			switch {
			case haveOld && haveNew:
				om, nm := median(o), median(n)
				p := mannWhitneyP(o, n)
				sig := p < 0.05
				delta := 0.0
				if om != 0 {
					delta = (nm - om) / om * 100
				}
				ds := fmt.Sprintf("%+.1f%%", delta)
				if !sig {
					ds = "~"
				}
				fmt.Fprintf(w, "%-44s %-11s %14.1f %14.1f %9s %8.3f\n", b, m, om, nm, ds, p)
				rows = append(rows, row{
					Benchmark: b, Metric: m,
					OldSamples: o, NewSamples: n,
					OldMedian: om, NewMedian: nm,
					DeltaPct: delta, PValue: p, Significant: sig,
				})
			case haveNew:
				nm := median(n)
				fmt.Fprintf(w, "%-44s %-11s %14s %14.1f %9s %8s\n", b, m, "(new)", nm, "", "")
				rows = append(rows, row{
					Benchmark: b, Metric: m,
					NewSamples: n, OldMedian: math.NaN(), NewMedian: nm,
					DeltaPct: math.NaN(), PValue: math.NaN(),
				})
			case haveOld:
				om := median(o)
				fmt.Fprintf(w, "%-44s %-11s %14.1f %14s %9s %8s\n", b, m, om, "(gone)", "", "")
			}
		}
	}

	if *jsonOut != "" {
		// NaN is not valid JSON; strip it to nulls via a shadow struct.
		type jrow struct {
			Benchmark   string    `json:"benchmark"`
			Metric      string    `json:"metric"`
			OldSamples  []float64 `json:"old_samples,omitempty"`
			NewSamples  []float64 `json:"new_samples,omitempty"`
			OldMedian   *float64  `json:"old_median,omitempty"`
			NewMedian   *float64  `json:"new_median,omitempty"`
			DeltaPct    *float64  `json:"delta_pct,omitempty"`
			PValue      *float64  `json:"p_value,omitempty"`
			Significant bool      `json:"significant"`
		}
		opt := func(v float64) *float64 {
			if math.IsNaN(v) {
				return nil
			}
			return &v
		}
		out := struct {
			Old  string `json:"old_file"`
			New  string `json:"new_file"`
			Rows []jrow `json:"rows"`
		}{Old: files[0], New: files[1]}
		for _, r := range rows {
			out.Rows = append(out.Rows, jrow{
				Benchmark: r.Benchmark, Metric: r.Metric,
				OldSamples: r.OldSamples, NewSamples: r.NewSamples,
				OldMedian: opt(r.OldMedian), NewMedian: opt(r.NewMedian),
				DeltaPct: opt(r.DeltaPct), PValue: opt(r.PValue),
				Significant: r.Significant,
			})
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(1)
		}
	}
}
