// Command lynxtopo describes the simulated testbed and dumps the calibrated
// hardware model constants, so a reader can inspect exactly what the
// reproduction assumes about the paper's hardware.
//
// Usage:
//
//	lynxtopo            # topology summary + calibrated constants
//	lynxtopo -json      # the same, as a structured metrics-registry dump
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lynx/internal/accel"
	"lynx/internal/metrics"
	"lynx/internal/model"
	"lynx/internal/snic"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lynxtopo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit a structured JSON dump instead of text")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	p := model.Default()
	tb := snic.NewTestbed(1, &p)
	server := tb.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", accel.K40m, false, "server1")
	remote := tb.NewMachine("server2", 6)
	rgpu := remote.AddGPU("gpu1", accel.K80Half, false, "server1")
	vca := server.AddVCA("vca0")
	tb.AddClient("client1")
	tb.AddClient("client2")
	if err := tb.Validate(server, remote); err != nil {
		fmt.Fprintln(stderr, "lynxtopo:", err)
		return 1
	}

	if *jsonOut {
		usec := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
		reg := metrics.NewRegistry()
		reg.AddStats("topology", func() []metrics.Stat {
			return []metrics.Stat{
				{Name: "server_cores", Value: 6},
				{Name: "bluefield_arm_cores", Value: 8},
				{Name: "gpu_max_threadblocks", Value: float64(gpu.MaxThreadblocks())},
				{Name: "vca_nodes", Value: float64(vca.Nodes())},
				{Name: "nic_gpu_pcie_hops", Value: float64(tb.Fab.Distance(bf.NIC, gpu.Device()))},
				{Name: "nic_remote_gpu_hops", Value: float64(tb.Fab.Distance(bf.NIC, rgpu.Device()))},
			}
		})
		reg.AddStats("model", func() []metrics.Stat {
			return []metrics.Stat{
				{Name: "wire_bandwidth_gbps", Value: p.WireBandwidth / 1e9},
				{Name: "udp_process_vma_us", Value: usec(p.UDPProcessVMA)},
				{Name: "udp_process_kernel_us", Value: usec(p.UDPProcessKernel)},
				{Name: "tcp_mult_vma", Value: p.TCPMultVMA},
				{Name: "arm_syscall_penalty", Value: p.ARMSyscallPenalty},
				{Name: "stack_serial_fraction", Value: p.StackSerialFraction},
				{Name: "pcie_latency_us", Value: usec(p.PCIeLatency)},
				{Name: "pcie_bandwidth_gbps", Value: p.PCIeBandwidth / 1e9},
				{Name: "rdma_issue_us", Value: usec(p.RDMAIssue)},
				{Name: "rdma_engine_us", Value: usec(p.RDMAEngine)},
				{Name: "kernel_launch_us", Value: usec(p.KernelLaunch)},
				{Name: "gpu_poll_interval_us", Value: usec(p.GPUPollInterval)},
				{Name: "lenet_service_k40_us", Value: usec(p.LeNetServiceK40)},
				{Name: "innova_pipeline_us", Value: usec(p.InnovaPipeline)},
				{Name: "sgx_transition_us", Value: usec(p.SGXTransition)},
				{Name: "memcached_op_xeon_us", Value: usec(p.MemcachedOpXeon)},
			}
		})
		if err := reg.Dump(stdout); err != nil {
			fmt.Fprintln(stderr, "lynxtopo:", err)
			return 1
		}
		return 0
	}

	fmt.Fprintln(stdout, "Reference topology (the paper's testbed, §6):")
	fmt.Fprintf(stdout, "  server1: 6 Xeon cores, BlueField SNIC (8x ARM A72), %s (%d TBs), %s (3x E3/SGX)\n",
		gpu.Name(), gpu.MaxThreadblocks(), vca.Name())
	fmt.Fprintf(stdout, "  server2: 6 Xeon cores, ConnectX NIC, remote %s (%s)\n", rgpu.Name(), rgpu.Model())
	fmt.Fprintln(stdout, "  clients: client1, client2 (sockperf-style load generators)")
	fmt.Fprintf(stdout, "  fabric : NIC->GPU hops = %d (PCIe), remote GPU via wire backbone\n",
		tb.Fab.Distance(bf.NIC, gpu.Device()))

	fmt.Fprintln(stdout, "\nCalibrated model constants (see internal/model for provenance):")
	rows := []struct {
		name  string
		value any
	}{
		{"wire bandwidth", fmt.Sprintf("%.0f Gb/s", p.WireBandwidth/1e9)},
		{"UDP per-packet CPU (VMA, Xeon)", p.UDPProcessVMA},
		{"UDP per-packet CPU (kernel, Xeon)", p.UDPProcessKernel},
		{"TCP multiplier (VMA/kernel)", fmt.Sprintf("%.0fx / %.0fx", p.TCPMultVMA, p.TCPMultKernel)},
		{"ARM syscall penalty", fmt.Sprintf("%.1fx", p.ARMSyscallPenalty)},
		{"stack serial fraction", fmt.Sprintf("%.0f%%", p.StackSerialFraction*100)},
		{"PCIe latency / bandwidth", fmt.Sprintf("%v / %.0f Gb/s", p.PCIeLatency, p.PCIeBandwidth/1e9)},
		{"RDMA issue / engine", fmt.Sprintf("%v / %v", p.RDMAIssue, p.RDMAEngine)},
		{"RDMA remote penalty (per hop)", p.RDMARemotePenalty},
		{"RDMA read barrier (§5.1)", p.RDMAReadBarrier},
		{"cudaMemcpyAsync setup", p.CudaMemcpyAsyncSetup},
		{"kernel launch / stream sync", fmt.Sprintf("%v / %v", p.KernelLaunch, p.StreamSync)},
		{"GPU max threadblocks (K40m)", p.GPUMaxThreadblocks},
		{"GPU poll interval / local access", fmt.Sprintf("%v / %v", p.GPUPollInterval, p.GPULocalAccess)},
		{"LeNet service (K40m / K80)", fmt.Sprintf("%v / %v", p.LeNetServiceK40, p.LeNetServiceK80)},
		{"face-verify kernel", p.FaceVerifyService},
		{"Innova AFU pipeline", p.InnovaPipeline},
		{"SGX transition", p.SGXTransition},
		{"memcached op (Xeon)", p.MemcachedOpXeon},
	}
	for _, r := range rows {
		fmt.Fprintf(stdout, "  %-36s %v\n", r.name, r.value)
	}
	return 0
}
