package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunText(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"Reference topology", "BlueField", "Calibrated model constants", "wire bandwidth"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text output missing %q", want)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(doc) == 0 {
		t.Fatal("-json output empty")
	}
	if !strings.Contains(out.String(), "wire_bandwidth_gbps") {
		t.Error("-json output missing model constants")
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "lynxtopo") {
		t.Error("usage not printed to stderr")
	}
}
