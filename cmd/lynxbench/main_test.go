package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"fig6", "fig7", "scorecard", "sec62-innova"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "no-such-experiment"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown experiment: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Error("error not printed to stderr")
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestSmallExperimentWithInvariants(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "sec51-barrier", "-scale", "0.1", "-invariants"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	s := out.String()
	if !strings.Contains(s, "sec51-barrier") {
		t.Error("report missing")
	}
	if !strings.Contains(s, "invariants: ok") {
		t.Errorf("invariant summary missing:\n%s", s)
	}
}

func TestCSVOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "sec511-vma", "-scale", "0.1", "-csv"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "sec511-vma,") {
		t.Errorf("CSV output malformed:\n%s", out.String())
	}
}

func TestTopAndProfileJSONFlags(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prof.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "breakdown", "-scale", "0.1", "-top", "3", "-profile-json", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "slowest requests") || !strings.Contains(s, "span ") {
		t.Errorf("-top table missing:\n%s", s)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("-profile-json wrote nothing: %v", err)
	}
	var rep map[string]any
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("profile JSON invalid: %v", err)
	}
	for _, key := range []string{"spans_closed", "phases", "bottlenecks", "top"} {
		if _, ok := rep[key]; !ok {
			t.Errorf("profile JSON missing %q", key)
		}
	}
}

func TestSentinelBaselineAndCompareFlags(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-baseline", path, "-scale", "0.1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("-baseline exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "sentinel baseline written") {
		t.Errorf("baseline confirmation missing:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("-baseline wrote nothing: %v", err)
	}
	var art map[string]any
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("artifact JSON invalid: %v", err)
	}
	for _, key := range []string{"version", "fingerprint", "report", "scorecard", "knees"} {
		if _, ok := art[key]; !ok {
			t.Errorf("artifact missing %q", key)
		}
	}
	// Diffing the artifact against its own bytes must report no change.
	out.Reset()
	errOut.Reset()
	code = run([]string{"-compare", path, "-compare-to", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("self-compare exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "no change") {
		t.Errorf("self-compare did not report no change:\n%s", out.String())
	}
}

func TestSentinelFlagsMutuallyExclusive(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", "a.json", "-compare", "b.json"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "mutually exclusive") {
		t.Errorf("usage error missing: %s", errOut.String())
	}
}

func TestSentinelCompareRejectsVersionSkew(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.json")
	if err := os.WriteFile(path, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-compare", path, "-compare-to", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "version") {
		t.Errorf("skew error missing: %s", errOut.String())
	}
}
