package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"fig6", "fig7", "scorecard", "sec62-innova"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "no-such-experiment"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown experiment: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Error("error not printed to stderr")
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestSmallExperimentWithInvariants(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "sec51-barrier", "-scale", "0.1", "-invariants"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	s := out.String()
	if !strings.Contains(s, "sec51-barrier") {
		t.Error("report missing")
	}
	if !strings.Contains(s, "invariants: ok") {
		t.Errorf("invariant summary missing:\n%s", s)
	}
}

func TestCSVOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "sec511-vma", "-scale", "0.1", "-csv"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "sec511-vma,") {
		t.Errorf("CSV output malformed:\n%s", out.String())
	}
}

func TestTopAndProfileJSONFlags(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prof.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "breakdown", "-scale", "0.1", "-top", "3", "-profile-json", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "slowest requests") || !strings.Contains(s, "span ") {
		t.Errorf("-top table missing:\n%s", s)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("-profile-json wrote nothing: %v", err)
	}
	var rep map[string]any
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("profile JSON invalid: %v", err)
	}
	for _, key := range []string{"spans_closed", "phases", "bottlenecks", "top"} {
		if _, ok := rep[key]; !ok {
			t.Errorf("profile JSON missing %q", key)
		}
	}
}
