// Command lynxbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	lynxbench -list                 # list experiments
//	lynxbench -exp fig8a            # run one experiment
//	lynxbench -exp all              # run everything
//	lynxbench -exp fig6 -scale 0.5  # shorter measurement windows
//	lynxbench -seed 7               # different deterministic seed
//
// Output is a text table per experiment, with the paper's numbers alongside
// the measured ones. Runs are bit-reproducible for a given seed and scale.
package main

import (
	csvpkg "encoding/csv"
	"flag"
	"fmt"
	"os"
	"time"

	"lynx/internal/experiments"
	"lynx/internal/fault"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run, or 'all'")
		list  = flag.Bool("list", false, "list available experiments")
		seed  = flag.Uint64("seed", 1, "simulation seed")
		scale = flag.Float64("scale", 1.0, "measurement window scale factor")
		csv   = flag.Bool("csv", false, "emit CSV instead of text tables")
		loss  = flag.Float64("loss", 0, "inject datagram drop probability into every experiment (0..1)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.List() {
			fmt.Printf("  %-18s %s\n", id, experiments.Describe(id))
		}
		if *exp == "" {
			fmt.Println("\nrun one with: lynxbench -exp <id>   (or -exp all)")
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.List()
	}
	cfg := experiments.Config{Seed: *seed, Scale: *scale}
	if *loss > 0 {
		cfg.Faults = fault.Config{Seed: *seed, DropRate: *loss}
	}
	for _, id := range ids {
		start := time.Now()
		report, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lynxbench:", err)
			os.Exit(1)
		}
		if *csv {
			writeCSV(report)
			continue
		}
		fmt.Println(report)
		fmt.Printf("  (%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}
}

// writeCSV emits one experiment as CSV rows (experiment, row, column, value)
// for plotting pipelines.
func writeCSV(r *experiments.Report) {
	w := csvpkg.NewWriter(os.Stdout)
	defer w.Flush()
	for _, row := range r.Rows {
		for i, cell := range row.Cells {
			col := ""
			if i < len(r.Columns) {
				col = r.Columns[i]
			}
			w.Write([]string{r.ID, row.Name, col, cell})
		}
	}
}
