// Command lynxbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	lynxbench -list                 # list experiments
//	lynxbench -exp fig8a            # run one experiment
//	lynxbench -exp all              # run everything
//	lynxbench -exp fig6 -scale 0.5  # shorter measurement windows
//	lynxbench -seed 7               # different deterministic seed
//	lynxbench -exp all -parallel 1  # force sequential sweeps
//
// Output is a text table per experiment, with the paper's numbers alongside
// the measured ones. Runs are bit-reproducible for a given seed and scale:
// independent sweep points fan out across workers (one simulation per
// worker), but results are collected by index, so the report does not depend
// on -parallel.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"lynx/internal/experiments"
	"lynx/internal/fault"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id to run, or 'all'")
		list       = flag.Bool("list", false, "list available experiments")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		scale      = flag.Float64("scale", 1.0, "measurement window scale factor")
		csv        = flag.Bool("csv", false, "emit CSV instead of text tables")
		loss       = flag.Float64("loss", 0, "inject datagram drop probability into every experiment (0..1)")
		parallel   = flag.Int("parallel", 0, "sweep workers: 0 = one per CPU, 1 = sequential, n = n workers")
		traceJSON  = flag.String("trace-json", "", "write a Chrome trace-event timeline from instrumented experiments (breakdown) to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.List() {
			fmt.Printf("  %-18s %s\n", id, experiments.Describe(id))
		}
		if *exp == "" {
			fmt.Println("\nrun one with: lynxbench -exp <id>   (or -exp all)")
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lynxbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lynxbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.List()
	}
	workers := *parallel
	if workers <= 0 {
		workers = experiments.AutoWorkers
	}
	cfg := experiments.Config{Seed: *seed, Scale: *scale, Workers: workers, TraceJSON: *traceJSON}
	if *loss > 0 {
		cfg.Faults = fault.Config{Seed: *seed, DropRate: *loss}
	}
	for _, id := range ids {
		start := time.Now()
		report, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lynxbench:", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(report.CSV())
			continue
		}
		fmt.Println(report)
		fmt.Printf("  (%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lynxbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lynxbench:", err)
			os.Exit(1)
		}
	}
}
