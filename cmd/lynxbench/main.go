// Command lynxbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	lynxbench -list                 # list experiments
//	lynxbench -exp fig8a            # run one experiment
//	lynxbench -exp all              # run everything
//	lynxbench -exp fig6 -scale 0.5  # shorter measurement windows
//	lynxbench -seed 7               # different deterministic seed
//	lynxbench -exp all -parallel 1  # force sequential sweeps
//	lynxbench -exp all -invariants  # assert runtime invariants on every run
//	lynxbench -exp attribution -profile-json prof.json
//	                                # dump the tail-latency attribution report
//	lynxbench -exp fig6 -top 10     # table of the 10 slowest requests
//	lynxbench -exp fig6 -batch 8    # end-to-end batching (doorbell, CQ drain,
//	                                # dispatcher quantum) of 8 on every run
//	lynxbench -baseline out.json    # measure and persist a regression-sentinel
//	                                # baseline artifact (attribution report,
//	                                # scorecard, knee predictions)
//	lynxbench -compare old.json     # re-measure and diff against a baseline;
//	                                # non-zero exit when anything moved out of
//	                                # its noise band
//	lynxbench -compare a.json -compare-to b.json
//	                                # diff two recorded artifacts, no measuring
//
// Output is a text table per experiment, with the paper's numbers alongside
// the measured ones. Runs are bit-reproducible for a given seed and scale:
// independent sweep points fan out across workers (one simulation per
// worker), but results are collected by index, so the report does not depend
// on -parallel.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"lynx/internal/check"
	"lynx/internal/experiments"
	"lynx/internal/fault"
	"lynx/internal/model"
	"lynx/internal/sentinel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lynxbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "", "experiment id to run, or 'all'")
		list       = fs.Bool("list", false, "list available experiments")
		seed       = fs.Uint64("seed", 1, "simulation seed")
		scale      = fs.Float64("scale", 1.0, "measurement window scale factor")
		csv        = fs.Bool("csv", false, "emit CSV instead of text tables")
		loss       = fs.Float64("loss", 0, "inject datagram drop probability into every experiment (0..1)")
		parallel   = fs.Int("parallel", 0, "sweep workers: 0 = one per CPU, 1 = sequential, n = n workers")
		invariants = fs.Bool("invariants", false, "arm runtime invariant checks on every simulation; non-zero exit on any violation")
		batch      = fs.Int("batch", 0, "doorbell batch size for every experiment run (0 = unbatched; experiments that pin their own batching, like -exp batch, are unaffected)")
		batchCQ    = fs.Int("batch-cq", 0, "completion/TX drain budget (0 = follow -batch)")
		batchQuant = fs.Int("batch-quantum", 0, "dispatcher scheduling quantum in messages (0 = follow -batch)")
		traceJSON  = fs.String("trace-json", "", "write a Chrome trace-event timeline from instrumented experiments (breakdown) to this file")
		rackTrace  = fs.String("rack-trace-json", "", "write the rack-wide Chrome trace-event timeline (one process-track block per node) from rack experiments (replbreakdown) to this file")
		rackMet    = fs.String("rack-metrics-json", "", "write the deterministic rack telemetry rollup (per-node stats and monitor series) from rack experiments (replbreakdown) to this file")
		profJSON   = fs.String("profile-json", "", "write the tail-latency attribution report (wait/service decomposition, bottleneck ranking, flight recorder) from instrumented experiments (breakdown, attribution) to this file")
		topN       = fs.Int("top", 0, "print the N slowest requests (status, per-phase wait/service) after the runs")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		baseline   = fs.String("baseline", "", "measure a regression-sentinel baseline (attribution report, scorecard, knee predictions) and write the artifact to this file")
		compare    = fs.String("compare", "", "diff the current build against this baseline artifact: re-measure (or use -compare-to) and report attribution-level moves outside their noise bands")
		compareTo  = fs.String("compare-to", "", "with -compare, diff against this recorded artifact instead of re-measuring")
		benchJSON  = fs.String("bench-json", "", "embed this cmd/benchcmp -json recording into the baseline artifact (make bench-compare writes bench/benchcmp.json)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *baseline != "" || *compare != "" {
		workers := *parallel
		if workers <= 0 {
			workers = experiments.AutoWorkers
		}
		bc, err := model.BatchConfigFromFlags(*batch, *batchCQ, *batchQuant)
		if err != nil {
			fmt.Fprintln(stderr, "lynxbench:", err)
			return 2
		}
		cfg := experiments.Config{Seed: *seed, Scale: *scale, Workers: workers, Batch: bc}
		return sentinelMode(cfg, *baseline, *compare, *compareTo, *benchJSON, stdout, stderr)
	}

	if *list || *exp == "" {
		fmt.Fprintln(stdout, "experiments:")
		for _, id := range experiments.List() {
			fmt.Fprintf(stdout, "  %-18s %s\n", id, experiments.Describe(id))
		}
		if *exp == "" {
			fmt.Fprintln(stdout, "\nrun one with: lynxbench -exp <id>   (or -exp all)")
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "lynxbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "lynxbench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.List()
	}
	workers := *parallel
	if workers <= 0 {
		workers = experiments.AutoWorkers
	}
	bc, err := model.BatchConfigFromFlags(*batch, *batchCQ, *batchQuant)
	if err != nil {
		fmt.Fprintln(stderr, "lynxbench:", err)
		return 2
	}
	cfg := experiments.Config{Seed: *seed, Scale: *scale, Workers: workers, TraceJSON: *traceJSON, ProfileJSON: *profJSON, RackTraceJSON: *rackTrace, RackMetricsJSON: *rackMet, Batch: bc}
	if *topN > 0 {
		cfg.Top = experiments.NewTopCollector(*topN)
	}
	if *loss > 0 {
		cfg.Faults = fault.Config{Seed: *seed, DropRate: *loss}
	}
	if *invariants {
		cfg.Invariants = check.NewAggregate()
	}
	failed := false
	for _, id := range ids {
		start := time.Now()
		report, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "lynxbench:", err)
			return 1
		}
		failed = failed || report.Failed
		if *csv {
			fmt.Fprint(stdout, report.CSV())
			continue
		}
		fmt.Fprintln(stdout, report)
		fmt.Fprintf(stdout, "  (%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if cfg.Top != nil {
		if *csv {
			fmt.Fprint(stdout, cfg.Top.Table().CSV())
		} else {
			fmt.Fprintln(stdout, cfg.Top.Table())
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(stderr, "lynxbench:", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(stderr, "lynxbench:", err)
			return 1
		}
	}

	if *invariants {
		rep := cfg.Invariants.Report()
		// Keep -csv output machine-parseable: status goes to stderr there.
		w := stdout
		if *csv {
			w = stderr
		}
		fmt.Fprintf(w, "%s (%d simulations)\n", rep, cfg.Invariants.Runs())
		if !rep.OK() {
			return 1
		}
	}
	if failed {
		fmt.Fprintln(stderr, "lynxbench: scorecard claims FAILED")
		return 1
	}
	return 0
}

// sentinelMode handles -baseline and -compare: the regression-sentinel CLI.
func sentinelMode(cfg experiments.Config, baseline, compare, compareTo, benchJSON string, stdout, stderr io.Writer) int {
	if baseline != "" && compare != "" {
		fmt.Fprintln(stderr, "lynxbench: -baseline and -compare are mutually exclusive")
		return 2
	}
	if baseline != "" {
		a, err := experiments.BuildSentinelArtifact(cfg, benchJSON)
		if err != nil {
			fmt.Fprintln(stderr, "lynxbench:", err)
			return 1
		}
		if err := a.WriteFile(baseline); err != nil {
			fmt.Fprintln(stderr, "lynxbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "sentinel baseline written to %s (%d claims, %d knees, fingerprint %s)\n",
			baseline, len(a.Scorecard), len(a.Knees), a.Fingerprint.Config)
		return 0
	}
	old, err := sentinel.Read(compare)
	if err != nil {
		fmt.Fprintln(stderr, "lynxbench:", err)
		return 1
	}
	cur := (*sentinel.Artifact)(nil)
	if compareTo != "" {
		cur, err = sentinel.Read(compareTo)
	} else {
		cur, err = experiments.BuildSentinelArtifact(cfg, benchJSON)
	}
	if err != nil {
		fmt.Fprintln(stderr, "lynxbench:", err)
		return 1
	}
	d := sentinel.Diff(old, cur, sentinel.Options{})
	fmt.Fprint(stdout, d.String())
	if !d.Clean() {
		return 1
	}
	return 0
}
