// Command lynxd boots a simulated Lynx deployment and serves a workload,
// printing periodic live statistics — the closest thing to "running the
// server" this reproduction offers.
//
// Usage:
//
//	lynxd                          # GPU echo service on BlueField, default load
//	lynxd -app lenet               # LeNet digit-recognition service
//	lynxd -platform xeon -cores 6  # run Lynx on host cores instead
//	lynxd -rate 50000 -secs 2      # open-loop load, simulated seconds
//	lynxd -batch 8                 # batch the hot path end to end by 8
//	lynxd -invariants              # arm runtime invariant checks
//	lynxd -profile-json prof.json  # tail-latency attribution report on exit
//	lynxd -nodes 3 -replicas 3     # replicated KV rack, writes quorum-replicated
//	lynxd -nodes 3 -replicas 3 -stall-queue -1 -stall-at 100ms
//	                               # ...and kill a replica mid-run (failover demo)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lynx"
	"lynx/internal/apps/kvstore"
	"lynx/internal/apps/lenet"
	"lynx/internal/metrics"
	"lynx/internal/model"
	"lynx/internal/trace"
	"lynx/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lynxd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app        = fs.String("app", "echo", "service to run: echo | lenet")
		platform   = fs.String("platform", "bluefield", "lynx platform: bluefield | xeon")
		cores      = fs.Int("cores", 7, "worker cores for the Lynx runtime")
		queues     = fs.Int("queues", 8, "server mqueues / GPU threadblocks (echo app)")
		rate       = fs.Float64("rate", 0, "open-loop request rate (0 = closed loop)")
		clients    = fs.Int("clients", 16, "closed-loop client count")
		retries    = fs.Int("retries", 0, "closed-loop same-seq retransmits before a request counts lost")
		secs       = fs.Float64("secs", 1.0, "simulated seconds to run")
		seed       = fs.Uint64("seed", 1, "simulation seed")
		traceN     = fs.Int("trace", 0, "dump the last N runtime trace events")
		traceOut   = fs.String("trace-json", "", "write a Chrome trace-event timeline (spans, samples, events) to this file")
		profOut    = fs.String("profile-json", "", "write the tail-latency attribution report (wait/service decomposition, bottleneck ranking, flight recorder) to this file on exit; with -invariants, the first violation also dumps <file>.postmortem")
		invariants = fs.Bool("invariants", false, "arm runtime invariant checks; non-zero exit on any violation")
		batch      = fs.Int("batch", 0, "doorbell batch size (0 = unbatched per-message hot path)")
		batchCQ    = fs.Int("batch-cq", 0, "completion/TX drain budget (0 = follow -batch)")
		batchQuant = fs.Int("batch-quantum", 0, "dispatcher scheduling quantum in messages (0 = follow -batch)")
		loss       = fs.Float64("loss", 0, "inject datagram drop probability (0..1)")
		dup        = fs.Float64("dup", 0, "inject datagram duplication probability (0..1)")
		rdmaErr    = fs.Float64("rdma-err", 0, "inject RDMA completion error probability (0..1)")
		stallQ     = fs.Int("stall-queue", -2, "accelerator queue to stall (-2 = none; -1 = all queues, the whole-accelerator kill)")
		stallAt    = fs.Duration("stall-at", 50*time.Millisecond, "when the stall window opens")
		stallFor   = fs.Duration("stall-for", 100*time.Millisecond, "how long the stalled queue stays dead")
		nodes      = fs.Int("nodes", 1, "rack node count; >1 (or -replicas >1) boots the multi-node replicated KV rack instead of -app")
		replicas   = fs.Int("replicas", 1, "rack replication factor: each write is applied on RF-1 peer accelerators before its response releases")
		rackTrace  = fs.String("rack-trace-json", "", "rack mode: arm per-node telemetry and write the rack-wide Chrome trace-event timeline (one process-track block per node) to this file")
		rackMet    = fs.String("rack-metrics-json", "", "rack mode: arm per-node telemetry and write the rack telemetry rollup (per-node stats and monitor series) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "lynxd:", err)
		return 1
	}

	fc := lynx.FaultConfig{
		Seed: *seed, DropRate: *loss, DupRate: *dup, RDMAErrRate: *rdmaErr,
	}
	rackMode := *nodes > 1 || *replicas > 1
	if *stallQ >= -1 {
		// Single-server stalls hit the serving GPU; in rack mode the stall
		// targets node 1's accelerator — a replica kill, the failover demo.
		accel := "gpu0"
		if rackMode {
			accel = "gpu1"
		}
		fc.Stalls = []lynx.FaultStall{{Accel: accel, Queue: *stallQ, At: *stallAt, For: *stallFor}}
	}
	if rackMode {
		return runRack(*nodes, *replicas, *seed, fc, *clients, *retries, *rate, *secs, *invariants, *rackTrace, *rackMet, stdout, stderr)
	}
	opts := []lynx.Option{lynx.WithSeed(*seed), lynx.WithFaults(fc)}
	if bc, err := model.BatchConfigFromFlags(*batch, *batchCQ, *batchQuant); err != nil {
		return fail(err)
	} else if bc != (lynx.BatchConfig{}) {
		opts = append(opts, lynx.WithBatching(bc))
	}
	if *invariants {
		opts = append(opts, lynx.WithInvariants())
	}
	if *profOut != "" {
		opts = append(opts, lynx.WithProfile())
	}
	cluster := lynx.NewCluster(opts...)
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", lynx.K40m, false, "server1")
	client := cluster.AddClient("client1")

	var plat = bf.Platform(*cores)
	if *platform == "xeon" {
		plat = server.HostPlatform(*cores, true)
	}
	var tracer *trace.Tracer
	if *traceN > 0 || *traceOut != "" {
		n := 4 * *traceN
		if n < 4096 {
			n = 4096
		}
		tracer = trace.New(n)
		plat.Tracer = tracer
	}
	var spans *trace.SpanTable
	var reg *metrics.Registry
	if prof := cluster.Profile(); prof != nil {
		// The profiling plane owns the span table and registry; the trace
		// export (if any) shares them so both views agree.
		spans = prof.Spans()
		reg = prof.Registry()
	} else if *traceOut != "" {
		spans = trace.NewSpanTable(1 << 15)
		plat.Spans = spans
		reg = metrics.NewRegistry()
	}
	srv := cluster.NewServer(plat)

	var payload int
	var body func(seq uint64, buf []byte)
	switch *app {
	case "echo":
		payload = 64
		h, err := srv.Register(gpu, lynx.QueueConfig{Kind: lynx.ServerQueue, Slots: 16, SlotSize: 128}, *queues)
		if err != nil {
			return fail(err)
		}
		if _, err := srv.AddService(lynx.UDP, 7000, nil, *queues, h); err != nil {
			return fail(err)
		}
		qs := h.AccelQueues()
		if err := gpu.LaunchPersistent(cluster.Testbed().Sim, *queues, func(tb *lynx.TB) {
			aq := qs[tb.Index()]
			for {
				m := aq.Recv(tb.Proc())
				tb.Compute(20 * time.Microsecond)
				if aq.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
					return
				}
			}
		}); err != nil {
			return fail(err)
		}
	case "lenet":
		payload = workload.SeqBytes + lenet.InputBytes
		net := lenet.New(42)
		h, err := srv.Register(gpu, lynx.QueueConfig{Kind: lynx.ServerQueue, Slots: 16, SlotSize: payload + 16}, 1)
		if err != nil {
			return fail(err)
		}
		if _, err := srv.AddService(lynx.UDP, 7000, nil, 1, h); err != nil {
			return fail(err)
		}
		aq := h.AccelQueues()[0]
		svcTime := cluster.Params().LeNetServiceK40
		body = func(seq uint64, buf []byte) {
			copy(buf[workload.SeqBytes:], lenet.RenderDigit(int(seq%10), 0, 0))
		}
		if err := gpu.LaunchPersistent(cluster.Testbed().Sim, 1, func(tb *lynx.TB) {
			for {
				m := aq.Recv(tb.Proc())
				resp := make([]byte, workload.SeqBytes+1)
				copy(resp, m.Payload[:workload.SeqBytes])
				if cls, err := net.Classify(m.Payload[workload.SeqBytes:]); err == nil {
					resp[workload.SeqBytes] = byte(cls)
				}
				tb.SpawnChild(svcTime)
				if aq.Send(tb.Proc(), uint16(m.Slot), resp) != nil {
					return
				}
			}
		}); err != nil {
			return fail(err)
		}
	default:
		fmt.Fprintln(stderr, "lynxd: unknown app", *app)
		return 2
	}
	if err := srv.Start(); err != nil {
		return fail(err)
	}
	if reg != nil {
		if cluster.Profile() == nil {
			// With WithProfile the cluster already started the monitor.
			srv.StartMonitor(50*time.Microsecond, reg)
		}
		cluster.Testbed().RegisterStats(reg)
	}
	if *profOut != "" {
		cluster.ArmProfilePostmortem(*profOut + ".postmortem")
	}

	target := plat.NetHost.Addr(7000)
	fmt.Fprintf(stdout, "lynxd: %s service on %s (%s, %d cores), %d mqueues\n",
		*app, target, *platform, *cores, *queues)

	window := time.Duration(*secs * float64(time.Second))
	gen := cluster.NewLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: target, Payload: payload, Body: body,
		Clients: *clients, RatePerSec: *rate, Retries: *retries,
		Duration: window, Warmup: window / 10,
		Spans: spans,
	}, client)
	res := gen.Run()

	// Live stats every simulated 100 ms.
	step := 100 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < window+window/10; elapsed += step {
		cluster.Run(step)
		st := srv.Stats()
		fmt.Fprintf(stdout, "  t=%-8v %s inflight~%d\n",
			cluster.Now().Round(time.Millisecond), st, st.Received-st.Responded)
	}
	cluster.Run(50 * time.Millisecond)
	fmt.Fprintf(stdout, "\nresult: %v\n", *res)
	if fc.Enabled() {
		fmt.Fprintf(stdout, "faults injected: %s\n", cluster.FaultStats())
	}
	if tracer != nil && *traceN > 0 {
		fmt.Fprintf(stdout, "\ntrace summary: %s\nlast %d events:\n", tracer.Summary(), *traceN)
		for _, ev := range tracer.Tail(*traceN) {
			fmt.Fprintln(stdout, " ", ev)
		}
	}
	if *traceOut != "" {
		ex := trace.Export{Spans: spans, Events: tracer, Series: reg.SeriesList()}
		if err := writeTrace(*traceOut, ex); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "trace timeline written to %s (spans begun=%d closed=%d evicted=%d)\n",
			*traceOut, spans.Begun(), spans.Closed(), spans.Evicted())
	}
	if *profOut != "" {
		if err := cluster.WriteProfile(*profOut); err != nil {
			return fail(err)
		}
		rep := cluster.ProfileReport()
		fmt.Fprintf(stdout, "profile report written to %s (spans closed=%d)\n", *profOut, rep.SpansClosed)
		if s := rep.BottleneckSummary(); s != "" {
			fmt.Fprintf(stdout, "bottlenecks:\n%s", s)
		}
	}
	cluster.Close()
	if *invariants {
		rep := cluster.InvariantReport()
		fmt.Fprintln(stdout, rep)
		if !rep.OK() {
			return 1
		}
	}
	return 0
}

// runRack boots the multi-node replicated KV rack (-nodes / -replicas) and
// drives a closed- or open-loop SET workload against node 0's owned keys,
// printing periodic runtime and replication statistics. A -stall-queue window
// freezes node 1's accelerator — the replica-kill failover demo.
func runRack(nodes, replicas int, seed uint64, fc lynx.FaultConfig, clients, retries int, rate, secs float64, invariants bool, rackTrace, rackMet string, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "lynxd:", err)
		return 1
	}
	cfg := lynx.RackConfig{Nodes: nodes, Replicas: replicas, Seed: seed, Faults: fc}
	if rackTrace != "" || rackMet != "" {
		cfg.Telemetry = &lynx.RackTelemetry{}
	}
	var ck *lynx.InvariantChecker
	if invariants {
		ck = lynx.NewInvariantChecker()
		cfg.Check = ck
	}
	rack, err := lynx.BuildRack(cfg)
	if err != nil {
		return fail(err)
	}
	keys := rack.OwnedKeys(0)
	if len(keys) == 0 {
		return fail(fmt.Errorf("node 0 owns no keys"))
	}
	target := rack.Node(0).Addr()
	fmt.Fprintf(stdout, "lynxd: replicated KV rack, %d nodes RF=%d, writes to %s (%d keys owned by node 0)\n",
		nodes, replicas, target, len(keys))

	window := time.Duration(secs * float64(time.Second))
	gen := workload.New(rack.TB.Sim, workload.Config{
		Proto: workload.UDP, Target: target, Payload: 64,
		Body: func(seq uint64, buf []byte) {
			copy(buf[workload.SeqBytes:],
				kvstore.EncodeSet(keys[seq%uint64(len(keys))], 0, []byte(fmt.Sprintf("value-%010d", seq))))
		},
		Clients: clients, RatePerSec: rate, Retries: retries,
		Duration: window, Warmup: window / 10,
		Timeout: 2 * time.Millisecond, Check: ck,
		// Client-side span stamps land in the measured primary's table when
		// the telemetry plane is armed (nil otherwise — stamps disabled).
		Spans: rack.Node(0).Spans,
	}, rack.Clients...)
	res := gen.Run()

	step := 100 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < window+window/10; elapsed += step {
		rack.TB.Sim.RunUntil(rack.TB.Sim.Now().Add(step))
		now := time.Duration(rack.TB.Sim.Now()).Round(time.Millisecond)
		st := rack.Node(0).RT.Stats()
		if repl := rack.Node(0).Repl; repl != nil {
			fmt.Fprintf(stdout, "  t=%-8v %s repl{%s}\n", now, st, repl.Stats())
		} else {
			fmt.Fprintf(stdout, "  t=%-8v %s\n", now, st)
		}
	}
	rack.TB.Sim.RunUntil(rack.TB.Sim.Now().Add(50 * time.Millisecond))
	fmt.Fprintf(stdout, "\nresult: %v\n", *res)
	if repl := rack.Node(0).Repl; repl != nil {
		for j := 1; j < nodes; j++ {
			slot, ok := rack.PeerSlot(0, j)
			if !ok {
				continue
			}
			if at, dead := repl.PeerDeadAt(slot); dead {
				fmt.Fprintf(stdout, "replica %s: declared dead at t=%v\n",
					repl.PeerName(slot), time.Duration(at).Round(time.Microsecond))
			}
		}
	}
	if fc.Enabled() {
		fmt.Fprintf(stdout, "faults injected: %s\n", rack.TB.Faults.Stats())
	}
	if rackTrace != "" {
		ex := rack.TraceExport()
		f, err := os.Create(rackTrace)
		if err != nil {
			return fail(err)
		}
		if err := ex.WriteJSON(f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		sp := rack.Node(0).Spans
		fmt.Fprintf(stdout, "rack trace timeline written to %s (%d nodes, node0 spans begun=%d closed=%d)\n",
			rackTrace, rack.Nodes(), sp.Begun(), sp.Closed())
	}
	if rackMet != "" {
		f, err := os.Create(rackMet)
		if err != nil {
			return fail(err)
		}
		if err := rack.TelemetrySnapshot().Dump(f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "rack metrics rollup written to %s\n", rackMet)
	}
	rack.Close()
	if invariants {
		rep := ck.Snapshot()
		fmt.Fprintln(stdout, rep)
		if !rep.OK() {
			return 1
		}
	}
	return 0
}

// writeTrace writes the Chrome trace-event export to path.
func writeTrace(path string, ex trace.Export) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ex.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
