// Command lynxd boots a simulated Lynx deployment and serves a workload,
// printing periodic live statistics — the closest thing to "running the
// server" this reproduction offers.
//
// Usage:
//
//	lynxd                          # GPU echo service on BlueField, default load
//	lynxd -app lenet               # LeNet digit-recognition service
//	lynxd -platform xeon -cores 6  # run Lynx on host cores instead
//	lynxd -rate 50000 -secs 2      # open-loop load, simulated seconds
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lynx"
	"lynx/internal/apps/lenet"
	"lynx/internal/trace"
	"lynx/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "echo", "service to run: echo | lenet")
		platform = flag.String("platform", "bluefield", "lynx platform: bluefield | xeon")
		cores    = flag.Int("cores", 7, "worker cores for the Lynx runtime")
		queues   = flag.Int("queues", 8, "server mqueues / GPU threadblocks (echo app)")
		rate     = flag.Float64("rate", 0, "open-loop request rate (0 = closed loop)")
		clients  = flag.Int("clients", 16, "closed-loop client count")
		secs     = flag.Float64("secs", 1.0, "simulated seconds to run")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		traceN   = flag.Int("trace", 0, "dump the last N runtime trace events")
	)
	flag.Parse()

	cluster := lynx.NewCluster(*seed, nil)
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", lynx.K40m, false, "server1")
	client := cluster.AddClient("client1")

	var plat = bf.Platform(*cores)
	if *platform == "xeon" {
		plat = server.HostPlatform(*cores, true)
	}
	var tracer *trace.Tracer
	if *traceN > 0 {
		tracer = trace.New(4 * *traceN)
		plat.Tracer = tracer
	}
	srv := lynx.NewServer(plat)

	var payload int
	var body func(seq uint64, buf []byte)
	switch *app {
	case "echo":
		payload = 64
		h, err := srv.Register(gpu, lynx.QueueConfig{Kind: lynx.ServerQueue, Slots: 16, SlotSize: 128}, *queues)
		check(err)
		_, err = srv.AddService(lynx.UDP, 7000, nil, *queues, h)
		check(err)
		qs := h.AccelQueues()
		check(gpu.LaunchPersistent(cluster.Testbed().Sim, *queues, func(tb *lynx.TB) {
			aq := qs[tb.Index()]
			for {
				m := aq.Recv(tb.Proc())
				tb.Compute(20 * time.Microsecond)
				if aq.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
					return
				}
			}
		}))
	case "lenet":
		payload = workload.SeqBytes + lenet.InputBytes
		net := lenet.New(42)
		h, err := srv.Register(gpu, lynx.QueueConfig{Kind: lynx.ServerQueue, Slots: 16, SlotSize: payload + 16}, 1)
		check(err)
		_, err = srv.AddService(lynx.UDP, 7000, nil, 1, h)
		check(err)
		aq := h.AccelQueues()[0]
		svcTime := cluster.Params().LeNetServiceK40
		body = func(seq uint64, buf []byte) {
			copy(buf[workload.SeqBytes:], lenet.RenderDigit(int(seq%10), 0, 0))
		}
		check(gpu.LaunchPersistent(cluster.Testbed().Sim, 1, func(tb *lynx.TB) {
			for {
				m := aq.Recv(tb.Proc())
				resp := make([]byte, workload.SeqBytes+1)
				copy(resp, m.Payload[:workload.SeqBytes])
				if cls, err := net.Classify(m.Payload[workload.SeqBytes:]); err == nil {
					resp[workload.SeqBytes] = byte(cls)
				}
				tb.SpawnChild(svcTime)
				if aq.Send(tb.Proc(), uint16(m.Slot), resp) != nil {
					return
				}
			}
		}))
	default:
		fmt.Fprintln(os.Stderr, "lynxd: unknown app", *app)
		os.Exit(2)
	}
	check(srv.Start())

	target := plat.NetHost.Addr(7000)
	fmt.Printf("lynxd: %s service on %s (%s, %d cores), %d mqueues\n",
		*app, target, *platform, *cores, *queues)

	window := time.Duration(*secs * float64(time.Second))
	gen := cluster.NewLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: target, Payload: payload, Body: body,
		Clients: *clients, RatePerSec: *rate,
		Duration: window, Warmup: window / 10,
	}, client)
	res := gen.Run()

	// Live stats every simulated 100 ms.
	step := 100 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < window+window/10; elapsed += step {
		cluster.Run(step)
		rcv, resp, drop := srv.Stats()
		fmt.Printf("  t=%-8v received=%-8d responded=%-8d dropped=%-4d inflight~%d\n",
			cluster.Now().Round(time.Millisecond), rcv, resp, drop, rcv-resp)
	}
	cluster.Run(50 * time.Millisecond)
	fmt.Printf("\nresult: %v\n", *res)
	if tracer != nil {
		fmt.Printf("\ntrace summary: %s\nlast %d events:\n", tracer.Summary(), *traceN)
		for _, ev := range tracer.Tail(*traceN) {
			fmt.Println(" ", ev)
		}
	}
	cluster.Close()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lynxd:", err)
		os.Exit(1)
	}
}
