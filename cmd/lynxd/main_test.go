package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestEchoSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-secs", "0.05", "-clients", "4", "-queues", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "echo service on") {
		t.Error("banner missing")
	}
	if !strings.Contains(s, "result:") {
		t.Error("final result missing")
	}
}

func TestLenetSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-app", "lenet", "-secs", "0.02", "-clients", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "lenet service on") {
		t.Error("banner missing")
	}
}

func TestInvariantsFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-secs", "0.02", "-clients", "4", "-queues", "2", "-invariants"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "invariants: ok") {
		t.Errorf("invariant report missing from output:\n%s", out.String())
	}
}

func TestUnknownApp(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-app", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown app: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown app") {
		t.Error("error not printed to stderr")
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
