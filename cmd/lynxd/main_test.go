package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEchoSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-secs", "0.05", "-clients", "4", "-queues", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "echo service on") {
		t.Error("banner missing")
	}
	if !strings.Contains(s, "result:") {
		t.Error("final result missing")
	}
}

func TestLenetSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-app", "lenet", "-secs", "0.02", "-clients", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "lenet service on") {
		t.Error("banner missing")
	}
}

func TestInvariantsFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-secs", "0.02", "-clients", "4", "-queues", "2", "-invariants"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "invariants: ok") {
		t.Errorf("invariant report missing from output:\n%s", out.String())
	}
}

func TestUnknownApp(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-app", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown app: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown app") {
		t.Error("error not printed to stderr")
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestProfileJSONFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prof.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-secs", "0.05", "-profile-json", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "profile report written to") {
		t.Errorf("missing profile summary:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		SpansClosed uint64           `json:"spans_closed"`
		Bottlenecks []map[string]any `json:"bottlenecks"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("profile JSON invalid: %v", err)
	}
	if rep.SpansClosed == 0 || len(rep.Bottlenecks) == 0 {
		t.Fatalf("profile JSON empty: %+v", rep)
	}
}
