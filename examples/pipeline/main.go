// Accelerator composition (the paper's stated next step, §1): a two-stage
// image pipeline — stage 0 normalizes the image on one GPU, stage 1 runs
// LeNet inference on another — exposed as a single Lynx service. The SNIC
// relays between the accelerators; no host CPU and no extra network round
// trip between stages.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"time"

	"lynx"
	"lynx/internal/apps/lenet"
	"lynx/internal/workload"
)

const payload = workload.SeqBytes + lenet.InputBytes

func main() {
	cluster := lynx.NewCluster()
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpuPre := server.AddGPU("gpu-preprocess", lynx.K40m, false, "server1")
	gpuInfer := server.AddGPU("gpu-infer", lynx.K40m, false, "server1")
	client := cluster.AddClient("client1")

	srv := lynx.NewServer(bf.Platform(7))
	cfg := lynx.QueueConfig{Kind: lynx.ServerQueue, Slots: 16, SlotSize: payload + 16}
	h1, err := srv.Register(gpuPre, cfg, 2)
	must(err)
	h2, err := srv.Register(gpuInfer, cfg, 2)
	must(err)
	pl, err := srv.AddPipeline(lynx.UDP, 7000, nil, 2, h1, h2)
	must(err)

	// Stage 0: contrast normalization (real pixel math, single-TB kernels).
	q1 := h1.AccelQueues()
	must(gpuPre.LaunchPersistent(cluster.Testbed().Sim, 2, func(tb *lynx.TB) {
		q := q1[tb.Index()]
		for {
			m := q.Recv(tb.Proc())
			out := append([]byte{}, m.Payload...)
			img := out[workload.SeqBytes:]
			lo, hi := byte(255), byte(0)
			for _, px := range img {
				if px < lo {
					lo = px
				}
				if px > hi {
					hi = px
				}
			}
			if hi > lo {
				scale := 255.0 / float64(hi-lo)
				for i, px := range img {
					img[i] = byte(float64(px-lo) * scale)
				}
			}
			tb.Compute(15 * time.Microsecond)
			if q.Send(tb.Proc(), uint16(m.Slot), out) != nil {
				return
			}
		}
	}))

	// Stage 1: the real LeNet forward pass.
	net := lenet.New(42)
	service := cluster.Params().LeNetServiceK40
	q2 := h2.AccelQueues()
	must(gpuInfer.LaunchPersistent(cluster.Testbed().Sim, 2, func(tb *lynx.TB) {
		q := q2[tb.Index()]
		for {
			m := q.Recv(tb.Proc())
			resp := make([]byte, workload.SeqBytes+1)
			copy(resp, m.Payload[:workload.SeqBytes])
			if cls, err := net.Classify(m.Payload[workload.SeqBytes:payload]); err == nil {
				resp[workload.SeqBytes] = byte(cls)
			}
			tb.SpawnChild(service)
			if q.Send(tb.Proc(), uint16(m.Slot), resp) != nil {
				return
			}
		}
	}))
	must(srv.Start())

	res := cluster.MeasureLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: pl.Addr(), Payload: payload,
		Body: func(seq uint64, buf []byte) {
			img := lenet.RenderDigit(int(seq%10), 0, 0)
			for i := range img { // dim the image so stage 0 has work to undo
				img[i] /= 3
			}
			copy(buf[workload.SeqBytes:], img)
		},
		Clients: 6, Duration: 150 * time.Millisecond, Warmup: 30 * time.Millisecond,
	}, client)

	fmt.Println("Two-GPU pipeline (normalize -> LeNet) behind one Lynx service:")
	fmt.Printf("  %v\n", res)
	fmt.Printf("  SNIC relayed %d stage-to-stage messages — zero CPU, zero extra wire hops\n", pl.Relayed())
	cluster.Close()
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
