// Quickstart: the smallest complete Lynx deployment.
//
// One server machine with a BlueField SmartNIC and a K40m GPU; the GPU runs
// a persistent-kernel echo service behind Lynx; a client sends ten UDP
// requests and prints the round-trip latencies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"lynx"
)

func main() {
	// 1. Build the cluster: one server (6 Xeon cores), a BlueField SNIC,
	//    one GPU, one client machine.
	cluster := lynx.NewCluster()
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", lynx.K40m, false, "server1")
	client := cluster.AddClient("client1")

	// 2. Create the Lynx runtime on the SmartNIC's ARM cores and register
	//    the GPU with four server mqueues.
	srv := lynx.NewServer(bf.Platform(7))
	handle, err := srv.Register(gpu, lynx.QueueConfig{
		Kind: lynx.ServerQueue, Slots: 16, SlotSize: 128,
	}, 4)
	must(err)
	svc, err := srv.AddService(lynx.UDP, 7000, nil, 4, handle)
	must(err)

	// 3. The accelerator side: one persistent threadblock per mqueue,
	//    echoing requests back. This is the only application code — Lynx
	//    itself never sees it.
	queues := handle.AccelQueues()
	must(gpu.LaunchPersistent(cluster.Testbed().Sim, 4, func(tb *lynx.TB) {
		q := queues[tb.Index()]
		for {
			msg := q.Recv(tb.Proc())
			tb.Compute(10 * time.Microsecond) // pretend to work
			if q.Send(tb.Proc(), uint16(msg.Slot), msg.Payload) != nil {
				return
			}
		}
	}))
	must(srv.Start())

	// 4. A client sends ten requests and measures round trips.
	sock := client.MustUDPBind(9000)
	done := false
	cluster.Spawn("client", func(p *lynx.Proc) {
		for i := 0; i < 10; i++ {
			start := p.Now()
			sock.SendTo(svc.Addr(), []byte(fmt.Sprintf("ping %d", i)))
			reply := sock.Recv(p)
			fmt.Printf("  %-8s -> %-8s in %v\n",
				fmt.Sprintf("ping %d", i), reply.Payload, p.Now().Sub(start))
		}
		done = true
	})

	fmt.Printf("echo service at %v, via Lynx on BlueField:\n", svc.Addr())
	cluster.RunUntil(time.Second, func() bool { return done })
	fmt.Printf("server stats: %s\n", srv.Stats())
	cluster.Close()
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
