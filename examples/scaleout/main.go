// Scaleout (§5.5 / Fig. 8b of the paper): one BlueField SmartNIC drives 12
// K80 GPUs spread over three physical machines — 4 local, 8 behind remote
// hosts' RDMA NICs. Lynx treats remote accelerators exactly like local ones
// (the QPs just carry a network hop), and throughput scales linearly.
//
//	go run ./examples/scaleout
package main

import (
	"fmt"
	"time"

	"lynx"
	"lynx/internal/workload"
)

func run(nLocal, nRemote int) workload.Result {
	cluster := lynx.NewCluster()
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	client := cluster.AddClient("client1")
	client2 := cluster.AddClient("client2")

	var gpus []*lynx.GPU
	for i := 0; i < nLocal; i++ {
		gpus = append(gpus, server.AddGPU(fmt.Sprintf("gpu-l%d", i), lynx.K80, false, "server1"))
	}
	var remotes []*lynx.Machine
	for m := 0; m*4 < nRemote; m++ {
		remotes = append(remotes, cluster.NewMachine(fmt.Sprintf("server%d", m+2), 6))
	}
	for i := 0; i < nRemote; i++ {
		gpus = append(gpus, remotes[i/4].AddGPU(fmt.Sprintf("gpu-r%d", i), lynx.K80, false, "server1"))
	}

	srv := lynx.NewServer(bf.Platform(7))
	service := cluster.Params().LeNetServiceK80
	var handles []*lynx.AccelHandle
	for _, g := range gpus {
		h, err := srv.Register(g, lynx.QueueConfig{Kind: lynx.ServerQueue, Slots: 16, SlotSize: 128}, 1)
		must(err)
		handles = append(handles, h)
	}
	svc, err := srv.AddService(lynx.UDP, 7000, nil, 1, handles...)
	must(err)
	for gi, g := range gpus {
		q := handles[gi].AccelQueues()[0]
		must(g.LaunchPersistent(cluster.Testbed().Sim, 1, func(tb *lynx.TB) {
			for {
				m := q.Recv(tb.Proc())
				tb.SpawnChild(service) // emulated LeNet inference
				if q.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
					return
				}
			}
		}))
	}
	must(srv.Start())

	res := cluster.MeasureLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: svc.Addr(), Payload: 64,
		Clients: 3 * len(gpus), Duration: 150 * time.Millisecond, Warmup: 30 * time.Millisecond,
	}, client, client2)
	cluster.Close()
	return res
}

func main() {
	fmt.Println("LeNet service scaling across machines (one BlueField drives everything):")
	configs := []struct {
		local, remote int
		label         string
	}{
		{4, 0, "4 local GPUs"},
		{4, 4, "4 local + 4 remote"},
		{4, 8, "4 local + 8 remote"},
	}
	var base float64
	for _, c := range configs {
		res := run(c.local, c.remote)
		if base == 0 {
			base = res.Throughput()
		}
		fmt.Printf("  %-20s %8.0f req/s  (%.2fx of 4-GPU run, p50 %v)\n",
			c.label, res.Throughput(), res.Throughput()/base, res.Hist.Median())
	}
	fmt.Println("paper: linear scaling — ~13K / ~26K / ~40K req/s; remote adds ~8µs latency")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
