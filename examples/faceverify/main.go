// Face verification (§6.4 of the paper): a multi-tier service. The GPU
// frontend receives [label][image] requests, fetches the reference image for
// the label from a memcached backend *through Lynx client mqueues* (no host
// CPU anywhere on the path), runs a real Local-Binary-Patterns comparison,
// and answers match/no-match.
//
//	go run ./examples/faceverify
package main

import (
	"fmt"
	"time"

	"lynx"
	"lynx/internal/apps/kvstore"
	"lynx/internal/apps/lbp"
	"lynx/internal/workload"
)

const (
	labelBytes = 12
	reqBytes   = workload.SeqBytes + labelBytes + lbp.ImageBytes
	identities = 200
	nTB        = 8 // GPU threadblocks / server mqueues
)

func main() {
	cluster := lynx.NewCluster()
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", lynx.K40m, false, "server1")
	backend := cluster.NewMachine("dbserver", 6)
	client := cluster.AddClient("client1")

	// --- Backend tier: memcached holding the reference images. ---
	store := kvstore.NewStore(16, 0)
	for id := uint32(0); id < identities; id++ {
		store.Set(fmt.Sprintf("person-%05d", id), 0, lbp.SynthFace(id, 0))
	}
	listener := backend.NetHost.MustTCPListen(11211)
	cluster.Spawn("memcached", func(p *lynx.Proc) {
		for {
			conn := listener.Accept(p)
			cluster.Spawn("memcached-conn", func(p *lynx.Proc) {
				for {
					msg, err := conn.Recv(p)
					if err != nil {
						return
					}
					backend.CPU.ExecOn(p, 2*time.Microsecond)
					if conn.Send(p, store.ServeRaw(msg)) != nil {
						return
					}
				}
			})
		}
	})

	// --- Frontend tier: Lynx on BlueField + GPU persistent kernel. ---
	srv := lynx.NewServer(bf.Platform(7))
	h, err := srv.Register(gpu, lynx.QueueConfig{
		Kind: lynx.ServerQueue, Slots: 8, SlotSize: reqBytes + 96,
	}, 2*nTB)
	must(err)
	svc, err := srv.AddService(lynx.UDP, 7000, nil, nTB, h)
	must(err)
	clientIdx := make([]int, nTB)
	for i := range clientIdx {
		cb, err := srv.AddClientQueue(h, lynx.TCP, lynx.Addr{Host: "dbserver", Port: 11211})
		must(err)
		clientIdx[i] = cb.QueueIndex()
	}
	queues := h.AccelQueues()
	kernelTime := cluster.Params().FaceVerifyService
	matches, mismatches := 0, 0
	must(gpu.LaunchPersistent(cluster.Testbed().Sim, nTB, func(tb *lynx.TB) {
		serverQ := queues[tb.Index()]
		dbQ := queues[clientIdx[tb.Index()]]
		for {
			m := serverQ.Recv(tb.Proc())
			if len(m.Payload) < reqBytes {
				continue
			}
			label := string(m.Payload[workload.SeqBytes : workload.SeqBytes+labelBytes])
			// Fetch the reference image from memcached via the client
			// mqueue — straight from the GPU, through the SNIC.
			if dbQ.Send(tb.Proc(), 0, kvstore.EncodeGet(label)) != nil {
				return
			}
			reply := dbQ.Recv(tb.Proc())
			ref, ok, err := kvstore.DecodeValue(reply.Payload)
			if err != nil || !ok {
				continue
			}
			probe := m.Payload[workload.SeqBytes+labelBytes : reqBytes]
			same, _, err := lbp.Verify(probe, ref, lbp.DefaultThreshold) // real LBP
			tb.Compute(kernelTime)
			resp := make([]byte, workload.SeqBytes+1)
			copy(resp, m.Payload[:workload.SeqBytes])
			if err == nil && same {
				resp[workload.SeqBytes] = 1
				matches++
			} else {
				mismatches++
			}
			if serverQ.Send(tb.Proc(), uint16(m.Slot), resp) != nil {
				return
			}
		}
	}))
	must(srv.Start())

	// --- Clients: half genuine probes, half impostors. ---
	res := cluster.MeasureLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: svc.Addr(), Payload: reqBytes,
		Body: func(seq uint64, buf []byte) {
			claimed := uint32(seq % identities)
			actual := claimed
			if seq%2 == 1 {
				actual = (claimed + 7) % identities // impostor
			}
			copy(buf[workload.SeqBytes:], fmt.Sprintf("person-%05d", claimed))
			copy(buf[workload.SeqBytes+labelBytes:], lbp.SynthFace(actual, uint32(seq)))
		},
		Clients: 2 * nTB, Duration: 100 * time.Millisecond, Warmup: 20 * time.Millisecond,
	}, client)

	fmt.Println("Face verification: GPU frontend + memcached backend via client mqueues")
	fmt.Printf("  load: %v\n", res)
	fmt.Printf("  verified genuine: %d, rejected impostors/mismatches: %d\n", matches, mismatches)
	cluster.Close()
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
