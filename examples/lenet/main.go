// LeNet model serving (§6.3 of the paper): a digit-recognition service
// implemented entirely on the GPU — a persistent kernel polls its mqueue,
// runs a real LeNet-5 forward pass (via dynamic parallelism in the timing
// model), and replies with the class — compared against the traditional
// host-centric design on the same workload.
//
//	go run ./examples/lenet
package main

import (
	"fmt"
	"time"

	"lynx"
	"lynx/internal/apps/lenet"
	"lynx/internal/hostcentric"
	"lynx/internal/workload"
)

const payload = workload.SeqBytes + lenet.InputBytes

func classify(net *lenet.Network, req []byte) []byte {
	resp := make([]byte, workload.SeqBytes+1)
	copy(resp, req[:workload.SeqBytes])
	if cls, err := net.Classify(req[workload.SeqBytes:payload]); err == nil {
		resp[workload.SeqBytes] = byte(cls)
	}
	return resp
}

func body(seq uint64, buf []byte) {
	copy(buf[workload.SeqBytes:], lenet.RenderDigit(int(seq%10), int(seq%5)-2, 0))
}

func runLynx(net *lenet.Network) workload.Result {
	cluster := lynx.NewCluster()
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", lynx.K40m, false, "server1")
	client := cluster.AddClient("client1")

	srv := lynx.NewServer(bf.Platform(7))
	h, err := srv.Register(gpu, lynx.QueueConfig{Kind: lynx.ServerQueue, Slots: 16, SlotSize: payload + 16}, 1)
	must(err)
	svc, err := srv.AddService(lynx.UDP, 7000, nil, 1, h)
	must(err)
	q := h.AccelQueues()[0]
	service := cluster.Params().LeNetServiceK40
	must(gpu.LaunchPersistent(cluster.Testbed().Sim, 1, func(tb *lynx.TB) {
		for {
			m := q.Recv(tb.Proc())
			resp := classify(net, m.Payload) // the real forward pass
			tb.SpawnChild(service)           // GPU time via dynamic parallelism
			if q.Send(tb.Proc(), uint16(m.Slot), resp) != nil {
				return
			}
		}
	}))
	must(srv.Start())
	res := cluster.MeasureLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: svc.Addr(), Payload: payload, Body: body,
		Clients: 3, Duration: 300 * time.Millisecond, Warmup: 50 * time.Millisecond,
	}, client)
	cluster.Close()
	return res
}

func runHostCentric(net *lenet.Network) workload.Result {
	cluster := lynx.NewCluster()
	server := cluster.NewMachine("server1", 6)
	gpu := server.AddGPU("gpu0", lynx.K40m, false, "server1")
	client := cluster.AddClient("client1")
	p := cluster.Params()
	sv := hostcentric.New(cluster.Testbed().Sim, p, server.CPU, server.NetHost, gpu, hostcentric.Config{
		Port: 7000, Streams: 8, Cores: 1, Bypass: true,
		KernelTime: p.LeNetServiceK40, Exclusive: true, Launches: 8,
		Handler: func(req []byte) []byte { return classify(net, req) },
	})
	must(sv.Start())
	res := cluster.MeasureLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: server.NetHost.Addr(7000), Payload: payload, Body: body,
		Clients: 3, Duration: 300 * time.Millisecond, Warmup: 50 * time.Millisecond,
	}, client)
	cluster.Close()
	return res
}

func main() {
	net := lenet.New(42)
	// Sanity: the network actually classifies; same input, same answer.
	img := lenet.RenderDigit(3, 0, 0)
	cls, err := net.Classify(img)
	must(err)
	fmt.Printf("LeNet-5 forward pass works: digit glyph '3' -> class %d (deterministic)\n\n", cls)

	ly := runLynx(net)
	hc := runHostCentric(net)
	fmt.Println("GPU-only LeNet service, one K40m, UDP clients:")
	fmt.Printf("  %-22s %s\n", "Lynx on BlueField:", ly.String())
	fmt.Printf("  %-22s %s\n", "host-centric baseline:", hc.String())
	fmt.Printf("  speedup: %.2fx (paper: 1.25x at 3.5K vs 2.8K req/s)\n",
		ly.Throughput()/hc.Throughput())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
