// Secure computing on the Intel VCA (§6.2 of the paper): an SGX enclave on a
// VCA node serves AES-GCM-encrypted multiply requests. With Lynx, the
// enclave's I/O runs over an mqueue in mapped memory (the ~20-line I/O
// library is small enough to live inside the trusted computing base);
// the baseline tunnels through the host network bridge and the VCA's kernel
// stack, at ~4x the latency.
//
//	go run ./examples/securevca
package main

import (
	"fmt"
	"time"

	"lynx"
	"lynx/internal/apps/secure"
	"lynx/internal/workload"
)

const payload = workload.SeqBytes + secure.CipherSize

func main() {
	cluster := lynx.NewCluster()
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	vca := server.AddVCA("vca0")
	client := cluster.AddClient("client1")

	key := []byte("0123456789abcdef")
	enclaveKey, err := secure.NewCipher(key) // never leaves the enclave
	must(err)
	clientKey, err := secure.NewCipher(key)
	must(err)

	srv := lynx.NewServer(bf.Platform(7))
	h, err := srv.Register(vca, lynx.QueueConfig{
		Kind: lynx.ServerQueue, Slots: 16, SlotSize: payload + 16,
	}, 1)
	must(err)
	svc, err := srv.AddService(lynx.UDP, 7000, nil, 1, h)
	must(err)

	q := h.AccelQueues()[0]
	enclave := vca.NewEnclave()
	computeTime := cluster.Params().SecureComputeService
	served := 0
	cluster.Spawn("vca-node0", func(p *lynx.Proc) {
		for {
			m := q.Recv(p)
			if len(m.Payload) < payload {
				continue
			}
			resp := make([]byte, payload)
			copy(resp, m.Payload[:workload.SeqBytes])
			var out []byte
			enclave.ECall(p, computeTime, func() {
				// Real AES-GCM decrypt -> multiply -> encrypt, inside the
				// enclave boundary.
				if o, err := secure.EnclaveCompute(enclaveKey, m.Payload[workload.SeqBytes:payload]); err == nil {
					out = o
				}
			})
			if out == nil {
				continue
			}
			copy(resp[workload.SeqBytes:], out)
			if q.Send(p, uint16(m.Slot), resp) != nil {
				return
			}
			served++
		}
	})
	must(srv.Start())

	// Drive 1K req/s (the paper's load).
	res := cluster.MeasureLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: svc.Addr(), Payload: payload,
		Body: func(seq uint64, buf []byte) {
			copy(buf[workload.SeqBytes:], clientKey.Seal(uint32(seq%1000)))
		},
		Clients: 1, RatePerSec: 1000,
		Duration: 200 * time.Millisecond, Warmup: 40 * time.Millisecond,
	}, client)

	fmt.Println("SGX secure-multiply server on Intel VCA, via Lynx mqueues:")
	fmt.Printf("  %v (served=%d)\n", res, served)
	fmt.Printf("  p90 latency %v — paper: 56µs, 4.3x below the host-bridge baseline\n", res.Hist.P90())

	// Demonstrate the crypto is real: round-trip one value by hand.
	sealed := clientKey.Seal(6)
	opened, err := secure.EnclaveCompute(enclaveKey, sealed)
	must(err)
	v, err := clientKey.Open(opened)
	must(err)
	fmt.Printf("  enclave computes for real: Enc(6) -> enclave -> Dec = %d (6 x %d)\n", v, secure.Multiplier)
	cluster.Close()
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
