# Convenience targets for the Lynx reproduction.

GO ?= go

.PHONY: all test bench eval examples vet clean

all: vet test

test:
	$(GO) test ./...

vet:
	gofmt -l . && $(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
eval:
	$(GO) run ./cmd/lynxbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/lenet
	$(GO) run ./examples/faceverify
	$(GO) run ./examples/scaleout
	$(GO) run ./examples/securevca
	$(GO) run ./examples/pipeline

clean:
	$(GO) clean ./...
