# Convenience targets for the Lynx reproduction.

GO ?= go

.PHONY: all test bench eval examples vet clean

all: vet test

test:
	$(GO) test ./...

vet:
	gofmt -l . && $(GO) vet ./...

# Benchmark with -count=5 so runs can be compared statistically:
#   make bench | tee old.txt ; <hack> ; make bench | tee new.txt
#   benchstat old.txt new.txt
bench:
	$(GO) test -bench=. -benchmem -count=5 ./...

# Regenerate every table and figure of the paper's evaluation.
eval:
	$(GO) run ./cmd/lynxbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/lenet
	$(GO) run ./examples/faceverify
	$(GO) run ./examples/scaleout
	$(GO) run ./examples/securevca
	$(GO) run ./examples/pipeline

clean:
	$(GO) clean ./...
