# Convenience targets for the Lynx reproduction.

GO ?= go

.PHONY: all test bench bench-compare sentinel-baseline sentinel-check eval examples vet clean

all: vet test

test:
	$(GO) test ./...

vet:
	gofmt -l . && $(GO) vet ./...

# Benchmark with -count=5 so runs can be compared statistically:
#   make bench | tee old.txt ; <hack> ; make bench | tee new.txt
#   benchstat old.txt new.txt
bench:
	$(GO) test -bench=. -benchmem -count=5 ./...

# Statistical comparison of the scheduler benchmarks against a recorded
# baseline, using the bundled dependency-free comparator (cmd/benchcmp —
# benchstat needs network access to install, this repo builds offline).
# Override BASELINE to diff against a different recording, e.g.:
#   make bench-compare BASELINE=bench/pr7.txt
BASELINE ?= bench/baseline_pr6.txt
bench-compare:
	$(GO) test -run '^$$' -bench BenchmarkSimEngine -benchmem -count=10 ./internal/sim/ | tee bench_new.txt
	$(GO) run ./cmd/benchcmp $(BASELINE) bench_new.txt -json bench/benchcmp.json

# Regression sentinel: record a full attribution baseline artifact (profile
# report, scorecard claims, knee predictions, plus the bench-compare recording
# when present), and diff the current build against the committed seed
# baseline. SENTINEL_SCALE matches the committed artifact; a schema or model
# change needs `make sentinel-baseline` to refresh bench/sentinel_baseline.json.
SENTINEL_SCALE ?= 0.25
sentinel-baseline:
	$(GO) run ./cmd/lynxbench -baseline bench/sentinel_baseline.json -scale $(SENTINEL_SCALE)

sentinel-check:
	$(GO) run ./cmd/lynxbench -compare bench/sentinel_baseline.json -scale $(SENTINEL_SCALE)

# Regenerate every table and figure of the paper's evaluation.
eval:
	$(GO) run ./cmd/lynxbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/lenet
	$(GO) run ./examples/faceverify
	$(GO) run ./examples/scaleout
	$(GO) run ./examples/securevca
	$(GO) run ./examples/pipeline

clean:
	$(GO) clean ./...
