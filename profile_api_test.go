package lynx_test

// End-to-end coverage of the public profiling surface: WithProfile arms the
// tail-latency attribution plane, (*Cluster).NewServer wires it into a
// runtime, and ProfileReport/WriteProfile expose the wait/service
// decomposition, bottleneck ranking and flight recorder.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lynx"
	"lynx/internal/workload"
)

// profiledEcho stands up a small BlueField echo deployment with the given
// options, runs a closed-loop load, and returns the cluster (still open).
func profiledEcho(t *testing.T, opts ...lynx.Option) *lynx.Cluster {
	t.Helper()
	cluster := lynx.NewCluster(opts...)
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", lynx.K40m, false, "server1")
	client := cluster.AddClient("client1")

	srv := cluster.NewServer(bf.Platform(7))
	h, err := srv.Register(gpu, lynx.QueueConfig{Kind: lynx.ServerQueue, Slots: 16, SlotSize: 128}, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := srv.AddService(lynx.UDP, 7000, nil, 2, h)
	if err != nil {
		t.Fatal(err)
	}
	qs := h.AccelQueues()
	if err := gpu.LaunchPersistent(cluster.Testbed().Sim, 2, func(tb *lynx.TB) {
		q := qs[tb.Index()]
		for {
			m := q.Recv(tb.Proc())
			tb.Compute(5 * time.Microsecond)
			if q.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	res := cluster.MeasureLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: svc.Addr(), Payload: 64,
		Clients: 8, Duration: 5 * time.Millisecond, Warmup: time.Millisecond,
		Timeout: 5 * time.Millisecond,
	}, client)
	if res.Received == 0 {
		t.Fatal("no responses")
	}
	return cluster
}

func TestProfilePublicAPI(t *testing.T) {
	cluster := profiledEcho(t, lynx.WithSeed(1), lynx.WithProfile(), lynx.WithInvariants())
	defer cluster.Close()

	if cluster.Profile() == nil {
		t.Fatal("Profile() nil with WithProfile armed")
	}
	rep := cluster.ProfileReport()
	if rep.SpansClosed == 0 {
		t.Fatal("no spans closed — profiling not wired through NewServer/NewLoad")
	}
	var sum int64
	for _, ps := range rep.Phases {
		if ps.Total.Count == 0 {
			t.Fatalf("phase %s empty", ps.Phase)
		}
		if ps.Total.Count != ps.Wait.Count || ps.Total.Count != ps.Service.Count {
			t.Fatalf("phase %s: wait/service population diverges from total", ps.Phase)
		}
		sum += ps.Total.MeanNs
	}
	if sum <= 0 || rep.EndToEnd.MeanNs <= 0 {
		t.Fatal("degenerate phase means")
	}
	// Telescoping also holds in the aggregate means (within 1ns/phase
	// integer-division slack).
	if diff := sum - rep.EndToEnd.MeanNs; diff < -5 || diff > 5 {
		t.Fatalf("phase means sum %dns vs end-to-end mean %dns", sum, rep.EndToEnd.MeanNs)
	}
	if len(rep.Bottlenecks) == 0 {
		t.Fatal("no bottleneck ranking (monitor not started by NewServer)")
	}
	if len(rep.Top) == 0 || len(rep.Recent) == 0 {
		t.Fatal("flight recorder empty")
	}

	path := filepath.Join(t.TempDir(), "prof.json")
	if err := cluster.WriteProfile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded lynx.ProfileReport
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("WriteProfile output invalid: %v", err)
	}
	if decoded.SpansClosed != rep.SpansClosed {
		t.Fatalf("file reports %d spans, live report %d", decoded.SpansClosed, rep.SpansClosed)
	}

	// The span-accounting finishers joined the invariant run and pass.
	cluster.Close()
	if inv := cluster.InvariantReport(); !inv.OK() || inv.Finishers == 0 {
		t.Fatalf("invariants: %s", inv)
	}
}

// TestProfileDisabledIsInert: without WithProfile the accessors are empty
// no-ops and nothing is written.
func TestProfileDisabledIsInert(t *testing.T) {
	cluster := profiledEcho(t, lynx.WithSeed(1))
	defer cluster.Close()
	if cluster.Profile() != nil {
		t.Fatal("Profile() non-nil without WithProfile")
	}
	if rep := cluster.ProfileReport(); rep == nil || rep.SpansClosed != 0 {
		t.Fatalf("unprofiled report = %+v, want empty", rep)
	}
	path := filepath.Join(t.TempDir(), "never.json")
	if err := cluster.WriteProfile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("WriteProfile created a file without WithProfile")
	}
	cluster.ArmProfilePostmortem(path) // must be a no-op, not a panic
}

// TestProfileDeterministicAcrossRuns: two identically seeded profiled runs
// produce byte-identical reports through the public API.
func TestProfileDeterministicAcrossRuns(t *testing.T) {
	render := func() []byte {
		cluster := profiledEcho(t, lynx.WithSeed(7), lynx.WithProfile())
		defer cluster.Close()
		path := filepath.Join(t.TempDir(), "p.json")
		if err := cluster.WriteProfile(path); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := render(), render()
	if string(a) != string(b) {
		t.Fatal("profile reports differ across identically seeded runs")
	}
}
