package cpuarch

import (
	"testing"
	"time"

	"lynx/internal/metrics"
	"lynx/internal/model"
	"lynx/internal/sim"
)

func TestExecScalesByKind(t *testing.T) {
	s := sim.New(sim.Config{Seed: 1})
	p := model.Default()
	xeon := New(s, &p, "host", model.XeonCore, 6)
	arm := New(s, &p, "bluefield", model.ARMCore, 8)
	var xeonT, armT time.Duration
	s.Spawn("x", func(pr *sim.Proc) {
		start := pr.Now()
		xeon.Exec(pr, 10*time.Microsecond)
		xeonT = pr.Now().Sub(start)
		start = pr.Now()
		arm.Exec(pr, 10*time.Microsecond)
		armT = pr.Now().Sub(start)
	})
	s.Run()
	if xeonT != 10*time.Microsecond {
		t.Fatalf("xeon exec %v", xeonT)
	}
	if armT != 17500*time.Nanosecond {
		t.Fatalf("arm exec %v, want 17.5µs (1.75x)", armT)
	}
}

func TestMachineMetadata(t *testing.T) {
	s := sim.New(sim.Config{Seed: 1})
	p := model.Default()
	m := New(s, &p, "bf", model.ARMCore, 8)
	if m.Name() != "bf" || m.Kind() != model.ARMCore || m.NumCores() != 8 {
		t.Fatal("metadata wrong")
	}
	if m.Noisy() {
		t.Fatal("machines start quiet")
	}
}

func TestCorePoolLimitsParallelism(t *testing.T) {
	s := sim.New(sim.Config{Seed: 1})
	p := model.Default()
	m := New(s, &p, "host", model.XeonCore, 2)
	var done []sim.Time
	for i := 0; i < 4; i++ {
		s.Spawn("job", func(pr *sim.Proc) {
			m.ExecOn(pr, 100*time.Microsecond)
			done = append(done, pr.Now())
		})
	}
	s.Run()
	if last := done[len(done)-1]; last != sim.Time(200*time.Microsecond) {
		t.Fatalf("4 jobs on 2 cores finished at %v, want 200µs", last)
	}
	if m.Execs() != 4 {
		t.Fatalf("execs = %d", m.Execs())
	}
}

// Reproduces the §3.2 shape: a noisy neighbor blows up p99 by an order of
// magnitude while the median moves far less.
func TestNoisyNeighborInflatesTail(t *testing.T) {
	run := func(noisy bool) (p50, p99 time.Duration) {
		s := sim.New(sim.Config{Seed: 42})
		p := model.Default()
		m := New(s, &p, "host", model.XeonCore, 6)
		m.SetNoisy(noisy)
		h := metrics.NewHistogram()
		s.Spawn("server", func(pr *sim.Proc) {
			for i := 0; i < 20000; i++ {
				start := pr.Now()
				m.Exec(pr, 100*time.Microsecond) // vecmul-ish request
				h.Record(pr.Now().Sub(start))
			}
		})
		s.Run()
		return h.Median(), h.P99()
	}
	quietP50, quietP99 := run(false)
	noisyP50, noisyP99 := run(true)
	if quietP99 != quietP50 {
		t.Fatalf("quiet run should be deterministic: p50=%v p99=%v", quietP50, quietP99)
	}
	ratio := float64(noisyP99) / float64(quietP99)
	if ratio < 5 || ratio > 25 {
		t.Fatalf("noisy/quiet p99 ratio %.1f, paper reports ~13x", ratio)
	}
	medianRatio := float64(noisyP50) / float64(quietP50)
	if medianRatio > 1.3 {
		t.Fatalf("median inflated %.2fx; interference should mostly hit the tail", medianRatio)
	}
}

func TestStallAccounting(t *testing.T) {
	s := sim.New(sim.Config{Seed: 7})
	p := model.Default()
	m := New(s, &p, "host", model.XeonCore, 1)
	m.SetNoisy(true)
	s.Spawn("srv", func(pr *sim.Proc) {
		for i := 0; i < 10000; i++ {
			m.Exec(pr, time.Microsecond)
		}
	})
	s.Run()
	// Expect roughly LLCInterferenceProb * 10000 = ~120 stalls.
	if m.Stalls() < 60 || m.Stalls() > 240 {
		t.Fatalf("stalls = %d, want ~120", m.Stalls())
	}
}
