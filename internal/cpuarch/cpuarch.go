// Package cpuarch models the compute platforms request processing runs on:
// machines with a number of cores of a given microarchitecture (Xeon host,
// BlueField ARM complex, VCA E3 nodes), plus the last-level-cache
// interference that makes co-located workloads hazardous (§3.2).
//
// Costs everywhere in the repository are calibrated for one Xeon core;
// Machine.Exec scales them by the core kind's speed factor and injects
// noisy-neighbor stalls when a cache-thrashing tenant shares the socket —
// the effect Lynx's SNIC offload eliminates (§6.2 "Performance isolation").
package cpuarch

import (
	"time"

	"lynx/internal/model"
	"lynx/internal/sim"
)

// Machine is a processor complex: N identical cores plus a shared LLC.
type Machine struct {
	sim    *sim.Sim
	params *model.Params
	name   string
	kind   model.CPUKind
	nCores int
	cores  *sim.Resource

	noisy  bool
	stalls uint64
	execs  uint64
}

// New creates a machine with n cores of the given kind.
func New(s *sim.Sim, p *model.Params, name string, kind model.CPUKind, n int) *Machine {
	return &Machine{
		sim:    s,
		params: p,
		name:   name,
		kind:   kind,
		nCores: n,
		cores:  sim.NewResource(s, n),
	}
}

// Name returns the machine name.
func (m *Machine) Name() string { return m.name }

// Kind returns the core microarchitecture.
func (m *Machine) Kind() model.CPUKind { return m.kind }

// NumCores returns the core count.
func (m *Machine) NumCores() int { return m.nCores }

// Cores exposes the core pool for callers that schedule explicit core
// occupancy (e.g. the host-centric server's worker threads).
func (m *Machine) Cores() *sim.Resource { return m.cores }

// SetNoisy toggles the cache-thrashing neighbor (§3.2: a 1140x1140 matrix
// product that fully occupies the LLC).
func (m *Machine) SetNoisy(on bool) { m.noisy = on }

// Noisy reports whether the neighbor is active.
func (m *Machine) Noisy() bool { return m.noisy }

// Stalls reports injected LLC interference stalls.
func (m *Machine) Stalls() uint64 { return m.stalls }

// Scale converts a Xeon-calibrated cost to this machine's cores.
func (m *Machine) Scale(cost time.Duration) time.Duration {
	return model.ScaleCPU(cost, m.kind)
}

// Exec charges the calling process the Xeon-calibrated cost, scaled to this
// machine's cores, plus any interference stall. The caller is assumed to
// already own a core (one long-running process per pinned thread, the
// deployment style of every server in the paper).
func (m *Machine) Exec(p *sim.Proc, cost time.Duration) {
	m.execs++
	d := m.Scale(cost)
	if m.noisy {
		// Baseline degradation: every memory access fights the neighbor
		// for LLC fill bandwidth.
		d = time.Duration(float64(d) * (1 + m.params.NeighborSlowdown/2))
		// Occasionally the working set is fully evicted and the request
		// takes a multi-hundred-microsecond refill hit; this is what blows
		// up the p99 13x in §3.2.
		if m.sim.Rand().Float64() < m.params.LLCInterferenceProb {
			m.stalls++
			frac := 0.55 + 0.45*m.sim.Rand().Float64()
			d += time.Duration(frac * float64(m.params.LLCInterferenceP99))
		}
	}
	p.Sleep(d)
}

// ExecOn acquires a core, runs Exec, and releases the core: for short tasks
// scheduled onto a shared pool rather than a pinned thread.
func (m *Machine) ExecOn(p *sim.Proc, cost time.Duration) {
	m.cores.Acquire(p)
	m.Exec(p, cost)
	m.cores.Release()
}

// Execs reports the number of Exec calls (for utilization accounting).
func (m *Machine) Execs() uint64 { return m.execs }
