// Package hostcentric implements the baseline the paper compares against
// (§6.1 "Host-centric"): a traditional network server in which the host CPU
// receives every message, then drives the GPU through CUDA streams — one
// H2D copy, a kernel launch, one D2H copy and a sync per request — with all
// driver calls serialized by the driver lock.
//
// Per §6.2 the baseline "run[s] on one CPU core because more threads result
// in a slowdown due to an NVIDIA driver bottleneck", using "a pool of
// concurrent CUDA streams, each handling one network request".
package hostcentric

import (
	"fmt"
	"time"

	"lynx/internal/accel"
	"lynx/internal/cpuarch"
	"lynx/internal/model"
	"lynx/internal/netstack"
	"lynx/internal/sim"
)

// Handler computes the response for one request (the functional payload of
// the GPU kernel; its *timing* is KernelTime).
type Handler func(req []byte) []byte

// Config shapes a host-centric server.
type Config struct {
	// Port the UDP/TCP frontend listens on.
	Port uint16
	// Proto is the client-facing transport.
	Proto Proto
	// Streams is the CUDA stream pool size (concurrent in-flight requests).
	Streams int
	// Cores is the number of CPU cores the frontend may use (1 in the
	// paper's GPU microbenchmarks, 2 for face verification).
	Cores int
	// Bypass selects VMA networking on the host.
	Bypass bool
	// KernelTime is the GPU execution time per request.
	KernelTime time.Duration
	// Exclusive marks whole-GPU kernels (LeNet) vs single-TB ones (echo).
	Exclusive bool
	// Launches is the number of dependent kernel launches per request (a
	// TVM LeNet is a chain of per-layer kernels; default 1).
	Launches int
	// H2DBytes/D2HBytes are per-request copy sizes; when zero they default
	// to the request/response payload sizes.
	H2DBytes, D2HBytes int
	// Handler computes the response (echo when nil).
	Handler Handler
	// PreKernel, when set, runs on the CPU before the GPU pipeline (e.g.
	// the §6.4 asynchronous memcached fetch). It may block on I/O.
	PreKernel func(p *sim.Proc, req []byte) []byte
}

// Proto mirrors core.Proto without importing it (keeps the baseline
// standalone).
type Proto int

const (
	// UDP transport.
	UDP Proto = iota
	// TCP transport.
	TCP
)

// Server is a host-centric accelerated network server.
type Server struct {
	sim     *sim.Sim
	params  *model.Params
	machine *cpuarch.Machine
	host    *netstack.Host
	gpu     *accel.GPU
	cfg     Config
	cores   *sim.Resource

	served  uint64
	started bool
}

// New creates a host-centric server on the machine that owns the GPU.
func New(s *sim.Sim, p *model.Params, machine *cpuarch.Machine, host *netstack.Host, gpu *accel.GPU, cfg Config) *Server {
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.Handler == nil {
		cfg.Handler = func(req []byte) []byte { return req }
	}
	return &Server{
		sim: s, params: p, machine: machine, host: host, gpu: gpu, cfg: cfg,
		cores: sim.NewResource(s, cfg.Cores),
	}
}

// exec charges CPU work against the server's core allocation (with noisy
// neighbor interference if active on the machine).
func (sv *Server) exec(p *sim.Proc, cost time.Duration) {
	sv.cores.Acquire(p)
	sv.machine.Exec(p, cost)
	sv.cores.Release()
}

// handle runs the full per-request pipeline on one stream.
func (sv *Server) handle(p *sim.Proc, st *accel.Stream, req []byte) []byte {
	if sv.cfg.PreKernel != nil {
		req = sv.cfg.PreKernel(p, req)
	}
	h2d := sv.cfg.H2DBytes
	if h2d == 0 {
		h2d = len(req)
	}
	// The CPU drives the stream. The CPU time of this design is the driver
	// calls themselves (spinning under the global driver lock), so the
	// pipeline is not additionally charged against the core pool — which
	// also models why extra cores buy the baseline nothing (§6.2).
	st.MemcpyH2D(p, h2d)
	st.LaunchN(p, sv.cfg.Launches, sv.cfg.KernelTime, sv.cfg.Exclusive)
	resp := sv.cfg.Handler(req)
	d2h := sv.cfg.D2HBytes
	if d2h == 0 {
		d2h = len(resp)
	}
	st.MemcpyD2H(p, d2h)
	st.Sync(p)
	sv.served++
	return resp
}

func (sv *Server) udpCost() time.Duration {
	return sv.params.UDPCost(model.XeonCore, sv.cfg.Bypass)
}

func (sv *Server) tcpCost() time.Duration {
	return sv.params.TCPCost(model.XeonCore, sv.cfg.Bypass)
}

// Start brings up the frontend: one worker process per CUDA stream, all
// draining the shared socket.
func (sv *Server) Start() error {
	if sv.started {
		return fmt.Errorf("hostcentric: already started")
	}
	sv.started = true
	switch sv.cfg.Proto {
	case UDP:
		sock, err := sv.host.UDPBind(sv.cfg.Port)
		if err != nil {
			return err
		}
		for i := 0; i < sv.cfg.Streams; i++ {
			st := sv.gpu.NewStream()
			sv.sim.Spawn(fmt.Sprintf("hostcentric/stream%d", i), func(p *sim.Proc) {
				for {
					dg := sock.Recv(p)
					sv.exec(p, sv.udpCost())
					resp := sv.handle(p, st, dg.Payload)
					sv.exec(p, sv.udpCost())
					sock.SendTo(dg.From, resp)
				}
			})
		}
	case TCP:
		l, err := sv.host.TCPListen(sv.cfg.Port)
		if err != nil {
			return err
		}
		sv.sim.Spawn("hostcentric/accept", func(p *sim.Proc) {
			for {
				conn := l.Accept(p)
				st := sv.gpu.NewStream()
				sv.sim.Spawn("hostcentric/conn", func(p *sim.Proc) {
					for {
						msg, err := conn.Recv(p)
						if err != nil {
							return
						}
						sv.exec(p, sv.tcpCost())
						resp := sv.handle(p, st, msg)
						sv.exec(p, sv.tcpCost())
						if conn.Send(p, resp) != nil {
							return
						}
					}
				})
			}
		})
	}
	return nil
}

// Served reports completed requests.
func (sv *Server) Served() uint64 { return sv.served }
