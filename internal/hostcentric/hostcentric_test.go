package hostcentric_test

import (
	"testing"
	"time"

	"lynx/internal/accel"
	"lynx/internal/hostcentric"
	"lynx/internal/metrics"
	"lynx/internal/model"
	"lynx/internal/netstack"
	"lynx/internal/sim"
	"lynx/internal/snic"
)

type bed struct {
	tb     *snic.Testbed
	server *snic.Machine
	gpu    *accel.GPU
	client *netstack.Host
}

func newBed(seed uint64) *bed {
	p := model.Default()
	tb := snic.NewTestbed(seed, &p)
	server := tb.NewMachine("server1", 6)
	gpu := server.AddGPU("gpu0", accel.K40m, false, "server1")
	return &bed{tb: tb, server: server, gpu: gpu, client: tb.AddClient("client1")}
}

func TestEchoRoundTripLatency(t *testing.T) {
	b := newBed(1)
	sv := hostcentric.New(b.tb.Sim, b.tb.Params, b.server.CPU, b.server.NetHost, b.gpu, hostcentric.Config{
		Port: 7000, Streams: 1, Cores: 1, Bypass: true,
		KernelTime: 100 * time.Microsecond,
	})
	if err := sv.Start(); err != nil {
		t.Fatal(err)
	}
	hist := metrics.NewHistogram()
	cli := b.client.MustUDPBind(9000)
	b.tb.Sim.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			start := p.Now()
			cli.SendTo(netstack.Addr{Host: "server1", Port: 7000}, make([]byte, 4))
			dg := cli.Recv(p)
			hist.Record(p.Now().Sub(start))
			if len(dg.Payload) != 4 {
				t.Errorf("payload %d bytes", len(dg.Payload))
			}
		}
	})
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return hist.Count() == 50 })
	b.tb.Sim.Shutdown()
	// §3.2: a 100 µs kernel measures ~130 µs end to end (30 µs management
	// overhead), plus a few µs of wire and stack time.
	med := hist.Median()
	if med < 128*time.Microsecond || med > 145*time.Microsecond {
		t.Fatalf("median %v, paper measures ~130µs + wire", med)
	}
	if sv.Served() != 50 {
		t.Fatalf("served %d", sv.Served())
	}
}

// §6.2: host-centric throughput is capped by the driver lock (~30 µs of
// serialized driver work per request) no matter how many streams are used.
func TestThroughputCappedByDriverLock(t *testing.T) {
	for _, streams := range []int{4, 32} {
		b := newBed(2)
		sv := hostcentric.New(b.tb.Sim, b.tb.Params, b.server.CPU, b.server.NetHost, b.gpu, hostcentric.Config{
			Port: 7000, Streams: streams, Cores: 1, Bypass: true,
			KernelTime: 20 * time.Microsecond,
		})
		sv.Start()
		cli := b.client.MustUDPBind(9000)
		// Open-loop flood for 20 ms.
		b.tb.Sim.Spawn("flood", func(p *sim.Proc) {
			for i := 0; i < 4000; i++ {
				cli.SendTo(netstack.Addr{Host: "server1", Port: 7000}, make([]byte, 64))
				p.Sleep(5 * time.Microsecond)
			}
		})
		window := 20 * time.Millisecond
		b.tb.Sim.RunUntil(sim.Time(window))
		b.tb.Sim.Shutdown()
		rate := float64(sv.Served()) / window.Seconds()
		// Driver occupancy per request = 2x7.5 + 10 + 5 = 30 µs -> ~33K/s.
		if rate < 20e3 || rate > 40e3 {
			t.Fatalf("streams=%d: rate %.0f req/s, driver lock should cap at ~33K", streams, rate)
		}
	}
}

func TestTCPServer(t *testing.T) {
	b := newBed(3)
	sv := hostcentric.New(b.tb.Sim, b.tb.Params, b.server.CPU, b.server.NetHost, b.gpu, hostcentric.Config{
		Port: 7000, Proto: hostcentric.TCP, Streams: 2, Cores: 1, Bypass: true,
		KernelTime: 10 * time.Microsecond,
		Handler:    func(req []byte) []byte { return append([]byte("ok:"), req...) },
	})
	sv.Start()
	var got string
	b.tb.Sim.Spawn("client", func(p *sim.Proc) {
		conn, err := b.client.TCPDial(p, netstack.Addr{Host: "server1", Port: 7000})
		if err != nil {
			t.Error(err)
			return
		}
		conn.Send(p, []byte("hi"))
		msg, err := conn.Recv(p)
		if err != nil {
			t.Error(err)
			return
		}
		got = string(msg)
	})
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return got != "" })
	b.tb.Sim.Shutdown()
	if got != "ok:hi" {
		t.Fatalf("got %q", got)
	}
}

func TestPreKernelHookRuns(t *testing.T) {
	b := newBed(4)
	ran := 0
	sv := hostcentric.New(b.tb.Sim, b.tb.Params, b.server.CPU, b.server.NetHost, b.gpu, hostcentric.Config{
		Port: 7000, Streams: 1, Cores: 2, Bypass: true,
		KernelTime: 10 * time.Microsecond,
		PreKernel: func(p *sim.Proc, req []byte) []byte {
			ran++
			p.Sleep(5 * time.Microsecond) // e.g. memcached round trip
			return append(req, '!')
		},
	})
	sv.Start()
	var resp []byte
	cli := b.client.MustUDPBind(9000)
	b.tb.Sim.Spawn("client", func(p *sim.Proc) {
		cli.SendTo(netstack.Addr{Host: "server1", Port: 7000}, []byte("x"))
		dg := cli.Recv(p)
		resp = dg.Payload
	})
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return resp != nil })
	b.tb.Sim.Shutdown()
	if ran != 1 || string(resp) != "x!" {
		t.Fatalf("ran=%d resp=%q", ran, resp)
	}
}

func TestDoubleStartFails(t *testing.T) {
	b := newBed(5)
	sv := hostcentric.New(b.tb.Sim, b.tb.Params, b.server.CPU, b.server.NetHost, b.gpu, hostcentric.Config{Port: 7000})
	if err := sv.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sv.Start(); err == nil {
		t.Fatal("double start must fail")
	}
}
