package check

import (
	"strings"
	"testing"
)

func TestNilCheckerIsDisabledNoOp(t *testing.T) {
	var c *Checker
	if c.Enabled() {
		t.Fatal("nil checker reports enabled")
	}
	c.Failf("x", "boom %d", 1)
	c.AddFinisher("f", func(fail func(string, ...any)) { fail("never") })
	r := c.Finalize()
	if !r.OK() || r.Finishers != 0 {
		t.Fatalf("nil checker report = %+v, want empty ok", r)
	}
}

func TestCheckerRecordsViolationsAndFinishers(t *testing.T) {
	c := New()
	if !c.Enabled() {
		t.Fatal("enabled checker reports disabled")
	}
	c.Failf("mqueue.ring-bound", "q%d over", 3)
	c.AddFinisher("core.request-conservation", func(fail func(string, ...any)) {
		fail("lost %d requests", 2)
	})
	c.AddFinisher("fabric.byte-conservation", func(fail func(string, ...any)) {
		// healthy: no failure
	})
	r := c.Finalize()
	if r.OK() {
		t.Fatal("report should not be OK")
	}
	if r.Finishers != 2 {
		t.Fatalf("Finishers = %d, want 2", r.Finishers)
	}
	if len(r.Violations) != 2 {
		t.Fatalf("violations = %v, want 2", r.Violations)
	}
	if r.Violations[0].Kind != "mqueue.ring-bound" || r.Violations[0].Detail != "q3 over" {
		t.Fatalf("violation[0] = %+v", r.Violations[0])
	}
	if r.Violations[1].Kind != "core.request-conservation" {
		t.Fatalf("violation[1] = %+v", r.Violations[1])
	}
	if !strings.Contains(r.String(), "FAILED") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestFinalizeRunsFinishersOnce(t *testing.T) {
	c := New()
	runs := 0
	c.AddFinisher("f", func(fail func(string, ...any)) { runs++ })
	c.Finalize()
	c.Finalize()
	if runs != 1 {
		t.Fatalf("finisher ran %d times, want 1", runs)
	}
}

func TestViolationCap(t *testing.T) {
	c := New()
	for i := 0; i < maxViolations+10; i++ {
		c.Failf("k", "v%d", i)
	}
	r := c.Snapshot()
	if len(r.Violations) != maxViolations {
		t.Fatalf("violations = %d, want %d", len(r.Violations), maxViolations)
	}
	if r.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", r.Dropped)
	}
	if r.OK() {
		t.Fatal("capped report must not be OK")
	}
}

func TestAggregateMerges(t *testing.T) {
	var nilA *Aggregate
	nilA.Add(Report{Violations: []Violation{{Kind: "k"}}})
	if nilA.Enabled() || nilA.Runs() != 0 || !nilA.Report().OK() {
		t.Fatal("nil aggregate must discard")
	}
	a := NewAggregate()
	a.Add(Report{Finishers: 2})
	a.Add(Report{Finishers: 1, Violations: []Violation{{Kind: "x", Detail: "d"}}, Dropped: 3})
	r := a.Report()
	if a.Runs() != 2 || r.Finishers != 3 || len(r.Violations) != 1 || r.Dropped != 3 {
		t.Fatalf("aggregate report = %+v runs=%d", r, a.Runs())
	}
	if strings.Contains(r.String(), "ok (") {
		t.Fatalf("String() = %q, want failure summary", r.String())
	}
}

func TestOKReportString(t *testing.T) {
	r := Report{Finishers: 4}
	if !r.OK() || !strings.Contains(r.String(), "ok") {
		t.Fatalf("report = %+v, String = %q", r, r.String())
	}
}

func f64(v float64) *float64 { return &v }

func TestScorecardParseAndEvaluate(t *testing.T) {
	data := []byte(`{"claims": [
		{"id": "a.low", "metric": "a", "min": 1.5, "paper": "2x"},
		{"id": "a.high", "metric": "a", "max": 3.0},
		{"id": "b.band", "metric": "b", "min": 10, "max": 20},
		{"id": "c.gone", "metric": "c", "min": 0}
	]}`)
	sc, err := ParseScorecard(data)
	if err != nil {
		t.Fatal(err)
	}
	res := sc.Evaluate(map[string]float64{"a": 2.0, "b": 25})
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	if !res[0].Pass || !res[1].Pass {
		t.Fatalf("claims on a should pass: %v %v", res[0], res[1])
	}
	if res[2].Pass {
		t.Fatalf("b.band should fail: %v", res[2])
	}
	if res[3].Pass || !res[3].Missing {
		t.Fatalf("missing metric must fail: %v", res[3])
	}
	fails := Failures(res)
	if len(fails) != 2 {
		t.Fatalf("failures = %v", fails)
	}
	if !strings.Contains(res[3].String(), "not produced") {
		t.Fatalf("String() = %q", res[3].String())
	}
}

func TestScorecardParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":     `{"claims": []}`,
		"no-bounds": `{"claims": [{"id": "x", "metric": "m"}]}`,
		"no-id":     `{"claims": [{"metric": "m", "min": 1}]}`,
		"dup":       `{"claims": [{"id": "x", "metric": "m", "min": 1}, {"id": "x", "metric": "n", "min": 1}]}`,
		"syntax":    `{`,
	}
	for name, doc := range cases {
		if _, err := ParseScorecard([]byte(doc)); err == nil {
			t.Errorf("%s: ParseScorecard accepted %q", name, doc)
		}
	}
}

func TestClaimBand(t *testing.T) {
	if b := (Claim{Min: f64(1), Max: f64(2)}).Band(); b != "[1, 2]" {
		t.Fatalf("band = %q", b)
	}
	if b := (Claim{Min: f64(5)}).Band(); b != ">= 5" {
		t.Fatalf("band = %q", b)
	}
	if b := (Claim{Max: f64(5)}).Band(); b != "<= 5" {
		t.Fatalf("band = %q", b)
	}
}
