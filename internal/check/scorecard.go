// Scorecard: the paper's evaluation shapes (orderings, ratio bands,
// latency floors) as machine-readable claims. internal/experiments embeds
// scorecard.json, computes the named metrics from fast measurement runs,
// and Evaluate turns (claims, metrics) into pass/fail results that
// TestScorecard and `lynxbench -exp scorecard` gate on.
package check

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Claim is one shape assertion about a named metric. Bounds are pointers so
// one-sided claims ("at least 5x") leave the other side open.
type Claim struct {
	// ID names the claim, dotted by figure: "fig6.bf_240mq_short".
	ID string `json:"id"`
	// Metric is the key the experiment harness must produce.
	Metric string `json:"metric"`
	// Min/Max bound the metric's tolerated band (inclusive); nil = open.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// Paper cites the number or shape the paper reports, for the table.
	Paper string `json:"paper,omitempty"`
	// Desc states the claim in prose.
	Desc string `json:"desc,omitempty"`
}

// Band formats the tolerated band.
func (c Claim) Band() string {
	switch {
	case c.Min != nil && c.Max != nil:
		return fmt.Sprintf("[%g, %g]", *c.Min, *c.Max)
	case c.Min != nil:
		return fmt.Sprintf(">= %g", *c.Min)
	case c.Max != nil:
		return fmt.Sprintf("<= %g", *c.Max)
	}
	return "(unbounded)"
}

// Scorecard is a set of claims.
type Scorecard struct {
	Claims []Claim `json:"claims"`
}

// Fingerprint returns a short stable digest of the claim set (IDs, metrics,
// bands). Two runs evaluated against scorecards with different fingerprints
// are not comparable claim-for-claim; the regression sentinel records it in
// every artifact so -compare can refuse apples-to-oranges diffs.
func (sc Scorecard) Fingerprint() string {
	data, err := json.Marshal(sc.Claims)
	if err != nil {
		// Claims are plain data; Marshal cannot fail on them.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// ParseScorecard decodes a scorecard JSON document and validates that every
// claim has an ID, a metric, and at least one bound.
func ParseScorecard(data []byte) (Scorecard, error) {
	var sc Scorecard
	if err := json.Unmarshal(data, &sc); err != nil {
		return Scorecard{}, fmt.Errorf("scorecard: %w", err)
	}
	if len(sc.Claims) == 0 {
		return Scorecard{}, fmt.Errorf("scorecard: no claims")
	}
	seen := map[string]bool{}
	for _, c := range sc.Claims {
		if c.ID == "" || c.Metric == "" {
			return Scorecard{}, fmt.Errorf("scorecard: claim %+v missing id or metric", c)
		}
		if c.Min == nil && c.Max == nil {
			return Scorecard{}, fmt.Errorf("scorecard: claim %s has no bounds", c.ID)
		}
		if seen[c.ID] {
			return Scorecard{}, fmt.Errorf("scorecard: duplicate claim id %s", c.ID)
		}
		seen[c.ID] = true
	}
	return sc, nil
}

// ClaimResult is one evaluated claim.
type ClaimResult struct {
	Claim Claim
	// Value is the measured metric (meaningless when Missing).
	Value float64
	// Missing reports that the harness produced no such metric — always a
	// failure, so scorecard.json and the measurement code cannot drift
	// silently.
	Missing bool
	Pass    bool
}

func (r ClaimResult) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	if r.Missing {
		return fmt.Sprintf("%s %s: metric %q not produced", status, r.Claim.ID, r.Claim.Metric)
	}
	return fmt.Sprintf("%s %s: %s = %.3g, want %s", status, r.Claim.ID, r.Claim.Metric, r.Value, r.Claim.Band())
}

// Evaluate checks every claim against the measured metrics, in claim order.
func (sc Scorecard) Evaluate(metrics map[string]float64) []ClaimResult {
	out := make([]ClaimResult, 0, len(sc.Claims))
	for _, c := range sc.Claims {
		v, ok := metrics[c.Metric]
		res := ClaimResult{Claim: c, Value: v, Missing: !ok, Pass: ok}
		if ok {
			if c.Min != nil && v < *c.Min {
				res.Pass = false
			}
			if c.Max != nil && v > *c.Max {
				res.Pass = false
			}
		}
		out = append(out, res)
	}
	return out
}

// Failures filters the failing results.
func Failures(results []ClaimResult) []ClaimResult {
	var out []ClaimResult
	for _, r := range results {
		if !r.Pass {
			out = append(out, r)
		}
	}
	return out
}
