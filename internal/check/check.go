// Package check is the repository's validation subsystem: cheap runtime
// invariant hooks (request/byte conservation, ring bounds, counter
// monotonicity, virtual-time sanity) and the machine-readable scorecard
// gate that turns the paper's evaluation shapes into regression tests.
//
// The package is a leaf: it imports nothing from the rest of the module, so
// every layer (sim, mqueue, fabric, netstack, core, snic, workload) can hold
// a *Checker without import cycles.
//
// All Checker methods are safe on a nil receiver and do nothing, so
// instrumented code follows one idiom:
//
//	if ck := cfg.Check; ck.Enabled() && rxHead-rxConsumed > slots {
//	    ck.Failf("mqueue.ring-bound", "q%d: head %d consumed %d", id, rxHead, rxConsumed)
//	}
//
// Disabled (nil) checkers cost a single pointer test on the hot path and
// zero allocations. Violations are only materialized when an invariant
// actually fails, so an enabled checker on a healthy run allocates only at
// finisher registration time.
package check

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// maxViolations bounds the violation list so a systematically broken run
// cannot accumulate unbounded garbage; the overflow is counted in Dropped.
const maxViolations = 64

// Violation is one failed invariant.
type Violation struct {
	// Kind names the invariant, dotted by layer: "mqueue.ring-bound",
	// "core.request-conservation", "fabric.byte-conservation", ...
	Kind string
	// Detail is the formatted failure message.
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// Checker accumulates invariant violations for one simulated cluster. The
// zero of *Checker (nil) is a disabled checker: every method is a no-op.
type Checker struct {
	mu          sync.Mutex
	violations  []Violation
	dropped     int
	finishers   []finisher
	finalized   bool
	onViolation func(Violation)
	fired       bool
}

type finisher struct {
	name string
	fn   func(fail func(format string, args ...any))
}

// New creates an enabled checker.
func New() *Checker { return &Checker{} }

// Enabled reports whether the checker records anything. It is the guard
// instrumented code uses before evaluating an invariant's condition.
func (c *Checker) Enabled() bool { return c != nil }

// SetOnViolation installs a hook invoked once, on the first recorded
// violation. The hook runs outside the checker's lock, so it may call back
// into the checker (Snapshot, Failf) or dump arbitrary state — this is how
// the profiler arms its postmortem flight-recorder dump. Last call wins.
// Nil-safe.
func (c *Checker) SetOnViolation(fn func(Violation)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.onViolation = fn
	c.mu.Unlock()
}

// Failf records a violation of the named invariant. Nil-safe.
func (c *Checker) Failf(kind, format string, args ...any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.failLocked(kind, format, args...)
	var fire func(Violation)
	var first Violation
	if !c.fired && c.onViolation != nil && len(c.violations) > 0 {
		c.fired = true
		fire, first = c.onViolation, c.violations[0]
	}
	c.mu.Unlock()
	if fire != nil {
		fire(first)
	}
}

func (c *Checker) failLocked(kind, format string, args ...any) {
	if len(c.violations) >= maxViolations {
		c.dropped++
		return
	}
	c.violations = append(c.violations, Violation{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// AddFinisher registers an end-of-run check, evaluated once by Finalize
// (typically from the simulator's shutdown hook, when all in-flight state
// has settled). The fail callback records violations under the given name.
// Nil-safe.
func (c *Checker) AddFinisher(name string, fn func(fail func(format string, args ...any))) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finishers = append(c.finishers, finisher{name: name, fn: fn})
}

// Finalize runs the registered finishers (once; later calls are no-ops) and
// returns the report. Nil-safe: a disabled checker reports an empty, passing
// report.
func (c *Checker) Finalize() Report {
	if c == nil {
		return Report{}
	}
	c.mu.Lock()
	fins := c.finishers
	run := !c.finalized
	c.finalized = true
	c.mu.Unlock()
	if run {
		for _, f := range fins {
			name := f.name
			f.fn(func(format string, args ...any) {
				c.Failf(name, format, args...)
			})
		}
	}
	return c.Snapshot()
}

// Snapshot returns the report so far without running finishers. Nil-safe.
func (c *Checker) Snapshot() Report {
	if c == nil {
		return Report{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r := Report{
		Finishers:  len(c.finishers),
		Violations: append([]Violation(nil), c.violations...),
		Dropped:    c.dropped,
	}
	return r
}

// Report is the outcome of a checked run.
type Report struct {
	// Finishers is the number of end-of-run checks that were registered
	// (and, after Finalize, evaluated).
	Finishers int
	// Violations lists the recorded invariant failures, capped at
	// maxViolations.
	Violations []Violation
	// Dropped counts violations beyond the cap.
	Dropped int
}

// OK reports whether the run was violation-free.
func (r Report) OK() bool { return len(r.Violations) == 0 && r.Dropped == 0 }

// Merge folds o into r.
func (r Report) Merge(o Report) Report {
	r.Finishers += o.Finishers
	r.Dropped += o.Dropped
	for _, v := range o.Violations {
		if len(r.Violations) >= maxViolations {
			r.Dropped++
			continue
		}
		r.Violations = append(r.Violations, v)
	}
	return r
}

// String summarizes the report, grouping violations by kind.
func (r Report) String() string {
	if r.OK() {
		return fmt.Sprintf("invariants: ok (%d finishers, 0 violations)", r.Finishers)
	}
	byKind := map[string]int{}
	for _, v := range r.Violations {
		byKind[v.Kind]++
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	fmt.Fprintf(&b, "invariants: FAILED (%d violations", len(r.Violations))
	if r.Dropped > 0 {
		fmt.Fprintf(&b, ", %d dropped", r.Dropped)
	}
	b.WriteString(")")
	for _, k := range kinds {
		fmt.Fprintf(&b, "\n  %s (%d)", k, byKind[k])
	}
	for i, v := range r.Violations {
		if i == 8 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(r.Violations)-i)
			break
		}
		fmt.Fprintf(&b, "\n  - %s", v)
	}
	return b.String()
}

// Aggregate merges reports from many independently checked simulations (the
// parallel experiment sweeps): each sweep point finalizes its own Checker
// and Adds the result here. Aggregate is safe for concurrent use; a nil
// *Aggregate discards everything.
type Aggregate struct {
	mu     sync.Mutex
	report Report
	runs   int
}

// NewAggregate creates an empty aggregate.
func NewAggregate() *Aggregate { return &Aggregate{} }

// Enabled reports whether the aggregate collects anything. Nil-safe.
func (a *Aggregate) Enabled() bool { return a != nil }

// Add merges one run's report. Nil-safe.
func (a *Aggregate) Add(r Report) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.report = a.report.Merge(r)
	a.runs++
}

// Runs reports how many reports were merged. Nil-safe.
func (a *Aggregate) Runs() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.runs
}

// Report returns the merged report. Nil-safe.
func (a *Aggregate) Report() Report {
	if a == nil {
		return Report{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.report
}
