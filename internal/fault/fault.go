// Package fault is the deterministic fault-injection plane of the Lynx
// simulation. Production SmartNIC stacks live or die by how they behave under
// loss, stalls and overload, so every layer of the simulated hardware stack
// consults one seeded Plan:
//
//   - the netstack asks Datagram/TCPDelay whether to drop, duplicate or
//     delay a message on the wire;
//   - the RDMA engine asks RDMAPerturb whether a work request suffers a
//     completion error (retried transparently by the RC transport, surfaced
//     as latency plus a counter) or a latency spike;
//   - the PCIe fabric asks PCIePerturb for per-transfer latency spikes;
//   - the accelerator-side mqueue library asks StallRemaining whether its
//     GPU threadblock or VCA node is inside a configured stall window.
//
// The Plan draws from its own seeded PCG stream, independent of the
// simulation's: two clusters built with the same simulation seed and the same
// fault Config produce byte-identical runs. A nil *Plan is valid and injects
// nothing, so call sites never need nil checks.
package fault

import (
	"fmt"
	"math/rand/v2"
	"time"

	"lynx/internal/sim"
)

// Stall schedules one accelerator stall window in virtual time: the targeted
// queue's accelerator-side context (persistent-kernel threadblock, VCA node
// loop) freezes on its next mqueue access inside the window and resumes when
// the window closes.
type Stall struct {
	// Accel names the accelerator (as registered on the fabric, e.g. "gpu0").
	Accel string
	// Queue is the mqueue index within the accelerator's group; negative
	// stalls every queue of the accelerator.
	Queue int
	// At is the window start, in virtual time since boot.
	At time.Duration
	// For is the window length.
	For time.Duration
}

// Config declares the faults a Plan injects. The zero value injects nothing.
type Config struct {
	// Seed for the fault plan's own random stream (independent of the
	// simulation seed). The zero seed is valid and deterministic.
	Seed uint64

	// --- Network (per-datagram, consulted by the netstack) ---------------

	// DropRate is the probability a UDP datagram is lost on the wire. On
	// TCP the same rate manifests as retransmission delay instead (the
	// simulated TCP is reliable, like the real one).
	DropRate float64
	// DupRate is the probability a UDP datagram is delivered twice.
	DupRate float64
	// DelayRate is the probability a datagram is delayed by a uniform draw
	// in (0, DelayMax].
	DelayRate float64
	// DelayMax bounds injected datagram delays (default 200µs).
	DelayMax time.Duration
	// TCPRetransmit is the added delay a lost TCP segment costs (one
	// retransmission timeout; default 1ms).
	TCPRetransmit time.Duration

	// --- RDMA / PCIe ------------------------------------------------------

	// RDMAErrRate is the probability a work request completes in error and
	// is retried by the RC transport (go-back-N), costing RDMARetryLatency.
	RDMAErrRate float64
	// RDMARetryLatency is the added latency of one RDMA retry (default 8µs).
	RDMARetryLatency time.Duration
	// RDMASpikeRate is the probability of an RDMA latency spike of RDMASpike.
	RDMASpikeRate float64
	// RDMASpike is the spike magnitude (default 20µs).
	RDMASpike time.Duration
	// PCIeSpikeRate is the probability of a per-link-transfer PCIe latency
	// spike of PCIeSpike (default 5µs).
	PCIeSpikeRate float64
	// PCIeSpike is the spike magnitude.
	PCIeSpike time.Duration

	// --- Accelerators -----------------------------------------------------

	// Stalls schedules accelerator stall windows.
	Stalls []Stall
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.DropRate > 0 || c.DupRate > 0 || c.DelayRate > 0 ||
		c.RDMAErrRate > 0 || c.RDMASpikeRate > 0 || c.PCIeSpikeRate > 0 ||
		len(c.Stalls) > 0
}

// Stats counts injected faults, for observability and tests.
type Stats struct {
	DatagramsDropped    uint64
	DatagramsDuplicated uint64
	DatagramsDelayed    uint64
	TCPDelays           uint64
	RDMAErrors          uint64
	RDMASpikes          uint64
	PCIeSpikes          uint64
	StallHits           uint64
}

// String formats the counters on one line (stable field order, so it is safe
// to compare across runs in determinism tests).
func (s Stats) String() string {
	return fmt.Sprintf("drop=%d dup=%d delay=%d tcpdelay=%d rdmaerr=%d rdmaspike=%d pciespike=%d stallhits=%d",
		s.DatagramsDropped, s.DatagramsDuplicated, s.DatagramsDelayed, s.TCPDelays,
		s.RDMAErrors, s.RDMASpikes, s.PCIeSpikes, s.StallHits)
}

// Fate is the outcome drawn for one datagram.
type Fate int

const (
	// Deliver passes the datagram through untouched.
	Deliver Fate = iota
	// Drop loses it on the wire.
	Drop
	// Duplicate delivers it twice.
	Duplicate
)

// Plan is a live fault injector built from a Config. All methods are safe on
// a nil receiver (no faults).
type Plan struct {
	cfg   Config
	rng   *rand.Rand
	stats Stats
}

// NewPlan builds a Plan, filling config defaults. A disabled config returns a
// valid Plan that injects nothing (callers may also keep a nil *Plan).
func NewPlan(cfg Config) *Plan {
	if cfg.DelayMax <= 0 {
		cfg.DelayMax = 200 * time.Microsecond
	}
	if cfg.TCPRetransmit <= 0 {
		cfg.TCPRetransmit = time.Millisecond
	}
	if cfg.RDMARetryLatency <= 0 {
		cfg.RDMARetryLatency = 8 * time.Microsecond
	}
	if cfg.RDMASpike <= 0 {
		cfg.RDMASpike = 20 * time.Microsecond
	}
	if cfg.PCIeSpike <= 0 {
		cfg.PCIeSpike = 5 * time.Microsecond
	}
	return &Plan{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0xfa17_fa17_fa17_fa17)),
	}
}

// Config returns the plan's configuration (with defaults filled).
func (pl *Plan) Config() Config {
	if pl == nil {
		return Config{}
	}
	return pl.cfg
}

// Enabled reports whether the plan injects anything.
func (pl *Plan) Enabled() bool { return pl != nil && pl.cfg.Enabled() }

// Stats returns the fault counters so far.
func (pl *Plan) Stats() Stats {
	if pl == nil {
		return Stats{}
	}
	return pl.stats
}

// Datagram draws the fate of one UDP datagram and, for Deliver/Duplicate, an
// extra delivery delay (zero when no delay fault fires).
func (pl *Plan) Datagram() (Fate, time.Duration) {
	if pl == nil {
		return Deliver, 0
	}
	c := &pl.cfg
	if c.DropRate > 0 && pl.rng.Float64() < c.DropRate {
		pl.stats.DatagramsDropped++
		return Drop, 0
	}
	fate := Deliver
	if c.DupRate > 0 && pl.rng.Float64() < c.DupRate {
		pl.stats.DatagramsDuplicated++
		fate = Duplicate
	}
	var delay time.Duration
	if c.DelayRate > 0 && pl.rng.Float64() < c.DelayRate {
		pl.stats.DatagramsDelayed++
		delay = time.Duration(pl.rng.Float64() * float64(c.DelayMax))
	}
	return fate, delay
}

// TCPDelay draws the extra delay of one TCP segment: a lost segment costs a
// retransmission timeout (the reliable transport masks the loss).
func (pl *Plan) TCPDelay() time.Duration {
	if pl == nil {
		return 0
	}
	c := &pl.cfg
	var d time.Duration
	if c.DropRate > 0 && pl.rng.Float64() < c.DropRate {
		pl.stats.TCPDelays++
		d += c.TCPRetransmit
	}
	if c.DelayRate > 0 && pl.rng.Float64() < c.DelayRate {
		pl.stats.DatagramsDelayed++
		d += time.Duration(pl.rng.Float64() * float64(c.DelayMax))
	}
	return d
}

// RDMAPerturb draws the perturbation of one RDMA work request: extra transit
// latency, and whether the WR suffered a (transparently retried) completion
// error.
func (pl *Plan) RDMAPerturb() (extra time.Duration, errored bool) {
	if pl == nil {
		return 0, false
	}
	c := &pl.cfg
	if c.RDMAErrRate > 0 && pl.rng.Float64() < c.RDMAErrRate {
		pl.stats.RDMAErrors++
		extra += c.RDMARetryLatency
		errored = true
	}
	if c.RDMASpikeRate > 0 && pl.rng.Float64() < c.RDMASpikeRate {
		pl.stats.RDMASpikes++
		extra += c.RDMASpike
	}
	return extra, errored
}

// PCIePerturb draws the extra latency of one PCIe link transfer.
func (pl *Plan) PCIePerturb() time.Duration {
	if pl == nil {
		return 0
	}
	c := &pl.cfg
	if c.PCIeSpikeRate > 0 && pl.rng.Float64() < c.PCIeSpikeRate {
		pl.stats.PCIeSpikes++
		return c.PCIeSpike
	}
	return 0
}

// StallRemaining reports how long the given accelerator queue must freeze
// from now: the time left in the latest-ending stall window covering now, or
// zero outside every window. Accelerator-side mqueue accesses sleep this long
// before touching the rings.
func (pl *Plan) StallRemaining(accel string, queue int, now sim.Time) time.Duration {
	if pl == nil || len(pl.cfg.Stalls) == 0 {
		return 0
	}
	var rem time.Duration
	for _, st := range pl.cfg.Stalls {
		if st.Accel != accel || (st.Queue >= 0 && st.Queue != queue) {
			continue
		}
		start := sim.Time(0).Add(st.At)
		end := start.Add(st.For)
		if now >= start && now < end {
			if left := end.Sub(now); left > rem {
				rem = left
			}
		}
	}
	if rem > 0 {
		pl.stats.StallHits++
	}
	return rem
}
