package fault

import (
	"testing"
	"time"

	"lynx/internal/sim"
)

func TestNilPlanInjectsNothing(t *testing.T) {
	var pl *Plan
	if pl.Enabled() {
		t.Fatal("nil plan enabled")
	}
	fate, delay := pl.Datagram()
	if fate != Deliver || delay != 0 {
		t.Fatalf("nil Datagram = %v %v", fate, delay)
	}
	if pl.TCPDelay() != 0 {
		t.Fatal("nil TCPDelay non-zero")
	}
	if extra, errored := pl.RDMAPerturb(); extra != 0 || errored {
		t.Fatal("nil RDMAPerturb non-zero")
	}
	if pl.PCIePerturb() != 0 {
		t.Fatal("nil PCIePerturb non-zero")
	}
	if pl.StallRemaining("gpu0", 0, 0) != 0 {
		t.Fatal("nil StallRemaining non-zero")
	}
	if pl.Stats() != (Stats{}) {
		t.Fatal("nil Stats non-zero")
	}
}

func TestZeroConfigDisabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config enabled")
	}
	if !(Config{DropRate: 0.1}).Enabled() {
		t.Fatal("drop config disabled")
	}
	if !(Config{Stalls: []Stall{{Accel: "gpu0"}}}).Enabled() {
		t.Fatal("stall config disabled")
	}
}

// The plan's stream is its own: identical configs draw identical fates.
func TestDeterministicDraws(t *testing.T) {
	cfg := Config{Seed: 9, DropRate: 0.1, DupRate: 0.05, DelayRate: 0.2}
	a, b := NewPlan(cfg), NewPlan(cfg)
	for i := 0; i < 10000; i++ {
		fa, da := a.Datagram()
		fb, db := b.Datagram()
		if fa != fb || da != db {
			t.Fatalf("draw %d diverged: (%v,%v) vs (%v,%v)", i, fa, da, fb, db)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %v vs %v", a.Stats(), b.Stats())
	}
}

// Empirical rates must track the configured probabilities.
func TestDatagramRates(t *testing.T) {
	pl := NewPlan(Config{Seed: 3, DropRate: 0.1, DupRate: 0.05, DelayRate: 0.2})
	const n = 200000
	for i := 0; i < n; i++ {
		pl.Datagram()
	}
	st := pl.Stats()
	near := func(name string, got uint64, want float64) {
		frac := float64(got) / n
		if frac < want*0.9 || frac > want*1.1 {
			t.Errorf("%s rate %.4f, want ~%.4f", name, frac, want)
		}
	}
	near("drop", st.DatagramsDropped, 0.1)
	// Dup and delay are drawn only for non-dropped datagrams.
	near("dup", st.DatagramsDuplicated, 0.05*0.9)
	near("delay", st.DatagramsDelayed, 0.2*0.9)
}

func TestStallWindows(t *testing.T) {
	pl := NewPlan(Config{Stalls: []Stall{
		{Accel: "gpu0", Queue: 1, At: 10 * time.Millisecond, For: 5 * time.Millisecond},
		{Accel: "vca0", Queue: -1, At: 0, For: time.Millisecond},
	}})
	at := func(d time.Duration) sim.Time { return sim.Time(0).Add(d) }
	if got := pl.StallRemaining("gpu0", 1, at(12*time.Millisecond)); got != 3*time.Millisecond {
		t.Fatalf("inside window: %v, want 3ms", got)
	}
	if got := pl.StallRemaining("gpu0", 1, at(15*time.Millisecond)); got != 0 {
		t.Fatalf("window end is exclusive: %v", got)
	}
	if got := pl.StallRemaining("gpu0", 0, at(12*time.Millisecond)); got != 0 {
		t.Fatalf("other queue stalled: %v", got)
	}
	if got := pl.StallRemaining("gpu1", 1, at(12*time.Millisecond)); got != 0 {
		t.Fatalf("other accel stalled: %v", got)
	}
	// Queue -1 matches every queue of the accelerator.
	for q := 0; q < 4; q++ {
		if got := pl.StallRemaining("vca0", q, at(100*time.Microsecond)); got != 900*time.Microsecond {
			t.Fatalf("vca queue %d: %v, want 900µs", q, got)
		}
	}
	if pl.Stats().StallHits == 0 {
		t.Fatal("stall hits not counted")
	}
}

func TestDefaultsFilled(t *testing.T) {
	cfg := NewPlan(Config{}).Config()
	if cfg.DelayMax <= 0 || cfg.TCPRetransmit <= 0 || cfg.RDMARetryLatency <= 0 ||
		cfg.RDMASpike <= 0 || cfg.PCIeSpike <= 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}
