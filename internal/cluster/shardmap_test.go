package cluster

import (
	"fmt"
	"testing"
)

// owners snapshots shard -> member for the whole universe.
func owners(t *testing.T, m *ShardMap) []string {
	t.Helper()
	out := make([]string, m.Shards())
	for s := 0; s < m.Shards(); s++ {
		o, ok := m.Owner(s)
		if !ok {
			t.Fatalf("shard %d has no owner with members %v", s, m.Members())
		}
		out[s] = o
	}
	return out
}

func TestShardMapEveryShardOwnedExactlyOnce(t *testing.T) {
	m := NewShardMap(64)
	for i := 0; i < 4; i++ {
		if err := m.Join(fmt.Sprintf("server%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	for _, o := range owners(t, m) {
		counts[o]++
	}
	total := 0
	for member, n := range counts {
		if n == 0 {
			t.Errorf("member %s owns no shards", member)
		}
		total += n
	}
	if total != m.Shards() {
		t.Fatalf("owned shards %d != universe %d", total, m.Shards())
	}
}

func TestShardMapJoinMovesShardsOnlyToJoiner(t *testing.T) {
	m := NewShardMap(64)
	for i := 0; i < 3; i++ {
		if err := m.Join(fmt.Sprintf("server%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	before := owners(t, m)
	if err := m.Join("server4"); err != nil {
		t.Fatal(err)
	}
	after := owners(t, m)
	moved := 0
	for s := range after {
		if after[s] != before[s] {
			moved++
			if after[s] != "server4" {
				t.Errorf("shard %d moved %s -> %s, not to the joiner", s, before[s], after[s])
			}
		}
	}
	if moved == 0 {
		t.Error("join moved no shards to the new member")
	}
}

func TestShardMapLeaveMovesShardsOnlyFromLeaver(t *testing.T) {
	m := NewShardMap(64)
	for i := 0; i < 4; i++ {
		if err := m.Join(fmt.Sprintf("server%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	before := owners(t, m)
	if err := m.Leave("server2"); err != nil {
		t.Fatal(err)
	}
	after := owners(t, m)
	for s := range after {
		if before[s] != "server2" && after[s] != before[s] {
			t.Errorf("shard %d moved %s -> %s though its owner stayed", s, before[s], after[s])
		}
		if after[s] == "server2" {
			t.Errorf("shard %d still owned by the leaver", s)
		}
	}
}

func TestShardMapReplicasDistinctPrimaryFirst(t *testing.T) {
	m := NewShardMap(64)
	for i := 0; i < 5; i++ {
		if err := m.Join(fmt.Sprintf("server%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < m.Shards(); s++ {
		for rf := 1; rf <= 6; rf++ {
			reps := m.Replicas(s, rf)
			want := rf
			if want > 5 {
				want = 5
			}
			if len(reps) != want {
				t.Fatalf("shard %d rf %d: got %d replicas %v", s, rf, len(reps), reps)
			}
			owner, _ := m.Owner(s)
			if reps[0] != owner {
				t.Fatalf("shard %d: replicas %v do not start with owner %s", s, reps, owner)
			}
			seen := map[string]bool{}
			for _, r := range reps {
				if seen[r] {
					t.Fatalf("shard %d rf %d: duplicate replica in %v", s, rf, reps)
				}
				seen[r] = true
			}
		}
	}
}

func TestShardMapDeterministicAcrossHistories(t *testing.T) {
	// Same final membership via different histories -> same assignment.
	a := NewShardMap(64)
	for _, n := range []string{"server1", "server2", "server3"} {
		if err := a.Join(n); err != nil {
			t.Fatal(err)
		}
	}
	b := NewShardMap(64)
	for _, n := range []string{"server3", "server1", "serverX", "server2"} {
		if err := b.Join(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Leave("serverX"); err != nil {
		t.Fatal(err)
	}
	ao, bo := owners(t, a), owners(t, b)
	for s := range ao {
		if ao[s] != bo[s] {
			t.Fatalf("shard %d differs across histories: %s vs %s", s, ao[s], bo[s])
		}
	}
}

func TestShardMapKeysSpreadAcrossMembers(t *testing.T) {
	m := NewShardMap(64)
	for i := 0; i < 3; i++ {
		if err := m.Join(fmt.Sprintf("server%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	for i := 0; i < 512; i++ {
		o, ok := m.OwnerOf(fmt.Sprintf("key-%03d", i))
		if !ok {
			t.Fatal("no owner")
		}
		counts[o]++
	}
	for _, member := range m.Members() {
		if counts[member] == 0 {
			t.Errorf("member %s owns none of 512 keys (distribution %v)", member, counts)
		}
	}
}

func TestShardMapErrors(t *testing.T) {
	m := NewShardMap(0)
	if m.Shards() != DefaultShards {
		t.Fatalf("default shards = %d, want %d", m.Shards(), DefaultShards)
	}
	if _, ok := m.Owner(0); ok {
		t.Error("empty map claims an owner")
	}
	if err := m.Join(""); err == nil {
		t.Error("empty name joined")
	}
	if err := m.Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Join("a"); err == nil {
		t.Error("duplicate join accepted")
	}
	if err := m.Leave("b"); err == nil {
		t.Error("left a member that never joined")
	}
	if err := m.Resize(0); err == nil {
		t.Error("resized to zero shards")
	}
	if err := m.Resize(128); err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 128 {
		t.Fatalf("resize: shards = %d", m.Shards())
	}
}
