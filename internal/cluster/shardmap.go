// Package cluster scales the Lynx architecture from one server to a rack
// (ROADMAP item 1): a consistent-hash shard map for membership and key
// placement, and a Rack builder that wires N SNIC-driven nodes through a
// top-of-rack switch with SNIC-dispatcher-driven replication to peer
// accelerators.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultShards is the shard-universe size when a ShardMap is created with a
// non-positive count. Shards are the unit of placement: keys hash to shards,
// shards map to nodes, so membership changes move shards, never single keys.
const DefaultShards = 64

// ringVnodes is the number of virtual points each member contributes to the
// hash ring. More points smooth the per-node shard counts; the value is part
// of the placement function and must not change without remapping the world.
const ringVnodes = 64

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash   uint64
	member string
	vnode  int
}

// ShardMap assigns a fixed universe of shards onto member nodes with a
// consistent-hash ring of virtual nodes. Transitions are minimal: a Join
// moves shards only onto the joining member, a Leave moves shards only off
// the leaving member. The map is deterministic — same membership history,
// same assignment — and purely computational (no simulation state), so the
// same code serves the simulated rack and its fuzz/chaos tests.
type ShardMap struct {
	shards  int
	members map[string]struct{}
	ring    []ringPoint
	// start[s] is the ring index owning shard s (valid while len(ring)>0).
	start []int
}

// NewShardMap creates an empty map over the given shard universe
// (DefaultShards when shards <= 0).
func NewShardMap(shards int) *ShardMap {
	if shards <= 0 {
		shards = DefaultShards
	}
	m := &ShardMap{shards: shards, members: make(map[string]struct{})}
	m.rebuild()
	return m
}

// Shards returns the shard-universe size.
func (m *ShardMap) Shards() int { return m.shards }

// Members returns the current membership, sorted.
func (m *ShardMap) Members() []string {
	out := make([]string, 0, len(m.members))
	for name := range m.members {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Join adds a member. Shards move only onto the new member.
func (m *ShardMap) Join(node string) error {
	if node == "" {
		return fmt.Errorf("cluster: empty member name")
	}
	if _, dup := m.members[node]; dup {
		return fmt.Errorf("cluster: member %q already joined", node)
	}
	m.members[node] = struct{}{}
	m.rebuild()
	return nil
}

// Leave removes a member. Shards move only off the leaver.
func (m *ShardMap) Leave(node string) error {
	if _, ok := m.members[node]; !ok {
		return fmt.Errorf("cluster: member %q not in the map", node)
	}
	delete(m.members, node)
	m.rebuild()
	return nil
}

// Resize changes the shard-universe size (a resharding epoch: keys rehash to
// the new universe, so placement of individual keys may change arbitrarily,
// but the ring — and therefore the per-member load share — is untouched).
func (m *ShardMap) Resize(shards int) error {
	if shards <= 0 {
		return fmt.Errorf("cluster: shard count %d must be positive", shards)
	}
	m.shards = shards
	m.rebuild()
	return nil
}

// Owner returns the member owning the shard, or false when the map is empty.
func (m *ShardMap) Owner(shard int) (string, bool) {
	if len(m.ring) == 0 || shard < 0 || shard >= m.shards {
		return "", false
	}
	return m.ring[m.start[shard]].member, true
}

// Replicas returns up to rf distinct members for the shard in ring order,
// primary first. With fewer members than rf it returns them all.
func (m *ShardMap) Replicas(shard, rf int) []string {
	if len(m.ring) == 0 || shard < 0 || shard >= m.shards || rf <= 0 {
		return nil
	}
	if rf > len(m.members) {
		rf = len(m.members)
	}
	out := make([]string, 0, rf)
	for i := 0; i < len(m.ring) && len(out) < rf; i++ {
		member := m.ring[(m.start[shard]+i)%len(m.ring)].member
		if !contains(out, member) {
			out = append(out, member)
		}
	}
	return out
}

// ShardOf hashes a key into the shard universe.
func (m *ShardMap) ShardOf(key string) int {
	return int(mix64(fnv64(key)) % uint64(m.shards))
}

// ShardOfBytes is ShardOf without the string conversion, for the dispatch
// hot path's classifier (same hash, byte for byte).
func (m *ShardMap) ShardOfBytes(key []byte) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return int(mix64(h) % uint64(m.shards))
}

// OwnerOf returns the member owning the key's shard.
func (m *ShardMap) OwnerOf(key string) (string, bool) {
	return m.Owner(m.ShardOf(key))
}

// rebuild recomputes the ring and every shard's owning ring index. Members
// are iterated in sorted order and ties broken by (hash, member, vnode), so
// the result is a pure function of the membership set.
func (m *ShardMap) rebuild() {
	m.ring = m.ring[:0]
	for _, member := range m.Members() {
		h := fnv64(member)
		for v := 0; v < ringVnodes; v++ {
			m.ring = append(m.ring, ringPoint{
				hash:   mix64(h ^ (uint64(v)+1)*0x9e3779b97f4a7c15),
				member: member,
				vnode:  v,
			})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool {
		a, b := m.ring[i], m.ring[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.member != b.member {
			return a.member < b.member
		}
		return a.vnode < b.vnode
	})
	if cap(m.start) < m.shards {
		m.start = make([]int, m.shards)
	}
	m.start = m.start[:m.shards]
	if len(m.ring) == 0 {
		return
	}
	for s := 0; s < m.shards; s++ {
		h := shardPoint(s)
		// First ring point at or clockwise-after the shard's point.
		i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
		m.start[s] = i % len(m.ring)
	}
}

// shardPoint positions shard s on the ring.
func shardPoint(s int) uint64 {
	return mix64(0x5368617264 ^ uint64(s)) // "Shard"
}

// fnv64 is FNV-1a over the string.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// mix64 is the murmur3 finalizer: FNV's low bits are too weak for ring
// placement on their own.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
