package cluster

import (
	"fmt"
	"testing"
)

// fuzzVerify checks the structural invariants that must hold after any
// sequence of membership transitions: every shard has exactly one owner and
// that owner is a live member (no lost and no double-owned shards), replica
// sets are distinct members led by the owner, and key placement agrees with
// shard placement.
func fuzzVerify(t *testing.T, m *ShardMap) {
	t.Helper()
	members := m.Members()
	live := map[string]bool{}
	for _, n := range members {
		live[n] = true
	}
	for s := 0; s < m.Shards(); s++ {
		o, ok := m.Owner(s)
		if len(members) == 0 {
			if ok {
				t.Fatalf("empty map owns shard %d via %q", s, o)
			}
			continue
		}
		if !ok {
			t.Fatalf("shard %d lost (members %v)", s, members)
		}
		if !live[o] {
			t.Fatalf("shard %d owned by departed member %q", s, o)
		}
		reps := m.Replicas(s, 3)
		if len(reps) == 0 || reps[0] != o {
			t.Fatalf("shard %d: replicas %v do not lead with owner %q", s, reps, o)
		}
		seen := map[string]bool{}
		for _, r := range reps {
			if !live[r] {
				t.Fatalf("shard %d: departed replica %q", s, r)
			}
			if seen[r] {
				t.Fatalf("shard %d: duplicate replica in %v", s, reps)
			}
			seen[r] = true
		}
	}
	if len(members) > 0 {
		key := "probe-key"
		o, ok := m.OwnerOf(key)
		if !ok || o != mustOwner(m, m.ShardOf(key)) {
			t.Fatalf("OwnerOf(%q) = %q,%v disagrees with Owner(ShardOf)", key, o, ok)
		}
	}
}

func mustOwner(m *ShardMap, shard int) string {
	o, _ := m.Owner(shard)
	return o
}

func fuzzSnapshot(m *ShardMap) []string {
	out := make([]string, m.Shards())
	for s := range out {
		out[s], _ = m.Owner(s)
	}
	return out
}

// FuzzShardMap drives random join/leave/resize sequences and asserts that no
// transition loses or double-owns a shard, and that joins (leaves) move
// shards only onto the joiner (off the leaver).
func FuzzShardMap(f *testing.F) {
	f.Add(uint8(3), []byte{0, 0, 1, 2})
	f.Add(uint8(0), []byte{0, 1, 0, 1, 0, 1})
	f.Add(uint8(7), []byte{2, 6, 10, 0, 1, 5, 9, 0})
	f.Add(uint8(1), []byte{})
	f.Fuzz(func(t *testing.T, initial uint8, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		m := NewShardMap(64)
		next := 0
		join := func() string {
			name := fmt.Sprintf("n%d", next)
			next++
			if err := m.Join(name); err != nil {
				t.Fatalf("join %s: %v", name, err)
			}
			return name
		}
		for i := 0; i < int(initial%8); i++ {
			join()
		}
		fuzzVerify(t, m)
		for _, b := range ops {
			before := fuzzSnapshot(m)
			switch b % 4 {
			case 0:
				joined := join()
				for s, o := range fuzzSnapshot(m) {
					if before[s] != "" && o != before[s] && o != joined {
						t.Fatalf("join %s moved shard %d %s -> %s", joined, s, before[s], o)
					}
				}
			case 1:
				members := m.Members()
				if len(members) == 0 {
					continue
				}
				left := members[int(b>>2)%len(members)]
				if err := m.Leave(left); err != nil {
					t.Fatalf("leave %s: %v", left, err)
				}
				for s, o := range fuzzSnapshot(m) {
					if before[s] != left && o != before[s] {
						t.Fatalf("leave %s moved shard %d %s -> %s", left, s, before[s], o)
					}
				}
			case 2:
				if err := m.Resize(1 + int(b>>2)); err != nil {
					t.Fatalf("resize: %v", err)
				}
			case 3:
				// Membership no-op: verification only.
			}
			fuzzVerify(t, m)
		}
	})
}
