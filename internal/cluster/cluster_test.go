package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"lynx/internal/apps/kvstore"
	"lynx/internal/check"
	"lynx/internal/fault"
	"lynx/internal/netstack"
	"lynx/internal/sim"
	"lynx/internal/workload"
)

// ackedWrite is one client write whose STORED response arrived.
type ackedWrite struct {
	key   string
	value string
}

// driveWrites spawns a closed-loop client writing each (key, value) pair once
// with bounded same-id retransmits, recording the acknowledged subset. The
// returned slice is populated as the simulation runs.
func driveWrites(s *sim.Sim, client *netstack.Host, target netstack.Addr, port uint16, writes []ackedWrite, gap time.Duration, acked *[]ackedWrite) *bool {
	done := new(bool)
	sock := client.MustUDPBind(port)
	s.Spawn(fmt.Sprintf("chaos-client:%d", port), func(p *sim.Proc) {
		for i, w := range writes {
			id := uint64(port)<<32 | uint64(i+1)
			req := kvstore.EncodeSet(w.key, 0, []byte(w.value))
			payload := make([]byte, workload.SeqBytes+len(req))
			binary.LittleEndian.PutUint64(payload, id)
			copy(payload[workload.SeqBytes:], req)
			ok := false
			timeout := 2 * time.Millisecond
			for attempt := 0; attempt < 4 && !ok; attempt++ {
				sock.SendTo(target, payload)
				deadline := p.Now().Add(timeout)
				for !ok {
					left := deadline.Sub(p.Now())
					if left <= 0 {
						break
					}
					dg, got, _ := sock.RecvTimeout(p, left)
					if !got {
						break
					}
					if len(dg.Payload) >= workload.SeqBytes &&
						binary.LittleEndian.Uint64(dg.Payload) == id &&
						bytes.Contains(dg.Payload[workload.SeqBytes:], []byte("STORED")) {
						ok = true
					}
				}
				timeout *= 2
			}
			if ok {
				*acked = append(*acked, w)
			}
			p.Sleep(gap)
		}
		*done = true
	})
	return done
}

func uniqueWrites(keys []string, n int) []ackedWrite {
	writes := make([]ackedWrite, 0, n)
	for i := 0; i < n; i++ {
		writes = append(writes, ackedWrite{
			key:   keys[i%len(keys)],
			value: fmt.Sprintf("chaos-value-%04d", i),
		})
	}
	return writes
}

// expectValue asserts the store holds exactly value under key.
func expectValue(t *testing.T, where string, store *kvstore.Store, key, value string) {
	t.Helper()
	v, _, ok := store.Get(key)
	if !ok {
		t.Errorf("%s: acknowledged write %q missing", where, key)
		return
	}
	if string(v) != value {
		t.Errorf("%s: key %q = %q, want acknowledged %q", where, key, v, value)
	}
}

// TestRackReplicatesWrites: a healthy RF=3 rack replicates every acknowledged
// node-0 write to both peers, with request conservation green.
func TestRackReplicatesWrites(t *testing.T) {
	ck := check.New()
	rack, err := Build(Config{Nodes: 3, Replicas: 3, Seed: 11, Check: ck})
	if err != nil {
		t.Fatal(err)
	}
	keys := rack.OwnedKeys(0)
	if len(keys) == 0 {
		t.Fatal("node 0 owns no keys")
	}
	writes := uniqueWrites(keys, 40)
	var acked []ackedWrite
	done := driveWrites(rack.TB.Sim, rack.Clients[0], rack.Node(0).Addr(), 41000,
		writes, 100*time.Microsecond, &acked)
	rack.TB.Sim.RunUntil(rack.TB.Sim.Now().Add(100 * time.Millisecond))
	if !*done {
		t.Fatal("client did not finish")
	}
	if len(acked) != len(writes) {
		t.Fatalf("only %d/%d writes acknowledged on a healthy rack", len(acked), len(writes))
	}
	// Every key's replica set is all three nodes at RF=3; an acknowledged
	// write must be present everywhere (later writes to the same key win).
	latest := map[string]string{}
	for _, w := range acked {
		latest[w.key] = w.value
	}
	for key, value := range latest {
		for _, ni := range rack.ReplicaSet(key) {
			expectValue(t, fmt.Sprintf("node %d", ni), rack.Node(ni).Store, key, value)
		}
	}
	st := rack.Node(0).Repl.Stats()
	if st.Writes == 0 || st.Records == 0 || st.Acks == 0 {
		t.Errorf("replication saw no traffic: %v", st)
	}
	if st.PeerFailovers != 0 {
		t.Errorf("unexpected failovers on a healthy rack: %v", st)
	}
	rack.TB.Sim.Shutdown()
	if rep := ck.Snapshot(); !rep.OK() {
		t.Errorf("%s", rep)
	}
}

// chaosRun executes one seeded replica-kill scenario: RF=3, node 1's GPU
// frozen mid-run by the fault plane, writes targeting node 0. It returns the
// acknowledged writes, the rack (shut down, invariants checked), and the
// failover latency of the killed peer.
func chaosRun(t *testing.T, seed uint64, killAt time.Duration) ([]ackedWrite, *Rack, time.Duration) {
	t.Helper()
	ck := check.New()
	rack, err := Build(Config{
		Nodes: 3, Replicas: 3, Seed: seed, Check: ck,
		Faults: fault.Config{
			Seed:   seed,
			Stalls: []fault.Stall{{Accel: "gpu1", Queue: -1, At: killAt, For: time.Hour}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := rack.OwnedKeys(0)
	writes := uniqueWrites(keys, 60)
	var acked []ackedWrite
	done := driveWrites(rack.TB.Sim, rack.Clients[0], rack.Node(0).Addr(), 42000,
		writes, 250*time.Microsecond, &acked)
	rack.TB.Sim.RunUntil(rack.TB.Sim.Now().Add(200 * time.Millisecond))
	if !*done {
		t.Fatal("client did not finish")
	}

	repl := rack.Node(0).Repl
	slot, ok := rack.PeerSlot(0, 1)
	if !ok {
		t.Fatal("node 1 is not a peer of node 0")
	}
	if !repl.PeerDead(slot) {
		t.Fatalf("peer gpu1 not declared dead after stall at %v (stats %v)", killAt, repl.Stats())
	}
	lag := repl.ReplicationLag(slot, killAt)

	// The acceptance bar: zero lost acknowledged writes. Every acknowledged
	// write must be readable on the primary and on the surviving replica.
	latest := map[string]string{}
	for _, w := range acked {
		latest[w.key] = w.value
	}
	for key, value := range latest {
		for _, ni := range rack.ReplicaSet(key) {
			if ni == 1 {
				continue // the killed node
			}
			expectValue(t, fmt.Sprintf("node %d (survivor)", ni), rack.Node(ni).Store, key, value)
		}
	}

	rack.TB.Sim.Shutdown()
	if rep := ck.Snapshot(); !rep.OK() {
		t.Errorf("%s", rep)
	}
	return acked, rack, lag
}

// TestRackChaosReplicaKill: seeded replica-kills at randomized virtual times;
// every acknowledged write survives failover and conservation stays green.
func TestRackChaosReplicaKill(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xc4a05, 1))
	for i := 0; i < 3; i++ {
		seed := uint64(100 + i)
		killAt := 2*time.Millisecond + time.Duration(rng.IntN(8000))*time.Microsecond
		t.Run(fmt.Sprintf("seed=%d killAt=%v", seed, killAt), func(t *testing.T) {
			acked, _, lag := chaosRun(t, seed, killAt)
			if len(acked) == 0 {
				t.Fatal("no writes acknowledged")
			}
			if lag <= 0 || lag > 50*time.Millisecond {
				t.Errorf("failover latency %v outside (0, 50ms]", lag)
			}
		})
	}
}

// TestRackChaosDeterminism: the same seeded kill scenario replays exactly.
func TestRackChaosDeterminism(t *testing.T) {
	const killAt = 5 * time.Millisecond
	acked1, rack1, lag1 := chaosRun(t, 77, killAt)
	acked2, rack2, lag2 := chaosRun(t, 77, killAt)
	if len(acked1) != len(acked2) {
		t.Fatalf("acked counts diverged: %d vs %d", len(acked1), len(acked2))
	}
	for i := range acked1 {
		if acked1[i] != acked2[i] {
			t.Fatalf("acked[%d] diverged: %v vs %v", i, acked1[i], acked2[i])
		}
	}
	if lag1 != lag2 {
		t.Errorf("failover latency diverged: %v vs %v", lag1, lag2)
	}
	for i := 0; i < rack1.Nodes(); i++ {
		if rack1.Node(i).Repl == nil {
			continue
		}
		s1, s2 := rack1.Node(i).Repl.Stats().String(), rack2.Node(i).Repl.Stats().String()
		if s1 != s2 {
			t.Errorf("node %d replication stats diverged:\n  %s\n  %s", i, s1, s2)
		}
	}
}

// TestRackRF1HasNoReplicationLayer: replication factor 1 must leave every
// node's replicator nil — the hooks stay dormant and the single-server event
// sequence is untouched (the metamorphic golden pins the byte identity).
func TestRackRF1HasNoReplicationLayer(t *testing.T) {
	rack, err := Build(Config{Nodes: 2, Replicas: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rack.Nodes(); i++ {
		if rack.Node(i).Repl != nil {
			t.Errorf("node %d has a replicator at RF=1", i)
		}
	}
	rack.TB.Sim.Shutdown()
}

// TestRackShardingSpreadsOwnership: every preloaded key has an owner, replica
// sets are distinct and primary-first, and no node owns everything.
func TestRackShardingSpreadsOwnership(t *testing.T) {
	rack, err := Build(Config{Nodes: 3, Replicas: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	owned := 0
	for i := 0; i < rack.Nodes(); i++ {
		n := len(rack.OwnedKeys(i))
		if n == 0 {
			t.Errorf("node %d owns no keys", i)
		}
		owned += n
	}
	if owned != rack.Keys() {
		t.Errorf("ownership covers %d of %d keys", owned, rack.Keys())
	}
	for _, key := range []string{"key-000", "key-101", "key-511"} {
		set := rack.ReplicaSet(key)
		if len(set) != 2 {
			t.Fatalf("replica set of %q has %d members", key, len(set))
		}
		if set[0] == set[1] {
			t.Errorf("replica set of %q repeats node %d", key, set[0])
		}
		if set[0] != rack.PrimaryFor(key) {
			t.Errorf("replica set of %q does not lead with the primary", key)
		}
	}
	rack.TB.Sim.Shutdown()
}
