package cluster

import (
	"bytes"
	"testing"
	"time"

	"lynx/internal/apps/kvstore"
	"lynx/internal/check"
	"lynx/internal/fault"
	"lynx/internal/trace"
	"lynx/internal/workload"
)

// telemetryRun builds an RF=3 rack with the per-node observability plane
// armed, drives a span-instrumented SET workload at node 0's owned keys
// (Rack.Measure defaults client stamps into node 0's table), and returns the
// rack un-shutdown so callers can inspect spans/tracers/registries.
func telemetryRun(t *testing.T, seed uint64, tel *Telemetry, fc fault.Config) (*Rack, *check.Checker, workload.Result) {
	t.Helper()
	ck := check.New()
	rack, err := Build(Config{
		Nodes: 3, Replicas: 3, Seed: seed, Check: ck, Telemetry: tel, Faults: fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := rack.OwnedKeys(0)
	if len(keys) == 0 {
		t.Fatal("node 0 owns no keys")
	}
	res := rack.Measure(workload.Config{
		Proto: workload.UDP, Target: rack.Node(0).Addr(), Payload: 64,
		Body: func(seq uint64, buf []byte) {
			copy(buf[workload.SeqBytes:],
				kvstore.EncodeSet(keys[seq%uint64(len(keys))], 0, []byte("value-0123456789")))
		},
		Clients: 8, Duration: 5 * time.Millisecond, Warmup: time.Millisecond,
		Timeout: 2 * time.Millisecond, Retries: 3,
	})
	return rack, ck, res
}

// TestRackTelemetryReplicationSpans: on a healthy RF=3 rack every parked
// write's span carries the replication stamps in path order — dispatch ≤
// repl-pushed ≤ repl-acked ≤ quorum ≤ forward — and the quorum-wait phase
// telescopes (phases still sum to end-to-end span by span).
func TestRackTelemetryReplicationSpans(t *testing.T) {
	rack, ck, res := telemetryRun(t, 11, &Telemetry{}, fault.Config{})
	if res.Received == 0 {
		t.Fatal("no writes acknowledged")
	}
	spans := rack.Node(0).Spans
	if spans == nil {
		t.Fatal("telemetry armed but node 0 has no span table")
	}
	quorums := 0
	for _, sp := range spans.Spans() {
		phases, complete := sp.Phases()
		if !complete {
			continue
		}
		var sum time.Duration
		for _, d := range phases {
			if d < 0 {
				t.Fatalf("negative phase in %v", phases)
			}
			sum += d
		}
		e2e, _ := sp.Latency(trace.StageClientSend, trace.StageClientRecv)
		if sum != time.Duration(e2e) {
			t.Fatalf("phases sum to %v, end-to-end is %v", sum, time.Duration(e2e))
		}
		q, ok := sp.At(trace.StageQuorum)
		if !ok {
			continue // quorum met before the response drained: no hold, no stamp
		}
		quorums++
		pushed, okP := sp.At(trace.StageReplPushed)
		ackAt, okA := sp.At(trace.StageReplAcked)
		if !okP || !okA {
			t.Fatal("quorum stamped without repl-pushed/repl-acked")
		}
		disp, _ := sp.At(trace.StageDispatch)
		fwd, _ := sp.At(trace.StageForward)
		if !(disp <= pushed && pushed <= ackAt && ackAt <= q && q <= fwd) {
			t.Fatalf("replication stamps out of order: dispatch=%v pushed=%v acked=%v quorum=%v forward=%v",
				disp, pushed, ackAt, q, fwd)
		}
		if phases[trace.PhaseReplication] <= 0 {
			t.Error("parked quorum with zero replication phase")
		}
	}
	if quorums == 0 {
		t.Fatal("no span recorded a quorum hold on an RF=3 rack")
	}
	// The straggler attribution saw the same quorums.
	repl := rack.Node(0).Repl
	var gated uint64
	for i := 0; i < repl.PeerCount(); i++ {
		st := repl.PeerStat(i)
		gated += st.GatedQuorums
		if st.Acks == 0 {
			t.Errorf("peer %s recorded no acks", st.Name)
		}
	}
	if gated == 0 {
		t.Error("no peer recorded a gating ack")
	}
	rack.Close()
	if rep := ck.Snapshot(); !rep.OK() {
		t.Errorf("%s", rep)
	}
}

// TestRackTelemetryRetries: RDMA completion errors force replication-path
// retries; stamp ordering and the telescoping invariant must survive them
// (first-write-wins keeps the first delivery's timestamps).
func TestRackTelemetryRetries(t *testing.T) {
	rack, ck, res := telemetryRun(t, 13, &Telemetry{},
		fault.Config{Seed: 13, RDMAErrRate: 0.05})
	if res.Received == 0 {
		t.Fatal("no writes acknowledged under RDMA errors")
	}
	spans := rack.Node(0).Spans
	quorums := 0
	for _, sp := range spans.Spans() {
		if _, ok := sp.At(trace.StageQuorum); ok {
			quorums++
		}
	}
	if quorums == 0 {
		t.Fatal("no quorum spans under RDMA retries")
	}
	rack.Close()
	if rep := ck.Snapshot(); !rep.OK() {
		t.Errorf("%s", rep)
	}
}

// TestRackTelemetryWraparound: a span table far smaller than the write count
// wraps mid-quorum — late stamps land on evicted/reused slots — without
// violating any span invariant or crashing the replication path.
func TestRackTelemetryWraparound(t *testing.T) {
	rack, ck, res := telemetryRun(t, 17, &Telemetry{SpanCap: 4}, fault.Config{})
	if res.Received == 0 {
		t.Fatal("no writes acknowledged")
	}
	spans := rack.Node(0).Spans
	if spans.Cap() != 4 {
		t.Fatalf("span cap %d, want 4", spans.Cap())
	}
	if spans.Evicted() == 0 {
		t.Fatal("tiny span table never wrapped")
	}
	rack.Close()
	if rep := ck.Snapshot(); !rep.OK() {
		t.Errorf("%s", rep)
	}
}

// TestRackTelemetryDisabledNilSafe: with no telemetry plane the replication
// path runs against nil span tables and tracers — the zero-cost default —
// and every node's observability fields stay nil.
func TestRackTelemetryDisabledNilSafe(t *testing.T) {
	rack, ck, res := telemetryRun(t, 19, nil, fault.Config{})
	if res.Received == 0 {
		t.Fatal("no writes acknowledged")
	}
	for i := 0; i < rack.Nodes(); i++ {
		n := rack.Node(i)
		if n.Tracer != nil || n.Spans != nil || n.Reg != nil {
			t.Errorf("node %d carries telemetry state without Telemetry config", i)
		}
	}
	rack.Close()
	if rep := ck.Snapshot(); !rep.OK() {
		t.Errorf("%s", rep)
	}
}

// TestRackTelemetryDeterminism: two same-seed instrumented runs produce
// byte-identical rack trace exports and telemetry rollups.
func TestRackTelemetryDeterminism(t *testing.T) {
	run := func() (string, string) {
		rack, _, _ := telemetryRun(t, 23, &Telemetry{}, fault.Config{})
		rack.Close()
		var tr, met bytes.Buffer
		ex := rack.TraceExport()
		if err := ex.WriteJSON(&tr); err != nil {
			t.Fatal(err)
		}
		if err := rack.TelemetrySnapshot().Dump(&met); err != nil {
			t.Fatal(err)
		}
		return tr.String(), met.String()
	}
	tr1, met1 := run()
	tr2, met2 := run()
	if tr1 != tr2 {
		t.Error("rack trace exports diverged across identical runs")
	}
	if met1 != met2 {
		t.Error("rack telemetry rollups diverged across identical runs")
	}
	if tr1 == "" || met1 == "" {
		t.Fatal("empty export")
	}
}

// TestRackTracerArrayWiring: the legacy Config.Tracer lands on node 0 only,
// peers stay untraced without Telemetry (the PR 9 identity-golden wiring),
// and with Telemetry armed node 0 still uses the provided ring.
func TestRackTracerArrayWiring(t *testing.T) {
	tr := trace.New(256)
	rack, err := Build(Config{Nodes: 2, Replicas: 1, Seed: 3, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if rack.Node(0).Tracer != tr {
		t.Error("node 0 does not use the configured tracer")
	}
	if rack.Node(1).Tracer != nil {
		t.Error("node 1 traced without Telemetry")
	}
	rack.Close()

	tr2 := trace.New(256)
	rack2, err := Build(Config{Nodes: 2, Replicas: 2, Seed: 3, Tracer: tr2, Telemetry: &Telemetry{}})
	if err != nil {
		t.Fatal(err)
	}
	if rack2.Node(0).Tracer != tr2 {
		t.Error("Telemetry displaced the configured node-0 tracer")
	}
	if rack2.Node(1).Tracer == nil || rack2.Node(1).Tracer == tr2 {
		t.Error("node 1 should get its own tracer under Telemetry")
	}
	rack2.Close()
}
