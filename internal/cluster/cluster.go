// Rack assembles the multi-node Lynx deployment of ROADMAP item 1: N server
// machines — each a host with a BlueField SNIC and a GPU — cabled into
// per-node top-of-rack switches that uplink to the wire backbone, running a
// sharded, replicated key-value store. The shard map (consistent hashing,
// shardmap.go) assigns every shard a primary and RF-1 replica nodes; each
// primary's SNIC dispatcher drives the quorum protocol (core.AddReplication)
// over one-sided RDMA into ingest mqueues that live in the peer accelerators'
// memory, where persistent apply kernels replay the writes into the peer
// stores and acknowledge through the same rings.
//
// A 1-node rack with Replicas=1 deliberately performs, operation for
// operation, the same build sequence as the single-server deployments in
// internal/experiments (no ToR, no replication layer, identical mqueue
// geometry), so its output is byte-identical to the single-server harness —
// the metamorphic golden test pins this.
package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"time"

	"lynx/internal/accel"
	"lynx/internal/apps/kvstore"
	"lynx/internal/check"
	"lynx/internal/core"
	"lynx/internal/fault"
	"lynx/internal/metrics"
	"lynx/internal/model"
	"lynx/internal/mqueue"
	"lynx/internal/netstack"
	"lynx/internal/snic"
	"lynx/internal/trace"
	"lynx/internal/workload"
)

const (
	// ServicePort is the UDP port every node's KV service listens on.
	ServicePort = 7000
	// serveQueues is the per-node mqueue count (the single-server KV
	// deployments use the same geometry).
	serveQueues = 4
	// slotBytes is the mqueue slot size shared by serving and ingest rings.
	slotBytes = 128
)

// Config parameterizes a rack build.
type Config struct {
	// Nodes is the number of server nodes (default 1).
	Nodes int
	// Replicas is the replication factor: each shard has one primary and
	// Replicas-1 peer replicas (default 1 = no replication; must not exceed
	// Nodes).
	Replicas int
	// Seed is the simulation seed, used verbatim (callers matching the
	// experiment harness convention pass their config seed +1 themselves).
	Seed uint64
	// Params are the model constants; nil uses a fresh model.Default copy.
	Params *model.Params
	// Faults is the deployment-wide fault plan (replica kills ride on
	// fault.Stall windows against a peer's accelerator).
	Faults fault.Config
	// Check, when enabled, is installed as the testbed-wide invariant
	// checker before any machine is built.
	Check *check.Checker
	// Tracer, when non-nil, becomes node 0's event tracer (the metamorphic
	// trace artifact of the RF=1 identity golden). It is entry 0 of the
	// per-node tracer array; Telemetry fills the remaining entries.
	Tracer *trace.Tracer
	// Telemetry, when non-nil, arms the per-node observability plane: every
	// node gets its own event tracer, span table and metrics registry (with
	// a monitor process sampling utilization), rolled up deterministically
	// by Rack.TelemetrySnapshot and Rack.TraceExport. Nil keeps every node
	// uninstrumented — the zero-cost default.
	Telemetry *Telemetry
	// Shards is the shard-map size (default DefaultShards).
	Shards int
	// Keys preloads every node's store with key-%03d entries (default 512,
	// the single-server convention).
	Keys int
	// Quorum is the peer-ack count a write needs before its response is
	// released; 0 waits for every live peer in the shard's replica set.
	Quorum int
	// IngestSlots sizes each replication ingest ring (default 64).
	IngestSlots int
}

// Telemetry configures the per-node observability plane of a rack build.
// The zero value of each field selects its default.
type Telemetry struct {
	// TracerCap bounds each node's event ring (default 4096 events).
	TracerCap int
	// SpanCap bounds each node's span table (default 1<<14 spans).
	SpanCap int
	// Interval is each node's monitor sampling period (default 50µs).
	Interval time.Duration
}

// Node is one rack member and its full serving stack.
type Node struct {
	Index   int
	Name    string
	Machine *snic.Machine
	BF      *snic.BlueField
	GPU     *accel.GPU
	RT      *core.Runtime
	Svc     *core.Service
	Store   *kvstore.Store
	// Repl drives this node's outbound replication; nil when Replicas == 1.
	Repl *core.Replicator
	// Tracer/Spans/Reg are the node's observability plane: the event ring,
	// span table and metrics registry wired into its runtime. Tracer is
	// non-nil for node 0 when Config.Tracer was set; all three are non-nil
	// on every node when Config.Telemetry was set, nil otherwise.
	Tracer *trace.Tracer
	Spans  *trace.SpanTable
	Reg    *metrics.Registry

	handle      *core.AccelHandle
	peerSlot    map[int]int // rack node index -> AddPeer bit position
	maskByShard []uint32
}

// Addr returns the node's service address.
func (n *Node) Addr() netstack.Addr { return n.Svc.Addr() }

// Rack is a built multi-node deployment.
type Rack struct {
	TB  *snic.Testbed
	Map *ShardMap
	// Clients are the load-generator hosts (client1, client2).
	Clients []*netstack.Host

	cfg     Config
	nodes   []*Node
	nameIdx map[string]int
}

// Build constructs the rack: hardware, shard map, runtimes, stores,
// replication wiring, apply kernels, serving kernels — started and ready for
// traffic on the testbed's virtual clock.
func Build(cfg Config) (*Rack, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > cfg.Nodes {
		return nil, fmt.Errorf("cluster: replication factor %d exceeds %d nodes", cfg.Replicas, cfg.Nodes)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 512
	}
	if cfg.IngestSlots <= 0 {
		cfg.IngestSlots = 64
	}
	p := cfg.Params
	if p == nil {
		def := model.Default()
		p = &def
	}

	tb := snic.NewTestbedWith(cfg.Seed, p, cfg.Faults)
	tb.EnableInvariants(cfg.Check)
	r := &Rack{TB: tb, Map: NewShardMap(cfg.Shards), cfg: cfg, nameIdx: make(map[string]int)}

	// Hardware: one rack switch per node when the deployment spans several
	// machines; the 1-node build cables straight into the backbone, exactly
	// like the single-server testbeds.
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("server%d", i+1)
		var m *snic.Machine
		if cfg.Nodes == 1 {
			m = tb.NewMachine(name, 6)
		} else {
			tor := tb.AddToR(fmt.Sprintf("tor%d", i+1))
			m = tb.NewMachineAt(name, 6, tor)
		}
		bf := m.AttachBlueField(fmt.Sprintf("bf%d", i+1))
		gpu := m.AddGPU(fmt.Sprintf("gpu%d", i), accel.K40m, false, name)
		if err := r.Map.Join(name); err != nil {
			return nil, err
		}
		r.nameIdx[name] = i
		r.nodes = append(r.nodes, &Node{
			Index: i, Name: name, Machine: m, BF: bf, GPU: gpu,
			peerSlot: make(map[int]int),
		})
	}
	r.Clients = []*netstack.Host{tb.AddClient("client1"), tb.AddClient("client2")}

	// Per-node observability plane. The tracer array replaces the old
	// node-0-only special case: the legacy Config.Tracer knob is entry 0
	// (the identity-golden artifact), and Telemetry fills every empty slot
	// with the node's own ring so a rack failover reads as one timeline.
	tracers := make([]*trace.Tracer, cfg.Nodes)
	tracers[0] = cfg.Tracer
	if t := cfg.Telemetry; t != nil {
		tcap, scap := t.TracerCap, t.SpanCap
		if tcap <= 0 {
			tcap = 4096
		}
		if scap <= 0 {
			scap = 1 << 14
		}
		for i, n := range r.nodes {
			if tracers[i] == nil {
				tracers[i] = trace.New(tcap)
			}
			n.Spans = trace.NewSpanTable(scap)
			n.Spans.RegisterInvariants(cfg.Check)
			n.Reg = metrics.NewRegistry()
		}
	}

	// Runtimes, services, preloaded stores.
	for i, n := range r.nodes {
		plat := n.BF.Platform(7)
		plat.Tracer = tracers[i]
		plat.Spans = n.Spans
		n.Tracer = tracers[i]
		rt := core.NewRuntime(plat)
		h, err := rt.Register(n.GPU, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: slotBytes}, serveQueues)
		if err != nil {
			return nil, err
		}
		svc, err := rt.AddService(core.UDP, ServicePort, nil, serveQueues, h)
		if err != nil {
			return nil, err
		}
		store := kvstore.NewStore(16, 0)
		for k := 0; k < cfg.Keys; k++ {
			store.Set(fmt.Sprintf("key-%03d", k), 0, []byte("value-0123456789"))
		}
		n.RT, n.Svc, n.Store, n.handle = rt, svc, store, h
	}

	// Replication wiring: every primary registers an ingest ring in each
	// peer's accelerator memory; masks are precomputed per shard so the
	// dispatch-path classifier stays allocation-free.
	type ingestWiring struct {
		target *Node
		h      *core.AccelHandle
	}
	var wirings []ingestWiring
	if cfg.Replicas > 1 {
		for i, n := range r.nodes {
			repl, err := n.RT.AddReplication(n.Svc, core.ReplConfig{
				Classify: r.classifierFor(n),
				Quorum:   cfg.Quorum,
			})
			if err != nil {
				return nil, err
			}
			n.Repl = repl
			for j, peer := range r.nodes {
				if j == i {
					continue
				}
				h, err := repl.AddPeer(peer.Name, peer.GPU,
					mqueue.Config{Kind: mqueue.ServerQueue, Slots: cfg.IngestSlots, SlotSize: slotBytes})
				if err != nil {
					return nil, err
				}
				n.peerSlot[j] = repl.PeerCount() - 1
				wirings = append(wirings, ingestWiring{target: peer, h: h})
			}
			n.maskByShard = make([]uint32, cfg.Shards)
			for s := 0; s < cfg.Shards; s++ {
				reps := r.Map.Replicas(s, cfg.Replicas)
				if len(reps) == 0 || reps[0] != n.Name {
					continue // not the primary: serve locally, replicate nothing
				}
				var mask uint32
				for _, member := range reps[1:] {
					mask |= 1 << uint(n.peerSlot[r.nameIdx[member]])
				}
				n.maskByShard[s] = mask
			}
		}
	}

	// Apply kernels: one persistent threadblock per ingest ring, on the
	// target node's GPU, replaying records into the target's store and
	// acknowledging with the record's id header.
	opCost := p.MemcachedOpXeon
	for _, w := range wirings {
		aq := w.h.AccelQueues()[0]
		store := w.target.Store
		if err := w.target.GPU.LaunchPersistent(tb.Sim, 1, func(t *accel.TB) {
			for {
				m := aq.Recv(t.Proc())
				if len(m.Payload) < workload.SeqBytes {
					continue
				}
				t.Compute(opCost)
				store.ServeRaw(m.Payload[workload.SeqBytes:])
				if aq.Send(t.Proc(), uint16(m.Slot), core.ReplicaAck(m.Payload)) != nil {
					return
				}
			}
		}); err != nil {
			return nil, err
		}
	}

	// Serving kernels and runtime start, one node at a time. The body is the
	// single-server KV deployment's, verbatim.
	for _, n := range r.nodes {
		qs := n.handle.AccelQueues()
		store := n.Store
		if err := n.GPU.LaunchPersistent(tb.Sim, serveQueues, func(t *accel.TB) {
			aq := qs[t.Index()]
			for {
				m := aq.Recv(t.Proc())
				if len(m.Payload) < workload.SeqBytes {
					continue
				}
				t.Compute(opCost)
				reply := store.ServeRaw(m.Payload[workload.SeqBytes:])
				out := make([]byte, workload.SeqBytes+len(reply))
				copy(out, m.Payload[:workload.SeqBytes])
				copy(out[workload.SeqBytes:], reply)
				if aq.Send(t.Proc(), uint16(m.Slot), out) != nil {
					return
				}
			}
		}); err != nil {
			return nil, err
		}
		if err := n.RT.Start(); err != nil {
			return nil, err
		}
		if t := cfg.Telemetry; t != nil {
			iv := t.Interval
			if iv <= 0 {
				iv = 50 * time.Microsecond
			}
			n.RT.StartMonitor(iv, n.Reg)
		}
	}
	return r, nil
}

var (
	setPrefix = []byte("set ")
	delPrefix = []byte("delete ")
)

// classifierFor builds n's dispatch-path classifier: writes (set/delete) are
// keyed, sharded, and mapped to the precomputed peer mask of the shard this
// node is primary for. Pure bookkeeping — no allocation, no simulation
// operations — so the dispatch hot path stays substrate-parity clean.
func (r *Rack) classifierFor(n *Node) func([]byte) (uint64, uint32, bool) {
	return func(payload []byte) (uint64, uint32, bool) {
		if len(payload) <= workload.SeqBytes {
			return 0, 0, false
		}
		body := payload[workload.SeqBytes:]
		var key []byte
		switch {
		case bytes.HasPrefix(body, setPrefix):
			key = body[len(setPrefix):]
		case bytes.HasPrefix(body, delPrefix):
			key = body[len(delPrefix):]
		default:
			return 0, 0, false
		}
		if i := bytes.IndexByte(key, ' '); i >= 0 {
			key = key[:i]
		}
		if i := bytes.IndexByte(key, '\r'); i >= 0 {
			key = key[:i]
		}
		id := binary.LittleEndian.Uint64(payload)
		return id, n.maskByShard[r.Map.ShardOfBytes(key)], true
	}
}

// Nodes returns the node count.
func (r *Rack) Nodes() int { return len(r.nodes) }

// Node returns rack member i.
func (r *Rack) Node(i int) *Node { return r.nodes[i] }

// Replicas returns the rack's replication factor.
func (r *Rack) Replicas() int { return r.cfg.Replicas }

// Keys returns the preloaded key-universe size.
func (r *Rack) Keys() int { return r.cfg.Keys }

// PeerSlot reports the AddPeer bit position of peer within primary's
// replicator (for ReplicationLag and targeted assertions).
func (r *Rack) PeerSlot(primary, peer int) (int, bool) {
	s, ok := r.nodes[primary].peerSlot[peer]
	return s, ok
}

// PrimaryFor returns the node index owning key's shard.
func (r *Rack) PrimaryFor(key string) int {
	name, _ := r.Map.OwnerOf(key)
	return r.nameIdx[name]
}

// ReplicaSet returns the node indices of key's replica set, primary first.
func (r *Rack) ReplicaSet(key string) []int {
	reps := r.Map.Replicas(r.Map.ShardOf(key), r.cfg.Replicas)
	out := make([]int, len(reps))
	for i, name := range reps {
		out[i] = r.nameIdx[name]
	}
	return out
}

// Measure drives a workload from the rack's client hosts to completion on
// the rack's virtual clock. With the telemetry plane armed, client-side
// span stamps default into node 0's table — complete spans (and therefore
// phase attribution) need the workload to target keys that node owns.
func (r *Rack) Measure(wcfg workload.Config) workload.Result {
	if wcfg.Check == nil {
		wcfg.Check = r.cfg.Check
	}
	if wcfg.Spans == nil && r.cfg.Telemetry != nil {
		wcfg.Spans = r.nodes[0].Spans
	}
	g := workload.New(r.TB.Sim, wcfg, r.Clients...)
	return workload.RunFor(r.TB.Sim, g)
}

// TelemetrySnapshot merges every node's metrics registry into one rack
// rollup: each component snapshot and sampled series reappears under a
// "<node>/" prefix, in node-index order, so the dump is byte-deterministic
// for a deterministic run. Stats are frozen at snapshot time. Nodes without
// a registry (telemetry plane not armed) contribute nothing.
func (r *Rack) TelemetrySnapshot() *metrics.Registry {
	out := metrics.NewRegistry()
	for _, n := range r.nodes {
		if n.Reg == nil {
			continue
		}
		for _, cs := range n.Reg.StatsSnapshot() {
			stats := cs.Stats
			out.AddStats(n.Name+"/"+cs.Component, func() []metrics.Stat { return stats })
		}
		for _, s := range n.Reg.SeriesList() {
			out.AddSeries(s.Renamed(n.Name + "/" + s.Name()))
		}
	}
	return out
}

// TraceExport assembles the rack-wide Perfetto export: one process-track
// block per node (server{i}'s network/snic/mqueue/accelerator tracks plus
// its event ring and samplers), in node-index order.
func (r *Rack) TraceExport() trace.RackExport {
	var ex trace.RackExport
	for _, n := range r.nodes {
		ex.Nodes = append(ex.Nodes, trace.NodeExport{
			Name: n.Name, Spans: n.Spans, Events: n.Tracer, Series: n.Reg.SeriesList(),
		})
	}
	return ex
}

// Close shuts the rack's simulation down, unwinding all processes (and
// evaluating end-of-run invariant finishers when a checker was installed).
func (r *Rack) Close() { r.TB.Sim.Shutdown() }

// OwnedKeys lists the preloaded keys whose primary is node i, in key order.
func (r *Rack) OwnedKeys(i int) []string {
	var out []string
	for k := 0; k < r.cfg.Keys; k++ {
		key := fmt.Sprintf("key-%03d", k)
		if r.PrimaryFor(key) == i {
			out = append(out, key)
		}
	}
	return out
}
