package netstack

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"lynx/internal/model"
	"lynx/internal/sim"
)

func newNet() (*sim.Sim, *Network, model.Params) {
	s := sim.New(sim.Config{Seed: 5})
	p := model.Default()
	return s, New(s, &p), p
}

func TestUDPRoundTrip(t *testing.T) {
	s, n, _ := newNet()
	server := n.AddHost("server")
	client := n.AddHost("client")
	srvSock := server.MustUDPBind(7000)
	cliSock := client.MustUDPBind(9000)

	var rtt time.Duration
	s.Spawn("server", func(p *sim.Proc) {
		for {
			dg := srvSock.Recv(p)
			srvSock.SendTo(dg.From, append([]byte("echo:"), dg.Payload...))
		}
	})
	s.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		cliSock.SendTo(srvSock.Addr(), []byte("ping"))
		dg := cliSock.Recv(p)
		rtt = p.Now().Sub(start)
		if string(dg.Payload) != "echo:ping" {
			t.Errorf("payload %q", dg.Payload)
		}
		if dg.From != srvSock.Addr() {
			t.Errorf("from %v", dg.From)
		}
	})
	s.RunUntil(sim.Time(time.Second))
	s.Shutdown()
	if rtt <= 0 || rtt > 10*time.Microsecond {
		t.Fatalf("wire RTT %v implausible for 40GbE + cut-through switch", rtt)
	}
}

func TestUDPUnknownDestinationsDropped(t *testing.T) {
	s, n, _ := newNet()
	h := n.AddHost("a")
	sock := h.MustUDPBind(1)
	s.Spawn("x", func(p *sim.Proc) {
		sock.SendTo(Addr{Host: "nowhere", Port: 5}, []byte("x")) // no such host
		sock.SendTo(Addr{Host: "a", Port: 99}, []byte("y"))      // no such port
		p.Sleep(time.Millisecond)
		if _, ok := sock.TryRecv(); ok {
			t.Error("unexpected delivery")
		}
	})
	s.RunUntil(sim.Time(time.Second))
	s.Shutdown()
}

func TestUDPQueueOverflowDrops(t *testing.T) {
	s, n, _ := newNet()
	a, b := n.AddHost("a"), n.AddHost("b")
	src := a.MustUDPBind(1)
	b.MustUDPBind(2)
	s.Spawn("flood", func(p *sim.Proc) {
		for i := 0; i < DefaultRxQueue+100; i++ {
			src.SendTo(Addr{Host: "b", Port: 2}, []byte{1})
		}
		p.Sleep(100 * time.Millisecond)
	})
	s.RunUntil(sim.Time(time.Second))
	s.Shutdown()
	if b.Dropped() != 100 {
		t.Fatalf("dropped %d, want 100", b.Dropped())
	}
}

func TestBindConflicts(t *testing.T) {
	_, n, _ := newNet()
	h := n.AddHost("a")
	h.MustUDPBind(5)
	if _, err := h.UDPBind(5); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("err = %v", err)
	}
	h.MustTCPListen(5) // TCP and UDP namespaces are separate
	if _, err := h.TCPListen(5); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("err = %v", err)
	}
}

func TestLinkSerializationContention(t *testing.T) {
	s, n, _ := newNet()
	a, b := n.AddHost("a"), n.AddHost("b")
	src := a.MustUDPBind(1)
	dst := b.MustUDPBind(2)
	const msgs, size = 100, 4096
	var last sim.Time
	s.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			src.SendTo(dst.Addr(), make([]byte, size))
		}
	})
	s.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			dst.Recv(p)
			last = p.Now()
		}
	})
	s.RunUntil(sim.Time(time.Second))
	s.Shutdown()
	// 100 x 4138 B at 40 Gb/s ≈ 82.8 µs of pure serialization on the
	// bottleneck link.
	minTime := model.TransferTime(msgs*(size+udpOverhead), 40e9)
	if last < sim.Time(minTime) {
		t.Fatalf("finished at %v, faster than link allows (%v)", last, minTime)
	}
	if last > sim.Time(2*minTime) {
		t.Fatalf("finished at %v, way beyond serialization bound %v", last, minTime)
	}
}

func TestTCPConnectSendRecv(t *testing.T) {
	s, n, _ := newNet()
	server := n.AddHost("server")
	client := n.AddHost("client")
	l := server.MustTCPListen(80)

	s.Spawn("server", func(p *sim.Proc) {
		conn := l.Accept(p)
		for {
			msg, err := conn.Recv(p)
			if err != nil {
				return
			}
			if err := conn.Send(p, append([]byte("ok:"), msg...)); err != nil {
				return
			}
		}
	})
	var got []byte
	s.Spawn("client", func(p *sim.Proc) {
		conn, err := client.TCPDial(p, server.Addr(80))
		if err != nil {
			t.Error(err)
			return
		}
		if conn.RemoteAddr() != server.Addr(80) {
			t.Errorf("remote %v", conn.RemoteAddr())
		}
		conn.Send(p, []byte("hello"))
		got, _ = conn.Recv(p)
		conn.Close()
	})
	s.RunUntil(sim.Time(time.Second))
	s.Shutdown()
	if string(got) != "ok:hello" {
		t.Fatalf("got %q", got)
	}
}

func TestTCPDialErrors(t *testing.T) {
	s, n, _ := newNet()
	client := n.AddHost("client")
	n.AddHost("server")
	s.Spawn("client", func(p *sim.Proc) {
		if _, err := client.TCPDial(p, Addr{Host: "ghost", Port: 1}); err == nil {
			t.Error("dial to unknown host should fail")
		}
		if _, err := client.TCPDial(p, Addr{Host: "server", Port: 1}); err == nil {
			t.Error("dial to closed port should fail")
		}
	})
	s.RunUntil(sim.Time(time.Second))
	s.Shutdown()
}

func TestTCPCloseDelivery(t *testing.T) {
	s, n, _ := newNet()
	server := n.AddHost("server")
	client := n.AddHost("client")
	l := server.MustTCPListen(80)
	var errGot error
	s.Spawn("server", func(p *sim.Proc) {
		conn := l.Accept(p)
		_, errGot = conn.Recv(p)
	})
	s.Spawn("client", func(p *sim.Proc) {
		conn, _ := client.TCPDial(p, server.Addr(80))
		p.Sleep(time.Microsecond)
		conn.Close()
	})
	s.RunUntil(sim.Time(time.Second))
	s.Shutdown()
	if !errors.Is(errGot, ErrConnClosed) {
		t.Fatalf("err = %v, want ErrConnClosed", errGot)
	}
}

func TestTCPAbortReset(t *testing.T) {
	s, n, _ := newNet()
	server := n.AddHost("server")
	client := n.AddHost("client")
	l := server.MustTCPListen(80)
	var errGot error
	s.Spawn("server", func(p *sim.Proc) {
		conn := l.Accept(p)
		_, errGot = conn.Recv(p)
	})
	s.Spawn("client", func(p *sim.Proc) {
		conn, _ := client.TCPDial(p, server.Addr(80))
		conn.Abort()
		if err := conn.Send(p, []byte("x")); !errors.Is(err, ErrConnReset) {
			t.Errorf("send on reset conn: %v", err)
		}
	})
	s.RunUntil(sim.Time(time.Second))
	s.Shutdown()
	if !errors.Is(errGot, ErrConnReset) {
		t.Fatalf("err = %v, want ErrConnReset", errGot)
	}
}

func TestTCPHandshakeCostsOneRTT(t *testing.T) {
	s, n, _ := newNet()
	server := n.AddHost("server")
	client := n.AddHost("client")
	server.MustTCPListen(80)
	var dialTime time.Duration
	s.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		conn, err := client.TCPDial(p, server.Addr(80))
		if err != nil {
			t.Error(err)
			return
		}
		dialTime = p.Now().Sub(start)
		conn.Close()
	})
	s.RunUntil(sim.Time(time.Second))
	s.Shutdown()
	rtt := n.RTT(0)
	if dialTime < rtt/2 || dialTime > 2*rtt {
		t.Fatalf("handshake %v, want ~RTT %v", dialTime, rtt)
	}
}

// Property: a TCP connection delivers exactly the sent byte sequences, in
// order, for any message sizes.
func TestTCPStreamIntegrityProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 50 {
			sizes = sizes[:50]
		}
		s, n, _ := newNet()
		server := n.AddHost("server")
		client := n.AddHost("client")
		l := server.MustTCPListen(80)
		var sent, rcvd [][]byte
		s.Spawn("server", func(p *sim.Proc) {
			conn := l.Accept(p)
			for range sizes {
				msg, err := conn.Recv(p)
				if err != nil {
					return
				}
				rcvd = append(rcvd, msg)
			}
		})
		s.Spawn("client", func(p *sim.Proc) {
			conn, err := client.TCPDial(p, server.Addr(80))
			if err != nil {
				return
			}
			for i, sz := range sizes {
				msg := make([]byte, int(sz)%2000+1)
				for j := range msg {
					msg[j] = byte(i + j)
				}
				sent = append(sent, msg)
				conn.Send(p, msg)
			}
		})
		s.RunUntil(sim.Time(10 * time.Second))
		s.Shutdown()
		if len(rcvd) != len(sent) {
			return false
		}
		for i := range sent {
			if !bytes.Equal(sent[i], rcvd[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRTTScalesWithSize(t *testing.T) {
	_, n, _ := newNet()
	if n.RTT(1) >= n.RTT(100000) {
		t.Fatal("RTT must grow with payload size")
	}
}

// Messages beyond the MTU fragment: more wire bytes, later arrival.
func TestMTUFragmentation(t *testing.T) {
	s, n, _ := newNet()
	a, b := n.AddHost("a"), n.AddHost("b")
	src := a.MustUDPBind(1)
	dst := b.MustUDPBind(2)
	measure := func(size int) time.Duration {
		var got time.Duration
		done := false
		s.Spawn("m", func(p *sim.Proc) {
			start := p.Now()
			src.SendTo(dst.Addr(), make([]byte, size))
			dst.Recv(p)
			got = p.Now().Sub(start)
			done = true
		})
		s.RunUntilCond(s.Now().Add(time.Second), time.Millisecond, func() bool { return done })
		return got
	}
	small := measure(1400) // 1 fragment
	large := measure(4000) // 3 fragments
	if large <= small {
		t.Fatalf("4000B (%v) must take longer than 1400B (%v)", large, small)
	}
	// 3 fragments -> 3x headers + 3x switch latency beyond pure payload
	// serialization.
	extraSer := time.Duration(float64((4000-1400)*8) / 40e9 * 1e9 * 2)
	if large-small < extraSer {
		t.Fatalf("fragmentation overhead missing: delta %v < payload-only %v", large-small, extraSer)
	}
	if n.RTT(100) >= n.RTT(4000) {
		t.Fatal("RTT must grow with fragmentation")
	}
}

func TestHostLookupAndAccessors(t *testing.T) {
	s, n, _ := newNet()
	h := n.AddHost("alpha")
	if h.Name() != "alpha" {
		t.Fatalf("name %q", h.Name())
	}
	if got, ok := n.Host("alpha"); !ok || got != h {
		t.Fatal("lookup failed")
	}
	if _, ok := n.Host("ghost"); ok {
		t.Fatal("ghost host found")
	}
	sock := h.MustUDPBind(9)
	if sock.Pending() != 0 {
		t.Fatal("fresh socket has pending datagrams")
	}
	sock.Close()
	if _, err := h.UDPBind(9); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	_ = s
}

func TestUDPRecvTimeout(t *testing.T) {
	s, n, _ := newNet()
	h := n.AddHost("a")
	sock := h.MustUDPBind(1)
	var ok bool
	s.Spawn("x", func(p *sim.Proc) {
		_, ok, _ = sock.RecvTimeout(p, 20*time.Microsecond)
	})
	s.Run()
	if ok {
		t.Fatal("timeout expected")
	}
}

func TestTCPListenerCloseAndConnAccessors(t *testing.T) {
	s, n, _ := newNet()
	server := n.AddHost("server")
	client := n.AddHost("client")
	l := server.MustTCPListen(80)
	s.Spawn("srv", func(p *sim.Proc) {
		conn := l.Accept(p)
		if conn.LocalAddr() != server.Addr(80) {
			t.Errorf("server local %v", conn.LocalAddr())
		}
		// RecvTimeout: nothing arrives.
		if _, ok, err := conn.RecvTimeout(p, 10*time.Microsecond); ok || err != nil {
			t.Errorf("recvtimeout ok=%v err=%v", ok, err)
		}
	})
	s.Spawn("cli", func(p *sim.Proc) {
		conn, err := client.TCPDial(p, server.Addr(80))
		if err != nil {
			t.Error(err)
			return
		}
		if conn.Reset() {
			t.Error("fresh conn reset")
		}
		conn.Abort()
		if !conn.Reset() {
			t.Error("abort not visible")
		}
		if _, _, err := conn.RecvTimeout(p, time.Microsecond); err == nil {
			t.Error("recv on reset conn must error")
		}
		l.Close()
		if _, err := client.TCPDial(p, server.Addr(80)); err == nil {
			t.Error("dial after listener close must fail")
		}
	})
	s.RunUntil(sim.Time(time.Second))
	s.Shutdown()
}

func TestTCPDoubleCloseIsIdempotent(t *testing.T) {
	s, n, _ := newNet()
	server := n.AddHost("server")
	client := n.AddHost("client")
	l := server.MustTCPListen(80)
	s.Spawn("srv", func(p *sim.Proc) { l.Accept(p) })
	s.Spawn("cli", func(p *sim.Proc) {
		conn, _ := client.TCPDial(p, server.Addr(80))
		conn.Close()
		conn.Close() // no-op
		if err := conn.Send(p, []byte("x")); err == nil {
			t.Error("send after close must fail")
		}
	})
	s.RunUntil(sim.Time(time.Second))
	s.Shutdown()
}
