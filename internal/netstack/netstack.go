// Package netstack models the client-facing Ethernet/IP network of the
// testbed: hosts attached to a single switch (Mellanox SN2100 in the paper)
// via full-duplex links, carrying UDP datagrams and TCP message streams.
//
// The package moves bytes with wire-accurate timing (per-link serialization
// with contention, propagation, switch latency) and leaves *CPU* protocol
// processing costs to the caller: the cost of the UDP/TCP stack depends on
// which core runs it (Xeon vs. ARM, kernel vs. VMA bypass, §5.1.1), so the
// compute platform charges model.Params.UDPCost/TCPCost where the packet is
// actually processed.
package netstack

import (
	"errors"
	"fmt"
	"time"

	"lynx/internal/check"
	"lynx/internal/fault"
	"lynx/internal/model"
	"lynx/internal/sim"
)

// Addr identifies a transport endpoint.
type Addr struct {
	Host string
	Port uint16
}

// String formats the address host:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// Datagram is one received UDP message.
type Datagram struct {
	From    Addr
	To      Addr
	Payload []byte
	// EnqueuedAt is the virtual time the datagram entered the destination
	// socket's receive queue (zero on locally-constructed datagrams). The
	// consumer's receive time minus this is the rx-ring residency, the
	// network-phase queue wait of the attribution profile.
	EnqueuedAt sim.Time
}

const (
	udpOverhead = 42 // Ethernet + IP + UDP headers
	tcpOverhead = 54 // Ethernet + IP + TCP headers
	// MTU is the Ethernet payload limit; larger messages fragment (UDP/IP
	// fragmentation, TCP segmentation) and pay per-fragment header and
	// switch costs.
	MTU = 1500
	// DefaultRxQueue is the socket receive queue depth; UDP datagrams
	// arriving at a full queue are dropped, like a real NIC ring.
	DefaultRxQueue = 4096
)

// wireSize returns the total on-wire bytes for a payload incl. per-fragment
// headers, and the fragment count.
func wireSize(payload, overhead int) (bytes, frags int) {
	if payload <= 0 {
		return overhead, 1
	}
	frags = (payload + MTU - 1) / MTU
	return payload + frags*overhead, frags
}

// Network is a single-switch topology.
type Network struct {
	sim       *sim.Sim
	params    *model.Params
	hosts     map[string]*Host
	ephemeral uint16
	faults    *fault.Plan

	// check and the udp* ledgers implement datagram conservation: every
	// datagram launched is eventually delivered, dropped at a full receive
	// queue, unreachable, or still in flight at shutdown — never duplicated
	// beyond the fault plan's say-so. Maintained only while a checker is
	// installed.
	check          *check.Checker
	udpSent        uint64
	udpDuplicated  uint64
	udpWireDropped uint64
	udpDelivered   uint64
	udpRxqDropped  uint64
	udpUnreachable uint64
}

// New creates an empty network using the wire constants in params.
func New(s *sim.Sim, p *model.Params) *Network {
	return &Network{sim: s, params: p, hosts: make(map[string]*Host), ephemeral: 32768}
}

// SetFaults installs a fault plan consulted per datagram/segment. A nil plan
// (the default) injects nothing.
func (n *Network) SetFaults(pl *fault.Plan) { n.faults = pl }

// Faults returns the installed fault plan (possibly nil).
func (n *Network) Faults() *fault.Plan { return n.faults }

// RegisterInvariants installs ck and registers the network's end-of-run
// check: every datagram launched since installation is accounted for as
// delivered, dropped (wire or receive queue), unreachable, or still in
// flight at shutdown (a non-negative remainder).
func (n *Network) RegisterInvariants(ck *check.Checker) {
	if !ck.Enabled() {
		return
	}
	n.check = ck
	ck.AddFinisher("netstack.datagram-conservation", func(fail func(string, ...any)) {
		launched := n.udpSent + n.udpDuplicated - n.udpWireDropped
		accounted := n.udpDelivered + n.udpRxqDropped + n.udpUnreachable
		if accounted > launched {
			fail("accounted %d datagrams (delivered %d, rxq-dropped %d, unreachable %d) exceed launched %d (sent %d, dup %d, wire-dropped %d)",
				accounted, n.udpDelivered, n.udpRxqDropped, n.udpUnreachable,
				launched, n.udpSent, n.udpDuplicated, n.udpWireDropped)
		}
	})
}

// link is a simplex link modelled with a next-free-time token.
type link struct {
	bandwidth float64
	freeAt    sim.Time
	busy      time.Duration
}

// reserve books the serialization of size bytes, returning the completion
// time of the last bit on this link.
func (l *link) reserve(now sim.Time, size int) sim.Time {
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	ser := model.TransferTime(size, l.bandwidth)
	l.busy += ser
	l.freeAt = start.Add(ser)
	return l.freeAt
}

// Host is a machine (or a multi-homed SmartNIC, §2) on the network.
type Host struct {
	net  *Network
	name string
	up   link
	down link

	udp       map[uint16]*UDPSocket
	listeners map[uint16]*TCPListener

	dropped uint64
}

// AddHost attaches a new host to the switch.
func (n *Network) AddHost(name string) *Host {
	if _, dup := n.hosts[name]; dup {
		panic(fmt.Sprintf("netstack: duplicate host %q", name))
	}
	h := &Host{
		net:       n,
		name:      name,
		up:        link{bandwidth: n.params.WireBandwidth},
		down:      link{bandwidth: n.params.WireBandwidth},
		udp:       make(map[uint16]*UDPSocket),
		listeners: make(map[uint16]*TCPListener),
	}
	n.hosts[name] = h
	return h
}

// Host looks up a host by name.
func (n *Network) Host(name string) (*Host, bool) {
	h, ok := n.hosts[name]
	return h, ok
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Addr returns this host's address for the given port.
func (h *Host) Addr(port uint16) Addr { return Addr{Host: h.name, Port: port} }

// Dropped reports datagrams discarded at full receive queues.
func (h *Host) Dropped() uint64 { return h.dropped }

// WireBusy reports the accumulated serialization time booked on this host's
// uplink and downlink. Deltas over a sampling interval divided by twice the
// interval give the NIC-wire utilization the monitor publishes.
func (h *Host) WireBusy() time.Duration { return h.up.busy + h.down.busy }

// RTT returns the uncontended round-trip wire time for a payload of the
// given size between two hosts (used to calibrate handshakes and tests).
func (n *Network) RTT(size int) time.Duration {
	bytes, frags := wireSize(size, udpOverhead)
	ser := model.TransferTime(bytes, n.params.WireBandwidth)
	oneWay := 2*ser + 2*n.params.WirePropagation + time.Duration(frags)*n.params.SwitchLatency
	return 2 * oneWay
}

// transmit schedules delivery of one message of the given payload size from
// src to dst, contending on src's uplink and dst's downlink. Payloads beyond
// the MTU fragment: every fragment pays headers and switch processing, and
// the message arrives when its last fragment does.
func (n *Network) transmit(src, dst *Host, payload, overhead int, deliver func()) {
	n.transmitDelayed(src, dst, payload, overhead, 0, deliver)
}

// transmitDelayed is transmit with an injected in-network delay (fault plan):
// the message serializes normally but arrives extra later, as if queued
// behind cross-traffic inside the switch.
func (n *Network) transmitDelayed(src, dst *Host, payload, overhead int, extra time.Duration, deliver func()) {
	bytes, frags := wireSize(payload, overhead)
	now := n.sim.Now()
	upDone := src.up.reserve(now, bytes)
	atSwitch := upDone.Add(n.params.WirePropagation + time.Duration(frags)*n.params.SwitchLatency)
	downDone := dst.down.reserve(atSwitch, bytes)
	arrival := downDone.Add(n.params.WirePropagation + extra)
	n.sim.At(arrival, deliver)
}

// ---------------------------------------------------------------------------
// UDP

// UDPSocket is a bound UDP endpoint.
type UDPSocket struct {
	host *Host
	port uint16
	rxq  *sim.Chan[Datagram]
}

// ErrPortInUse reports a bind conflict.
var ErrPortInUse = errors.New("netstack: port in use")

// UDPBind binds a UDP socket on the host.
func (h *Host) UDPBind(port uint16) (*UDPSocket, error) {
	if _, dup := h.udp[port]; dup {
		return nil, fmt.Errorf("%w: udp %s:%d", ErrPortInUse, h.name, port)
	}
	s := &UDPSocket{host: h, port: port, rxq: sim.NewChan[Datagram](h.net.sim, DefaultRxQueue)}
	h.udp[port] = s
	return s, nil
}

// MustUDPBind binds or panics (initialization convenience).
func (h *Host) MustUDPBind(port uint16) *UDPSocket {
	s, err := h.UDPBind(port)
	if err != nil {
		panic(err)
	}
	return s
}

// Addr returns the socket's bound address.
func (s *UDPSocket) Addr() Addr { return s.host.Addr(s.port) }

// SendTo transmits payload to the destination address. Unknown destinations
// are silently dropped (as on a real network). The payload is copied. The
// network's fault plan, if any, may drop, duplicate or delay the datagram.
func (s *UDPSocket) SendTo(to Addr, payload []byte) {
	n := s.host.net
	checked := n.check.Enabled()
	dst, ok := n.hosts[to.Host]
	if !ok {
		return
	}
	if checked {
		n.udpSent++
	}
	fate, extra := n.faults.Datagram()
	if fate == fault.Drop {
		if checked {
			n.udpWireDropped++
		}
		return // lost on the wire
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	dg := Datagram{From: s.Addr(), To: to, Payload: buf}
	deliver := func() {
		sock, ok := dst.udp[to.Port]
		if !ok {
			if checked {
				n.udpUnreachable++
			}
			return // port unreachable
		}
		dg := dg // per-delivery copy: duplicates stamp their own arrival
		dg.EnqueuedAt = n.sim.Now()
		if !sock.rxq.TryPut(dg) {
			dst.dropped++
			if checked {
				n.udpRxqDropped++
			}
		} else if checked {
			n.udpDelivered++
		}
	}
	n.transmitDelayed(s.host, dst, len(payload), udpOverhead, extra, deliver)
	if fate == fault.Duplicate {
		if checked {
			n.udpDuplicated++
		}
		// The copy serializes behind the original on the same links.
		n.transmitDelayed(s.host, dst, len(payload), udpOverhead, extra, deliver)
	}
}

// Recv blocks until a datagram arrives.
func (s *UDPSocket) Recv(p *sim.Proc) Datagram { return s.rxq.Get(p) }

// RecvTimeout blocks up to d for a datagram, following the package-wide
// (value, ok, err) timeout-receive idiom: ok is false on timeout, and err is
// reserved for socket-level failures (always nil for UDP today — a timed-out
// or successful receive never sets it).
func (s *UDPSocket) RecvTimeout(p *sim.Proc, d time.Duration) (Datagram, bool, error) {
	dg, ok := s.rxq.GetTimeout(p, d)
	return dg, ok, nil
}

// RecvBatch receives up to len(buf) datagrams: it blocks for the first, then
// drains whatever is already queued without blocking. Returns the count
// stored (at least 1 for a non-empty buf). This is the dispatcher's batched
// dequeue path: one wakeup per burst instead of one per packet.
func (s *UDPSocket) RecvBatch(p *sim.Proc, buf []Datagram) int {
	return s.rxq.GetBatch(p, buf)
}

// RecvT is Recv for tasks: reports (dg, true) when a datagram was already
// queued (continuation NOT called — caller continues inline), else parks the
// task and fn runs when one arrives.
func (s *UDPSocket) RecvT(t *sim.Task, fn func(Datagram)) (Datagram, bool) {
	return s.rxq.GetT(t, fn)
}

// RecvBatchT is RecvBatch for tasks, with the same inline-return convention
// as RecvT: (n, true) means n datagrams were stored inline.
func (s *UDPSocket) RecvBatchT(t *sim.Task, buf []Datagram, fn func(int)) (int, bool) {
	return s.rxq.GetBatchT(t, buf, fn)
}

// TryRecv polls for a datagram without blocking.
func (s *UDPSocket) TryRecv() (Datagram, bool) { return s.rxq.TryGet() }

// Pending reports queued datagrams.
func (s *UDPSocket) Pending() int { return s.rxq.Len() }

// Close unbinds the socket.
func (s *UDPSocket) Close() { delete(s.host.udp, s.port) }

// ---------------------------------------------------------------------------
// TCP

// TCPListener accepts incoming connections on a port.
type TCPListener struct {
	host    *Host
	port    uint16
	backlog *sim.Chan[*TCPConn]
}

// TCPConn is one side of an established connection carrying framed messages
// in order (the simulation does not re-segment: each Send is one app-level
// message, the unit every experiment in the paper operates on).
type TCPConn struct {
	net        *Network
	local      Addr
	remote     Addr
	localHost  *Host
	remoteHost *Host
	rxq        *sim.Chan[tcpMsg]
	peer       *TCPConn
	closed     bool
	reset      bool
}

// tcpMsg is one framed message with its receive-queue entry time, so TCP
// receivers can attribute queue residency like UDP's Datagram.EnqueuedAt.
type tcpMsg struct {
	b   []byte
	enq sim.Time
}

// ErrConnClosed is returned by Recv after the peer closes.
var ErrConnClosed = errors.New("netstack: connection closed")

// ErrConnReset is returned after an abortive close (failure injection).
var ErrConnReset = errors.New("netstack: connection reset")

// TCPListen opens a listener.
func (h *Host) TCPListen(port uint16) (*TCPListener, error) {
	if _, dup := h.listeners[port]; dup {
		return nil, fmt.Errorf("%w: tcp %s:%d", ErrPortInUse, h.name, port)
	}
	l := &TCPListener{host: h, port: port, backlog: sim.NewChan[*TCPConn](h.net.sim, 0)}
	h.listeners[port] = l
	return l, nil
}

// MustTCPListen listens or panics.
func (h *Host) MustTCPListen(port uint16) *TCPListener {
	l, err := h.TCPListen(port)
	if err != nil {
		panic(err)
	}
	return l
}

// Accept blocks until a connection is established and returns its server
// side.
func (l *TCPListener) Accept(p *sim.Proc) *TCPConn { return l.backlog.Get(p) }

// Close stops listening.
func (l *TCPListener) Close() { delete(l.host.listeners, l.port) }

// TCPDial establishes a connection to addr, blocking for the handshake
// (SYN + SYN-ACK round trip).
func (h *Host) TCPDial(p *sim.Proc, to Addr) (*TCPConn, error) {
	dst, ok := h.net.hosts[to.Host]
	if !ok {
		return nil, fmt.Errorf("netstack: no route to host %q", to.Host)
	}
	l, ok := dst.listeners[to.Port]
	if !ok {
		return nil, fmt.Errorf("netstack: connection refused: %v", to)
	}
	h.net.ephemeral++
	local := Addr{Host: h.name, Port: h.net.ephemeral}

	client := &TCPConn{net: h.net, local: local, remote: to, localHost: h, remoteHost: dst,
		rxq: sim.NewChan[tcpMsg](h.net.sim, 0)}
	server := &TCPConn{net: h.net, local: to, remote: local, localHost: dst, remoteHost: h,
		rxq: sim.NewChan[tcpMsg](h.net.sim, 0)}
	client.peer, server.peer = server, client

	established := sim.NewChan[struct{}](h.net.sim, 0)
	// SYN out...
	h.net.transmit(h, dst, 0, tcpOverhead, func() {
		// ...SYN-ACK back.
		h.net.transmit(dst, h, 0, tcpOverhead, func() {
			established.TryPut(struct{}{})
		})
		l.backlog.TryPut(server)
	})
	established.Get(p)
	return client, nil
}

// LocalAddr returns this side's address.
func (c *TCPConn) LocalAddr() Addr { return c.local }

// RemoteAddr returns the peer's address.
func (c *TCPConn) RemoteAddr() Addr { return c.remote }

// Send transmits one framed message to the peer. Each message also costs an
// ACK in the reverse direction, which is what makes TCP dearer on the wire
// as well as on the CPU. Under a fault plan, a "lost" segment manifests as
// retransmission delay — the reliable transport masks the loss, as real TCP
// does.
func (c *TCPConn) Send(p *sim.Proc, msg []byte) error {
	if c.closed {
		return ErrConnClosed
	}
	if c.reset {
		return ErrConnReset
	}
	buf := make([]byte, len(msg))
	copy(buf, msg)
	peer := c.peer
	c.net.transmitDelayed(c.localHost, c.remoteHost, len(msg), tcpOverhead, c.net.faults.TCPDelay(), func() {
		if peer.closed || peer.reset {
			return
		}
		// unbounded: flow control not modelled
		peer.rxq.TryPut(tcpMsg{b: buf, enq: c.net.sim.Now()})
		// Delayed ACK traffic back (fire and forget).
		c.net.transmit(c.remoteHost, c.localHost, 0, tcpOverhead, func() {})
	})
	return nil
}

// Recv blocks for the next message from the peer.
func (c *TCPConn) Recv(p *sim.Proc) ([]byte, error) {
	msg, _, err := c.RecvQueued(p)
	return msg, err
}

// RecvQueued is Recv returning also the virtual time the message entered the
// receive queue, for queue-wait attribution.
func (c *TCPConn) RecvQueued(p *sim.Proc) ([]byte, sim.Time, error) {
	for {
		if msg, ok := c.rxq.TryGet(); ok {
			return msg.b, msg.enq, nil
		}
		if c.reset {
			return nil, 0, ErrConnReset
		}
		if c.closed {
			return nil, 0, ErrConnClosed
		}
		msg, ok := c.rxq.GetTimeout(p, 100*time.Microsecond)
		if ok {
			return msg.b, msg.enq, nil
		}
	}
}

// RecvTimeout blocks up to d for the next message.
func (c *TCPConn) RecvTimeout(p *sim.Proc, d time.Duration) ([]byte, bool, error) {
	msg, _, ok, err := c.RecvQueuedTimeout(p, d)
	return msg, ok, err
}

// RecvQueuedTimeout is RecvTimeout returning also the receive-queue entry
// time of the message.
func (c *TCPConn) RecvQueuedTimeout(p *sim.Proc, d time.Duration) ([]byte, sim.Time, bool, error) {
	if msg, ok := c.rxq.TryGet(); ok {
		return msg.b, msg.enq, true, nil
	}
	if c.reset {
		return nil, 0, false, ErrConnReset
	}
	if c.closed {
		return nil, 0, false, ErrConnClosed
	}
	msg, ok := c.rxq.GetTimeout(p, d)
	if !ok {
		return nil, 0, false, nil
	}
	return msg.b, msg.enq, true, nil
}

// Close shuts the connection down gracefully on both ends (FIN exchange is
// abstracted to a one-way notification delay).
func (c *TCPConn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	peer := c.peer
	c.net.transmit(c.localHost, c.remoteHost, 0, tcpOverhead, func() {
		peer.closed = true
	})
}

// Abort resets the connection immediately on both ends (failure injection:
// the SNIC reports such errors to accelerators through the mqueue metadata
// error status, §5.1).
func (c *TCPConn) Abort() {
	c.reset = true
	c.peer.reset = true
}

// Reset reports whether the connection was aborted.
func (c *TCPConn) Reset() bool { return c.reset }
