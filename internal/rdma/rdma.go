// Package rdma models the one-sided RDMA machinery Lynx relies on: an RDMA
// engine embedded in a NIC, queue pairs (reliable RC and unreliable UC),
// work requests, and completion queues.
//
// Lynx uses one-sided RDMA READ/WRITE from the SmartNIC into accelerator
// memory for all mqueue management (§4.2 "Remote Message Queue Manager"),
// both for accelerators on the local PCIe fabric and for accelerators behind
// a remote host's RDMA NIC (§5.5) — the latter differ only by an extra
// network penalty, which is precisely what makes Lynx location-transparent.
package rdma

import (
	"fmt"
	"time"

	"lynx/internal/fabric"
	"lynx/internal/fault"
	"lynx/internal/memdev"
	"lynx/internal/model"
	"lynx/internal/sim"
)

// QPKind selects the transport of a queue pair.
type QPKind int

const (
	// RC is a Reliable Connection: ordered, acknowledged, no drops.
	RC QPKind = iota
	// UC is an Unreliable Connection: ordered but unacknowledged; the
	// receive side must provision credits (receive WQEs) or writes with
	// immediate are dropped. NICA's custom rings use UC (§5.2).
	UC
)

// String names the QP kind.
func (k QPKind) String() string {
	if k == UC {
		return "UC"
	}
	return "RC"
}

// OpCode identifies a work request type.
type OpCode int

const (
	// OpWrite is a one-sided RDMA WRITE.
	OpWrite OpCode = iota
	// OpRead is a one-sided RDMA READ.
	OpRead
	// OpBarrier is a zero-length ordered READ used as a write barrier
	// (§5.1 consistency workaround).
	OpBarrier
)

// WR is a work request posted to a QP's send queue.
type WR struct {
	Op     OpCode
	Region *memdev.Region
	Offset int
	Data   []byte // OpWrite payload
	Len    int    // OpRead length
	ID     uint64 // user cookie echoed in the completion

	// OnDeliver, when set on an OpWrite, is invoked at the simulated instant
	// the data lands in the target region — before the completion travels
	// back to the poster. Span instrumentation stamps queue-entry times here
	// so a consumer polling the written memory can never observe the message
	// before its stamp. Never called for dropped UC writes.
	OnDeliver func(at sim.Time)

	// reply, when set by the blocking helpers, receives this WR's CQE
	// directly so concurrent posters never steal each other's completions.
	reply *sim.Chan[CQE]

	// silent marks an unsignaled WQE: the transfer happens but no CQE is
	// surfaced anywhere. PostAndWait sets it on non-checkpoint WRs so a
	// batch of n writes generates ceil(n/cqDrain) completions, matching
	// how verbs applications suppress per-WQE signaling under doorbell
	// batching.
	silent bool
}

// CQE is a completion queue entry.
type CQE struct {
	ID      uint64
	Op      OpCode
	Data    []byte // OpRead result
	Dropped bool   // UC write discarded for lack of receive credits
	Retried bool   // completed only after a transport-level retry (fault plan)
	At      sim.Time
}

// Engine is the RDMA engine of one NIC. Work requests from all QPs share the
// engine's hardware pipeline (a unit resource), reproducing the serialization
// that makes "one RC QP per accelerator" (§5.1) a sensible design point.
type Engine struct {
	sim    *sim.Sim
	params *model.Params
	fab    *fabric.Fabric
	nic    *fabric.Device
	pipe   *sim.Resource
	faults *fault.Plan

	qps     uint64
	ops     uint64
	retried uint64
}

// NewEngine creates the RDMA engine for the NIC device on fab.
func NewEngine(s *sim.Sim, p *model.Params, fab *fabric.Fabric, nic *fabric.Device) *Engine {
	return &Engine{sim: s, params: p, fab: fab, nic: nic, pipe: sim.NewResource(s, 1)}
}

// SetFaults installs a fault plan consulted per work request. A nil plan
// (the default) injects nothing.
func (e *Engine) SetFaults(pl *fault.Plan) { e.faults = pl }

// NIC returns the device the engine is embedded in.
func (e *Engine) NIC() *fabric.Device { return e.nic }

// Fabric returns the PCIe fabric the engine issues DMA on (for topology and
// utilization probes).
func (e *Engine) Fabric() *fabric.Fabric { return e.fab }

// Ops reports the number of work requests executed.
func (e *Engine) Ops() uint64 { return e.ops }

// Retried reports work requests that completed only after a transport-level
// retry injected by the fault plan.
func (e *Engine) Retried() uint64 { return e.retried }

// QP is a queue pair whose remote end is a window into target-device memory.
type QP struct {
	engine *Engine
	kind   QPKind
	target *fabric.Device
	// remote is non-zero when the target sits behind another host's NIC;
	// it is added to every operation's transit (each way), modelling the
	// extra InfiniBand network hop (§6.3 measures ~8 µs round trip).
	remote time.Duration

	hw       bool
	sq       *sim.Chan[WR]
	cq       *sim.Chan[CQE]
	cur      WR // WR between dequeue and engine stage of the run task
	inflight []*inflightWR
	inflHead int

	// flFree and replyFree recycle inflight nodes and reply channels so the
	// per-operation hot path allocates nothing once warm. Recycling changes
	// no scheduling decision — only where the bookkeeping structs live.
	flFree    []*inflightWR
	replyFree []*sim.Chan[CQE]

	credits  int // UC receive credits
	dropped  uint64
	posted   uint64
	complete uint64
}

// QPConfig parameterizes CreateQP.
type QPConfig struct {
	Kind QPKind
	// Remote marks the target as reachable only across the network.
	Remote bool
	// SQDepth bounds the send queue (0 = unbounded).
	SQDepth int
	// HWIssue marks the QP as driven by NIC-resident hardware (the Innova
	// AFU): posting costs no CPU time, WRITE completions are discarded,
	// and writes are fully pipelined (posted semantics — the engine only
	// pays its per-WQE processing time; wire transit overlaps).
	HWIssue bool
}

// CreateQP connects a queue pair from the engine's NIC to the target device.
// The returned QP processes work requests in order on a dedicated engine
// context; completions appear on CQ in posting order.
func (e *Engine) CreateQP(target *fabric.Device, cfg QPConfig) *QP {
	if target.Mem == nil {
		panic(fmt.Sprintf("rdma: target %s has no DMA-visible memory", target.Name()))
	}
	if !target.Mem.BARCapable() {
		panic(fmt.Sprintf("rdma: target %s cannot expose memory on PCIe (no BAR)", target.Name()))
	}
	qp := &QP{
		engine: e,
		kind:   cfg.Kind,
		target: target,
		hw:     cfg.HWIssue,
		sq:     sim.NewChan[WR](e.sim, cfg.SQDepth),
		cq:     sim.NewChan[CQE](e.sim, 0),
	}
	if cfg.Remote {
		qp.remote = e.params.RDMARemotePenalty
	}
	e.qps++
	e.sim.SpawnTask("rdma-qp/"+target.Name(), func(t *sim.Task) { qp.run(t) })
	return qp
}

// inflightWR tracks one WR between engine processing and wire completion.
// Nodes are recycled through QP.flFree; onWire is the node's reusable
// wire-completion thunk, bound once and kept across the free list.
type inflightWR struct {
	qp     *QP
	wr     WR
	cqe    CQE
	done   bool
	onWire func()
}

// getInflight takes a tracking node for wr, reusing a free-listed one.
func (qp *QP) getInflight(wr WR) *inflightWR {
	if n := len(qp.flFree); n > 0 {
		fl := qp.flFree[n-1]
		qp.flFree[n-1] = nil
		qp.flFree = qp.flFree[:n-1]
		fl.wr = wr
		fl.cqe = CQE{ID: wr.ID, Op: wr.Op}
		fl.done = false
		return fl
	}
	fl := &inflightWR{qp: qp, wr: wr, cqe: CQE{ID: wr.ID, Op: wr.Op}}
	fl.onWire = fl.wireDone
	return fl
}

// wireDone runs at the simulated instant the WR's wire transfer completes:
// the data movement side effect, then in-order completion delivery.
func (fl *inflightWR) wireDone() {
	switch fl.wr.Op {
	case OpWrite:
		fl.wr.Region.WriteDMA(fl.wr.Offset, fl.wr.Data)
		if fl.wr.OnDeliver != nil {
			fl.wr.OnDeliver(fl.qp.engine.sim.Now())
		}
	case OpRead:
		fl.cqe.Data = fl.wr.Region.ReadDMA(fl.wr.Offset, fl.wr.Len)
	case OpBarrier:
		fl.wr.Region.Flush()
	}
	fl.qp.finish(fl)
}

// getReply takes a reply channel from the QP's pool. Reply channels only ever
// hold buffered completions (TryPut by finish, Get/GetT by the poster), so an
// unbounded recycled channel behaves identically to a fresh exact-capacity
// one.
func (qp *QP) getReply() *sim.Chan[CQE] {
	if n := len(qp.replyFree); n > 0 {
		c := qp.replyFree[n-1]
		qp.replyFree[n-1] = nil
		qp.replyFree = qp.replyFree[:n-1]
		return c
	}
	return sim.NewChan[CQE](qp.engine.sim, 0)
}

// putReply returns a drained reply channel to the pool.
func (qp *QP) putReply(c *sim.Chan[CQE]) { qp.replyFree = append(qp.replyFree, c) }

// run is the QP's engine context, hosted on the run-to-completion task
// substrate (every RDMA operation in the system crosses this loop, making it
// one of the hottest processes in a run). WQEs are processed in order, each
// holding the engine pipeline only for its per-WQE processing time; wire
// transit overlaps across outstanding WRs (real NICs keep many requests in
// flight). Completions are still delivered strictly in posting order (RC
// semantics). The loop's continuations are bound once per QP, so the
// per-WQE scheduler cost is events only — no goroutine handoffs, no
// per-iteration closures.
func (qp *QP) run(t *sim.Task) {
	e := qp.engine
	var loop, acquired, engineDone func()
	var onWR func(WR)
	onWR = func(wr WR) {
		qp.cur = wr
		if e.pipe.AcquireT(t, acquired) {
			acquired()
		}
	}
	acquired = func() { t.Sleep(e.params.RDMAEngine, engineDone) }
	engineDone = func() {
		e.ops++
		e.pipe.Release()
		qp.process(qp.cur)
		loop()
	}
	loop = func() {
		if wr, ok := qp.sq.GetT(t, onWR); ok {
			onWR(wr)
		}
	}
	loop()
}

// process runs a WQE's post-engine stage: fault perturbation, transfer
// scheduling, and in-order completion delivery.
func (qp *QP) process(wr WR) {
	e := qp.engine
	fl := qp.getInflight(wr)
	qp.inflight = append(qp.inflight, fl)
	// Fault plan: a completion error is retried by the RC transport
	// (go-back-N), surfacing as extra latency and a flagged CQE; latency
	// spikes add transit without a retry.
	perturb, errored := e.faults.RDMAPerturb()
	if errored {
		e.retried++
		fl.cqe.Retried = true
	}
	switch wr.Op {
	case OpWrite:
		if qp.kind == UC && qp.credits <= 0 {
			qp.dropped++
			fl.cqe.Dropped = true
			qp.finish(fl)
			return
		}
		if qp.kind == UC {
			qp.credits--
		}
		transit := qp.remote + e.fab.TransferTime(e.nic, qp.target, len(wr.Data)) + perturb
		e.sim.After(transit, fl.onWire)
	case OpRead:
		transit := 2*qp.remote + e.fab.TransferTime(e.nic, qp.target, 32) +
			e.fab.TransferTime(qp.target, e.nic, wr.Len) + perturb
		e.sim.After(transit, fl.onWire)
	case OpBarrier:
		// The barrier read cannot be pipelined behind other traffic;
		// the paper measures ~5 µs for the full workaround (this read
		// plus the uncoalesced doorbell write).
		transit := 2*qp.remote + e.fab.TransferTime(e.nic, qp.target, 32) +
			e.fab.TransferTime(qp.target, e.nic, 8)
		// Aim the barrier's total at RDMAReadBarrier minus the
		// uncoalesced doorbell write it forces (~1.5 µs).
		if pad := e.params.RDMAReadBarrier - 1500*time.Nanosecond - transit - e.params.RDMAIssue - e.params.RDMAEngine; pad > 0 {
			transit += pad
		}
		transit += perturb
		e.sim.After(transit, fl.onWire)
	}
}

// finish marks a WR complete and delivers every leading completed CQE in
// posting order.
func (qp *QP) finish(fl *inflightWR) {
	fl.done = true
	fl.cqe.At = qp.engine.sim.Now()
	for qp.inflHead < len(qp.inflight) && qp.inflight[qp.inflHead].done {
		head := qp.inflight[qp.inflHead]
		qp.inflight[qp.inflHead] = nil
		qp.inflHead++
		qp.complete++
		switch {
		case head.wr.reply != nil:
			head.wr.reply.TryPut(head.cqe)
		case head.wr.silent:
			// Unsignaled WQE: completed, but surfaces no CQE.
		case qp.hw && head.wr.Op == OpWrite && !head.cqe.Dropped:
			// Hardware QPs discard write completions.
		default:
			qp.cq.TryPut(head.cqe)
		}
		// The CQE escaped by value; drop the node's references and recycle.
		head.wr = WR{}
		head.cqe = CQE{}
		qp.flFree = append(qp.flFree, head)
	}
	if qp.inflHead == len(qp.inflight) {
		qp.inflight, qp.inflHead = qp.inflight[:0], 0
	} else if qp.inflHead > 32 && qp.inflHead*2 >= len(qp.inflight) {
		// Queue stays non-empty under continuous load: compact (amortized
		// O(1)) so the backing array stays bounded.
		n := copy(qp.inflight, qp.inflight[qp.inflHead:])
		for i := n; i < len(qp.inflight); i++ {
			qp.inflight[i] = nil
		}
		qp.inflight = qp.inflight[:n]
		qp.inflHead = 0
	}
}

// Post enqueues a work request asynchronously, charging the caller the
// CPU-side issue cost ("less than 1 µsec", §5.1) unless the QP is hardware
// driven. Completion arrives on CQ (hardware QPs discard write CQEs).
func (qp *QP) Post(p *sim.Proc, wr WR) {
	if !qp.hw {
		p.Sleep(qp.engine.params.RDMAIssue)
	}
	qp.posted++
	qp.sq.Put(p, wr)
}

// PostMany enqueues a run of work requests under a single doorbell
// (multi-WQE posting): the CPU pays one issue cost for the whole group
// instead of one per WQE, then the WRs enter the send queue in order.
// Hardware-driven QPs skip the issue cost entirely, as with Post. The
// engine-side pipeline cost and wire time remain per-WR — doorbell
// coalescing amortizes only the CPU touch, as on real verbs.
func (qp *QP) PostMany(p *sim.Proc, wrs []WR) {
	if len(wrs) == 0 {
		return
	}
	if !qp.hw {
		p.Sleep(qp.engine.params.RDMAIssue)
	}
	for i := range wrs {
		qp.posted++
		qp.sq.Put(p, wrs[i])
	}
}

// PostAndWait posts wrs in doorbell groups of at most doorbell WRs (one
// issue cost per group) and blocks until the last completes. The completion
// wait is checkpointed: a reply is requested on every cqDrain-th WR and on
// the final one, and since RC QPs complete in posting order, observing a
// checkpoint CQE implies every preceding WR is done — ceil(n/cqDrain)
// wakeups instead of n. doorbell/cqDrain values below 1 mean 1, which
// degenerates to per-message post-and-wait. Returns the final CQE.
func (qp *QP) PostAndWait(p *sim.Proc, wrs []WR, doorbell, cqDrain int) CQE {
	n := len(wrs)
	if n == 0 {
		return CQE{}
	}
	if doorbell < 1 {
		doorbell = 1
	}
	if cqDrain < 1 {
		cqDrain = 1
	}
	checkpoints := 0
	reply := qp.getReply()
	for i := range wrs {
		if (i+1)%cqDrain == 0 || i == n-1 {
			wrs[i].reply = reply
			checkpoints++
		} else {
			wrs[i].silent = true
		}
	}
	for off := 0; off < n; off += doorbell {
		end := off + doorbell
		if end > n {
			end = n
		}
		qp.PostMany(p, wrs[off:end])
	}
	var last CQE
	for i := 0; i < checkpoints; i++ {
		last = reply.Get(p)
	}
	qp.putReply(reply)
	return last
}

// DrainCQ moves up to budget pending completions into out without blocking
// and returns the number drained: one wakeup absorbs a whole burst of CQEs
// instead of polling once per completion. Completions appear in posting
// order, as the RC completion model guarantees.
func (qp *QP) DrainCQ(budget int, out []CQE) int {
	n := 0
	for n < budget && n < len(out) {
		cqe, ok := qp.cq.TryGet()
		if !ok {
			break
		}
		out[n] = cqe
		n++
	}
	return n
}

// CQ returns the completion queue. Callers typically Get in a loop or after
// a batch of Posts.
func (qp *QP) CQ() *sim.Chan[CQE] { return qp.cq }

// Write performs a blocking one-sided RDMA WRITE.
func (qp *QP) Write(p *sim.Proc, region *memdev.Region, off int, data []byte) CQE {
	return qp.WriteNotify(p, region, off, data, nil)
}

// WriteNotify performs a blocking one-sided RDMA WRITE like Write,
// additionally invoking onDeliver (when non-nil) at the simulated instant
// the data lands in the target region, before the completion returns.
func (qp *QP) WriteNotify(p *sim.Proc, region *memdev.Region, off int, data []byte, onDeliver func(at sim.Time)) CQE {
	reply := qp.getReply()
	qp.Post(p, WR{Op: OpWrite, Region: region, Offset: off, Data: data, OnDeliver: onDeliver, reply: reply})
	cqe := reply.Get(p)
	qp.putReply(reply)
	return cqe
}

// Read performs a blocking one-sided RDMA READ of n bytes.
func (qp *QP) Read(p *sim.Proc, region *memdev.Region, off, n int) []byte {
	return qp.ReadCQE(p, region, off, n).Data
}

// ReadCQE performs a blocking one-sided RDMA READ like Read but returns the
// full completion. CQE.At is the wire instant the memory snapshot was taken
// at — under transport retries (fault plan go-back-N) completions are
// delivered in posting order while snapshots land in wire order, so a caller
// comparing successive reads of shared counters must order them by At, not by
// delivery.
func (qp *QP) ReadCQE(p *sim.Proc, region *memdev.Region, off, n int) CQE {
	reply := qp.getReply()
	qp.Post(p, WR{Op: OpRead, Region: region, Offset: off, Len: n, reply: reply})
	cqe := reply.Get(p)
	qp.putReply(reply)
	return cqe
}

// Barrier performs the blocking RDMA-read write barrier of §5.1, forcing
// earlier writes to the region to become visible before returning. Its cost
// is a full read round trip (issue + engine + PCIe RTT, ~2.5 µs); together
// with the separate doorbell write it forces (coalescing is impossible, so a
// message needs three transactions instead of one) the total overhead comes
// to the ~5 µs per message the paper measures.
func (qp *QP) Barrier(p *sim.Proc, region *memdev.Region) {
	reply := qp.getReply()
	qp.Post(p, WR{Op: OpBarrier, Region: region, reply: reply})
	reply.Get(p)
	qp.putReply(reply)
}

// ---------------------------------------------------------------------------
// Task-form (continuation-passing) posting API. Each method performs the
// exact same sequence of scheduler operations as its Proc counterpart, so a
// caller ported from one substrate to the other produces byte-identical
// virtual-time results.

// PostT is Post for run-to-completion tasks: k runs once the WR has entered
// the send queue (after the CPU-side issue cost, unless hardware driven).
func (qp *QP) PostT(t *sim.Task, wr WR, k func()) {
	if qp.hw {
		qp.posted++
		if qp.sq.PutT(t, wr, k) {
			k()
		}
		return
	}
	t.Sleep(qp.engine.params.RDMAIssue, func() {
		qp.posted++
		if qp.sq.PutT(t, wr, k) {
			k()
		}
	})
}

// PostManyT is PostMany for tasks: one issue cost for the whole group, then
// the WRs enter the send queue in order; k runs when all are enqueued.
func (qp *QP) PostManyT(t *sim.Task, wrs []WR, k func()) {
	if len(wrs) == 0 {
		k()
		return
	}
	if qp.hw {
		qp.postAllT(t, wrs, k)
		return
	}
	t.Sleep(qp.engine.params.RDMAIssue, func() { qp.postAllT(t, wrs, k) })
}

// postAllT enqueues wrs in order. Unbounded send queues (the common case)
// accept every WR inline; a bounded queue at capacity parks the task and the
// chain resumes where it stopped.
func (qp *QP) postAllT(t *sim.Task, wrs []WR, k func()) {
	for i := range wrs {
		qp.posted++
		if qp.sq.TryPut(wrs[i]) {
			continue
		}
		rest := wrs[i+1:]
		qp.sq.PutT(t, wrs[i], func() { qp.postAllT(t, rest, k) })
		return
	}
	k()
}

// PostAndWaitT is PostAndWait for tasks: wrs post in doorbell groups with
// checkpointed completions, and k runs with the final CQE once the last
// checkpoint lands.
func (qp *QP) PostAndWaitT(t *sim.Task, wrs []WR, doorbell, cqDrain int, k func(CQE)) {
	n := len(wrs)
	if n == 0 {
		k(CQE{})
		return
	}
	if doorbell < 1 {
		doorbell = 1
	}
	if cqDrain < 1 {
		cqDrain = 1
	}
	checkpoints := 0
	reply := qp.getReply()
	for i := range wrs {
		if (i+1)%cqDrain == 0 || i == n-1 {
			wrs[i].reply = reply
			checkpoints++
		} else {
			wrs[i].silent = true
		}
	}
	var postGroup func(off int)
	var collect func(remaining int, last CQE)
	postGroup = func(off int) {
		if off >= n {
			collect(checkpoints, CQE{})
			return
		}
		end := off + doorbell
		if end > n {
			end = n
		}
		qp.PostManyT(t, wrs[off:end], func() { postGroup(end) })
	}
	collect = func(remaining int, last CQE) {
		for remaining > 0 {
			rem := remaining
			cqe, ok := reply.GetT(t, func(c CQE) { collect(rem-1, c) })
			if !ok {
				return
			}
			last = cqe
			remaining--
		}
		qp.putReply(reply)
		k(last)
	}
	postGroup(0)
}

// WriteT performs a one-sided RDMA WRITE from a task; k runs with the CQE.
func (qp *QP) WriteT(t *sim.Task, region *memdev.Region, off int, data []byte, k func(CQE)) {
	qp.WriteNotifyT(t, region, off, data, nil, k)
}

// WriteNotifyT is WriteNotify for tasks: onDeliver (when non-nil) fires at
// the instant the data lands; k runs with the completion.
func (qp *QP) WriteNotifyT(t *sim.Task, region *memdev.Region, off int, data []byte, onDeliver func(at sim.Time), k func(CQE)) {
	reply := qp.getReply()
	qp.PostT(t, WR{Op: OpWrite, Region: region, Offset: off, Data: data, OnDeliver: onDeliver, reply: reply}, func() {
		if cqe, ok := reply.GetT(t, func(c CQE) {
			qp.putReply(reply)
			k(c)
		}); ok {
			qp.putReply(reply)
			k(cqe)
		}
	})
}

// ReadT performs a one-sided RDMA READ of n bytes from a task; k runs with
// the read bytes.
func (qp *QP) ReadT(t *sim.Task, region *memdev.Region, off, n int, k func([]byte)) {
	qp.ReadCQET(t, region, off, n, func(cqe CQE) { k(cqe.Data) })
}

// ReadCQET is ReadCQE for tasks: k runs with the full completion, whose At
// field carries the snapshot instant (see ReadCQE).
func (qp *QP) ReadCQET(t *sim.Task, region *memdev.Region, off, n int, k func(CQE)) {
	reply := qp.getReply()
	qp.PostT(t, WR{Op: OpRead, Region: region, Offset: off, Len: n, reply: reply}, func() {
		if cqe, ok := reply.GetT(t, func(c CQE) {
			qp.putReply(reply)
			k(c)
		}); ok {
			qp.putReply(reply)
			k(cqe)
		}
	})
}

// BarrierT is Barrier for tasks: k runs once earlier writes to the region
// are forced visible.
func (qp *QP) BarrierT(t *sim.Task, region *memdev.Region, k func()) {
	reply := qp.getReply()
	qp.PostT(t, WR{Op: OpBarrier, Region: region, reply: reply}, func() {
		if _, ok := reply.GetT(t, func(CQE) {
			qp.putReply(reply)
			k()
		}); ok {
			qp.putReply(reply)
			k()
		}
	})
}

// AddCredits provisions n UC receive credits (the NICA helper thread's ring
// refill, §5.2). Panics on RC QPs, which need no credits.
func (qp *QP) AddCredits(n int) {
	if qp.kind != UC {
		panic("rdma: credits only apply to UC QPs")
	}
	qp.credits += n
}

// Credits reports remaining UC receive credits.
func (qp *QP) Credits() int { return qp.credits }

// Dropped reports UC writes discarded for lack of credits.
func (qp *QP) Dropped() uint64 { return qp.dropped }

// Stats reports posted and completed WR counts.
func (qp *QP) Stats() (posted, completed uint64) { return qp.posted, qp.complete }

// Target returns the device at the remote end of the QP.
func (qp *QP) Target() *fabric.Device { return qp.target }

// Remote reports whether the QP crosses the network.
func (qp *QP) Remote() bool { return qp.remote > 0 }
