package rdma

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"lynx/internal/fabric"
	"lynx/internal/memdev"
	"lynx/internal/model"
	"lynx/internal/sim"
)

type rig struct {
	s      *sim.Sim
	params model.Params
	fab    *fabric.Fabric
	nic    *fabric.Device
	gpu    *fabric.Device
	eng    *Engine
}

func newRig(relaxed bool) *rig {
	s := sim.New(sim.Config{Seed: 3})
	p := model.Default()
	f := fabric.New(s)
	cfg := memdev.Config{}
	if relaxed {
		cfg = memdev.Config{Relaxed: true, MaxSkew: 10 * time.Microsecond}
	}
	gpuMem := memdev.NewMemory(s, "gpu0", 1<<22, true, cfg)
	nic := f.AddDevice("nic", nil)
	gpu := f.AddDevice("gpu0", gpuMem)
	f.Connect(nic, gpu, p.PCIeLatency, p.PCIeBandwidth)
	return &rig{s: s, params: p, fab: f, nic: nic, gpu: gpu, eng: NewEngine(s, &p, f, nic)}
}

func TestWriteRead(t *testing.T) {
	r := newRig(false)
	region := r.gpu.Mem.MustAlloc("ring", 4096)
	qp := r.eng.CreateQP(r.gpu, QPConfig{Kind: RC})
	r.s.Spawn("snic", func(p *sim.Proc) {
		qp.Write(p, region, 64, []byte("lynx"))
		if got := qp.Read(p, region, 64, 4); string(got) != "lynx" {
			t.Errorf("read back %q", got)
		}
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	posted, completed := qp.Stats()
	if posted != 2 || completed != 2 {
		t.Fatalf("posted=%d completed=%d", posted, completed)
	}
}

func TestQPRequiresBARCapableTarget(t *testing.T) {
	s := sim.New(sim.Config{})
	p := model.Default()
	f := fabric.New(s)
	noBar := memdev.NewMemory(s, "acc", 1<<20, false, memdev.Config{})
	nic := f.AddDevice("nic", nil)
	acc := f.AddDevice("acc", noBar)
	f.Connect(nic, acc, p.PCIeLatency, p.PCIeBandwidth)
	eng := NewEngine(s, &p, f, nic)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: §4.4 requires BAR-exposable memory")
		}
	}()
	eng.CreateQP(acc, QPConfig{Kind: RC})
}

func TestWriteLatencyNearRDMAIssuePlusPCIe(t *testing.T) {
	r := newRig(false)
	region := r.gpu.Mem.MustAlloc("ring", 4096)
	qp := r.eng.CreateQP(r.gpu, QPConfig{Kind: RC})
	var lat time.Duration
	r.s.Spawn("snic", func(p *sim.Proc) {
		start := p.Now()
		qp.Write(p, region, 0, make([]byte, 64))
		lat = p.Now().Sub(start)
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	// Issue (<1µs) + engine + PCIe: should be ~2-3 µs, far below the
	// 7.5 µs cudaMemcpyAsync setup — the Fig. 5 result.
	if lat < time.Microsecond || lat > 4*time.Microsecond {
		t.Fatalf("RDMA write latency %v, want ~2-3µs", lat)
	}
	if lat >= r.params.CudaMemcpyAsyncSetup {
		t.Fatalf("RDMA (%v) must beat cudaMemcpyAsync setup (%v)", lat, r.params.CudaMemcpyAsyncSetup)
	}
}

func TestRemoteQPPenalty(t *testing.T) {
	r := newRig(false)
	region := r.gpu.Mem.MustAlloc("ring", 4096)
	local := r.eng.CreateQP(r.gpu, QPConfig{Kind: RC})
	remote := r.eng.CreateQP(r.gpu, QPConfig{Kind: RC, Remote: true})
	if local.Remote() || !remote.Remote() {
		t.Fatal("Remote flags wrong")
	}
	var localLat, remoteLat time.Duration
	r.s.Spawn("snic", func(p *sim.Proc) {
		start := p.Now()
		local.Write(p, region, 0, make([]byte, 64))
		localLat = p.Now().Sub(start)
		start = p.Now()
		remote.Write(p, region, 0, make([]byte, 64))
		remoteLat = p.Now().Sub(start)
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	gap := remoteLat - localLat
	// One extra network hop per posted write (~1.5 µs); the full §6.3 8 µs
	// shows up end-to-end across the ~5 remote operations per message.
	if gap < time.Microsecond || gap > 2500*time.Nanosecond {
		t.Fatalf("remote write penalty %v, want ~1.5µs", gap)
	}
}

func TestUCCreditsAndDrops(t *testing.T) {
	r := newRig(false)
	region := r.gpu.Mem.MustAlloc("ring", 4096)
	qp := r.eng.CreateQP(r.gpu, QPConfig{Kind: UC})
	qp.AddCredits(2)
	var results []bool
	r.s.Spawn("snic", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			cqe := qp.Write(p, region, i*8, []byte{byte(i + 1)})
			results = append(results, cqe.Dropped)
		}
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	want := []bool{false, false, true, true}
	for i := range want {
		if results[i] != want[i] {
			t.Fatalf("drop pattern %v, want %v", results, want)
		}
	}
	if qp.Dropped() != 2 || qp.Credits() != 0 {
		t.Fatalf("dropped=%d credits=%d", qp.Dropped(), qp.Credits())
	}
	// After a refill (the NICA helper thread), writes land again.
	qp.AddCredits(1)
	r2 := region.ReadLocal(0, 1)
	if r2[0] != 1 {
		t.Fatalf("first write payload lost: %v", r2)
	}
}

func TestRCCreditPanics(t *testing.T) {
	r := newRig(false)
	r.gpu.Mem.MustAlloc("ring", 64)
	qp := r.eng.CreateQP(r.gpu, QPConfig{Kind: RC})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic adding credits to RC QP")
		}
	}()
	qp.AddCredits(1)
}

func TestBarrierFlushesRelaxedWrites(t *testing.T) {
	r := newRig(true)
	region := r.gpu.Mem.MustAlloc("ring", 4096)
	qp := r.eng.CreateQP(r.gpu, QPConfig{Kind: RC})
	var barLat time.Duration
	r.s.Spawn("snic", func(p *sim.Proc) {
		qp.Write(p, region, 0, []byte("payload!"))
		start := p.Now()
		qp.Barrier(p, region)
		barLat = p.Now().Sub(start)
		if got := region.ReadLocal(0, 8); string(got) != "payload!" {
			t.Errorf("payload invisible after barrier: %q", got)
		}
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	// The barrier stalls its issuing context for most of the §5.1 5 µs
	// per-message workaround cost (the remainder is the extra doorbell
	// write, accounted at the mqueue layer).
	if barLat < 3500*time.Nanosecond || barLat > 5500*time.Nanosecond {
		t.Fatalf("barrier latency %v, want ~4.4µs", barLat)
	}
}

// Property: completions arrive in posting order with matching IDs and a
// completion for every post (RC reliability), for any op mix.
func TestRCOrderedCompletionProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		if len(ops) == 0 {
			return true
		}
		if len(ops) > 64 {
			ops = ops[:64]
		}
		r := newRig(false)
		region := r.gpu.Mem.MustAlloc("ring", 65536)
		qp := r.eng.CreateQP(r.gpu, QPConfig{Kind: RC})
		okCh := make(chan bool, 1)
		r.s.Spawn("snic", func(p *sim.Proc) {
			for i, isWrite := range ops {
				if isWrite {
					qp.Post(p, WR{Op: OpWrite, Region: region, Offset: i * 8, Data: []byte{byte(i)}, ID: uint64(i)})
				} else {
					qp.Post(p, WR{Op: OpRead, Region: region, Offset: i * 8, Len: 1, ID: uint64(i)})
				}
			}
			good := true
			for i := range ops {
				cqe := qp.CQ().Get(p)
				if cqe.ID != uint64(i) {
					good = false
				}
			}
			okCh <- good
		})
		r.s.RunUntil(sim.Time(time.Second))
		r.s.Shutdown()
		select {
		case ok := <-okCh:
			return ok
		default:
			return false
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEnginePipelineSharedAcrossQPs(t *testing.T) {
	r := newRig(false)
	regionA := r.gpu.Mem.MustAlloc("a", 4096)
	regionB := r.gpu.Mem.MustAlloc("b", 4096)
	qpA := r.eng.CreateQP(r.gpu, QPConfig{Kind: RC})
	qpB := r.eng.CreateQP(r.gpu, QPConfig{Kind: RC})
	var aDone, bDone sim.Time
	r.s.Spawn("a", func(p *sim.Proc) {
		qpA.Write(p, regionA, 0, make([]byte, 4096))
		aDone = p.Now()
	})
	r.s.Spawn("b", func(p *sim.Proc) {
		qpB.Write(p, regionB, 0, make([]byte, 4096))
		bDone = p.Now()
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	if aDone == 0 || bDone == 0 {
		t.Fatal("writes did not finish")
	}
	if aDone == bDone {
		t.Fatal("engine pipeline should serialize concurrent WRs from different QPs")
	}
	if r.eng.Ops() != 2 {
		t.Fatalf("engine ops = %d", r.eng.Ops())
	}
}

func TestReadBackMatchesWrite(t *testing.T) {
	r := newRig(false)
	region := r.gpu.Mem.MustAlloc("ring", 1<<16)
	qp := r.eng.CreateQP(r.gpu, QPConfig{Kind: RC})
	payload := make([]byte, 1400)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	r.s.Spawn("snic", func(p *sim.Proc) {
		qp.Write(p, region, 512, payload)
		got := qp.Read(p, region, 512, len(payload))
		if !bytes.Equal(got, payload) {
			t.Error("payload mismatch after RDMA round trip")
		}
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
}

// PostMany + DrainCQ: a burst posted under one doorbell completes in posting
// order, and one DrainCQ wakeup absorbs the whole burst (budget permitting)
// instead of one poll per CQE.
func TestPostManyDrainCQOrdering(t *testing.T) {
	r := newRig(false)
	region := r.gpu.Mem.MustAlloc("ring", 4096)
	qp := r.eng.CreateQP(r.gpu, QPConfig{Kind: RC})
	const n = 12
	r.s.Spawn("snic", func(p *sim.Proc) {
		wrs := make([]WR, n)
		for i := range wrs {
			wrs[i] = WR{Op: OpWrite, Region: region, Offset: i * 8, Data: []byte{byte(i)}, ID: uint64(100 + i)}
		}
		issueStart := p.Now()
		qp.PostMany(p, wrs)
		if issue := p.Now().Sub(issueStart); issue > r.params.RDMAIssue {
			t.Errorf("PostMany charged %v for %d WRs, want one issue cost (%v)", issue, n, r.params.RDMAIssue)
		}
		p.Sleep(time.Millisecond) // let every completion land
		out := make([]CQE, n)
		if got := qp.DrainCQ(5, out); got != 5 {
			t.Errorf("DrainCQ budget 5 drained %d", got)
		}
		if got := qp.DrainCQ(n, out[5:]); got != n-5 {
			t.Errorf("second DrainCQ drained %d, want %d", got, n-5)
		}
		for i := range out {
			if out[i].ID != uint64(100+i) {
				t.Fatalf("completion %d has ID %d, want %d (posting order)", i, out[i].ID, 100+i)
			}
		}
		if got := qp.DrainCQ(1, out[:1]); got != 0 {
			t.Errorf("CQ not empty after draining all %d completions", n)
		}
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	if posted, completed := qp.Stats(); posted != n || completed != n {
		t.Fatalf("posted=%d completed=%d, want %d each", posted, completed, n)
	}
}

// PostAndWait suppresses signaling on non-checkpoint WQEs: a batch of n
// writes surfaces only its checkpoint completions to the poster and leaks
// nothing into the shared CQ.
func TestPostAndWaitUnsignaledNoCQLeak(t *testing.T) {
	r := newRig(false)
	region := r.gpu.Mem.MustAlloc("ring", 4096)
	qp := r.eng.CreateQP(r.gpu, QPConfig{Kind: RC})
	const n = 10
	r.s.Spawn("snic", func(p *sim.Proc) {
		wrs := make([]WR, n)
		for i := range wrs {
			wrs[i] = WR{Op: OpWrite, Region: region, Offset: i * 8, Data: []byte{byte(i)}, ID: uint64(i)}
		}
		last := qp.PostAndWait(p, wrs, 3, 4)
		if last.ID != n-1 {
			t.Errorf("PostAndWait returned CQE ID %d, want %d (the batch's last WR)", last.ID, n-1)
		}
		// All data must be visible once the final checkpoint completes.
		for i := 0; i < n; i++ {
			if got := region.ReadLocal(i*8, 1); got[0] != byte(i) {
				t.Errorf("slot %d holds %d after checkpoint completion", i, got[0])
			}
		}
		var scratch [1]CQE
		if leaked := qp.DrainCQ(1, scratch[:]); leaked != 0 {
			t.Errorf("unsignaled WQE leaked a CQE into the shared CQ: %+v", scratch[0])
		}
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	if posted, completed := qp.Stats(); posted != n || completed != n {
		t.Fatalf("posted=%d completed=%d, want %d each", posted, completed, n)
	}
}
