// Package metrics provides the measurement primitives used by every
// experiment in the repository: log-bucketed latency histograms with
// percentile queries, throughput counters, and small series helpers for
// emitting paper-style tables.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"
)

// Histogram is a log-linear latency histogram in the spirit of HdrHistogram:
// values are bucketed with bounded relative error (~= 1/subBuckets), so
// percentile queries are accurate to a few percent across nanoseconds..hours
// while using constant memory.
type Histogram struct {
	counts [nBuckets * subBuckets]uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

const (
	subBucketBits = 5 // 32 sub-buckets per power of two: <= ~3% relative error
	subBuckets    = 1 << subBucketBits
	nBuckets      = 64 - subBucketBits
)

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// index maps a value to its bucket. Values below subBuckets get exact
// buckets; above that, the top subBucketBits+1 significant bits select a
// bucket, bounding relative error by 1/subBuckets.
func index(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	k := bits.Len64(uint64(v))   // number of significant bits, >= subBucketBits+1
	exp := k - subBucketBits - 1 // shift so the mantissa has subBucketBits+1 bits
	sub := int(v >> uint(exp))   // in [subBuckets, 2*subBuckets)
	return (exp+1)*subBuckets + (sub - subBuckets)
}

// bucketMid returns a representative value for bucket i (its upper edge).
func bucketMid(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := (i - subBuckets) / subBuckets
	sub := int64(subBuckets + (i-subBuckets)%subBuckets)
	return (sub+1)<<uint(exp) - 1
}

// Record adds one observation of duration d.
func (h *Histogram) Record(d time.Duration) { h.RecordN(d, 1) }

// RecordN adds n observations of duration d.
func (h *Histogram) RecordN(d time.Duration, n uint64) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[index(v)] += n
	h.total += n
	h.sum += float64(v) * float64(n)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the average of recorded values.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total))
}

// Sum returns the total of all recorded values (exact, not re-bucketed).
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum) }

// Min returns the smallest recorded value (0 if empty).
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded value.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the value at quantile q in [0,1], e.g. 0.99 for p99.
// The answer carries the histogram's bucket resolution (~3% relative error),
// except at the extremes: q<=0 is exactly Min and q>=1 exactly Max, so the
// bucket upper-edge representative can never push an extreme quantile past
// the recorded range.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Median is Quantile(0.5).
func (h *Histogram) Median() time.Duration { return h.Quantile(0.5) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// P90 is Quantile(0.90).
func (h *Histogram) P90() time.Duration { return h.Quantile(0.90) }

// P999 is Quantile(0.999), the far-tail quantile the attribution reports use.
func (h *Histogram) P999() time.Duration { return h.Quantile(0.999) }

// Merge adds all observations from o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.total > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	*h = Histogram{min: math.MaxInt64}
}

// CDF returns (value, cumulative fraction) points for plotting latency CDFs,
// one point per non-empty bucket.
func (h *Histogram) CDF() []CDFPoint {
	var pts []CDFPoint
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		pts = append(pts, CDFPoint{
			Value:    time.Duration(bucketMid(i)),
			Fraction: float64(seen) / float64(h.total),
		})
	}
	return pts
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Value    time.Duration
	Fraction float64
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	// Value is the bucket's representative value (its upper edge).
	Value time.Duration
	// Count is the number of observations in the bucket.
	Count uint64
}

// Buckets returns the non-empty buckets in ascending value order, for
// structured dumps that would otherwise re-derive counts from CDF().
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		out = append(out, Bucket{Value: time.Duration(bucketMid(i)), Count: c})
	}
	return out
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "histogram{empty}"
	}
	return fmt.Sprintf("histogram{n=%d mean=%v p50=%v p90=%v p99=%v max=%v}",
		h.total, h.Mean(), h.Median(), h.P90(), h.P99(), h.Max())
}

// ---------------------------------------------------------------------------

// Counter counts events over a virtual-time window to derive rates.
type Counter struct {
	n     uint64
	bytes uint64
}

// Inc adds one event of the given payload size.
func (c *Counter) Inc(bytes int) {
	c.n++
	c.bytes += uint64(bytes)
}

// Add adds n events totalling the given bytes.
func (c *Counter) Add(n, bytes uint64) {
	c.n += n
	c.bytes += bytes
}

// Count reports the number of events.
func (c *Counter) Count() uint64 { return c.n }

// Bytes reports the accumulated payload bytes.
func (c *Counter) Bytes() uint64 { return c.bytes }

// Rate returns events/second over elapsed.
func (c *Counter) Rate(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.n) / elapsed.Seconds()
}

// BitRate returns payload bits/second over elapsed.
func (c *Counter) BitRate(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.bytes) * 8 / elapsed.Seconds()
}

// Reset zeroes the counter.
func (c *Counter) Reset() { *c = Counter{} }

// ---------------------------------------------------------------------------

// Exact keeps every sample for tests that need exact quantiles to validate
// Histogram accuracy. Not for high-volume use.
type Exact struct {
	vals   []time.Duration
	sorted bool
}

// Record appends one sample.
func (e *Exact) Record(d time.Duration) {
	e.vals = append(e.vals, d)
	e.sorted = false
}

// Quantile returns the exact q-quantile (nearest-rank).
func (e *Exact) Quantile(q float64) time.Duration {
	if len(e.vals) == 0 {
		return 0
	}
	if !e.sorted {
		sort.Slice(e.vals, func(i, j int) bool { return e.vals[i] < e.vals[j] })
		e.sorted = true
	}
	rank := int(math.Ceil(q*float64(len(e.vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(e.vals) {
		rank = len(e.vals) - 1
	}
	return e.vals[rank]
}

// Count reports the number of samples.
func (e *Exact) Count() int { return len(e.vals) }
