package metrics

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Mean(), 50500*time.Nanosecond; absDiff(got, want) > want/20 {
		t.Fatalf("mean = %v, want ~%v", got, want)
	}
	if h.Min() != time.Microsecond {
		t.Fatalf("min = %v", h.Min())
	}
	if h.Max() != 100*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
	p50 := h.Median()
	if absDiff(p50, 50*time.Microsecond) > 5*time.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
}

func absDiff(a, b time.Duration) time.Duration {
	if a > b {
		return a - b
	}
	return b - a
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-time.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative not clamped: %v", h)
	}
}

// Property: histogram quantiles stay within ~4% relative error (plus one
// bucket of absolute slack) of exact quantiles for arbitrary sample sets.
func TestHistogramQuantileAccuracyProperty(t *testing.T) {
	prop := func(raw []uint32, qseed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		e := &Exact{}
		for _, r := range raw {
			d := time.Duration(r)
			h.Record(d)
			e.Record(d)
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, float64(qseed%101) / 100} {
			got := float64(h.Quantile(q))
			want := float64(e.Quantile(q))
			tol := want*0.04 + 2
			if math.Abs(got-want) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileLargeValues(t *testing.T) {
	h := NewHistogram()
	e := &Exact{}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 10000; i++ {
		d := time.Duration(rng.Int64N(int64(10 * time.Second)))
		h.Record(d)
		e.Record(d)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got, want := h.Quantile(q), e.Quantile(q)
		if absDiff(got, want) > want/20 {
			t.Errorf("q=%v: got %v want %v", q, got, want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 50; i++ {
		a.Record(time.Millisecond)
		b.Record(3 * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count %d", a.Count())
	}
	if a.Min() != time.Millisecond || absDiff(a.Max(), 3*time.Millisecond) > 100*time.Microsecond {
		t.Fatalf("merged min/max %v/%v", a.Min(), a.Max())
	}
	if m := a.Mean(); absDiff(m, 2*time.Millisecond) > 100*time.Microsecond {
		t.Fatalf("merged mean %v", m)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 90; i++ {
		h.Record(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Millisecond)
	}
	cdf := h.CDF()
	if len(cdf) != 2 {
		t.Fatalf("CDF has %d points, want 2", len(cdf))
	}
	if math.Abs(cdf[0].Fraction-0.9) > 1e-9 || math.Abs(cdf[1].Fraction-1.0) > 1e-9 {
		t.Fatalf("fractions %v %v", cdf[0].Fraction, cdf[1].Fraction)
	}
	if cdf[0].Value >= cdf[1].Value {
		t.Fatal("CDF values not increasing")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Record(time.Millisecond)
	if h.Min() != time.Millisecond {
		t.Fatal("min not tracked after reset")
	}
}

func TestCounterRates(t *testing.T) {
	var c Counter
	for i := 0; i < 1000; i++ {
		c.Inc(64)
	}
	if c.Count() != 1000 || c.Bytes() != 64000 {
		t.Fatalf("count=%d bytes=%d", c.Count(), c.Bytes())
	}
	if r := c.Rate(time.Second); r != 1000 {
		t.Fatalf("rate %v", r)
	}
	if r := c.Rate(100 * time.Millisecond); r != 10000 {
		t.Fatalf("rate %v", r)
	}
	if br := c.BitRate(time.Second); br != 512000 {
		t.Fatalf("bitrate %v", br)
	}
	if c.Rate(0) != 0 {
		t.Fatal("zero elapsed should give 0 rate")
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestExactQuantile(t *testing.T) {
	e := &Exact{}
	for i := 100; i >= 1; i-- { // reverse order: exercises the sort
		e.Record(time.Duration(i))
	}
	if e.Quantile(0.5) != 50 {
		t.Fatalf("p50 = %v", e.Quantile(0.5))
	}
	if e.Quantile(1.0) != 100 {
		t.Fatalf("p100 = %v", e.Quantile(1.0))
	}
	if e.Quantile(0.0) != 1 {
		t.Fatalf("p0 = %v", e.Quantile(0.0))
	}
	if e.Count() != 100 {
		t.Fatal("count")
	}
}

func TestIndexMonotonic(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 20, 1<<40 + 12345, math.MaxInt64 / 2} {
		i := index(v)
		if i < prev {
			t.Fatalf("index not monotonic at %d", v)
		}
		prev = i
		if m := bucketMid(i); m < v/2 || (v > 64 && float64(m) > float64(v)*1.1) {
			t.Fatalf("bucketMid(%d)=%d not near %d", i, m, v)
		}
	}
}

func TestPercentileShorthandsAndString(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if p90 := h.P90(); absDiff(p90, 900*time.Microsecond) > 40*time.Microsecond {
		t.Fatalf("p90 = %v", p90)
	}
	if p99 := h.P99(); absDiff(p99, 990*time.Microsecond) > 40*time.Microsecond {
		t.Fatalf("p99 = %v", p99)
	}
	s := h.String()
	if !strings.Contains(s, "n=1000") || !strings.Contains(s, "p99=") {
		t.Fatalf("string %q", s)
	}
	if NewHistogram().String() != "histogram{empty}" {
		t.Fatal("empty string form")
	}
	if NewHistogram().Min() != 0 {
		t.Fatal("empty min")
	}
}

func TestCounterAddAndDegenerateBitRate(t *testing.T) {
	var c Counter
	c.Add(5, 320)
	if c.Count() != 5 || c.Bytes() != 320 {
		t.Fatal("Add wrong")
	}
	if c.BitRate(0) != 0 {
		t.Fatal("zero-elapsed bitrate")
	}
}
