package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSeriesBound(t *testing.T) {
	s := NewSeries("util", 4)
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*time.Microsecond, float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", s.Len())
	}
	if s.Total() != 10 || s.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d, want 10/6", s.Total(), s.Dropped())
	}
	pts := s.Points()
	for i, pt := range pts {
		if want := float64(6 + i); pt.V != want {
			t.Fatalf("point %d = %v, want %v (most recent, chronological)", i, pt.V, want)
		}
	}
	if last := s.Last(); last.V != 9 {
		t.Fatalf("last = %v, want 9", last.V)
	}
}

func TestSeriesAddNoAlloc(t *testing.T) {
	s := NewSeries("util", 64)
	var i int
	if allocs := testing.AllocsPerRun(500, func() {
		i++
		s.Add(time.Duration(i), float64(i))
	}); allocs != 0 {
		t.Fatalf("Add allocated %v/op", allocs)
	}
}

func TestRegistryDumpDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.AddStats("runtime", func() []Stat {
			return []Stat{{Name: "received", Value: 12}, {Name: "dropped", Value: 1}}
		})
		r.AddStats("rdma", func() []Stat {
			return []Stat{{Name: "ops", Value: 99}}
		})
		s := r.NewSeries("snic/core-util", 8)
		s.Add(time.Microsecond, 0.5)
		s.Add(2*time.Microsecond, 0.75)
		return r
	}
	var a, b bytes.Buffer
	if err := build().Dump(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("registry dump is not deterministic")
	}

	var doc struct {
		Stats  map[string]map[string]float64   `json:"stats"`
		Series map[string][]map[string]float64 `json:"series"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if doc.Stats["runtime"]["received"] != 12 {
		t.Fatalf("runtime.received = %v, want 12", doc.Stats["runtime"]["received"])
	}
	if pts := doc.Series["snic/core-util"]; len(pts) != 2 || pts[1]["v"] != 0.75 {
		t.Fatalf("series points = %v", pts)
	}
}

func TestHistogramSumAndBuckets(t *testing.T) {
	h := NewHistogram()
	h.Record(10 * time.Microsecond)
	h.Record(20 * time.Microsecond)
	h.Record(30 * time.Microsecond)
	if got := h.Sum(); got != 60*time.Microsecond {
		t.Fatalf("sum = %v, want 60µs (exact, not bucketed)", got)
	}
	var n uint64
	for _, b := range h.Buckets() {
		if b.Count == 0 {
			t.Fatal("Buckets returned an empty bucket")
		}
		n += b.Count
	}
	if n != h.Count() {
		t.Fatalf("bucket counts total %d, want %d", n, h.Count())
	}
}
