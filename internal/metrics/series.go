// Bounded virtual-time series and the metrics registry: the sampling half of
// the observability plane. A probe process (internal/core.Monitor) snapshots
// ring occupancy and component utilization into Series at a fixed virtual
// interval; the Registry unifies those series with per-component counter
// snapshots into one structured JSON dump.
package metrics

import (
	"encoding/json"
	"io"
	"time"
)

// SeriesPoint is one sample of a Series.
type SeriesPoint struct {
	// At is the virtual time of the sample (since boot).
	At time.Duration
	// V is the sampled value.
	V float64
}

// Series is a bounded virtual-time series: a ring keeping the most recent
// capacity samples (older ones are evicted, counted in Dropped). Appends
// never allocate after construction.
type Series struct {
	name    string
	ring    []SeriesPoint
	next    int
	total   uint64
	dropped uint64
}

// NewSeries creates a series retaining the most recent capacity samples.
func NewSeries(name string, capacity int) *Series {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Series{name: name, ring: make([]SeriesPoint, 0, capacity)}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Renamed returns a view of the series under a new name, sharing the sample
// storage as of the call (a snapshot: samples added to the original after
// Renamed may not appear). Rack rollups use it to prefix node names onto
// per-node series without copying rings.
func (s *Series) Renamed(name string) *Series {
	c := *s
	c.name = name
	return &c
}

// Add appends one sample, evicting the oldest when full.
func (s *Series) Add(at time.Duration, v float64) {
	pt := SeriesPoint{At: at, V: v}
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, pt)
	} else {
		s.ring[s.next] = pt
		s.dropped++
	}
	s.next = (s.next + 1) % cap(s.ring)
	s.total++
}

// Points returns the retained samples in chronological order.
func (s *Series) Points() []SeriesPoint {
	if len(s.ring) == 0 {
		return nil
	}
	out := make([]SeriesPoint, 0, len(s.ring))
	if len(s.ring) < cap(s.ring) {
		return append(out, s.ring...)
	}
	out = append(out, s.ring[s.next:]...)
	return append(out, s.ring[:s.next]...)
}

// Len reports retained samples.
func (s *Series) Len() int { return len(s.ring) }

// Total reports samples ever added, including evicted ones.
func (s *Series) Total() uint64 { return s.total }

// Dropped reports samples evicted by the ring bound.
func (s *Series) Dropped() uint64 { return s.dropped }

// Last returns the most recent sample (zero value when empty).
func (s *Series) Last() SeriesPoint {
	if len(s.ring) == 0 {
		return SeriesPoint{}
	}
	i := s.next - 1
	if i < 0 {
		i = len(s.ring) - 1
	}
	return s.ring[i]
}

// ---------------------------------------------------------------------------

// Stat is one named counter value in a component snapshot.
type Stat struct {
	Name  string
	Value float64
}

// Registry unifies per-component stats and sampled series into one
// structured dump. Components register a snapshot function once; the dump
// calls them at dump time, so it always reflects current counters.
type Registry struct {
	stats  []statSource
	series []*Series
}

type statSource struct {
	component string
	fn        func() []Stat
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// AddStats registers a component's counter snapshot function.
func (r *Registry) AddStats(component string, fn func() []Stat) {
	if r == nil || fn == nil {
		return
	}
	r.stats = append(r.stats, statSource{component: component, fn: fn})
}

// AddSeries registers an existing series.
func (r *Registry) AddSeries(s *Series) {
	if r == nil || s == nil {
		return
	}
	r.series = append(r.series, s)
}

// NewSeries creates, registers and returns a bounded series.
func (r *Registry) NewSeries(name string, capacity int) *Series {
	s := NewSeries(name, capacity)
	r.AddSeries(s)
	return s
}

// SeriesList returns the registered series in registration order.
func (r *Registry) SeriesList() []*Series {
	if r == nil {
		return nil
	}
	return r.series
}

// ComponentStats is one component's evaluated counter snapshot.
type ComponentStats struct {
	Component string
	Stats     []Stat
}

// StatsSnapshot evaluates every registered snapshot function and returns the
// results in registration order. Rack rollups use it to freeze and re-home a
// node's counters under a prefixed component name.
func (r *Registry) StatsSnapshot() []ComponentStats {
	if r == nil {
		return nil
	}
	out := make([]ComponentStats, 0, len(r.stats))
	for _, src := range r.stats {
		out = append(out, ComponentStats{Component: src.component, Stats: src.fn()})
	}
	return out
}

// jsonPoint is the wire form of one sample (microseconds keep the dump
// aligned with Chrome trace timestamps).
type jsonPoint struct {
	TUs float64 `json:"t_us"`
	V   float64 `json:"v"`
}

// Dump writes the registry as JSON: {"stats": {component: {name: value}},
// "series": {name: [{t_us, v}]}}. Map keys are sorted by encoding/json, so
// the output is deterministic for deterministic inputs.
func (r *Registry) Dump(w io.Writer) error {
	stats := map[string]map[string]float64{}
	series := map[string][]jsonPoint{}
	if r != nil {
		for _, src := range r.stats {
			m := stats[src.component]
			if m == nil {
				m = map[string]float64{}
				stats[src.component] = m
			}
			for _, st := range src.fn() {
				m[st.Name] = st.Value
			}
		}
		for _, s := range r.series {
			pts := make([]jsonPoint, 0, s.Len())
			for _, p := range s.Points() {
				pts = append(pts, jsonPoint{TUs: float64(p.At) / 1e3, V: p.V})
			}
			series[s.Name()] = pts
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		Stats  map[string]map[string]float64 `json:"stats"`
		Series map[string][]jsonPoint        `json:"series"`
	}{Stats: stats, Series: series})
}
