package metrics

import (
	"testing"
	"time"
)

// TestQuantileEmpty: every quantile of an empty histogram is zero, including
// the out-of-range arguments and the percentile shorthands.
func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{-1, 0, 0.5, 0.999, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.P999() != 0 {
		t.Errorf("empty P999 = %v, want 0", h.P999())
	}
}

// TestQuantileSingleValue: with every sample in one bucket, all quantiles
// collapse to that sample (the bucket cannot smear the estimate past the
// recorded min/max).
func TestQuantileSingleValue(t *testing.T) {
	h := NewHistogram()
	v := 42 * time.Microsecond
	for i := 0; i < 10; i++ {
		h.Record(v)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != v {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, v)
		}
	}
}

// TestQuantileExtremes: q<=0 reports the exact minimum and q>=1 the exact
// maximum, even though both land inside wider buckets.
func TestQuantileExtremes(t *testing.T) {
	h := NewHistogram()
	lo, hi := 3*time.Microsecond, 977*time.Microsecond
	h.Record(lo)
	h.Record(hi)
	for i := 0; i < 100; i++ {
		h.Record(100 * time.Microsecond)
	}
	for _, q := range []float64{-0.5, 0} {
		if got := h.Quantile(q); got != lo {
			t.Errorf("Quantile(%v) = %v, want min %v", q, got, lo)
		}
	}
	for _, q := range []float64{1, 1.5} {
		if got := h.Quantile(q); got != hi {
			t.Errorf("Quantile(%v) = %v, want max %v", q, got, hi)
		}
	}
}

// TestQuantileMonotone: quantile estimates never decrease in q and never
// escape the [Min, Max] envelope.
func TestQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, got, prev)
		}
		if got < h.Min() || got > h.Max() {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, got, h.Min(), h.Max())
		}
		prev = got
	}
}

// TestP999 pins the tail shorthand: it sits between p99 and the maximum and
// lands near the exact 99.9th percentile of a uniform sample.
func TestP999(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	p999 := h.P999()
	if p999 < h.P99() || p999 > h.Max() {
		t.Fatalf("p999 %v outside [p99 %v, max %v]", p999, h.P99(), h.Max())
	}
	want := 9990 * time.Microsecond
	if absDiff(p999, want) > want/20 {
		t.Errorf("p999 = %v, want ~%v", p999, want)
	}
}
