// Package lenet implements the LeNet-5 convolutional network forward pass
// used by the paper's model-serving server (§6.3): 28x28 grayscale digits in,
// 10 class scores out. The network is executed for real (float32 arithmetic
// in Go standing in for the TVM-generated GPU kernels), so the simulated
// service computes genuine answers; the *time* a request occupies the GPU is
// taken from the calibrated model (LeNetServiceK40/K80).
//
// Weights are deterministic pseudo-random (the paper's accuracy is not under
// test — its serving architecture is), so every simulation run classifies
// identically.
package lenet

import (
	"fmt"
	"math"
)

// Input geometry (MNIST).
const (
	InputSize  = 28
	InputBytes = InputSize * InputSize
	NumClasses = 10
)

// Network holds the LeNet-5 parameters.
type Network struct {
	conv1W [6][5][5]float32 // 6 filters over 1 input channel
	conv1B [6]float32
	conv2W [16][6][5][5]float32
	conv2B [16]float32
	fc1W   [][]float32 // 120 x 400
	fc1B   []float32
	fc2W   [][]float32 // 84 x 120
	fc2B   []float32
	fc3W   [][]float32 // 10 x 84
	fc3B   []float32
}

// New builds a network with deterministic pseudo-random weights derived from
// seed.
func New(seed uint64) *Network {
	rng := seed ^ 0x9E3779B97F4A7C15
	if rng == 0 {
		rng = 1
	}
	next := func() float32 {
		// xorshift64*; scaled to a small symmetric range.
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		v := rng * 0x2545F4914F6CDD1D
		return (float32(v>>40)/float32(1<<24) - 0.5) * 0.25
	}
	n := &Network{}
	for f := 0; f < 6; f++ {
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				n.conv1W[f][i][j] = next()
			}
		}
		n.conv1B[f] = next()
	}
	for f := 0; f < 16; f++ {
		for c := 0; c < 6; c++ {
			for i := 0; i < 5; i++ {
				for j := 0; j < 5; j++ {
					n.conv2W[f][c][i][j] = next()
				}
			}
		}
		n.conv2B[f] = next()
	}
	mat := func(rows, cols int) ([][]float32, []float32) {
		w := make([][]float32, rows)
		for r := range w {
			w[r] = make([]float32, cols)
			for c := range w[r] {
				w[r][c] = next()
			}
		}
		b := make([]float32, rows)
		for r := range b {
			b[r] = next()
		}
		return w, b
	}
	n.fc1W, n.fc1B = mat(120, 400)
	n.fc2W, n.fc2B = mat(84, 120)
	n.fc3W, n.fc3B = mat(10, 84)
	return n
}

func relu(x float32) float32 {
	if x < 0 {
		return 0
	}
	return x
}

// Infer runs the forward pass on a 28x28 image given as InputBytes bytes
// (row-major, 0..255) and returns the 10 class scores.
func (n *Network) Infer(img []byte) ([NumClasses]float32, error) {
	var out [NumClasses]float32
	if len(img) != InputBytes {
		return out, fmt.Errorf("lenet: input is %d bytes, want %d", len(img), InputBytes)
	}
	// Normalize.
	var in [InputSize][InputSize]float32
	for i := 0; i < InputSize; i++ {
		for j := 0; j < InputSize; j++ {
			in[i][j] = float32(img[i*InputSize+j])/255*2 - 1
		}
	}
	// conv1: 5x5, pad 2, stride 1 -> 6 x 28 x 28, ReLU.
	var c1 [6][InputSize][InputSize]float32
	for f := 0; f < 6; f++ {
		for y := 0; y < InputSize; y++ {
			for x := 0; x < InputSize; x++ {
				sum := n.conv1B[f]
				for ky := 0; ky < 5; ky++ {
					for kx := 0; kx < 5; kx++ {
						iy, ix := y+ky-2, x+kx-2
						if iy < 0 || iy >= InputSize || ix < 0 || ix >= InputSize {
							continue
						}
						sum += n.conv1W[f][ky][kx] * in[iy][ix]
					}
				}
				c1[f][y][x] = relu(sum)
			}
		}
	}
	// pool1: 2x2 max -> 6 x 14 x 14.
	var p1 [6][14][14]float32
	for f := 0; f < 6; f++ {
		for y := 0; y < 14; y++ {
			for x := 0; x < 14; x++ {
				m := c1[f][2*y][2*x]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						if v := c1[f][2*y+dy][2*x+dx]; v > m {
							m = v
						}
					}
				}
				p1[f][y][x] = m
			}
		}
	}
	// conv2: 5x5, valid -> 16 x 10 x 10, ReLU.
	var c2 [16][10][10]float32
	for f := 0; f < 16; f++ {
		for y := 0; y < 10; y++ {
			for x := 0; x < 10; x++ {
				sum := n.conv2B[f]
				for c := 0; c < 6; c++ {
					for ky := 0; ky < 5; ky++ {
						for kx := 0; kx < 5; kx++ {
							sum += n.conv2W[f][c][ky][kx] * p1[c][y+ky][x+kx]
						}
					}
				}
				c2[f][y][x] = relu(sum)
			}
		}
	}
	// pool2: 2x2 max -> 16 x 5 x 5 = 400, flattened channel-major.
	flat := make([]float32, 400)
	idx := 0
	for f := 0; f < 16; f++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 5; x++ {
				m := c2[f][2*y][2*x]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						if v := c2[f][2*y+dy][2*x+dx]; v > m {
							m = v
						}
					}
				}
				flat[idx] = m
				idx++
			}
		}
	}
	// fc1 -> ReLU -> fc2 -> ReLU -> fc3.
	h1 := dense(n.fc1W, n.fc1B, flat, true)
	h2 := dense(n.fc2W, n.fc2B, h1, true)
	h3 := dense(n.fc3W, n.fc3B, h2, false)
	copy(out[:], h3)
	return out, nil
}

func dense(w [][]float32, b []float32, in []float32, act bool) []float32 {
	out := make([]float32, len(w))
	for r := range w {
		sum := b[r]
		row := w[r]
		for c, v := range in {
			sum += row[c] * v
		}
		if act {
			sum = relu(sum)
		}
		out[r] = sum
	}
	return out
}

// Classify returns the argmax class for the image.
func (n *Network) Classify(img []byte) (int, error) {
	scores, err := n.Infer(img)
	if err != nil {
		return 0, err
	}
	best, bestV := 0, float32(math.Inf(-1))
	for i, v := range scores {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best, nil
}

// ---------------------------------------------------------------------------
// Synthetic MNIST-shaped inputs

// digitFont is a 5x7 bitmap font for digits 0-9, used to render MNIST-like
// test images without shipping the dataset.
var digitFont = [10][7]uint8{
	{0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110}, // 0
	{0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110}, // 1
	{0b01110, 0b10001, 0b00001, 0b00110, 0b01000, 0b10000, 0b11111}, // 2
	{0b01110, 0b10001, 0b00001, 0b00110, 0b00001, 0b10001, 0b01110}, // 3
	{0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010}, // 4
	{0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110}, // 5
	{0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110}, // 6
	{0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000}, // 7
	{0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110}, // 8
	{0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100}, // 9
}

// RenderDigit draws digit d (0-9) as a 28x28 grayscale image, offset by
// (dx, dy) pixels for variety. Pixels are 0 or 255 with a soft border.
func RenderDigit(d, dx, dy int) []byte {
	if d < 0 || d > 9 {
		d = ((d % 10) + 10) % 10
	}
	img := make([]byte, InputBytes)
	const scale = 3 // 5x7 font -> 15x21 glyph, centered in 28x28
	baseX, baseY := (InputSize-5*scale)/2+dx, (InputSize-7*scale)/2+dy
	for row := 0; row < 7; row++ {
		bits := digitFont[d][row]
		for col := 0; col < 5; col++ {
			if bits&(1<<(4-col)) == 0 {
				continue
			}
			for sy := 0; sy < scale; sy++ {
				for sx := 0; sx < scale; sx++ {
					y, x := baseY+row*scale+sy, baseX+col*scale+sx
					if y >= 0 && y < InputSize && x >= 0 && x < InputSize {
						img[y*InputSize+x] = 255
					}
				}
			}
		}
	}
	return img
}

// ---------------------------------------------------------------------------
// Reference implementation (for equivalence testing)

// InferReference computes the forward pass with a deliberately naive,
// index-by-index implementation (bounds-checked gathers instead of the
// structured loops above). It exists so property tests can check the
// optimized path against an independent formulation.
func (n *Network) InferReference(img []byte) ([NumClasses]float32, error) {
	var out [NumClasses]float32
	if len(img) != InputBytes {
		return out, fmt.Errorf("lenet: input is %d bytes, want %d", len(img), InputBytes)
	}
	at := func(buf []float32, w, y, x int) float32 {
		if y < 0 || x < 0 || x >= w || y*w+x >= len(buf) {
			return 0
		}
		return buf[y*w+x]
	}
	in := make([]float32, InputBytes)
	for i, px := range img {
		in[i] = float32(px)/255*2 - 1
	}
	// conv1 (pad 2) + ReLU.
	c1 := make([][]float32, 6)
	for f := 0; f < 6; f++ {
		c1[f] = make([]float32, InputSize*InputSize)
		for y := 0; y < InputSize; y++ {
			for x := 0; x < InputSize; x++ {
				sum := n.conv1B[f]
				for ky := 0; ky < 5; ky++ {
					for kx := 0; kx < 5; kx++ {
						sum += n.conv1W[f][ky][kx] * at(in, InputSize, y+ky-2, x+kx-2)
					}
				}
				c1[f][y*InputSize+x] = relu(sum)
			}
		}
	}
	maxPool := func(src []float32, w int) []float32 {
		h := len(src) / w
		out := make([]float32, (w/2)*(h/2))
		for y := 0; y < h/2; y++ {
			for x := 0; x < w/2; x++ {
				m := src[(2*y)*w+2*x]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						if v := src[(2*y+dy)*w+2*x+dx]; v > m {
							m = v
						}
					}
				}
				out[y*(w/2)+x] = m
			}
		}
		return out
	}
	p1 := make([][]float32, 6)
	for f := range c1 {
		p1[f] = maxPool(c1[f], InputSize)
	}
	// conv2 (valid) + ReLU.
	c2 := make([][]float32, 16)
	for f := 0; f < 16; f++ {
		c2[f] = make([]float32, 10*10)
		for y := 0; y < 10; y++ {
			for x := 0; x < 10; x++ {
				sum := n.conv2B[f]
				for c := 0; c < 6; c++ {
					for ky := 0; ky < 5; ky++ {
						for kx := 0; kx < 5; kx++ {
							sum += n.conv2W[f][c][ky][kx] * at(p1[c], 14, y+ky, x+kx)
						}
					}
				}
				c2[f][y*10+x] = relu(sum)
			}
		}
	}
	flat := make([]float32, 0, 400)
	for f := 0; f < 16; f++ {
		flat = append(flat, maxPool(c2[f], 10)...)
	}
	h1 := dense(n.fc1W, n.fc1B, flat, true)
	h2 := dense(n.fc2W, n.fc2B, h1, true)
	h3 := dense(n.fc3W, n.fc3B, h2, false)
	copy(out[:], h3)
	return out, nil
}
