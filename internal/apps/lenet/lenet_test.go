package lenet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestInferShapeAndDeterminism(t *testing.T) {
	n := New(1)
	img := RenderDigit(3, 0, 0)
	a, err := n.Infer(img)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Infer(img)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("inference must be deterministic")
	}
	anyNonZero := false
	for _, v := range a {
		if v != 0 {
			anyNonZero = true
		}
	}
	if !anyNonZero {
		t.Fatal("all-zero scores: network is degenerate")
	}
}

func TestInferRejectsBadInput(t *testing.T) {
	n := New(1)
	if _, err := n.Infer(make([]byte, 100)); err == nil {
		t.Fatal("short input must fail")
	}
	if _, err := n.Classify(make([]byte, InputBytes+1)); err == nil {
		t.Fatal("long input must fail")
	}
}

func TestSameSeedSameNetwork(t *testing.T) {
	img := RenderDigit(7, 1, -1)
	a, _ := New(42).Infer(img)
	b, _ := New(42).Infer(img)
	if a != b {
		t.Fatal("same seed must build identical networks")
	}
	c, _ := New(43).Infer(img)
	if a == c {
		t.Fatal("different seeds should give different networks")
	}
}

func TestClassifyInRange(t *testing.T) {
	n := New(5)
	for d := 0; d < 10; d++ {
		cls, err := n.Classify(RenderDigit(d, 0, 0))
		if err != nil {
			t.Fatal(err)
		}
		if cls < 0 || cls >= NumClasses {
			t.Fatalf("class %d out of range", cls)
		}
	}
}

func TestDistinctDigitsDistinctScores(t *testing.T) {
	n := New(5)
	s0, _ := n.Infer(RenderDigit(0, 0, 0))
	s1, _ := n.Infer(RenderDigit(1, 0, 0))
	if s0 == s1 {
		t.Fatal("different images must yield different score vectors")
	}
}

func TestRenderDigit(t *testing.T) {
	img := RenderDigit(8, 0, 0)
	if len(img) != InputBytes {
		t.Fatalf("image size %d", len(img))
	}
	on := 0
	for _, px := range img {
		if px == 255 {
			on++
		} else if px != 0 {
			t.Fatal("pixels must be 0 or 255")
		}
	}
	if on < 50 || on > 400 {
		t.Fatalf("glyph coverage %d pixels, implausible", on)
	}
	// Out-of-range digits wrap instead of panicking.
	if !bytes.Equal(RenderDigit(13, 0, 0), RenderDigit(3, 0, 0)) {
		t.Fatal("digit 13 should render like 3")
	}
	if !bytes.Equal(RenderDigit(-3, 0, 0), RenderDigit(7, 0, 0)) {
		t.Fatal("digit -3 should render like 7")
	}
	// Offsets translate the glyph.
	if bytes.Equal(RenderDigit(8, 0, 0), RenderDigit(8, 3, 0)) {
		t.Fatal("offset rendering must move pixels")
	}
}

// Property: shifting a glyph within the frame keeps the output finite and
// the class within range (robustness of the numeric pipeline).
func TestInferTotalProperty(t *testing.T) {
	n := New(9)
	prop := func(d, dx, dy int8) bool {
		img := RenderDigit(int(d), int(dx)%6, int(dy)%6)
		scores, err := n.Infer(img)
		if err != nil {
			return false
		}
		for _, v := range scores {
			if v != v { // NaN
				return false
			}
			if v > 1e6 || v < -1e6 {
				return false
			}
		}
		cls, err := n.Classify(img)
		return err == nil && cls >= 0 && cls < NumClasses
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the structured forward pass matches the naive reference
// implementation exactly (same float32 operations in the same order per
// output element).
func TestInferMatchesReferenceProperty(t *testing.T) {
	n := New(77)
	prop := func(d int8, dx, dy int8, noise uint8) bool {
		img := RenderDigit(int(d), int(dx)%4, int(dy)%4)
		// Perturb some pixels for input diversity.
		for i := 0; i < int(noise); i++ {
			img[(i*131)%len(img)] ^= 0x55
		}
		a, err1 := n.Infer(img)
		b, err2 := n.InferReference(img)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			diff := a[i] - b[i]
			if diff < -1e-3 || diff > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestInferReferenceRejectsBadInput(t *testing.T) {
	if _, err := New(1).InferReference(make([]byte, 5)); err == nil {
		t.Fatal("short input must fail")
	}
}
