// Package kvstore implements the memcached-like key-value store used twice
// in the paper: as the database backend of the Face Verification server
// (§6.4) and as the co-located "typical server workload" of the CPU
// efficiency experiment (Fig. 9).
//
// The store speaks the memcached ASCII protocol subset (get/set/delete) and
// keeps an LRU-bounded sharded map.
package kvstore

import (
	"bytes"
	"container/list"
	"fmt"
	"strconv"
)

// Store is a sharded, LRU-bounded key-value store. It is not safe for OS
// concurrency: in the simulation all accesses happen under the scheduler's
// one-runnable-process invariant, matching memcached's per-shard locking.
type Store struct {
	shards []*shard
}

type shard struct {
	capacity int
	items    map[string]*list.Element
	order    *list.List // front = most recently used
	bytes    int
}

type entry struct {
	key   string
	flags uint32
	value []byte
}

// NewStore creates a store with the given shard count and per-shard item
// capacity (0 = unbounded).
func NewStore(shards, perShardCapacity int) *Store {
	if shards <= 0 {
		shards = 1
	}
	s := &Store{shards: make([]*shard, shards)}
	for i := range s.shards {
		s.shards[i] = &shard{
			capacity: perShardCapacity,
			items:    make(map[string]*list.Element),
			order:    list.New(),
		}
	}
	return s
}

func fnv32(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (s *Store) shard(key string) *shard {
	return s.shards[int(fnv32(key))%len(s.shards)]
}

// Set stores value under key.
func (s *Store) Set(key string, flags uint32, value []byte) {
	sh := s.shard(key)
	v := make([]byte, len(value))
	copy(v, value)
	if el, ok := sh.items[key]; ok {
		e := el.Value.(*entry)
		sh.bytes += len(v) - len(e.value)
		e.value, e.flags = v, flags
		sh.order.MoveToFront(el)
		return
	}
	el := sh.order.PushFront(&entry{key: key, flags: flags, value: v})
	sh.items[key] = el
	sh.bytes += len(v)
	if sh.capacity > 0 && sh.order.Len() > sh.capacity {
		oldest := sh.order.Back()
		e := oldest.Value.(*entry)
		sh.order.Remove(oldest)
		delete(sh.items, e.key)
		sh.bytes -= len(e.value)
	}
}

// Get fetches the value for key.
func (s *Store) Get(key string) (value []byte, flags uint32, ok bool) {
	sh := s.shard(key)
	el, found := sh.items[key]
	if !found {
		return nil, 0, false
	}
	sh.order.MoveToFront(el)
	e := el.Value.(*entry)
	return e.value, e.flags, true
}

// Delete removes key, reporting whether it existed.
func (s *Store) Delete(key string) bool {
	sh := s.shard(key)
	el, found := sh.items[key]
	if !found {
		return false
	}
	e := el.Value.(*entry)
	sh.order.Remove(el)
	delete(sh.items, e.key)
	sh.bytes -= len(e.value)
	return true
}

// Len reports stored items across shards.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.order.Len()
	}
	return n
}

// Bytes reports stored value bytes across shards.
func (s *Store) Bytes() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.bytes
	}
	return n
}

// ---------------------------------------------------------------------------
// memcached ASCII protocol

// Request is a parsed protocol request.
type Request struct {
	Op    string // "get", "set", "delete"
	Key   string
	Flags uint32
	Value []byte
}

// EncodeGet renders a get request.
func EncodeGet(key string) []byte {
	return []byte("get " + key + "\r\n")
}

// EncodeSet renders a set request (exptime always 0).
func EncodeSet(key string, flags uint32, value []byte) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "set %s %d 0 %d\r\n", key, flags, len(value))
	b.Write(value)
	b.WriteString("\r\n")
	return b.Bytes()
}

// EncodeDelete renders a delete request.
func EncodeDelete(key string) []byte {
	return []byte("delete " + key + "\r\n")
}

// Parse decodes one request from a message (one request per message, the
// framing every transport in this repository provides).
func Parse(msg []byte) (Request, error) {
	var r Request
	head := msg
	if i := bytes.Index(msg, []byte("\r\n")); i >= 0 {
		head = msg[:i]
	} else {
		return r, fmt.Errorf("kvstore: missing CRLF")
	}
	fields := bytes.Fields(head)
	if len(fields) == 0 {
		return r, fmt.Errorf("kvstore: empty request")
	}
	r.Op = string(fields[0])
	switch r.Op {
	case "get", "delete":
		if len(fields) != 2 {
			return r, fmt.Errorf("kvstore: %s wants 1 key", r.Op)
		}
		r.Key = string(fields[1])
	case "set":
		if len(fields) != 5 {
			return r, fmt.Errorf("kvstore: malformed set")
		}
		r.Key = string(fields[1])
		flags, err := strconv.ParseUint(string(fields[2]), 10, 32)
		if err != nil {
			return r, fmt.Errorf("kvstore: bad flags: %v", err)
		}
		r.Flags = uint32(flags)
		n, err := strconv.Atoi(string(fields[4]))
		if err != nil || n < 0 {
			return r, fmt.Errorf("kvstore: bad length")
		}
		body := msg[len(head)+2:]
		if len(body) < n+2 || !bytes.HasSuffix(body[:n+2], []byte("\r\n")) {
			return r, fmt.Errorf("kvstore: short body")
		}
		r.Value = body[:n]
	default:
		return r, fmt.Errorf("kvstore: unknown op %q", r.Op)
	}
	return r, nil
}

// Serve applies a parsed request to the store and renders the reply.
func (s *Store) Serve(r Request) []byte {
	switch r.Op {
	case "get":
		v, flags, ok := s.Get(r.Key)
		if !ok {
			return []byte("END\r\n")
		}
		var b bytes.Buffer
		fmt.Fprintf(&b, "VALUE %s %d %d\r\n", r.Key, flags, len(v))
		b.Write(v)
		b.WriteString("\r\nEND\r\n")
		return b.Bytes()
	case "set":
		s.Set(r.Key, r.Flags, r.Value)
		return []byte("STORED\r\n")
	case "delete":
		if s.Delete(r.Key) {
			return []byte("DELETED\r\n")
		}
		return []byte("NOT_FOUND\r\n")
	default:
		return []byte("ERROR\r\n")
	}
}

// ServeRaw parses and serves a wire request.
func (s *Store) ServeRaw(msg []byte) []byte {
	r, err := Parse(msg)
	if err != nil {
		return []byte("CLIENT_ERROR " + err.Error() + "\r\n")
	}
	return s.Serve(r)
}

// DecodeValue extracts the value from a VALUE reply; ok=false on END-only
// (miss) replies.
func DecodeValue(reply []byte) (value []byte, ok bool, err error) {
	if bytes.HasPrefix(reply, []byte("END\r\n")) {
		return nil, false, nil
	}
	if !bytes.HasPrefix(reply, []byte("VALUE ")) {
		return nil, false, fmt.Errorf("kvstore: unexpected reply %q", firstLine(reply))
	}
	i := bytes.Index(reply, []byte("\r\n"))
	if i < 0 {
		return nil, false, fmt.Errorf("kvstore: truncated reply")
	}
	fields := bytes.Fields(reply[:i])
	if len(fields) != 4 {
		return nil, false, fmt.Errorf("kvstore: malformed VALUE line")
	}
	n, err := strconv.Atoi(string(fields[3]))
	if err != nil || n < 0 {
		return nil, false, fmt.Errorf("kvstore: bad VALUE length")
	}
	body := reply[i+2:]
	if len(body) < n {
		return nil, false, fmt.Errorf("kvstore: short VALUE body")
	}
	return body[:n], true, nil
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\r'); i >= 0 {
		return string(b[:i])
	}
	return string(b)
}
