package kvstore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestSetGetDelete(t *testing.T) {
	s := NewStore(4, 0)
	if _, _, ok := s.Get("missing"); ok {
		t.Fatal("miss expected")
	}
	s.Set("k", 7, []byte("value"))
	v, flags, ok := s.Get("k")
	if !ok || string(v) != "value" || flags != 7 {
		t.Fatalf("got %q flags=%d ok=%v", v, flags, ok)
	}
	s.Set("k", 9, []byte("v2"))
	v, flags, _ = s.Get("k")
	if string(v) != "v2" || flags != 9 {
		t.Fatal("overwrite failed")
	}
	if !s.Delete("k") || s.Delete("k") {
		t.Fatal("delete semantics wrong")
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestValueIsolation(t *testing.T) {
	s := NewStore(1, 0)
	buf := []byte("mutable")
	s.Set("k", 0, buf)
	buf[0] = 'X'
	v, _, _ := s.Get("k")
	if string(v) != "mutable" {
		t.Fatal("store must copy values")
	}
}

func TestLRUEviction(t *testing.T) {
	s := NewStore(1, 3)
	for i := 0; i < 3; i++ {
		s.Set(fmt.Sprintf("k%d", i), 0, []byte{byte(i)})
	}
	s.Get("k0") // refresh k0: k1 becomes LRU
	s.Set("k3", 0, []byte{3})
	if s.Len() != 3 {
		t.Fatalf("len = %d, capacity 3", s.Len())
	}
	if _, _, ok := s.Get("k1"); ok {
		t.Fatal("k1 should have been evicted (LRU)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, _, ok := s.Get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
}

func TestBytesAccounting(t *testing.T) {
	s := NewStore(2, 0)
	s.Set("a", 0, make([]byte, 100))
	s.Set("b", 0, make([]byte, 50))
	if s.Bytes() != 150 {
		t.Fatalf("bytes = %d", s.Bytes())
	}
	s.Set("a", 0, make([]byte, 10))
	if s.Bytes() != 60 {
		t.Fatalf("bytes after overwrite = %d", s.Bytes())
	}
	s.Delete("b")
	if s.Bytes() != 10 {
		t.Fatalf("bytes after delete = %d", s.Bytes())
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	s := NewStore(4, 0)
	reply := s.ServeRaw(EncodeSet("img:42", 3, []byte("FACEDATA")))
	if string(reply) != "STORED\r\n" {
		t.Fatalf("set reply %q", reply)
	}
	reply = s.ServeRaw(EncodeGet("img:42"))
	v, ok, err := DecodeValue(reply)
	if err != nil || !ok || string(v) != "FACEDATA" {
		t.Fatalf("get reply %q -> %q ok=%v err=%v", reply, v, ok, err)
	}
	reply = s.ServeRaw(EncodeGet("nope"))
	if _, ok, _ := DecodeValue(reply); ok {
		t.Fatal("miss must decode as !ok")
	}
	if string(s.ServeRaw(EncodeDelete("img:42"))) != "DELETED\r\n" {
		t.Fatal("delete reply wrong")
	}
	if string(s.ServeRaw(EncodeDelete("img:42"))) != "NOT_FOUND\r\n" {
		t.Fatal("re-delete reply wrong")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "get\r\n", "get a b\r\n", "bogus x\r\n", "set k 0 0\r\n",
		"set k x 0 3\r\nabc\r\n", "set k 0 0 3\r\nab", "set k 0 0 zz\r\nabc\r\n",
		"get k", // no CRLF
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
	reply := NewStore(1, 0).ServeRaw([]byte("nonsense\r\n"))
	if !bytes.HasPrefix(reply, []byte("CLIENT_ERROR")) {
		t.Fatalf("reply %q", reply)
	}
}

func TestDecodeValueErrors(t *testing.T) {
	for _, bad := range []string{
		"WEIRD\r\n", "VALUE k 0\r\n", "VALUE k 0 zz\r\nabc", "VALUE k 0 10\r\nshort",
		"VALUE k 0 3", // no terminator
	} {
		if _, _, err := DecodeValue([]byte(bad)); err == nil {
			t.Errorf("DecodeValue(%q) should fail", bad)
		}
	}
}

// Property: for any key/value set, protocol round trips return exactly the
// stored bytes (binary-safe values included).
func TestProtocolProperty(t *testing.T) {
	prop := func(keys []uint16, vals [][]byte) bool {
		s := NewStore(4, 0)
		shadow := map[string][]byte{}
		for i, k := range keys {
			key := fmt.Sprintf("key-%d", k)
			var val []byte
			if i < len(vals) {
				val = vals[i]
			}
			if bytes.Contains(val, []byte("\r\n")) {
				// The ASCII protocol length-prefixes bodies, so CRLF in
				// values is legal — keep it and exercise that path.
				_ = val
			}
			if string(s.ServeRaw(EncodeSet(key, 0, val))) != "STORED\r\n" {
				return false
			}
			shadow[key] = val
		}
		for key, want := range shadow {
			v, ok, err := DecodeValue(s.ServeRaw(EncodeGet(key)))
			if err != nil || !ok || !bytes.Equal(v, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
