package kvstore

import (
	"bytes"
	"testing"
)

// FuzzParse hardens the wire-facing protocol parser: arbitrary bytes must
// never panic, and anything Parse accepts must serve without panicking.
func FuzzParse(f *testing.F) {
	f.Add([]byte("get key\r\n"))
	f.Add([]byte("set k 1 0 3\r\nabc\r\n"))
	f.Add([]byte("delete k\r\n"))
	f.Add([]byte("set k 4294967295 0 0\r\n\r\n"))
	f.Add([]byte("get \r\n"))
	f.Add([]byte{0, 1, 2, 0xFF, '\r', '\n'})
	store := NewStore(4, 16)
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := Parse(data)
		if err != nil {
			return
		}
		reply := store.Serve(req)
		if len(reply) == 0 {
			t.Fatal("accepted request produced empty reply")
		}
		if req.Op == "set" {
			got, _, ok := store.Get(req.Key)
			if !ok || !bytes.Equal(got, req.Value) {
				t.Fatalf("set %q not readable back", req.Key)
			}
		}
	})
}

// FuzzDecodeValue hardens the client-side reply decoder the accelerator code
// runs on bytes received from the network.
func FuzzDecodeValue(f *testing.F) {
	f.Add([]byte("VALUE k 0 3\r\nabc\r\nEND\r\n"))
	f.Add([]byte("END\r\n"))
	f.Add([]byte("VALUE k 0 99999\r\nshort"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, ok, err := DecodeValue(data)
		if err == nil && ok && v == nil {
			t.Fatal("ok decode returned nil value")
		}
	})
}
