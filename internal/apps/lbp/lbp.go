// Package lbp implements Local Binary Patterns face verification (Ahonen et
// al. [3] in the paper), the GPU kernel of the §6.4 multi-tier Face
// Verification server: a received face image is compared against the
// database image for the claimed identity; the comparison is an LBP
// histogram chi-square distance under a threshold.
//
// Images are 32x32 grayscale ("images from a color FERET Database resized to
// 32x32", §6.4).
package lbp

import "fmt"

// Image geometry.
const (
	Size       = 32
	ImageBytes = Size * Size
	// cells per side: 4x4 grid of 8x8 cells, 256-bin histogram each.
	cells     = 4
	cellSize  = Size / cells
	histBins  = 256
	histWords = cells * cells * histBins
)

// Histogram is the concatenated per-cell LBP histogram of one image.
type Histogram [histWords]uint16

// Compute extracts the LBP histogram of a 32x32 image.
func Compute(img []byte) (Histogram, error) {
	var h Histogram
	if len(img) != ImageBytes {
		return h, fmt.Errorf("lbp: image is %d bytes, want %d", len(img), ImageBytes)
	}
	at := func(y, x int) byte {
		if y < 0 || y >= Size || x < 0 || x >= Size {
			return 0
		}
		return img[y*Size+x]
	}
	for y := 0; y < Size; y++ {
		for x := 0; x < Size; x++ {
			c := at(y, x)
			var code byte
			// Clockwise from top-left.
			neighbors := [8][2]int{
				{y - 1, x - 1}, {y - 1, x}, {y - 1, x + 1},
				{y, x + 1},
				{y + 1, x + 1}, {y + 1, x}, {y + 1, x - 1},
				{y, x - 1},
			}
			for bit, nb := range neighbors {
				if at(nb[0], nb[1]) >= c {
					code |= 1 << uint(bit)
				}
			}
			cell := (y/cellSize)*cells + x/cellSize
			h[cell*histBins+int(code)]++
		}
	}
	return h, nil
}

// ChiSquare computes the chi-square distance between two histograms:
// sum((a-b)^2 / (a+b)) over non-empty bins. Zero iff identical.
func ChiSquare(a, b *Histogram) float64 {
	var d float64
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		if s := x + y; s > 0 {
			diff := x - y
			d += diff * diff / s
		}
	}
	return d
}

// DefaultThreshold separates same/different faces for the synthetic corpus.
const DefaultThreshold = 120.0

// Verify reports whether probe and reference depict the same face under the
// threshold.
func Verify(probe, reference []byte, threshold float64) (bool, float64, error) {
	hp, err := Compute(probe)
	if err != nil {
		return false, 0, err
	}
	hr, err := Compute(reference)
	if err != nil {
		return false, 0, err
	}
	d := ChiSquare(&hp, &hr)
	return d <= threshold, d, nil
}

// ---------------------------------------------------------------------------
// Synthetic face corpus

// SynthFace renders a deterministic 32x32 pseudo-face for an identity:
// smooth gradients plus identity-specific feature blobs, so that different
// identities are far apart in LBP space while re-renderings of the same
// identity (with mild noise) stay close.
func SynthFace(id uint32, noise uint32) []byte {
	img := make([]byte, ImageBytes)
	rng := uint64(id)*0x9E3779B97F4A7C15 + 0x1234567
	next := func() uint32 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return uint32(rng * 0x2545F4914F6CDD1D >> 32)
	}
	// Base gradient varies per identity.
	gx, gy := int(next()%5)+1, int(next()%5)+1
	for y := 0; y < Size; y++ {
		for x := 0; x < Size; x++ {
			img[y*Size+x] = byte((x*gx + y*gy) * 4 % 200)
		}
	}
	// Feature blobs ("eyes", "mouth") at identity-specific positions.
	for b := 0; b < 6; b++ {
		cx, cy := int(next()%28)+2, int(next()%28)+2
		v := byte(next()%128 + 127)
		for dy := -2; dy <= 2; dy++ {
			for dx := -2; dx <= 2; dx++ {
				x, y := cx+dx, cy+dy
				if x >= 0 && x < Size && y >= 0 && y < Size && dx*dx+dy*dy <= 4 {
					img[y*Size+x] = v
				}
			}
		}
	}
	// Mild capture noise: flip a few low-order pixels deterministically.
	nr := uint64(noise)*0xD1342543DE82EF95 + 1
	for i := 0; i < int(noise%8); i++ {
		nr ^= nr >> 13
		nr ^= nr << 7
		pos := int(nr % ImageBytes)
		img[pos] ^= 0x04
	}
	return img
}
