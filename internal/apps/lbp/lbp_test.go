package lbp

import (
	"testing"
	"testing/quick"
)

func TestComputeRejectsBadSize(t *testing.T) {
	if _, err := Compute(make([]byte, 100)); err == nil {
		t.Fatal("short image must fail")
	}
}

func TestHistogramMass(t *testing.T) {
	h, err := Compute(SynthFace(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, c := range h {
		total += int(c)
	}
	if total != ImageBytes {
		t.Fatalf("histogram mass %d, want one code per pixel (%d)", total, ImageBytes)
	}
}

func TestChiSquareIdentityZero(t *testing.T) {
	h, _ := Compute(SynthFace(7, 0))
	if d := ChiSquare(&h, &h); d != 0 {
		t.Fatalf("chi2(x,x) = %v", d)
	}
}

// Property: chi-square is symmetric and non-negative.
func TestChiSquareMetricProperties(t *testing.T) {
	prop := func(a, b uint32) bool {
		ha, _ := Compute(SynthFace(a, 0))
		hb, _ := Compute(SynthFace(b, 0))
		d1 := ChiSquare(&ha, &hb)
		d2 := ChiSquare(&hb, &ha)
		if d1 != d2 || d1 < 0 {
			return false
		}
		if a == b && d1 != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySameIdentityUnderNoise(t *testing.T) {
	for id := uint32(1); id <= 20; id++ {
		ref := SynthFace(id, 0)
		probe := SynthFace(id, id*3+1) // mild capture noise
		ok, d, err := Verify(probe, ref, DefaultThreshold)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("identity %d rejected (distance %.1f)", id, d)
		}
	}
}

func TestVerifyDifferentIdentitiesRejected(t *testing.T) {
	accepted := 0
	for id := uint32(1); id <= 20; id++ {
		ref := SynthFace(id, 0)
		probe := SynthFace(id+100, 0)
		ok, _, _ := Verify(probe, ref, DefaultThreshold)
		if ok {
			accepted++
		}
	}
	if accepted > 2 {
		t.Fatalf("%d/20 impostors accepted; threshold too loose", accepted)
	}
}

func TestVerifyErrors(t *testing.T) {
	if _, _, err := Verify(make([]byte, 3), SynthFace(1, 0), DefaultThreshold); err == nil {
		t.Fatal("bad probe must fail")
	}
	if _, _, err := Verify(SynthFace(1, 0), make([]byte, 3), DefaultThreshold); err == nil {
		t.Fatal("bad reference must fail")
	}
}

func TestSynthFaceDeterministic(t *testing.T) {
	a := SynthFace(5, 2)
	b := SynthFace(5, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("synthetic faces must be deterministic")
		}
	}
	if len(a) != ImageBytes {
		t.Fatalf("face size %d", len(a))
	}
}
