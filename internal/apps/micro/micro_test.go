package micro

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEchoCopies(t *testing.T) {
	in := []byte("ping")
	out := Echo(in)
	if !bytes.Equal(in, out) {
		t.Fatal("echo must preserve payload")
	}
	out[0] = 'X'
	if in[0] != 'p' {
		t.Fatal("echo must not alias its input")
	}
}

func TestVecMul(t *testing.T) {
	in := EncodeVec([]int32{1, -2, 100})
	out, err := VecMul(in)
	if err != nil {
		t.Fatal(err)
	}
	got := DecodeVec(out)
	want := []int32{3, -6, 300}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if _, err := VecMul([]byte{1, 2, 3}); err == nil {
		t.Fatal("misaligned payload must fail")
	}
}

// Property: VecMul triples every element for arbitrary vectors.
func TestVecMulProperty(t *testing.T) {
	prop := func(vals []int32) bool {
		out, err := VecMul(EncodeVec(vals))
		if err != nil {
			return false
		}
		got := DecodeVec(out)
		for i, v := range vals {
			if got[i] != v*VecMulConstant {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulIdentity(t *testing.T) {
	const n = 8
	id := make([]int32, n*n)
	a := make([]int32, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
		for j := 0; j < n; j++ {
			a[i*n+j] = int32(i*n + j)
		}
	}
	c, err := MatMul(a, id, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if c[i] != a[i] {
			t.Fatal("A x I != A")
		}
	}
	c2, _ := MatMul(id, a, n)
	for i := range a {
		if c2[i] != a[i] {
			t.Fatal("I x A != A")
		}
	}
}

func TestMatMulKnown(t *testing.T) {
	// [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
	c, err := MatMul([]int32{1, 2, 3, 4}, []int32{5, 6, 7, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("got %v want %v", c, want)
		}
	}
}

func TestMatMulBadDims(t *testing.T) {
	if _, err := MatMul(make([]int32, 3), make([]int32, 4), 2); err == nil {
		t.Fatal("bad dims must fail")
	}
}
