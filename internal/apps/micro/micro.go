// Package micro holds the microbenchmark request-processing bodies used
// throughout the evaluation: echo, the §3.2 vector-multiply server, the
// 1140x1140 matrix-product noisy neighbor, and delay "kernels" that emulate
// request processing of a configurable duration (the methodology the paper
// itself uses for the multi-GPU projection, §6.3).
package micro

import (
	"encoding/binary"
	"fmt"
)

// Echo returns the payload unchanged (the paper's 4-byte echo kernel).
func Echo(payload []byte) []byte {
	out := make([]byte, len(payload))
	copy(out, payload)
	return out
}

// VecMulLen is the §3.2 request size: 256 int32s.
const VecMulLen = 256

// VecMulConstant is the multiplier applied by the vector-multiply server.
const VecMulConstant = 3

// VecMul multiplies a vector of little-endian int32s by VecMulConstant.
func VecMul(payload []byte) ([]byte, error) {
	if len(payload)%4 != 0 {
		return nil, fmt.Errorf("micro: vecmul payload %d not a multiple of 4", len(payload))
	}
	out := make([]byte, len(payload))
	for i := 0; i+4 <= len(payload); i += 4 {
		v := int32(binary.LittleEndian.Uint32(payload[i:]))
		binary.LittleEndian.PutUint32(out[i:], uint32(v*VecMulConstant))
	}
	return out, nil
}

// EncodeVec renders int32s for a VecMul request.
func EncodeVec(vals []int32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// DecodeVec parses a VecMul payload back to int32s.
func DecodeVec(payload []byte) []int32 {
	out := make([]int32, len(payload)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return out
}

// MatMulDim is the §3.2 noisy neighbor matrix dimension (fully occupies the
// Xeon E5-2620's LLC).
const MatMulDim = 1140

// MatMul multiplies two n x n int32 matrices (row-major). It exists so the
// noisy neighbor performs genuine cache-hostile work in functional tests;
// the simulation charges its calibrated duration instead of wall time.
func MatMul(a, b []int32, n int) ([]int32, error) {
	if len(a) != n*n || len(b) != n*n {
		return nil, fmt.Errorf("micro: matmul wants %d elements, got %d/%d", n*n, len(a), len(b))
	}
	c := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			if aik == 0 {
				continue
			}
			row := b[k*n:]
			out := c[i*n:]
			for j := 0; j < n; j++ {
				out[j] += aik * row[j]
			}
		}
	}
	return c, nil
}
