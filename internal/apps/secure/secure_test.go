package secure

import (
	"bytes"
	"testing"
	"testing/quick"
)

var testKey = []byte("0123456789abcdef")

func TestSealOpenRoundTrip(t *testing.T) {
	c, err := NewCipher(testKey)
	if err != nil {
		t.Fatal(err)
	}
	msg := c.Seal(12345)
	if len(msg) != CipherSize {
		t.Fatalf("ciphertext %d bytes, want %d", len(msg), CipherSize)
	}
	v, err := c.Open(msg)
	if err != nil || v != 12345 {
		t.Fatalf("open: %v %v", v, err)
	}
}

func TestBadKeyRejected(t *testing.T) {
	if _, err := NewCipher([]byte("short")); err == nil {
		t.Fatal("bad key length must fail")
	}
}

func TestTamperDetected(t *testing.T) {
	c, _ := NewCipher(testKey)
	msg := c.Seal(7)
	msg[NonceSize] ^= 1
	if _, err := c.Open(msg); err == nil {
		t.Fatal("tampered ciphertext must fail authentication")
	}
	if _, err := c.Open(msg[:5]); err == nil {
		t.Fatal("truncated ciphertext must fail")
	}
}

func TestNoncesUnique(t *testing.T) {
	c, _ := NewCipher(testKey)
	a, b := c.Seal(1), c.Seal(1)
	if bytes.Equal(a, b) {
		t.Fatal("same plaintext must never produce identical ciphertexts")
	}
}

func TestEnclaveCompute(t *testing.T) {
	c, _ := NewCipher(testKey)
	req := c.Seal(6)
	resp, err := EnclaveCompute(c, req)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Open(resp)
	if err != nil || v != 42 {
		t.Fatalf("enclave result %d, want 42", v)
	}
	if _, err := EnclaveCompute(c, []byte("garbage garbage garbage garbage!")); err == nil {
		t.Fatal("garbage request must fail")
	}
}

// Property: the enclave multiplies exactly, for any input.
func TestEnclaveProperty(t *testing.T) {
	c, _ := NewCipher(testKey)
	prop := func(v uint32) bool {
		resp, err := EnclaveCompute(c, c.Seal(v))
		if err != nil {
			return false
		}
		got, err := c.Open(resp)
		return err == nil && got == v*Multiplier
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
