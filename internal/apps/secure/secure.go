// Package secure implements the SGX secure-computing workload of the VCA
// experiment (§6.2): the client sends an AES-encrypted 4-byte integer; the
// enclave decrypts it, multiplies by a constant, re-encrypts and replies.
// SGX guarantees the key never leaves the enclave; here the Cipher value
// plays the enclave-held key. AES-GCM comes from the Go standard library.
package secure

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
)

// PlainSize is the plaintext payload: one little-endian uint32.
const PlainSize = 4

// NonceSize is the AES-GCM nonce length.
const NonceSize = 12

// CipherSize is the wire size of an encrypted integer.
const CipherSize = NonceSize + PlainSize + 16 // nonce + plaintext + GCM tag

// Cipher seals and opens the 4-byte messages.
type Cipher struct {
	gcm   cipher.AEAD
	nonce uint64 // deterministic nonce counter (simulation reproducibility)
}

// NewCipher derives a cipher from a 16/24/32-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("secure: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secure: %w", err)
	}
	return &Cipher{gcm: gcm}, nil
}

// Seal encrypts v.
func (c *Cipher) Seal(v uint32) []byte {
	c.nonce++
	nonce := make([]byte, NonceSize)
	binary.LittleEndian.PutUint64(nonce, c.nonce)
	var plain [PlainSize]byte
	binary.LittleEndian.PutUint32(plain[:], v)
	return c.gcm.Seal(nonce, nonce, plain[:], nil)
}

// Open decrypts a sealed message.
func (c *Cipher) Open(msg []byte) (uint32, error) {
	if len(msg) != CipherSize {
		return 0, fmt.Errorf("secure: ciphertext is %d bytes, want %d", len(msg), CipherSize)
	}
	plain, err := c.gcm.Open(nil, msg[:NonceSize], msg[NonceSize:], nil)
	if err != nil {
		return 0, fmt.Errorf("secure: %w", err)
	}
	return binary.LittleEndian.Uint32(plain), nil
}

// Multiplier is the constant the enclave multiplies by (any value works; the
// experiment only checks the round trip).
const Multiplier = 7

// EnclaveCompute is the in-enclave body: decrypt, multiply, encrypt.
func EnclaveCompute(key *Cipher, request []byte) ([]byte, error) {
	v, err := key.Open(request)
	if err != nil {
		return nil, err
	}
	return key.Seal(v * Multiplier), nil
}
