// Chrome trace-event export: spans, utilization samples and runtime events
// rendered as the JSON Trace Event Format, loadable in Perfetto or
// chrome://tracing. One process track per simulated component; span stages
// become complete ("X") slices, samples become counter ("C") tracks, tracer
// events become instants ("i"). Timestamps are virtual microseconds.
package trace

import (
	"encoding/json"
	"io"
	"time"

	"lynx/internal/metrics"
	"lynx/internal/sim"
)

// Export bundles the data rendered into one Chrome trace. Any field may be
// nil; an all-nil export still writes a valid (metadata-only) trace.
type Export struct {
	// Spans supplies per-request stage slices.
	Spans *SpanTable
	// Events supplies instant markers from the runtime event ring.
	Events *Tracer
	// Series supplies counter tracks (one per series).
	Series []*metrics.Series
}

// Component tracks (Chrome "process" IDs). Metadata names are emitted for
// each so the timeline reads as the simulated topology.
const (
	pidNetwork  = 1
	pidSNIC     = 2
	pidTransfer = 3
	pidQueue    = 4
	pidAccel    = 5
	pidRuntime  = 6
	pidSamples  = 7

	// pidStride spaces the pid blocks of a rack export so node i's tracks
	// are i*pidStride + the component pid above.
	pidStride = 8
)

// chromeEvent is one Trace Event Format record. Field order is the emission
// order, and encoding/json preserves it, so output is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// slice describes how one stage interval maps onto a component track.
type slice struct {
	name     string
	from, to Stage
	pid      int
}

// spanSlices is the fixed stage-interval -> track mapping; the tracks
// mirror the phase decomposition so the timeline and the breakdown table
// agree.
var spanSlices = []slice{
	{"net:request", StageClientSend, StageSnicRecv, pidNetwork},
	{"snic:dispatch", StageSnicRecv, StageDispatch, pidSNIC},
	{"rdma:push", StageDispatch, StagePushed, pidTransfer},
	{"queue:rx-wait", StagePushed, StageAccelRecv, pidQueue},
	{"accel:exec", StageAccelRecv, StageAccelSent, pidAccel},
	{"queue:tx-wait", StageAccelSent, StageDrain, pidQueue},
	{"snic:forward", StageDrain, StageForward, pidSNIC},
	{"net:response", StageForward, StageClientRecv, pidNetwork},
}

// replSlices maps the cross-node replication stages; emitted only for spans
// that carry them, so unreplicated traces are byte-identical to before.
var replSlices = []slice{
	{"repl:push", StageDispatch, StageReplPushed, pidTransfer},
	{"repl:ack-wait", StageReplPushed, StageReplAcked, pidQueue},
}

// WriteJSON writes the export as {"traceEvents": [...]} JSON. Output is
// byte-identical across runs for deterministic inputs: spans are walked in
// ID order, series and events in their recorded order.
func (e Export) WriteJSON(w io.Writer) error {
	return writeChrome(w, e.appendTo(make([]chromeEvent, 0, 256), 0, ""))
}

// appendTo renders the export's events into evs with all pids offset by base
// and all track/series names prefixed (""/0 is the single-node layout).
func (e Export) appendTo(evs []chromeEvent, base int, prefix string) []chromeEvent {
	evs = append(evs, metaEvents(base, prefix)...)

	for _, sp := range e.Spans.Spans() {
		tid := 0
		if sp.Queue >= 0 {
			tid = int(sp.Queue)
		}
		emit := func(name string, from, to Stage, pid int) {
			a, oka := sp.At(from)
			b, okb := sp.At(to)
			if !oka || !okb {
				return
			}
			evs = append(evs, chromeEvent{
				Name: prefix + name, Ph: "X", Ts: usec(a), Dur: usec(b) - usec(a),
				Pid: base + pid, Tid: tid,
				Args: map[string]any{"span": sp.ID, "status": sp.Status.String()},
			})
		}
		quorum := false
		if _, ok := sp.At(StageQuorum); ok {
			quorum = true
		}
		for _, sl := range spanSlices {
			// A response parked for quorum splits its SNIC forward slice
			// into the hold (drain -> quorum) and the actual forward.
			if quorum && sl.from == StageDrain && sl.to == StageForward {
				emit("snic:quorum-hold", StageDrain, StageQuorum, sl.pid)
				emit(sl.name, StageQuorum, sl.to, sl.pid)
				continue
			}
			emit(sl.name, sl.from, sl.to, sl.pid)
		}
		for _, sl := range replSlices {
			emit(sl.name, sl.from, sl.to, sl.pid)
		}
	}

	if e.Events != nil {
		for _, ev := range e.Events.Events() {
			evs = append(evs, chromeEvent{
				Name: ev.Kind.String(), Ph: "i", Ts: usec(ev.At),
				Pid: base + pidRuntime, Tid: 0,
				Args: map[string]any{"arg0": ev.Arg0, "arg1": ev.Arg1, "s": "p"},
			})
		}
	}

	for _, s := range e.Series {
		if s == nil {
			continue
		}
		for _, pt := range s.Points() {
			evs = append(evs, chromeEvent{
				Name: prefix + s.Name(), Ph: "C", Ts: float64(pt.At) / float64(time.Microsecond),
				Pid: base + pidSamples, Tid: 0,
				Args: map[string]any{"value": pt.V},
			})
		}
	}
	return evs
}

// NodeExport is one node's telemetry in a rack export.
type NodeExport struct {
	// Name prefixes the node's tracks ("server1/snic", ...).
	Name string
	// Spans, Events, Series mirror Export; any may be nil.
	Spans  *SpanTable
	Events *Tracer
	Series []*metrics.Series
}

// RackExport renders one Chrome trace with a process-track block per node,
// so a rack failover reads as one timeline. Node i's tracks live at pids
// i*8+1 .. i*8+7 and are name-prefixed with the node name; output is
// byte-deterministic in node order.
type RackExport struct {
	Nodes []NodeExport
}

// WriteJSON writes the rack export as {"traceEvents": [...]} JSON.
func (e RackExport) WriteJSON(w io.Writer) error {
	evs := make([]chromeEvent, 0, 256)
	for i, n := range e.Nodes {
		ex := Export{Spans: n.Spans, Events: n.Events, Series: n.Series}
		evs = ex.appendTo(evs, i*pidStride, n.Name+"/")
	}
	return writeChrome(w, evs)
}

func writeChrome(w io.Writer, evs []chromeEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: evs, DisplayTimeUnit: "ns"})
}

// metaEvents names the component tracks (Chrome process_name metadata).
func metaEvents(base int, prefix string) []chromeEvent {
	tracks := []struct {
		pid  int
		name string
	}{
		{pidNetwork, "network"},
		{pidSNIC, "snic"},
		{pidTransfer, "pcie/rdma"},
		{pidQueue, "mqueue"},
		{pidAccel, "accelerator"},
		{pidRuntime, "runtime-events"},
		{pidSamples, "samplers"},
	}
	out := make([]chromeEvent, 0, len(tracks))
	for _, t := range tracks {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Ts: 0, Pid: base + t.pid, Tid: 0,
			Args: map[string]any{"name": prefix + t.name},
		})
	}
	return out
}
