// Chrome trace-event export: spans, utilization samples and runtime events
// rendered as the JSON Trace Event Format, loadable in Perfetto or
// chrome://tracing. One process track per simulated component; span stages
// become complete ("X") slices, samples become counter ("C") tracks, tracer
// events become instants ("i"). Timestamps are virtual microseconds.
package trace

import (
	"encoding/json"
	"io"
	"time"

	"lynx/internal/metrics"
	"lynx/internal/sim"
)

// Export bundles the data rendered into one Chrome trace. Any field may be
// nil; an all-nil export still writes a valid (metadata-only) trace.
type Export struct {
	// Spans supplies per-request stage slices.
	Spans *SpanTable
	// Events supplies instant markers from the runtime event ring.
	Events *Tracer
	// Series supplies counter tracks (one per series).
	Series []*metrics.Series
}

// Component tracks (Chrome "process" IDs). Metadata names are emitted for
// each so the timeline reads as the simulated topology.
const (
	pidNetwork  = 1
	pidSNIC     = 2
	pidTransfer = 3
	pidQueue    = 4
	pidAccel    = 5
	pidRuntime  = 6
	pidSamples  = 7
)

// chromeEvent is one Trace Event Format record. Field order is the emission
// order, and encoding/json preserves it, so output is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// slice describes how one stage interval maps onto a component track.
type slice struct {
	name     string
	from, to Stage
	pid      int
}

// spanSlices is the fixed stage-interval -> track mapping; the five tracks
// mirror the phase decomposition so the timeline and the breakdown table
// agree.
var spanSlices = []slice{
	{"net:request", StageClientSend, StageSnicRecv, pidNetwork},
	{"snic:dispatch", StageSnicRecv, StageDispatch, pidSNIC},
	{"rdma:push", StageDispatch, StagePushed, pidTransfer},
	{"queue:rx-wait", StagePushed, StageAccelRecv, pidQueue},
	{"accel:exec", StageAccelRecv, StageAccelSent, pidAccel},
	{"queue:tx-wait", StageAccelSent, StageDrain, pidQueue},
	{"snic:forward", StageDrain, StageForward, pidSNIC},
	{"net:response", StageForward, StageClientRecv, pidNetwork},
}

// WriteJSON writes the export as {"traceEvents": [...]} JSON. Output is
// byte-identical across runs for deterministic inputs: spans are walked in
// ID order, series and events in their recorded order.
func (e Export) WriteJSON(w io.Writer) error {
	evs := make([]chromeEvent, 0, 256)
	evs = append(evs, metaEvents()...)

	for _, sp := range e.Spans.Spans() {
		tid := 0
		if sp.Queue >= 0 {
			tid = int(sp.Queue)
		}
		for _, sl := range spanSlices {
			a, oka := sp.At(sl.from)
			b, okb := sp.At(sl.to)
			if !oka || !okb {
				continue
			}
			evs = append(evs, chromeEvent{
				Name: sl.name, Ph: "X", Ts: usec(a), Dur: usec(b) - usec(a),
				Pid: sl.pid, Tid: tid,
				Args: map[string]any{"span": sp.ID, "status": sp.Status.String()},
			})
		}
	}

	if e.Events != nil {
		for _, ev := range e.Events.Events() {
			evs = append(evs, chromeEvent{
				Name: ev.Kind.String(), Ph: "i", Ts: usec(ev.At),
				Pid: pidRuntime, Tid: 0,
				Args: map[string]any{"arg0": ev.Arg0, "arg1": ev.Arg1, "s": "p"},
			})
		}
	}

	for _, s := range e.Series {
		if s == nil {
			continue
		}
		for _, pt := range s.Points() {
			evs = append(evs, chromeEvent{
				Name: s.Name(), Ph: "C", Ts: float64(pt.At) / float64(time.Microsecond),
				Pid: pidSamples, Tid: 0,
				Args: map[string]any{"value": pt.V},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: evs, DisplayTimeUnit: "ns"})
}

// metaEvents names the component tracks (Chrome process_name metadata).
func metaEvents() []chromeEvent {
	tracks := []struct {
		pid  int
		name string
	}{
		{pidNetwork, "network"},
		{pidSNIC, "snic"},
		{pidTransfer, "pcie/rdma"},
		{pidQueue, "mqueue"},
		{pidAccel, "accelerator"},
		{pidRuntime, "runtime-events"},
		{pidSamples, "samplers"},
	}
	out := make([]chromeEvent, 0, len(tracks))
	for _, t := range tracks {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Ts: 0, Pid: t.pid, Tid: 0,
			Args: map[string]any{"name": t.name},
		})
	}
	return out
}
