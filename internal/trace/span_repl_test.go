package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"lynx/internal/sim"
)

// stampRepl walks one replicated write through the full path: the service
// stages plus repl-pushed/repl-acked between dispatch and the quorum stamp,
// with the quorum hold parking the response for holdUs µs after drain.
func stampRepl(t *SpanTable, id uint64, base sim.Time, holdUs int) {
	t.Begin(id, base)
	at := func(us int) sim.Time { return base.Add(time.Duration(us) * time.Microsecond) }
	t.Stamp(id, StageSnicRecv, at(1))
	t.Stamp(id, StageDispatch, at(2))
	t.Stamp(id, StagePushed, at(3))
	t.Stamp(id, StageReplPushed, at(3))
	t.Stamp(id, StageAccelRecv, at(4))
	t.Stamp(id, StageAccelSent, at(5))
	t.Stamp(id, StageDrain, at(6))
	t.Stamp(id, StageReplAcked, at(6+holdUs/2))
	t.Stamp(id, StageQuorum, at(6+holdUs))
	t.AddWait(id, PhaseReplication, time.Duration(holdUs)*time.Microsecond)
	t.Stamp(id, StageForward, at(7+holdUs))
	t.Close(id, SpanDone, at(8+holdUs))
}

// TestSpanReplicationPhase: a quorum stamp carves the replication phase out
// of the SNIC hold (quorum − drain), the six phases still telescope to the
// end-to-end latency exactly, and the booked wait is clamped inside it.
func TestSpanReplicationPhase(t *testing.T) {
	tab := NewSpanTable(64)
	stampRepl(tab, 9, 100, 40)
	sp, ok := tab.Span(9)
	if !ok {
		t.Fatal("span 9 not retained")
	}
	phases, complete := sp.Phases()
	if !complete {
		t.Fatal("span incomplete")
	}
	if got, want := phases[PhaseReplication], 40*time.Microsecond; got != want {
		t.Fatalf("replication phase %v, want %v", got, want)
	}
	// SNIC keeps only its compute share: dispatch−snicRecv plus forward−quorum.
	if got, want := phases[PhaseSNIC], 2*time.Microsecond; got != want {
		t.Fatalf("snic phase %v, want %v", got, want)
	}
	var sum time.Duration
	for _, d := range phases {
		sum += d
	}
	e2e, _ := sp.Latency(StageClientSend, StageClientRecv)
	if sum != time.Duration(e2e) {
		t.Fatalf("phases sum to %v, end-to-end %v", sum, time.Duration(e2e))
	}
	if w := sp.WaitIn(PhaseReplication); w != 40*time.Microsecond {
		t.Fatalf("replication wait %v, want 40µs", w)
	}
	if s := sp.ServiceIn(PhaseReplication); s != 0 {
		t.Fatalf("replication service %v, want 0 (the hold is pure wait)", s)
	}
}

// TestSpanNoQuorumNoReplicationPhase: without a quorum stamp (quorum met
// before the response drained, or no replication at all) the replication
// phase is zero and the original five-phase split is untouched.
func TestSpanNoQuorumNoReplicationPhase(t *testing.T) {
	tab := NewSpanTable(64)
	stampAll(tab, 4, 100)
	sp, _ := tab.Span(4)
	phases, complete := sp.Phases()
	if !complete {
		t.Fatal("span incomplete")
	}
	if phases[PhaseReplication] != 0 {
		t.Fatalf("replication phase %v without a quorum stamp", phases[PhaseReplication])
	}
	if tab.PhaseHist(PhaseReplication).Count() == 0 {
		t.Fatal("replication phase not fed to the histogram plane")
	}
	if tab.PhaseHist(PhaseReplication).Sum() != 0 {
		t.Fatal("nonzero replication time on the unreplicated path")
	}
}

// TestSpanReplicationStampsNilSafe: every replication-path entry point
// tolerates a nil table (tracing disabled).
func TestSpanReplicationStampsNilSafe(t *testing.T) {
	var tab *SpanTable
	tab.Begin(1, 0)
	tab.Stamp(1, StageReplPushed, 1)
	tab.Stamp(1, StageReplAcked, 2)
	tab.Stamp(1, StageQuorum, 3)
	tab.AddWait(1, PhaseReplication, time.Microsecond)
}

// TestReplEventKinds: the replication event kinds render with their
// payload labels.
func TestReplEventKinds(t *testing.T) {
	tr := New(16)
	tr.Emit(10, PeerKill, 1, 7)
	tr.Emit(20, QuorumShrink, 2, 3)
	tr.Emit(30, ReplRelease, 4, 5)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, want := range [][2]string{
		{"peer-kill", "peer=1 waived=7"},
		{"quorum-shrink", "live=2 quorum=3"},
		{"repl-release", "released=4 outstanding=5"},
	} {
		got := evs[i].String()
		if !strings.Contains(got, want[0]) || !strings.Contains(got, want[1]) {
			t.Errorf("event %d = %q, want %q and %q", i, got, want[0], want[1])
		}
	}
}

// TestExportQuorumHoldSlice: a span with a quorum stamp splits its SNIC
// forward slice into a quorum-hold and a forward part, and emits the
// repl:push / repl:ack-wait slices; an unreplicated span's export carries
// none of them.
func TestExportQuorumHoldSlice(t *testing.T) {
	tab := NewSpanTable(64)
	stampRepl(tab, 9, 100, 40)
	var buf bytes.Buffer
	if err := (Export{Spans: tab}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"snic:quorum-hold", "repl:push", "repl:ack-wait", "snic:forward"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("export missing %q slice", want)
		}
	}

	plain := NewSpanTable(64)
	stampAll(plain, 4, 100)
	buf.Reset()
	if err := (Export{Spans: plain}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, reject := range []string{"quorum-hold", "repl:"} {
		if strings.Contains(buf.String(), reject) {
			t.Errorf("unreplicated export contains %q", reject)
		}
	}
}

// TestRackExportPrefixesAndStride: each node's tracks land in its own pid
// block (i*8+1 ...) under "<node>/" prefixed names, and the export is
// deterministic.
func TestRackExportPrefixesAndStride(t *testing.T) {
	mk := func() RackExport {
		t1 := NewSpanTable(16)
		stampRepl(t1, 9, 100, 40)
		t2 := NewSpanTable(16)
		stampAll(t2, 4, 100)
		return RackExport{Nodes: []NodeExport{
			{Name: "server1", Spans: t1},
			{Name: "server2", Spans: t2},
		}}
	}
	var a, b bytes.Buffer
	if err := mk().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("rack export not deterministic")
	}
	out := a.String()
	for _, want := range []string{
		`"name":"server1/snic"`, `"name":"server2/snic"`,
		`"pid":2`, `"pid":10`,
		`"name":"server1/snic:quorum-hold"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rack export missing %s", want)
		}
	}
	if strings.Contains(out, `"name":"server2/snic:quorum-hold"`) {
		t.Error("unreplicated node grew a quorum-hold slice")
	}
}
