package trace

import (
	"testing"
	"time"

	"lynx/internal/sim"
)

// stampComplete records every service-path stage of span id with a fixed,
// monotone trajectory (all times in ns):
//
//	send=0, snic-recv=100, dispatch=250, pushed=300, accel-recv=400,
//	accel-sent=600, drain=650, forward=700, client-recv=800
//
// giving phases network=200, snic=200, transfer=50, queueing=150, exec=200.
func stampComplete(tb *SpanTable, id uint64) {
	tb.Begin(id, 0)
	tb.Stamp(id, StageSnicRecv, 100)
	tb.Stamp(id, StageDispatch, 250)
	tb.Stamp(id, StagePushed, 300)
	tb.Stamp(id, StageAccelRecv, 400)
	tb.Stamp(id, StageAccelSent, 600)
	tb.Stamp(id, StageDrain, 650)
	tb.Stamp(id, StageForward, 700)
}

var wantPhases = [NumPhases]time.Duration{
	PhaseNetwork:  200,
	PhaseSNIC:     200,
	PhaseTransfer: 50,
	PhaseQueueing: 150,
	PhaseExec:     200,
}

// TestWaitServiceIdentity: for every phase of a closed span,
// wait + service == phase duration, and the phases sum to end-to-end.
func TestWaitServiceIdentity(t *testing.T) {
	tb := NewSpanTable(8)
	stampComplete(tb, 1)
	tb.AddWait(1, PhaseSNIC, 60)
	tb.AddWait(1, PhaseQueueing, 40)
	tb.AddWait(1, PhaseQueueing, 30) // additive: two queueing points
	tb.Close(1, SpanDone, 800)

	s, ok := tb.Span(1)
	if !ok {
		t.Fatal("span lost")
	}
	ph, ok := s.Phases()
	if !ok {
		t.Fatal("span incomplete")
	}
	var sum time.Duration
	for p := PhaseNetwork; p < NumPhases; p++ {
		if ph[p] != wantPhases[p] {
			t.Errorf("phase %v = %v, want %v", p, ph[p], wantPhases[p])
		}
		if got := s.WaitIn(p) + s.ServiceIn(p); got != ph[p] {
			t.Errorf("phase %v: wait %v + service %v = %v, want %v",
				p, s.WaitIn(p), s.ServiceIn(p), got, ph[p])
		}
		sum += ph[p]
	}
	if sum != 800 {
		t.Errorf("phases sum to %v, want 800ns end-to-end", sum)
	}
	if got := s.WaitIn(PhaseQueueing); got != 70 {
		t.Errorf("queueing wait = %v, want 70ns (40+30)", got)
	}
	if got := s.ServiceIn(PhaseSNIC); got != 140 {
		t.Errorf("snic service = %v, want 140ns", got)
	}
}

// TestAddWaitClampedAtClose: a recorded wait can never exceed its phase (the
// instrumentation may overlap queue intervals); Close clamps it so the
// decomposition still telescopes, and the histograms see the clamped split.
func TestAddWaitClampedAtClose(t *testing.T) {
	tb := NewSpanTable(8)
	stampComplete(tb, 1)
	tb.AddWait(1, PhaseSNIC, time.Second) // wildly over the 200ns phase
	tb.Close(1, SpanDone, 800)

	s, _ := tb.Span(1)
	if got := s.WaitIn(PhaseSNIC); got != wantPhases[PhaseSNIC] {
		t.Errorf("clamped wait = %v, want %v", got, wantPhases[PhaseSNIC])
	}
	if got := s.ServiceIn(PhaseSNIC); got != 0 {
		t.Errorf("service after clamp = %v, want 0", got)
	}
	if got := tb.PhaseWaitHist(PhaseSNIC).Max(); got != wantPhases[PhaseSNIC] {
		t.Errorf("wait histogram saw %v, want clamped %v", got, wantPhases[PhaseSNIC])
	}
	if got := tb.PhaseServiceHist(PhaseSNIC).Max(); got != 0 {
		t.Errorf("service histogram saw %v, want 0", got)
	}
}

// TestAddWaitIgnores: non-positive durations, unknown IDs, closed spans and
// nil tables are all safely ignored.
func TestAddWaitIgnores(t *testing.T) {
	var nilTable *SpanTable
	nilTable.AddWait(1, PhaseSNIC, 10) // must not panic

	tb := NewSpanTable(8)
	stampComplete(tb, 1)
	tb.AddWait(1, PhaseSNIC, 0)
	tb.AddWait(1, PhaseSNIC, -5)
	tb.AddWait(2, PhaseSNIC, 10)        // unknown id
	tb.AddWait(1, Phase(NumPhases), 10) // out of range
	tb.Close(1, SpanDone, 800)
	tb.AddWait(1, PhaseSNIC, 10) // closed

	s, _ := tb.Span(1)
	if got := s.WaitIn(PhaseSNIC); got != 0 {
		t.Errorf("wait = %v, want 0 (all adds ignored)", got)
	}
}

// TestWaitHistogramsTelescopeInAggregate: across many spans, the per-phase
// wait and service histograms carry the same population as the phase
// histogram and their sums telescope exactly.
func TestWaitHistogramsTelescopeInAggregate(t *testing.T) {
	tb := NewSpanTable(64)
	const n = 32
	for i := uint64(1); i <= n; i++ {
		stampComplete(tb, i)
		tb.AddWait(i, PhaseQueueing, time.Duration(i))
		tb.Close(i, SpanDone, 800)
	}
	for p := PhaseNetwork; p < NumPhases; p++ {
		d, w, s := tb.PhaseHist(p), tb.PhaseWaitHist(p), tb.PhaseServiceHist(p)
		if d.Count() != n || w.Count() != n || s.Count() != n {
			t.Fatalf("phase %v counts %d/%d/%d, want %d each", p, d.Count(), w.Count(), s.Count(), n)
		}
		if w.Sum()+s.Sum() != d.Sum() {
			t.Errorf("phase %v: wait %v + service %v != total %v", p, w.Sum(), s.Sum(), d.Sum())
		}
	}
	if got := tb.PhaseWaitHist(PhaseQueueing).Sum(); got != time.Duration(n*(n+1)/2) {
		t.Errorf("aggregate queueing wait = %v, want %v", got, time.Duration(n*(n+1)/2))
	}
}

// TestSetOnDone: the observer fires exactly once per completed span, after
// the waits were clamped, and only for SpanDone closes with a full
// trajectory. Copies taken by the observer stay valid after the slot is
// reused.
func TestSetOnDone(t *testing.T) {
	tb := NewSpanTable(4)
	var seen []Span
	tb.SetOnDone(func(s *Span) { seen = append(seen, *s) })

	stampComplete(tb, 1)
	tb.AddWait(1, PhaseSNIC, time.Second) // will be clamped before the hook
	tb.Close(1, SpanDone, 800)
	tb.Close(1, SpanDone, 900) // second close: no-op, no second callback

	tb.Begin(2, 0) // incomplete: dropped before the accelerator
	tb.Close(2, SpanDropped, 500)

	tb.Begin(3, 0) // done but missing service stages: not observed
	tb.Close(3, SpanDone, 500)

	if len(seen) != 1 {
		t.Fatalf("observer fired %d times, want 1", len(seen))
	}
	if seen[0].ID != 1 || seen[0].Status != SpanDone {
		t.Fatalf("observed span %d status %v", seen[0].ID, seen[0].Status)
	}
	if got := seen[0].WaitIn(PhaseSNIC); got != wantPhases[PhaseSNIC] {
		t.Errorf("observer saw unclamped wait %v, want %v", got, wantPhases[PhaseSNIC])
	}

	tb.SetOnDone(nil) // disarm
	stampComplete(tb, 5)
	tb.Close(5, SpanDone, 800)
	if len(seen) != 1 {
		t.Fatal("disarmed observer still fired")
	}

	var nilTable *SpanTable
	nilTable.SetOnDone(func(*Span) {}) // nil-safe
}

// TestStampAt reads back a live stamp without copying the span.
func TestStampAt(t *testing.T) {
	tb := NewSpanTable(8)
	tb.Begin(1, 10)
	tb.Stamp(1, StagePushed, 300)
	if at, ok := tb.StampAt(1, StagePushed); !ok || at != sim.Time(300) {
		t.Fatalf("StampAt = %v, %v; want 300, true", at, ok)
	}
	if _, ok := tb.StampAt(1, StageDrain); ok {
		t.Fatal("unset stage reported ok")
	}
	if _, ok := tb.StampAt(9, StagePushed); ok {
		t.Fatal("unknown id reported ok")
	}
	var nilTable *SpanTable
	if _, ok := nilTable.StampAt(1, StagePushed); ok {
		t.Fatal("nil table reported ok")
	}
}
