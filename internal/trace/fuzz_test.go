package trace

import (
	"encoding/binary"
	"testing"
)

// FuzzSpanID checks the payload span-ID convention against the stdlib
// little-endian decoder: any 8-byte-or-longer payload round-trips through
// SpanID exactly, and anything shorter decodes to 0 ("no span") without
// panicking. The convention must hold for arbitrary bytes because span IDs
// ride inside request payloads that accelerator code echoes untouched.
func FuzzSpanID(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(binary.LittleEndian.AppendUint64(nil, 0xdeadbeefcafebabe))
	f.Add(append(binary.LittleEndian.AppendUint64(nil, 1), []byte("trailing payload")...))
	f.Fuzz(func(t *testing.T, b []byte) {
		id := SpanID(b)
		if len(b) < 8 {
			if id != 0 {
				t.Fatalf("SpanID(%d bytes) = %#x, want 0", len(b), id)
			}
			return
		}
		if want := binary.LittleEndian.Uint64(b); id != want {
			t.Fatalf("SpanID = %#x, want %#x", id, want)
		}
		// Round-trip: re-encoding the extracted ID reproduces the prefix,
		// so the workload's encoder and this decoder cannot drift.
		var enc [8]byte
		binary.LittleEndian.PutUint64(enc[:], id)
		for i := range enc {
			if enc[i] != b[i] {
				t.Fatalf("byte %d: re-encoded %#x, payload %#x", i, enc[i], b[i])
			}
		}
	})
}
