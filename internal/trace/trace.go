// Package trace provides a lightweight, fixed-memory event tracer for the
// Lynx runtime: a ring of typed events (message received, dispatched,
// drained, forwarded, dropped, relayed) with virtual timestamps. It exists
// for the observability a production server needs — `lynxd -trace` dumps the
// tail of the ring, and tests assert on event flows.
package trace

import (
	"fmt"
	"time"

	"lynx/internal/sim"
)

// Kind classifies an event.
type Kind uint8

// Event kinds, following one request through the runtime.
const (
	// Recv: a message arrived from the network (arg0 = payload bytes).
	Recv Kind = iota
	// Dispatch: the dispatcher pushed it into an mqueue (arg0 = queue
	// index, arg1 = RX slot).
	Dispatch
	// Drain: the MQ manager drained a TX message (arg0 = TX slot, arg1 =
	// correlation/request slot).
	Drain
	// Forward: a response left toward a client (arg0 = payload bytes).
	Forward
	// Relay: a pipeline stage-to-stage hand-off (arg0 = next stage).
	Relay
	// Drop: a message was discarded (arg0 = queue index).
	Drop
	// BackendOut: a client-mqueue message left toward a backend.
	BackendOut
	// BackendIn: a backend response was pushed into a client mqueue.
	BackendIn
	// Retry: a timed-out request was retransmitted (arg0 = queue index,
	// arg1 = attempt number).
	Retry
	// Failover: the MQ-manager watchdog changed a queue's health (arg0 =
	// queue index, arg1 = 0 for failover, 1 for failback).
	Failover
	// PeerKill: the replicator's ack-deadline detector declared a replica
	// peer dead (arg0 = peer index, arg1 = acks waived by the kill).
	PeerKill
	// QuorumShrink: a peer kill shrank the effective write quorum (arg0 =
	// live-peer count after the kill, arg1 = quorum size).
	QuorumShrink
	// ReplRelease: a client response held for replication was released at
	// quorum (arg0 = responses released, arg1 = acks still outstanding).
	ReplRelease
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Recv:
		return "recv"
	case Dispatch:
		return "dispatch"
	case Drain:
		return "drain"
	case Forward:
		return "forward"
	case Relay:
		return "relay"
	case Drop:
		return "drop"
	case BackendOut:
		return "backend-out"
	case BackendIn:
		return "backend-in"
	case Retry:
		return "retry"
	case Failover:
		return "failover"
	case PeerKill:
		return "peer-kill"
	case QuorumShrink:
		return "quorum-shrink"
	case ReplRelease:
		return "repl-release"
	default:
		return "unknown"
	}
}

// Event is one traced occurrence.
type Event struct {
	At   sim.Time
	Kind Kind
	Arg0 uint64
	Arg1 uint64
}

// String formats the event for dumps, labelling Arg0/Arg1 per kind.
func (e Event) String() string {
	var args string
	switch e.Kind {
	case Recv:
		args = fmt.Sprintf("bytes=%d port=%d", e.Arg0, e.Arg1)
	case Dispatch:
		args = fmt.Sprintf("queue=%d slot=%d", e.Arg0, e.Arg1)
	case Drain:
		args = fmt.Sprintf("slot=%d corr=%d", e.Arg0, e.Arg1)
	case Forward:
		args = fmt.Sprintf("bytes=%d", e.Arg0)
	case Relay:
		args = fmt.Sprintf("stage=%d", e.Arg0)
	case Drop:
		args = fmt.Sprintf("queue=%d cause=%d", e.Arg0, e.Arg1)
	case BackendOut, BackendIn:
		args = fmt.Sprintf("bytes=%d queue=%d", e.Arg0, e.Arg1)
	case Retry:
		args = fmt.Sprintf("queue=%d attempt=%d", e.Arg0, e.Arg1)
	case Failover:
		dir := "failed"
		if e.Arg1 == 1 {
			dir = "restored"
		}
		args = fmt.Sprintf("queue=%d %s", e.Arg0, dir)
	case PeerKill:
		args = fmt.Sprintf("peer=%d waived=%d", e.Arg0, e.Arg1)
	case QuorumShrink:
		args = fmt.Sprintf("live=%d quorum=%d", e.Arg0, e.Arg1)
	case ReplRelease:
		args = fmt.Sprintf("released=%d outstanding=%d", e.Arg0, e.Arg1)
	default:
		args = fmt.Sprintf("arg0=%d arg1=%d", e.Arg0, e.Arg1)
	}
	return fmt.Sprintf("%-12v %-11s %s", time.Duration(e.At), e.Kind, args)
}

// Tracer is a fixed-capacity event ring. A nil *Tracer is valid and records
// nothing, so call sites never need nil checks beyond the method receiver.
type Tracer struct {
	ring   []Event
	next   int
	total  uint64
	counts [numKinds]uint64
}

// New creates a tracer holding the most recent capacity events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Emit records one event. Safe on a nil tracer.
func (t *Tracer) Emit(at sim.Time, kind Kind, arg0, arg1 uint64) {
	if t == nil {
		return
	}
	ev := Event{At: at, Kind: kind, Arg0: arg0, Arg1: arg1}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.next] = ev
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	if int(kind) < len(t.counts) {
		t.counts[kind]++
	}
}

// Total reports all events ever emitted (including evicted ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Count reports events of one kind ever emitted.
func (t *Tracer) Count(kind Kind) uint64 {
	if t == nil || int(kind) >= len(t.counts) {
		return 0
	}
	return t.counts[kind]
}

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil || len(t.ring) == 0 {
		return nil
	}
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Tail returns the most recent n retained events.
func (t *Tracer) Tail(n int) []Event {
	evs := t.Events()
	if n >= len(evs) {
		return evs
	}
	return evs[len(evs)-n:]
}

// Summary formats per-kind counters.
func (t *Tracer) Summary() string {
	if t == nil {
		return "trace disabled"
	}
	s := ""
	for k := Kind(0); k < numKinds; k++ {
		if t.counts[k] == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, t.counts[k])
	}
	if s == "" {
		return "no events"
	}
	return s
}
