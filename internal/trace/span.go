// Request-scoped span tracing: every request is identified by its workload
// sequence number (the 8-byte little-endian payload prefix all services
// echo), and its virtual timestamps are recorded stage by stage as it moves
// netstack -> dispatcher -> mqueue RX ring -> accelerator -> TX ring ->
// MQ-manager drain -> forward -> client. The table is fixed memory (a ring
// indexed by span ID), all methods are safe on a nil receiver, and nothing
// allocates on the record path, so enabling spans never perturbs the
// simulator hot path and disabling them costs one nil check.
package trace

import (
	"time"

	"lynx/internal/metrics"
	"lynx/internal/sim"
)

// Stage indexes one per-request timestamp within a Span.
type Stage uint8

// Stages in path order. Not every span visits every stage: a dropped request
// stops at StageDispatch, a client-mqueue (backend) round trip only touches
// the Backend stages.
const (
	// StageClientSend: the load generator issued the request.
	StageClientSend Stage = iota
	// StageSnicRecv: the network server received it from the socket.
	StageSnicRecv
	// StageDispatch: the dispatcher picked a queue (pre-RDMA-push).
	StageDispatch
	// StagePushed: the RDMA write carrying the message was delivered into
	// the RX ring (the accelerator can observe the message no earlier than
	// this, so the stage order stays monotone even when consumption beats
	// the write completion's return to the SNIC).
	StagePushed
	// StageAccelRecv: the accelerator consumed it from the RX ring.
	StageAccelRecv
	// StageAccelSent: the accelerator published its response in the TX ring.
	StageAccelSent
	// StageDrain: the MQ manager drained the response from the TX ring.
	StageDrain
	// StageForward: the response left the SNIC toward the client.
	StageForward
	// StageClientRecv: the client received the response (set by Close).
	StageClientRecv
	// StageBackendOut: a client-mqueue message left toward its backend.
	StageBackendOut
	// StageBackendIn: a backend response entered the client mqueue.
	StageBackendIn
	// StageReplPushed: the first replica-bound RDMA WRITE carrying the
	// record was delivered into a peer's ingest mqueue (earliest peer
	// delivery; per-peer deliveries after the first do not move it).
	StageReplPushed
	// StageReplAcked: the first replica ack for the record arrived back at
	// the origin SNIC.
	StageReplAcked
	// StageQuorum: the ack quorum was reached and a held client response
	// was released. Stamped only for writes whose response was actually
	// parked waiting for quorum — a write whose quorum was met before its
	// response drained has no replication wait and no quorum stamp.
	StageQuorum
	// NumStages bounds the per-span timestamp array.
	NumStages
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageClientSend:
		return "client-send"
	case StageSnicRecv:
		return "snic-recv"
	case StageDispatch:
		return "dispatch"
	case StagePushed:
		return "pushed"
	case StageAccelRecv:
		return "accel-recv"
	case StageAccelSent:
		return "accel-sent"
	case StageDrain:
		return "drain"
	case StageForward:
		return "forward"
	case StageClientRecv:
		return "client-recv"
	case StageBackendOut:
		return "backend-out"
	case StageBackendIn:
		return "backend-in"
	case StageReplPushed:
		return "repl-pushed"
	case StageReplAcked:
		return "repl-acked"
	case StageQuorum:
		return "quorum"
	default:
		return "unknown"
	}
}

// Phase is one bucket of the paper-style latency decomposition (§6). The
// phases telescope: for a span with all stages recorded their sum is
// exactly the end-to-end latency.
type Phase uint8

const (
	// PhaseNetwork: client -> SNIC wire time, both directions.
	PhaseNetwork Phase = iota
	// PhaseSNIC: SNIC processing (network stack + dispatch + forward CPU).
	PhaseSNIC
	// PhaseTransfer: the one-sided RDMA push into the accelerator RX ring.
	PhaseTransfer
	// PhaseQueueing: time spent sitting in rings (RX wait + TX drain wait).
	PhaseQueueing
	// PhaseExec: accelerator execution between RX consume and TX publish.
	PhaseExec
	// PhaseReplication: response hold at the origin SNIC waiting for the
	// replica ack quorum (drain -> quorum release). Zero for unreplicated
	// requests and for writes whose quorum was met before the response
	// drained.
	PhaseReplication
	// NumPhases bounds the per-table histogram array.
	NumPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseNetwork:
		return "network"
	case PhaseSNIC:
		return "snic"
	case PhaseTransfer:
		return "transfer"
	case PhaseQueueing:
		return "queueing"
	case PhaseExec:
		return "execution"
	case PhaseReplication:
		return "replication"
	default:
		return "unknown"
	}
}

// SpanStatus is a span's lifecycle state.
type SpanStatus uint8

const (
	// SpanOpen: begun, response not yet accounted for.
	SpanOpen SpanStatus = iota
	// SpanDone: the client received the response.
	SpanDone
	// SpanDropped: the runtime shed the request (full or stalled queue).
	SpanDropped
	// SpanLost: the client gave up (retransmission budget exhausted).
	SpanLost
)

// String names the status.
func (s SpanStatus) String() string {
	switch s {
	case SpanOpen:
		return "open"
	case SpanDone:
		return "done"
	case SpanDropped:
		return "dropped"
	case SpanLost:
		return "lost"
	default:
		return "unknown"
	}
}

// SpanID extracts the request-scoped span ID from a message payload: the
// workload convention's 8-byte little-endian sequence prefix, which servers
// echo in responses and which therefore survives the whole path through
// mqueue rings and accelerator code. Returns 0 (meaning "no span") for
// payloads too short to carry one.
func SpanID(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Span is one request's recorded trajectory.
type Span struct {
	ID     uint64
	Status SpanStatus
	// Queue is the server mqueue the dispatcher picked (-1 before dispatch).
	Queue int32
	// stamps holds one virtual timestamp per stage, -1 when unset.
	stamps [NumStages]sim.Time
	// waits accumulates queue-residency time per phase (the "waiting" half of
	// the wait/service decomposition). Clamped into [0, phase duration] when
	// the span closes, so wait + service telescopes exactly to the phase.
	waits [NumPhases]sim.Time
}

// At returns the timestamp of one stage and whether it was recorded.
func (s *Span) At(st Stage) (sim.Time, bool) {
	if st >= NumStages || s.stamps[st] < 0 {
		return 0, false
	}
	return s.stamps[st], true
}

// Latency returns the stage-to-stage delta, valid only when both are set.
func (s *Span) Latency(from, to Stage) (d sim.Time, ok bool) {
	a, oka := s.At(from)
	b, okb := s.At(to)
	if !oka || !okb {
		return 0, false
	}
	return b - a, true
}

// Phases returns the phase decomposition in path order and whether the
// span is complete (every service stage recorded); the values sum
// exactly to the end-to-end latency.
func (s *Span) Phases() ([NumPhases]time.Duration, bool) {
	var out [NumPhases]time.Duration
	if !s.complete() {
		return out, false
	}
	for p, d := range s.phases() {
		out[p] = time.Duration(d)
	}
	return out, true
}

// WaitIn returns the accumulated queue wait of one phase. On spans closed
// SpanDone the value is clamped into [0, phase duration].
func (s *Span) WaitIn(p Phase) time.Duration {
	if p >= NumPhases {
		return 0
	}
	return time.Duration(s.waits[p])
}

// ServiceIn returns the in-service share of one phase (duration minus wait);
// zero for incomplete spans, where phases are undefined.
func (s *Span) ServiceIn(p Phase) time.Duration {
	ph, ok := s.Phases()
	if !ok || p >= NumPhases {
		return 0
	}
	return ph[p] - s.WaitIn(p)
}

// complete reports whether every stage of the service path was recorded.
func (s *Span) complete() bool {
	for st := StageClientSend; st <= StageClientRecv; st++ {
		if s.stamps[st] < 0 {
			return false
		}
	}
	return true
}

// phases computes the telescoping phase decomposition. Valid only on
// complete spans; the values sum exactly to client-recv minus client-send.
// For replicated writes whose response was parked for quorum (StageQuorum
// set), the drain->quorum hold is carved out of the SNIC phase into
// PhaseReplication; the telescoping sum is unchanged.
func (s *Span) phases() [NumPhases]sim.Time {
	st := &s.stamps
	out := [NumPhases]sim.Time{
		PhaseNetwork:  (st[StageSnicRecv] - st[StageClientSend]) + (st[StageClientRecv] - st[StageForward]),
		PhaseSNIC:     (st[StageDispatch] - st[StageSnicRecv]) + (st[StageForward] - st[StageDrain]),
		PhaseTransfer: st[StagePushed] - st[StageDispatch],
		PhaseQueueing: (st[StageAccelRecv] - st[StagePushed]) + (st[StageDrain] - st[StageAccelSent]),
		PhaseExec:     st[StageAccelSent] - st[StageAccelRecv],
	}
	if q := st[StageQuorum]; q >= 0 {
		out[PhaseReplication] = q - st[StageDrain]
		out[PhaseSNIC] -= out[PhaseReplication]
	}
	return out
}

// SpanTable is a fixed-memory table of request spans, indexed by span ID
// modulo capacity. A nil *SpanTable is valid and records nothing, so every
// call site is a single nil check when tracing is disabled; when enabled, no
// method on the record path (Begin/Stamp/AddWait/SetQueue/Close) allocates.
type SpanTable struct {
	slots []Span

	begun   uint64
	closed  uint64
	evicted uint64
	done    [NumPhases]*metrics.Histogram
	wait    [NumPhases]*metrics.Histogram
	service [NumPhases]*metrics.Histogram
	e2e     *metrics.Histogram
	// onDone, when set, observes every span closed SpanDone with all service
	// stages recorded, after its waits were clamped and the histograms fed.
	// The pointee is only valid for the duration of the call (the slot is a
	// ring); observers must copy what they keep.
	onDone func(*Span)
}

// NewSpanTable creates a table retaining up to capacity concurrent spans
// (a newer span evicts the slot of an older one that maps to it).
func NewSpanTable(capacity int) *SpanTable {
	if capacity <= 0 {
		capacity = 1 << 12
	}
	t := &SpanTable{slots: make([]Span, capacity), e2e: metrics.NewHistogram()}
	for i := range t.slots {
		t.reset(&t.slots[i], 0)
	}
	for p := range t.done {
		t.done[p] = metrics.NewHistogram()
		t.wait[p] = metrics.NewHistogram()
		t.service[p] = metrics.NewHistogram()
	}
	return t
}

func (t *SpanTable) reset(s *Span, id uint64) {
	s.ID = id
	s.Status = SpanOpen
	s.Queue = -1
	for i := range s.stamps {
		s.stamps[i] = -1
	}
	for i := range s.waits {
		s.waits[i] = 0
	}
}

func (t *SpanTable) slot(id uint64) *Span {
	return &t.slots[id%uint64(len(t.slots))]
}

// Begin opens the span for a request issued at the given time. ID 0 means
// "no span" and is ignored. Re-beginning a live span is a no-op; beginning
// over a different span evicts it (the table is a ring).
func (t *SpanTable) Begin(id uint64, at sim.Time) {
	if t == nil || id == 0 {
		return
	}
	s := t.slot(id)
	if s.ID == id {
		return
	}
	if s.ID != 0 && s.Status == SpanOpen {
		t.evicted++
	}
	t.reset(s, id)
	s.stamps[StageClientSend] = at
	t.begun++
}

// Stamp records the stage timestamp of a live span. First write wins:
// retransmitted duplicates of the same request cannot move an earlier
// timestamp or make stages non-monotone. Unknown IDs and closed spans are
// ignored.
func (t *SpanTable) Stamp(id uint64, st Stage, at sim.Time) {
	if t == nil || id == 0 || st >= NumStages {
		return
	}
	s := t.slot(id)
	if s.ID != id || s.Status != SpanOpen || s.stamps[st] >= 0 {
		return
	}
	s.stamps[st] = at
}

// AddWait accumulates queue-residency time into one phase of a live span:
// the interval a request sat in a queue (socket rx ring, dispatcher run
// queue, mqueue RX ring, TX drain backlog) before something started serving
// it. Waits are additive — a phase with two queueing points (e.g. the two
// halves of PhaseQueueing) accumulates both. Non-positive durations, unknown
// IDs and closed spans are ignored, and like the rest of the record path the
// method allocates nothing and is nil-safe.
func (t *SpanTable) AddWait(id uint64, p Phase, d time.Duration) {
	if t == nil || id == 0 || p >= NumPhases || d <= 0 {
		return
	}
	s := t.slot(id)
	if s.ID != id || s.Status != SpanOpen {
		return
	}
	s.waits[p] += sim.Time(d)
}

// StampAt returns one stage timestamp of a live span without copying the
// span, for instrumentation that derives a wait from an earlier stamp (e.g.
// RX-ring residency = consume time minus StagePushed). Nil-safe, alloc-free.
func (t *SpanTable) StampAt(id uint64, st Stage) (sim.Time, bool) {
	if t == nil || id == 0 || st >= NumStages {
		return 0, false
	}
	s := t.slot(id)
	if s.ID != id || s.stamps[st] < 0 {
		return 0, false
	}
	return s.stamps[st], true
}

// SetQueue records which server mqueue the dispatcher picked (first wins).
func (t *SpanTable) SetQueue(id uint64, queue int) {
	if t == nil || id == 0 {
		return
	}
	s := t.slot(id)
	if s.ID != id || s.Status != SpanOpen || s.Queue >= 0 {
		return
	}
	s.Queue = int32(queue)
}

// Close finishes a span exactly once: the first Close wins and later ones
// (a drop followed by the retried request's response, say) are no-ops.
// SpanDone stamps StageClientRecv and, when the span visited every service
// stage, feeds the phase decomposition histograms.
func (t *SpanTable) Close(id uint64, status SpanStatus, at sim.Time) {
	if t == nil || id == 0 || status == SpanOpen {
		return
	}
	s := t.slot(id)
	if s.ID != id || s.Status != SpanOpen {
		return
	}
	s.Status = status
	t.closed++
	if status != SpanDone {
		return
	}
	if s.stamps[StageClientRecv] < 0 {
		s.stamps[StageClientRecv] = at
	}
	if !s.complete() {
		return
	}
	for p, d := range s.phases() {
		w := s.waits[p]
		if w < 0 {
			w = 0
		}
		if w > d {
			w = d
		}
		s.waits[p] = w // clamp in place so observers see the same split
		t.done[p].RecordN(time.Duration(d), 1)
		t.wait[p].RecordN(time.Duration(w), 1)
		t.service[p].RecordN(time.Duration(d-w), 1)
	}
	t.e2e.RecordN(s.stamps[StageClientRecv].Sub(s.stamps[StageClientSend]), 1)
	if t.onDone != nil {
		t.onDone(s)
	}
}

// SetOnDone installs an observer for spans that close SpanDone with every
// service stage recorded (the same spans that feed the histograms). Used by
// the flight recorder; last call wins, nil disarms.
func (t *SpanTable) SetOnDone(fn func(*Span)) {
	if t == nil {
		return
	}
	t.onDone = fn
}

// Span returns a copy of the span for id, if the table still holds it.
func (t *SpanTable) Span(id uint64) (Span, bool) {
	if t == nil || id == 0 {
		return Span{}, false
	}
	s := t.slot(id)
	if s.ID != id {
		return Span{}, false
	}
	return *s, true
}

// Spans returns copies of every retained span in ascending ID order (the
// deterministic order exports use).
func (t *SpanTable) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.slots))
	for i := range t.slots {
		if t.slots[i].ID != 0 {
			out = append(out, t.slots[i])
		}
	}
	for i := 1; i < len(out); i++ { // insertion sort: nearly sorted already
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// PhaseHist returns the latency histogram of one decomposition phase,
// accumulated over spans closed SpanDone with all stages recorded.
func (t *SpanTable) PhaseHist(p Phase) *metrics.Histogram {
	if t == nil || p >= NumPhases {
		return nil
	}
	return t.done[p]
}

// PhaseWaitHist returns the queue-wait histogram of one phase, over the same
// spans as PhaseHist. For each of them wait + service equals the phase value.
func (t *SpanTable) PhaseWaitHist(p Phase) *metrics.Histogram {
	if t == nil || p >= NumPhases {
		return nil
	}
	return t.wait[p]
}

// PhaseServiceHist returns the in-service histogram of one phase (the phase
// duration minus its accumulated queue wait).
func (t *SpanTable) PhaseServiceHist(p Phase) *metrics.Histogram {
	if t == nil || p >= NumPhases {
		return nil
	}
	return t.service[p]
}

// EndToEnd returns the end-to-end latency histogram over the same spans that
// feed the phase histograms (so phase means and this mean are comparable).
func (t *SpanTable) EndToEnd() *metrics.Histogram {
	if t == nil {
		return nil
	}
	return t.e2e
}

// Begun reports spans opened.
func (t *SpanTable) Begun() uint64 {
	if t == nil {
		return 0
	}
	return t.begun
}

// Closed reports spans finished with any terminal status.
func (t *SpanTable) Closed() uint64 {
	if t == nil {
		return 0
	}
	return t.closed
}

// Evicted reports still-open spans overwritten by ring wraparound.
func (t *SpanTable) Evicted() uint64 {
	if t == nil {
		return 0
	}
	return t.evicted
}

// Cap reports the table capacity.
func (t *SpanTable) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}
