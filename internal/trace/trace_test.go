package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"lynx/internal/sim"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, Recv, 1, 2)
	if tr.Total() != 0 || tr.Count(Recv) != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must be inert")
	}
	if tr.Summary() != "trace disabled" {
		t.Fatalf("summary %q", tr.Summary())
	}
}

func TestRingRetainsMostRecent(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(sim.Time(i), Recv, uint64(i), 0)
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Arg0 != uint64(6+i) {
			t.Fatalf("events %v not the most recent in order", evs)
		}
	}
	tail := tr.Tail(2)
	if len(tail) != 2 || tail[1].Arg0 != 9 {
		t.Fatalf("tail %v", tail)
	}
	if got := tr.Tail(100); len(got) != 4 {
		t.Fatalf("oversized tail %d", len(got))
	}
}

func TestCountsAndSummary(t *testing.T) {
	tr := New(8)
	tr.Emit(0, Recv, 0, 0)
	tr.Emit(0, Recv, 0, 0)
	tr.Emit(0, Drop, 0, 0)
	if tr.Count(Recv) != 2 || tr.Count(Drop) != 1 || tr.Count(Forward) != 0 {
		t.Fatal("counts wrong")
	}
	s := tr.Summary()
	if !strings.Contains(s, "recv=2") || !strings.Contains(s, "drop=1") {
		t.Fatalf("summary %q", s)
	}
	if New(1).Summary() != "no events" {
		t.Fatal("empty summary wrong")
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind")
	}
	ev := Event{At: 1500, Kind: Dispatch, Arg0: 3, Arg1: 7}
	if !strings.Contains(ev.String(), "dispatch") {
		t.Fatalf("event string %q", ev.String())
	}
}

// Property: for any emit sequence, Events() is chronologically ordered and
// holds min(total, capacity) entries.
func TestRingOrderProperty(t *testing.T) {
	prop := func(n uint8, capacity uint8) bool {
		c := int(capacity%32) + 1
		tr := New(c)
		for i := 0; i < int(n); i++ {
			tr.Emit(sim.Time(i), Recv, uint64(i), 0)
		}
		evs := tr.Events()
		want := int(n)
		if want > c {
			want = c
		}
		if len(evs) != want {
			return false
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Arg0 != evs[i-1].Arg0+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Counts are totals over the whole run: wrapping the ring evicts events but
// never the counters, including the robustness kinds (Retry, Failover).
func TestCountsSurviveWraparound(t *testing.T) {
	tr := New(4)
	for i := 0; i < 50; i++ {
		tr.Emit(sim.Time(i), Drop, uint64(i), 0)
	}
	tr.Emit(50, Retry, 1, 2)
	tr.Emit(51, Failover, 3, 0)
	if tr.Count(Drop) != 50 || tr.Count(Retry) != 1 || tr.Count(Failover) != 1 {
		t.Fatalf("counts wrong after wraparound: %s", tr.Summary())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	// The ring holds only the most recent events, still in order.
	if evs[2].Kind != Retry || evs[3].Kind != Failover {
		t.Fatalf("tail events %v", evs)
	}
	if Retry.String() != "retry" || Failover.String() != "failover" {
		t.Fatalf("kind strings: %q %q", Retry.String(), Failover.String())
	}
	s := tr.Summary()
	if !strings.Contains(s, "retry=1") || !strings.Contains(s, "failover=1") {
		t.Fatalf("summary %q", s)
	}
}

func TestDefaultCapacity(t *testing.T) {
	tr := New(0)
	for i := 0; i < 2000; i++ {
		tr.Emit(0, Recv, 0, 0)
	}
	if len(tr.Events()) != 1024 {
		t.Fatalf("default capacity retained %d", len(tr.Events()))
	}
}
