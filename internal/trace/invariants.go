package trace

import "lynx/internal/check"

// RegisterInvariants installs end-of-run consistency checks over the span
// table: per-span stage monotonicity (timestamps never run backwards along
// the request path) and the telescoping identity of the phase decomposition
// (the phase histograms sum exactly to the end-to-end histogram, both in
// count and in accumulated time). A nil table or disabled checker is a no-op.
func (t *SpanTable) RegisterInvariants(ck *check.Checker) {
	if t == nil || !ck.Enabled() {
		return
	}
	ck.AddFinisher("trace.span-monotonic", func(fail func(string, ...any)) {
		bad := 0
		for _, s := range t.Spans() {
			last, haveLast := int64(0), false
			var lastStage Stage
			for st := StageClientSend; st <= StageClientRecv; st++ {
				at, ok := s.At(st)
				if !ok {
					continue
				}
				if haveLast && int64(at) < last {
					if bad < 4 {
						fail("span %d: %s at %d precedes %s at %d",
							s.ID, st, int64(at), lastStage, last)
					}
					bad++
				}
				last, haveLast, lastStage = int64(at), true, st
			}
			if out, ok := s.At(StageBackendOut); ok {
				if in, ok2 := s.At(StageBackendIn); ok2 && in < out {
					if bad < 4 {
						fail("span %d: backend-in at %d precedes backend-out at %d",
							s.ID, int64(in), int64(out))
					}
					bad++
				}
			}
			// Replication stages order among themselves (push precedes ack
			// precedes quorum) and a quorum release happens inside the
			// drain..forward hold it carves out of the SNIC phase.
			for _, pair := range [...][2]Stage{
				{StageReplPushed, StageReplAcked},
				{StageReplAcked, StageQuorum},
				{StageDrain, StageQuorum},
				{StageQuorum, StageForward},
			} {
				a, oka := s.At(pair[0])
				b, okb := s.At(pair[1])
				if oka && okb && b < a {
					if bad < 4 {
						fail("span %d: %s at %d precedes %s at %d",
							s.ID, pair[1], int64(b), pair[0], int64(a))
					}
					bad++
				}
			}
		}
		if bad > 4 {
			fail("%d spans with non-monotone stages in total", bad)
		}
	})
	ck.AddFinisher("trace.wait-service-split", func(fail func(string, ...any)) {
		// Aggregate identity: for every phase the wait and service
		// histograms cover the same spans as the phase histogram, and their
		// accumulated times telescope exactly (service is defined as phase
		// minus clamped wait, so any drift means a bookkeeping bug).
		for p := PhaseNetwork; p < NumPhases; p++ {
			ph, w, sv := t.PhaseHist(p), t.PhaseWaitHist(p), t.PhaseServiceHist(p)
			if w.Count() != ph.Count() || sv.Count() != ph.Count() {
				fail("phase %s: wait/service counts %d/%d != phase count %d",
					p, w.Count(), sv.Count(), ph.Count())
			}
			if got, want := int64(w.Sum())+int64(sv.Sum()), int64(ph.Sum()); got != want {
				fail("phase %s: wait+service sum %d != phase sum %d", p, got, want)
			}
		}
		// Per-span: clamped waits never exceed their phase.
		bad := 0
		for _, s := range t.Spans() {
			if s.Status != SpanDone {
				continue
			}
			ph, ok := s.Phases()
			if !ok {
				continue
			}
			for p := PhaseNetwork; p < NumPhases; p++ {
				w := s.WaitIn(p)
				if w < 0 || w > ph[p] {
					if bad < 4 {
						fail("span %d: %s wait %v outside [0, %v]", s.ID, p, w, ph[p])
					}
					bad++
				}
			}
		}
		if bad > 4 {
			fail("%d spans with out-of-range waits in total", bad)
		}
	})
	ck.AddFinisher("trace.phase-telescope", func(fail func(string, ...any)) {
		e2e := t.EndToEnd()
		var sum int64
		for p := PhaseNetwork; p < NumPhases; p++ {
			h := t.PhaseHist(p)
			if h.Count() != e2e.Count() {
				fail("phase %s recorded %d spans, end-to-end %d", p, h.Count(), e2e.Count())
			}
			sum += int64(h.Sum())
		}
		if sum != int64(e2e.Sum()) {
			fail("phase sums total %d, end-to-end %d", sum, int64(e2e.Sum()))
		}
	})
}
