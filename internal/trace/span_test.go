package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"lynx/internal/metrics"
	"lynx/internal/sim"
)

// stampAll walks one span through the full service path with 1µs per hop.
func stampAll(t *SpanTable, id uint64, base sim.Time) {
	t.Begin(id, base)
	at := base
	for st := StageSnicRecv; st <= StageForward; st++ {
		at = at.Add(time.Microsecond)
		t.Stamp(id, st, at)
	}
	t.Close(id, SpanDone, at.Add(time.Microsecond))
}

func TestSpanLifecycle(t *testing.T) {
	tab := NewSpanTable(64)
	stampAll(tab, 7, 100)
	sp, ok := tab.Span(7)
	if !ok {
		t.Fatal("span 7 not retained")
	}
	if sp.Status != SpanDone {
		t.Fatalf("status = %v, want done", sp.Status)
	}
	// Stage timestamps must be monotone along the path.
	prev := sim.Time(-1)
	for st := StageClientSend; st <= StageClientRecv; st++ {
		at, ok := sp.At(st)
		if !ok {
			t.Fatalf("stage %v unset", st)
		}
		if at < prev {
			t.Fatalf("stage %v at %v precedes %v", st, at, prev)
		}
		prev = at
	}
	if tab.Begun() != 1 || tab.Closed() != 1 || tab.Evicted() != 0 {
		t.Fatalf("counters begun=%d closed=%d evicted=%d", tab.Begun(), tab.Closed(), tab.Evicted())
	}
	// The five phases telescope to the end-to-end latency exactly.
	var sum time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		sum += tab.PhaseHist(p).Sum()
	}
	if e2e := tab.EndToEnd().Sum(); sum != e2e {
		t.Fatalf("phase sum %v != end-to-end %v", sum, e2e)
	}
}

func TestSpanFirstWriteWins(t *testing.T) {
	tab := NewSpanTable(64)
	tab.Begin(3, 10)
	tab.Stamp(3, StageSnicRecv, 20)
	tab.Stamp(3, StageSnicRecv, 50) // a retransmitted duplicate arrives later
	sp, _ := tab.Span(3)
	if at, _ := sp.At(StageSnicRecv); at != 20 {
		t.Fatalf("snic-recv = %v, want first write 20", at)
	}
	tab.SetQueue(3, 2)
	tab.SetQueue(3, 5)
	if sp, _ = tab.Span(3); sp.Queue != 2 {
		t.Fatalf("queue = %d, want first write 2", sp.Queue)
	}
	// Re-beginning a live span must not reset its stamps.
	tab.Begin(3, 40)
	if sp, _ = tab.Span(3); sp.stamps[StageClientSend] != 10 {
		t.Fatalf("client-send moved to %v on duplicate Begin", sp.stamps[StageClientSend])
	}
}

func TestSpanCloseExactlyOnce(t *testing.T) {
	tab := NewSpanTable(64)
	tab.Begin(9, 10)
	tab.Close(9, SpanDropped, 30)
	// A stale response (or a second drop on retry) must not reopen/reclose.
	tab.Close(9, SpanDone, 90)
	sp, _ := tab.Span(9)
	if sp.Status != SpanDropped {
		t.Fatalf("status = %v, want the first close (dropped)", sp.Status)
	}
	if tab.Closed() != 1 {
		t.Fatalf("closed = %d, want 1", tab.Closed())
	}
	// Stamps after close are ignored.
	tab.Stamp(9, StageDrain, 95)
	if sp, _ = tab.Span(9); sp.stamps[StageDrain] != -1 {
		t.Fatal("stamp landed on a closed span")
	}
	// Dropped spans must not enter the latency decomposition.
	if n := tab.EndToEnd().Count(); n != 0 {
		t.Fatalf("end-to-end count = %d, want 0", n)
	}
}

func TestSpanRingWraparound(t *testing.T) {
	tab := NewSpanTable(8)
	tab.Begin(1, 10) // stays open
	tab.Begin(9, 20) // same slot (9 % 8 == 1): evicts the open span 1
	if tab.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", tab.Evicted())
	}
	if _, ok := tab.Span(1); ok {
		t.Fatal("span 1 still visible after eviction")
	}
	if _, ok := tab.Span(9); !ok {
		t.Fatal("span 9 missing after taking the slot")
	}
	// Overwriting a closed span is not an eviction.
	tab.Close(9, SpanDone, 30)
	tab.Begin(17, 40)
	if tab.Evicted() != 1 {
		t.Fatalf("evicted = %d after overwriting a closed span, want 1", tab.Evicted())
	}
	// Late stamps for the evicted ID miss (ID mismatch) rather than corrupt.
	tab.Stamp(1, StageDrain, 50)
	if sp, _ := tab.Span(17); sp.stamps[StageDrain] != -1 {
		t.Fatal("stale stamp corrupted the new occupant")
	}
}

func TestSpanDisabledAndNoAlloc(t *testing.T) {
	var tab *SpanTable
	// Every method must be a no-op on a nil table.
	tab.Begin(1, 0)
	tab.Stamp(1, StageSnicRecv, 0)
	tab.SetQueue(1, 0)
	tab.Close(1, SpanDone, 0)
	if tab.Begun() != 0 || tab.Closed() != 0 || tab.Evicted() != 0 || tab.Cap() != 0 {
		t.Fatal("nil table counted something")
	}
	if s := tab.Spans(); s != nil {
		t.Fatal("nil table returned spans")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		tab.Begin(1, 0)
		tab.Stamp(1, StageSnicRecv, 0)
		tab.Close(1, SpanDone, 0)
	}); allocs != 0 {
		t.Fatalf("nil table allocated %v/op", allocs)
	}
	// The enabled record path is alloc-free too.
	live := NewSpanTable(64)
	var id uint64
	if allocs := testing.AllocsPerRun(100, func() {
		id++
		stampAll(live, id, sim.Time(id)*1000)
	}); allocs != 0 {
		t.Fatalf("record path allocated %v/op", allocs)
	}
}

func TestSpanID(t *testing.T) {
	if id := SpanID([]byte{1, 2, 3}); id != 0 {
		t.Fatalf("short payload id = %d, want 0", id)
	}
	if id := SpanID(nil); id != 0 {
		t.Fatalf("nil payload id = %d, want 0", id)
	}
	b := []byte{0x2a, 0, 0, 0, 0, 0, 0, 0, 0xff}
	if id := SpanID(b); id != 42 {
		t.Fatalf("id = %d, want 42 (little-endian prefix)", id)
	}
}

func TestExportJSONValidAndDeterministic(t *testing.T) {
	tab := NewSpanTable(64)
	stampAll(tab, 5, 100)
	stampAll(tab, 6, 5000)
	tab.SetQueue(6, 1)
	tr := New(16)
	tr.Emit(150, Dispatch, 0, 3)
	s := metrics.NewSeries("mq/inflight", 8)
	s.Add(time.Microsecond, 2)
	s.Add(2*time.Microsecond, 1)
	ex := Export{Spans: tab, Events: tr, Series: []*metrics.Series{s}}

	var a, b bytes.Buffer
	if err := ex.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := ex.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("export is not byte-identical across writes")
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	sawX, sawC, sawI := false, false, false
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %v missing %q", ev, field)
			}
		}
		switch ev["ph"] {
		case "X":
			sawX = true
		case "C":
			sawC = true
		case "i":
			sawI = true
		}
	}
	if !sawX || !sawC || !sawI {
		t.Fatalf("missing event kinds: X=%v C=%v i=%v", sawX, sawC, sawI)
	}
}

func TestExportEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (Export{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v", err)
	}
}
