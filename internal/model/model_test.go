package model

import (
	"testing"
	"time"
)

func TestSpeedFactors(t *testing.T) {
	if XeonCore.SpeedFactor() != 1.0 {
		t.Fatal("Xeon must be the calibration baseline")
	}
	if ARMCore.SpeedFactor() <= 1.0 {
		t.Fatal("ARM A72 @800MHz must be slower than Xeon")
	}
	// §6.2: 4 Xeon cores ≈ 7 ARM cores on Lynx dispatch.
	ratio := ARMCore.SpeedFactor()
	if ratio < 1.5 || ratio > 2.0 {
		t.Fatalf("ARM/Xeon ratio %v outside the 7/4 calibration band", ratio)
	}
}

func TestCPUKindString(t *testing.T) {
	for k, want := range map[CPUKind]string{XeonCore: "Xeon", ARMCore: "ARM-A72", E3Core: "E3", CPUKind(99): "unknown-cpu"} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestVMAGapMatchesPaper(t *testing.T) {
	p := Default()
	// §5.1.1: VMA reduces UDP processing latency by 4x on BlueField and 2x
	// on the host.
	hostGap := float64(p.UDPCost(XeonCore, false)) / float64(p.UDPCost(XeonCore, true))
	bfGap := float64(p.UDPCost(ARMCore, false)) / float64(p.UDPCost(ARMCore, true))
	if hostGap < 1.8 || hostGap > 2.2 {
		t.Errorf("host kernel/VMA gap = %.2f, paper says ~2x", hostGap)
	}
	if bfGap < 3.5 || bfGap > 4.5 {
		t.Errorf("BlueField kernel/VMA gap = %.2f, paper says ~4x", bfGap)
	}
}

func TestTCPHeavierThanUDP(t *testing.T) {
	p := Default()
	for _, kind := range []CPUKind{XeonCore, ARMCore} {
		if p.TCPCost(kind, true) <= p.UDPCost(kind, true) {
			t.Errorf("%v: TCP must cost more than UDP", kind)
		}
	}
	// Fig. 8c: UDP/TCP GPU-scaling ratio ≈ 102/15 on BlueField: the VMA TCP
	// multiplier carries most of that.
	if p.TCPMultVMA < 4 {
		t.Error("TCP multiplier too small to reproduce Fig. 8c crossover")
	}
}

func TestGPUManagementOverheadMatchesSec32(t *testing.T) {
	p := Default()
	// §3.2: echo pipeline = H2D copy + launch + D2H copy + sync ≈ 30 µs of
	// management overhead.
	overhead := 2*p.CudaMemcpyAsyncSetup + p.KernelLaunch + p.StreamSync
	if overhead < 25*time.Microsecond || overhead > 35*time.Microsecond {
		t.Fatalf("GPU management overhead %v, paper measures ~30 µs", overhead)
	}
}

func TestLeNetTheoreticalMax(t *testing.T) {
	p := Default()
	// §6.3: theoretical max on one K40m is 3.6 K req/s.
	rate := float64(time.Second) / float64(p.LeNetServiceK40+p.DynamicParallelismLaunch)
	if rate < 3400 || rate > 3800 {
		t.Fatalf("LeNet K40 max %v req/s, want ~3600", rate)
	}
	// §6.3: K80 achieves at most 3300 req/s.
	rate80 := float64(time.Second) / float64(p.LeNetServiceK80+p.DynamicParallelismLaunch)
	if rate80 < 3100 || rate80 > 3500 {
		t.Fatalf("LeNet K80 max %v req/s, want ~3300", rate80)
	}
}

func TestInnovaRate(t *testing.T) {
	p := Default()
	rate := float64(time.Second) / float64(p.InnovaPipeline)
	if rate < 7.0e6 || rate > 7.8e6 {
		t.Fatalf("Innova pipeline %v pkt/s, paper: 7.4M", rate)
	}
}

func TestTransferTime(t *testing.T) {
	if TransferTime(0, 1e9) != 0 || TransferTime(100, 0) != 0 {
		t.Fatal("degenerate transfers must be free")
	}
	// 1250 bytes at 10 Gb/s = 1 µs.
	if got := TransferTime(1250, 10e9); got != time.Microsecond {
		t.Fatalf("TransferTime = %v, want 1µs", got)
	}
}

func TestScaleCPU(t *testing.T) {
	if ScaleCPU(time.Microsecond, XeonCore) != time.Microsecond {
		t.Fatal("Xeon scale must be identity")
	}
	if ScaleCPU(time.Microsecond, ARMCore) != 1750*time.Nanosecond {
		t.Fatalf("ARM scale = %v", ScaleCPU(time.Microsecond, ARMCore))
	}
}

func TestDefaultIsACopy(t *testing.T) {
	a := Default()
	a.KernelLaunch = time.Hour
	if Default().KernelLaunch == time.Hour {
		t.Fatal("Default must return an independent copy")
	}
}
