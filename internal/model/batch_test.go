package model

import (
	"testing"
	"time"
)

func TestBatchConfigZeroValue(t *testing.T) {
	var bc BatchConfig
	if err := bc.Validate(); err != nil {
		t.Fatalf("zero value must validate: %v", err)
	}
	if !bc.Unit() {
		t.Fatal("zero value must be a unit (batch-1) configuration")
	}
	if bc.EffDoorbell() != 1 || bc.EffCQDrain() != 1 || bc.EffQuantum() != 1 {
		t.Fatalf("zero value effective sizes = %d/%d/%d, want 1/1/1",
			bc.EffDoorbell(), bc.EffCQDrain(), bc.EffQuantum())
	}
}

func TestBatchConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		bc   BatchConfig
		ok   bool
	}{
		{"explicit unit", BatchConfig{Doorbell: 1, CQDrain: 1, Quantum: 1}, true},
		{"default", DefaultBatchConfig(), true},
		{"zero doorbell in non-zero config", BatchConfig{CQDrain: 16, Quantum: 8}, false},
		{"negative doorbell", BatchConfig{Doorbell: -1, CQDrain: 1, Quantum: 1}, false},
		{"zero cq drain", BatchConfig{Doorbell: 8, Quantum: 8}, false},
		{"zero quantum", BatchConfig{Doorbell: 8, CQDrain: 16}, false},
		{"negative window", BatchConfig{Doorbell: 1, CQDrain: 1, Quantum: 1, CoalesceWindow: -time.Microsecond}, false},
		{"window only", BatchConfig{CoalesceWindow: time.Microsecond}, false},
	}
	for _, c := range cases {
		if err := c.bc.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestBatchConfigFromFlags(t *testing.T) {
	if bc, err := BatchConfigFromFlags(0, 0, 0); err != nil || bc != (BatchConfig{}) {
		t.Fatalf("all-zero flags = %+v, %v; want zero value", bc, err)
	}
	if bc, err := BatchConfigFromFlags(8, 0, 0); err != nil || bc != (BatchConfig{Doorbell: 8, CQDrain: 8, Quantum: 8}) {
		t.Fatalf("-batch 8 = %+v, %v; want 8/8/8", bc, err)
	}
	if bc, err := BatchConfigFromFlags(4, 16, 2); err != nil || bc != (BatchConfig{Doorbell: 4, CQDrain: 16, Quantum: 2}) {
		t.Fatalf("explicit knobs = %+v, %v", bc, err)
	}
	if bc, err := BatchConfigFromFlags(0, 16, 0); err != nil || bc != (BatchConfig{Doorbell: 1, CQDrain: 16, Quantum: 1}) {
		t.Fatalf("-batch-cq alone = %+v, %v; want 1/16/1", bc, err)
	}
	if _, err := BatchConfigFromFlags(-3, 0, 0); err == nil {
		t.Fatal("negative -batch must error")
	}
	if _, err := BatchConfigFromFlags(8, -1, 0); err == nil {
		t.Fatal("negative -batch-cq must error")
	}
}

// FuzzBatchConfig checks the configuration invariants over arbitrary knob
// values: Validate accepts exactly the zero value and all-positive configs;
// whenever Validate accepts, the effective sizes are at least 1; and Unit()
// agrees with "every effective size is 1 and no window".
func FuzzBatchConfig(f *testing.F) {
	f.Add(0, 0, 0, int64(0))
	f.Add(1, 1, 1, int64(0))
	f.Add(8, 16, 8, int64(0))
	f.Add(-1, 4, 4, int64(-5))
	f.Add(1, 1, 1, int64(time.Microsecond))
	f.Fuzz(func(t *testing.T, db, cq, quantum int, window int64) {
		bc := BatchConfig{Doorbell: db, CQDrain: cq, Quantum: quantum, CoalesceWindow: time.Duration(window)}
		err := bc.Validate()
		wantOK := bc == (BatchConfig{}) || (db >= 1 && cq >= 1 && quantum >= 1 && window >= 0)
		if (err == nil) != wantOK {
			t.Fatalf("Validate(%+v) = %v, want ok=%v", bc, err, wantOK)
		}
		if bc.EffDoorbell() < 1 || bc.EffCQDrain() < 1 || bc.EffQuantum() < 1 {
			t.Fatalf("effective sizes below 1: %d/%d/%d", bc.EffDoorbell(), bc.EffCQDrain(), bc.EffQuantum())
		}
		unit := bc.EffDoorbell() == 1 && bc.EffCQDrain() == 1 && bc.EffQuantum() == 1 && bc.CoalesceWindow <= 0
		if bc.Unit() != unit {
			t.Fatalf("Unit(%+v) = %v, want %v", bc, bc.Unit(), unit)
		}
		// Flag assembly must never produce a config Validate rejects, except
		// when the raw knobs were themselves invalid.
		if fbc, ferr := BatchConfigFromFlags(db, cq, quantum); ferr == nil {
			if verr := fbc.Validate(); verr != nil {
				t.Fatalf("BatchConfigFromFlags(%d,%d,%d) built invalid config %+v: %v", db, cq, quantum, fbc, verr)
			}
		}
	})
}
