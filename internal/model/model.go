// Package model is the single source of truth for the calibrated hardware
// constants used throughout the simulation. Every constant is annotated with
// the paper section or measurement it was calibrated against, so that
// benchmark shapes (who wins, by what factor, where crossovers fall) track
// the published results. Absolute values are a best-effort reconstruction of
// the authors' testbed (Xeon E5-2620 v2 hosts, Mellanox BlueField and Innova
// SNICs, NVIDIA K40m/K80 GPUs, 40 Gb/s SN2100 switch).
package model

import "time"

// CPUKind identifies a processor microarchitecture in the testbed.
type CPUKind int

const (
	// XeonCore is one Intel Xeon E5-2620 v2 core (2.1 GHz, out-of-order).
	XeonCore CPUKind = iota
	// ARMCore is one BlueField ARM A72 core at 800 MHz (§2). Roughly 2.8x
	// slower than a Xeon core on the network-processing code paths,
	// consistent with "4 host CPU cores match [7-core] BlueField" (§6.2).
	ARMCore
	// E3Core is one Intel E3 core inside the Visual Compute Accelerator.
	E3Core
)

// String returns the human-readable CPU name.
func (k CPUKind) String() string {
	switch k {
	case XeonCore:
		return "Xeon"
	case ARMCore:
		return "ARM-A72"
	case E3Core:
		return "E3"
	default:
		return "unknown-cpu"
	}
}

// SpeedFactor scales a nominal (Xeon-calibrated) CPU cost to this core.
func (k CPUKind) SpeedFactor() float64 {
	switch k {
	case ARMCore:
		// §6.2: one Xeon core ≈ 1.75 ARM cores on UDP server processing
		// (4 Xeon cores match 7 ARM cores).
		return 1.75
	case E3Core:
		return 1.15
	default:
		return 1.0
	}
}

// Params bundles every calibrated constant. Obtain defaults via Default and
// tweak fields in experiments that sweep a dimension.
type Params struct {
	// --- Network fabric -------------------------------------------------

	// WireBandwidth is the link rate between any host/SNIC and the switch.
	// Testbed: 40 Gb/s SN2100 (BlueField link runs at 25 Gb/s; the
	// difference is immaterial for the small messages used in the paper).
	WireBandwidth float64 // bits per second
	// WirePropagation is one-way propagation + switch cut-through latency.
	WirePropagation time.Duration
	// SwitchLatency is the per-hop store-and-forward/processing latency.
	SwitchLatency time.Duration

	// --- Host / SNIC network stacks --------------------------------------

	// UDPProcessKernel is the per-packet CPU cost of the Linux kernel UDP
	// path on a Xeon core (syscall + stack). §5.1.1 reports VMA cuts UDP
	// latency 2x on the host, 4x on BlueField (ARM syscalls are dearer).
	UDPProcessKernel time.Duration
	// UDPProcessVMA is the per-packet CPU cost with the VMA user-level
	// stack on a Xeon core. Calibrated so one Xeon core drives ~244K
	// UDP req/s of Lynx dispatch (Fig. 8c: 74 GPUs x 3.3K req/s).
	UDPProcessVMA time.Duration
	// TCPMultKernel/TCPMultVMA scale the respective UDP costs for TCP
	// segments. TCP is far heavier, especially on ARM (Fig. 8c: TCP scales
	// to 15 GPUs on 7 ARM cores vs 102 for UDP => ~6.8x).
	TCPMultKernel float64
	TCPMultVMA    float64
	// ARMSyscallPenalty multiplies *kernel* network costs on ARM cores on
	// top of SpeedFactor (§5.1.1: "ARM cores on BlueField incur high system
	// call cost", which is why VMA helps 4x there vs 2x on Xeon).
	ARMSyscallPenalty float64
	// StackSerialFraction is the fraction of per-message server processing
	// that runs under a single serialized context (the VMA receive ring +
	// dispatcher shared state). It caps multi-core scaling of the Lynx
	// runtime and reproduces Fig. 8c's observation that 7 ARM cores buy
	// only ~1.4x one Xeon core of Lynx dispatch (102 vs 74 GPUs), while 6
	// Xeon cores are ~1.8x BlueField (the "up to 45% slower" of §6.2).
	StackSerialFraction float64
	// SerialBatchFixed is the fraction of the per-message serialized-section
	// cost that is fixed per dispatcher pass rather than per message: ring
	// doorbell reads, dispatcher lock handoff, receive-ring cache refills.
	// When the dispatcher processes a quantum of k messages in one pass
	// (Batch.Quantum > 1), the serialized charge becomes
	// fixed + k*(per-message - fixed) instead of k*per-message — this is the
	// amortization that moves the Fig. 9 serialization knee. Irrelevant at
	// quantum 1, where the charge reduces to the exact legacy value.
	SerialBatchFixed float64

	// --- Batching ---------------------------------------------------------

	// Batch tunes end-to-end hot-path batching (doorbell coalescing, CQ
	// drain budget, dispatcher quantum, coalescing window). The zero value
	// batches nothing and leaves every code path byte-identical to the
	// per-message runtime; see BatchConfig.
	Batch BatchConfig

	// --- PCIe fabric ------------------------------------------------------

	// PCIeLatency is the one-way latency of a PCIe transaction (posted
	// write reaching peer memory), per hop (a switch adds another hop).
	PCIeLatency time.Duration
	// PCIeBandwidth is the usable DMA bandwidth of a x8 Gen3 link.
	PCIeBandwidth float64 // bits per second
	// PCIeSwitchLatency is added when crossing the BlueField-internal or
	// VCA-internal PCIe switch.
	PCIeSwitchLatency time.Duration

	// --- RDMA engine ------------------------------------------------------

	// RDMAIssue is the CPU-side cost to post a one-sided RDMA work request
	// ("less than 1 µsec to invoke by the CPU", §5.1, citing [11]).
	RDMAIssue time.Duration
	// RDMAEngine is the NIC hardware processing time per WQE.
	RDMAEngine time.Duration
	// RDMARemotePenalty is the extra per-direction network latency of an
	// RDMA operation to an accelerator behind a *different* host's NIC. A
	// message's life costs it about five times (RX write, header poll RTT,
	// slot read RTT) — §6.3 measures ~8 µs added end-to-end, so the
	// per-hop penalty is ~1.5 µs.
	RDMARemotePenalty time.Duration
	// RDMAReadBarrier is the cost of the RDMA-read write-barrier that
	// enforces PCIe write ordering into GPU memory (§5.1: "extra latency of
	// 5 µseconds to each message"; disabled by default like the paper).
	RDMAReadBarrier time.Duration

	// --- GPU management (host-centric path) ------------------------------

	// CudaMemcpyAsyncSetup is the constant driver overhead of one
	// cudaMemcpyAsync ("7-8 µsec", §5.1, Fig. 5 discussion).
	CudaMemcpyAsyncSetup time.Duration
	// GdrcopySetup is the CPU-side setup of a gdrcopy mapped write; the
	// copy itself blocks the caller at memory speed.
	GdrcopySetup time.Duration
	// GdrcopyBandwidth is the CPU-driven BAR write bandwidth (WC mapped).
	GdrcopyBandwidth float64 // bits per second
	// KernelLaunch is the driver+hardware cost of launching a GPU kernel.
	KernelLaunch time.Duration
	// StreamSync is the cost of detecting completion and synchronizing a
	// CUDA stream. KernelLaunch+StreamSync+2*CudaMemcpyAsyncSetup ≈ 30 µs,
	// the §3.2 echo measurement (130 µs end-to-end for a 100 µs kernel).
	StreamSync time.Duration
	// DriverSerialization is the critical-section length each request
	// holds the (global) driver lock in the host-centric design; this is
	// what caps host-centric throughput and why "more threads result in a
	// slowdown due to an NVIDIA driver bottleneck" (§6.2).
	DriverSerialization time.Duration

	// --- GPU device -------------------------------------------------------

	// GPUMaxThreadblocks is the number of concurrently resident
	// threadblocks of the persistent kernel (240 on K40m, §6.2).
	GPUMaxThreadblocks int
	// GPUPollInterval is the device-memory polling loop period of one
	// persistent-kernel threadblock waiting on its mqueue doorbell.
	GPUPollInterval time.Duration
	// GPULocalAccess is a device-local memory access (enqueue cost from the
	// accelerator side; "exactly the latency of accelerator local memory
	// access", §4.2).
	GPULocalAccess time.Duration
	// DynamicParallelismLaunch is the device-side child-kernel launch cost
	// (LeNet server uses dynamic parallelism, §6.3).
	DynamicParallelismLaunch time.Duration

	// --- Accelerator service times (virtual kernel durations) -----------

	// LeNetServiceK40 is the pure GPU execution time of one LeNet inference
	// on K40m. Theoretical max 3.6 K req/s (§6.3) => ~278 µs.
	LeNetServiceK40 time.Duration
	// LeNetServiceK80 is the per-request time on one K80 half ("Tesla K80
	// ... achieves 3300 req/sec at most", §6.3) => ~303 µs.
	LeNetServiceK80 time.Duration
	// FaceVerifyService is the LBP comparison kernel time ("about 50 µsec",
	// §6.4).
	FaceVerifyService time.Duration

	// --- Innova / NICA ----------------------------------------------------

	// InnovaPipeline is the per-packet time of the FPGA AFU receive
	// pipeline (7.4 M pkt/s, §6.2 => ~135 ns).
	InnovaPipeline time.Duration
	// InnovaHelperRefill is the CPU helper-thread cost per received message
	// to refill the UC QP custom ring (§5.2 limitation).
	InnovaHelperRefill time.Duration

	// --- VCA / SGX --------------------------------------------------------

	// SGXTransition is the cost of an enclave entry or exit (ecall/ocall).
	SGXTransition time.Duration
	// VCABridgeKernelPath is the per-direction cost of the Intel-preferred
	// host-bridge + IP-over-PCIe tunnel + native VCA Linux stack path into
	// a VCA node (baseline in §6.2's VCA experiment; Lynx beats it 4.3x at
	// the p90).
	VCABridgeKernelPath time.Duration
	// SecureComputeService is the AES decrypt+multiply+encrypt time.
	SecureComputeService time.Duration

	// --- memcached --------------------------------------------------------

	// MemcachedOpXeon is the per-request application service time of
	// memcached on one Xeon core; with the VMA stack's 2x1 µs per-packet
	// cost the per-op total is ~4 µs => 250 Ktps/core at low latency
	// (Fig. 9).
	MemcachedOpXeon time.Duration
	// MemcachedNetOverheadBF reflects BlueField's slower, batched network
	// path: higher throughput per chip (400 Ktps) at 160 µs p99 latency
	// (Fig. 9) because seven slow cores pipeline deeper.
	MemcachedBatchLatencyBF time.Duration

	// --- Noisy neighbor ---------------------------------------------------

	// LLCInterferenceP99 is the p99 added latency a cache-thrashing
	// neighbor inflicts on a co-located latency-sensitive server thread
	// (§3.2: p99 0.13 ms -> 1.7 ms).
	LLCInterferenceP99 time.Duration
	// LLCInterferenceProb is the per-request probability of a major LLC
	// refill stall while the neighbor runs.
	LLCInterferenceProb float64
	// NeighborSlowdown is the matmul slowdown when co-located (§3.2: 21%).
	NeighborSlowdown float64

	// --- Lynx runtime ----------------------------------------------------

	// DispatchCost is the SNIC-side CPU work to parse one message, pick an
	// mqueue and post the RDMA delivery (excluding netstack processing),
	// Xeon-calibrated. Together with ForwardCost and the UDP costs this
	// puts one Lynx'd message at ~4.5 µs of Xeon CPU — ~244K req/s per
	// core, the Fig. 8c anchor (74 GPUs x 3.3K req/s).
	DispatchCost time.Duration
	// ForwardCost is the SNIC-side CPU work to fetch one response
	// descriptor (poll issue included) and hand it to the netstack,
	// Xeon-calibrated.
	ForwardCost time.Duration
	// MQPollInterval is the Remote MQ Manager's polling period over the TX
	// rings of registered mqueues.
	MQPollInterval time.Duration
	// MetadataBytes is the per-message coalesced control metadata (§5.1:
	// "the metadata occupies 4 bytes").
	MetadataBytes int

	// --- Robustness ------------------------------------------------------

	// MQWatchdogTimeout is how long a server mqueue may hold in-flight
	// messages without the accelerator making progress (no RX consumption,
	// no TX production) before the MQ-manager watchdog marks it failed and
	// dispatch fails over to the remaining queues. The queue is restored as
	// soon as it makes progress again. Must comfortably exceed the longest
	// per-request accelerator service time (LeNet is ~300 µs). Zero
	// disables the watchdog.
	MQWatchdogTimeout time.Duration
	// ClientRetryTimeout is how long a client-mqueue UDP request to a
	// backend may stay unanswered before the runtime retransmits it; each
	// further attempt doubles the wait (exponential backoff).
	ClientRetryTimeout time.Duration
	// ClientRetryMax is the number of retransmissions after the original
	// send before the request is dropped as unanswerable. Zero disables
	// client-mqueue retransmission.
	ClientRetryMax int
}

// Default returns the calibrated parameter set. The returned value may be
// modified freely by the caller (it is a copy).
func Default() Params {
	return Params{
		WireBandwidth:   40e9,
		WirePropagation: 300 * time.Nanosecond,
		SwitchLatency:   300 * time.Nanosecond,

		UDPProcessKernel:    2000 * time.Nanosecond,
		UDPProcessVMA:       1000 * time.Nanosecond,
		TCPMultKernel:       12.0,
		TCPMultVMA:          10.0,
		ARMSyscallPenalty:   2.0,
		StackSerialFraction: 0.4,
		SerialBatchFixed:    0.5,

		PCIeLatency:       900 * time.Nanosecond,
		PCIeBandwidth:     62e9, // x8 Gen3 usable ≈ 7.8 GB/s
		PCIeSwitchLatency: 150 * time.Nanosecond,

		RDMAIssue:         400 * time.Nanosecond,
		RDMAEngine:        150 * time.Nanosecond,
		RDMARemotePenalty: 1500 * time.Nanosecond,
		RDMAReadBarrier:   5 * time.Microsecond,

		CudaMemcpyAsyncSetup: 7500 * time.Nanosecond,
		GdrcopySetup:         400 * time.Nanosecond,
		GdrcopyBandwidth:     6e9, // CPU-driven WC writes are slow
		KernelLaunch:         10 * time.Microsecond,
		StreamSync:           5 * time.Microsecond,
		DriverSerialization:  26 * time.Microsecond,

		GPUMaxThreadblocks:       240,
		GPUPollInterval:          600 * time.Nanosecond,
		GPULocalAccess:           350 * time.Nanosecond,
		DynamicParallelismLaunch: 6 * time.Microsecond,

		LeNetServiceK40:   272 * time.Microsecond,
		LeNetServiceK80:   297 * time.Microsecond,
		FaceVerifyService: 50 * time.Microsecond,

		InnovaPipeline:     135 * time.Nanosecond,
		InnovaHelperRefill: 500 * time.Nanosecond,

		SGXTransition:        3500 * time.Nanosecond,
		VCABridgeKernelPath:  100 * time.Microsecond,
		SecureComputeService: 9 * time.Microsecond,

		MemcachedOpXeon:         2000 * time.Nanosecond,
		MemcachedBatchLatencyBF: 150 * time.Microsecond,

		LLCInterferenceP99:  1700 * time.Microsecond,
		LLCInterferenceProb: 0.012,
		NeighborSlowdown:    0.21,

		DispatchCost:   1300 * time.Nanosecond,
		ForwardCost:    1200 * time.Nanosecond,
		MQPollInterval: 1 * time.Microsecond,
		MetadataBytes:  4,

		MQWatchdogTimeout:  5 * time.Millisecond,
		ClientRetryTimeout: 2 * time.Millisecond,
		ClientRetryMax:     3,
	}
}

// TransferTime returns the serialization time of size bytes over a link of
// the given bandwidth in bits/second.
func TransferTime(size int, bandwidth float64) time.Duration {
	if bandwidth <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(float64(size*8) / bandwidth * 1e9)
}

// ScaleCPU scales a Xeon-calibrated CPU cost to the given core kind.
func ScaleCPU(cost time.Duration, kind CPUKind) time.Duration {
	return time.Duration(float64(cost) * kind.SpeedFactor())
}

// UDPCost returns the per-packet CPU cost for the given core and stack mode.
func (p *Params) UDPCost(kind CPUKind, bypass bool) time.Duration {
	var base time.Duration
	if bypass {
		base = p.UDPProcessVMA
	} else {
		base = p.UDPProcessKernel
		if kind == ARMCore {
			base = time.Duration(float64(base) * p.ARMSyscallPenalty)
		}
	}
	return ScaleCPU(base, kind)
}

// TCPCost returns the per-segment CPU cost for the given core and stack mode.
func (p *Params) TCPCost(kind CPUKind, bypass bool) time.Duration {
	if bypass {
		return time.Duration(float64(p.UDPCost(kind, true)) * p.TCPMultVMA)
	}
	return time.Duration(float64(p.UDPCost(kind, false)) * p.TCPMultKernel)
}
