package model

import (
	"fmt"
	"time"
)

// BatchConfig tunes end-to-end hot-path batching: how many RDMA work
// requests share one doorbell, how many completions (and TX-ring messages)
// one wakeup may drain, how many ready messages the dispatcher processes per
// scheduling quantum, and how long an under-filled quantum may wait for
// stragglers. It is the one knob set threaded through every layer — the
// public lynx.WithBatching option, experiments.Config and the lynxbench/
// lynxd -batch* flags all carry this struct.
//
// The zero value means batch size 1 everywhere: exactly the per-message
// behavior of an unconfigured runtime, so existing callers are untouched.
// A simulation with the zero value (or the explicit all-ones config) is
// byte-identical to one built before batching existed.
type BatchConfig struct {
	// Doorbell is the number of RDMA work requests posted per doorbell
	// (multi-WQE posting): the CPU pays one issue cost per group instead of
	// per WQE. 0 means 1 (one doorbell per WQE).
	Doorbell int
	// CQDrain is the completion-drain budget per wakeup: the poster waits on
	// every CQDrain-th completion of a batch (RC completions are in posting
	// order, so a checkpoint CQE implies all preceding ones), and the MQ
	// manager drains up to CQDrain TX messages per ring visit with a single
	// spanning RDMA READ. 0 means 1 (one wakeup per completion).
	CQDrain int
	// Quantum is the dispatcher scheduling quantum: the number of ready
	// messages one dispatcher context processes per pass through the
	// serialized stack section. 0 means 1 (one dequeue per pass).
	Quantum int
	// CoalesceWindow is how long an under-filled dispatcher quantum may wait
	// for further arrivals before dispatching what it has. 0 (the default)
	// never waits — batching then only coalesces bursts that are already
	// queued, which is latency-neutral.
	CoalesceWindow time.Duration
}

// DefaultBatchConfig returns the tuned batching configuration used by the
// -exp batch sweep's "batched" rows: 8 WQEs per doorbell, a 16-message
// CQ/TX drain budget, a dispatcher quantum of 8, and no coalescing delay.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{Doorbell: 8, CQDrain: 16, Quantum: 8}
}

// BatchConfigFromFlags assembles a BatchConfig from the unified CLI knobs
// shared by lynxbench and lynxd: -batch (doorbell group size, the master
// knob), -batch-cq (completion/TX drain budget) and -batch-quantum
// (dispatcher quantum). All-zero flags mean "unbatched" (the zero value);
// otherwise unset knobs follow -batch so `-batch 8` alone batches every
// layer by 8. Invalid (negative) knobs return the Validate error.
func BatchConfigFromFlags(doorbell, cqDrain, quantum int) (BatchConfig, error) {
	if doorbell == 0 && cqDrain == 0 && quantum == 0 {
		return BatchConfig{}, nil
	}
	master := doorbell
	if master == 0 {
		master = 1
	}
	bc := BatchConfig{Doorbell: master, CQDrain: cqDrain, Quantum: quantum}
	if bc.CQDrain == 0 {
		bc.CQDrain = master
	}
	if bc.Quantum == 0 {
		bc.Quantum = master
	}
	return bc, bc.Validate()
}

// Validate checks the configuration. The zero value is valid (unit
// batching); any other configuration must set all three batch sizes to at
// least 1 and a non-negative coalescing window — zero or negative budgets in
// a non-zero config are configuration bugs, not requests for "no batching".
func (b BatchConfig) Validate() error {
	if b == (BatchConfig{}) {
		return nil
	}
	if b.Doorbell < 1 {
		return fmt.Errorf("model: batch doorbell size %d: must be at least 1", b.Doorbell)
	}
	if b.CQDrain < 1 {
		return fmt.Errorf("model: batch CQ drain budget %d: must be at least 1", b.CQDrain)
	}
	if b.Quantum < 1 {
		return fmt.Errorf("model: batch dispatcher quantum %d: must be at least 1", b.Quantum)
	}
	if b.CoalesceWindow < 0 {
		return fmt.Errorf("model: batch coalesce window %v: must not be negative", b.CoalesceWindow)
	}
	return nil
}

// Unit reports whether the configuration batches nothing: every effective
// batch size is 1 and no coalescing window is set. The runtime takes the
// exact legacy per-message code paths for unit configurations, which is what
// makes "batch size 1 ≡ unbatched" hold byte-for-byte.
func (b BatchConfig) Unit() bool {
	return b.EffDoorbell() == 1 && b.EffCQDrain() == 1 && b.EffQuantum() == 1 &&
		b.CoalesceWindow <= 0
}

// EffDoorbell returns the effective doorbell group size (>= 1).
func (b BatchConfig) EffDoorbell() int { return effBatch(b.Doorbell) }

// EffCQDrain returns the effective completion/TX drain budget (>= 1).
func (b BatchConfig) EffCQDrain() int { return effBatch(b.CQDrain) }

// EffQuantum returns the effective dispatcher quantum (>= 1).
func (b BatchConfig) EffQuantum() int { return effBatch(b.Quantum) }

func effBatch(v int) int {
	if v < 1 {
		return 1
	}
	return v
}
