package sim

import (
	"runtime"
	"testing"
	"time"
)

// TestShutdownReleasesGoroutines verifies Shutdown unwinds every process
// goroutine regardless of what it is blocked on: timers, empty channels,
// full channels, exhausted resources, signals, and gates. Each process
// goroutine must exit, returning runtime.NumGoroutine() to its baseline.
func TestShutdownReleasesGoroutines(t *testing.T) {
	baseline := countGoroutinesSettled()

	s := New(Config{Seed: 1})
	emptyCh := NewChan[int](s, 0)
	fullCh := NewChan[int](s, 1)
	res := NewResource(s, 1)
	sig := NewSignal(s)
	gate := NewGate(s)

	for i := 0; i < 8; i++ {
		s.Spawn("timer", func(p *Proc) { p.Sleep(time.Hour) })
		s.Spawn("getter", func(p *Proc) { emptyCh.Get(p) })
		s.Spawn("getter-timeout", func(p *Proc) { emptyCh.GetTimeout(p, time.Hour) })
		s.Spawn("putter", func(p *Proc) {
			fullCh.Put(p, 1) // first fills the buffer, the rest block
		})
		s.Spawn("acquirer", func(p *Proc) {
			res.Acquire(p)
			p.Sleep(time.Hour)
		})
		s.Spawn("signaled", func(p *Proc) { sig.Wait(p) })
		s.Spawn("gated", func(p *Proc) { gate.Wait(p, gate.Version()) })
		s.Spawn("gated-timeout", func(p *Proc) { gate.WaitTimeout(p, gate.Version(), time.Hour) })
	}
	// Let every process reach its blocking point.
	s.RunUntil(s.Now().Add(time.Millisecond))
	if live := s.Live(); live == 0 {
		t.Fatal("expected live processes before Shutdown")
	}
	s.Shutdown()
	if live := s.Live(); live != 0 {
		t.Fatalf("Live() = %d after Shutdown, want 0", live)
	}

	after := countGoroutinesSettled()
	if after > baseline {
		t.Fatalf("goroutines leaked across Shutdown: baseline %d, after %d", baseline, after)
	}
}

// TestShutdownIsDeterministic: two identical simulations must unwind their
// processes in the same order (spawn order), observable through kill-time
// cleanup side effects.
func TestShutdownIsDeterministic(t *testing.T) {
	trace := func() []string {
		s := New(Config{Seed: 1})
		var order []string
		ch := NewChan[int](s, 0)
		for _, name := range []string{"a", "b", "c", "d", "e"} {
			name := name
			s.Spawn(name, func(p *Proc) {
				defer func() {
					order = append(order, name)
					if r := recover(); r != nil {
						panic(r)
					}
				}()
				ch.Get(p)
			})
		}
		s.RunUntil(s.Now().Add(time.Millisecond))
		s.Shutdown()
		return order
	}
	first := trace()
	if len(first) != 5 {
		t.Fatalf("expected 5 unwound processes, got %v", first)
	}
	for i := 0; i < 3; i++ {
		if got := trace(); !equalStrings(got, first) {
			t.Fatalf("shutdown order changed across runs: %v vs %v", got, first)
		}
	}
	for i, name := range []string{"a", "b", "c", "d", "e"} {
		if first[i] != name {
			t.Fatalf("shutdown order %v is not spawn order", first)
		}
	}
}

// TestShutdownRetiresLiveTasks: Shutdown must retire run-to-completion tasks
// parked on every primitive exactly as it unwinds coroutine Procs — Live()
// drops to zero, OnKill hooks run, and (tasks having no goroutines) the
// goroutine count stays at its baseline.
func TestShutdownRetiresLiveTasks(t *testing.T) {
	baseline := countGoroutinesSettled()

	s := New(Config{Seed: 1})
	emptyCh := NewChan[int](s, 0)
	fullCh := NewChan[int](s, 1)
	res := NewResource(s, 1)
	gate := NewGate(s)

	killed := 0
	for i := 0; i < 8; i++ {
		s.SpawnTask("timer", func(tk *Task) {
			tk.OnKill(func() { killed++ })
			tk.Sleep(time.Hour, func() {})
		})
		s.SpawnTask("getter", func(tk *Task) {
			tk.OnKill(func() { killed++ })
			emptyCh.GetT(tk, func(int) {})
		})
		s.SpawnTask("putter", func(tk *Task) {
			tk.OnKill(func() { killed++ })
			if fullCh.PutT(tk, 1, func() {}) { // first fills, the rest park
				tk.Sleep(time.Hour, func() {})
			}
		})
		s.SpawnTask("acquirer", func(tk *Task) {
			tk.OnKill(func() { killed++ })
			if res.AcquireT(tk, func() { tk.Sleep(time.Hour, func() {}) }) {
				tk.Sleep(time.Hour, func() {})
			}
		})
		s.SpawnTask("gated", func(tk *Task) {
			tk.OnKill(func() { killed++ })
			gate.WaitT(tk, gate.Version(), func() {})
		})
		s.SpawnTask("gated-timeout", func(tk *Task) {
			tk.OnKill(func() { killed++ })
			gate.WaitTimeoutT(tk, gate.Version(), time.Hour, func(bool) {})
		})
		// Interleave Procs so the unwind crosses substrates.
		s.Spawn("proc-getter", func(p *Proc) { emptyCh.Get(p) })
	}
	s.RunUntil(s.Now().Add(time.Millisecond))
	if live := s.Live(); live == 0 {
		t.Fatal("expected live processes before Shutdown")
	}
	s.Shutdown()
	if live := s.Live(); live != 0 {
		t.Fatalf("Live() = %d after Shutdown, want 0", live)
	}
	if killed != 48 {
		t.Fatalf("OnKill ran for %d tasks, want 48", killed)
	}

	after := countGoroutinesSettled()
	if after > baseline {
		t.Fatalf("goroutines leaked across Shutdown: baseline %d, after %d", baseline, after)
	}
}

// TestShutdownOrderCrossesSubstrates: the unwind order is spawn order across
// both substrates, observable through Proc defers and Task OnKill hooks.
func TestShutdownOrderCrossesSubstrates(t *testing.T) {
	trace := func() []string {
		s := New(Config{Seed: 1})
		var order []string
		ch := NewChan[int](s, 0)
		for i, name := range []string{"a", "b", "c", "d", "e", "f"} {
			name := name
			if i%2 == 0 {
				s.Spawn(name, func(p *Proc) {
					defer func() {
						order = append(order, name)
						if r := recover(); r != nil {
							panic(r)
						}
					}()
					ch.Get(p)
				})
			} else {
				s.SpawnTask(name, func(tk *Task) {
					tk.OnKill(func() { order = append(order, name) })
					ch.GetT(tk, func(int) {})
				})
			}
		}
		s.RunUntil(s.Now().Add(time.Millisecond))
		s.Shutdown()
		return order
	}
	first := trace()
	if len(first) != 6 {
		t.Fatalf("expected 6 unwound processes, got %v", first)
	}
	for i := 0; i < 3; i++ {
		if got := trace(); !equalStrings(got, first) {
			t.Fatalf("shutdown order changed across runs: %v vs %v", got, first)
		}
	}
	for i, name := range []string{"a", "b", "c", "d", "e", "f"} {
		if first[i] != name {
			t.Fatalf("shutdown order %v is not spawn order", first)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// countGoroutinesSettled samples the goroutine count after letting exiting
// goroutines finish unwinding.
func countGoroutinesSettled() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
		m := runtime.NumGoroutine()
		if m >= n && i > 5 {
			return m
		}
		n = m
	}
	return n
}
