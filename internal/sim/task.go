// Run-to-completion tasks: the simulator's second process substrate.
//
// A Task is a state-machine process the scheduler executes inline in its
// event loop — no goroutine, no resume/yield channel rendezvous. Where a
// coroutine Proc blocks by parking its goroutine, a Task *returns*, leaving a
// continuation (a plain func) that the waking event invokes directly. The
// price is continuation-passing style at every blocking point; the payoff is
// that a scheduler step costs a function call instead of two channel
// operations and an OS-level goroutine switch.
//
// Tasks and Procs coexist on the same event heap, virtual clock, channels,
// gates, and resources, and interoperate freely: a Task can park on a Chan a
// Proc feeds and vice versa. Every Task primitive consumes scheduler
// sequence numbers exactly like its Proc counterpart (SpawnTask and Spawn
// each burn one slot for the start event; a Sleep, a channel hand-off, a
// resource grant, and a gate fire each burn one slot on either substrate),
// so porting a process from one substrate to the other leaves the global
// (timestamp, sequence) event order — and therefore every simulation
// result — byte-identical. Same-instant Task and Proc events carry no
// substrate-specific tie-break: they interleave purely by sequence number,
// in the order the wakes were scheduled.
//
// Wait-booking contract: because a Task's continuation runs inside the event
// that woke it, Sim.Now() observed at the top of a continuation equals the
// virtual time the wake was scheduled for — the same value a Proc would see
// returning from the corresponding blocking call. Code that books waits by
// differencing Now() around a blocking region ports mechanically.
package sim

import "time"

// Task is a run-to-completion process: the scheduler invokes its pending
// continuation inline for every wake. All blocking primitives come in
// continuation-passing form (Task.Sleep, Chan.GetT/PutT, Resource.AcquireT,
// Gate.WaitT, ...); a Task must never spin without parking, exactly like a
// Proc must not loop without blocking.
type Task struct {
	sim  *Sim
	name string

	// k is the continuation armed for the next wake (timer, resource grant,
	// gate fire). Channel waits leave k nil and deliver through the waiter
	// node instead, so a value hand-off costs no extra indirection.
	k func()

	// runEv is the pre-bound activation thunk scheduled as an ordinary
	// event{fn: ...}. Allocated once at spawn; every subsequent wake is
	// allocation-free.
	runEv func()

	// parkedOn tracks the primitive holding a waiter node for this task
	// (nil while running or timer-parked), so Kill and Shutdown can
	// deregister it. Cold path only.
	parkedOn unparker

	onKill func()
	killed bool
	done   bool

	// resF is the task's scratch frame for Resource.WithT. A task holds at
	// most one WithT in flight at a time (a nested call can only be issued
	// from inside the previous call's continuation, after the frame's fields
	// have been copied out), so a single lazily-allocated frame per task
	// makes every WithT call allocation-free.
	resF *resFrame
}

// unparker is implemented by blocking primitives that hold task waiter
// nodes; unparkTask removes the task's node (Kill/Shutdown cold path).
type unparker interface{ unparkTask(t *Task) }

// SpawnTask starts a run-to-completion task at the current virtual time.
// start runs when the scheduler reaches the task's start event; the task
// stays live while it has a pending continuation or parked waiter, and
// finishes when a continuation returns with nothing armed.
func (s *Sim) SpawnTask(name string, start func(t *Task)) *Task {
	t := &Task{sim: s, name: name}
	t.runEv = t.activate
	t.k = func() { start(t) }
	s.addRunner(runner{t: t})
	s.atFn(s.now, t.runEv)
	return t
}

// Name returns the task name given at SpawnTask time.
func (t *Task) Name() string { return t.name }

// Sim returns the simulation this task belongs to.
func (t *Task) Sim() *Sim { return t.sim }

// Now returns the current virtual time.
func (t *Task) Now() Time { return t.sim.now }

// activate runs the armed continuation. It is the body of every scheduled
// task event; stale events for killed or finished tasks are no-ops.
func (t *Task) activate() {
	if t.killed || t.done {
		return
	}
	k := t.k
	if k == nil {
		return
	}
	t.k = nil
	t.parkedOn = nil
	k()
	t.maybeFinish()
}

// maybeFinish retires the task once no continuation or waiter is pending.
func (t *Task) maybeFinish() {
	if !t.done && t.k == nil && t.parkedOn == nil {
		t.done = true
		t.sim.nprocs--
	}
}

// park records where the task is waiting. k may be nil when the wake is
// delivered through a waiter node (channel hand-offs).
func (t *Task) park(on unparker, k func()) {
	t.parkedOn = on
	t.k = k
}

// Sleep arms k to run after d of virtual time. Negative durations clamp to
// zero and still consume one scheduler slot, matching Proc.Sleep exactly.
func (t *Task) Sleep(d time.Duration, k func()) {
	if d < 0 {
		d = 0
	}
	t.k = k
	t.sim.atFn(t.sim.now.Add(d), t.runEv)
}

// Yield arms k to run after other events at the current instant.
func (t *Task) Yield(k func()) { t.Sleep(0, k) }

// OnKill registers fn to run when the task is killed while parked — the
// task-substrate analogue of a Proc's deferred cleanup unwinding on Kill.
func (t *Task) OnKill(fn func()) { t.onKill = fn }

// Kill retires the task immediately: its waiter (if parked) is removed, the
// OnKill hook runs, and any already-scheduled wake becomes a no-op. Killing
// a finished task is a no-op.
func (t *Task) Kill() { t.kill() }

func (t *Task) kill() {
	if t.done {
		return
	}
	t.killed = true
	if on := t.parkedOn; on != nil {
		t.parkedOn = nil
		on.unparkTask(t)
	}
	t.k = nil
	if fn := t.onKill; fn != nil {
		t.onKill = nil
		fn()
	}
	t.done = true
	t.sim.nprocs--
}

// ---------------------------------------------------------------------------
// Channel operations in continuation-passing form

// getTaskWaiter takes a waiter node for a task, lazily binding its reusable
// wake thunk the first time the node serves a task (free-listed nodes keep
// the thunk, so steady-state parking allocates nothing).
func (c *Chan[T]) getTaskWaiter(t *Task) *waiter[T] {
	w := c.getWaiter(nil)
	w.t = t
	if w.wake == nil {
		w.wake = func() { c.wakeTask(w) }
	}
	return w
}

// wakeTask is the event body for a task-side channel rendezvous: it recycles
// the waiter node, then runs the recorded continuation with the delivered
// value (getter) or none (putter).
func (c *Chan[T]) wakeTask(w *waiter[T]) {
	t, kv, kn, v := w.t, w.kv, w.kn, w.val
	c.putWaiter(w)
	if t.killed || t.done {
		return
	}
	t.parkedOn = nil
	if kv != nil {
		kv(v)
	} else if kn != nil {
		kn()
	}
	t.maybeFinish()
}

// GetT dequeues for task t. If a value is buffered it is returned inline
// with ok=true and fn never runs — the caller continues, exactly like a Proc
// whose Get finds a buffered value and does not yield. Otherwise t parks,
// (zero, false) returns now, and fn runs inside the putter's hand-off event.
func (c *Chan[T]) GetT(t *Task, fn func(v T)) (T, bool) {
	if c.Len() > 0 {
		v := c.popBuf()
		c.admitPutter()
		return v, true
	}
	w := c.getTaskWaiter(t)
	w.kv = fn
	c.getters.push(w)
	t.park(c, nil)
	var zero T
	return zero, false
}

// GetBatchT is GetBatch for tasks: inline when a value is immediately
// available (returns n>=1, true; fn never runs), else t parks and fn runs
// with the batch size once the first value lands and the burst is drained.
func (c *Chan[T]) GetBatchT(t *Task, buf []T, fn func(n int)) (int, bool) {
	if len(buf) == 0 {
		return 0, true
	}
	if v, ok := c.TryGet(); ok {
		buf[0] = v
		return 1 + c.drainInto(buf[1:]), true
	}
	c.GetT(t, func(v T) {
		buf[0] = v
		fn(1 + c.drainInto(buf[1:]))
	})
	return 0, false
}

// drainInto fills buf with immediately available values, without blocking.
func (c *Chan[T]) drainInto(buf []T) int {
	n := 0
	for n < len(buf) {
		v, ok := c.TryGet()
		if !ok {
			break
		}
		buf[n] = v
		n++
	}
	return n
}

// PutT enqueues v for task t. It reports true when the value was accepted
// inline (room in the buffer, or a direct hand-off to a waiting getter) — the
// caller continues and k never runs. When the queue is at capacity t parks,
// false returns now, and k runs once the value is admitted.
func (c *Chan[T]) PutT(t *Task, v T, k func()) bool {
	if w := c.getters.pop(); w != nil {
		c.deliver(w, v)
		return true
	}
	if c.cap == 0 || c.Len() < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	w := c.getTaskWaiter(t)
	w.val = v
	w.kn = k
	c.putters.push(w)
	t.park(c, nil)
	return false
}

// unparkTask removes t's waiter node from either wait queue (Kill path).
func (c *Chan[T]) unparkTask(t *Task) {
	if w := c.getters.findTask(t); w != nil {
		c.getters.remove(w)
		c.putWaiter(w)
		return
	}
	if w := c.putters.findTask(t); w != nil {
		c.putters.remove(w)
		c.putWaiter(w)
	}
}

// findTask locates the waiter owned by task t, if any.
func (w *waiterQ[T]) findTask(t *Task) *waiter[T] {
	for i := w.head; i < len(w.q); i++ {
		if w.q[i].t == t {
			return w.q[i]
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Resource operations in continuation-passing form

// AcquireT takes one unit for task t: true means the unit was granted inline
// and the caller continues (k never runs); false means t parked and k runs
// inside the releasing event when a unit is handed over, FIFO with Proc
// waiters.
func (r *Resource) AcquireT(t *Task, k func()) bool {
	if r.inUse < r.total {
		r.inUse++
		return true
	}
	r.waiters = append(r.waiters, resWaiter{t: t})
	t.park(r, k)
	return false
}

// WithT holds one unit for exec of virtual time, then releases it and runs
// k. It mirrors Resource.With with a nil fn: acquire (FIFO), sleep only when
// exec > 0, release, continue. The call's (resource, exec, k) travel through
// the task's pre-bound resFrame, so the hot path allocates nothing.
func (r *Resource) WithT(t *Task, exec time.Duration, k func()) {
	f := t.resFrame()
	f.r, f.exec, f.k = r, exec, k
	if r.AcquireT(t, f.acqK) {
		f.run()
	}
}

// resFrame carries one in-flight Resource.WithT through its acquire and
// sleep continuations without per-call closures: acqK and sleepK are bound
// once when the frame is created, and both copy the frame's fields to locals
// before invoking k so a nested WithT issued from inside k can reuse it.
type resFrame struct {
	t      *Task
	r      *Resource
	exec   time.Duration
	k      func()
	acqK   func() // pre-bound f.run: continues after a parked grant
	sleepK func() // pre-bound f.done: releases the unit, then continues k
}

func (t *Task) resFrame() *resFrame {
	if t.resF == nil {
		f := &resFrame{t: t}
		f.acqK = f.run
		f.sleepK = f.done
		t.resF = f
	}
	return t.resF
}

// run holds the unit for exec: one scheduler slot when exec > 0 (matching
// Proc-side Resource.With), inline release otherwise.
func (f *resFrame) run() {
	if f.exec > 0 {
		f.t.Sleep(f.exec, f.sleepK)
		return
	}
	f.done()
}

func (f *resFrame) done() {
	r, k := f.r, f.k
	f.r, f.k = nil, nil
	r.Release()
	k()
}

// unparkTask removes t's wait-queue entry (Kill path).
func (r *Resource) unparkTask(t *Task) {
	for i := r.wHead; i < len(r.waiters); i++ {
		if r.waiters[i].t == t {
			copy(r.waiters[i:], r.waiters[i+1:])
			r.waiters[len(r.waiters)-1] = resWaiter{}
			r.waiters = r.waiters[:len(r.waiters)-1]
			if r.wHead == len(r.waiters) {
				r.waiters, r.wHead = r.waiters[:0], 0
			}
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Gate operations in continuation-passing form

// WaitT parks task t until the gate fires, unless it already fired since the
// caller observed version since — then it reports true and the caller
// continues inline (k never runs).
func (g *Gate) WaitT(t *Task, since uint64, k func()) bool {
	if g.ver != since {
		return true
	}
	w := g.getWaiter(nil)
	w.t = t
	g.waiters = append(g.waiters, w)
	t.park(g, k)
	return false
}

// WaitTimeoutT is WaitT with a deadline. The first result reports an inline
// return (k never runs): (true, true) when the gate already fired past
// since, (true, false) when d <= 0. Otherwise t parks and k(fired) runs from
// whichever of the fire or the timeout wins.
func (g *Gate) WaitTimeoutT(t *Task, since uint64, d time.Duration, k func(fired bool)) (bool, bool) {
	if g.ver != since {
		return true, true
	}
	if d <= 0 {
		return true, false
	}
	w := g.getWaiter(nil)
	w.t = t
	gen := w.gen
	g.waiters = append(g.waiters, w)
	timedOut := false
	t.park(g, func() { k(true) })
	g.sim.At(g.sim.now.Add(d), func() {
		// The fire path recycles the node (bumping gen), so a stale timeout
		// after a fire is a no-op — same guard as the Proc variant.
		if w.gen != gen || timedOut {
			return
		}
		timedOut = true
		g.remove(w)
		g.putWaiter(w)
		if t.killed || t.done {
			return
		}
		t.k = nil
		t.parkedOn = nil
		k(false)
		t.maybeFinish()
	})
	return false, false
}

// unparkTask removes t's gate waiter (Kill path).
func (g *Gate) unparkTask(t *Task) {
	for _, w := range g.waiters {
		if w.t == t {
			g.remove(w)
			g.putWaiter(w)
			return
		}
	}
}
