package sim

import (
	"testing"
	"time"
)

// Same-instant events take the immediate-queue fast path; their execution
// order must still be exactly global (at, seq) order, interleaved with heap
// events scheduled for the same instant from earlier instants.
func TestSameInstantFIFOOrder(t *testing.T) {
	s := New(Config{Seed: 1})
	var order []int
	rec := func(id int) func() { return func() { order = append(order, id) } }
	// From t=0, schedule two future events at t=1µs (heap path, seq 1 and 2).
	at := Time(time.Microsecond)
	s.At(at, rec(1))
	s.At(at, rec(2))
	// The first future event schedules more work at its own instant (immediate
	// queue, higher seq) — it must run after event 2, in FIFO order.
	s.At(at, func() {
		order = append(order, 3)
		s.At(s.Now(), rec(5))
		s.At(s.Now(), rec(6))
	})
	// Same-instant from t=0 runs first of all (t=0 < 1µs).
	s.At(s.Now(), rec(0))
	s.RunUntil(Time(time.Millisecond))
	want := []int{0, 1, 2, 3, 5, 6}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
	s.Shutdown()
}

// Pending must count immediate-queue events alongside heap events.
func TestPendingCountsImmediateQueue(t *testing.T) {
	s := New(Config{Seed: 1})
	s.At(s.Now(), func() {})
	s.At(s.Now(), func() {})
	s.At(Time(time.Microsecond), func() {})
	if got := s.Pending(); got != 3 {
		t.Fatalf("Pending() = %d, want 3 (2 immediate + 1 heap)", got)
	}
	s.RunUntil(Time(time.Millisecond))
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() after run = %d, want 0", got)
	}
	s.Shutdown()
}

// GetBatch blocks only for the first value and drains the rest of the run
// without blocking; PutBatch delivers every value in order.
func TestChanBatchOps(t *testing.T) {
	s := New(Config{Seed: 1})
	ch := NewChan[int](s, 8)
	var runs [][]int
	s.Spawn("consumer", func(p *Proc) {
		buf := make([]int, 8)
		for len(runs) < 2 {
			n := ch.GetBatch(p, buf)
			runs = append(runs, append([]int(nil), buf[:n]...))
		}
	})
	s.Spawn("producer", func(p *Proc) {
		p.Sleep(time.Microsecond)
		ch.PutBatch(p, []int{10, 11, 12})
		p.Sleep(time.Microsecond)
		ch.PutBatch(p, []int{20, 21})
	})
	s.RunUntil(Time(time.Millisecond))
	s.Shutdown()
	if len(runs) != 2 {
		t.Fatalf("consumer saw %d runs, want 2", len(runs))
	}
	flat := append(append([]int(nil), runs[0]...), runs[1]...)
	want := []int{10, 11, 12, 20, 21}
	if len(flat) != len(want) {
		t.Fatalf("values %v, want %v", runs, want)
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("values %v, want %v (order preserved)", runs, want)
		}
	}
	// The first run must have drained more than one value in one wakeup:
	// the producer's burst is same-instant, so it is all visible by the
	// time the consumer's handoff runs.
	if len(runs[0]) < 2 {
		t.Fatalf("first GetBatch drained %d values, want a multi-value run", len(runs[0]))
	}
	if got := ch.GetBatch(nil, nil); got != 0 {
		t.Fatalf("GetBatch with empty buf = %d, want 0", got)
	}
	s2 := New(Config{Seed: 1})
	s2.Shutdown()
}
