package sim

import (
	"testing"
	"time"
)

// BenchmarkSimEngine measures the raw discrete-event hot path: scheduling
// throughput (events executed per wall-clock second) and steady-state
// allocations for the three blocking substrates every simulated component is
// built from — timers, channel rendezvous, and resource handoff. One
// benchmark iteration advances one microsecond of virtual time.
//
// The unsuffixed timers/chan-pingpong/resource substrates run on the
// run-to-completion Task substrate (the execution model of the ported
// hot-path stages); the -coroutine variants keep the goroutine-per-process
// Proc substrate for comparison. Both must stay at 0 allocs/op.
func BenchmarkSimEngine(b *testing.B) {
	b.Run("timers", func(b *testing.B) {
		const nTasks = 256
		s := New(Config{Seed: 1})
		for i := 0; i < nTasks; i++ {
			s.SpawnTask("timer", func(t *Task) {
				var tick func()
				tick = func() { t.Sleep(time.Microsecond, tick) }
				tick()
			})
		}
		s.RunUntil(s.Now().Add(10 * time.Microsecond)) // settle spawns
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RunUntil(s.Now().Add(time.Microsecond))
		}
		b.StopTimer()
		reportEventRate(b, nTasks)
		s.Shutdown()
	})

	b.Run("timers-coroutine", func(b *testing.B) {
		const nProcs = 256
		s := New(Config{Seed: 1})
		for i := 0; i < nProcs; i++ {
			s.Spawn("timer", func(p *Proc) {
				for {
					p.Sleep(time.Microsecond)
				}
			})
		}
		s.RunUntil(s.Now().Add(10 * time.Microsecond)) // settle spawns
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RunUntil(s.Now().Add(time.Microsecond))
		}
		b.StopTimer()
		reportEventRate(b, nProcs)
		s.Shutdown()
	})

	b.Run("chan-pingpong", func(b *testing.B) {
		const nPairs = 64
		s := New(Config{Seed: 1})
		for i := 0; i < nPairs; i++ {
			req := NewChan[int](s, 0)
			resp := NewChan[int](s, 0)
			s.SpawnTask("client", func(t *Task) {
				var tick, doPut, afterPut func()
				var onResp func(int)
				tick = func() { t.Sleep(time.Microsecond, doPut) }
				doPut = func() {
					if req.PutT(t, 1, afterPut) {
						afterPut()
					}
				}
				afterPut = func() {
					if _, ok := resp.GetT(t, onResp); ok {
						tick()
					}
				}
				onResp = func(int) { tick() }
				tick()
			})
			s.SpawnTask("server", func(t *Task) {
				var loop func()
				var onReq func(int)
				onReq = func(v int) {
					if resp.PutT(t, v, loop) {
						loop()
					}
				}
				loop = func() {
					if v, ok := req.GetT(t, onReq); ok {
						onReq(v)
					}
				}
				loop()
			})
		}
		s.RunUntil(s.Now().Add(10 * time.Microsecond))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RunUntil(s.Now().Add(time.Microsecond))
		}
		b.StopTimer()
		// Same nominal count as the -coroutine variant so events/sec deltas
		// compare the engines, not the accounting.
		reportEventRate(b, nPairs*5)
		s.Shutdown()
	})

	b.Run("chan-pingpong-coroutine", func(b *testing.B) {
		const nPairs = 64
		s := New(Config{Seed: 1})
		for i := 0; i < nPairs; i++ {
			req := NewChan[int](s, 0)
			resp := NewChan[int](s, 0)
			s.Spawn("client", func(p *Proc) {
				for {
					p.Sleep(time.Microsecond)
					req.Put(p, 1)
					resp.Get(p)
				}
			})
			s.Spawn("server", func(p *Proc) {
				for {
					v := req.Get(p)
					resp.Put(p, v)
				}
			})
		}
		s.RunUntil(s.Now().Add(10 * time.Microsecond))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RunUntil(s.Now().Add(time.Microsecond))
		}
		b.StopTimer()
		// Per virtual µs and pair: timer step, put handoff, get handoff,
		// plus the server's two rendezvous steps — ~5 proc steps.
		reportEventRate(b, nPairs*5)
		s.Shutdown()
	})

	// echo is the batched hot path: each client bursts a window of requests
	// as same-instant delivery callbacks (the shape of fabric/NIC delivery
	// events), the server drains the whole run with one GetBatch wakeup and
	// echoes it back the same way. The same-timestamp burst rides the
	// scheduler's FIFO fast path (O(1) per event instead of O(log n) heap
	// ops) and amortizes one goroutine handoff over the run — the two
	// mechanisms the end-to-end batching work (BatchConfig) leans on.
	// events/sec here is computed from the engine's actual executed-event
	// counter, not a nominal per-cycle estimate.
	b.Run("echo", func(b *testing.B) {
		const (
			nPairs = 64
			burst  = 8
		)
		s := New(Config{Seed: 1})
		for i := 0; i < nPairs; i++ {
			req := NewChan[int](s, burst)
			resp := NewChan[int](s, burst)
			// Hoisted so the steady state allocates no closures.
			deliverReq := func() { req.TryPut(1) }
			deliverResp := func() { resp.TryPut(1) }
			s.Spawn("client", func(p *Proc) {
				in := make([]int, burst)
				for {
					p.Sleep(time.Microsecond)
					for j := 0; j < burst; j++ {
						s.At(p.Now(), deliverReq)
					}
					for got := 0; got < burst; {
						got += resp.GetBatch(p, in[:burst-got])
					}
				}
			})
			s.Spawn("server", func(p *Proc) {
				buf := make([]int, burst)
				for {
					n := req.GetBatch(p, buf)
					for j := 0; j < n; j++ {
						s.At(p.Now(), deliverResp)
					}
				}
			})
		}
		s.RunUntil(s.Now().Add(10 * time.Microsecond))
		b.ReportAllocs()
		b.ResetTimer()
		start := s.Executed()
		for i := 0; i < b.N; i++ {
			s.RunUntil(s.Now().Add(time.Microsecond))
		}
		b.StopTimer()
		if b.N > 0 {
			executed := s.Executed() - start
			reportEventRate(b, int(executed)/b.N)
		}
		s.Shutdown()
	})

	b.Run("resource", func(b *testing.B) {
		const nTasks = 128
		s := New(Config{Seed: 1})
		res := NewResource(s, nTasks/4)
		for i := 0; i < nTasks; i++ {
			s.SpawnTask("worker", func(t *Task) {
				var loop, held, release func()
				loop = func() {
					if res.AcquireT(t, held) {
						held()
					}
				}
				held = func() { t.Sleep(time.Microsecond, release) }
				release = func() {
					res.Release()
					loop()
				}
				loop()
			})
		}
		s.RunUntil(s.Now().Add(10 * time.Microsecond))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RunUntil(s.Now().Add(time.Microsecond))
		}
		b.StopTimer()
		// nTasks/4 units cycle per µs: sleep event + release handoff each.
		reportEventRate(b, nTasks/2)
		s.Shutdown()
	})

	b.Run("resource-coroutine", func(b *testing.B) {
		const nProcs = 128
		s := New(Config{Seed: 1})
		res := NewResource(s, nProcs/4)
		for i := 0; i < nProcs; i++ {
			s.Spawn("worker", func(p *Proc) {
				for {
					res.With(p, time.Microsecond, nil)
				}
			})
		}
		s.RunUntil(s.Now().Add(10 * time.Microsecond))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RunUntil(s.Now().Add(time.Microsecond))
		}
		b.StopTimer()
		// nProcs/4 units cycle per µs: sleep event + release handoff each.
		reportEventRate(b, nProcs/2)
		s.Shutdown()
	})

	b.Run("gate-doorbell", func(b *testing.B) {
		const nQueues = 64
		s := New(Config{Seed: 1})
		gates := make([]*Gate, nQueues)
		for i := range gates {
			gates[i] = NewGate(s)
			g := gates[i]
			s.Spawn("poller", func(p *Proc) {
				for {
					v := g.Version()
					g.Wait(p, v)
				}
			})
		}
		s.Spawn("producer", func(p *Proc) {
			for {
				p.Sleep(time.Microsecond)
				for _, g := range gates {
					g.Fire()
				}
			}
		})
		s.RunUntil(s.Now().Add(10 * time.Microsecond))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RunUntil(s.Now().Add(time.Microsecond))
		}
		b.StopTimer()
		reportEventRate(b, nQueues+1)
		s.Shutdown()
	})
}

// reportEventRate converts per-iteration event counts into events/sec.
func reportEventRate(b *testing.B, eventsPerOp int) {
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(eventsPerOp)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	}
}
