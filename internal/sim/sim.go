// Package sim implements a deterministic discrete-event simulator.
//
// The simulator advances a virtual clock by executing events in
// (timestamp, sequence-number) order. On top of the raw event loop it offers
// two process substrates that coexist on the same heap and interoperate
// freely:
//
//   - Coroutine Procs (Spawn): each process is a goroutine, but the
//     scheduler guarantees that at most one goroutine belonging to a
//     simulation runs at any instant, handing control back and forth
//     explicitly through the per-proc resume channel and the shared yield
//     channel. Natural straight-line code; two channel operations and a
//     goroutine switch per scheduler step.
//   - Run-to-completion Tasks (SpawnTask, see task.go): state-machine
//     processes whose continuations the scheduler calls inline in its event
//     loop — zero goroutine switches, zero channel operations per step.
//     Continuation-passing style at blocking points; built for always-on
//     hot-path processes.
//
// Both substrates share channels, gates, resources, and the seeded random
// source, and consume scheduler sequence numbers identically, so a process
// ported between them leaves simulation output byte-identical. Together with
// the seeded random source this makes every simulation bit-reproducible.
//
// The event loop is built for throughput: events are plain values in an
// inlined 4-ary min-heap (no container/heap interface boxing, no per-event
// allocation), resuming a blocked Proc schedules a direct proc-step event
// instead of a closure, waking a Task schedules its one pre-bound activation
// thunk, and the waiter nodes of channels and gates recycle through free
// lists. Steady-state scheduling therefore allocates nothing on either
// substrate.
//
// Typical usage:
//
//	s := sim.New(sim.Config{Seed: 1})
//	s.Spawn("server", func(p *sim.Proc) {
//	    for {
//	        req := queue.Get(p)    // blocks in virtual time
//	        p.Sleep(10 * time.Microsecond)
//	        replyTo.Put(p, req)
//	    }
//	})
//	s.RunUntil(sim.Time(time.Second))
//	s.Shutdown()
package sim

import (
	"fmt"
	"math/rand/v2"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration converts d to a Time span. It exists for symmetry with time
// package arithmetic: Time(0).Add(d).
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed between u and t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the time like a time.Duration for readability.
func (t Time) String() string { return time.Duration(t).String() }

// Config parameterizes a simulation.
type Config struct {
	// Seed for the deterministic random source. The zero seed is valid and
	// distinct from seed 1.
	Seed uint64
}

// Sim is a single-threaded discrete-event simulation instance. A Sim must not
// be shared across OS concurrency: all interaction happens either before Run,
// from inside event callbacks, or from processes spawned on this Sim.
type Sim struct {
	now    Time
	events []event // 4-ary min-heap ordered by (at, seq)
	seq    uint64
	rng    *rand.Rand

	// iq is the same-instant fast path: events scheduled at exactly the
	// current timestamp — Proc resume steps, Task activations, and plain
	// callbacks alike — land in this flat FIFO instead of the heap, so a
	// k-event burst of immediate handoffs (channel rendezvous, gate fires,
	// resource releases) costs O(k) appends and pops rather than O(k log n)
	// heap operations. Entries always satisfy at == now and carry strictly
	// increasing seq values greater than any same-timestamp heap entry, so
	// draining iq in FIFO order — after any older heap events at the same
	// instant — preserves the exact (at, seq) total order of a pure heap:
	// results are byte-identical. Same-instant events from the two process
	// substrates have no tie-break of their own: a Task activation and a
	// Proc step at the same timestamp run purely in seq order, i.e. the
	// order their wakes were scheduled. iqHead indexes the next entry; the
	// slice resets (keeping capacity) whenever it fully drains, which
	// happens before the clock can advance.
	iq     []event
	iqHead int

	executed uint64

	// timeRegressions counts events that executed with a timestamp earlier
	// than the clock — impossible in a correct heap, so any non-zero value
	// is an ordering bug. Maintained unconditionally: it is one branch per
	// event, and the invariant layer (internal/check) asserts it is zero.
	timeRegressions uint64

	// onShutdown callbacks run once inside Shutdown, after every process has
	// unwound but before the event heap is dropped — the point where
	// end-of-run invariants (request conservation, in-flight accounting) see
	// final, stable state.
	onShutdown []func()
	shutdown   bool

	// yield is signalled by the currently running coroutine process when it
	// blocks or exits, returning control to the scheduler. Tasks never touch
	// it: their continuations run inline in the event loop.
	yield chan struct{}

	// order lists spawned processes and tasks in spawn order (lazily
	// compacted), so Shutdown unwinds them deterministically regardless of
	// substrate.
	order    []runner
	nprocs   int
	stopping bool
}

// runner is one spawn-order entry: a coroutine Proc or a run-to-completion
// Task (exactly one field is set).
type runner struct {
	p *Proc
	t *Task
}

// exited reports whether the entry's process has finished.
func (r runner) exited() bool {
	if r.p != nil {
		return r.p.done
	}
	return r.t.done
}

// addRunner tracks spawn order for deterministic Shutdown; it compacts the
// exited entries once they dominate so long simulations with process churn
// stay bounded.
func (s *Sim) addRunner(r runner) {
	if len(s.order) >= 64 && len(s.order) >= 2*s.nprocs {
		live := s.order[:0]
		for _, q := range s.order {
			if !q.exited() {
				live = append(live, q)
			}
		}
		for i := len(live); i < len(s.order); i++ {
			s.order[i] = runner{}
		}
		s.order = live
	}
	s.order = append(s.order, r)
	s.nprocs++
}

// New creates an empty simulation at time zero.
func New(cfg Config) *Sim {
	return &Sim{
		rng:   rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15)),
		yield: make(chan struct{}, 1),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Executed reports the total number of events executed so far.
func (s *Sim) Executed() uint64 { return s.executed }

// TimeRegressions reports how many events ran with a timestamp before the
// clock. Always zero unless the event heap's total order is broken.
func (s *Sim) TimeRegressions() uint64 { return s.timeRegressions }

// OnShutdown registers fn to run once during Shutdown, after all processes
// have unwound and before the event heap is dropped. Hooks run in
// registration order.
func (s *Sim) OnShutdown(fn func()) { s.onShutdown = append(s.onShutdown, fn) }

// event is one scheduled entry. Resuming a blocked coroutine process stores
// the process directly; task activations and channel wake thunks carry a
// pre-bound func; only irregular callbacks (timeouts, user events) carry a
// fresh closure. Events are heap values, never allocated individually.
type event struct {
	at   Time
	seq  uint64
	proc *Proc  // non-nil: step this process
	fn   func() // otherwise: run this callback
}

// eventLess orders events by (timestamp, sequence): the unique total order
// that makes runs bit-reproducible regardless of heap shape.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e into the 4-ary heap (inlined sift-up).
func (s *Sim) push(e event) {
	h := append(s.events, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.events = h
}

// popMin removes and returns the earliest event (inlined sift-down). The
// caller must have checked len(s.events) > 0.
func (s *Sim) popMin() event {
	h := s.events
	min := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{} // release proc/closure references
	h = h[:last]
	i := 0
	for {
		first := i<<2 + 1
		if first >= len(h) {
			break
		}
		m := first
		end := first + 4
		if end > len(h) {
			end = len(h)
		}
		for c := first + 1; c < end; c++ {
			if eventLess(&h[c], &h[m]) {
				m = c
			}
		}
		if !eventLess(&h[m], &h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	s.events = h
	return min
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that is always a logic error in a discrete-event model.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	if t == s.now {
		s.iq = append(s.iq, event{at: t, seq: s.seq, fn: fn})
		return
	}
	s.push(event{at: t, seq: s.seq, fn: fn})
}

// atStep schedules a resume of p at t — the allocation-free fast path used
// by every Proc-blocking primitive in this package.
func (s *Sim) atStep(t Time, p *Proc) {
	s.seq++
	if t == s.now {
		s.iq = append(s.iq, event{at: t, seq: s.seq, proc: p})
		return
	}
	s.push(event{at: t, seq: s.seq, proc: p})
}

// atFn schedules fn at t — the internal hand-off path for task activations
// and waiter wake thunks. These are pre-bound funcs, so this path is as
// allocation-free as atStep; it skips At's past-check because callers always
// schedule at or after now.
func (s *Sim) atFn(t Time, fn func()) {
	s.seq++
	if t == s.now {
		s.iq = append(s.iq, event{at: t, seq: s.seq, fn: fn})
		return
	}
	s.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Run executes events until the event heap is empty.
func (s *Sim) Run() { s.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes events with timestamps <= limit, advancing the clock. It
// returns when the heap is empty or the next event lies beyond limit; in the
// latter case the clock is left at limit.
func (s *Sim) RunUntil(limit Time) {
	for {
		if s.iqHead < len(s.iq) {
			// The same-instant FIFO has work at the current timestamp. It
			// runs next unless the heap still holds an older event — same
			// instant, smaller seq, pushed before the clock arrived here —
			// in which case that event must go first to preserve the global
			// (at, seq) order.
			if len(s.events) > 0 && eventLess(&s.events[0], &s.iq[s.iqHead]) {
				s.runEvent(s.popMin())
				continue
			}
			e := s.iq[s.iqHead]
			s.iq[s.iqHead] = event{} // release proc/closure references
			s.iqHead++
			if s.iqHead == len(s.iq) {
				s.iq = s.iq[:0]
				s.iqHead = 0
			}
			s.runEvent(e)
			continue
		}
		if len(s.events) == 0 {
			break
		}
		if s.events[0].at > limit {
			s.now = limit
			return
		}
		s.runEvent(s.popMin())
	}
	if s.now < limit && limit < Time(1<<62-1) {
		s.now = limit
	}
}

// runEvent advances the clock to e.at and executes e.
func (s *Sim) runEvent(e event) {
	if e.at < s.now {
		s.timeRegressions++
	}
	s.now = e.at
	s.executed++
	if e.proc != nil {
		s.step(e.proc)
	} else {
		e.fn()
	}
}

// Pending reports the number of scheduled events.
func (s *Sim) Pending() int { return len(s.events) + len(s.iq) - s.iqHead }

// ---------------------------------------------------------------------------
// Processes

// Proc is a simulated process: a goroutine that runs under the simulation
// scheduler. All blocking methods (Sleep, Chan.Get, Resource.Acquire, ...)
// take the Proc so that control can be handed back to the scheduler.
type Proc struct {
	sim    *Sim
	name   string
	resume chan struct{}
	killed bool
	done   bool
}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time (convenience for p.Sim().Now()).
func (p *Proc) Now() Time { return p.sim.now }

// killedErr is the panic payload used to unwind killed processes.
type killedErr struct{ name string }

func (k killedErr) Error() string { return "sim: process " + k.name + " killed" }

// Spawn starts fn as a new process at the current virtual time. The process
// begins executing when the scheduler reaches its start event.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{}, 1)}
	s.addRunner(runner{p: p})
	go func() {
		<-p.resume
		defer func() {
			p.done = true
			s.nprocs--
			if r := recover(); r != nil {
				if _, ok := r.(killedErr); ok {
					s.yield <- struct{}{}
					return
				}
				// Re-panic on the scheduler side would deadlock; print and
				// crash the whole program instead, preserving the trace.
				panic(r)
			}
			s.yield <- struct{}{}
		}()
		fn(p)
	}()
	s.atStep(s.now, p)
	return p
}

// step transfers control to p and blocks until p yields or exits.
func (s *Sim) step(p *Proc) {
	if p.done {
		return
	}
	if s.stopping {
		p.killed = true
	}
	p.resume <- struct{}{}
	<-s.yield
}

// block suspends the calling process until the scheduler resumes it.
func (p *Proc) block() {
	p.sim.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedErr{p.name})
	}
}

// Sleep suspends the process for d of virtual time. Negative or zero
// durations still yield to the scheduler at the current timestamp.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := p.sim
	s.atStep(s.now.Add(d), p)
	p.block()
}

// Yield gives other events scheduled at the current instant a chance to run.
func (p *Proc) Yield() { p.Sleep(0) }

// Kill marks p so that its next blocking operation unwinds the process.
// Killing an exited process is a no-op.
func (p *Proc) Kill() { p.killed = true }

// Shutdown kills all live processes and tasks, unwinding each at its
// blocking point in spawn order, and drains any events they schedule. Call
// after RunUntil to avoid leaking goroutines; the Sim must not be used
// afterwards.
func (s *Sim) Shutdown() {
	s.stopping = true
	for _, r := range s.order {
		if r.p != nil {
			r.p.killed = true
		} else {
			r.t.killed = true
		}
	}
	// Unwind every blocked process in spawn order. Coroutine procs blocked
	// on channels/resources are tracked there; ones blocked on timers will
	// be woken by their scheduled events, but those may be far in the
	// future, so we resume each live proc directly. Tasks have no stack to
	// unwind: killing one deregisters its waiter and runs its OnKill hook.
	for _, r := range s.order {
		if r.p != nil {
			s.step(r.p)
		} else {
			r.t.kill()
		}
	}
	if !s.shutdown {
		s.shutdown = true
		for _, fn := range s.onShutdown {
			fn()
		}
		s.onShutdown = nil
	}
	// Drop remaining events; their closures may reference dead procs.
	s.events = nil
	s.iq = nil
	s.iqHead = 0
	s.order = nil
}

// Live reports the number of live (spawned, not yet exited) processes.
func (s *Sim) Live() int { return s.nprocs }

// ---------------------------------------------------------------------------
// Channels

// Chan is a FIFO message queue operating in virtual time. A capacity of 0
// means unbounded. Chan is the simulation analogue of a Go channel; all
// operations must be called from processes of the same Sim.
type Chan[T any] struct {
	sim     *Sim
	cap     int
	buf     []T // FIFO buffer; bufHead is the index of the oldest item
	bufHead int
	getters waiterQ[T]
	putters waiterQ[T]
	free    []*waiter[T]
}

// NewChan creates a queue. capacity == 0 means unbounded (Put never blocks).
func NewChan[T any](s *Sim, capacity int) *Chan[T] {
	return &Chan[T]{sim: s, cap: capacity}
}

type waiter[T any] struct {
	p   *Proc // coroutine waiter: the proc to step on rendezvous
	t   *Task // task waiter: the task whose continuation the wake runs
	val T     // value being delivered (getter: filled by putter; putter: value to enqueue)
	ok  bool  // set when the rendezvous happened
	// kv/kn are the task-side continuations: kv receives the delivered
	// value (getter), kn resumes a parked putter. wake is the node's
	// reusable event thunk, bound once per node (see getTaskWaiter) and
	// kept across the free list so steady-state parking allocates nothing.
	kv   func(T)
	kn   func()
	wake func()
	// gen guards recycled waiters against stale timeout events: it is
	// bumped when the waiter returns to the free list, so a pending timeout
	// closure that captured the old generation becomes a no-op.
	gen uint64
}

// getWaiter takes a node from the free list (or allocates the first time).
func (c *Chan[T]) getWaiter(p *Proc) *waiter[T] {
	if n := len(c.free); n > 0 {
		w := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		w.p = p
		return w
	}
	return &waiter[T]{p: p}
}

// putWaiter recycles a node whose wait has fully resolved. The wake thunk
// survives recycling (it is bound to the node, not the wait).
func (c *Chan[T]) putWaiter(w *waiter[T]) {
	var zero T
	w.p, w.t, w.kv, w.kn, w.val, w.ok = nil, nil, nil, nil, zero, false
	w.gen++
	c.free = append(c.free, w)
}

// waiterQ is a FIFO of waiters that reuses its backing array: popping
// advances a head index instead of re-slicing, and the array rewinds whenever
// the queue drains, so steady-state churn never reallocates.
type waiterQ[T any] struct {
	q    []*waiter[T]
	head int
}

func (w *waiterQ[T]) push(x *waiter[T]) { w.q = append(w.q, x) }
func (w *waiterQ[T]) pop() *waiter[T] {
	if w.head == len(w.q) {
		return nil
	}
	x := w.q[w.head]
	w.q[w.head] = nil
	w.head++
	if w.head == len(w.q) {
		w.q, w.head = w.q[:0], 0
	} else if w.head > 32 && w.head*2 >= len(w.q) {
		// Queue stays non-empty: compact (amortized O(1)) so the backing
		// array stays bounded.
		n := copy(w.q, w.q[w.head:])
		for i := n; i < len(w.q); i++ {
			w.q[i] = nil
		}
		w.q, w.head = w.q[:n], 0
	}
	return x
}
func (w *waiterQ[T]) remove(x *waiter[T]) {
	for i := w.head; i < len(w.q); i++ {
		if w.q[i] == x {
			copy(w.q[i:], w.q[i+1:])
			w.q[len(w.q)-1] = nil
			w.q = w.q[:len(w.q)-1]
			if w.head == len(w.q) {
				w.q, w.head = w.q[:0], 0
			}
			return
		}
	}
}
func (w *waiterQ[T]) len() int { return len(w.q) - w.head }

// Len reports the number of buffered items.
func (c *Chan[T]) Len() int { return len(c.buf) - c.bufHead }

// popBuf removes and returns the oldest buffered item, rewinding the backing
// array once the buffer drains so steady-state traffic never reallocates.
func (c *Chan[T]) popBuf() T {
	v := c.buf[c.bufHead]
	var zero T
	c.buf[c.bufHead] = zero
	c.bufHead++
	if c.bufHead == len(c.buf) {
		c.buf, c.bufHead = c.buf[:0], 0
	} else if c.bufHead > 32 && c.bufHead*2 >= len(c.buf) {
		// Buffer stays non-empty: compact (amortized O(1)) so the backing
		// array stays bounded.
		n := copy(c.buf, c.buf[c.bufHead:])
		for i := n; i < len(c.buf); i++ {
			c.buf[i] = zero
		}
		c.buf, c.bufHead = c.buf[:n], 0
	}
	return v
}

// deliver hands v to a popped getter, waking it on its own substrate: a
// proc-step event for coroutine waiters, the node's wake thunk for task
// waiters. Both consume exactly one scheduler slot.
func (c *Chan[T]) deliver(w *waiter[T], v T) {
	w.val, w.ok = v, true
	if w.p != nil {
		c.sim.atStep(c.sim.now, w.p)
	} else {
		c.sim.atFn(c.sim.now, w.wake)
	}
}

// Put enqueues v, blocking while the queue is at capacity.
func (c *Chan[T]) Put(p *Proc, v T) {
	if w := c.getters.pop(); w != nil {
		// Direct hand-off to a waiting getter.
		c.deliver(w, v)
		return
	}
	if c.cap == 0 || c.Len() < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	w := c.getWaiter(p)
	w.val = v
	c.putters.push(w)
	defer func() {
		if !w.ok {
			// Unwound by Kill before the rendezvous: leave no dangling
			// queue entry behind.
			c.putters.remove(w)
		}
		c.putWaiter(w)
	}()
	p.block()
}

// TryPut enqueues v if the queue has room or a waiting getter, without
// blocking. It reports whether the value was accepted.
func (c *Chan[T]) TryPut(v T) bool {
	if w := c.getters.pop(); w != nil {
		c.deliver(w, v)
		return true
	}
	if c.cap == 0 || c.Len() < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// admitPutter moves a blocked putter's value into the freed buffer slot.
func (c *Chan[T]) admitPutter() {
	if w := c.putters.pop(); w != nil {
		w.ok = true
		c.buf = append(c.buf, w.val)
		if w.p != nil {
			c.sim.atStep(c.sim.now, w.p)
		} else {
			c.sim.atFn(c.sim.now, w.wake)
		}
	}
}

// Get dequeues the oldest item, blocking while the queue is empty.
func (c *Chan[T]) Get(p *Proc) T {
	if c.Len() > 0 {
		v := c.popBuf()
		c.admitPutter()
		return v
	}
	w := c.getWaiter(p)
	c.getters.push(w)
	defer func() {
		if !w.ok {
			c.getters.remove(w)
		}
		c.putWaiter(w)
	}()
	p.block()
	return w.val
}

// GetBatch dequeues up to len(buf) items: it blocks for the first, then
// drains whatever else is immediately available without blocking or letting
// the clock advance. Returns the number of items stored — at least 1 for a
// non-empty buf. One wakeup absorbs a whole queued burst, which is what
// makes a k-message drain cost O(1) scheduler handoffs instead of O(k).
func (c *Chan[T]) GetBatch(p *Proc, buf []T) int {
	if len(buf) == 0 {
		return 0
	}
	buf[0] = c.Get(p)
	n := 1
	for n < len(buf) {
		v, ok := c.TryGet()
		if !ok {
			break
		}
		buf[n] = v
		n++
	}
	return n
}

// PutBatch enqueues every value in order, blocking as capacity requires.
// With the same-instant scheduler fast path, a batch put into a drained
// queue wakes the consumer once and buffers the rest.
func (c *Chan[T]) PutBatch(p *Proc, vals []T) {
	for _, v := range vals {
		c.Put(p, v)
	}
}

// TryGet dequeues without blocking, reporting whether a value was available.
func (c *Chan[T]) TryGet() (T, bool) {
	if c.Len() == 0 {
		var zero T
		return zero, false
	}
	v := c.popBuf()
	c.admitPutter()
	return v, true
}

// GetTimeout dequeues with a deadline. The boolean result reports whether a
// value was received (false means the timeout elapsed first).
func (c *Chan[T]) GetTimeout(p *Proc, d time.Duration) (T, bool) {
	var zero T
	if v, ok := c.TryGet(); ok {
		return v, true
	}
	if d <= 0 {
		return zero, false
	}
	w := c.getWaiter(p)
	gen := w.gen
	c.getters.push(w)
	timedOut := false
	c.sim.At(c.sim.now.Add(d), func() {
		if w.gen != gen || w.ok || timedOut {
			return
		}
		timedOut = true
		c.getters.remove(w)
		c.sim.step(w.p)
	})
	defer func() {
		if !w.ok && !timedOut {
			c.getters.remove(w)
		}
		c.putWaiter(w)
	}()
	p.block()
	if timedOut {
		return zero, false
	}
	return w.val, true
}

// ---------------------------------------------------------------------------
// Resources (counting semaphores with FIFO waiters)

// Resource models a pool of n interchangeable units (CPU cores, DMA engines,
// driver locks...). Acquire blocks until a unit is free; units are granted in
// FIFO order.
type Resource struct {
	sim     *Sim
	total   int
	inUse   int
	waiters []resWaiter // FIFO across both substrates; wHead indexes the oldest
	wHead   int
}

// resWaiter is one blocked acquirer: a coroutine proc or a task (whose
// continuation was armed by AcquireT). Exactly one field is set.
type resWaiter struct {
	p *Proc
	t *Task
}

// NewResource creates a resource pool with n units. n must be positive.
func NewResource(s *Sim, n int) *Resource {
	if n <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{sim: s, total: n}
}

// Acquire takes one unit, blocking until available.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.total {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, resWaiter{p: p})
	p.block()
}

// TryAcquire takes one unit if immediately available.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.total {
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit, waking the oldest waiter if any.
func (r *Resource) Release() {
	if r.wHead < len(r.waiters) {
		w := r.waiters[r.wHead]
		r.waiters[r.wHead] = resWaiter{}
		r.wHead++
		if r.wHead == len(r.waiters) {
			r.waiters, r.wHead = r.waiters[:0], 0
		} else if r.wHead > 32 && r.wHead*2 >= len(r.waiters) {
			// Never-empty wait queue: compact (amortized O(1)) so the
			// backing array stays bounded.
			n := copy(r.waiters, r.waiters[r.wHead:])
			for i := n; i < len(r.waiters); i++ {
				r.waiters[i] = resWaiter{}
			}
			r.waiters, r.wHead = r.waiters[:n], 0
		}
		// Unit passes directly to the waiter; inUse stays constant.
		if w.p != nil {
			r.sim.atStep(r.sim.now, w.p)
		} else {
			r.sim.atFn(r.sim.now, w.t.runEv)
		}
		return
	}
	if r.inUse == 0 {
		panic("sim: Release without Acquire")
	}
	r.inUse--
}

// InUse reports the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Waiting reports the number of blocked acquirers.
func (r *Resource) Waiting() int { return len(r.waiters) - r.wHead }

// With runs fn while holding one unit, charging exec virtual time.
func (r *Resource) With(p *Proc, exec time.Duration, fn func()) {
	r.Acquire(p)
	defer r.Release()
	if exec > 0 {
		p.Sleep(exec)
	}
	if fn != nil {
		fn()
	}
}

// ---------------------------------------------------------------------------
// Signals

// Signal is a broadcast edge-trigger: Wait blocks until the next Fire.
type Signal struct {
	sim     *Sim
	waiters []*Proc
}

// NewSignal creates a signal bound to s.
func NewSignal(s *Sim) *Signal { return &Signal{sim: s} }

// Wait blocks the calling process until the next Fire.
func (sg *Signal) Wait(p *Proc) {
	sg.waiters = append(sg.waiters, p)
	p.block()
}

// Fire wakes every currently blocked waiter at the current instant.
func (sg *Signal) Fire() {
	ws := sg.waiters
	for i, w := range ws {
		sg.sim.atStep(sg.sim.now, w)
		ws[i] = nil
	}
	sg.waiters = ws[:0] // keep the backing array for the next round of waiters
}

// Waiting reports the number of processes blocked on the signal.
func (sg *Signal) Waiting() int { return len(sg.waiters) }

// RunUntilCond advances the simulation in check-sized increments until cond
// becomes true or limit is reached. It lets tests and experiments stop as
// soon as their workload completes instead of simulating idle polling.
func (s *Sim) RunUntilCond(limit Time, check time.Duration, cond func() bool) {
	for s.now < limit && !cond() {
		next := s.now.Add(check)
		if next > limit {
			next = limit
		}
		s.RunUntil(next)
	}
}

// ---------------------------------------------------------------------------
// Gates (doorbell parking)

// Gate is a level-safe, versioned broadcast: every Fire bumps the version
// and wakes current waiters. Callers snapshot Version before checking their
// condition and pass it to Wait, which returns immediately if anything fired
// in between — eliminating the lost-wakeup race of edge-triggered signals.
//
// Gates are the simulator's doorbell-parking mechanism: simulated busy-poll
// loops (GPU threadblocks watching doorbells, the Remote MQ Manager sweeping
// TX rings) park on a gate instead of scheduling a wakeup event every poll
// interval while their queues are empty; the caller re-adds the modelled
// polling detection latency after waking, so virtual-time results are
// identical to the spinning implementation.
type Gate struct {
	sim     *Sim
	ver     uint64
	waiters []*gateWaiter
	free    []*gateWaiter
}

type gateWaiter struct {
	p     *Proc // coroutine waiter (nil for task waiters)
	t     *Task // task waiter; its continuation was armed by WaitT
	woken bool
	gen   uint64 // guards recycled waiters against stale timeout events
}

// NewGate creates a gate bound to s.
func NewGate(s *Sim) *Gate { return &Gate{sim: s} }

// Version returns the current fire count.
func (g *Gate) Version() uint64 { return g.ver }

// Waiting reports the number of blocked waiters.
func (g *Gate) Waiting() int { return len(g.waiters) }

// Fire bumps the version and wakes every current waiter.
func (g *Gate) Fire() {
	g.ver++
	ws := g.waiters
	for i, w := range ws {
		w.woken = true
		if w.p != nil {
			g.sim.atStep(g.sim.now, w.p)
		} else {
			// The task's continuation lives in the task, not the node, so
			// the node recycles immediately (bumping gen, which neutralizes
			// any pending WaitTimeoutT timeout for this wait).
			t := w.t
			g.putWaiter(w)
			g.sim.atFn(g.sim.now, t.runEv)
		}
		ws[i] = nil
	}
	g.waiters = ws[:0] // keep the backing array for the next round of waiters
}

func (g *Gate) remove(w *gateWaiter) {
	for i, x := range g.waiters {
		if x == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return
		}
	}
}

// getWaiter takes a node from the free list (or allocates the first time).
func (g *Gate) getWaiter(p *Proc) *gateWaiter {
	if n := len(g.free); n > 0 {
		w := g.free[n-1]
		g.free[n-1] = nil
		g.free = g.free[:n-1]
		w.p = p
		return w
	}
	return &gateWaiter{p: p}
}

// putWaiter recycles a node whose wait has fully resolved.
func (g *Gate) putWaiter(w *gateWaiter) {
	w.p, w.t, w.woken = nil, nil, false
	w.gen++
	g.free = append(g.free, w)
}

// Wait blocks until the gate fires, unless it already fired since the caller
// observed version since (in which case it returns immediately).
func (g *Gate) Wait(p *Proc, since uint64) {
	if g.ver != since {
		return
	}
	w := g.getWaiter(p)
	g.waiters = append(g.waiters, w)
	defer func() {
		if !w.woken {
			g.remove(w)
		}
		g.putWaiter(w)
	}()
	p.block()
}

// WaitTimeout is Wait with a deadline; it reports whether the gate fired
// (true) or the timeout elapsed first (false).
func (g *Gate) WaitTimeout(p *Proc, since uint64, d time.Duration) bool {
	if g.ver != since {
		return true
	}
	if d <= 0 {
		return false
	}
	timedOut := false
	w := g.getWaiter(p)
	gen := w.gen
	g.waiters = append(g.waiters, w)
	g.sim.At(g.sim.now.Add(d), func() {
		if w.gen != gen || w.woken || timedOut {
			return
		}
		timedOut = true
		g.remove(w)
		g.sim.step(p)
	})
	fired := false
	defer func() {
		fired = w.woken
		if !w.woken && !timedOut {
			g.remove(w)
		}
		g.putWaiter(w)
	}()
	p.block()
	_ = fired
	return w.woken
}
