// Package sim implements a deterministic discrete-event simulator.
//
// The simulator advances a virtual clock by executing events in
// (timestamp, sequence-number) order. On top of the raw event loop it offers
// a coroutine-style process model: each process is a goroutine, but the
// scheduler guarantees that at most one goroutine belonging to a simulation
// runs at any instant, handing control back and forth explicitly. Together
// with the seeded random source this makes every simulation bit-reproducible.
//
// Typical usage:
//
//	s := sim.New(sim.Config{Seed: 1})
//	s.Spawn("server", func(p *sim.Proc) {
//	    for {
//	        req := queue.Get(p)    // blocks in virtual time
//	        p.Sleep(10 * time.Microsecond)
//	        replyTo.Put(p, req)
//	    }
//	})
//	s.RunUntil(sim.Time(time.Second))
//	s.Shutdown()
package sim

import (
	"container/heap"
	"fmt"
	"math/rand/v2"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration converts d to a Time span. It exists for symmetry with time
// package arithmetic: Time(0).Add(d).
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed between u and t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the time like a time.Duration for readability.
func (t Time) String() string { return time.Duration(t).String() }

// Config parameterizes a simulation.
type Config struct {
	// Seed for the deterministic random source. The zero seed is valid and
	// distinct from seed 1.
	Seed uint64
}

// Sim is a single-threaded discrete-event simulation instance. A Sim must not
// be shared across OS concurrency: all interaction happens either before Run,
// from inside event callbacks, or from processes spawned on this Sim.
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand

	// yield is signalled by the currently running process when it blocks or
	// exits, returning control to the scheduler.
	yield chan struct{}

	procs    map[*Proc]struct{}
	nprocs   int
	stopping bool
}

// New creates an empty simulation at time zero.
func New(cfg Config) *Sim {
	return &Sim{
		rng:   rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15)),
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that is always a logic error in a discrete-event model.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Run executes events until the event heap is empty.
func (s *Sim) Run() { s.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes events with timestamps <= limit, advancing the clock. It
// returns when the heap is empty or the next event lies beyond limit; in the
// latter case the clock is left at limit.
func (s *Sim) RunUntil(limit Time) {
	for len(s.events) > 0 {
		next := s.events[0]
		if next.at > limit {
			s.now = limit
			return
		}
		heap.Pop(&s.events)
		s.now = next.at
		next.fn()
	}
	if s.now < limit && limit < Time(1<<62-1) {
		s.now = limit
	}
}

// Pending reports the number of scheduled events.
func (s *Sim) Pending() int { return len(s.events) }

// ---------------------------------------------------------------------------
// Processes

// Proc is a simulated process: a goroutine that runs under the simulation
// scheduler. All blocking methods (Sleep, Chan.Get, Resource.Acquire, ...)
// take the Proc so that control can be handed back to the scheduler.
type Proc struct {
	sim    *Sim
	name   string
	resume chan struct{}
	killed bool
	done   bool
}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time (convenience for p.Sim().Now()).
func (p *Proc) Now() Time { return p.sim.now }

// killedErr is the panic payload used to unwind killed processes.
type killedErr struct{ name string }

func (k killedErr) Error() string { return "sim: process " + k.name + " killed" }

// Spawn starts fn as a new process at the current virtual time. The process
// begins executing when the scheduler reaches its start event.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.procs[p] = struct{}{}
	s.nprocs++
	go func() {
		<-p.resume
		defer func() {
			p.done = true
			delete(s.procs, p)
			s.nprocs--
			if r := recover(); r != nil {
				if _, ok := r.(killedErr); ok {
					s.yield <- struct{}{}
					return
				}
				// Re-panic on the scheduler side would deadlock; print and
				// crash the whole program instead, preserving the trace.
				panic(r)
			}
			s.yield <- struct{}{}
		}()
		fn(p)
	}()
	s.At(s.now, func() { s.step(p) })
	return p
}

// step transfers control to p and blocks until p yields or exits.
func (s *Sim) step(p *Proc) {
	if p.done {
		return
	}
	if s.stopping {
		p.killed = true
	}
	p.resume <- struct{}{}
	<-s.yield
}

// block suspends the calling process until the scheduler resumes it.
func (p *Proc) block() {
	p.sim.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedErr{p.name})
	}
}

// Sleep suspends the process for d of virtual time. Negative or zero
// durations still yield to the scheduler at the current timestamp.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := p.sim
	s.At(s.now.Add(d), func() { s.step(p) })
	p.block()
}

// Yield gives other events scheduled at the current instant a chance to run.
func (p *Proc) Yield() { p.Sleep(0) }

// Kill marks p so that its next blocking operation unwinds the process.
// Killing an exited process is a no-op.
func (p *Proc) Kill() { p.killed = true }

// Shutdown kills all live processes, unwinding each at its blocking point,
// and drains any events they schedule. Call after RunUntil to avoid leaking
// goroutines; the Sim must not be used afterwards.
func (s *Sim) Shutdown() {
	s.stopping = true
	for p := range s.procs {
		p.killed = true
	}
	// Wake every blocked process. Processes blocked on channels/resources
	// are tracked there; ones blocked on timers will be woken by their
	// scheduled events, but those may be far in the future, so we resume
	// each live proc directly.
	live := make([]*Proc, 0, len(s.procs))
	for p := range s.procs {
		live = append(live, p)
	}
	for _, p := range live {
		s.step(p)
	}
	// Drop remaining events; their closures may reference dead procs.
	s.events = nil
}

// Live reports the number of live (spawned, not yet exited) processes.
func (s *Sim) Live() int { return s.nprocs }

// ---------------------------------------------------------------------------
// Channels

// Chan is a FIFO message queue operating in virtual time. A capacity of 0
// means unbounded. Chan is the simulation analogue of a Go channel; all
// operations must be called from processes of the same Sim.
type Chan[T any] struct {
	sim     *Sim
	cap     int
	buf     []T
	getters waiterQ[T]
	putters waiterQ[T]
}

// NewChan creates a queue. capacity == 0 means unbounded (Put never blocks).
func NewChan[T any](s *Sim, capacity int) *Chan[T] {
	return &Chan[T]{sim: s, cap: capacity}
}

type waiter[T any] struct {
	p   *Proc
	val T    // value being delivered (getter: filled by putter; putter: value to enqueue)
	ok  bool // set when the rendezvous happened
}

type waiterQ[T any] struct{ q []*waiter[T] }

func (w *waiterQ[T]) push(x *waiter[T]) { w.q = append(w.q, x) }
func (w *waiterQ[T]) pop() *waiter[T] {
	if len(w.q) == 0 {
		return nil
	}
	x := w.q[0]
	w.q[0] = nil
	w.q = w.q[1:]
	return x
}
func (w *waiterQ[T]) remove(x *waiter[T]) {
	for i, y := range w.q {
		if y == x {
			w.q = append(w.q[:i], w.q[i+1:]...)
			return
		}
	}
}
func (w *waiterQ[T]) len() int { return len(w.q) }

// Len reports the number of buffered items.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Put enqueues v, blocking while the queue is at capacity.
func (c *Chan[T]) Put(p *Proc, v T) {
	if w := c.getters.pop(); w != nil {
		// Direct hand-off to a waiting getter.
		w.val, w.ok = v, true
		c.sim.At(c.sim.now, func() { c.sim.step(w.p) })
		return
	}
	if c.cap == 0 || len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	w := &waiter[T]{p: p, val: v}
	c.putters.push(w)
	p.block()
	if !w.ok {
		// Unwound by Kill: remove from queue defensively (block panicked,
		// so this line only runs if ok was set; keep for clarity).
		c.putters.remove(w)
	}
}

// TryPut enqueues v if the queue has room or a waiting getter, without
// blocking. It reports whether the value was accepted.
func (c *Chan[T]) TryPut(v T) bool {
	if w := c.getters.pop(); w != nil {
		w.val, w.ok = v, true
		c.sim.At(c.sim.now, func() { c.sim.step(w.p) })
		return true
	}
	if c.cap == 0 || len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Get dequeues the oldest item, blocking while the queue is empty.
func (c *Chan[T]) Get(p *Proc) T {
	if len(c.buf) > 0 {
		v := c.buf[0]
		var zero T
		c.buf[0] = zero
		c.buf = c.buf[1:]
		// Admit a blocked putter, if any.
		if w := c.putters.pop(); w != nil {
			w.ok = true
			c.buf = append(c.buf, w.val)
			c.sim.At(c.sim.now, func() { c.sim.step(w.p) })
		}
		return v
	}
	w := &waiter[T]{p: p}
	c.getters.push(w)
	defer func() {
		if !w.ok {
			c.getters.remove(w)
		}
	}()
	p.block()
	return w.val
}

// TryGet dequeues without blocking, reporting whether a value was available.
func (c *Chan[T]) TryGet() (T, bool) {
	var zero T
	if len(c.buf) == 0 {
		return zero, false
	}
	v := c.buf[0]
	c.buf[0] = zero
	c.buf = c.buf[1:]
	if w := c.putters.pop(); w != nil {
		w.ok = true
		c.buf = append(c.buf, w.val)
		c.sim.At(c.sim.now, func() { c.sim.step(w.p) })
	}
	return v, true
}

// GetTimeout dequeues with a deadline. The boolean result reports whether a
// value was received (false means the timeout elapsed first).
func (c *Chan[T]) GetTimeout(p *Proc, d time.Duration) (T, bool) {
	var zero T
	if v, ok := c.TryGet(); ok {
		return v, true
	}
	if d <= 0 {
		return zero, false
	}
	w := &waiter[T]{p: p}
	c.getters.push(w)
	timedOut := false
	c.sim.At(c.sim.now.Add(d), func() {
		if w.ok || timedOut {
			return
		}
		timedOut = true
		c.getters.remove(w)
		c.sim.step(w.p)
	})
	p.block()
	if timedOut {
		return zero, false
	}
	return w.val, true
}

// ---------------------------------------------------------------------------
// Resources (counting semaphores with FIFO waiters)

// Resource models a pool of n interchangeable units (CPU cores, DMA engines,
// driver locks...). Acquire blocks until a unit is free; units are granted in
// FIFO order.
type Resource struct {
	sim     *Sim
	total   int
	inUse   int
	waiters []*Proc
}

// NewResource creates a resource pool with n units. n must be positive.
func NewResource(s *Sim, n int) *Resource {
	if n <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{sim: s, total: n}
}

// Acquire takes one unit, blocking until available.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.total {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.block()
}

// TryAcquire takes one unit if immediately available.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.total {
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit, waking the oldest waiter if any.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters[0] = nil
		r.waiters = r.waiters[1:]
		// Unit passes directly to the waiter; inUse stays constant.
		r.sim.At(r.sim.now, func() { r.sim.step(w) })
		return
	}
	if r.inUse == 0 {
		panic("sim: Release without Acquire")
	}
	r.inUse--
}

// InUse reports the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Waiting reports the number of blocked acquirers.
func (r *Resource) Waiting() int { return len(r.waiters) }

// With runs fn while holding one unit, charging exec virtual time.
func (r *Resource) With(p *Proc, exec time.Duration, fn func()) {
	r.Acquire(p)
	defer r.Release()
	if exec > 0 {
		p.Sleep(exec)
	}
	if fn != nil {
		fn()
	}
}

// ---------------------------------------------------------------------------
// Signals

// Signal is a broadcast edge-trigger: Wait blocks until the next Fire.
type Signal struct {
	sim     *Sim
	waiters []*Proc
}

// NewSignal creates a signal bound to s.
func NewSignal(s *Sim) *Signal { return &Signal{sim: s} }

// Wait blocks the calling process until the next Fire.
func (sg *Signal) Wait(p *Proc) {
	sg.waiters = append(sg.waiters, p)
	p.block()
}

// Fire wakes every currently blocked waiter at the current instant.
func (sg *Signal) Fire() {
	ws := sg.waiters
	sg.waiters = nil
	for _, w := range ws {
		w := w
		sg.sim.At(sg.sim.now, func() { sg.sim.step(w) })
	}
}

// Waiting reports the number of processes blocked on the signal.
func (sg *Signal) Waiting() int { return len(sg.waiters) }

// RunUntilCond advances the simulation in check-sized increments until cond
// becomes true or limit is reached. It lets tests and experiments stop as
// soon as their workload completes instead of simulating idle polling.
func (s *Sim) RunUntilCond(limit Time, check time.Duration, cond func() bool) {
	for s.now < limit && !cond() {
		next := s.now.Add(check)
		if next > limit {
			next = limit
		}
		s.RunUntil(next)
	}
}

// ---------------------------------------------------------------------------
// Gates

// Gate is a level-safe, versioned broadcast: every Fire bumps the version
// and wakes current waiters. Callers snapshot Version before checking their
// condition and pass it to Wait, which returns immediately if anything fired
// in between — eliminating the lost-wakeup race of edge-triggered signals.
//
// Gates exist so simulated busy-poll loops (GPU threadblocks watching
// doorbells, the SNIC manager sweeping TX rings) can block instead of
// burning simulator events each poll iteration; the caller re-adds the
// modelled polling detection latency after waking.
type Gate struct {
	sim     *Sim
	ver     uint64
	waiters []*gateWaiter
}

type gateWaiter struct {
	p     *Proc
	woken bool
}

// NewGate creates a gate bound to s.
func NewGate(s *Sim) *Gate { return &Gate{sim: s} }

// Version returns the current fire count.
func (g *Gate) Version() uint64 { return g.ver }

// Waiting reports the number of blocked waiters.
func (g *Gate) Waiting() int { return len(g.waiters) }

// Fire bumps the version and wakes every current waiter.
func (g *Gate) Fire() {
	g.ver++
	ws := g.waiters
	g.waiters = nil
	for _, w := range ws {
		w := w
		w.woken = true
		g.sim.At(g.sim.now, func() { g.sim.step(w.p) })
	}
}

func (g *Gate) remove(w *gateWaiter) {
	for i, x := range g.waiters {
		if x == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return
		}
	}
}

// Wait blocks until the gate fires, unless it already fired since the caller
// observed version since (in which case it returns immediately).
func (g *Gate) Wait(p *Proc, since uint64) {
	if g.ver != since {
		return
	}
	w := &gateWaiter{p: p}
	g.waiters = append(g.waiters, w)
	defer func() {
		if !w.woken {
			g.remove(w)
		}
	}()
	p.block()
}

// WaitTimeout is Wait with a deadline; it reports whether the gate fired
// (true) or the timeout elapsed first (false).
func (g *Gate) WaitTimeout(p *Proc, since uint64, d time.Duration) bool {
	if g.ver != since {
		return true
	}
	if d <= 0 {
		return false
	}
	timedOut := false
	w := &gateWaiter{p: p}
	g.waiters = append(g.waiters, w)
	g.sim.At(g.sim.now.Add(d), func() {
		if w.woken || timedOut {
			return
		}
		timedOut = true
		g.remove(w)
		g.sim.step(p)
	})
	p.block()
	return w.woken
}
