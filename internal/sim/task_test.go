package sim

import (
	"testing"
	"time"
)

// TestTaskGetsFromProcFedChan: a Task parked in GetT is fed by a coroutine
// Proc. Values arrive in order and the continuation observes the hand-off
// time, per the wait-booking contract.
func TestTaskGetsFromProcFedChan(t *testing.T) {
	s := New(Config{})
	ch := NewChan[int](s, 0)
	var got []int
	var at []Time
	s.SpawnTask("consumer", func(tk *Task) {
		var step func(v int)
		step = func(v int) {
			got = append(got, v)
			at = append(at, tk.Now())
			if len(got) < 3 {
				if v, ok := ch.GetT(tk, step); ok {
					step(v)
				}
			}
		}
		if v, ok := ch.GetT(tk, step); ok {
			step(v)
		}
	})
	s.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Microsecond)
			ch.Put(p, i*10)
		}
	})
	s.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
	for i, a := range at {
		if want := Time(time.Duration(i+1) * time.Microsecond); a != want {
			t.Errorf("value %d delivered at %v, want %v", i, a, want)
		}
	}
	if s.Live() != 0 {
		t.Fatalf("%d live processes after run", s.Live())
	}
}

// TestProcGetsFromTaskFedChan: the reverse direction — a Proc blocked in Get
// receives from a Task putting via PutT.
func TestProcGetsFromTaskFedChan(t *testing.T) {
	s := New(Config{})
	ch := NewChan[int](s, 0)
	var got []int
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, ch.Get(p))
		}
	})
	s.SpawnTask("producer", func(tk *Task) {
		i := 0
		var step func()
		step = func() {
			if i >= 3 {
				return
			}
			i++
			tk.Sleep(time.Microsecond, func() {
				if ch.PutT(tk, i*10, step) {
					step()
				}
			})
		}
		step()
	})
	s.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
	if s.Live() != 0 {
		t.Fatalf("%d live processes after run", s.Live())
	}
}

// TestTaskPutBlocksAtCapacity: a Task's PutT parks once the buffer is full
// and resumes when a Proc drains, exactly like a blocked Proc putter.
func TestTaskPutBlocksAtCapacity(t *testing.T) {
	s := New(Config{})
	ch := NewChan[int](s, 1)
	var putDone, getAt Time
	s.SpawnTask("producer", func(tk *Task) {
		done := func() { putDone = tk.Now() }
		if ch.PutT(tk, 1, nil) { // fills inline
			if ch.PutT(tk, 2, done) { // must park
				done()
			}
		}
	})
	s.Spawn("consumer", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		getAt = p.Now()
		_ = ch.Get(p)
		_ = ch.Get(p)
	})
	s.Run()
	if putDone < getAt {
		t.Fatalf("second PutT finished at %v before the consumer ran at %v", putDone, getAt)
	}
}

// TestTaskParkedOnGate: WaitT parks until Fire; WaitTimeoutT times out
// without a fire and reports the fire when it wins the race.
func TestTaskParkedOnGate(t *testing.T) {
	s := New(Config{})
	g := NewGate(s)
	var wokeAt Time
	var timedOut, fired bool
	s.SpawnTask("waiter", func(tk *Task) {
		v := g.Version()
		afterFire := func() {
			wokeAt = tk.Now()
			if inl, _ := g.WaitTimeoutT(tk, g.Version(), 5*time.Microsecond, func(f bool) {
				timedOut = !f
				if inl2, f2 := g.WaitTimeoutT(tk, g.Version(), time.Second, func(f3 bool) { fired = f3 }); inl2 {
					fired = f2
				}
			}); inl {
				t.Error("second wait should have parked")
			}
		}
		if g.WaitT(tk, v, afterFire) {
			t.Error("first wait should have parked")
		}
	})
	s.Spawn("firer", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		g.Fire()
		p.Sleep(20 * time.Microsecond)
		g.Fire()
	})
	s.RunUntil(Time(time.Second))
	s.Shutdown()
	if wokeAt != Time(10*time.Microsecond) {
		t.Fatalf("gate wake at %v, want 10µs", wokeAt)
	}
	if !timedOut {
		t.Fatal("5µs wait without a fire should have timed out")
	}
	if !fired {
		t.Fatal("second fire should have won the 1s wait")
	}
}

// TestTaskResourceFIFOWithProcs: Task and Proc waiters on one resource are
// granted strictly FIFO, regardless of substrate.
func TestTaskResourceFIFOWithProcs(t *testing.T) {
	s := New(Config{})
	r := NewResource(s, 1)
	var order []string
	// Spawn alternating substrates; each holds the unit for 10µs.
	for i, kind := range []string{"proc", "task", "proc", "task"} {
		name := kind
		if kind == "proc" {
			s.Spawn(name, func(p *Proc) {
				r.With(p, 10*time.Microsecond, nil)
				order = append(order, name)
			})
		} else {
			s.SpawnTask(name, func(tk *Task) {
				r.WithT(tk, 10*time.Microsecond, func() {
					order = append(order, name)
				})
			})
		}
		_ = i
	}
	s.Run()
	want := []string{"proc", "task", "proc", "task"}
	if len(order) != 4 {
		t.Fatalf("%d completions, want 4", len(order))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v is not spawn-FIFO", order)
		}
	}
}

// TestTaskNestedWithTReusesFrame: nested Resource.WithT calls issued from
// inside the previous call's continuation must be safe (they reuse the
// task's single resFrame) and keep exact virtual-time accounting.
func TestTaskNestedWithTReusesFrame(t *testing.T) {
	s := New(Config{})
	r1 := NewResource(s, 1)
	r2 := NewResource(s, 1)
	var doneAt Time
	s.SpawnTask("nested", func(tk *Task) {
		r1.WithT(tk, 10*time.Microsecond, func() {
			r2.WithT(tk, 5*time.Microsecond, func() {
				r1.WithT(tk, 0, func() { // zero-hold inline path
					doneAt = tk.Now()
				})
			})
		})
	})
	s.Run()
	if doneAt != Time(15*time.Microsecond) {
		t.Fatalf("nested WithT chain finished at %v, want 15µs", doneAt)
	}
	if r1.InUse() != 0 || r2.InUse() != 0 {
		t.Fatal("resource units leaked")
	}
}

// TestTaskProcSameInstantOrdering: wakes scheduled for the same instant run
// in schedule order with no substrate tie-break — a Task wake scheduled
// before a Proc wake runs first, and vice versa.
func TestTaskProcSameInstantOrdering(t *testing.T) {
	run := func(taskFirst bool) []string {
		s := New(Config{})
		var order []string
		spawnTask := func() {
			s.SpawnTask("t", func(tk *Task) {
				tk.Sleep(time.Microsecond, func() { order = append(order, "task") })
			})
		}
		spawnProc := func() {
			s.Spawn("p", func(p *Proc) {
				p.Sleep(time.Microsecond)
				order = append(order, "proc")
			})
		}
		if taskFirst {
			spawnTask()
			spawnProc()
		} else {
			spawnProc()
			spawnTask()
		}
		s.Run()
		return order
	}
	if got := run(true); got[0] != "task" || got[1] != "proc" {
		t.Fatalf("task scheduled first must wake first: %v", got)
	}
	if got := run(false); got[0] != "proc" || got[1] != "task" {
		t.Fatalf("proc scheduled first must wake first: %v", got)
	}
}

// TestTaskKillRunsOnKill: killing a parked Task removes its waiter, runs the
// OnKill hook, and leaves the channel usable by others.
func TestTaskKillRunsOnKill(t *testing.T) {
	s := New(Config{})
	ch := NewChan[int](s, 0)
	cleaned := false
	var victim *Task
	victim = s.SpawnTask("victim", func(tk *Task) {
		tk.OnKill(func() { cleaned = true })
		ch.GetT(tk, func(int) { t.Error("killed task's continuation ran") })
	})
	var got int
	s.Spawn("survivor", func(p *Proc) {
		p.Sleep(2 * time.Microsecond)
		got = ch.Get(p)
	})
	s.After(time.Microsecond, func() { victim.Kill() })
	s.Spawn("producer", func(p *Proc) {
		p.Sleep(3 * time.Microsecond)
		ch.Put(p, 7)
	})
	s.Run()
	if !cleaned {
		t.Fatal("OnKill hook never ran")
	}
	if got != 7 {
		t.Fatalf("survivor got %d, want 7 (killed task's waiter not removed?)", got)
	}
	if s.Live() != 0 {
		t.Fatalf("live = %d", s.Live())
	}
}

// TestTaskDeterminism: a mixed Task/Proc workload over shared channels and
// resources produces an identical execution trace on every run.
func TestTaskDeterminism(t *testing.T) {
	run := func() []string {
		s := New(Config{Seed: 9})
		ch := NewChan[int](s, 2)
		r := NewResource(s, 1)
		var order []string
		s.SpawnTask("taskworker", func(tk *Task) {
			var loop func(v int)
			loop = func(v int) {
				r.WithT(tk, time.Duration(1+v%3)*time.Microsecond, func() {
					order = append(order, "task")
					if v < 20 {
						if nv, ok := ch.GetT(tk, loop); ok {
							loop(nv)
						}
					}
				})
			}
			if v, ok := ch.GetT(tk, loop); ok {
				loop(v)
			}
		})
		s.Spawn("procworker", func(p *Proc) {
			for i := 0; i < 10; i++ {
				r.With(p, time.Duration(1+i%2)*time.Microsecond, nil)
				order = append(order, "proc")
			}
		})
		s.Spawn("feeder", func(p *Proc) {
			for i := 1; i <= 21; i++ {
				p.Sleep(time.Duration(p.Sim().Rand().IntN(4)) * time.Microsecond)
				ch.Put(p, i)
			}
		})
		s.RunUntil(Time(time.Second))
		s.Shutdown()
		return order
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("empty trace")
	}
	for i := 0; i < 3; i++ {
		if got := run(); !equalStrings(got, first) {
			t.Fatalf("nondeterministic mixed-substrate trace:\n%v\nvs\n%v", first, got)
		}
	}
}
