package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvances(t *testing.T) {
	s := New(Config{})
	var fired []Time
	s.After(5*time.Microsecond, func() { fired = append(fired, s.Now()) })
	s.After(2*time.Microsecond, func() { fired = append(fired, s.Now()) })
	s.After(9*time.Microsecond, func() { fired = append(fired, s.Now()) })
	s.Run()
	want := []Time{Time(2 * time.Microsecond), Time(5 * time.Microsecond), Time(9 * time.Microsecond)}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(Config{})
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(100), func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated FIFO: got %v", order)
		}
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	s := New(Config{})
	ran := false
	s.At(Time(time.Second), func() { ran = true })
	s.RunUntil(Time(time.Millisecond))
	if ran {
		t.Fatal("event beyond limit ran")
	}
	if s.Now() != Time(time.Millisecond) {
		t.Fatalf("clock at %v, want 1ms", s.Now())
	}
	s.RunUntil(Time(2 * time.Second))
	if !ran {
		t.Fatal("event not run after extending limit")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(Config{})
	s.At(Time(10), func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(Time(5), func() {})
	})
	s.Run()
}

func TestProcSleep(t *testing.T) {
	s := New(Config{})
	var wake Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Microsecond)
		wake = p.Now()
	})
	s.Run()
	if wake != Time(42*time.Microsecond) {
		t.Fatalf("woke at %v, want 42µs", wake)
	}
	if s.Live() != 0 {
		t.Fatalf("%d live procs after run", s.Live())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New(Config{Seed: 7})
		var trace []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			s.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(time.Duration(1+p.Sim().Rand().IntN(5)) * time.Microsecond)
					trace = append(trace, name)
				}
			})
		}
		s.Run()
		return trace
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("trace length varies")
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("nondeterministic trace: %v vs %v", first, got)
				}
			}
		}
	}
}

func TestChanHandoff(t *testing.T) {
	s := New(Config{})
	ch := NewChan[int](s, 0)
	var got []int
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, ch.Get(p))
		}
	})
	s.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Microsecond)
			ch.Put(p, i*10)
		}
	})
	s.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
}

func TestChanCapacityBlocksPutter(t *testing.T) {
	s := New(Config{})
	ch := NewChan[int](s, 1)
	var putDone, getAt Time
	s.Spawn("producer", func(p *Proc) {
		ch.Put(p, 1) // fills
		ch.Put(p, 2) // blocks until consumer drains
		putDone = p.Now()
	})
	s.Spawn("consumer", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		getAt = p.Now()
		_ = ch.Get(p)
		_ = ch.Get(p)
	})
	s.Run()
	if putDone < getAt {
		t.Fatalf("second Put finished at %v before consumer ran at %v", putDone, getAt)
	}
}

func TestChanFIFOAcrossManyMessages(t *testing.T) {
	s := New(Config{})
	ch := NewChan[int](s, 4)
	const n = 1000
	var got []int
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < n; i++ {
			ch.Put(p, i)
		}
	})
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < n; i++ {
			got = append(got, ch.Get(p))
			if i%7 == 0 {
				p.Sleep(time.Nanosecond)
			}
		}
	})
	s.Run()
	if len(got) != n {
		t.Fatalf("got %d messages, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordered at %d: %d", i, v)
		}
	}
}

func TestChanGetTimeout(t *testing.T) {
	s := New(Config{})
	ch := NewChan[string](s, 0)
	var ok1, ok2 bool
	var at1 Time
	s.Spawn("consumer", func(p *Proc) {
		_, ok1 = ch.GetTimeout(p, 5*time.Microsecond)
		at1 = p.Now()
		var v string
		v, ok2 = ch.GetTimeout(p, time.Second)
		if v != "hello" {
			t.Errorf("got %q", v)
		}
	})
	s.Spawn("producer", func(p *Proc) {
		p.Sleep(20 * time.Microsecond)
		ch.Put(p, "hello")
	})
	s.Run()
	if ok1 {
		t.Error("first Get should have timed out")
	}
	if at1 != Time(5*time.Microsecond) {
		t.Errorf("timeout fired at %v, want 5µs", at1)
	}
	if !ok2 {
		t.Error("second Get should have received")
	}
}

func TestResourceSerializes(t *testing.T) {
	s := New(Config{})
	r := NewResource(s, 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		s.Spawn("worker", func(p *Proc) {
			r.With(p, 10*time.Microsecond, nil)
			finish = append(finish, p.Now())
		})
	}
	s.Run()
	want := []Time{Time(10 * time.Microsecond), Time(20 * time.Microsecond), Time(30 * time.Microsecond)}
	if len(finish) != 3 {
		t.Fatalf("%d finished", len(finish))
	}
	for i := range want {
		if finish[i] != want[i] {
			t.Errorf("worker %d finished at %v, want %v", i, finish[i], want[i])
		}
	}
}

func TestResourceParallelism(t *testing.T) {
	s := New(Config{})
	r := NewResource(s, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		s.Spawn("worker", func(p *Proc) {
			r.With(p, 10*time.Microsecond, nil)
			finish = append(finish, p.Now())
		})
	}
	s.Run()
	if finish[len(finish)-1] != Time(20*time.Microsecond) {
		t.Fatalf("4 jobs on 2 units finished at %v, want 20µs", finish[len(finish)-1])
	}
}

func TestSignalBroadcast(t *testing.T) {
	s := New(Config{})
	sg := NewSignal(s)
	woken := 0
	for i := 0; i < 5; i++ {
		s.Spawn("waiter", func(p *Proc) {
			sg.Wait(p)
			woken++
		})
	}
	s.Spawn("firer", func(p *Proc) {
		p.Sleep(time.Microsecond)
		sg.Fire()
	})
	s.Run()
	if woken != 5 {
		t.Fatalf("woke %d of 5", woken)
	}
}

func TestShutdownUnwindsBlockedProcs(t *testing.T) {
	s := New(Config{})
	ch := NewChan[int](s, 0)
	r := NewResource(s, 1)
	s.Spawn("chan-blocked", func(p *Proc) { ch.Get(p) })
	s.Spawn("holder", func(p *Proc) { r.Acquire(p); p.Sleep(time.Hour) })
	s.Spawn("res-blocked", func(p *Proc) { p.Yield(); r.Acquire(p) })
	s.Spawn("timer-blocked", func(p *Proc) { p.Sleep(time.Hour) })
	s.RunUntil(Time(time.Millisecond))
	if s.Live() != 4 {
		t.Fatalf("want 4 live procs before shutdown, got %d", s.Live())
	}
	s.Shutdown()
	if s.Live() != 0 {
		t.Fatalf("%d procs leaked after Shutdown", s.Live())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := New(Config{Seed: 42}), New(Config{Seed: 42})
	for i := 0; i < 100; i++ {
		if a.Rand().Uint64() != b.Rand().Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(Config{Seed: 43})
	same := true
	for i := 0; i < 10; i++ {
		if New(Config{Seed: 42}).Rand().Uint64() == c.Rand().Uint64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// Property: for any set of (time, payload) pairs, the engine executes them in
// stable-sorted order by time.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		s := New(Config{})
		type rec struct {
			at  Time
			idx int
		}
		var got []rec
		for i, d := range delays {
			i, at := i, Time(d)
			s.At(at, func() { got = append(got, rec{at, i}) })
		}
		s.Run()
		if len(got) != len(delays) {
			return false
		}
		want := make([]rec, len(got))
		copy(want, got)
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].idx < want[j].idx
		})
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// And times must be nondecreasing with idx order stable within ties.
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].idx < got[i-1].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a Chan never loses, duplicates, or reorders values for any
// producer/consumer timing pattern.
func TestChanIntegrityProperty(t *testing.T) {
	prop := func(prodDelays, consDelays []uint8, capacity uint8) bool {
		n := len(prodDelays)
		if n == 0 {
			return true
		}
		s := New(Config{})
		ch := NewChan[int](s, int(capacity%8))
		var got []int
		s.Spawn("producer", func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Sleep(time.Duration(prodDelays[i]) * time.Nanosecond)
				ch.Put(p, i)
			}
		})
		s.Spawn("consumer", func(p *Proc) {
			for i := 0; i < n; i++ {
				if i < len(consDelays) {
					p.Sleep(time.Duration(consDelays[i]) * time.Nanosecond)
				}
				got = append(got, ch.Get(p))
			}
		})
		s.Run()
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1500 * time.Nanosecond).String(); got != "1.5µs" {
		t.Fatalf("got %q", got)
	}
	if Time(time.Second).Sub(Time(time.Millisecond)) != 999*time.Millisecond {
		t.Fatal("Sub arithmetic wrong")
	}
}

func TestGateVersionedWakeup(t *testing.T) {
	s := New(Config{})
	g := NewGate(s)
	var wokeAt Time
	s.Spawn("waiter", func(p *Proc) {
		v := g.Version()
		g.Wait(p, v)
		wokeAt = p.Now()
	})
	s.Spawn("firer", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		g.Fire()
	})
	s.Run()
	if wokeAt != Time(10*time.Microsecond) {
		t.Fatalf("woke at %v", wokeAt)
	}
}

// The lost-wakeup race: a fire between Version() and Wait() must not block.
func TestGateNoLostWakeup(t *testing.T) {
	s := New(Config{})
	g := NewGate(s)
	returned := false
	s.Spawn("waiter", func(p *Proc) {
		v := g.Version()
		p.Sleep(5 * time.Microsecond) // fire happens in here
		g.Wait(p, v)                  // must return immediately
		returned = true
	})
	s.Spawn("firer", func(p *Proc) {
		p.Sleep(time.Microsecond)
		g.Fire()
	})
	s.RunUntil(Time(time.Second))
	s.Shutdown()
	if !returned {
		t.Fatal("waiter blocked despite intervening fire")
	}
}

func TestGateWaitTimeout(t *testing.T) {
	s := New(Config{})
	g := NewGate(s)
	var first, second bool
	s.Spawn("waiter", func(p *Proc) {
		first = g.WaitTimeout(p, g.Version(), 5*time.Microsecond) // no fire: timeout
		second = g.WaitTimeout(p, g.Version(), time.Second)       // fire wins
	})
	s.Spawn("firer", func(p *Proc) {
		p.Sleep(20 * time.Microsecond)
		g.Fire()
	})
	s.RunUntil(Time(time.Second))
	s.Shutdown()
	if first {
		t.Fatal("first wait should have timed out")
	}
	if !second {
		t.Fatal("second wait should have been fired")
	}
}

func TestGateFireWakesAllWaiters(t *testing.T) {
	s := New(Config{})
	g := NewGate(s)
	woken := 0
	for i := 0; i < 5; i++ {
		s.Spawn("w", func(p *Proc) {
			g.Wait(p, g.Version())
			woken++
		})
	}
	s.Spawn("f", func(p *Proc) {
		p.Sleep(time.Microsecond)
		if g.Waiting() != 5 {
			t.Errorf("waiting = %d", g.Waiting())
		}
		g.Fire()
	})
	s.Run()
	if woken != 5 {
		t.Fatalf("woke %d/5", woken)
	}
}

func TestAccessors(t *testing.T) {
	s := New(Config{})
	if s.Pending() != 0 {
		t.Fatal("fresh sim has pending events")
	}
	s.After(time.Microsecond, func() {})
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	p := s.Spawn("named-proc", func(p *Proc) {
		if p.Sim() != s {
			t.Error("Proc.Sim wrong")
		}
		p.Sleep(time.Millisecond)
	})
	if p.Name() != "named-proc" {
		t.Fatalf("name %q", p.Name())
	}
	if err := (killedErr{name: "x"}); err.Error() != "sim: process x killed" {
		t.Fatalf("killedErr %q", err.Error())
	}
	s.RunUntil(Time(10 * time.Microsecond))
	s.Shutdown()
}

func TestKillUnwindsOneProc(t *testing.T) {
	s := New(Config{})
	reached := false
	p := s.Spawn("victim", func(p *Proc) {
		p.Sleep(time.Millisecond)
		reached = true
	})
	survived := false
	s.Spawn("bystander", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		survived = true
	})
	s.After(time.Microsecond, func() { p.Kill() })
	s.Run()
	if reached {
		t.Fatal("killed proc continued past its sleep")
	}
	if !survived {
		t.Fatal("kill leaked to other procs")
	}
	if s.Live() != 0 {
		t.Fatalf("live = %d", s.Live())
	}
}

func TestChanTryOps(t *testing.T) {
	s := New(Config{})
	ch := NewChan[int](s, 1)
	if _, ok := ch.TryGet(); ok {
		t.Fatal("TryGet on empty must miss")
	}
	if !ch.TryPut(1) {
		t.Fatal("TryPut into empty must succeed")
	}
	if ch.Len() != 1 {
		t.Fatalf("len = %d", ch.Len())
	}
	if ch.TryPut(2) {
		t.Fatal("TryPut into full must fail")
	}
	if v, ok := ch.TryGet(); !ok || v != 1 {
		t.Fatalf("TryGet got %v/%v", v, ok)
	}
	// TryPut with a blocked getter hands off directly.
	var got int
	s.Spawn("getter", func(p *Proc) { got = ch.Get(p) })
	s.Spawn("putter", func(p *Proc) {
		p.Sleep(time.Microsecond)
		if !ch.TryPut(42) {
			t.Error("handoff TryPut failed")
		}
	})
	s.Run()
	if got != 42 {
		t.Fatalf("handoff got %d", got)
	}
}

func TestChanPutUnblocksBufferedWaiter(t *testing.T) {
	s := New(Config{})
	ch := NewChan[int](s, 2)
	var order []int
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			ch.Put(p, i)
		}
	})
	s.Spawn("consumer", func(p *Proc) {
		p.Sleep(time.Microsecond)
		for i := 0; i < 5; i++ {
			order = append(order, ch.Get(p))
		}
	})
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v", order)
		}
	}
}

func TestResourceTryAcquireAndCounters(t *testing.T) {
	s := New(Config{})
	r := NewResource(s, 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on free resource")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on busy resource")
	}
	if r.InUse() != 1 || r.Waiting() != 0 {
		t.Fatalf("inuse=%d waiting=%d", r.InUse(), r.Waiting())
	}
	s.Spawn("waiter", func(p *Proc) { r.Acquire(p); r.Release() })
	s.RunUntil(Time(time.Microsecond))
	if r.Waiting() != 1 {
		t.Fatalf("waiting = %d", r.Waiting())
	}
	r.Release()
	s.Run()
	if r.InUse() != 0 {
		t.Fatalf("inuse = %d after all released", r.InUse())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Release without Acquire must panic")
			}
		}()
		r.Release()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-capacity resource must panic")
			}
		}()
		NewResource(s, 0)
	}()
}

func TestSignalWaitingCount(t *testing.T) {
	s := New(Config{})
	sg := NewSignal(s)
	s.Spawn("w", func(p *Proc) { sg.Wait(p) })
	s.RunUntil(Time(time.Microsecond))
	if sg.Waiting() != 1 {
		t.Fatalf("waiting = %d", sg.Waiting())
	}
	sg.Fire()
	s.Run()
}

func TestRunUntilCond(t *testing.T) {
	s := New(Config{})
	hits := 0
	s.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Millisecond)
			hits++
		}
	})
	s.RunUntilCond(Time(time.Second), time.Millisecond, func() bool { return hits >= 5 })
	if hits < 5 || hits > 7 {
		t.Fatalf("stopped at hits=%d, want ~5", hits)
	}
	s.Shutdown()
}
