// Package sentinel is the regression sentinel: it persists one release's
// attribution state as a versioned, byte-deterministic artifact and diffs two
// artifacts at the attribution level, so a perf regression report names the
// cause ("SNIC dispatch wait p99 +31%", "dispatcher utilization +0.12"), not
// just the symptom ("throughput down"). Artifacts are written by `lynxbench
// -baseline`, diffed by `lynxbench -compare`, and archived under bench/.
//
// The artifact bundles four planes, one schema version apiece removed from
// guesswork:
//
//   - the attribution report (internal/profile): per-phase wait/service
//     decomposition and the ranked bottleneck list at the Fig. 9 saturation
//     point;
//   - the scorecard outcome (internal/check): every claim's measured value
//     and pass/fail;
//   - the knee estimates: saturation points predicted from low-load probes
//     next to their measured counterparts;
//   - the rack telemetry sections: each node of the RF=3 replication rack
//     summarized from its own telemetry plane (span counts, event volume,
//     per-series monitor means), so a cross-node regression names the node;
//   - optionally, a benchmark comparison recorded by cmd/benchcmp -json
//     (internal/bench — the same row schema, so medians and significance
//     have one source of truth).
package sentinel

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"lynx/internal/bench"
	"lynx/internal/profile"
)

// Version is the artifact schema version this package reads and writes.
// Read refuses other versions: a schema change must bump this and ship a
// fresh baseline, never reinterpret old bytes. Version 2 added the per-node
// rack telemetry sections.
const Version = 2

// Fingerprint identifies what an artifact measured. Two artifacts are
// comparable claim-for-claim only when their fingerprints match; Diff flags a
// mismatch instead of producing an apples-to-oranges report.
type Fingerprint struct {
	// Config summarizes the run configuration (seed, scale, batching) in a
	// stable human-readable form.
	Config string `json:"config"`
	// Scorecard is check.Scorecard.Fingerprint() — a digest of the claim set
	// the artifact was evaluated against.
	Scorecard string `json:"scorecard"`
}

// ClaimRow is one scorecard claim outcome frozen into the artifact.
type ClaimRow struct {
	ID     string  `json:"id"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Band   string  `json:"band"`
	Pass   bool    `json:"pass"`
}

// Knee pairs a predicted saturation point with its measured counterpart.
type Knee struct {
	// Name says which measured knee this predicts: "fig6" (BlueField, 240
	// mqueues, short requests) or "fig9" (attribution deployment).
	Name string `json:"name"`
	// Estimate is the low-load extrapolation (internal/profile).
	Estimate profile.KneeEstimate `json:"estimate"`
	// MeasuredPerSec is the closed-loop saturation throughput actually
	// measured on the same deployment.
	MeasuredPerSec float64 `json:"measured_per_sec"`
	// Ratio is predicted/measured — 1.0 is a perfect prediction.
	Ratio float64 `json:"ratio"`
}

// RackNode is one rack member's frozen telemetry-plane summary, measured on
// the RF=3 replication rack with the per-node observability plane armed.
// Every value derives from the node's own tracer/span-table/registry, so a
// cross-node attribution shift (a peer slowing down, an ingest ring backing
// up) is visible in the diff against the node that moved.
type RackNode struct {
	// Node is the rack member name ("server1"...).
	Node string `json:"node"`
	// SpansBegun/SpansClosed count the node's request spans (only the
	// measured primary sees client-closed spans).
	SpansBegun  uint64 `json:"spans_begun"`
	SpansClosed uint64 `json:"spans_closed"`
	// Events is the node's retained event-ring volume.
	Events int `json:"events"`
	// SeriesMean maps each monitor series of the node to its mean sample —
	// utilization and occupancy levels, including the repl/* series on nodes
	// that drive replication.
	SeriesMean map[string]float64 `json:"series_mean,omitempty"`
}

// Artifact is one release's frozen attribution state.
type Artifact struct {
	Version     int             `json:"version"`
	Fingerprint Fingerprint     `json:"fingerprint"`
	Report      *profile.Report `json:"report"`
	Scorecard   []ClaimRow      `json:"scorecard"`
	Knees       []Knee          `json:"knees,omitempty"`
	// Rack is the per-node telemetry summary of the RF=3 replication rack.
	Rack []RackNode `json:"rack,omitempty"`
	// Bench, when present, is the benchmark comparison recorded at baseline
	// time (cmd/benchcmp -json / make bench-compare).
	Bench *bench.Comparison `json:"bench,omitempty"`
}

// WriteJSON writes the artifact as indented JSON. Field order is fixed and
// every value derives from the deterministic simulation, so same-seed
// baselines are byte-identical.
func (a *Artifact) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteFile dumps the artifact to path.
func (a *Artifact) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read loads an artifact, refusing schema version skew.
func Read(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("sentinel: %s: %w", path, err)
	}
	if a.Version != Version {
		return nil, fmt.Errorf("sentinel: %s is artifact version %d, this build reads version %d — record a fresh baseline",
			path, a.Version, Version)
	}
	return &a, nil
}
