package sentinel

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lynx/internal/bench"
	"lynx/internal/profile"
)

// testArtifact builds a small but fully-populated artifact.
func testArtifact() *Artifact {
	return &Artifact{
		Version: Version,
		Fingerprint: Fingerprint{
			Config:    "seed=1 scale=0.25 batch=unit",
			Scorecard: "abcd1234",
		},
		Report: &profile.Report{
			SpansClosed: 100,
			EndToEnd:    profile.HistStats{Count: 100, P99Ns: 500_000},
			Phases: []profile.PhaseStats{
				{Phase: "network", Wait: profile.HistStats{P99Ns: 10_000}, Service: profile.HistStats{P99Ns: 5_000}},
				{Phase: "snic", Wait: profile.HistStats{P99Ns: 400_000}, Service: profile.HistStats{P99Ns: 20_000}},
				{Phase: "queueing", Wait: profile.HistStats{P99Ns: 0}, Service: profile.HistStats{P99Ns: 0}},
			},
			Bottlenecks: []profile.Bottleneck{
				{Resource: "dispatcher", Utilization: 0.95, QueueSlope: 10, WaitP99Ns: 400_000, Score: 0.96},
				{Resource: "accel/gpu0", Utilization: 0.20, QueueSlope: 0, Score: 0.20},
			},
		},
		Scorecard: []ClaimRow{
			{ID: "fig6.bf_240mq_short", Metric: "fig6.bf_240mq_short", Value: 8.0, Band: ">= 4.5", Pass: true},
			{ID: "sentinel.fig6_knee_ratio", Metric: "sentinel.fig6_knee_ratio", Value: 1.1, Band: "[0.7, 1.35]", Pass: true},
		},
		Knees: []Knee{
			{Name: "fig6", Estimate: profile.KneeEstimate{Valid: true, Resource: "dispatcher", Utilization: 0.28, ProbePerSec: 100e3, PredictedPerSec: 300e3}, MeasuredPerSec: 270e3, Ratio: 1.11},
		},
	}
}

// clone deep-copies an artifact through its JSON form.
func clone(t *testing.T, a *Artifact) *Artifact {
	t.Helper()
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var out Artifact
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestArtifactRoundTripByteDeterministic(t *testing.T) {
	a := testArtifact()
	path := filepath.Join(t.TempDir(), "a.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf1, buf2 bytes.Buffer
	if err := a.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("artifact JSON not byte-stable across a write/read/write cycle")
	}
}

func TestReadRejectsVersionSkew(t *testing.T) {
	a := testArtifact()
	a.Version = Version + 1
	path := filepath.Join(t.TempDir(), "skew.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew not refused: %v", err)
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("corrupt artifact not refused")
	}
}

func TestDiffIdenticalArtifactsReportsNoChange(t *testing.T) {
	a := testArtifact()
	d := Diff(a, clone(t, a), Options{})
	if !d.Clean() {
		t.Fatalf("identical artifacts not clean: %s", d)
	}
	if d.Checked == 0 {
		t.Fatal("no comparisons performed")
	}
	if !strings.Contains(d.String(), "no change") {
		t.Fatalf("report does not say no change: %q", d.String())
	}
	// Byte-determinism of the rendered report for a fixed pair.
	if d.String() != Diff(a, clone(t, a), Options{}).String() {
		t.Fatal("diff rendering not deterministic")
	}
}

func TestDiffNamesTheMovedPhase(t *testing.T) {
	old := testArtifact()
	new_ := clone(t, old)
	new_.Report.Phases[1].Wait.P99Ns = 524_000 // snic wait p99 +31%
	d := Diff(old, new_, Options{})
	if d.Clean() {
		t.Fatal("out-of-band phase move not reported")
	}
	var f *Finding
	for i := range d.Findings {
		if d.Findings[i].Kind == "phase-wait" {
			f = &d.Findings[i]
		}
	}
	if f == nil || f.Subject != "snic" || !f.Regression {
		t.Fatalf("wrong attribution: %+v", d.Findings)
	}
	if !strings.Contains(f.String(), "REGRESSION") || !strings.Contains(f.String(), "snic") {
		t.Fatalf("rendered finding does not name the cause: %q", f.String())
	}
	// The same relative move downward is an improvement, not a regression.
	better := clone(t, old)
	better.Report.Phases[1].Wait.P99Ns = 276_000
	d = Diff(old, better, Options{})
	if len(d.Regressions()) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", d.Regressions())
	}
	if d.Clean() {
		t.Fatal("improvement should still be reported as a move")
	}
}

func TestDiffZeroWaitPhaseStaysQuiet(t *testing.T) {
	old := testArtifact()
	new_ := clone(t, old)
	// A zero-wait phase picking up sub-floor jitter is noise, not a finding.
	new_.Report.Phases[2].Wait.P99Ns = 1500
	if d := Diff(old, new_, Options{}); !d.Clean() {
		t.Fatalf("sub-floor move on a zero-wait phase reported: %s", d)
	}
	// But a real move on a formerly zero-wait phase is reported.
	new_.Report.Phases[2].Wait.P99Ns = 50_000
	d := Diff(old, new_, Options{})
	if d.Clean() || d.Findings[0].Subject != "queueing" {
		t.Fatalf("real move on zero-wait phase missed: %s", d)
	}
}

func TestDiffBottleneckAndScorecardAndKnee(t *testing.T) {
	old := testArtifact()
	new_ := clone(t, old)
	new_.Report.Bottlenecks[1].Utilization = 0.35 // +0.15 > UtilAbs
	new_.Scorecard[0].Value = 4.0                 // fell out of band
	new_.Scorecard[0].Pass = false
	new_.Knees[0].Estimate.PredictedPerSec = 200e3 // -33% > KneeFrac
	d := Diff(old, new_, Options{})
	kinds := map[string]Finding{}
	for _, f := range d.Findings {
		kinds[f.Kind] = f
	}
	if f, ok := kinds["bottleneck-util"]; !ok || f.Subject != "accel/gpu0" || !f.Regression {
		t.Fatalf("utilization move misattributed: %+v", d.Findings)
	}
	if f, ok := kinds["scorecard"]; !ok || f.Subject != "fig6.bf_240mq_short" || !f.Regression {
		t.Fatalf("claim flip misattributed: %+v", d.Findings)
	}
	if f, ok := kinds["knee"]; !ok || f.Subject != "fig6" || !f.Regression {
		t.Fatalf("knee move misattributed: %+v", d.Findings)
	}
	// Top-bottleneck change is its own finding.
	swapped := clone(t, old)
	swapped.Report.Bottlenecks[0], swapped.Report.Bottlenecks[1] = swapped.Report.Bottlenecks[1], swapped.Report.Bottlenecks[0]
	d = Diff(old, swapped, Options{})
	found := false
	for _, f := range d.Findings {
		if f.Kind == "bottleneck-rank" && strings.Contains(f.Detail, "dispatcher to accel/gpu0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("top-bottleneck change not reported: %+v", d.Findings)
	}
}

func TestDiffFingerprintMismatchNotComparable(t *testing.T) {
	old := testArtifact()
	new_ := clone(t, old)
	new_.Fingerprint.Scorecard = "feedbeef"
	d := Diff(old, new_, Options{})
	if d.Comparable || d.Clean() {
		t.Fatal("fingerprint mismatch must make the diff non-comparable")
	}
	if d.Findings[0].Kind != "fingerprint" {
		t.Fatalf("first finding %+v, want the fingerprint mismatch", d.Findings[0])
	}
	if !strings.Contains(d.String(), "not comparable") {
		t.Fatalf("report does not warn: %q", d.String())
	}
}

func TestDiffBenchUsesMannWhitney(t *testing.T) {
	mkBench := func(samples ...float64) *bench.Comparison {
		med := bench.Median(samples)
		return &bench.Comparison{Rows: []bench.Row{{
			Benchmark: "BenchmarkSimEngine/echo", Metric: "ns/op",
			NewSamples: samples, NewMedian: &med,
		}}}
	}
	old := testArtifact()
	old.Bench = mkBench(100, 101, 102, 99, 100, 101, 100, 99, 101, 100)
	// Clearly slower, disjoint samples: significant, regression (ns/op up).
	new_ := clone(t, old)
	new_.Bench = mkBench(130, 131, 132, 129, 130, 131, 130, 129, 131, 130)
	d := Diff(old, new_, Options{})
	regs := d.Regressions()
	if len(regs) != 1 || regs[0].Kind != "bench" || !strings.Contains(regs[0].Detail, "p=") {
		t.Fatalf("bench regression not flagged via Mann-Whitney: %+v", d.Findings)
	}
	// Identical samples: p = 1, no finding.
	same := clone(t, old)
	same.Bench = mkBench(100, 101, 102, 99, 100, 101, 100, 99, 101, 100)
	if d := Diff(old, same, Options{}); !d.Clean() {
		t.Fatalf("identical bench samples reported: %s", d)
	}
	// events/sec moving UP is an improvement, not a regression.
	up := clone(t, old)
	med := 2.0e6
	old.Bench.Rows = append(old.Bench.Rows, bench.Row{
		Benchmark: "BenchmarkSimEngine/echo", Metric: "events/sec",
		NewSamples: []float64{1e6, 1e6, 1e6, 1e6, 1e6}, NewMedian: &[]float64{1e6}[0],
	})
	up.Bench.Rows = append(up.Bench.Rows, bench.Row{
		Benchmark: "BenchmarkSimEngine/echo", Metric: "events/sec",
		NewSamples: []float64{2e6, 2e6, 2e6, 2e6, 2e6}, NewMedian: &med,
	})
	d = Diff(old, up, Options{})
	for _, f := range d.Regressions() {
		if f.Metric == "events/sec" {
			t.Fatalf("events/sec improvement flagged as regression: %+v", f)
		}
	}
	// One side missing the bench plane entirely: silently skipped.
	noBench := clone(t, old)
	noBench.Bench = nil
	if d := Diff(old, noBench, Options{}); !d.Clean() {
		t.Fatalf("absent bench plane produced findings: %s", d)
	}
}
