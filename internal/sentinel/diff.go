package sentinel

import (
	"fmt"
	"io"
	"strings"

	"lynx/internal/bench"
	"lynx/internal/profile"
)

// Options are the noise bands of a diff: a move is reported only when it
// leaves its band, so run-to-run jitter does not read as regression. The
// benchmark plane needs no declared band — it carries raw samples, so
// significance comes from the same Mann-Whitney U test cmd/benchcmp applies
// (bench.MannWhitneyP at bench.Alpha). The attribution plane is one
// deterministic measurement per artifact, no sample distribution to test, so
// its bands are declared here instead, sized from the observed seed-to-seed
// spread of the attribution run.
type Options struct {
	// LatencyFrac is the relative band on latency stats (phase wait/service
	// p99, end-to-end p99). Default 0.10.
	LatencyFrac float64
	// LatencyFloorNs is the absolute move a latency stat must also clear —
	// keeps near-zero stats (a zero-wait phase picking up 300ns) quiet.
	// Default 2000.
	LatencyFloorNs int64
	// UtilAbs is the absolute band on resource utilization. Default 0.05.
	UtilAbs float64
	// SlopeAbs is the absolute band on queue-growth slopes (items/sec).
	// Default 2.
	SlopeAbs float64
	// ValueFrac is the relative band on scorecard metric values. A
	// pass→fail flip is always reported regardless of it. Default 0.10.
	ValueFrac float64
	// KneeFrac is the relative band on predicted knee throughput. Default
	// 0.15.
	KneeFrac float64
}

func (o Options) withDefaults() Options {
	if o.LatencyFrac == 0 {
		o.LatencyFrac = 0.10
	}
	if o.LatencyFloorNs == 0 {
		o.LatencyFloorNs = 2000
	}
	if o.UtilAbs == 0 {
		o.UtilAbs = 0.05
	}
	if o.SlopeAbs == 0 {
		o.SlopeAbs = 2
	}
	if o.ValueFrac == 0 {
		o.ValueFrac = 0.10
	}
	if o.KneeFrac == 0 {
		o.KneeFrac = 0.15
	}
	return o
}

// Finding is one out-of-band move between two artifacts.
type Finding struct {
	// Kind classifies the plane: "fingerprint", "phase-wait",
	// "phase-service", "end-to-end", "bottleneck-util", "bottleneck-slope",
	// "bottleneck-rank", "scorecard", "knee", "bench".
	Kind string `json:"kind"`
	// Subject names what moved: a phase, a resource, a claim ID, a
	// benchmark.
	Subject string `json:"subject"`
	// Metric is the stat within the subject ("wait_p99_ns", "utilization",
	// "ns/op", ...).
	Metric string  `json:"metric,omitempty"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// DeltaPct is the relative move in percent (0 when Old is 0).
	DeltaPct float64 `json:"delta_pct"`
	// Regression marks moves in the bad direction (latency/utilization up,
	// knee/claim capacity down, claim flipping to fail).
	Regression bool `json:"regression"`
	// Detail carries extra context (p-values, rank changes).
	Detail string `json:"detail,omitempty"`
}

// String renders one finding as a cause-naming report line.
func (f Finding) String() string {
	tag := "moved"
	if f.Regression {
		tag = "REGRESSION"
	}
	d := ""
	if f.Detail != "" {
		d = " (" + f.Detail + ")"
	}
	return fmt.Sprintf("%s %s %s %s: %.4g -> %.4g (%+.1f%%)%s",
		tag, f.Kind, f.Subject, f.Metric, f.Old, f.New, f.DeltaPct, d)
}

// DiffReport is the outcome of comparing two artifacts.
type DiffReport struct {
	OldFingerprint Fingerprint `json:"old_fingerprint"`
	NewFingerprint Fingerprint `json:"new_fingerprint"`
	// Comparable is false when fingerprints or versions differ — findings
	// are still produced but must be read as apples-to-oranges.
	Comparable bool `json:"comparable"`
	// Checked counts comparisons performed; Findings holds only the
	// out-of-band ones, in a fixed plane order (deterministic given the two
	// artifacts).
	Checked  int       `json:"checked"`
	Findings []Finding `json:"findings"`
}

// Clean reports no findings on comparable artifacts — the CI gate.
func (d *DiffReport) Clean() bool { return d.Comparable && len(d.Findings) == 0 }

// Regressions filters the findings that moved in the bad direction.
func (d *DiffReport) Regressions() []Finding {
	var out []Finding
	for _, f := range d.Findings {
		if f.Regression {
			out = append(out, f)
		}
	}
	return out
}

// String renders the full diff report, byte-deterministic for a given pair.
func (d *DiffReport) String() string {
	var b strings.Builder
	if !d.Comparable {
		fmt.Fprintf(&b, "WARNING: artifacts are not comparable (fingerprint mismatch)\n")
		fmt.Fprintf(&b, "  old: %+v\n  new: %+v\n", d.OldFingerprint, d.NewFingerprint)
	}
	if len(d.Findings) == 0 {
		fmt.Fprintf(&b, "no change: %d attribution stats within noise bands\n", d.Checked)
		return b.String()
	}
	reg := len(d.Regressions())
	fmt.Fprintf(&b, "%d of %d stats moved out of band (%d regressions):\n",
		len(d.Findings), d.Checked, reg)
	for _, f := range d.Findings {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// WriteTo writes the rendered report.
func (d *DiffReport) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, d.String())
	return int64(n), err
}

// pct is the relative move in percent, 0 when the base is 0.
func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// Diff compares two artifacts plane by plane. Order of findings is fixed:
// fingerprint, phases (path order), end-to-end, bottlenecks (old rank order),
// scorecard (old claim order), knees (old order), bench (old row order).
func Diff(old, new *Artifact, opts Options) *DiffReport {
	o := opts.withDefaults()
	d := &DiffReport{
		OldFingerprint: old.Fingerprint,
		NewFingerprint: new.Fingerprint,
		Comparable:     old.Version == new.Version && old.Fingerprint == new.Fingerprint,
	}
	if !d.Comparable {
		d.Findings = append(d.Findings, Finding{
			Kind: "fingerprint", Subject: "artifact",
			Detail: fmt.Sprintf("old %+v vs new %+v", old.Fingerprint, new.Fingerprint),
		})
	}
	d.diffReports(old.Report, new.Report, o)
	d.diffScorecards(old.Scorecard, new.Scorecard, o)
	d.diffKnees(old.Knees, new.Knees, o)
	d.diffBench(old.Bench, new.Bench)
	return d
}

// latencyMoved applies the relative band plus the absolute floor.
func (o Options) latencyMoved(old, new int64) bool {
	diff := new - old
	if diff < 0 {
		diff = -diff
	}
	if diff <= o.LatencyFloorNs {
		return false
	}
	band := float64(old) * o.LatencyFrac
	return float64(diff) > band
}

func (d *DiffReport) checkLatency(kind, subject, metric string, old, new int64, o Options) {
	d.Checked++
	if !o.latencyMoved(old, new) {
		return
	}
	d.Findings = append(d.Findings, Finding{
		Kind: kind, Subject: subject, Metric: metric,
		Old: float64(old), New: float64(new),
		DeltaPct: pct(float64(old), float64(new)), Regression: new > old,
	})
}

func (d *DiffReport) diffReports(old, new *profile.Report, o Options) {
	if old == nil || new == nil {
		return
	}
	// Phases: wait p99 and service p99, path order. This is where "which
	// phase moved" comes from — a dispatcher slowdown lands in the SNIC
	// phase's wait, a PCIe change in the transfer phase's service.
	newPhase := make(map[string]profile.PhaseStats, len(new.Phases))
	for _, p := range new.Phases {
		newPhase[p.Phase] = p
	}
	for _, op := range old.Phases {
		np, ok := newPhase[op.Phase]
		if !ok {
			continue
		}
		d.checkLatency("phase-wait", op.Phase, "wait_p99_ns", op.Wait.P99Ns, np.Wait.P99Ns, o)
		d.checkLatency("phase-service", op.Phase, "service_p99_ns", op.Service.P99Ns, np.Service.P99Ns, o)
	}
	d.checkLatency("end-to-end", "end-to-end", "p99_ns", old.EndToEnd.P99Ns, new.EndToEnd.P99Ns, o)

	// Bottlenecks: which resource's utilization or queue slope moved, and
	// whether the top suspect changed at all.
	newBn := make(map[string]profile.Bottleneck, len(new.Bottlenecks))
	for _, b := range new.Bottlenecks {
		newBn[b.Resource] = b
	}
	for _, ob := range old.Bottlenecks {
		nb, ok := newBn[ob.Resource]
		if !ok {
			d.Findings = append(d.Findings, Finding{
				Kind: "bottleneck-util", Subject: ob.Resource, Metric: "utilization",
				Old: ob.Utilization, Regression: false, Detail: "resource absent from new artifact",
			})
			continue
		}
		d.Checked++
		if du := nb.Utilization - ob.Utilization; du > o.UtilAbs || du < -o.UtilAbs {
			d.Findings = append(d.Findings, Finding{
				Kind: "bottleneck-util", Subject: ob.Resource, Metric: "utilization",
				Old: ob.Utilization, New: nb.Utilization,
				DeltaPct: pct(ob.Utilization, nb.Utilization), Regression: du > 0,
			})
		}
		d.Checked++
		if ds := nb.QueueSlope - ob.QueueSlope; ds > o.SlopeAbs || ds < -o.SlopeAbs {
			d.Findings = append(d.Findings, Finding{
				Kind: "bottleneck-slope", Subject: ob.Resource, Metric: "queue_slope_per_sec",
				Old: ob.QueueSlope, New: nb.QueueSlope,
				DeltaPct: pct(ob.QueueSlope, nb.QueueSlope), Regression: ds > 0,
			})
		}
	}
	d.Checked++
	if len(old.Bottlenecks) > 0 && len(new.Bottlenecks) > 0 &&
		old.Bottlenecks[0].Resource != new.Bottlenecks[0].Resource {
		d.Findings = append(d.Findings, Finding{
			Kind: "bottleneck-rank", Subject: new.Bottlenecks[0].Resource, Metric: "rank",
			Old: 0, New: 1, Regression: true,
			Detail: fmt.Sprintf("top bottleneck changed from %s to %s",
				old.Bottlenecks[0].Resource, new.Bottlenecks[0].Resource),
		})
	}
}

func (d *DiffReport) diffScorecards(old, new []ClaimRow, o Options) {
	newRow := make(map[string]ClaimRow, len(new))
	for _, r := range new {
		newRow[r.ID] = r
	}
	for _, or := range old {
		nr, ok := newRow[or.ID]
		if !ok {
			d.Findings = append(d.Findings, Finding{
				Kind: "scorecard", Subject: or.ID, Metric: or.Metric,
				Old: or.Value, Regression: true, Detail: "claim absent from new artifact",
			})
			continue
		}
		d.Checked++
		flipped := or.Pass != nr.Pass
		diff := nr.Value - or.Value
		if diff < 0 {
			diff = -diff
		}
		moved := or.Value != 0 && diff/abs(or.Value) > o.ValueFrac
		if !flipped && !moved {
			continue
		}
		detail := ""
		if flipped {
			detail = fmt.Sprintf("pass %v -> %v, band %s", or.Pass, nr.Pass, nr.Band)
		}
		d.Findings = append(d.Findings, Finding{
			Kind: "scorecard", Subject: or.ID, Metric: or.Metric,
			Old: or.Value, New: nr.Value, DeltaPct: pct(or.Value, nr.Value),
			Regression: flipped && !nr.Pass, Detail: detail,
		})
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func (d *DiffReport) diffKnees(old, new []Knee, o Options) {
	newKnee := make(map[string]Knee, len(new))
	for _, k := range new {
		newKnee[k.Name] = k
	}
	for _, ok_ := range old {
		nk, present := newKnee[ok_.Name]
		if !present {
			continue
		}
		d.Checked++
		op, np := ok_.Estimate.PredictedPerSec, nk.Estimate.PredictedPerSec
		if ok_.Estimate.Valid != nk.Estimate.Valid {
			d.Findings = append(d.Findings, Finding{
				Kind: "knee", Subject: ok_.Name, Metric: "predicted_per_sec",
				Old: op, New: np, Regression: !nk.Estimate.Valid,
				Detail: fmt.Sprintf("estimate validity %v -> %v", ok_.Estimate.Valid, nk.Estimate.Valid),
			})
			continue
		}
		if op == 0 || abs(np-op)/op <= o.KneeFrac {
			continue
		}
		d.Findings = append(d.Findings, Finding{
			Kind: "knee", Subject: ok_.Name, Metric: "predicted_per_sec",
			Old: op, New: np, DeltaPct: pct(op, np),
			// A knee moving down means the system saturates earlier —
			// predicted capacity lost.
			Regression: np < op,
			Detail:     fmt.Sprintf("pivot %s util %.3f -> %.3f", nk.Estimate.Resource, ok_.Estimate.Utilization, nk.Estimate.Utilization),
		})
	}
}

// regressionDirection says whether a raised value of the metric is bad.
var regressionDirection = map[string]bool{
	"ns/op":      true,
	"B/op":       true,
	"allocs/op":  true,
	"events/sec": false,
}

// diffBench compares the benchmark samples the two artifacts recorded for
// *their own* builds (each embedded Comparison's new side), using the same
// Mann-Whitney U machinery cmd/benchcmp applies — the one plane where real
// noise bands, not declared ones, are available.
func (d *DiffReport) diffBench(old, new *bench.Comparison) {
	if old == nil || new == nil {
		return
	}
	type side struct {
		samples []float64
		median  float64
	}
	pick := func(r bench.Row) (side, bool) {
		if len(r.NewSamples) > 0 && r.NewMedian != nil {
			return side{r.NewSamples, *r.NewMedian}, true
		}
		return side{}, false
	}
	newRows := make(map[bench.Key]side, len(new.Rows))
	for _, r := range new.Rows {
		if s, ok := pick(r); ok {
			newRows[bench.Key{Bench: r.Benchmark, Metric: r.Metric}] = s
		}
	}
	for _, r := range old.Rows {
		os_, ok := pick(r)
		if !ok {
			continue
		}
		ns, ok := newRows[bench.Key{Bench: r.Benchmark, Metric: r.Metric}]
		if !ok {
			continue
		}
		d.Checked++
		p := bench.MannWhitneyP(os_.samples, ns.samples)
		if p >= bench.Alpha {
			continue
		}
		up := ns.median > os_.median
		d.Findings = append(d.Findings, Finding{
			Kind: "bench", Subject: r.Benchmark, Metric: r.Metric,
			Old: os_.median, New: ns.median, DeltaPct: pct(os_.median, ns.median),
			Regression: up == regressionDirection[r.Metric],
			Detail:     fmt.Sprintf("p=%.3f", p),
		})
	}
}
