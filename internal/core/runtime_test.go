package core_test

import (
	"fmt"
	"testing"
	"time"

	"lynx/internal/accel"
	"lynx/internal/core"
	"lynx/internal/metrics"
	"lynx/internal/model"
	"lynx/internal/mqueue"
	"lynx/internal/netstack"
	"lynx/internal/sim"
	"lynx/internal/snic"
	"lynx/internal/trace"
)

// bed builds the standard single-machine testbed: one server with a
// BlueField and one local K40m, plus a client host.
type bed struct {
	tb     *snic.Testbed
	params model.Params
	server *snic.Machine
	bf     *snic.BlueField
	gpu    *accel.GPU
	client *netstack.Host
}

func newBed(t *testing.T, seed uint64) *bed {
	t.Helper()
	p := model.Default()
	tb := snic.NewTestbed(seed, &p)
	server := tb.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", accel.K40m, false, "server1")
	client := tb.AddClient("client1")
	if err := tb.Validate(server); err != nil {
		t.Fatal(err)
	}
	return &bed{tb: tb, params: p, server: server, bf: bf, gpu: gpu, client: client}
}

// startEchoTBs launches persistent echo threadblocks, one per queue.
func startEchoTBs(t *testing.T, b *bed, h *core.AccelHandle, compute time.Duration) {
	t.Helper()
	qs := h.AccelQueues()
	err := b.gpu.LaunchPersistent(b.tb.Sim, len(qs), func(tb *accel.TB) {
		aq := qs[tb.Index()]
		for {
			m := aq.Recv(tb.Proc())
			if compute > 0 {
				tb.Compute(compute)
			}
			if err := aq.Send(tb.Proc(), uint16(m.Slot), m.Payload); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUDPEchoThroughLynxOnBlueField(t *testing.T) {
	b := newBed(t, 1)
	rt := core.NewRuntime(b.bf.Platform(7))
	h, err := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddService(core.UDP, 7000, nil, 4, h); err != nil {
		t.Fatal(err)
	}
	startEchoTBs(t, b, h, 0)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}

	const n = 200
	var got int
	hist := metrics.NewHistogram()
	cli := b.client.MustUDPBind(9000)
	b.tb.Sim.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			start := p.Now()
			cli.SendTo(netstack.Addr{Host: "bf1", Port: 7000}, []byte(fmt.Sprintf("ping-%03d", i)))
			dg := cli.Recv(p)
			hist.Record(p.Now().Sub(start))
			if string(dg.Payload) != fmt.Sprintf("ping-%03d", i) {
				t.Errorf("echo %d corrupted: %q", i, dg.Payload)
			}
			got++
		}
	})
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return got == n })
	b.tb.Sim.Shutdown()
	if got != n {
		t.Fatalf("received %d/%d echoes", got, n)
	}
	// §6.2: zero-work GPU request end-to-end ≈ 25 µs via BlueField.
	med := hist.Median()
	if med < 10*time.Microsecond || med > 45*time.Microsecond {
		t.Fatalf("median E2E latency %v, paper measures ~25µs on BlueField", med)
	}
	st := rt.Stats()
	if st.Received != n || st.Responded != n || st.Dropped() != 0 {
		t.Fatalf("stats rcv=%d resp=%d drop=%d", st.Received, st.Responded, st.Dropped())
	}
}

func TestLynxOnHostXeonIsFasterPerRequest(t *testing.T) {
	run := func(useBF bool) time.Duration {
		b := newBed(t, 2)
		var plat core.Platform
		if useBF {
			plat = b.bf.Platform(7)
		} else {
			plat = b.server.HostPlatform(6, true)
		}
		host := plat.NetHost.Name()
		rt := core.NewRuntime(plat)
		h, _ := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}, 1)
		if _, err := rt.AddService(core.UDP, 7000, nil, 1, h); err != nil {
			t.Fatal(err)
		}
		startEchoTBs(t, b, h, 0)
		rt.Start()
		hist := metrics.NewHistogram()
		cli := b.client.MustUDPBind(9000)
		b.tb.Sim.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				start := p.Now()
				cli.SendTo(netstack.Addr{Host: host, Port: 7000}, make([]byte, 20))
				cli.Recv(p)
				hist.Record(p.Now().Sub(start))
			}
		})
		b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return hist.Count() == 100 })
		b.tb.Sim.Shutdown()
		return hist.Median()
	}
	bfLat := run(true)
	xeonLat := run(false)
	// §6.2: 25 µs on BlueField vs 19 µs on the host CPU for short requests.
	if xeonLat >= bfLat {
		t.Fatalf("Xeon latency %v should beat BlueField %v for short requests", xeonLat, bfLat)
	}
	ratio := float64(bfLat) / float64(xeonLat)
	if ratio < 1.1 || ratio > 1.9 {
		t.Fatalf("BF/Xeon latency ratio %.2f, paper ≈ 25/19 ≈ 1.3", ratio)
	}
}

func TestTCPServiceEcho(t *testing.T) {
	b := newBed(t, 3)
	rt := core.NewRuntime(b.bf.Platform(7))
	h, _ := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}, 2)
	if _, err := rt.AddService(core.TCP, 7100, nil, 2, h); err != nil {
		t.Fatal(err)
	}
	startEchoTBs(t, b, h, 0)
	rt.Start()
	var got int
	b.tb.Sim.Spawn("client", func(p *sim.Proc) {
		conn, err := b.client.TCPDial(p, netstack.Addr{Host: "bf1", Port: 7100})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 50; i++ {
			conn.Send(p, []byte(fmt.Sprintf("req-%02d", i)))
			msg, err := conn.Recv(p)
			if err != nil {
				t.Error(err)
				return
			}
			if string(msg) != fmt.Sprintf("req-%02d", i) {
				t.Errorf("echo %d = %q", i, msg)
			}
			got++
		}
		conn.Close()
	})
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return got == 50 })
	b.tb.Sim.Shutdown()
	if got != 50 {
		t.Fatalf("got %d/50 TCP echoes", got)
	}
}

// Multiple clients multiplexed over the same server mqueues (§4.5 "Scaling
// to multiple connections"): responses must reach the right client.
func TestResponseRoutingAcrossClients(t *testing.T) {
	b := newBed(t, 4)
	rt := core.NewRuntime(b.bf.Platform(7))
	h, _ := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}, 2)
	rt.AddService(core.UDP, 7000, &core.RoundRobin{}, 2, h)
	startEchoTBs(t, b, h, 5*time.Microsecond)
	rt.Start()
	const perClient = 40
	doneClients := 0
	errs := 0
	for c := 0; c < 4; c++ {
		c := c
		cli := b.tb.AddClient(fmt.Sprintf("cl%d", c)).MustUDPBind(9000)
		b.tb.Sim.Spawn(fmt.Sprintf("client%d", c), func(p *sim.Proc) {
			for i := 0; i < perClient; i++ {
				payload := []byte(fmt.Sprintf("c%d-m%04d", c, i))
				cli.SendTo(netstack.Addr{Host: "bf1", Port: 7000}, payload)
				dg := cli.Recv(p)
				if string(dg.Payload) != string(payload) {
					errs++
				}
			}
			doneClients++
		})
	}
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return doneClients == 4 })
	b.tb.Sim.Shutdown()
	if errs != 0 {
		t.Fatalf("%d cross-routed responses", errs)
	}
}

// Sticky policy must route one client to one queue; round robin must spread.
func TestDispatchPolicies(t *testing.T) {
	from := netstack.Addr{Host: "clientX", Port: 1234}
	sticky := core.StickyHash{}
	first := sticky.Pick(from, 8)
	for i := 0; i < 10; i++ {
		if sticky.Pick(from, 8) != first {
			t.Fatal("sticky policy must be deterministic per client")
		}
	}
	other := netstack.Addr{Host: "clientY", Port: 999}
	_ = sticky.Pick(other, 8) // just must not panic
	rr := &core.RoundRobin{}
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		seen[rr.Pick(from, 8)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("round robin covered %d/8 queues", len(seen))
	}
}

// Client mqueues: the accelerator reaches a backend (memcached-style echo)
// through Lynx over TCP, no host CPU involved.
func TestClientQueueToBackend(t *testing.T) {
	b := newBed(t, 5)
	// Backend: a TCP echo server on another machine.
	backend := b.tb.NewMachine("backend1", 6)
	l := backend.NetHost.MustTCPListen(11211)
	b.tb.Sim.Spawn("backend", func(p *sim.Proc) {
		conn := l.Accept(p)
		for {
			msg, err := conn.Recv(p)
			if err != nil {
				return
			}
			backend.CPU.ExecOn(p, 4*time.Microsecond)
			conn.Send(p, append([]byte("db:"), msg...))
		}
	})

	rt := core.NewRuntime(b.bf.Platform(7))
	h, _ := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ClientQueue, Slots: 16, SlotSize: 128}, 1)
	cb, err := rt.AddClientQueue(h, core.TCP, netstack.Addr{Host: "backend1", Port: 11211})
	if err != nil {
		t.Fatal(err)
	}
	aq := h.AccelQueues()[cb.QueueIndex()]
	var results []string
	if err := b.gpu.LaunchPersistent(b.tb.Sim, 1, func(tb *accel.TB) {
		for i := 0; i < 5; i++ {
			if err := aq.Send(tb.Proc(), 0, []byte(fmt.Sprintf("q%d", i))); err != nil {
				return
			}
			m := aq.Recv(tb.Proc())
			if m.Err != 0 {
				t.Errorf("unexpected error status %d", m.Err)
				return
			}
			results = append(results, string(m.Payload))
		}
	}); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return len(results) == 5 })
	b.tb.Sim.Shutdown()
	if len(results) != 5 {
		t.Fatalf("accelerator completed %d/5 backend round trips", len(results))
	}
	for i, r := range results {
		if r != fmt.Sprintf("db:q%d", i) {
			t.Fatalf("result %d = %q", i, r)
		}
	}
}

// Remote accelerators (§5.5): same Lynx code, extra latency only.
func TestRemoteGPULatencyPenalty(t *testing.T) {
	run := func(remote bool) time.Duration {
		b := newBed(t, 6)
		gpu := b.gpu
		if remote {
			m2 := b.tb.NewMachine("server2", 6)
			gpu = m2.AddGPU("gpu-remote", accel.K40m, false, "server1")
		}
		rt := core.NewRuntime(b.bf.Platform(7))
		h, _ := rt.Register(gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}, 1)
		rt.AddService(core.UDP, 7000, nil, 1, h)
		qs := h.AccelQueues()
		gpu.LaunchPersistent(b.tb.Sim, 1, func(tb *accel.TB) {
			aq := qs[0]
			for {
				m := aq.Recv(tb.Proc())
				if err := aq.Send(tb.Proc(), uint16(m.Slot), m.Payload); err != nil {
					return
				}
			}
		})
		rt.Start()
		hist := metrics.NewHistogram()
		cli := b.client.MustUDPBind(9000)
		b.tb.Sim.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < 60; i++ {
				start := p.Now()
				cli.SendTo(netstack.Addr{Host: "bf1", Port: 7000}, make([]byte, 64))
				cli.Recv(p)
				hist.Record(p.Now().Sub(start))
			}
		})
		b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return hist.Count() == 60 })
		b.tb.Sim.Shutdown()
		return hist.Median()
	}
	local := run(false)
	remote := run(true)
	gap := remote - local
	// §6.3: "Using remote GPUs adds about 8 µsec latency."
	if gap < 5*time.Microsecond || gap > 14*time.Microsecond {
		t.Fatalf("remote GPU penalty %v, paper measures ~8µs (local %v, remote %v)", gap, local, remote)
	}
}

// Overload behaviour: when the accelerator cannot keep up, Lynx drops
// excess requests at the ring instead of queueing unboundedly.
func TestOverloadDropsAtFullRings(t *testing.T) {
	b := newBed(t, 7)
	rt := core.NewRuntime(b.bf.Platform(7))
	h, _ := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 4, SlotSize: 128}, 1)
	rt.AddService(core.UDP, 7000, nil, 1, h)
	startEchoTBs(t, b, h, 2*time.Millisecond) // 500 req/s capacity
	rt.Start()
	cli := b.client.MustUDPBind(9000)
	b.tb.Sim.Spawn("flood", func(p *sim.Proc) {
		for i := 0; i < 1000; i++ {
			cli.SendTo(netstack.Addr{Host: "bf1", Port: 7000}, make([]byte, 64))
			p.Sleep(10 * time.Microsecond) // 100K req/s offered
		}
	})
	b.tb.Sim.RunUntil(sim.Time(15 * time.Millisecond))
	b.tb.Sim.Shutdown()
	st := rt.Stats()
	if st.Dropped() == 0 {
		t.Fatal("expected drops under 200x overload")
	}
	if st.Responded == 0 {
		t.Fatal("server made no progress under overload")
	}
}

// Forced mqueue overflow must surface as trace.Drop events with the
// overflow cause, and the trace ring must stay consistent after wrapping.
func TestOverflowDropsAreTraced(t *testing.T) {
	b := newBed(t, 17)
	plat := b.bf.Platform(7)
	tr := trace.New(32) // small: guaranteed to wrap under the flood below
	plat.Tracer = tr
	rt := core.NewRuntime(plat)
	h, _ := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 4, SlotSize: 128}, 1)
	svc, _ := rt.AddService(core.UDP, 7000, nil, 1, h)
	startEchoTBs(t, b, h, 2*time.Millisecond)
	rt.Start()
	cli := b.client.MustUDPBind(9000)
	b.tb.Sim.Spawn("flood", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			cli.SendTo(svc.Addr(), make([]byte, 64))
			p.Sleep(10 * time.Microsecond)
		}
	})
	b.tb.Sim.RunUntil(sim.Time(10 * time.Millisecond))
	b.tb.Sim.Shutdown()
	st := rt.Stats()
	if st.DroppedOverflow == 0 {
		t.Fatalf("no overflow drops under flood: %s", st)
	}
	if got := tr.Count(trace.Drop); got != st.DroppedOverflow {
		t.Fatalf("trace.Drop count %d, stats overflow %d", got, st.DroppedOverflow)
	}
	if tr.Total() <= 32 {
		t.Fatalf("ring never wrapped (total %d)", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 32 {
		t.Fatalf("retained %d events, want full ring", len(evs))
	}
	sawDrop := false
	for i, ev := range evs {
		if i > 0 && ev.At < evs[i-1].At {
			t.Fatal("trace not chronological after wraparound")
		}
		if ev.Kind == trace.Drop {
			sawDrop = true
			if core.DropCause(ev.Arg1) != core.DropOverflow {
				t.Fatalf("drop cause %v, want overflow", core.DropCause(ev.Arg1))
			}
		}
	}
	if !sawDrop {
		t.Fatal("no Drop event retained in the wrapped ring")
	}
}

func TestRegistrationErrors(t *testing.T) {
	b := newBed(t, 8)
	rt := core.NewRuntime(b.bf.Platform(7))
	h, err := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 8, SlotSize: 64}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Claiming more queues than registered must fail.
	if _, err := rt.AddService(core.UDP, 7000, nil, 3, h); err == nil {
		t.Fatal("over-claiming queues must fail")
	}
	if _, err := rt.AddService(core.UDP, 7001, nil, 0, h); err == nil {
		t.Fatal("service without queues must fail")
	}
	rt.Start()
	if err := rt.Start(); err == nil {
		t.Fatal("double Start must fail")
	}
	if _, err := rt.Register(b.gpu, mqueue.Config{Slots: 4, SlotSize: 64}, 1); err == nil {
		t.Fatal("Register after Start must fail")
	}
	if _, err := rt.AddService(core.UDP, 7002, nil, 1, h); err == nil {
		t.Fatal("AddService after Start must fail")
	}
	if _, err := rt.AddClientQueue(h, core.TCP, netstack.Addr{}); err == nil {
		t.Fatal("AddClientQueue after Start must fail")
	}
	b.tb.Sim.Shutdown()
}

// Multi-tenancy (§4.5): two services on different ports and accelerator
// queue sets stay fully isolated.
func TestMultiTenantIsolation(t *testing.T) {
	b := newBed(t, 9)
	rt := core.NewRuntime(b.bf.Platform(7))
	h, _ := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}, 4)
	rt.AddService(core.UDP, 7000, nil, 2, h)
	rt.AddService(core.UDP, 8000, nil, 2, h)
	qs := h.AccelQueues()
	// Tenant A's queues (0,1) answer "A", tenant B's (2,3) answer "B".
	b.gpu.LaunchPersistent(b.tb.Sim, 4, func(tb *accel.TB) {
		aq := qs[tb.Index()]
		tag := byte('A')
		if tb.Index() >= 2 {
			tag = 'B'
		}
		for {
			m := aq.Recv(tb.Proc())
			if err := aq.Send(tb.Proc(), uint16(m.Slot), []byte{tag}); err != nil {
				return
			}
		}
	})
	rt.Start()
	var fromA, fromB []byte
	cli := b.client.MustUDPBind(9000)
	b.tb.Sim.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			cli.SendTo(netstack.Addr{Host: "bf1", Port: 7000}, []byte("x"))
			dg := cli.Recv(p)
			fromA = append(fromA, dg.Payload...)
			cli.SendTo(netstack.Addr{Host: "bf1", Port: 8000}, []byte("x"))
			dg = cli.Recv(p)
			fromB = append(fromB, dg.Payload...)
		}
	})
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return len(fromA) == 20 && len(fromB) == 20 })
	b.tb.Sim.Shutdown()
	for _, c := range fromA {
		if c != 'A' {
			t.Fatal("tenant A received tenant B's responses")
		}
	}
	for _, c := range fromB {
		if c != 'B' {
			t.Fatal("tenant B received tenant A's responses")
		}
	}
	if len(fromA) != 20 || len(fromB) != 20 {
		t.Fatalf("A=%d B=%d responses", len(fromA), len(fromB))
	}
}

// Client mqueues over UDP: the accelerator reaches a UDP backend through
// Lynx (the transport the paper uses for client-facing traffic also works
// for backends).
func TestClientQueueUDPBackend(t *testing.T) {
	b := newBed(t, 11)
	backend := b.tb.NewMachine("backend1", 6)
	bsock := backend.NetHost.MustUDPBind(5300)
	b.tb.Sim.Spawn("udp-backend", func(p *sim.Proc) {
		for {
			dg := bsock.Recv(p)
			backend.CPU.ExecOn(p, 2*time.Microsecond)
			bsock.SendTo(dg.From, append([]byte("u:"), dg.Payload...))
		}
	})
	rt := core.NewRuntime(b.bf.Platform(7))
	h, _ := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ClientQueue, Slots: 16, SlotSize: 128}, 1)
	cb, err := rt.AddClientQueue(h, core.UDP, netstack.Addr{Host: "backend1", Port: 5300})
	if err != nil {
		t.Fatal(err)
	}
	aq := h.AccelQueues()[cb.QueueIndex()]
	var got []string
	b.gpu.LaunchPersistent(b.tb.Sim, 1, func(tb *accel.TB) {
		for i := 0; i < 5; i++ {
			if aq.Send(tb.Proc(), 0, []byte(fmt.Sprintf("m%d", i))) != nil {
				return
			}
			m := aq.Recv(tb.Proc())
			got = append(got, string(m.Payload))
		}
	})
	rt.Start()
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return len(got) == 5 })
	b.tb.Sim.Shutdown()
	if len(got) != 5 {
		t.Fatalf("completed %d/5 UDP backend round trips", len(got))
	}
	for i, g := range got {
		if g != fmt.Sprintf("u:m%d", i) {
			t.Fatalf("reply %d = %q", i, g)
		}
	}
}

// §5.1 failure injection: when the backend connection dies, the SNIC reports
// the error to the accelerator through the mqueue metadata error status.
func TestClientQueueConnectionErrorMetadata(t *testing.T) {
	b := newBed(t, 12)
	backend := b.tb.NewMachine("backend1", 6)
	l := backend.NetHost.MustTCPListen(11211)
	var serverConn *netstack.TCPConn
	b.tb.Sim.Spawn("backend", func(p *sim.Proc) {
		serverConn = l.Accept(p)
		msg, err := serverConn.Recv(p)
		if err != nil {
			return
		}
		serverConn.Send(p, msg)
		// Then the backend dies abruptly.
		p.Sleep(50 * time.Microsecond)
		serverConn.Abort()
	})
	rt := core.NewRuntime(b.bf.Platform(7))
	h, _ := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ClientQueue, Slots: 16, SlotSize: 128}, 1)
	cb, err := rt.AddClientQueue(h, core.TCP, netstack.Addr{Host: "backend1", Port: 11211})
	if err != nil {
		t.Fatal(err)
	}
	aq := h.AccelQueues()[cb.QueueIndex()]
	var first mqueue.Msg
	var errMsg mqueue.Msg
	gotErr := false
	b.gpu.LaunchPersistent(b.tb.Sim, 1, func(tb *accel.TB) {
		if aq.Send(tb.Proc(), 0, []byte("q1")) != nil {
			return
		}
		first = aq.Recv(tb.Proc())
		// The next receive is the error notification pushed by Lynx when
		// the connection resets.
		errMsg = aq.Recv(tb.Proc())
		gotErr = true
	})
	rt.Start()
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return gotErr })
	b.tb.Sim.Shutdown()
	if string(first.Payload) != "q1" || first.Err != 0 {
		t.Fatalf("first reply = %+v", first)
	}
	if !gotErr || errMsg.Err == 0 {
		t.Fatalf("expected error-status metadata after connection reset, got %+v (gotErr=%v)", errMsg, gotErr)
	}
}

// The runtime tracer must record the full life of a request.
func TestRuntimeTracing(t *testing.T) {
	b := newBed(t, 31)
	plat := b.bf.Platform(7)
	tr := trace.New(256)
	plat.Tracer = tr
	rt := core.NewRuntime(plat)
	h, _ := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 8, SlotSize: 128}, 1)
	svc, _ := rt.AddService(core.UDP, 7000, nil, 1, h)
	startEchoTBs(t, b, h, 0)
	rt.Start()
	done := false
	cli := b.client.MustUDPBind(9000)
	b.tb.Sim.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			cli.SendTo(svc.Addr(), []byte("x"))
			cli.Recv(p)
		}
		done = true
	})
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return done })
	b.tb.Sim.Shutdown()
	for _, k := range []trace.Kind{trace.Recv, trace.Dispatch, trace.Drain, trace.Forward} {
		if tr.Count(k) != 10 {
			t.Fatalf("%v events = %d, want 10 (%s)", k, tr.Count(k), tr.Summary())
		}
	}
	if tr.Count(trace.Drop) != 0 {
		t.Fatalf("unexpected drops: %s", tr.Summary())
	}
	// Events for one request appear in causal order.
	evs := tr.Events()
	if len(evs) < 4 {
		t.Fatal("too few events retained")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("trace not chronological")
		}
	}
}

func TestLeastLoadedPolicy(t *testing.T) {
	b := newBed(t, 41)
	rt := core.NewRuntime(b.bf.Platform(7))
	h, _ := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}, 4)
	policy := core.NewLeastLoaded(h)
	svc, _ := rt.AddService(core.UDP, 7000, policy, 4, h)
	qs := h.AccelQueues()
	// Skewed service times: queue 0 is 10x slower than the others.
	b.gpu.LaunchPersistent(b.tb.Sim, 4, func(tb *accel.TB) {
		aq := qs[tb.Index()]
		work := 20 * time.Microsecond
		if tb.Index() == 0 {
			work = 200 * time.Microsecond
		}
		for {
			m := aq.Recv(tb.Proc())
			tb.Compute(work)
			if aq.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
				return
			}
		}
	})
	rt.Start()
	res := func() float64 {
		g := workloadNew(b, workloadCfg(svc.Addr(), 8, 20*time.Millisecond))
		r := workloadRun(b, g)
		return r.Throughput()
	}()
	// The policy must avoid drowning the slow queue: with pure RR, 1/4 of
	// traffic heads to a 5K-capacity queue and throughput collapses toward
	// 4x5K=20K; least-loaded should exceed that comfortably.
	if res < 40000 {
		t.Fatalf("least-loaded throughput %.0f, want > 40K", res)
	}
	// Degraded (unwired) mode falls back to round-robin without panicking.
	fallback := core.NewLeastLoaded(h)
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		seen[fallback.Pick(netstack.Addr{}, 16)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("fallback RR covered %d/16", len(seen))
	}
}

func TestRuntimeAccessors(t *testing.T) {
	b := newBed(t, 51)
	// Workers <= 0 defaults to 1.
	plat := b.server.HostPlatform(0, true)
	rt := core.NewRuntime(plat)
	h, _ := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 8, SlotSize: 64}, 1)
	if h.Accelerator() != b.gpu {
		t.Fatal("Accelerator accessor wrong")
	}
	svc, _ := rt.AddService(core.UDP, 7000, nil, 1, h)
	if svc.Port() != 7000 {
		t.Fatalf("port %d", svc.Port())
	}
	if core.UDP.String() != "UDP" || core.TCP.String() != "TCP" {
		t.Fatal("proto strings")
	}
	if rt.CPUBusy() != 0 || rt.ExecCalls() != 0 {
		t.Fatal("fresh runtime has CPU time")
	}
	startEchoTBs(t, b, h, 0)
	rt.Start()
	done := false
	cli := b.client.MustUDPBind(9000)
	b.tb.Sim.Spawn("c", func(p *sim.Proc) {
		cli.SendTo(svc.Addr(), []byte("x"))
		cli.Recv(p)
		done = true
	})
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return done })
	b.tb.Sim.Shutdown()
	if rt.CPUBusy() == 0 || rt.ExecCalls() == 0 {
		t.Fatal("request did not register CPU work")
	}
}
