// Monitor: the virtual-time probe process of the observability plane. At a
// fixed virtual interval it snapshots mqueue ring occupancy, SNIC core
// utilization, accelerator (GPU SM) utilization, PCIe link utilization on
// each NIC->accelerator path, and the dispatcher backlog, into bounded
// series registered in a metrics.Registry. Sampling only reads counters the
// simulation already maintains — it never touches a resource, channel or
// random stream — so enabling it cannot change any other component's
// virtual-time behaviour.
package core

import (
	"fmt"
	"time"

	"lynx/internal/fabric"
	"lynx/internal/metrics"
	"lynx/internal/sim"
)

// busyTimer is implemented by accelerators that accumulate execution time
// (accel.GPU); the monitor derives SM utilization from the deltas.
type busyTimer interface {
	BusyTime() time.Duration
	Resident() int
}

// Monitor samples one runtime's occupancy and utilization.
type Monitor struct {
	rt       *Runtime
	reg      *metrics.Registry
	interval time.Duration
}

// monitorSeriesCap bounds each sampled series (most recent samples kept).
const monitorSeriesCap = 4096

// StartMonitor spawns a probe process sampling the runtime every interval of
// virtual time into bounded series registered in reg (a new registry is
// created when reg is nil). It also registers the runtime's counter
// snapshot. Call it after Start, once services and accelerators are wired.
func (rt *Runtime) StartMonitor(interval time.Duration, reg *metrics.Registry) *Monitor {
	if interval <= 0 {
		interval = 100 * time.Microsecond
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m := &Monitor{rt: rt, reg: reg, interval: interval}
	rt.RegisterStats(reg)

	coreUtil := reg.NewSeries("snic/core-util", monitorSeriesCap)
	dispatchUtil := reg.NewSeries("snic/dispatch-util", monitorSeriesCap)
	backlog := reg.NewSeries("snic/backlog", monitorSeriesCap)
	wireUtil := reg.NewSeries("net/wire-util", monitorSeriesCap)

	type handleProbe struct {
		h        *AccelHandle
		inflight *metrics.Series
		txlog    *metrics.Series
		smUtil   *metrics.Series
		busy     busyTimer
		lastBusy time.Duration
		links    []*fabric.Link
		pcieUtil *metrics.Series
		lastLink []time.Duration
	}
	probes := make([]*handleProbe, 0, len(rt.handles))
	for _, h := range rt.handles {
		hp := &handleProbe{
			h:        h,
			inflight: reg.NewSeries(fmt.Sprintf("mq/%s/inflight", h.acc.Name()), monitorSeriesCap),
			txlog:    reg.NewSeries(fmt.Sprintf("mq/%s/tx-backlog", h.acc.Name()), monitorSeriesCap),
		}
		if bt, ok := h.acc.(busyTimer); ok {
			hp.busy = bt
			hp.smUtil = reg.NewSeries(fmt.Sprintf("accel/%s/sm-util", h.acc.Name()), monitorSeriesCap)
			hp.lastBusy = bt.BusyTime()
		}
		if fab := rt.plat.RDMA.Fabric(); fab != nil {
			hp.links = fab.PathLinks(rt.plat.RDMA.NIC(), h.acc.Device())
			if len(hp.links) > 0 {
				hp.pcieUtil = reg.NewSeries(fmt.Sprintf("pcie/%s/link-util", h.acc.Name()), monitorSeriesCap)
				hp.lastLink = make([]time.Duration, len(hp.links))
				for i, l := range hp.links {
					hp.lastLink[i] = l.BusyTime()
				}
			}
		}
		probes = append(probes, hp)
	}

	// Replication plane: held responses and ingest-ring occupancy across all
	// replicators. Occupancy is delivered-but-unacknowledged records over
	// total live ingest capacity — the utilization the quorum wait queues
	// behind, which is what lets PredictKnee learn the replication phase.
	var replHeld, replOccupancy *metrics.Series
	if len(rt.replicators) > 0 {
		replHeld = reg.NewSeries("repl/held", monitorSeriesCap)
		replOccupancy = reg.NewSeries("repl/ingest-occupancy", monitorSeriesCap)
	}

	lastCPU := rt.cpuBusy
	lastSerial := rt.serialBusy
	lastWire := rt.plat.NetHost.WireBusy()
	rt.plat.Sim.Spawn("lynx/monitor", func(p *sim.Proc) {
		for {
			p.Sleep(interval)
			at := time.Duration(p.Now())

			busy := rt.cpuBusy - lastCPU
			lastCPU = rt.cpuBusy
			coreUtil.Add(at, clamp01(float64(busy)/(float64(interval)*float64(rt.plat.Workers))))

			// The serialized stack/dispatch section admits one worker at a
			// time: its occupancy of a single core is the dispatcher
			// utilization, the paper's Lynx-on-BlueField throughput limit.
			sb := rt.serialBusy - lastSerial
			lastSerial = rt.serialBusy
			dispatchUtil.Add(at, clamp01(float64(sb)/float64(interval)))

			// NIC wire: serialization busy time accumulates on both the up
			// and down link, so full duplex saturation is 2x the interval.
			wb := rt.plat.NetHost.WireBusy()
			wireUtil.Add(at, clamp01(float64(wb-lastWire)/(2*float64(interval))))
			lastWire = wb

			st := rt.stats
			backlog.Add(at, float64(int64(st.Received)-int64(st.Responded)-int64(st.Dropped())))

			if replHeld != nil {
				held, outstanding, slots := 0, 0, 0
				for _, r := range rt.replicators {
					held += int(r.held)
					for _, rp := range r.peers {
						if rp.dead {
							continue
						}
						outstanding += rp.outstanding
						slots += rp.q.Slots()
					}
				}
				replHeld.Add(at, float64(held))
				occ := 0.0
				if slots > 0 {
					occ = clamp01(float64(outstanding) / float64(slots))
				}
				replOccupancy.Add(at, occ)
			}

			for _, hp := range probes {
				inflight, txlog := 0, 0
				for i := 0; i < hp.h.group.Len(); i++ {
					q := hp.h.group.Queue(i)
					inflight += q.InFlight()
					txlog += q.TxBacklog()
				}
				hp.inflight.Add(at, float64(inflight))
				hp.txlog.Add(at, float64(txlog))
				if hp.busy != nil {
					d := hp.busy.BusyTime() - hp.lastBusy
					hp.lastBusy += d
					if n := hp.busy.Resident(); n > 0 {
						hp.smUtil.Add(at, clamp01(float64(d)/(float64(interval)*float64(n))))
					} else {
						hp.smUtil.Add(at, 0)
					}
				}
				if hp.pcieUtil != nil {
					var d time.Duration
					for i, l := range hp.links {
						b := l.BusyTime()
						d += b - hp.lastLink[i]
						hp.lastLink[i] = b
					}
					hp.pcieUtil.Add(at, clamp01(float64(d)/(float64(interval)*float64(len(hp.links)))))
				}
			}
		}
	})
	return m
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Registry returns the registry the monitor samples into.
func (m *Monitor) Registry() *metrics.Registry { return m.reg }

// Interval returns the sampling period.
func (m *Monitor) Interval() time.Duration { return m.interval }

// RegisterStats publishes the runtime's counters (and those of its platform:
// netstack drops, RDMA retransmits) into reg as component snapshots.
func (rt *Runtime) RegisterStats(reg *metrics.Registry) {
	reg.AddStats("runtime", func() []metrics.Stat {
		st := rt.stats
		return []metrics.Stat{
			{Name: "received", Value: float64(st.Received)},
			{Name: "responded", Value: float64(st.Responded)},
			{Name: "forwarded", Value: float64(st.Forwarded)},
			{Name: "dropped_overflow", Value: float64(st.DroppedOverflow)},
			{Name: "dropped_stalled", Value: float64(st.DroppedStalled)},
			{Name: "dropped_backend", Value: float64(st.DroppedBackend)},
			{Name: "retries", Value: float64(st.Retries)},
			{Name: "failovers", Value: float64(st.Failovers)},
			{Name: "failbacks", Value: float64(st.Failbacks)},
			{Name: "cpu_busy_us", Value: float64(rt.cpuBusy) / 1e3},
			{Name: "exec_calls", Value: float64(rt.execCalls)},
		}
	})
	reg.AddStats("netstack", func() []metrics.Stat {
		return []metrics.Stat{{Name: "rx_dropped", Value: float64(rt.plat.NetHost.Dropped())}}
	})
	reg.AddStats("rdma", func() []metrics.Stat {
		return []metrics.Stat{
			{Name: "ops", Value: float64(rt.plat.RDMA.Ops())},
			{Name: "retried", Value: float64(rt.plat.RDMA.Retried())},
		}
	})
	if sp := rt.plat.Spans; sp != nil {
		reg.AddStats("spans", func() []metrics.Stat {
			return []metrics.Stat{
				{Name: "begun", Value: float64(sp.Begun())},
				{Name: "closed", Value: float64(sp.Closed())},
				{Name: "evicted", Value: float64(sp.Evicted())},
			}
		})
	}
}
