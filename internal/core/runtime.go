// Package core implements the Lynx runtime — the paper's contribution: a
// generic, application-agnostic network server that runs on a SmartNIC (or a
// host CPU core for comparison) and connects network clients to accelerators
// through mqueues (§4).
//
// Components, following Figure 4:
//
//   - Network Server: TCP/UDP endpoints listening on application ports.
//   - Message Dispatcher: maps each received message to a server mqueue
//     according to a dispatch policy, and delivers it with one-sided RDMA.
//   - Message Forwarder: drains responses from TX rings and sends them back
//     to the originating client (server queues) or to the configured backend
//     (client queues).
//   - Remote Message Queue Manager: the RDMA machinery that keeps all
//     mqueue state in accelerator memory, one RC QP and one region per
//     accelerator, with batched header polling.
//
// No application code runs on the SmartNIC; accelerators attach to their
// queues via the lightweight mqueue accelerator-side library.
package core

import (
	"fmt"
	"time"

	"lynx/internal/accel"
	"lynx/internal/check"
	"lynx/internal/cpuarch"
	"lynx/internal/model"
	"lynx/internal/mqueue"
	"lynx/internal/netstack"
	"lynx/internal/rdma"
	"lynx/internal/sim"
	"lynx/internal/trace"
)

// Platform describes where a Lynx runtime executes: a BlueField SmartNIC, a
// set of host CPU cores, etc.
type Platform struct {
	Sim    *sim.Sim
	Params *model.Params
	// Machine provides the core microarchitecture (Xeon/ARM) and the noisy
	// neighbor state.
	Machine *cpuarch.Machine
	// NetHost is the runtime's network endpoint (the SNIC's multi-homed
	// address, §2, or the host's own when Lynx runs on the CPU).
	NetHost *netstack.Host
	// RDMA is the NIC engine used by the Remote MQ Manager.
	RDMA *rdma.Engine
	// Workers is the number of cores dedicated to the runtime (7 of 8 ARM
	// cores on BlueField, §6.1; 1 or 6 Xeon cores in the comparisons).
	Workers int
	// Bypass selects VMA user-level networking (§5.1.1); the paper always
	// enables it where available.
	Bypass bool
	// Tracer, when non-nil, records runtime events (see internal/trace).
	Tracer *trace.Tracer
	// Spans, when non-nil, records per-request stage timestamps into a
	// fixed-memory span table (request-scoped tracing; see internal/trace).
	// The runtime threads it through to the accelerator-side mqueue views
	// at Register time.
	Spans *trace.SpanTable
	// Check, when enabled, receives runtime invariant violations (request
	// conservation, ring bounds, orphan responses). The runtime threads it
	// through to every mqueue it creates at Register time. A nil checker
	// costs one pointer test per guarded site.
	Check *check.Checker
}

// DropCause classifies why the runtime discarded a message.
type DropCause int

const (
	// DropOverflow: a healthy mqueue's RX ring was full — the explicit
	// overload-shedding point (the accelerator is not keeping up).
	DropOverflow DropCause = iota
	// DropStalled: the message was aimed at a watchdog-failed queue and no
	// capacity remained anywhere else.
	DropStalled
	// DropBackend: a backend-facing message was abandoned — a backend
	// response hit a full client-mqueue RX ring, or a client-mqueue request
	// exhausted its retransmission budget.
	DropBackend
	numDropCauses
)

// String names the cause.
func (c DropCause) String() string {
	switch c {
	case DropOverflow:
		return "overflow"
	case DropStalled:
		return "stalled"
	case DropBackend:
		return "backend"
	default:
		return "unknown"
	}
}

// Stats is the runtime's counter snapshot. All counters are monotonic.
type Stats struct {
	// Received counts messages accepted from the network into mqueues.
	Received uint64
	// Responded counts responses sent back to clients.
	Responded uint64
	// Forwarded counts client-mqueue messages shipped to backends.
	Forwarded uint64
	// DroppedOverflow/DroppedStalled/DroppedBackend count discarded
	// messages by cause (see DropCause).
	DroppedOverflow uint64
	DroppedStalled  uint64
	DroppedBackend  uint64
	// Retries counts client-mqueue retransmissions after request timeouts.
	Retries uint64
	// Failovers counts queues the MQ-manager watchdog marked failed;
	// Failbacks counts queues it restored after they made progress again.
	Failovers uint64
	Failbacks uint64
}

// Dropped totals discarded messages across all causes.
func (s Stats) Dropped() uint64 {
	return s.DroppedOverflow + s.DroppedStalled + s.DroppedBackend
}

// String formats the snapshot on one line with a stable field order, so it is
// byte-comparable across runs in determinism tests.
func (s Stats) String() string {
	return fmt.Sprintf("received=%d responded=%d forwarded=%d dropped=%d(overflow=%d stalled=%d backend=%d) retries=%d failovers=%d failbacks=%d",
		s.Received, s.Responded, s.Forwarded, s.Dropped(),
		s.DroppedOverflow, s.DroppedStalled, s.DroppedBackend,
		s.Retries, s.Failovers, s.Failbacks)
}

// Runtime is one Lynx instance.
type Runtime struct {
	plat   Platform
	cores  *sim.Resource
	serial *sim.Resource

	handles     []*AccelHandle
	services    []*Service
	clients     []*ClientBinding
	pipelines   []*Pipeline
	replicators []*Replicator

	started bool

	stats Stats

	nextEphemeral uint16
	cpuBusy       time.Duration
	serialBusy    time.Duration
	execCalls     uint64

	// execFrames pools the scratch frames that carry task-substrate exec
	// calls through their serialized/parallel resource holds (see
	// execFrame in runtime_task.go). The event loop is single-threaded, so
	// a plain slice free list suffices.
	execFrames []*execFrame

	// inTransit counts requests popped from a reply FIFO but not yet
	// answered (or relayed into the next pipeline stage): a shutdown can
	// kill the forwarding process inside that window, leaving the request
	// in neither the pending FIFOs nor the Responded counter. The
	// conservation finisher counts them as in-flight.
	inTransit uint64
}

// drop records one discarded message with its cause (arg1 of the trace.Drop
// event) and the queue index it was aimed at (arg0).
func (rt *Runtime) drop(now sim.Time, cause DropCause, qi uint64) {
	switch cause {
	case DropStalled:
		rt.stats.DroppedStalled++
	case DropBackend:
		rt.stats.DroppedBackend++
	default:
		rt.stats.DroppedOverflow++
	}
	rt.plat.Tracer.Emit(now, trace.Drop, qi, uint64(cause))
}

// CPUBusy reports accumulated runtime CPU time (for utilization probes).
func (rt *Runtime) CPUBusy() time.Duration { return rt.cpuBusy }

// SerialBusy reports accumulated time inside the serialized stack/dispatch
// section. Its occupancy against a single core is the dispatcher utilization
// (the section admits one worker at a time, so it saturates long before the
// aggregate core pool does).
func (rt *Runtime) SerialBusy() time.Duration { return rt.serialBusy }

// ExecCalls reports frontend exec invocations (for utilization probes).
func (rt *Runtime) ExecCalls() uint64 { return rt.execCalls }

// NewRuntime creates a runtime on the platform. Call Register/AddService/
// AddClientQueue before Start.
func NewRuntime(plat Platform) *Runtime {
	if plat.Workers <= 0 {
		plat.Workers = 1
	}
	rt := &Runtime{
		plat:   plat,
		cores:  sim.NewResource(plat.Sim, plat.Workers),
		serial: sim.NewResource(plat.Sim, 1),
	}
	if ck := plat.Check; ck.Enabled() {
		// Request conservation at end of run: every message accepted into an
		// mqueue (Received) is either answered (Responded), still waiting in a
		// reply FIFO (in flight at shutdown), or — for pipelines — shed at a
		// later stage (recorded in the drop counters). Responses can never
		// outnumber their requests.
		ck.AddFinisher("core.request-conservation", func(fail func(string, ...any)) {
			var inflight uint64
			for _, svc := range rt.services {
				for _, bq := range svc.queues {
					for _, fifo := range bq.pending {
						inflight += uint64(len(fifo))
					}
				}
			}
			for _, pl := range rt.pipelines {
				for _, stage := range pl.stages {
					for _, pq := range stage {
						for _, fifo := range pq.pending {
							inflight += uint64(len(fifo))
						}
					}
				}
			}
			// Responses parked by a replication layer for peer acks were
			// popped from their FIFOs but not yet answered.
			for _, r := range rt.replicators {
				inflight += r.held
			}
			inflight += rt.inTransit
			st := rt.stats
			if st.Responded+inflight > st.Received {
				fail("responded %d + in-flight %d exceeds received %d",
					st.Responded, inflight, st.Received)
			}
			if st.Received > st.Responded+inflight+st.Dropped() {
				fail("received %d but only %d responded + %d in-flight + %d dropped",
					st.Received, st.Responded, inflight, st.Dropped())
			}
		})
	}
	return rt
}

// exec charges one unit of frontend CPU work, splitting it into the
// serialized stack section (the shared VMA ring + dispatcher state) and the
// parallel remainder (see model.StackSerialFraction). It returns the time the
// work queued for a core or the serial section beyond the charged cost — the
// dispatcher-inbox wait the attribution profile books against PhaseSNIC.
func (rt *Runtime) exec(p *sim.Proc, cost time.Duration) time.Duration {
	scaled := rt.plat.Machine.Scale(cost)
	ser := time.Duration(float64(scaled) * rt.plat.Params.StackSerialFraction)
	rt.cpuBusy += scaled
	rt.serialBusy += ser
	rt.execCalls++
	t0 := p.Now()
	rt.serial.With(p, ser, nil)
	rt.cores.With(p, scaled-ser, nil)
	return p.Now().Sub(t0) - scaled
}

// execBatch charges the frontend CPU work of k equal-cost messages processed
// in one dispatcher pass. The serialized section is entered once for the
// whole quantum: its per-message fixed portion (model.SerialBatchFixed — the
// ring doorbell read, dispatcher lock handoff) is paid once, the remainder
// scales with k; the parallel share is k full units, since per-message
// payload work does not amortize. Like exec, it returns the time the quantum
// queued beyond the charged cost — the caller apportions that wait across
// the batch's spans so attribution stays telescoping-exact (the per-span
// shares sum exactly to the measured wait). execBatch with k == 1 takes the
// exec path and is charge-for-charge identical to it.
func (rt *Runtime) execBatch(p *sim.Proc, cost time.Duration, k int) time.Duration {
	if k <= 1 {
		return rt.exec(p, cost)
	}
	scaled := rt.plat.Machine.Scale(cost)
	ser1 := time.Duration(float64(scaled) * rt.plat.Params.StackSerialFraction)
	fixed := time.Duration(float64(ser1) * rt.plat.Params.SerialBatchFixed)
	ser := fixed + time.Duration(k)*(ser1-fixed)
	par := time.Duration(k) * (scaled - ser1)
	rt.cpuBusy += ser + par
	rt.serialBusy += ser
	rt.execCalls += uint64(k)
	t0 := p.Now()
	rt.serial.With(p, ser, nil)
	rt.cores.With(p, par, nil)
	return p.Now().Sub(t0) - (ser + par)
}

// execParallel charges CPU work with no serialized section: client-mqueue
// bindings each own a dedicated connection context, so they scale with
// cores. Like exec it returns the queueing delay beyond the charged cost.
func (rt *Runtime) execParallel(p *sim.Proc, cost time.Duration) time.Duration {
	scaled := rt.plat.Machine.Scale(cost)
	rt.cpuBusy += scaled
	t0 := p.Now()
	rt.cores.With(p, scaled, nil)
	return p.Now().Sub(t0) - scaled
}

func (rt *Runtime) udpCost() time.Duration {
	return rt.plat.Params.UDPCost(model.XeonCore, rt.plat.Bypass)
}

func (rt *Runtime) tcpCost() time.Duration {
	return rt.plat.Params.TCPCost(model.XeonCore, rt.plat.Bypass)
}

// ---------------------------------------------------------------------------
// Accelerator registration (the host-CPU setup role of §4.3)

// AccelHandle binds one accelerator's mqueue group.
type AccelHandle struct {
	acc    accel.Accelerator
	cfg    mqueue.Config
	group  *mqueue.Group
	accQs  []*mqueue.AccelQueue
	nInUse int
}

// Register allocates n mqueues in the accelerator's memory, establishes the
// per-accelerator RC QP (one per accelerator, §5.1), and returns the handle.
// This models the host-CPU initialization step: the host sets everything up,
// passes the pointers around, and "remains idle from that point" (§4.3).
func (rt *Runtime) Register(acc accel.Accelerator, cfg mqueue.Config, n int) (*AccelHandle, error) {
	return rt.register(acc, cfg, n, fmt.Sprintf("lynx-mq%d", len(rt.handles)), acc.RemoteHost() != "", true)
}

// register is Register with an explicit region name (several runtimes can
// allocate in the same accelerator's memory — replication ingest queues do),
// QP remoteness, and span wiring.
func (rt *Runtime) register(acc accel.Accelerator, cfg mqueue.Config, n int, region string, remote, spans bool) (*AccelHandle, error) {
	if rt.started {
		return nil, fmt.Errorf("core: cannot register accelerators after Start")
	}
	mem, err := acc.Device().Mem.Alloc(region, mqueue.GroupFootprint(cfg, n))
	if err != nil {
		return nil, fmt.Errorf("core: allocating mqueue region on %s: %w", acc.Name(), err)
	}
	qp := rt.plat.RDMA.CreateQP(acc.Device(), rdma.QPConfig{
		Kind:   rdma.RC,
		Remote: remote,
	})
	cfg.Check = rt.plat.Check
	if spans {
		cfg.Spans = rt.plat.Spans
	}
	group, err := mqueue.NewGroup(mem, 0, cfg, n, qp)
	if err != nil {
		return nil, err
	}
	prof := acc.Profile()
	if spans {
		prof.Spans = rt.plat.Spans
	} else {
		prof.Spans = nil
	}
	prof.Check = rt.plat.Check
	accQs, err := mqueue.AttachGroup(mem, 0, cfg, n, prof)
	if err != nil {
		return nil, err
	}
	h := &AccelHandle{acc: acc, cfg: cfg, group: group, accQs: accQs}
	rt.handles = append(rt.handles, h)
	return h, nil
}

// Accelerator returns the registered accelerator.
func (h *AccelHandle) Accelerator() accel.Accelerator { return h.acc }

// AccelQueues returns the accelerator-side queue handles, to be wired into
// the accelerator's request-processing code (persistent kernel TBs etc.).
func (h *AccelHandle) AccelQueues() []*mqueue.AccelQueue { return h.accQs }

// claim reserves count queues of the handle for a service or client binding.
func (h *AccelHandle) claim(count int) ([]*mqueue.Queue, []int, error) {
	if h.nInUse+count > h.group.Len() {
		return nil, nil, fmt.Errorf("core: accelerator %s has %d free mqueues, %d requested",
			h.acc.Name(), h.group.Len()-h.nInUse, count)
	}
	base := h.nInUse
	var qs []*mqueue.Queue
	var idx []int
	for i := 0; i < count; i++ {
		qs = append(qs, h.group.Queue(base+i))
		idx = append(idx, base+i)
	}
	h.nInUse += count
	return qs, idx, nil
}

// unclaim rolls back the most recent claim of count queues (used when a
// later stage/handle of the same registration fails).
func (h *AccelHandle) unclaim(count int) { h.nInUse -= count }

// ---------------------------------------------------------------------------
// Dispatch policies (§4.2: "according to the dispatching policy, e.g. load
// balancing for stateless services, or steering messages to specific queues
// for stateful ones")

// Policy selects a server mqueue for an incoming message.
type Policy interface {
	// Pick returns a queue index in [0, n) for a message from the client.
	Pick(from netstack.Addr, n int) int
}

// RoundRobin balances load across queues (stateless services).
type RoundRobin struct{ next int }

// Pick implements Policy.
func (r *RoundRobin) Pick(_ netstack.Addr, n int) int {
	i := r.next % n
	r.next++
	return i
}

// LeastLoaded picks the queue with the fewest in-flight requests, falling
// back to round-robin among ties. It uses only SNIC-local state (the
// dispatcher's own in-flight accounting), so it costs nothing extra on the
// wire.
type LeastLoaded struct {
	queues []*mqueue.Queue
	rr     int
}

// NewLeastLoaded builds the policy for a service's queues. Pass the queues
// in the order the service claims them; AddService with this policy must use
// the same accelerator handles.
func NewLeastLoaded(h *AccelHandle) *LeastLoaded {
	p := &LeastLoaded{}
	for i := 0; i < h.group.Len(); i++ {
		p.queues = append(p.queues, h.group.Queue(i))
	}
	return p
}

// Pick implements Policy.
func (l *LeastLoaded) Pick(_ netstack.Addr, n int) int {
	if len(l.queues) < n {
		// Not wired to the handle (or wired partially): degrade to RR.
		l.rr++
		return (l.rr - 1) % n
	}
	best, bestLoad := 0, int(^uint(0)>>1)
	for i := 0; i < n; i++ {
		qi := (l.rr + i) % n // rotate tie-breaking
		if load := l.queues[qi].InFlight(); load < bestLoad {
			best, bestLoad = qi, load
		}
	}
	l.rr++
	return best
}

// StickyHash steers each client to a fixed queue (stateful services).
type StickyHash struct{}

// Pick implements Policy.
func (StickyHash) Pick(from netstack.Addr, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(from.Host); i++ {
		h = (h ^ uint32(from.Host[i])) * 16777619
	}
	h = (h ^ uint32(from.Port)) * 16777619
	// Final avalanche: FNV's low bits are weak for modulo bucketing.
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	return int(h % uint32(n))
}

// ---------------------------------------------------------------------------
// Services

// Proto selects the client-facing transport of a service.
type Proto int

const (
	// UDP transport (sockperf-style datagrams).
	UDP Proto = iota
	// TCP transport (framed messages over connections).
	TCP
)

// String names the protocol.
func (p Proto) String() string {
	if p == TCP {
		return "TCP"
	}
	return "UDP"
}

// replyTo records where a response must go.
type replyTo struct {
	udpFrom netstack.Addr
	conn    *netstack.TCPConn
}

// boundQueue is one server mqueue attached to a service.
type boundQueue struct {
	q *mqueue.Queue
	h *AccelHandle
	// pending maps RX slot -> FIFO of outstanding reply destinations.
	pending [][]replyTo
	// failed marks the queue as stalled per the MQ-manager watchdog;
	// dispatch steers new work away until the queue makes progress again.
	failed bool
}

// Service is one accelerated network service frontend.
type Service struct {
	rt     *Runtime
	proto  Proto
	port   uint16
	policy Policy
	queues []*boundQueue

	udpSock *netstack.UDPSocket
	tcpList *netstack.TCPListener

	// repl, when non-nil, replicates the service's writes to peer
	// accelerators before their responses are released (see replicate.go).
	// Every hook on the hot paths is gated on this pointer, so an
	// unreplicated service executes exactly the pre-replication sequence.
	repl *Replicator
}

// AddService exposes `count` mqueues of each given accelerator handle as one
// network service on port. Queues from all handles form the dispatch set.
func (rt *Runtime) AddService(proto Proto, port uint16, policy Policy, count int, handles ...*AccelHandle) (*Service, error) {
	if rt.started {
		return nil, fmt.Errorf("core: cannot add services after Start")
	}
	if policy == nil {
		policy = &RoundRobin{}
	}
	svc := &Service{rt: rt, proto: proto, port: port, policy: policy}
	var claimed []*AccelHandle
	rollback := func() {
		for _, h := range claimed {
			h.unclaim(count)
		}
	}
	for _, h := range handles {
		qs, _, err := h.claim(count)
		if err != nil {
			rollback()
			return nil, err
		}
		claimed = append(claimed, h)
		for _, q := range qs {
			svc.queues = append(svc.queues, &boundQueue{
				q: q, h: h, pending: make([][]replyTo, q.Config().Slots),
			})
		}
	}
	if len(svc.queues) == 0 {
		return nil, fmt.Errorf("core: service on port %d has no mqueues", port)
	}
	var err error
	switch proto {
	case UDP:
		svc.udpSock, err = rt.plat.NetHost.UDPBind(port)
	case TCP:
		svc.tcpList, err = rt.plat.NetHost.TCPListen(port)
	}
	if err != nil {
		rollback()
		return nil, err
	}
	rt.services = append(rt.services, svc)
	return svc, nil
}

// Port returns the listening port.
func (s *Service) Port() uint16 { return s.port }

// Addr returns the service's network address.
func (s *Service) Addr() netstack.Addr { return s.rt.plat.NetHost.Addr(s.port) }

// dispatch delivers one client message to a server mqueue. Queues the
// watchdog marked failed are skipped (graceful degradation): the policy's
// pick rotates forward to the next healthy queue. When every queue is failed
// the original pick is kept — shedding everything on a (possibly false)
// watchdog verdict would be worse than trying the ring.
func (s *Service) dispatch(p *sim.Proc, payload []byte, to replyTo, from netstack.Addr) {
	rt := s.rt
	rt.plat.Tracer.Emit(p.Now(), trace.Recv, uint64(len(payload)), uint64(s.port))
	qw := rt.exec(p, rt.plat.Params.DispatchCost)
	qi := s.policy.Pick(from, len(s.queues))
	if s.queues[qi].failed {
		for off := 1; off < len(s.queues); off++ {
			if alt := (qi + off) % len(s.queues); !s.queues[alt].failed {
				qi = alt
				break
			}
		}
	}
	bq := s.queues[qi]
	id := trace.SpanID(payload)
	rt.plat.Spans.AddWait(id, trace.PhaseSNIC, qw)
	rt.plat.Spans.Stamp(id, trace.StageDispatch, p.Now())
	rt.plat.Spans.SetQueue(id, qi)
	slot, err := bq.q.Push(p, payload, 0)
	if err != nil {
		cause := DropOverflow
		if bq.failed {
			cause = DropStalled
		}
		rt.drop(p.Now(), cause, uint64(qi))
		rt.plat.Spans.Close(id, trace.SpanDropped, p.Now())
		return
	}
	// Fallback for queues without their own span table (first-write-wins:
	// a queue armed with cfg.Spans already stamped at write-delivery time).
	rt.plat.Spans.Stamp(id, trace.StagePushed, p.Now())
	bq.pending[slot] = append(bq.pending[slot], to)
	rt.stats.Received++
	rt.plat.Tracer.Emit(p.Now(), trace.Dispatch, uint64(qi), uint64(slot))
	if s.repl != nil {
		s.repl.onDispatch(payload)
	}
}

// forwardResponse routes one TX message of a server queue back to its
// client.
func (s *Service) forwardResponse(p *sim.Proc, bq *boundQueue, msg mqueue.TxMsg) {
	rt := s.rt
	rt.plat.Tracer.Emit(p.Now(), trace.Drain, uint64(msg.Slot), uint64(msg.Corr))
	id := trace.SpanID(msg.Payload)
	rt.plat.Spans.Stamp(id, trace.StageDrain, p.Now())
	qw := rt.exec(p, rt.plat.Params.ForwardCost)
	fifo := bq.pending[msg.Corr]
	if len(fifo) == 0 {
		// Response without a matching request (app bug); drop.
		rt.plat.Check.Failf("core.orphan-response",
			"service port %d: TX message for slot %d has no pending request", s.port, msg.Corr)
		return
	}
	to := fifo[0]
	bq.pending[msg.Corr] = fifo[1:]
	if s.repl != nil && s.repl.onResponse(to, msg.Payload) {
		// Parked for peer acks: the replicator's pump finishes the forward.
		return
	}
	rt.inTransit++
	switch s.proto {
	case UDP:
		qw += rt.exec(p, rt.udpCost())
		s.udpSock.SendTo(to.udpFrom, msg.Payload)
	case TCP:
		qw += rt.exec(p, rt.tcpCost())
		if to.conn != nil {
			_ = to.conn.Send(p, msg.Payload)
		}
	}
	rt.stats.Responded++
	rt.inTransit--
	rt.plat.Spans.AddWait(id, trace.PhaseSNIC, qw)
	rt.plat.Spans.Stamp(id, trace.StageForward, p.Now())
	rt.plat.Tracer.Emit(p.Now(), trace.Forward, uint64(len(msg.Payload)), 0)
}

// shareWait splits a measured queueing wait evenly across the k spans of a
// batch, folding the integer-division remainder into the first share so the
// shares sum exactly to the measured wait: the telescoping identity the
// attribution profile checks (phase waits never exceed phase totals) must
// hold to the nanosecond, per-message wait booking just with batched
// service (elapsed minus charged over a quantum instead of per message).
func shareWait(qw time.Duration, k, i int) time.Duration {
	share := qw / time.Duration(k)
	if i == 0 {
		share += qw % time.Duration(k)
	}
	return share
}

// dispatchBatch delivers a run of ready datagrams as one dispatcher
// scheduling quantum (Params.Batch.Quantum > 1): the serialized section is
// entered once for the whole run, every message's slot is reserved and its
// reply bookkeeping recorded before any RDMA is posted, and the
// message-bearing writes are posted in doorbell groups with a checkpointed
// completion wait — ceil(k/doorbell) issue charges and ceil(k/cqDrain)
// wakeups for a k-message quantum.
//
// Bookkeeping must precede posting: with only checkpoint completions
// awaited, an early message of the batch lands — and its response can race
// back through the MQ manager — before the posting context regains control.
// Reserving the pending-reply FIFO entry at preparation time keeps that
// response from being misread as an orphan. StagePushed is stamped by the
// write's delivery hook exactly as in the per-message path.
func (s *Service) dispatchBatch(p *sim.Proc, dgs []netstack.Datagram) {
	rt := s.rt
	n := len(dgs)
	if n == 0 {
		return
	}
	for i := range dgs {
		rt.plat.Tracer.Emit(p.Now(), trace.Recv, uint64(len(dgs[i].Payload)), uint64(s.port))
	}
	qw := rt.execBatch(p, rt.plat.Params.DispatchCost, n)
	type preparedWR struct {
		wr rdma.WR
		qp *rdma.QP
	}
	preps := make([]preparedWR, 0, n)
	for i := range dgs {
		payload := dgs[i].Payload
		qi := s.policy.Pick(dgs[i].From, len(s.queues))
		if s.queues[qi].failed {
			for off := 1; off < len(s.queues); off++ {
				if alt := (qi + off) % len(s.queues); !s.queues[alt].failed {
					qi = alt
					break
				}
			}
		}
		bq := s.queues[qi]
		id := trace.SpanID(payload)
		rt.plat.Spans.AddWait(id, trace.PhaseSNIC, shareWait(qw, n, i))
		rt.plat.Spans.Stamp(id, trace.StageDispatch, p.Now())
		rt.plat.Spans.SetQueue(id, qi)
		wr, slot, err := bq.q.PrepareWrite(p, payload, 0)
		if err != nil {
			cause := DropOverflow
			if bq.failed {
				cause = DropStalled
			}
			rt.drop(p.Now(), cause, uint64(qi))
			rt.plat.Spans.Close(id, trace.SpanDropped, p.Now())
			continue
		}
		bq.pending[slot] = append(bq.pending[slot], replyTo{udpFrom: dgs[i].From})
		rt.stats.Received++
		rt.plat.Tracer.Emit(p.Now(), trace.Dispatch, uint64(qi), uint64(slot))
		if s.repl != nil {
			s.repl.onDispatch(payload)
		}
		preps = append(preps, preparedWR{wr: wr, qp: bq.q.QP()})
	}
	// Post per QP in first-appearance order (queues of one accelerator share
	// a QP, so the common case is a single doorbell-grouped batch).
	batch := rt.plat.Params.Batch
	wrs := make([]rdma.WR, 0, len(preps))
	for len(preps) > 0 {
		qp := preps[0].qp
		wrs = wrs[:0]
		rest := preps[:0]
		for _, pr := range preps {
			if pr.qp == qp {
				wrs = append(wrs, pr.wr)
			} else {
				rest = append(rest, pr)
			}
		}
		qp.PostAndWait(p, wrs, batch.EffDoorbell(), batch.EffCQDrain())
		preps = rest
	}
}

// forwardResponseBatch routes a run of TX messages drained from one server
// queue in a single manager sweep visit, entering the serialized section
// once for the whole run (per-message sequencing — FIFO pop, send, stamps —
// is unchanged). With a single message it performs exactly the operations of
// forwardResponse.
func (s *Service) forwardResponseBatch(p *sim.Proc, bq *boundQueue, msgs []mqueue.TxMsg) {
	rt := s.rt
	n := len(msgs)
	if n == 0 {
		return
	}
	for i := range msgs {
		rt.plat.Tracer.Emit(p.Now(), trace.Drain, uint64(msgs[i].Slot), uint64(msgs[i].Corr))
		rt.plat.Spans.Stamp(trace.SpanID(msgs[i].Payload), trace.StageDrain, p.Now())
	}
	qw := rt.execBatch(p, rt.plat.Params.ForwardCost, n)
	switch s.proto {
	case UDP:
		qw += rt.execBatch(p, rt.udpCost(), n)
	case TCP:
		qw += rt.execBatch(p, rt.tcpCost(), n)
	}
	for i := range msgs {
		msg := msgs[i]
		id := trace.SpanID(msg.Payload)
		fifo := bq.pending[msg.Corr]
		if len(fifo) == 0 {
			rt.plat.Check.Failf("core.orphan-response",
				"service port %d: TX message for slot %d has no pending request", s.port, msg.Corr)
			continue
		}
		to := fifo[0]
		bq.pending[msg.Corr] = fifo[1:]
		if s.repl != nil && s.repl.onResponse(to, msg.Payload) {
			continue
		}
		rt.inTransit++
		switch s.proto {
		case UDP:
			s.udpSock.SendTo(to.udpFrom, msg.Payload)
		case TCP:
			if to.conn != nil {
				_ = to.conn.Send(p, msg.Payload)
			}
		}
		rt.stats.Responded++
		rt.inTransit--
		rt.plat.Spans.AddWait(id, trace.PhaseSNIC, shareWait(qw, n, i))
		rt.plat.Spans.Stamp(id, trace.StageForward, p.Now())
		rt.plat.Tracer.Emit(p.Now(), trace.Forward, uint64(len(msg.Payload)), 0)
	}
}

// ---------------------------------------------------------------------------
// Client mqueues (§4.3: accelerator-initiated connections to backends)

// pendingSend is one client-mqueue UDP request awaiting its backend response
// (responses match requests FIFO: the backends Lynx targets answer in order).
type pendingSend struct {
	payload  []byte
	attempts int
	deadline sim.Time
}

// ClientBinding wires one client mqueue to a fixed backend destination over
// TCP (the §6.4 memcached pattern) or UDP.
type ClientBinding struct {
	rt    *Runtime
	proto Proto
	dst   netstack.Addr
	bq    *boundQueue
	conn  *netstack.TCPConn
	sock  *netstack.UDPSocket
	qi    int

	// outstanding is the FIFO of unanswered UDP requests, retransmitted by
	// the per-binding retry process (TCP bindings rely on the transport and
	// report failures through mqueue metadata instead).
	outstanding []pendingSend
}

// AddClientQueue claims one mqueue of the handle as a client mqueue bound to
// dst. "The destination address is assigned when the server is initialized"
// (§4.3): the connection is established at Start and never changes.
func (rt *Runtime) AddClientQueue(h *AccelHandle, proto Proto, dst netstack.Addr) (*ClientBinding, error) {
	if rt.started {
		return nil, fmt.Errorf("core: cannot add client queues after Start")
	}
	qs, idx, err := h.claim(1)
	if err != nil {
		return nil, err
	}
	cb := &ClientBinding{
		rt: rt, proto: proto, dst: dst, qi: idx[0],
		bq: &boundQueue{q: qs[0], h: h},
	}
	rt.clients = append(rt.clients, cb)
	return cb, nil
}

// QueueIndex returns the index of the claimed mqueue within the handle's
// group (to find the matching AccelQueues() entry).
func (cb *ClientBinding) QueueIndex() int { return cb.qi }

// forwardOut ships one accelerator-originated message to the backend.
func (cb *ClientBinding) forwardOut(p *sim.Proc, msg mqueue.TxMsg) {
	rt := cb.rt
	rt.plat.Tracer.Emit(p.Now(), trace.BackendOut, uint64(len(msg.Payload)), uint64(cb.qi))
	rt.plat.Spans.Stamp(trace.SpanID(msg.Payload), trace.StageBackendOut, p.Now())
	rt.execParallel(p, rt.plat.Params.ForwardCost)
	rt.stats.Forwarded++
	switch cb.proto {
	case UDP:
		rt.execParallel(p, rt.udpCost())
		cb.sock.SendTo(cb.dst, msg.Payload)
		if rt.plat.Params.ClientRetryMax > 0 && rt.plat.Params.ClientRetryTimeout > 0 {
			cb.outstanding = append(cb.outstanding, pendingSend{
				payload:  msg.Payload,
				deadline: p.Now().Add(rt.plat.Params.ClientRetryTimeout),
			})
		}
	case TCP:
		rt.execParallel(p, rt.tcpCost())
		if cb.conn != nil {
			if err := cb.conn.Send(p, msg.Payload); err != nil {
				// Report the connection error through mqueue metadata
				// (§5.1): push an empty error-flagged message.
				_, _ = cb.bq.q.Push(p, nil, 1)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Runtime start: spawn the worker processes

// Start brings up the Network Server, Message Dispatcher, Message Forwarder
// and Remote MQ Manager processes. It must be called once, after all
// registration.
func (rt *Runtime) Start() error {
	if rt.started {
		return fmt.Errorf("core: already started")
	}
	rt.started = true
	s := rt.plat.Sim

	// Network server: receive paths.
	for _, svc := range rt.services {
		svc := svc
		switch svc.proto {
		case UDP:
			// One receive context per worker core, all draining the
			// shared socket (RSS-like). These always-on contexts run on the
			// run-to-completion Task substrate: every wake executes inline
			// in the scheduler loop, with no goroutine switch per datagram.
			// The operation sequence is identical to the coroutine form
			// (see runtime_task.go), so results match byte-for-byte.
			if batch := rt.plat.Params.Batch; !batch.Unit() {
				// Batched dequeue: each context drains a quantum of ready
				// datagrams per wakeup, optionally lingering one coalescing
				// window for stragglers, then dispatches the run through the
				// serialized section once.
				quantum := batch.EffQuantum()
				for w := 0; w < rt.plat.Workers; w++ {
					s.SpawnTask(fmt.Sprintf("lynx/udp-rx:%d/%d", svc.port, w), func(t *sim.Task) {
						dgs := make([]netstack.Datagram, quantum)
						var loop func()
						var gotBatch func(n int)
						process := func(n int) {
							now := t.Now()
							for i := 0; i < n; i++ {
								id := trace.SpanID(dgs[i].Payload)
								rt.plat.Spans.Stamp(id, trace.StageSnicRecv, now)
								if dgs[i].EnqueuedAt > 0 {
									rt.plat.Spans.AddWait(id, trace.PhaseNetwork, now.Sub(dgs[i].EnqueuedAt))
								}
							}
							rt.execBatchT(t, rt.udpCost(), n, func(qw time.Duration) {
								for i := 0; i < n; i++ {
									rt.plat.Spans.AddWait(trace.SpanID(dgs[i].Payload), trace.PhaseSNIC, shareWait(qw, n, i))
								}
								svc.dispatchBatchT(t, dgs[:n], loop)
							})
						}
						gotBatch = func(n int) {
							if win := batch.CoalesceWindow; win > 0 && n < quantum {
								t.Sleep(win, func() {
									for n < quantum {
										dg, ok := svc.udpSock.TryRecv()
										if !ok {
											break
										}
										dgs[n] = dg
										n++
									}
									process(n)
								})
								return
							}
							process(n)
						}
						loop = func() {
							if n, ok := svc.udpSock.RecvBatchT(t, dgs, gotBatch); ok {
								gotBatch(n)
							}
						}
						loop()
					})
				}
				continue
			}
			for w := 0; w < rt.plat.Workers; w++ {
				s.SpawnTask(fmt.Sprintf("lynx/udp-rx:%d/%d", svc.port, w), func(t *sim.Task) {
					var loop func()
					var handle func(dg netstack.Datagram)
					handle = func(dg netstack.Datagram) {
						id := trace.SpanID(dg.Payload)
						now := t.Now()
						rt.plat.Spans.Stamp(id, trace.StageSnicRecv, now)
						if dg.EnqueuedAt > 0 {
							rt.plat.Spans.AddWait(id, trace.PhaseNetwork, now.Sub(dg.EnqueuedAt))
						}
						rt.execT(t, rt.udpCost(), func(qw time.Duration) {
							rt.plat.Spans.AddWait(id, trace.PhaseSNIC, qw)
							svc.dispatchT(t, dg.Payload, replyTo{udpFrom: dg.From}, dg.From, loop)
						})
					}
					loop = func() {
						if dg, ok := svc.udpSock.RecvT(t, handle); ok {
							handle(dg)
						}
					}
					loop()
				})
			}
		case TCP:
			s.Spawn(fmt.Sprintf("lynx/tcp-accept:%d", svc.port), func(p *sim.Proc) {
				for {
					conn := svc.tcpList.Accept(p)
					s.Spawn(fmt.Sprintf("lynx/tcp-rx:%d", svc.port), func(p *sim.Proc) {
						for {
							msg, enq, err := conn.RecvQueued(p)
							if err != nil {
								return
							}
							id := trace.SpanID(msg)
							now := p.Now()
							rt.plat.Spans.Stamp(id, trace.StageSnicRecv, now)
							if enq > 0 {
								rt.plat.Spans.AddWait(id, trace.PhaseNetwork, now.Sub(enq))
							}
							qw := rt.exec(p, rt.tcpCost())
							rt.plat.Spans.AddWait(id, trace.PhaseSNIC, qw)
							svc.dispatch(p, msg, replyTo{conn: conn}, conn.RemoteAddr())
						}
					})
				}
			})
		}
	}

	// Pipeline frontends: same receive paths as services, entering stage 0.
	for _, pl := range rt.pipelines {
		pl := pl
		switch pl.proto {
		case UDP:
			for w := 0; w < rt.plat.Workers; w++ {
				s.Spawn(fmt.Sprintf("lynx/pipe-rx:%d/%d", pl.port, w), func(p *sim.Proc) {
					for {
						dg := pl.udpSock.Recv(p)
						rt.exec(p, rt.udpCost())
						pl.enter(p, dg.Payload, replyTo{udpFrom: dg.From})
					}
				})
			}
		case TCP:
			s.Spawn(fmt.Sprintf("lynx/pipe-accept:%d", pl.port), func(p *sim.Proc) {
				for {
					conn := pl.tcpList.Accept(p)
					s.Spawn(fmt.Sprintf("lynx/pipe-tcp-rx:%d", pl.port), func(p *sim.Proc) {
						for {
							msg, err := conn.Recv(p)
							if err != nil {
								return
							}
							rt.exec(p, rt.tcpCost())
							pl.enter(p, msg, replyTo{conn: conn})
						}
					})
				}
			})
		}
	}

	// Client bindings: establish static connections, then pump responses
	// inbound. UDP bindings also run a retry process enforcing the
	// per-request timeout with bounded retransmission + exponential backoff.
	for _, cb := range rt.clients {
		cb := cb
		s.Spawn(fmt.Sprintf("lynx/client-mq:%s", cb.dst), func(p *sim.Proc) {
			switch cb.proto {
			case UDP:
				rt.nextEphemeral++
				sock, err := rt.plat.NetHost.UDPBind(52000 + rt.nextEphemeral)
				if err != nil {
					return
				}
				cb.sock = sock
				for {
					dg := sock.Recv(p)
					rt.execParallel(p, rt.udpCost())
					if len(cb.outstanding) > 0 {
						// FIFO response matching settles the oldest request
						// (late duplicates of retransmitted requests settle
						// newer ones — harmless for idempotent backends).
						cb.outstanding = cb.outstanding[1:]
					}
					rt.plat.Tracer.Emit(p.Now(), trace.BackendIn, uint64(len(dg.Payload)), uint64(cb.qi))
					rt.plat.Spans.Stamp(trace.SpanID(dg.Payload), trace.StageBackendIn, p.Now())
					if _, err := cb.bq.q.Push(p, dg.Payload, 0); err != nil {
						rt.drop(p.Now(), DropBackend, uint64(cb.qi))
					}
				}
			case TCP:
				conn, err := rt.plat.NetHost.TCPDial(p, cb.dst)
				if err != nil {
					return
				}
				cb.conn = conn
				for {
					msg, err := conn.Recv(p)
					if err != nil {
						// §5.1: error status delivered via metadata.
						_, _ = cb.bq.q.Push(p, nil, 1)
						return
					}
					rt.execParallel(p, rt.tcpCost())
					rt.plat.Tracer.Emit(p.Now(), trace.BackendIn, uint64(len(msg)), uint64(cb.qi))
					rt.plat.Spans.Stamp(trace.SpanID(msg), trace.StageBackendIn, p.Now())
					if _, err := cb.bq.q.Push(p, msg, 0); err != nil {
						rt.drop(p.Now(), DropBackend, uint64(cb.qi))
					}
				}
			}
		})
		if cb.proto == UDP && rt.plat.Params.ClientRetryMax > 0 && rt.plat.Params.ClientRetryTimeout > 0 {
			s.Spawn(fmt.Sprintf("lynx/client-retry:%s", cb.dst), func(p *sim.Proc) {
				timeout := rt.plat.Params.ClientRetryTimeout
				for {
					p.Sleep(timeout / 4)
					if cb.sock == nil {
						continue
					}
					now := p.Now()
					for len(cb.outstanding) > 0 {
						head := &cb.outstanding[0]
						if now < head.deadline {
							break
						}
						if head.attempts >= rt.plat.Params.ClientRetryMax {
							cb.outstanding = cb.outstanding[1:]
							rt.drop(now, DropBackend, uint64(cb.qi))
							continue
						}
						head.attempts++
						rt.stats.Retries++
						rt.plat.Tracer.Emit(now, trace.Retry, uint64(cb.qi), uint64(head.attempts))
						rt.execParallel(p, rt.udpCost())
						cb.sock.SendTo(cb.dst, head.payload)
						// Exponential backoff: double the wait per attempt.
						head.deadline = now.Add(timeout << uint(head.attempts))
					}
				}
			})
		}
	}

	// Replication delivery pumps: one per replicated service, flushing
	// record outboxes into peer ingest rings and finishing the forward of
	// responses whose quorum was met. Spawned only when a replicator
	// exists, so unreplicated runtimes schedule exactly as before.
	for _, r := range rt.replicators {
		r := r
		s.Spawn(fmt.Sprintf("lynx/repl-pump:%d", r.svc.port), r.pump)
	}

	// Remote MQ manager + message forwarder: one sweep process per
	// accelerator (its QP context), draining TX rings with batched header
	// polling.
	type sink struct {
		svc     *Service
		cb      *ClientBinding
		bq      *boundQueue
		pl      *Pipeline
		plStage int
		pq      *pipeQueue
		rp      *replPeer
	}
	for _, h := range rt.handles {
		h := h
		sinks := make([]sink, h.group.Len())
		for _, svc := range rt.services {
			for _, bq := range svc.queues {
				if bq.h == h {
					for i := 0; i < h.group.Len(); i++ {
						if h.group.Queue(i) == bq.q {
							sinks[i] = sink{svc: svc, bq: bq}
						}
					}
				}
			}
		}
		for _, cb := range rt.clients {
			if cb.bq.h == h {
				sinks[cb.qi] = sink{cb: cb, bq: cb.bq}
			}
		}
		for _, pl := range rt.pipelines {
			for si, stage := range pl.stages {
				for _, pq := range stage {
					if pq.h != h {
						continue
					}
					for i := 0; i < h.group.Len(); i++ {
						if h.group.Queue(i) == pq.q {
							sinks[i] = sink{pl: pl, plStage: si, pq: pq}
						}
					}
				}
			}
		}
		for _, r := range rt.replicators {
			for _, rp := range r.peers {
				if rp.h != h {
					continue
				}
				for i := 0; i < h.group.Len(); i++ {
					if h.group.Queue(i) == rp.q {
						sinks[i] = sink{rp: rp}
					}
				}
			}
		}
		// The Remote MQ Manager's sweep work is shared by the worker
		// cores: each context owns a partition of the accelerator's
		// queues (the paper's workers split mqueues round-robin, §6.1).
		nMgr := rt.plat.Workers
		if nMgr > h.group.Len() {
			nMgr = h.group.Len()
		}
		for w := 0; w < nMgr; w++ {
			w := w
			// The sweep is the hottest always-on process (it wakes for every
			// accelerator response), so it runs on the run-to-completion Task
			// substrate. The continuation chain performs exactly the
			// operation sequence of the coroutine form it replaced: refresh,
			// per-owned-queue drain loops, commit, watchdog, then block on
			// the activity gate — so output stays byte-identical.
			s.SpawnTask(fmt.Sprintf("lynx/mq-manager:%s/%d", h.acc.Name(), w), func(t *sim.Task) {
				gate := h.group.ActivityGate()
				// Watchdog state for the queues this context owns: the
				// accelerator progress counters last observed and when they
				// last moved. A queue holding in-flight messages with
				// neither counter advancing for MQWatchdogTimeout is marked
				// failed; it is restored the moment it makes progress.
				wd := rt.plat.Params.MQWatchdogTimeout
				type qhealth struct {
					rxc, txs uint64
					last     sim.Time
				}
				health := make([]qhealth, h.group.Len())
				for i := range health {
					health[i].last = t.Now()
				}
				// TX batch drain: with batching configured, each ring visit
				// pulls up to the CQ-drain budget of responses in one
				// spanning READ and forwards service responses as a batch.
				batch := rt.plat.Params.Batch
				var txBuf []mqueue.TxMsg
				if !batch.Unit() {
					txBuf = make([]mqueue.TxMsg, batch.EffCQDrain())
				}
				var (
					sweep      func()
					visit      func(i int)
					drainQ     func(i int)
					commit     func(i int)
					afterSweep func()
					v          uint64
					drained    bool
				)
				sweep = func() {
					v = gate.Version()
					h.group.RefreshT(t, func() {
						drained = false
						visit(w)
					})
				}
				visit = func(i int) {
					if i >= h.group.Len() {
						afterSweep()
						return
					}
					drainQ(i)
				}
				drainQ = func(i int) {
					q := h.group.Queue(i)
					if !q.Ready() {
						commit(i)
						return
					}
					if txBuf != nil {
						q.PopTxManyT(t, len(txBuf), txBuf, func(k int) {
							if k == 0 {
								commit(i)
								return
							}
							drained = true
							sk := sinks[i]
							switch {
							case sk.svc != nil:
								sk.svc.forwardResponseBatchT(t, sk.bq, txBuf[:k], func() { drainQ(i) })
							case sk.cb != nil:
								var fw func(j int)
								fw = func(j int) {
									if j >= k {
										drainQ(i)
										return
									}
									sk.cb.forwardOutT(t, txBuf[j], func() { fw(j + 1) })
								}
								fw(0)
							case sk.pl != nil:
								var adv func(j int)
								adv = func(j int) {
									if j >= k {
										drainQ(i)
										return
									}
									sk.pl.advanceT(t, sk.plStage, sk.pq, txBuf[j], func() { adv(j + 1) })
								}
								adv(0)
							case sk.rp != nil:
								for j := 0; j < k; j++ {
									sk.rp.r.onAck(sk.rp, txBuf[j].Payload)
								}
								drainQ(i)
							default:
								drainQ(i)
							}
						})
						return
					}
					q.PopTxT(t, func(msg mqueue.TxMsg, ok bool) {
						if !ok {
							commit(i)
							return
						}
						drained = true
						sk := sinks[i]
						next := func() { drainQ(i) }
						switch {
						case sk.svc != nil:
							sk.svc.forwardResponseT(t, sk.bq, msg, next)
						case sk.cb != nil:
							sk.cb.forwardOutT(t, msg, next)
						case sk.pl != nil:
							sk.pl.advanceT(t, sk.plStage, sk.pq, msg, next)
						case sk.rp != nil:
							sk.rp.r.onAck(sk.rp, msg.Payload)
							next()
						default:
							next()
						}
					})
				}
				commit = func(i int) {
					q := h.group.Queue(i)
					q.CommitTxT(t, func() {
						if wd <= 0 {
							visit(i + nMgr)
							return
						}
						rxc, txs := q.Counters()
						hs := &health[i]
						switch {
						case rxc != hs.rxc || txs != hs.txs || q.InFlight() == 0:
							hs.rxc, hs.txs, hs.last = rxc, txs, t.Now()
							if bq := sinks[i].bq; bq != nil && bq.failed {
								bq.failed = false
								rt.stats.Failbacks++
								rt.plat.Tracer.Emit(t.Now(), trace.Failover, uint64(i), 1)
							}
						case t.Now().Sub(hs.last) >= wd:
							if bq := sinks[i].bq; bq != nil && sinks[i].svc != nil && !bq.failed {
								bq.failed = true
								rt.stats.Failovers++
								rt.plat.Tracer.Emit(t.Now(), trace.Failover, uint64(i), 0)
							}
							// A frozen replication ingest ring is a dead
							// peer: waive its acks and release every
							// response blocked only on it.
							if rp := sinks[i].rp; rp != nil {
								rp.r.killPeer(t.Now(), rp)
							}
						}
						visit(i + nMgr)
					})
				}
				afterSweep = func() {
					if drained {
						sweep()
						return
					}
					// The real manager spins at MQPollInterval; the
					// simulator blocks on header activity and re-adds
					// the polling detection delay. While any owned
					// queue holds in-flight work the wait is bounded by
					// the watchdog timeout, so a fully stalled
					// accelerator (which never fires the gate) still
					// gets inspected.
					stuck := false
					if wd > 0 {
						for i := w; i < h.group.Len(); i += nMgr {
							if h.group.Queue(i).InFlight() > 0 {
								stuck = true
								break
							}
						}
					}
					poll := func() { t.Sleep(rt.plat.Params.MQPollInterval/2, sweep) }
					if stuck {
						if inline, _ := gate.WaitTimeoutT(t, v, wd, func(bool) { poll() }); inline {
							poll()
						}
					} else {
						if gate.WaitT(t, v, poll) {
							poll()
						}
					}
				}
				sweep()
			})
		}
	}
	return nil
}

// Stats returns a snapshot of the runtime's counters.
func (rt *Runtime) Stats() Stats { return rt.stats }

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(from netstack.Addr, n int) int

// Pick implements Policy.
func (f PolicyFunc) Pick(from netstack.Addr, n int) int { return f(from, n) }
