package core_test

import (
	"fmt"
	"testing"
	"time"

	"lynx/internal/accel"
	"lynx/internal/core"
	"lynx/internal/metrics"
	"lynx/internal/mqueue"
	"lynx/internal/netstack"
	"lynx/internal/sim"
	"lynx/internal/workload"
)

// startStageTBs launches persistent threadblocks for one pipeline stage:
// each appends its tag to the payload.
func startStageTBs(t *testing.T, b *bed, gpu *accel.GPU, h *core.AccelHandle, first, count int, tag byte, work time.Duration) {
	t.Helper()
	qs := h.AccelQueues()
	if err := gpu.LaunchPersistent(b.tb.Sim, count, func(tb *accel.TB) {
		aq := qs[first+tb.Index()%count]
		for {
			m := aq.Recv(tb.Proc())
			if work > 0 {
				tb.Compute(work)
			}
			out := append(append([]byte{}, m.Payload...), tag)
			if aq.Send(tb.Proc(), uint16(m.Slot), out) != nil {
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// A two-stage pipeline across two GPUs: requests traverse both accelerators
// and return transformed, with no application code on the SNIC.
func TestPipelineTwoGPUs(t *testing.T) {
	b := newBed(t, 21)
	gpu2 := b.server.AddGPU("gpu1", accel.K40m, false, "server1")
	rt := core.NewRuntime(b.bf.Platform(7))
	cfg := mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}
	h1, err := rt.Register(b.gpu, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := rt.Register(gpu2, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := rt.AddPipeline(core.UDP, 7000, nil, 2, h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Stages() != 2 {
		t.Fatalf("stages = %d", pl.Stages())
	}
	startStageTBs(t, b, b.gpu, h1, 0, 2, 'A', 10*time.Microsecond)
	startStageTBs(t, b, gpu2, h2, 0, 2, 'B', 10*time.Microsecond)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}

	const n = 60
	got := 0
	hist := metrics.NewHistogram()
	cli := b.client.MustUDPBind(9000)
	b.tb.Sim.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			start := p.Now()
			cli.SendTo(pl.Addr(), []byte(fmt.Sprintf("r%02d", i)))
			dg := cli.Recv(p)
			hist.Record(p.Now().Sub(start))
			want := fmt.Sprintf("r%02dAB", i)
			if string(dg.Payload) != want {
				t.Errorf("reply %d = %q, want %q", i, dg.Payload, want)
			}
			got++
		}
	})
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return got == n })
	b.tb.Sim.Shutdown()
	if got != n {
		t.Fatalf("completed %d/%d pipeline round trips", got, n)
	}
	if pl.Relayed() != n {
		t.Fatalf("relayed = %d, want %d (one relay per request)", pl.Relayed(), n)
	}
	st := rt.Stats()
	if st.Received != n || st.Responded != n || st.Dropped() != 0 {
		t.Fatalf("stats rcv=%d resp=%d drop=%d", st.Received, st.Responded, st.Dropped())
	}
}

// Stage-to-stage relays skip the network stack, so a pipeline hop must be
// much cheaper than going back out to a client and in again.
func TestPipelineHopCheaperThanNetworkBounce(t *testing.T) {
	// Pipelined: client -> stage0 -> stage1 -> client.
	pipelined := func() time.Duration {
		b := newBed(t, 22)
		rt := core.NewRuntime(b.bf.Platform(7))
		cfg := mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}
		h, _ := rt.Register(b.gpu, cfg, 2)
		pl, err := rt.AddPipeline(core.UDP, 7000, nil, 1, h, h)
		if err != nil {
			t.Fatal(err)
		}
		qs := h.AccelQueues()
		b.gpu.LaunchPersistent(b.tb.Sim, 2, func(tb *accel.TB) {
			aq := qs[tb.Index()]
			for {
				m := aq.Recv(tb.Proc())
				if aq.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
					return
				}
			}
		})
		rt.Start()
		return measureRTT(b, pl.Addr(), 40)
	}()
	// Bounced: client calls stage0's service, then stage1's service.
	bounced := func() time.Duration {
		b := newBed(t, 23)
		rt := core.NewRuntime(b.bf.Platform(7))
		cfg := mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}
		h, _ := rt.Register(b.gpu, cfg, 2)
		rt.AddService(core.UDP, 7000, nil, 1, h)
		rt.AddService(core.UDP, 7001, nil, 1, h)
		qs := h.AccelQueues()
		b.gpu.LaunchPersistent(b.tb.Sim, 2, func(tb *accel.TB) {
			aq := qs[tb.Index()]
			for {
				m := aq.Recv(tb.Proc())
				if aq.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
					return
				}
			}
		})
		rt.Start()
		hist := metrics.NewHistogram()
		done := false
		cli := b.client.MustUDPBind(9000)
		b.tb.Sim.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < 40; i++ {
				start := p.Now()
				cli.SendTo(netstack.Addr{Host: "bf1", Port: 7000}, make([]byte, 32))
				dg := cli.Recv(p)
				cli.SendTo(netstack.Addr{Host: "bf1", Port: 7001}, dg.Payload)
				cli.Recv(p)
				hist.Record(p.Now().Sub(start))
			}
			done = true
		})
		b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return done })
		b.tb.Sim.Shutdown()
		return hist.Median()
	}()
	if pipelined >= bounced {
		t.Fatalf("pipeline hop (%v) should beat a client bounce (%v)", pipelined, bounced)
	}
}

func measureRTT(b *bed, target netstack.Addr, n int) time.Duration {
	hist := metrics.NewHistogram()
	done := false
	cli := b.client.MustUDPBind(9000)
	b.tb.Sim.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			start := p.Now()
			cli.SendTo(target, make([]byte, 32))
			cli.Recv(p)
			hist.Record(p.Now().Sub(start))
		}
		done = true
	})
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return done })
	b.tb.Sim.Shutdown()
	return hist.Median()
}

func TestPipelineValidation(t *testing.T) {
	b := newBed(t, 24)
	rt := core.NewRuntime(b.bf.Platform(7))
	cfg := mqueue.Config{Kind: mqueue.ServerQueue, Slots: 8, SlotSize: 64}
	h, _ := rt.Register(b.gpu, cfg, 4)
	if _, err := rt.AddPipeline(core.UDP, 7000, nil, 1, h); err == nil {
		t.Fatal("single-stage pipeline must be rejected")
	}
	if _, err := rt.AddPipeline(core.UDP, 7000, nil, 3, h, h); err == nil {
		t.Fatal("over-claiming queues must fail")
	}
	if _, err := rt.AddPipeline(core.UDP, 7000, nil, 2, h, h); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if _, err := rt.AddPipeline(core.UDP, 7002, nil, 1, h, h); err == nil {
		t.Fatal("AddPipeline after Start must fail")
	}
	b.tb.Sim.Shutdown()
}

// test helpers shared by policy tests.
func workloadCfg(target netstack.Addr, clients int, window time.Duration) workload.Config {
	return workload.Config{
		Proto: workload.UDP, Target: target, Payload: 64,
		Clients: clients, Duration: window, Warmup: window / 5,
	}
}

func workloadNew(b *bed, cfg workload.Config) *workload.Generator {
	return workload.New(b.tb.Sim, cfg, b.client)
}

func workloadRun(b *bed, g *workload.Generator) workload.Result {
	return workload.RunFor(b.tb.Sim, g)
}
