// SNIC-driven replication (ROADMAP item 1, after "Reliable Replication
// Protocols on SmartNICs"): the dispatcher classifies each accepted request,
// and for writes it drives a quorum protocol entirely from the SNIC — the
// replication records travel over one-sided RDMA into ingest mqueues that
// live in *peer* accelerator memory, peer apply kernels acknowledge through
// the same rings, and the client response is held on the primary until the
// quorum is met. No host CPU on either side touches the path.
//
// Failure handling rides the PR 1 fault plane and the existing MQ-manager
// watchdog: a peer whose ingest ring stops making progress while holding
// in-flight records past MQWatchdogTimeout is declared dead, its pending
// acknowledgements are waived, and every response blocked only on it is
// released. Peers declared dead stay dead (no resync protocol yet — that is
// the next ROADMAP step); writes accepted after the verdict simply replicate
// to the surviving peers.
//
// The hooks into the dispatch/forward hot paths are synchronous bookkeeping
// gated on `svc.repl != nil`, so a runtime without replication executes the
// exact event sequence it executed before this layer existed — replication
// factor 1 stays byte-identical to the single-server build (the metamorphic
// golden test in internal/experiments pins this).
package core

import (
	"fmt"
	"math/bits"
	"time"

	"lynx/internal/accel"
	"lynx/internal/metrics"
	"lynx/internal/mqueue"
	"lynx/internal/sim"
	"lynx/internal/trace"
)

// ReplConfig parameterizes a service's replication layer.
type ReplConfig struct {
	// Classify inspects a request payload (including its 8-byte LE id
	// header, the workload sequence convention) and returns the write's id,
	// the mask of peer slots (bit i = AddPeer call i) that must apply it,
	// and whether the request mutates state at all. Reads return write=false
	// and bypass the protocol entirely.
	Classify func(payload []byte) (id uint64, peers uint32, write bool)
	// Quorum is the number of peer acknowledgements required before the
	// client response is released. 0 means all live peers in the mask.
	Quorum int
}

// ReplStats is the replication layer's counter snapshot.
type ReplStats struct {
	// Writes counts replicated writes tracked by the protocol.
	Writes uint64
	// Records counts replication records delivered into peer ingest rings.
	Records uint64
	// Backlogged counts deliveries deferred because a peer ingest ring was
	// full (the record stays queued and retries on the next ack).
	Backlogged uint64
	// Acks counts peer acknowledgements drained from ingest TX rings.
	Acks uint64
	// Held counts client responses parked waiting for peer acks.
	Held uint64
	// Released counts parked responses sent after their quorum was met or
	// waived by a failover verdict.
	Released uint64
	// PeerFailovers counts peers the watchdog declared dead.
	PeerFailovers uint64
}

// String formats the snapshot on one line with a stable field order.
func (s ReplStats) String() string {
	return fmt.Sprintf("writes=%d records=%d backlogged=%d acks=%d held=%d released=%d peer_failovers=%d",
		s.Writes, s.Records, s.Backlogged, s.Acks, s.Held, s.Released, s.PeerFailovers)
}

// replPeer is one replication target: an ingest mqueue group allocated in
// the peer accelerator's memory, written by this runtime's RDMA engine.
type replPeer struct {
	r    *Replicator
	idx  int
	name string
	h    *AccelHandle
	q    *mqueue.Queue
	// outbox holds replication records accepted by the dispatcher but not
	// yet delivered (the ingest ring was full, or the delivery pump has not
	// reached them). FIFO per peer.
	outbox [][]byte
	dead   bool
	deadAt sim.Time
	// outstanding counts records delivered into the ingest ring but not yet
	// acknowledged; since is when that count last shrank (or first became
	// non-zero) — the SNIC-local progress clock for the pump's ack deadline.
	outstanding int
	since       sim.Time
	// Straggler attribution: ackLat is the dispatch-to-ack latency of this
	// peer's acks, gated counts quorums this peer's ack completed (the ack
	// that released held responses), and gatingMargin is how long quorum
	// waited on it beyond the previous ack for the same write.
	ackLat       *metrics.Histogram
	gated        uint64
	gatingMargin *metrics.Histogram
}

// heldResp is one client response parked until its write's quorum is met.
type heldResp struct {
	to      replyTo
	payload []byte
	// parkedAt is when the response was parked; the park-to-release interval
	// is the span's replication-phase queue wait.
	parkedAt sim.Time
}

// pendingWrite tracks one replicated write from dispatch to release.
type pendingWrite struct {
	id       uint64
	waitMask uint32 // peers whose ack is still outstanding
	needed   int    // acks still required before release
	resps    []heldResp
	// dispatchAt is when the write entered the protocol; lastAck advances
	// with every matching ack — the gating margin of the quorum-completing
	// ack is measured from it.
	dispatchAt sim.Time
	lastAck    sim.Time
}

// Replicator drives the quorum protocol for one service.
type Replicator struct {
	rt  *Runtime
	svc *Service
	cfg ReplConfig

	peers    []*replPeer
	liveMask uint32

	pend       map[uint64]*pendingWrite
	releasable []heldResp
	held       uint64 // parked responses, for the conservation finisher

	// gate wakes the delivery pump (outbox flush + response release).
	gate *sim.Gate

	stats ReplStats
}

// AddReplication attaches a replication layer to the service. Configure
// peers with AddPeer before Start.
func (rt *Runtime) AddReplication(svc *Service, cfg ReplConfig) (*Replicator, error) {
	if rt.started {
		return nil, fmt.Errorf("core: cannot add replication after Start")
	}
	if svc == nil || svc.rt != rt {
		return nil, fmt.Errorf("core: replication target service is not on this runtime")
	}
	if svc.repl != nil {
		return nil, fmt.Errorf("core: service on port %d already replicated", svc.port)
	}
	if cfg.Classify == nil {
		return nil, fmt.Errorf("core: replication needs a Classify function")
	}
	r := &Replicator{
		rt: rt, svc: svc, cfg: cfg,
		pend: make(map[uint64]*pendingWrite),
		gate: sim.NewGate(rt.plat.Sim),
	}
	svc.repl = r
	rt.replicators = append(rt.replicators, r)
	return r, nil
}

// AddPeer allocates a single-queue ingest mqueue group in the peer
// accelerator's memory (named after this runtime's host, so several
// primaries can replicate into one accelerator) and returns its handle. The
// caller wires the handle's AccelQueues into the peer's apply kernel: each
// record carries the original request payload; the kernel applies it and
// answers with an acknowledgement repeating the 8-byte id header.
func (r *Replicator) AddPeer(name string, acc accel.Accelerator, qcfg mqueue.Config) (*AccelHandle, error) {
	rt := r.rt
	if rt.started {
		return nil, fmt.Errorf("core: cannot add replication peers after Start")
	}
	if len(r.peers) >= 32 {
		return nil, fmt.Errorf("core: replication peer mask is 32 bits wide")
	}
	region := fmt.Sprintf("lynx-repl-%s-%d", rt.plat.NetHost.Name(), len(r.peers))
	// Ingest queues carry copies of in-flight requests, not the requests
	// themselves: keep them out of the span table (spans=false) so the
	// peer-side apply kernel cannot stamp the primary's serving stages.
	// They do mark themselves as replication rings: each record delivery
	// stamps StageReplPushed into the *origin's* table, linking the replica
	// push to the origin span through the shared wire-seq id.
	qcfg.ReplSpans = rt.plat.Spans
	h, err := rt.register(acc, qcfg, 1, region, true, false)
	if err != nil {
		return nil, fmt.Errorf("core: registering ingest queue on %s: %w", acc.Name(), err)
	}
	rp := &replPeer{
		r: r, idx: len(r.peers), name: name, h: h, q: h.group.Queue(0),
		ackLat: metrics.NewHistogram(), gatingMargin: metrics.NewHistogram(),
	}
	r.peers = append(r.peers, rp)
	r.liveMask |= 1 << uint(rp.idx)
	return h, nil
}

// PeerCount returns the number of configured peers.
func (r *Replicator) PeerCount() int { return len(r.peers) }

// PeerName returns the name given to AddPeer.
func (r *Replicator) PeerName(i int) string { return r.peers[i].name }

// PeerDead reports whether the watchdog declared peer i dead.
func (r *Replicator) PeerDead(i int) bool { return r.peers[i].dead }

// PeerDeadAt returns the virtual time of peer i's failover verdict.
func (r *Replicator) PeerDeadAt(i int) (sim.Time, bool) {
	return r.peers[i].deadAt, r.peers[i].dead
}

// Stats returns the replication counter snapshot.
func (r *Replicator) Stats() ReplStats { return r.stats }

// ReplPeerStat is one peer's straggler profile: how its acks arrive and how
// often (and by how much) its ack was the one quorum waited for.
type ReplPeerStat struct {
	// Name is the peer name given to AddPeer.
	Name string
	// Acks counts acknowledgements drained from this peer.
	Acks uint64
	// GatedQuorums counts writes whose quorum this peer's ack completed —
	// the straggler count: this peer's ack was what held responses waited on.
	GatedQuorums uint64
	// AckLatency is the dispatch-to-ack latency distribution of this peer.
	AckLatency *metrics.Histogram
	// GatingMargin, over gated quorums only, is how long the quorum waited
	// on this peer beyond the previous ack for the same write.
	GatingMargin *metrics.Histogram
}

// PeerStat returns peer i's straggler profile. The histograms are live; the
// caller must not mutate them.
func (r *Replicator) PeerStat(i int) ReplPeerStat {
	rp := r.peers[i]
	var acks uint64
	if h := rp.ackLat; h != nil {
		acks = h.Count()
	}
	return ReplPeerStat{
		Name: rp.name, Acks: acks, GatedQuorums: rp.gated,
		AckLatency: rp.ackLat, GatingMargin: rp.gatingMargin,
	}
}

// HeldResponses returns the number of currently parked client responses.
func (r *Replicator) HeldResponses() uint64 { return r.held }

// onDispatch runs after a request was accepted into a primary mqueue. Pure
// bookkeeping — the record deliveries happen on the pump process — so the
// dispatch paths of both substrates stay operation-identical.
func (r *Replicator) onDispatch(payload []byte) {
	id, mask, write := r.cfg.Classify(payload)
	if !write {
		return
	}
	r.stats.Writes++
	mask &= r.liveMask
	if mask == 0 {
		return
	}
	if _, dup := r.pend[id]; dup {
		// Client retransmit of a tracked write: the records are already
		// owed to the same peers and the original acks settle it.
		return
	}
	needed := bits.OnesCount32(mask)
	if q := r.cfg.Quorum; q > 0 && q < needed {
		needed = q
	}
	now := r.rt.plat.Sim.Now()
	r.pend[id] = &pendingWrite{id: id, waitMask: mask, needed: needed, dispatchAt: now, lastAck: now}
	// Copy the payload: the record outlives the caller's buffer.
	rec := append([]byte(nil), payload...)
	for _, rp := range r.peers {
		if mask&(1<<uint(rp.idx)) != 0 {
			rp.outbox = append(rp.outbox, rec)
		}
	}
	r.gate.Fire()
}

// onResponse runs when the accelerator's response for a request is about to
// be forwarded, after its reply FIFO pop. It returns true when the response
// must be parked for outstanding peer acks — the caller then skips the send
// and the Responded count; the pump finishes the forward on release.
func (r *Replicator) onResponse(to replyTo, payload []byte) bool {
	pw := r.pend[trace.SpanID(payload)]
	if pw == nil {
		return false
	}
	if pw.needed <= 0 {
		delete(r.pend, pw.id)
		return false
	}
	pw.resps = append(pw.resps, heldResp{to: to, payload: payload, parkedAt: r.rt.plat.Sim.Now()})
	r.held++
	r.stats.Held++
	return true
}

// onAck runs from the MQ-manager sweep for every message drained from a peer
// ingest TX ring: the peer's apply kernel acknowledged one record.
func (r *Replicator) onAck(rp *replPeer, payload []byte) {
	now := r.rt.plat.Sim.Now()
	r.stats.Acks++
	if rp.outstanding > 0 {
		rp.outstanding--
		rp.since = now
	}
	id := trace.SpanID(payload)
	pw := r.pend[id]
	bit := uint32(1) << uint(rp.idx)
	if pw != nil && pw.waitMask&bit != 0 {
		rp.ackLat.RecordN(now.Sub(pw.dispatchAt), 1)
		r.rt.plat.Spans.Stamp(id, trace.StageReplAcked, now)
		pw.waitMask &^= bit
		pw.needed--
		if pw.needed <= 0 {
			// This peer's ack completed the quorum: it is the straggler
			// every held response was waiting on. The margin is how far it
			// trailed the previous ack (or dispatch, for a quorum of one).
			rp.gated++
			rp.gatingMargin.RecordN(now.Sub(pw.lastAck), 1)
			r.settle(now, pw)
		}
		pw.lastAck = now
	}
	// Every ack frees an ingest slot: wake the pump for backlogged records
	// (and any response the ack just released).
	r.gate.Fire()
}

// settle moves a quorum-met write's parked responses to the release queue,
// stamping the quorum stage and booking the park-to-release interval as the
// span's replication-phase queue wait. With no response parked yet, the pend
// entry stays: onResponse observes needed <= 0 and forwards inline — the
// write's replication overlapped its service and never gated the response,
// so it carries no quorum stamp and a zero replication phase.
func (r *Replicator) settle(now sim.Time, pw *pendingWrite) {
	if len(pw.resps) == 0 {
		return
	}
	sp := r.rt.plat.Spans
	sp.Stamp(pw.id, trace.StageQuorum, now)
	for _, hr := range pw.resps {
		sp.AddWait(pw.id, trace.PhaseReplication, now.Sub(hr.parkedAt))
	}
	r.rt.plat.Tracer.Emit(now, trace.ReplRelease,
		uint64(len(pw.resps)), uint64(bits.OnesCount32(pw.waitMask)))
	r.releasable = append(r.releasable, pw.resps...)
	pw.resps = nil
	delete(r.pend, pw.id)
}

// killPeer executes the watchdog's failover verdict: the peer is dead, its
// outstanding acknowledgements are waived, and every response blocked only
// on it is released. Pending writes are visited in id order so the release
// sequence is deterministic.
func (r *Replicator) killPeer(now sim.Time, rp *replPeer) {
	if rp.dead {
		return
	}
	rp.dead = true
	rp.deadAt = now
	rp.outbox = nil // undeliverable
	rp.outstanding = 0
	r.liveMask &^= 1 << uint(rp.idx)
	r.stats.PeerFailovers++
	bit := uint32(1) << uint(rp.idx)
	ids := make([]uint64, 0, len(r.pend))
	for id, pw := range r.pend {
		if pw.waitMask&bit != 0 {
			ids = append(ids, id)
		}
	}
	sortUint64s(ids)
	r.rt.plat.Tracer.Emit(now, trace.PeerKill, uint64(rp.idx), uint64(len(ids)))
	r.rt.plat.Tracer.Emit(now, trace.QuorumShrink,
		uint64(bits.OnesCount32(r.liveMask)), uint64(r.cfg.Quorum))
	for _, id := range ids {
		pw := r.pend[id]
		pw.waitMask &^= bit
		if live := bits.OnesCount32(pw.waitMask); pw.needed > live {
			pw.needed = live
		}
		if pw.needed <= 0 {
			r.settle(now, pw)
		}
	}
	r.gate.Fire()
}

// pump is the replicator's delivery process ("lynx/repl-pump"), spawned by
// Start: it flushes peer outboxes into ingest rings and completes the
// forward of released responses. One pass per gate version; when a pass
// makes no progress and nothing fired meanwhile, it blocks — bounded by the
// ack deadline while any live peer owes acknowledgements, since a fully
// frozen peer produces no TX activity to wake the MQ manager (whose watchdog
// is the other failover trigger) and would otherwise park responses forever.
func (r *Replicator) pump(p *sim.Proc) {
	rt := r.rt
	wd := rt.plat.Params.MQWatchdogTimeout
	for {
		v := r.gate.Version()
		progressed := false
		for _, rp := range r.peers {
			for len(rp.outbox) > 0 && !rp.dead {
				rec := rp.outbox[0]
				rt.execParallel(p, rt.plat.Params.ForwardCost)
				if _, err := rp.q.Push(p, rec, 0); err != nil {
					// Ingest ring full: the peer is backlogged (or
					// stalling). Keep the record queued; the next ack
					// frees a slot and re-fires the gate, and a dead
					// verdict discards the outbox.
					r.stats.Backlogged++
					break
				}
				rp.outbox = rp.outbox[1:]
				if rp.outstanding == 0 {
					rp.since = p.Now()
				}
				rp.outstanding++
				r.stats.Records++
				progressed = true
			}
		}
		for len(r.releasable) > 0 {
			hr := r.releasable[0]
			id := trace.SpanID(hr.payload)
			qw := rt.exec(p, rt.plat.Params.ForwardCost)
			switch r.svc.proto {
			case UDP:
				qw += rt.exec(p, rt.udpCost())
				r.svc.udpSock.SendTo(hr.to.udpFrom, hr.payload)
			case TCP:
				qw += rt.exec(p, rt.tcpCost())
				if hr.to.conn != nil {
					_ = hr.to.conn.Send(p, hr.payload)
				}
			}
			rt.stats.Responded++
			r.releasable = r.releasable[1:]
			r.held--
			r.stats.Released++
			rt.plat.Spans.AddWait(id, trace.PhaseSNIC, qw)
			rt.plat.Spans.Stamp(id, trace.StageForward, p.Now())
			rt.plat.Tracer.Emit(p.Now(), trace.Forward, uint64(len(hr.payload)), 0)
			progressed = true
		}
		if progressed {
			continue
		}
		// Ack deadline: a live peer holding delivered-but-unacknowledged
		// records whose progress clock stopped for the watchdog timeout is
		// declared dead here, on the SNIC, without waiting for the MQ
		// manager (its activity gate never fires for a frozen ring).
		if wd > 0 {
			now := p.Now()
			killed := false
			wait := time.Duration(-1)
			for _, rp := range r.peers {
				if rp.dead || rp.outstanding == 0 {
					continue
				}
				left := rp.since.Add(wd).Sub(now)
				if left <= 0 {
					r.killPeer(now, rp)
					killed = true
				} else if wait < 0 || left < wait {
					wait = left
				}
			}
			if killed {
				continue // flush the responses the verdicts released
			}
			if wait >= 0 {
				r.gate.WaitTimeout(p, v, wait)
				continue
			}
		}
		r.gate.Wait(p, v)
	}
}

// sortUint64s is an insertion sort: the pending-write set at a failover
// verdict is small (bounded by the in-flight window).
func sortUint64s(xs []uint64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ReplicaAck builds a peer apply kernel's acknowledgement for a record: the
// 8-byte id header. (A body is unnecessary — the primary matches acks to
// writes by id.)
func ReplicaAck(record []byte) []byte {
	ack := make([]byte, 8)
	copy(ack, record)
	return ack
}

// ---------------------------------------------------------------------------
// Time-sliced helpers used by the cluster experiments

// ReplicationLag is a convenience for experiments: the failover latency of
// peer i relative to a fault injected at `at`, or 0 when the peer is alive.
func (r *Replicator) ReplicationLag(i int, at time.Duration) time.Duration {
	rp := r.peers[i]
	if !rp.dead {
		return 0
	}
	return time.Duration(rp.deadAt) - at
}
