package core_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"lynx/internal/core"
	"lynx/internal/metrics"
	"lynx/internal/mqueue"
	"lynx/internal/netstack"
	"lynx/internal/sim"
)

// monitorBed wires an echo runtime with a monitor attached, without driving
// any load yet.
func monitorBed(t *testing.T, interval time.Duration) (*bed, *core.Runtime, *metrics.Registry) {
	t.Helper()
	b := newBed(t, 1)
	rt := core.NewRuntime(b.bf.Platform(7))
	h, err := rt.Register(b.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddService(core.UDP, 7000, nil, 2, h); err != nil {
		t.Fatal(err)
	}
	startEchoTBs(t, b, h, 0)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	rt.StartMonitor(interval, reg)
	return b, rt, reg
}

// dumpJSON round-trips a registry dump through the JSON decoder.
func dumpJSON(t *testing.T, reg *metrics.Registry) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.Dump(&buf); err != nil {
		t.Fatalf("dump: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	return m
}

// TestMonitorZeroDurationRun: a monitor on a runtime whose clock never
// advances records nothing, and the registry still dumps valid JSON.
func TestMonitorZeroDurationRun(t *testing.T) {
	b, _, reg := monitorBed(t, 50*time.Microsecond)
	defer b.tb.Sim.Shutdown()
	// No Run at all: zero virtual time elapses.
	for _, s := range reg.SeriesList() {
		if s.Len() != 0 {
			t.Errorf("series %s has %d samples after a zero-duration run", s.Name(), s.Len())
		}
	}
	m := dumpJSON(t, reg)
	if _, ok := m["series"]; !ok {
		t.Error("dump missing series section")
	}
	if _, ok := m["stats"]; !ok {
		t.Error("dump missing stats section")
	}
}

// TestMonitorIntervalLongerThanRun: the first sample would land after the
// run ends, so every series stays empty — but the series are registered and
// the dump is well-formed.
func TestMonitorIntervalLongerThanRun(t *testing.T) {
	b, _, reg := monitorBed(t, 10*time.Millisecond)
	b.tb.Sim.RunUntil(sim.Time(1 * time.Millisecond))
	b.tb.Sim.Shutdown()

	names := make(map[string]bool)
	for _, s := range reg.SeriesList() {
		names[s.Name()] = true
		if s.Len() != 0 {
			t.Errorf("series %s sampled %d times inside a run shorter than the interval", s.Name(), s.Len())
		}
	}
	for _, want := range []string{"snic/core-util", "snic/dispatch-util", "snic/backlog", "net/wire-util"} {
		if !names[want] {
			t.Errorf("series %s not registered", want)
		}
	}
	dumpJSON(t, reg)
}

// TestRegistryDumpNoSamples: a registry with registered-but-empty series and
// no stats sources dumps as empty maps, not null.
func TestRegistryDumpNoSamples(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.NewSeries("lonely/series", 8)
	m := dumpJSON(t, reg)
	series, ok := m["series"].(map[string]any)
	if !ok {
		t.Fatalf("series section = %T", m["series"])
	}
	pts, ok := series["lonely/series"].([]any)
	if !ok {
		t.Fatalf("empty series dumped as %T, want an array", series["lonely/series"])
	}
	if len(pts) != 0 {
		t.Fatalf("empty series dumped %d points", len(pts))
	}
}

// TestMonitorSamplesUtilizationUnderLoad: with traffic flowing, the core,
// dispatcher and wire utilization series all record in-range samples.
func TestMonitorSamplesUtilizationUnderLoad(t *testing.T) {
	b, rt, reg := monitorBed(t, 50*time.Microsecond)
	const n = 400
	var got int
	cli := b.client.MustUDPBind(9000)
	b.tb.Sim.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			cli.SendTo(netstack.Addr{Host: "bf1", Port: 7000}, []byte(fmt.Sprintf("ping-%03d", i)))
			cli.Recv(p)
			got++
		}
	})
	b.tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return got == n })
	b.tb.Sim.Shutdown()
	if got != n {
		t.Fatalf("received %d/%d echoes", got, n)
	}
	if rt.SerialBusy() <= 0 {
		t.Fatal("runtime accumulated no serialized stack time under load")
	}
	for _, name := range []string{"snic/core-util", "snic/dispatch-util", "net/wire-util"} {
		s := findSeries(reg, name)
		if s == nil || s.Len() == 0 {
			t.Fatalf("series %s empty under load", name)
		}
		var nonzero bool
		for _, pt := range s.Points() {
			if pt.V < 0 || pt.V > 1 {
				t.Fatalf("series %s sample %v outside [0,1]", name, pt.V)
			}
			if pt.V > 0 {
				nonzero = true
			}
		}
		if !nonzero {
			t.Errorf("series %s never left zero under load", name)
		}
	}
}

func findSeries(reg *metrics.Registry, name string) *metrics.Series {
	for _, s := range reg.SeriesList() {
		if s.Name() == name {
			return s
		}
	}
	return nil
}
