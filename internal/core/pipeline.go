// Accelerator composition: the paper positions Lynx as "a stepping stone for
// a general infrastructure targeting multi-accelerator systems which will
// enable efficient composition of accelerators and CPUs in a single
// application" (§1). This file implements that extension: pipelines, where a
// request flows client -> stage 0 -> stage 1 -> ... -> client, each stage an
// mqueue on (possibly) a different accelerator, with the SNIC relaying
// between stages through the same RDMA machinery — no host CPU and no
// network stack anywhere between stages.
package core

import (
	"fmt"

	"lynx/internal/mqueue"
	"lynx/internal/netstack"
	"lynx/internal/sim"
	"lynx/internal/trace"
)

// Pipeline is a chain of accelerator stages behind one network service.
type Pipeline struct {
	rt     *Runtime
	proto  Proto
	port   uint16
	policy Policy
	// stages[i] holds the parallel queues of stage i.
	stages [][]*pipeQueue

	udpSock *netstack.UDPSocket
	tcpList *netstack.TCPListener

	relayed uint64 // stage-to-stage messages moved by the SNIC
}

// pipeQueue is one mqueue of one stage, with per-slot continuations.
type pipeQueue struct {
	q       *mqueue.Queue
	h       *AccelHandle
	pending [][]replyTo
}

// AddPipeline exposes a multi-accelerator pipeline as a network service on
// port. Each stage claims `count` parallel mqueues from its handle; the
// dispatch policy picks among the parallel queues independently at every
// stage. Requests enter stage 0; each stage's TX output becomes the next
// stage's RX input; the final stage's output returns to the client that sent
// the request, with the usual server-mqueue reply-to-sender semantics.
func (rt *Runtime) AddPipeline(proto Proto, port uint16, policy Policy, count int, stages ...*AccelHandle) (*Pipeline, error) {
	if rt.started {
		return nil, fmt.Errorf("core: cannot add pipelines after Start")
	}
	if len(stages) < 2 {
		return nil, fmt.Errorf("core: a pipeline needs at least two stages (use AddService for one)")
	}
	if policy == nil {
		policy = &RoundRobin{}
	}
	pl := &Pipeline{rt: rt, proto: proto, port: port, policy: policy}
	var claimed []*AccelHandle
	rollback := func() {
		for _, h := range claimed {
			h.unclaim(count)
		}
	}
	for _, h := range stages {
		qs, _, err := h.claim(count)
		if err != nil {
			rollback()
			return nil, err
		}
		claimed = append(claimed, h)
		var stage []*pipeQueue
		for _, q := range qs {
			stage = append(stage, &pipeQueue{
				q: q, h: h, pending: make([][]replyTo, q.Config().Slots),
			})
		}
		pl.stages = append(pl.stages, stage)
	}
	var err error
	switch proto {
	case UDP:
		pl.udpSock, err = rt.plat.NetHost.UDPBind(port)
	case TCP:
		pl.tcpList, err = rt.plat.NetHost.TCPListen(port)
	}
	if err != nil {
		rollback()
		return nil, err
	}
	rt.pipelines = append(rt.pipelines, pl)
	return pl, nil
}

// Addr returns the pipeline's service address.
func (pl *Pipeline) Addr() netstack.Addr { return pl.rt.plat.NetHost.Addr(pl.port) }

// Relayed reports stage-to-stage messages moved by the SNIC.
func (pl *Pipeline) Relayed() uint64 { return pl.relayed }

// Stages reports the number of stages.
func (pl *Pipeline) Stages() int { return len(pl.stages) }

// enter dispatches a client request into stage 0.
func (pl *Pipeline) enter(p *sim.Proc, payload []byte, to replyTo) {
	rt := pl.rt
	rt.exec(p, rt.plat.Params.DispatchCost)
	pl.pushStage(p, 0, payload, to)
}

// pushStage delivers a message into one stage, recording the continuation.
func (pl *Pipeline) pushStage(p *sim.Proc, stage int, payload []byte, to replyTo) {
	rt := pl.rt
	queues := pl.stages[stage]
	pq := queues[pl.policy.Pick(netstack.Addr{}, len(queues))]
	slot, err := pq.q.Push(p, payload, 0)
	if err != nil {
		rt.drop(p.Now(), DropOverflow, uint64(stage))
		return
	}
	pq.pending[slot] = append(pq.pending[slot], to)
	if stage == 0 {
		rt.stats.Received++
	}
}

// advance handles a TX message from stage i: relay to stage i+1 or answer
// the client.
func (pl *Pipeline) advance(p *sim.Proc, stage int, pq *pipeQueue, msg mqueue.TxMsg) {
	rt := pl.rt
	fifo := pq.pending[msg.Corr]
	if len(fifo) == 0 {
		// Output without a matching input; drop.
		rt.plat.Check.Failf("core.orphan-response",
			"pipeline port %d stage %d: TX message for slot %d has no pending request",
			pl.port, stage, msg.Corr)
		return
	}
	to := fifo[0]
	pq.pending[msg.Corr] = fifo[1:]
	rt.inTransit++
	if stage+1 < len(pl.stages) {
		// Stage-to-stage relay: one dispatch cost, no network stack.
		rt.exec(p, rt.plat.Params.DispatchCost)
		pl.relayed++
		rt.plat.Tracer.Emit(p.Now(), trace.Relay, uint64(stage+1), 0)
		pl.pushStage(p, stage+1, msg.Payload, to)
		rt.inTransit--
		return
	}
	// Final stage: back to the client.
	rt.exec(p, rt.plat.Params.ForwardCost)
	switch pl.proto {
	case UDP:
		rt.exec(p, rt.udpCost())
		pl.udpSock.SendTo(to.udpFrom, msg.Payload)
	case TCP:
		rt.exec(p, rt.tcpCost())
		if to.conn != nil {
			_ = to.conn.Send(p, msg.Payload)
		}
	}
	rt.stats.Responded++
	rt.inTransit--
}
