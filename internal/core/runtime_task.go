// Task-substrate forms of the runtime's hot-path stages. Each function here
// is a continuation-passing port of its coroutine counterpart in runtime.go /
// pipeline.go and must stay operation-for-operation identical to it: same
// order of exec charges, span stamps, tracer emissions, counter updates, and
// blocking-primitive calls, so that a run is byte-identical whichever
// substrate hosts the stage (see the seq-parity contract in internal/sim).
//
// The always-on stages Start() hosts on Tasks are the UDP receive workers
// (batched and unbatched) and the Remote MQ Manager sweep — the processes
// that wake for every single message. Cold and connection-scoped paths
// (TCP accept/rx, pipeline frontends, client bindings, retry timers) stay on
// coroutine Procs.
package core

import (
	"time"

	"lynx/internal/mqueue"
	"lynx/internal/netstack"
	"lynx/internal/rdma"
	"lynx/internal/sim"
	"lynx/internal/trace"
)

// execFrame carries one in-flight task-substrate exec call through its
// serialized and parallel resource holds without per-call closures: the two
// continuations are bound once when the frame is created, and the call's
// (task, start time, shares, k) travel through the frame's fields. finish
// copies everything to locals and recycles the frame before invoking k, so
// an exec issued from inside k reuses it immediately.
type execFrame struct {
	rt    *Runtime
	t     *sim.Task
	t0    sim.Time
	par   time.Duration // parallel share still to hold after the serial one
	total time.Duration // busy total subtracted from elapsed to get the wait
	k     func(qw time.Duration)

	afterSerial func() // pre-bound f.holdCores
	afterCores  func() // pre-bound f.finish
}

func (rt *Runtime) getExecFrame() *execFrame {
	if n := len(rt.execFrames); n > 0 {
		f := rt.execFrames[n-1]
		rt.execFrames = rt.execFrames[:n-1]
		return f
	}
	f := &execFrame{rt: rt}
	f.afterSerial = f.holdCores
	f.afterCores = f.finish
	return f
}

func (f *execFrame) holdCores() {
	f.rt.cores.WithT(f.t, f.par, f.afterCores)
}

func (f *execFrame) finish() {
	rt, t, t0, total, k := f.rt, f.t, f.t0, f.total, f.k
	f.t, f.k = nil, nil
	rt.execFrames = append(rt.execFrames, f)
	k(t.Now().Sub(t0) - total)
}

// execT is exec for tasks: k runs with the queueing wait once the serialized
// and parallel shares have been held.
func (rt *Runtime) execT(t *sim.Task, cost time.Duration, k func(qw time.Duration)) {
	scaled := rt.plat.Machine.Scale(cost)
	ser := time.Duration(float64(scaled) * rt.plat.Params.StackSerialFraction)
	rt.cpuBusy += scaled
	rt.serialBusy += ser
	rt.execCalls++
	f := rt.getExecFrame()
	f.t, f.t0, f.par, f.total, f.k = t, t.Now(), scaled-ser, scaled, k
	rt.serial.WithT(t, ser, f.afterSerial)
}

// execBatchT is execBatch for tasks.
func (rt *Runtime) execBatchT(t *sim.Task, cost time.Duration, n int, k func(qw time.Duration)) {
	if n <= 1 {
		rt.execT(t, cost, k)
		return
	}
	scaled := rt.plat.Machine.Scale(cost)
	ser1 := time.Duration(float64(scaled) * rt.plat.Params.StackSerialFraction)
	fixed := time.Duration(float64(ser1) * rt.plat.Params.SerialBatchFixed)
	ser := fixed + time.Duration(n)*(ser1-fixed)
	par := time.Duration(n) * (scaled - ser1)
	rt.cpuBusy += ser + par
	rt.serialBusy += ser
	rt.execCalls += uint64(n)
	f := rt.getExecFrame()
	f.t, f.t0, f.par, f.total, f.k = t, t.Now(), par, ser+par, k
	rt.serial.WithT(t, ser, f.afterSerial)
}

// execParallelT is execParallel for tasks: no serialized share, so the frame
// skips straight to the cores hold.
func (rt *Runtime) execParallelT(t *sim.Task, cost time.Duration, k func(qw time.Duration)) {
	scaled := rt.plat.Machine.Scale(cost)
	rt.cpuBusy += scaled
	f := rt.getExecFrame()
	f.t, f.t0, f.par, f.total, f.k = t, t.Now(), scaled, scaled, k
	rt.cores.WithT(t, scaled, f.afterCores)
}

// dispatchT is Service.dispatch for tasks.
func (s *Service) dispatchT(t *sim.Task, payload []byte, to replyTo, from netstack.Addr, k func()) {
	rt := s.rt
	rt.plat.Tracer.Emit(t.Now(), trace.Recv, uint64(len(payload)), uint64(s.port))
	rt.execT(t, rt.plat.Params.DispatchCost, func(qw time.Duration) {
		qi := s.policy.Pick(from, len(s.queues))
		if s.queues[qi].failed {
			for off := 1; off < len(s.queues); off++ {
				if alt := (qi + off) % len(s.queues); !s.queues[alt].failed {
					qi = alt
					break
				}
			}
		}
		bq := s.queues[qi]
		id := trace.SpanID(payload)
		rt.plat.Spans.AddWait(id, trace.PhaseSNIC, qw)
		rt.plat.Spans.Stamp(id, trace.StageDispatch, t.Now())
		rt.plat.Spans.SetQueue(id, qi)
		bq.q.PushT(t, payload, 0, func(slot int, err error) {
			if err != nil {
				cause := DropOverflow
				if bq.failed {
					cause = DropStalled
				}
				rt.drop(t.Now(), cause, uint64(qi))
				rt.plat.Spans.Close(id, trace.SpanDropped, t.Now())
				k()
				return
			}
			rt.plat.Spans.Stamp(id, trace.StagePushed, t.Now())
			bq.pending[slot] = append(bq.pending[slot], to)
			rt.stats.Received++
			rt.plat.Tracer.Emit(t.Now(), trace.Dispatch, uint64(qi), uint64(slot))
			if s.repl != nil {
				s.repl.onDispatch(payload)
			}
			k()
		})
	})
}

// dispatchBatchT is Service.dispatchBatch for tasks: the per-message
// preparation loop is sequential (a refresh inside PrepareWriteT parks the
// task and the loop resumes in its continuation), exactly as the coroutine
// loop blocks mid-iteration.
func (s *Service) dispatchBatchT(t *sim.Task, dgs []netstack.Datagram, k func()) {
	rt := s.rt
	n := len(dgs)
	if n == 0 {
		k()
		return
	}
	for i := range dgs {
		rt.plat.Tracer.Emit(t.Now(), trace.Recv, uint64(len(dgs[i].Payload)), uint64(s.port))
	}
	rt.execBatchT(t, rt.plat.Params.DispatchCost, n, func(qw time.Duration) {
		type preparedWR struct {
			wr rdma.WR
			qp *rdma.QP
		}
		preps := make([]preparedWR, 0, n)
		var prep func(i int)
		post := func() {
			batch := rt.plat.Params.Batch
			wrs := make([]rdma.WR, 0, len(preps))
			var postNext func()
			postNext = func() {
				if len(preps) == 0 {
					k()
					return
				}
				qp := preps[0].qp
				wrs = wrs[:0]
				rest := preps[:0]
				for _, pr := range preps {
					if pr.qp == qp {
						wrs = append(wrs, pr.wr)
					} else {
						rest = append(rest, pr)
					}
				}
				preps = rest
				qp.PostAndWaitT(t, wrs, batch.EffDoorbell(), batch.EffCQDrain(), func(rdma.CQE) {
					postNext()
				})
			}
			postNext()
		}
		finish := func(i, qi int, bq *boundQueue, wr rdma.WR, slot int, err error) {
			id := trace.SpanID(dgs[i].Payload)
			if err != nil {
				cause := DropOverflow
				if bq.failed {
					cause = DropStalled
				}
				rt.drop(t.Now(), cause, uint64(qi))
				rt.plat.Spans.Close(id, trace.SpanDropped, t.Now())
				return
			}
			bq.pending[slot] = append(bq.pending[slot], replyTo{udpFrom: dgs[i].From})
			rt.stats.Received++
			rt.plat.Tracer.Emit(t.Now(), trace.Dispatch, uint64(qi), uint64(slot))
			if s.repl != nil {
				s.repl.onDispatch(dgs[i].Payload)
			}
			preps = append(preps, preparedWR{wr: wr, qp: bq.q.QP()})
		}
		prep = func(i int) {
			for ; i < n; i++ {
				payload := dgs[i].Payload
				qi := s.policy.Pick(dgs[i].From, len(s.queues))
				if s.queues[qi].failed {
					for off := 1; off < len(s.queues); off++ {
						if alt := (qi + off) % len(s.queues); !s.queues[alt].failed {
							qi = alt
							break
						}
					}
				}
				bq := s.queues[qi]
				id := trace.SpanID(payload)
				rt.plat.Spans.AddWait(id, trace.PhaseSNIC, shareWait(qw, n, i))
				rt.plat.Spans.Stamp(id, trace.StageDispatch, t.Now())
				rt.plat.Spans.SetQueue(id, qi)
				i, qi, bq := i, qi, bq
				wr, slot, err, inline := bq.q.PrepareWriteT(t, payload, 0, func(wr rdma.WR, slot int, err error) {
					finish(i, qi, bq, wr, slot, err)
					prep(i + 1)
				})
				if !inline {
					return
				}
				finish(i, qi, bq, wr, slot, err)
			}
			post()
		}
		prep(0)
	})
}

// forwardResponseT is Service.forwardResponse for tasks.
func (s *Service) forwardResponseT(t *sim.Task, bq *boundQueue, msg mqueue.TxMsg, k func()) {
	rt := s.rt
	rt.plat.Tracer.Emit(t.Now(), trace.Drain, uint64(msg.Slot), uint64(msg.Corr))
	id := trace.SpanID(msg.Payload)
	rt.plat.Spans.Stamp(id, trace.StageDrain, t.Now())
	rt.execT(t, rt.plat.Params.ForwardCost, func(qw time.Duration) {
		fifo := bq.pending[msg.Corr]
		if len(fifo) == 0 {
			rt.plat.Check.Failf("core.orphan-response",
				"service port %d: TX message for slot %d has no pending request", s.port, msg.Corr)
			k()
			return
		}
		to := fifo[0]
		bq.pending[msg.Corr] = fifo[1:]
		if s.repl != nil && s.repl.onResponse(to, msg.Payload) {
			// Parked for peer acks: the replicator's pump finishes the
			// forward (same rule as the coroutine form).
			k()
			return
		}
		rt.inTransit++
		finish := func(qw time.Duration) {
			rt.stats.Responded++
			rt.inTransit--
			rt.plat.Spans.AddWait(id, trace.PhaseSNIC, qw)
			rt.plat.Spans.Stamp(id, trace.StageForward, t.Now())
			rt.plat.Tracer.Emit(t.Now(), trace.Forward, uint64(len(msg.Payload)), 0)
			k()
		}
		switch s.proto {
		case UDP:
			rt.execT(t, rt.udpCost(), func(qw2 time.Duration) {
				s.udpSock.SendTo(to.udpFrom, msg.Payload)
				finish(qw + qw2)
			})
		case TCP:
			rt.execT(t, rt.tcpCost(), func(qw2 time.Duration) {
				if to.conn != nil {
					_ = to.conn.Send(nil, msg.Payload)
				}
				finish(qw + qw2)
			})
		}
	})
}

// forwardResponseBatchT is Service.forwardResponseBatch for tasks.
func (s *Service) forwardResponseBatchT(t *sim.Task, bq *boundQueue, msgs []mqueue.TxMsg, k func()) {
	rt := s.rt
	n := len(msgs)
	if n == 0 {
		k()
		return
	}
	for i := range msgs {
		rt.plat.Tracer.Emit(t.Now(), trace.Drain, uint64(msgs[i].Slot), uint64(msgs[i].Corr))
		rt.plat.Spans.Stamp(trace.SpanID(msgs[i].Payload), trace.StageDrain, t.Now())
	}
	rt.execBatchT(t, rt.plat.Params.ForwardCost, n, func(qw time.Duration) {
		var cost time.Duration
		switch s.proto {
		case UDP:
			cost = rt.udpCost()
		case TCP:
			cost = rt.tcpCost()
		}
		rt.execBatchT(t, cost, n, func(qw2 time.Duration) {
			qw += qw2
			for i := range msgs {
				msg := msgs[i]
				id := trace.SpanID(msg.Payload)
				fifo := bq.pending[msg.Corr]
				if len(fifo) == 0 {
					rt.plat.Check.Failf("core.orphan-response",
						"service port %d: TX message for slot %d has no pending request", s.port, msg.Corr)
					continue
				}
				to := fifo[0]
				bq.pending[msg.Corr] = fifo[1:]
				if s.repl != nil && s.repl.onResponse(to, msg.Payload) {
					continue
				}
				rt.inTransit++
				switch s.proto {
				case UDP:
					s.udpSock.SendTo(to.udpFrom, msg.Payload)
				case TCP:
					if to.conn != nil {
						_ = to.conn.Send(nil, msg.Payload)
					}
				}
				rt.stats.Responded++
				rt.inTransit--
				rt.plat.Spans.AddWait(id, trace.PhaseSNIC, shareWait(qw, n, i))
				rt.plat.Spans.Stamp(id, trace.StageForward, t.Now())
				rt.plat.Tracer.Emit(t.Now(), trace.Forward, uint64(len(msg.Payload)), 0)
			}
			k()
		})
	})
}

// forwardOutT is ClientBinding.forwardOut for tasks.
func (cb *ClientBinding) forwardOutT(t *sim.Task, msg mqueue.TxMsg, k func()) {
	rt := cb.rt
	rt.plat.Tracer.Emit(t.Now(), trace.BackendOut, uint64(len(msg.Payload)), uint64(cb.qi))
	rt.plat.Spans.Stamp(trace.SpanID(msg.Payload), trace.StageBackendOut, t.Now())
	rt.execParallelT(t, rt.plat.Params.ForwardCost, func(time.Duration) {
		rt.stats.Forwarded++
		switch cb.proto {
		case UDP:
			rt.execParallelT(t, rt.udpCost(), func(time.Duration) {
				cb.sock.SendTo(cb.dst, msg.Payload)
				if rt.plat.Params.ClientRetryMax > 0 && rt.plat.Params.ClientRetryTimeout > 0 {
					cb.outstanding = append(cb.outstanding, pendingSend{
						payload:  msg.Payload,
						deadline: t.Now().Add(rt.plat.Params.ClientRetryTimeout),
					})
				}
				k()
			})
		case TCP:
			rt.execParallelT(t, rt.tcpCost(), func(time.Duration) {
				if cb.conn != nil {
					if err := cb.conn.Send(nil, msg.Payload); err != nil {
						cb.bq.q.PushT(t, nil, 1, func(int, error) { k() })
						return
					}
				}
				k()
			})
		}
	})
}

// pushStageT is Pipeline.pushStage for tasks.
func (pl *Pipeline) pushStageT(t *sim.Task, stage int, payload []byte, to replyTo, k func()) {
	rt := pl.rt
	queues := pl.stages[stage]
	pq := queues[pl.policy.Pick(netstack.Addr{}, len(queues))]
	pq.q.PushT(t, payload, 0, func(slot int, err error) {
		if err != nil {
			rt.drop(t.Now(), DropOverflow, uint64(stage))
			k()
			return
		}
		pq.pending[slot] = append(pq.pending[slot], to)
		if stage == 0 {
			rt.stats.Received++
		}
		k()
	})
}

// advanceT is Pipeline.advance for tasks.
func (pl *Pipeline) advanceT(t *sim.Task, stage int, pq *pipeQueue, msg mqueue.TxMsg, k func()) {
	rt := pl.rt
	fifo := pq.pending[msg.Corr]
	if len(fifo) == 0 {
		rt.plat.Check.Failf("core.orphan-response",
			"pipeline port %d stage %d: TX message for slot %d has no pending request",
			pl.port, stage, msg.Corr)
		k()
		return
	}
	to := fifo[0]
	pq.pending[msg.Corr] = fifo[1:]
	rt.inTransit++
	if stage+1 < len(pl.stages) {
		rt.execT(t, rt.plat.Params.DispatchCost, func(time.Duration) {
			pl.relayed++
			rt.plat.Tracer.Emit(t.Now(), trace.Relay, uint64(stage+1), 0)
			pl.pushStageT(t, stage+1, msg.Payload, to, func() {
				rt.inTransit--
				k()
			})
		})
		return
	}
	rt.execT(t, rt.plat.Params.ForwardCost, func(time.Duration) {
		var cost time.Duration
		switch pl.proto {
		case UDP:
			cost = rt.udpCost()
		case TCP:
			cost = rt.tcpCost()
		}
		rt.execT(t, cost, func(time.Duration) {
			switch pl.proto {
			case UDP:
				pl.udpSock.SendTo(to.udpFrom, msg.Payload)
			case TCP:
				if to.conn != nil {
					_ = to.conn.Send(nil, msg.Payload)
				}
			}
			rt.stats.Responded++
			rt.inTransit--
			k()
		})
	})
}
