// Package fabric models a PCIe interconnect: devices and switches joined by
// links with latency and bandwidth, supporting peer-to-peer DMA between any
// two devices (the mechanism Lynx uses for SNIC <-> accelerator transfers
// without host CPU involvement, §4.1).
//
// Transfers acquire each link on their path for the serialization time of
// the payload, so concurrent DMAs contend realistically; per-hop latency is
// added once per link.
package fabric

import (
	"fmt"
	"time"

	"lynx/internal/check"
	"lynx/internal/fault"
	"lynx/internal/memdev"
	"lynx/internal/sim"
)

// Node is a vertex of the PCIe topology: either a Device or a Switch.
type Node interface {
	nodeName() string
	edges() []*Link
	addEdge(l *Link)
}

type nodeBase struct {
	name  string
	links []*Link
}

func (n *nodeBase) nodeName() string { return n.name }
func (n *nodeBase) edges() []*Link   { return n.links }
func (n *nodeBase) addEdge(l *Link)  { n.links = append(n.links, l) }

// Device is an endpoint on the fabric (NIC, GPU, CPU root complex, VCA...).
// A device optionally owns memory reachable by peer DMA.
type Device struct {
	nodeBase
	Mem *memdev.Memory
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Switch is a PCIe switch (e.g. the one inside BlueField or the VCA).
type Switch struct {
	nodeBase
}

// Link is a bidirectional fabric edge.
type Link struct {
	a, b      Node
	latency   time.Duration
	bandwidth float64 // bits per second
	busy      *sim.Resource

	bytesMoved uint64
	busyTime   time.Duration
}

// other returns the far endpoint of l as seen from n.
func (l *Link) other(n Node) Node {
	if l.a == n {
		return l.b
	}
	return l.a
}

// Fabric is a PCIe topology.
type Fabric struct {
	sim    *sim.Sim
	nodes  map[string]Node
	paths  map[[2]string][]*Link // route cache
	faults *fault.Plan
	links  []*Link

	transfers uint64

	// check and hopBytes implement double-entry byte conservation: every
	// completed hop adds its size both to the link's bytesMoved and to the
	// fabric-global hopBytes, from the same loop but different ledgers, so a
	// refactor that double-counts or bypasses per-link accounting trips the
	// end-of-run finisher. Only maintained while a checker is installed.
	check    *check.Checker
	hopBytes uint64
}

// SetFaults installs a fault plan consulted per transfer. A nil plan (the
// default) injects nothing.
func (f *Fabric) SetFaults(pl *fault.Plan) { f.faults = pl }

// New creates an empty fabric.
func New(s *sim.Sim) *Fabric {
	return &Fabric{
		sim:   s,
		nodes: make(map[string]Node),
		paths: make(map[[2]string][]*Link),
	}
}

// AddDevice registers a new endpoint. mem may be nil for devices without
// DMA-visible memory.
func (f *Fabric) AddDevice(name string, mem *memdev.Memory) *Device {
	d := &Device{nodeBase: nodeBase{name: name}, Mem: mem}
	f.register(name, d)
	return d
}

// AddSwitch registers a new switch.
func (f *Fabric) AddSwitch(name string) *Switch {
	sw := &Switch{nodeBase: nodeBase{name: name}}
	f.register(name, sw)
	return sw
}

// ToR is a top-of-rack switch: an ordinary fabric switch plus its recorded
// uplink into the backbone, so rack-local hops and uplink hops are separate
// links with separate utilization accounting. Machines cabled into a ToR
// reach rack peers in one switch hop and the rest of the world through the
// uplink.
type ToR struct {
	sw     *Switch
	uplink *Link
}

// AddToR registers a rack switch and connects it to the backbone switch with
// a link of the given one-way latency and bandwidth (bits/second).
func (f *Fabric) AddToR(name string, backbone *Switch, latency time.Duration, bandwidth float64) *ToR {
	sw := f.AddSwitch(name)
	return &ToR{sw: sw, uplink: f.Connect(sw, backbone, latency, bandwidth)}
}

// Switch returns the rack switch node, for cabling machines into the rack.
func (t *ToR) Switch() *Switch { return t.sw }

// Uplink returns the ToR's backbone link (for utilization probes).
func (t *ToR) Uplink() *Link { return t.uplink }

func (f *Fabric) register(name string, n Node) {
	if _, dup := f.nodes[name]; dup {
		panic(fmt.Sprintf("fabric: duplicate node %q", name))
	}
	f.nodes[name] = n
}

// Connect joins two nodes with a link of the given one-way latency and
// bandwidth (bits/second).
func (f *Fabric) Connect(a, b Node, latency time.Duration, bandwidth float64) *Link {
	l := &Link{a: a, b: b, latency: latency, bandwidth: bandwidth, busy: sim.NewResource(f.sim, 1)}
	a.addEdge(l)
	b.addEdge(l)
	f.links = append(f.links, l)
	f.paths = make(map[[2]string][]*Link) // invalidate route cache
	return l
}

// route finds the link path between two nodes with BFS, cached.
func (f *Fabric) route(from, to Node) []*Link {
	key := [2]string{from.nodeName(), to.nodeName()}
	if p, ok := f.paths[key]; ok {
		return p
	}
	type hop struct {
		n    Node
		via  *Link
		prev *hop
	}
	visited := map[Node]bool{from: true}
	queue := []*hop{{n: from}}
	var found *hop
	for len(queue) > 0 && found == nil {
		h := queue[0]
		queue = queue[1:]
		for _, l := range h.n.edges() {
			nxt := l.other(h.n)
			if visited[nxt] {
				continue
			}
			visited[nxt] = true
			nh := &hop{n: nxt, via: l, prev: h}
			if nxt == to {
				found = nh
				break
			}
			queue = append(queue, nh)
		}
	}
	if found == nil {
		panic(fmt.Sprintf("fabric: no path from %s to %s", from.nodeName(), to.nodeName()))
	}
	var path []*Link
	for h := found; h.via != nil; h = h.prev {
		path = append([]*Link{h.via}, path...)
	}
	f.paths[key] = path
	return path
}

// Distance reports the hop count between two devices (for tests/topology
// validation).
func (f *Fabric) Distance(from, to *Device) int { return len(f.route(from, to)) }

// TransferTime estimates the uncontended time to move size bytes from one
// device to another.
func (f *Fabric) TransferTime(from, to *Device, size int) time.Duration {
	var total time.Duration
	for _, l := range f.route(from, to) {
		total += l.latency
		if l.bandwidth > 0 {
			total += time.Duration(float64(size*8) / l.bandwidth * 1e9)
		}
	}
	return total
}

// transfer blocks p for the transit of size bytes along the path, holding
// each link for its serialization time (cut-through: latency overlaps with
// downstream hops, modelled as per-hop latency plus per-hop serialization).
func (f *Fabric) transfer(p *sim.Proc, from, to *Device, size int) {
	f.transfers++
	if spike := f.faults.PCIePerturb(); spike > 0 {
		p.Sleep(spike)
	}
	for _, l := range f.route(from, to) {
		l.busy.Acquire(p)
		ser := time.Duration(0)
		if l.bandwidth > 0 {
			ser = time.Duration(float64(size*8) / l.bandwidth * 1e9)
		}
		p.Sleep(l.latency + ser)
		l.bytesMoved += uint64(size)
		l.busyTime += l.latency + ser
		if f.check.Enabled() {
			f.hopBytes += uint64(size)
		}
		l.busy.Release()
	}
}

// WriteDMA performs a peer-to-peer DMA write of data into region at off,
// on behalf of device from, blocking p for the transit time. The write
// lands with the region's ordering semantics (relaxed regions may delay
// visibility; see memdev).
func (f *Fabric) WriteDMA(p *sim.Proc, from, to *Device, region *memdev.Region, off int, data []byte) {
	f.transfer(p, from, to, len(data))
	region.WriteDMA(off, data)
}

// ReadDMA performs a peer-to-peer DMA read of n bytes from region at off,
// blocking p for the round trip (request header out, data back). DMA reads
// are ordered and act as a flush barrier on the target region.
func (f *Fabric) ReadDMA(p *sim.Proc, from, to *Device, region *memdev.Region, off, n int) []byte {
	f.transfer(p, from, to, 32) // read request TLP
	f.transfer(p, to, from, n)  // completion with data
	return region.ReadDMA(off, n)
}

// FlushBarrier performs a zero-byte ordered read round trip that forces all
// posted writes to the region to become visible (the §5.1 workaround).
func (f *Fabric) FlushBarrier(p *sim.Proc, from, to *Device, region *memdev.Region) {
	f.transfer(p, from, to, 32)
	f.transfer(p, to, from, 8)
	region.Flush()
}

// Transfers reports the number of DMA operations performed.
func (f *Fabric) Transfers() uint64 { return f.transfers }

// RegisterInvariants installs ck and registers the fabric's end-of-run
// checks: per-link byte conservation against the fabric-global hop ledger
// (from ck's installation onward) and link occupancy never exceeding
// elapsed virtual time.
func (f *Fabric) RegisterInvariants(ck *check.Checker) {
	if !ck.Enabled() {
		return
	}
	f.check = ck
	var baseline uint64
	for _, l := range f.links {
		baseline += l.bytesMoved
	}
	ck.AddFinisher("fabric.byte-conservation", func(fail func(string, ...any)) {
		var moved uint64
		for _, l := range f.links {
			moved += l.bytesMoved
		}
		if moved-baseline != f.hopBytes {
			fail("links accumulated %d bytes, hop ledger %d", moved-baseline, f.hopBytes)
		}
	})
	ck.AddFinisher("fabric.link-occupancy", func(fail func(string, ...any)) {
		elapsed := time.Duration(f.sim.Now())
		for i, l := range f.links {
			if l.busyTime > elapsed {
				fail("link %d (%s<->%s) busy %v beyond elapsed %v",
					i, l.a.nodeName(), l.b.nodeName(), l.busyTime, elapsed)
			}
		}
	})
}

// LinkBytes reports bytes moved across the link (both directions).
func (l *Link) LinkBytes() uint64 { return l.bytesMoved }

// BusyTime reports accumulated link occupancy (hold time of the link
// resource across all transfers), for utilization probes.
func (l *Link) BusyTime() time.Duration { return l.busyTime }

// PathLinks returns the links on the route between two devices, in hop
// order. The slice is the fabric's route cache — treat it as read-only.
func (f *Fabric) PathLinks(from, to *Device) []*Link { return f.route(from, to) }
