package fabric

import (
	"testing"
	"time"

	"lynx/internal/memdev"
	"lynx/internal/sim"
)

// buildBluefieldTopo builds the Figure 2b topology: NIC ASIC and ARM CPU
// behind an internal PCIe switch, host root complex and GPU on the host
// fabric.
func buildBluefieldTopo(s *sim.Sim) (*Fabric, *Device, *Device, *Device) {
	f := New(s)
	gpuMem := memdev.NewMemory(s, "gpu0", 1<<20, true, memdev.Config{})
	nic := f.AddDevice("nic-asic", nil)
	arm := f.AddDevice("arm", nil)
	gpu := f.AddDevice("gpu0", gpuMem)
	host := f.AddDevice("host-rc", nil)
	bfSwitch := f.AddSwitch("bf-pcie-switch")
	hostSwitch := f.AddSwitch("host-pcie-switch")
	lat, bw := 900*time.Nanosecond, 62e9
	f.Connect(nic, bfSwitch, 150*time.Nanosecond, bw)
	f.Connect(arm, bfSwitch, 150*time.Nanosecond, bw)
	f.Connect(bfSwitch, hostSwitch, lat, bw)
	f.Connect(host, hostSwitch, 150*time.Nanosecond, bw)
	f.Connect(gpu, hostSwitch, 150*time.Nanosecond, bw)
	return f, nic, gpu, arm
}

func TestRouting(t *testing.T) {
	s := sim.New(sim.Config{})
	f, nic, gpu, arm := buildBluefieldTopo(s)
	if d := f.Distance(nic, gpu); d != 3 {
		t.Fatalf("nic->gpu hops = %d, want 3 (nic->bfSwitch->hostSwitch->gpu)", d)
	}
	if d := f.Distance(arm, gpu); d != 3 {
		t.Fatalf("arm->gpu hops = %d, want 3", d)
	}
	if d := f.Distance(nic, arm); d != 2 {
		t.Fatalf("nic->arm hops = %d (both behind bf switch)", d)
	}
}

func TestNoPathPanics(t *testing.T) {
	s := sim.New(sim.Config{})
	f := New(s)
	a := f.AddDevice("a", nil)
	b := f.AddDevice("b", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for disconnected nodes")
		}
	}()
	f.Distance(a, b)
}

func TestDuplicateNodePanics(t *testing.T) {
	s := sim.New(sim.Config{})
	f := New(s)
	f.AddDevice("x", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate node")
		}
	}()
	f.AddSwitch("x")
}

func TestDMAWriteMovesBytesAndTime(t *testing.T) {
	s := sim.New(sim.Config{})
	f, nic, gpu, _ := buildBluefieldTopo(s)
	rx := gpu.Mem.MustAlloc("rx", 4096)
	var elapsed time.Duration
	s.Spawn("nic", func(p *sim.Proc) {
		start := p.Now()
		f.WriteDMA(p, nic, gpu, rx, 128, []byte("ping"))
		elapsed = p.Now().Sub(start)
	})
	s.Run()
	if got := rx.ReadLocal(128, 4); string(got) != "ping" {
		t.Fatalf("payload = %q", got)
	}
	// Path nic->bfSwitch->hostSwitch->gpu: latencies 150ns+900ns+150ns plus
	// tiny serialization.
	want := f.TransferTime(nic, gpu, 4)
	if elapsed != want {
		t.Fatalf("elapsed %v, TransferTime %v", elapsed, want)
	}
	if elapsed < 1200*time.Nanosecond || elapsed > 2*time.Microsecond {
		t.Fatalf("elapsed %v outside plausible PCIe window", elapsed)
	}
}

func TestDMAReadRoundTrip(t *testing.T) {
	s := sim.New(sim.Config{})
	f, nic, gpu, _ := buildBluefieldTopo(s)
	tx := gpu.Mem.MustAlloc("tx", 4096)
	tx.WriteLocal(0, []byte("response"))
	var got []byte
	var oneWay, roundTrip time.Duration
	s.Spawn("nic", func(p *sim.Proc) {
		start := p.Now()
		f.WriteDMA(p, nic, gpu, tx, 100, []byte{1})
		oneWay = p.Now().Sub(start)
		start = p.Now()
		got = f.ReadDMA(p, nic, gpu, tx, 0, 8)
		roundTrip = p.Now().Sub(start)
	})
	s.Run()
	if string(got) != "response" {
		t.Fatalf("read %q", got)
	}
	if roundTrip <= oneWay {
		t.Fatalf("read RTT %v must exceed one-way %v", roundTrip, oneWay)
	}
}

func TestLinkContention(t *testing.T) {
	s := sim.New(sim.Config{})
	f := New(s)
	mem := memdev.NewMemory(s, "dst", 1<<20, true, memdev.Config{})
	src := f.AddDevice("src", nil)
	dst := f.AddDevice("dst", mem)
	// Slow link: 1 KB takes 8 µs at 1 Gb/s.
	f.Connect(src, dst, 0, 1e9)
	region := mem.MustAlloc("buf", 1<<16)
	var finish []sim.Time
	for i := 0; i < 4; i++ {
		s.Spawn("dma", func(p *sim.Proc) {
			f.WriteDMA(p, src, dst, region, 0, make([]byte, 1024))
			finish = append(finish, p.Now())
		})
	}
	s.Run()
	if len(finish) != 4 {
		t.Fatal("not all DMAs completed")
	}
	last := finish[len(finish)-1]
	// Serialized: 4 x 8.192 µs.
	if last < sim.Time(32*time.Microsecond) || last > sim.Time(34*time.Microsecond) {
		t.Fatalf("last DMA at %v, want ~32.8µs (serialized)", last)
	}
}

func TestFlushBarrierForcesVisibility(t *testing.T) {
	s := sim.New(sim.Config{})
	f := New(s)
	mem := memdev.NewMemory(s, "gpu", 1<<20, true, memdev.Config{Relaxed: true, MaxSkew: time.Second})
	nic := f.AddDevice("nic", nil)
	gpu := f.AddDevice("gpu", mem)
	f.Connect(nic, gpu, time.Microsecond, 62e9)
	r := mem.MustAlloc("rx", 128)
	s.Spawn("nic", func(p *sim.Proc) {
		f.WriteDMA(p, nic, gpu, r, 0, []byte{42})
		if r.PendingWrites() != 1 {
			t.Error("relaxed write should be pending")
		}
		f.FlushBarrier(p, nic, gpu, r)
		if r.Byte(0) != 42 {
			t.Error("barrier did not force visibility")
		}
	})
	s.Run()
}

func TestTransferStats(t *testing.T) {
	s := sim.New(sim.Config{})
	f := New(s)
	mem := memdev.NewMemory(s, "b", 1<<20, true, memdev.Config{})
	a := f.AddDevice("a", nil)
	b := f.AddDevice("b", mem)
	l := f.Connect(a, b, 0, 62e9)
	r := mem.MustAlloc("r", 1024)
	s.Spawn("x", func(p *sim.Proc) {
		f.WriteDMA(p, a, b, r, 0, make([]byte, 100))
		f.WriteDMA(p, a, b, r, 0, make([]byte, 200))
	})
	s.Run()
	if f.Transfers() != 2 {
		t.Fatalf("transfers = %d", f.Transfers())
	}
	if l.LinkBytes() != 300 {
		t.Fatalf("link bytes = %d", l.LinkBytes())
	}
}
