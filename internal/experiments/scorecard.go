// Scorecard: the paper-fidelity gate. scorecard.json states the evaluation's
// load-bearing shapes (orderings, ratio bands, latency floors) as
// machine-readable claims; scorecardMetrics recomputes every referenced
// metric from fresh simulations using the same named measurement helpers the
// individual experiments use; Evaluate turns the pair into pass/fail rows.
// TestScorecard and `lynxbench -exp scorecard` fail when any claim drifts
// out of its tolerance band, so a change that silently bends the reproduced
// results is caught at test time rather than by a human re-reading tables.
package experiments

import (
	_ "embed"
	"fmt"
	"time"

	"lynx/internal/check"
	"lynx/internal/model"
	"lynx/internal/workload"
)

//go:embed scorecard.json
var scorecardJSON []byte

func init() {
	register("scorecard", "paper-fidelity gate: evaluation shape claims vs fresh measurements", scorecard)
}

// loadScorecard parses the embedded claims; the document is validated at
// build time by TestScorecardDocument, so a parse failure here is a bug.
func loadScorecard() check.Scorecard {
	sc, err := check.ParseScorecard(scorecardJSON)
	if err != nil {
		panic(err)
	}
	return sc
}

// scorecardMetrics recomputes every metric scorecard.json references, fanning
// the underlying simulations out through cfg.sweep like any other experiment.
// Each metric reuses the named measurement helper of the experiment it
// summarizes, so the gate exercises the same code paths as the full tables.
func scorecardMetrics(cfg Config) map[string]float64 {
	const reqTime = 20 * time.Microsecond // Fig. 6's short-request column
	var (
		invOverhead          time.Duration
		noisyQuiet, noisyRes workload.Result
		// fig5: baseline and RDMA/RDMA mechanisms at small and MTU payloads.
		fig5Base20, fig5RDMA20, fig5Base1416, fig5RDMA1416 float64
		// fig6: req/s per (platform, mqueue count) at the short request time.
		hc1, bf1, hc240, bf240, xeon1c240, xeon6c240 float64
		// fig7: unloaded median latency per (platform, request time), 1 mqueue.
		bfShort, xeonShort, bfLong, xeonLong time.Duration
		innovaRate, bfRate, hcRate           float64
		isoQuiet, isoNoisy                   workload.Result
		barOff, barOn                        time.Duration
		dispatcherRank                       float64
		kneeGain                             float64
		fig6KneeRatio, fig9KneeRatio         float64
		replLagMs, replFloor                 float64
		replTelescope                        float64
	)
	tasks := []func(){
		func() { _, invOverhead = invocationOverhead(cfg) },
		func() { noisyQuiet = noisyHostRun(cfg, false) },
		func() { noisyRes = noisyHostRun(cfg, true) },
		func() { fig5Base20 = fig5Rate(cfg, fig5Mechanisms[0], 20) },
		func() { fig5RDMA20 = fig5Rate(cfg, fig5Mechanisms[3], 20) },
		func() { fig5Base1416 = fig5Rate(cfg, fig5Mechanisms[0], 1416) },
		func() { fig5RDMA1416 = fig5Rate(cfg, fig5Mechanisms[3], 1416) },
		func() { hc1 = fig6Throughput(cfg, platHostCentric, reqTime, 1) },
		func() { bf1 = fig6Throughput(cfg, platLynxBF, reqTime, 1) },
		func() { hc240 = fig6Throughput(cfg, platHostCentric, reqTime, 240) },
		func() { bf240 = fig6Throughput(cfg, platLynxBF, reqTime, 240) },
		func() { xeon1c240 = fig6Throughput(cfg, platLynx1Xeon, reqTime, 240) },
		func() { xeon6c240 = fig6Throughput(cfg, platLynx6Xeon, reqTime, 240) },
		func() { bfShort = fig7Latency(cfg, platLynxBF, 5*time.Microsecond, 1) },
		func() { xeonShort = fig7Latency(cfg, platLynx6Xeon, 5*time.Microsecond, 1) },
		func() { bfLong = fig7Latency(cfg, platLynxBF, 1600*time.Microsecond, 1) },
		func() { xeonLong = fig7Latency(cfg, platLynx6Xeon, 1600*time.Microsecond, 1) },
		func() { innovaRate = innovaRxRate(cfg) },
		func() { bfRate = bluefieldRxRate(cfg) },
		func() { hcRate = hostRxRate(cfg) },
		func() { isoQuiet = isolationRun(cfg, true, false) },
		func() { isoNoisy = isolationRun(cfg, true, true) },
		func() { barOff, _ = barrierRun(cfg, false) },
		func() { barOn, _ = barrierRun(cfg, true) },
		func() { dispatcherRank = attributionDispatcherRank(cfg) },
		func() { kneeGain = batchKneeGain(cfg) },
		func() { fig6KneeRatio = fig6Knee(cfg).ratio() },
		func() { fig9KneeRatio = fig9Knee(cfg).ratio() },
		func() { replLagMs, replFloor = replicationFailover(cfg) },
		func() { replTelescope = replicationTelescope(cfg) },
	}
	cfg.sweep(len(tasks), func(i int) { tasks[i]() })

	pm := defaultParams()
	hcSlowest := speedup(bf240, hc240)
	for _, v := range []float64{speedup(xeon1c240, hc240), speedup(xeon6c240, hc240)} {
		if v < hcSlowest {
			hcSlowest = v
		}
	}
	return map[string]float64{
		"invocation.overhead_us": float64(invOverhead) / float64(time.Microsecond),
		"noisy.p99_inflation":    speedup(float64(noisyRes.Hist.P99()), float64(noisyQuiet.Hist.P99())),
		"fig5.rdma_small":        speedup(fig5RDMA20, fig5Base20),
		"fig5.decline":           speedup(speedup(fig5RDMA20, fig5Base20), speedup(fig5RDMA1416, fig5Base1416)),
		"fig6.bf_1mq_short":      speedup(bf1, hc1),
		"fig6.bf_240mq_short":    speedup(bf240, hc240),
		"fig6.hc_slowest":        hcSlowest,
		"fig6.bf_over_1xeon":     speedup(bf240, xeon1c240),
		"fig6.bf_vs_6xeon_short": speedup(bf240, xeon6c240),
		"fig7.ratio_short":       speedup(float64(bfShort), float64(xeonShort)),
		"fig7.ratio_long":        speedup(float64(bfLong), float64(xeonLong)),
		"fig7.bf_floor_us":       float64(bfShort) / float64(time.Microsecond),
		"innova.vs_bf":           speedup(innovaRate, bfRate),
		"innova.vs_hc":           speedup(innovaRate, hcRate),
		"isolation.bf_inflation": speedup(float64(isoNoisy.Hist.P99()), float64(isoQuiet.Hist.P99())),
		"vma.bf_ratio":           vmaStackRatio(&pm, model.ARMCore),
		"barrier.extra_us":       float64(barOn-barOff) / float64(time.Microsecond),

		"attribution.dispatcher_rank": dispatcherRank,
		"batch.knee_gain":             kneeGain,

		"sentinel.fig6_knee_ratio": fig6KneeRatio,
		"sentinel.fig9_knee_ratio": fig9KneeRatio,

		"replication.failover_ms":   replLagMs,
		"replication.goodput_floor": replFloor,
		"replication.telescope_err": replTelescope,
	}
}

// scorecard runs the paper-fidelity gate: one row per claim with the measured
// value, the tolerated band, and the paper's reported shape. Report.Failed is
// set when any claim misses its band so callers can gate on the outcome.
func scorecard(cfg Config) *Report {
	sc := loadScorecard()
	results := sc.Evaluate(scorecardMetrics(cfg))
	r := &Report{
		ID:      "scorecard",
		Title:   "Paper-fidelity scorecard: evaluation shapes vs tolerance bands",
		Columns: []string{"metric", "value", "band", "paper", "status"},
	}
	for _, res := range results {
		value := "(missing)"
		if !res.Missing {
			value = fmt.Sprintf("%.3g", res.Value)
		}
		status := "PASS"
		if !res.Pass {
			status = "FAIL"
			r.Failed = true
		}
		r.AddRow(res.Claim.ID, res.Claim.Metric, value, res.Claim.Band(), res.Claim.Paper, status)
	}
	if fails := check.Failures(results); len(fails) > 0 {
		r.Note("%d of %d claims FAILED", len(fails), len(results))
	} else {
		r.Note("all %d claims pass", len(results))
	}
	return r
}
