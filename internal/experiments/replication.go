// Replication sweep (ROADMAP item 1): the sharded, replicated KV rack from
// internal/cluster under a write-heavy workload, across node counts and
// replication factors, plus the paper-style fault experiment — a replica
// killed mid-run via the PR 1 fault plane, measuring failover latency and the
// goodput the rack sustains through the outage. Two scorecard claims gate the
// shape: the failover verdict lands within a small number of watchdog
// periods, and acknowledged-write goodput stays above a floor despite the
// kill.
package experiments

import (
	"fmt"
	"time"

	"lynx/internal/accel"
	"lynx/internal/apps/kvstore"
	"lynx/internal/check"
	"lynx/internal/cluster"
	"lynx/internal/core"
	"lynx/internal/fault"
	"lynx/internal/model"
	"lynx/internal/mqueue"
	"lynx/internal/trace"
	"lynx/internal/workload"
)

func init() {
	register("replication",
		"replicated KV rack: goodput & p99 across nodes/RF, failover under a mid-run replica kill (cluster extension)",
		replication)
}

// replKillAt / replWindow fix the fault experiment's timeline in absolute
// virtual time: the MQ watchdog timeout (5ms) does not scale with
// Config.Scale, so the kill point and measurement window must not either —
// otherwise small-scale test runs would end before the failover verdict.
const (
	replKillAt = 8 * time.Millisecond
	replWarmup = 2 * time.Millisecond
	replWindow = 22 * time.Millisecond
)

// replPoint is one sweep point's outcome.
type replPoint struct {
	res   workload.Result
	lag   time.Duration  // failover latency (kill points only)
	stats core.ReplStats // node 0's replication counters (RF > 1 only)
}

// replicationPoint stands up a rack of the given shape, drives a closed-loop
// SET workload against node 0's owned keys (so every write exercises the
// primary's replication path), and optionally kills node 1's accelerator
// mid-run through the fault plane.
func replicationPoint(cfg Config, nodes, rf int, kill bool, window time.Duration) replPoint {
	p := model.Default()
	ccfg := cluster.Config{
		Nodes:    nodes,
		Replicas: rf,
		Seed:     cfg.Seed + 1, // the experiment-harness testbed convention
		Params:   &p,
		Faults:   cfg.Faults,
	}
	warmup := window / 5
	if kill {
		window, warmup = replWindow, replWarmup
		ccfg.Faults = fault.Config{
			Seed:   cfg.Seed,
			Stalls: []fault.Stall{{Accel: "gpu1", Queue: -1, At: replKillAt, For: time.Hour}},
		}
	}
	var ck *check.Checker
	if cfg.Invariants.Enabled() {
		ck = check.New()
		ccfg.Check = ck
	}
	rack, err := cluster.Build(ccfg)
	if err != nil {
		panic(err)
	}
	if ck != nil {
		inv := cfg.Invariants
		rack.TB.Sim.OnShutdown(func() { inv.Add(ck.Finalize()) })
	}
	keys := rack.OwnedKeys(0)
	res := workload.RunFor(rack.TB.Sim, workload.New(rack.TB.Sim, workload.Config{
		Proto: workload.UDP, Target: rack.Node(0).Addr(), Payload: 64,
		Body: func(seq uint64, buf []byte) {
			copy(buf[workload.SeqBytes:],
				kvstore.EncodeSet(keys[seq%uint64(len(keys))], 0, []byte("value-0123456789")))
		},
		Clients: 8, Duration: window, Warmup: warmup,
		// Outage-aware clients: a write parked behind a dying replica is
		// retransmitted with exponential backoff until the failover verdict
		// releases it (2+4+8ms of patience spans the watchdog period).
		Timeout: 2 * time.Millisecond, Retries: 3,
	}, rack.Clients...))
	out := replPoint{res: res}
	if repl := rack.Node(0).Repl; repl != nil {
		out.stats = repl.Stats()
		if kill {
			if slot, ok := rack.PeerSlot(0, 1); ok {
				out.lag = repl.ReplicationLag(slot, replKillAt)
			}
		}
	}
	rack.TB.Sim.Shutdown()
	return out
}

func replication(cfg Config) *Report {
	window := cfg.window(20 * time.Millisecond)
	r := &Report{
		ID:      "replication",
		Title:   "replicated KV rack: write goodput, tail latency, failover under replica kill",
		Columns: []string{"goodput", "req/s", "p99", "retries", "records", "failover"},
	}
	type shape struct {
		nodes, rf int
		kill      bool
	}
	shapes := []shape{
		{1, 1, false},
		{3, 1, false},
		{3, 2, false},
		{3, 3, false},
		{3, 3, true},
	}
	points := make([]replPoint, len(shapes))
	cfg.sweep(len(shapes), func(i int) {
		points[i] = replicationPoint(cfg, shapes[i].nodes, shapes[i].rf, shapes[i].kill, window)
	})
	for i, s := range shapes {
		pt := points[i]
		name := fmt.Sprintf("%d nodes RF=%d", s.nodes, s.rf)
		failover := "-"
		if s.kill {
			name += " + replica kill"
			failover = pt.lag.Round(100 * time.Nanosecond).String()
		}
		r.AddRow(name,
			fmt.Sprintf("%.3f", pt.res.GoodputFraction()),
			pt.res.Throughput(), pt.res.Hist.P99(), fmt.Sprint(pt.res.Retries),
			fmt.Sprint(pt.stats.Records), failover)
	}
	r.Note("writes target node 0's owned keys; RF>1 rows replicate each write to RF-1 peer accelerators over one-sided RDMA before the response releases")
	r.Note("kill row: gpu1 frozen at t=%v via the fault plane; failover = verdict latency relative to the kill", replKillAt)
	r.Note("not in the paper: the ROADMAP item 1 cluster extension (internal/cluster)")
	return r
}

// replicationFailover recomputes the kill point for the scorecard: failover
// latency in milliseconds and the acknowledged-write goodput sustained
// through the outage. Fixed windows (see replKillAt) keep the metric
// scale-independent.
func replicationFailover(cfg Config) (lagMs, goodput float64) {
	pt := replicationPoint(cfg, 3, 3, true, 0)
	return float64(pt.lag) / float64(time.Millisecond), pt.res.GoodputFraction()
}

// replicationIdentity drives the identical write workload against either the
// 1-node RF=1 rack (viaRack) or the hand-built single-server KV deployment
// the rack claims operation-for-operation parity with, and returns the
// measured report plus the runtime's event trace. The metamorphic golden test
// pins both artifacts byte-for-byte: rack == single-server, and both == the
// committed golden.
func replicationIdentity(cfg Config, viaRack bool) (*Report, []string) {
	window := cfg.window(20 * time.Millisecond)
	tr := trace.New(1 << 20)
	wcfg := workload.Config{
		Proto: workload.UDP, Payload: 64,
		Body: func(seq uint64, buf []byte) {
			copy(buf[workload.SeqBytes:],
				kvstore.EncodeSet(fmt.Sprintf("key-%03d", seq%512), 0, []byte("value-0123456789")))
		},
		Clients: 8, Duration: window, Warmup: window / 5,
		Timeout: 2 * time.Millisecond, Retries: 3,
	}
	var res workload.Result
	if viaRack {
		p := model.Default()
		rack, err := cluster.Build(cluster.Config{
			Nodes: 1, Replicas: 1, Seed: cfg.Seed + 1, Params: &p, Tracer: tr,
		})
		if err != nil {
			panic(err)
		}
		wcfg.Target = rack.Node(0).Addr()
		res = workload.RunFor(rack.TB.Sim, workload.New(rack.TB.Sim, wcfg, rack.Clients...))
		rack.TB.Sim.Shutdown()
	} else {
		e := newEnv(cfg)
		plat := e.bf.Platform(7)
		plat.Tracer = tr
		rt := core.NewRuntime(plat)
		h, err := rt.Register(e.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}, 4)
		if err != nil {
			panic(err)
		}
		svc, err := rt.AddService(core.UDP, 7000, nil, 4, h)
		if err != nil {
			panic(err)
		}
		store := kvstore.NewStore(16, 0)
		for i := 0; i < 512; i++ {
			store.Set(fmt.Sprintf("key-%03d", i), 0, []byte("value-0123456789"))
		}
		qs := h.AccelQueues()
		opCost := e.params.MemcachedOpXeon
		if err := e.gpu.LaunchPersistent(e.tb.Sim, 4, func(tb *accel.TB) {
			aq := qs[tb.Index()]
			for {
				m := aq.Recv(tb.Proc())
				if len(m.Payload) < workload.SeqBytes {
					continue
				}
				tb.Compute(opCost)
				reply := store.ServeRaw(m.Payload[workload.SeqBytes:])
				out := make([]byte, workload.SeqBytes+len(reply))
				copy(out, m.Payload[:workload.SeqBytes])
				copy(out[workload.SeqBytes:], reply)
				if aq.Send(tb.Proc(), uint16(m.Slot), out) != nil {
					return
				}
			}
		}); err != nil {
			panic(err)
		}
		if err := rt.Start(); err != nil {
			panic(err)
		}
		wcfg.Target = svc.Addr()
		res = workload.RunFor(e.tb.Sim, workload.New(e.tb.Sim, wcfg, e.clients...))
		e.tb.Sim.Shutdown()
	}
	r := &Report{
		ID:      "replication-identity",
		Title:   "RF=1 single-node rack vs single-server deployment (metamorphic identity)",
		Columns: []string{"goodput", "req/s", "p99", "retries"},
	}
	r.AddRow("RF=1",
		fmt.Sprintf("%.3f", res.GoodputFraction()),
		res.Throughput(), res.Hist.P99(), fmt.Sprint(res.Retries))
	var events []string
	for _, ev := range tr.Events() {
		events = append(events, ev.String())
	}
	return r, events
}
