// Package experiments regenerates every table and figure of the paper's
// evaluation (§3 motivation measurements and §6), one harness per
// experiment. Each harness assembles the full simulated testbed — clients,
// switch, SmartNICs, GPUs/VCA, Lynx or the host-centric baseline — drives a
// sockperf-style workload, and emits the same rows/series the paper reports,
// alongside the paper's numbers for comparison.
//
// Invoke experiments through Run/Registry (cmd/lynxbench) or the Benchmark*
// functions in the repository root.
package experiments

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strings"
	"time"

	"lynx/internal/accel"
	"lynx/internal/check"
	"lynx/internal/core"
	"lynx/internal/fault"
	"lynx/internal/model"
	"lynx/internal/mqueue"
	"lynx/internal/netstack"
	"lynx/internal/profile"
	"lynx/internal/snic"
	"lynx/internal/trace"
	"lynx/internal/workload"
)

// Config parameterizes a run.
type Config struct {
	// Seed for the deterministic simulation.
	Seed uint64
	// Scale multiplies measurement windows (1.0 = standard; tests may use
	// less, long calibration runs more).
	Scale float64
	// Faults, when enabled, applies a deterministic fault-injection plan to
	// every testbed the experiment builds (degradation experiments).
	Faults fault.Config
	// Workers bounds how many independent sweep points run concurrently,
	// each on its own Sim. 0 or 1 runs sequentially; AutoWorkers (-1) uses
	// one worker per CPU. Reports are byte-identical regardless of the
	// setting: results are collected by sweep index, and every point is
	// deterministic given (Seed, Scale).
	Workers int
	// TraceJSON, when non-empty, makes instrumented experiments (breakdown)
	// write a Chrome trace-event timeline to this path.
	TraceJSON string
	// Invariants, when non-nil, arms a runtime invariant checker on every
	// testbed the experiment builds; each sweep point finalizes its checker
	// at shutdown and merges the report here. Checked runs stay
	// bit-identical to unchecked ones.
	Invariants *check.Aggregate
	// ProfileJSON, when non-empty, makes profiling experiments (breakdown,
	// attribution) write the tail-latency attribution report to this path;
	// with Invariants also armed, an invariant violation dumps a postmortem
	// flight-recorder report to ProfileJSON + ".postmortem".
	ProfileJSON string
	// RackTraceJSON, when non-empty, makes rack experiments (replbreakdown)
	// write the rack-wide Chrome trace-event timeline — one process-track
	// block per node — to this path.
	RackTraceJSON string
	// RackMetricsJSON, when non-empty, makes rack experiments write the
	// deterministic rack telemetry rollup (per-node stats and series under
	// "<node>/" prefixes) to this path.
	RackMetricsJSON string
	// Top, when non-nil, arms span tracing plus a flight recorder on every
	// testbed the experiment builds and collects each testbed's slowest
	// completed requests here (cmd/lynxbench -top).
	Top *TopCollector
	// Batch installs a hot-path batching configuration (doorbell coalescing,
	// CQ drain budget, dispatcher quantum) on every testbed the experiment
	// builds, except testbeds whose experiment pins its own batching (the
	// -exp batch sweep compares configurations explicitly). The zero value
	// batches nothing and leaves every result byte-identical to earlier
	// releases.
	Batch model.BatchConfig
}

func (c Config) window(d time.Duration) time.Duration {
	if c.Scale <= 0 {
		return d
	}
	return time.Duration(float64(d) * c.Scale)
}

// Report is the outcome of one experiment, printable as a paper-style table.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
	// Failed marks a gating experiment (the scorecard) whose claims did not
	// all pass; cmd/lynxbench exits non-zero when any report sets it.
	Failed bool
}

// Row is one table line.
type Row struct {
	Name  string
	Cells []string
}

// AddRow appends a row, formatting each cell.
func (r *Report) AddRow(name string, cells ...any) {
	row := Row{Name: name}
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row.Cells = append(row.Cells, v)
		case float64:
			row.Cells = append(row.Cells, fmtFloat(v))
		case time.Duration:
			row.Cells = append(row.Cells, v.Round(100*time.Nanosecond).String())
		default:
			row.Cells = append(row.Cells, fmt.Sprint(v))
		}
	}
	r.Rows = append(r.Rows, row)
}

// Note appends a formatted footnote.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100000:
		return fmt.Sprintf("%.0fK", v/1000)
	case v >= 1000:
		return fmt.Sprintf("%.1fK", v/1000)
	case v >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns)+1)
	update := func(i int, s string) {
		if len(s) > widths[i] {
			widths[i] = len(s)
		}
	}
	update(0, "")
	for i, c := range r.Columns {
		update(i+1, c)
	}
	for _, row := range r.Rows {
		update(0, row.Name)
		for i, c := range row.Cells {
			if i+1 < len(widths) {
				update(i+1, c)
			}
		}
	}
	pad := func(s string, w int) string { return s + strings.Repeat(" ", w-len(s)) }
	b.WriteString(pad("", widths[0]))
	for i, c := range r.Columns {
		b.WriteString("  " + pad(c, widths[i+1]))
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		b.WriteString(pad(row.Name, widths[0]))
		for i, c := range row.Cells {
			w := 0
			if i+1 < len(widths) {
				w = widths[i+1]
			}
			if len(c) > w {
				w = len(c)
			}
			b.WriteString("  " + pad(c, w))
		}
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CSV renders the report as (experiment, row, column, value) records for
// plotting pipelines — the same encoding cmd/lynxbench emits with -csv.
func (r *Report) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	for _, row := range r.Rows {
		for i, cell := range row.Cells {
			col := ""
			if i < len(r.Columns) {
				col = r.Columns[i]
			}
			w.Write([]string{r.ID, row.Name, col, cell})
		}
	}
	w.Flush()
	return b.String()
}

// Cell returns the named row/column value (testing convenience).
func (r *Report) Cell(rowName, col string) (string, bool) {
	ci := -1
	for i, c := range r.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		return "", false
	}
	for _, row := range r.Rows {
		if row.Name == rowName && ci < len(row.Cells) {
			return row.Cells[ci], true
		}
	}
	return "", false
}

// Func runs one experiment.
type Func func(cfg Config) *Report

// entry pairs an experiment with its description for listings.
type entry struct {
	fn   Func
	desc string
}

var registry = map[string]entry{}

func register(id, desc string, fn Func) {
	registry[id] = entry{fn: fn, desc: desc}
}

// Run executes the named experiment.
func Run(id string, cfg Config) (*Report, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (see List)", id)
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	return e.fn(cfg), nil
}

// List returns all experiment IDs with descriptions, sorted.
func List() []string {
	var out []string
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of an experiment.
func Describe(id string) string { return registry[id].desc }

// ---------------------------------------------------------------------------
// Shared deployment helpers

// env is the standard testbed: one GPU server with a BlueField, two client
// hosts (the paper uses 2 client and 4 server machines).
type env struct {
	cfg     Config
	params  model.Params
	tb      *snic.Testbed
	server  *snic.Machine
	bf      *snic.BlueField
	gpu     *accel.GPU
	clients []*netstack.Host
	check   *check.Checker
	// spans/rec are the env's profiling plane, armed lazily by armSpans
	// (always when cfg.Top is set, otherwise by profiling experiments).
	spans *trace.SpanTable
	rec   *profile.Recorder
}

func newEnv(cfg Config) *env {
	p := model.Default()
	return newEnvWith(cfg, &p)
}

func newEnvWith(cfg Config, p *model.Params) *env {
	// A run-wide batching configuration (lynxbench -batch*) applies to every
	// testbed that does not pin its own; experiments sweeping batching set
	// p.Batch explicitly and win. Callers pass per-point Params copies, so
	// the write never leaks across sweep points.
	if !cfg.Batch.Unit() && p.Batch == (model.BatchConfig{}) {
		p.Batch = cfg.Batch
	}
	tb := snic.NewTestbedWith(cfg.Seed+1, p, cfg.Faults)
	var ck *check.Checker
	if cfg.Invariants.Enabled() {
		ck = check.New()
		tb.EnableInvariants(ck)
		// Each sweep point owns one env; its Shutdown finalizes the checker
		// (the EnableInvariants hook) and this hook folds the report into
		// the aggregate.
		tb.Sim.OnShutdown(func() { cfg.Invariants.Add(ck.Finalize()) })
	}
	server := tb.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", accel.K40m, false, "server1")
	e := &env{
		cfg: cfg, params: *p, tb: tb, server: server, bf: bf, gpu: gpu,
		clients: []*netstack.Host{tb.AddClient("client1"), tb.AddClient("client2")},
		check:   ck,
	}
	if cfg.Top != nil {
		e.armSpans(1 << 14)
	}
	return e
}

// armSpans arms the env's profiling plane once: a span table with its
// invariants registered, and a flight recorder attached to it. When the
// config carries a TopCollector, the testbed's shutdown folds this env's
// slowest spans into it (every experiment shuts its testbeds down).
func (e *env) armSpans(capacity int) *trace.SpanTable {
	if e.spans != nil {
		return e.spans
	}
	e.spans = trace.NewSpanTable(capacity)
	e.spans.RegisterInvariants(e.check)
	k := 16
	if e.cfg.Top != nil && e.cfg.Top.K() > k {
		k = e.cfg.Top.K()
	}
	e.rec = profile.NewRecorder(k, 64)
	e.rec.Attach(e.spans)
	if top := e.cfg.Top; top != nil {
		rec := e.rec
		e.tb.Sim.OnShutdown(func() { top.Add(rec.Top()) })
	}
	return e.spans
}

// platform names used across experiments.
const (
	platHostCentric = "Host-centric"
	platLynx1Xeon   = "Lynx 1 Xeon core"
	platLynx6Xeon   = "Lynx 6 Xeon cores"
	platLynxBF      = "Lynx BlueField"
)

// lynxPlatform builds the requested Lynx platform in this env. An armed
// profiling plane (armSpans) is threaded into the platform so server-side
// stamps land in the env's span table.
func (e *env) lynxPlatform(name string) core.Platform {
	var p core.Platform
	switch name {
	case platLynx1Xeon:
		p = e.server.HostPlatform(1, true)
	case platLynx6Xeon:
		p = e.server.HostPlatform(6, true)
	case platLynxBF:
		p = e.bf.Platform(7)
	default:
		panic("experiments: not a Lynx platform: " + name)
	}
	if p.Spans == nil {
		p.Spans = e.spans
	}
	return p
}

// echoDeployment stands up a Lynx GPU echo/delay service: nQueues server
// mqueues, one persistent threadblock per queue, each emulating request
// processing of the given duration (the paper's microbenchmark server,
// §6.2). Returns the service address.
func (e *env) echoDeployment(plat core.Platform, nQueues int, compute time.Duration, slotSize int) (netstack.Addr, *core.Runtime) {
	rt := core.NewRuntime(plat)
	mqCfg := mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: slotSize}
	h, err := rt.Register(e.gpu, mqCfg, nQueues)
	if err != nil {
		panic(err)
	}
	svc, err := rt.AddService(core.UDP, 7000, nil, nQueues, h)
	if err != nil {
		panic(err)
	}
	qs := h.AccelQueues()
	if err := e.gpu.LaunchPersistent(e.tb.Sim, nQueues, func(tb *accel.TB) {
		aq := qs[tb.Index()]
		for {
			m := aq.Recv(tb.Proc())
			if compute > 0 {
				tb.Compute(compute)
			}
			if aq.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
				return
			}
		}
	}); err != nil {
		panic(err)
	}
	if err := rt.Start(); err != nil {
		panic(err)
	}
	return svc.Addr(), rt
}

// measure drives a workload and returns the result.
func (e *env) measure(wcfg workload.Config) workload.Result {
	if wcfg.Check == nil {
		wcfg.Check = e.check
	}
	if wcfg.Spans == nil {
		wcfg.Spans = e.spans
	}
	g := workload.New(e.tb.Sim, wcfg, e.clients...)
	return workload.RunFor(e.tb.Sim, g)
}

// saturate runs a closed-loop workload sized to saturate the target and
// reports throughput.
func (e *env) saturate(target netstack.Addr, payload, clients int, window time.Duration) workload.Result {
	return e.measure(workload.Config{
		Proto: workload.UDP, Target: target, Payload: payload,
		Clients: clients, Duration: window, Warmup: window / 4,
	})
}

func defaultParams() model.Params { return model.Default() }

func speedup(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
