package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// cellValue parses the leading number from a report cell ("3.5K (2x)" ->
// 3500, "298.9µs" -> 298.9).
func cellValue(t *testing.T, r *Report, row, col string) float64 {
	t.Helper()
	cell, ok := r.Cell(row, col)
	if !ok {
		t.Fatalf("%s: missing cell (%q, %q)\n%s", r.ID, row, col, r)
	}
	s := strings.TrimSpace(cell)
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	mult := 1.0
	s = strings.TrimSuffix(s, "x")
	for _, suf := range []struct {
		s string
		m float64
	}{{"K", 1000}, {"M", 1e6}, {"ms", 1e3}, {"µs", 1}, {"ns", 1e-3}, {"s", 1e6}} {
		if strings.HasSuffix(s, suf.s) {
			mult = suf.m
			s = strings.TrimSuffix(s, suf.s)
			break
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: unparseable cell %q", r.ID, cell)
	}
	return v * mult
}

func runExp(t *testing.T, id string, scale float64) *Report {
	t.Helper()
	r, err := Run(id, Config{Seed: 1, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("no-such-experiment", Config{}); err == nil {
		t.Fatal("unknown id must error")
	}
	if len(List()) < 16 {
		t.Fatalf("only %d experiments registered", len(List()))
	}
	for _, id := range List() {
		if Describe(id) == "" {
			t.Errorf("%s has no description", id)
		}
	}
}

// The §3.2 anchor: ~30µs of management overhead on a 100µs kernel.
func TestInvocationOverheadShape(t *testing.T) {
	r := runExp(t, "sec3-invocation", 0.25)
	e2e := cellValue(t, r, "end-to-end latency", "measured")
	if e2e < 125 || e2e > 145 {
		t.Fatalf("E2E %vµs, paper ~130µs", e2e)
	}
}

// The noisy neighbor must inflate the host-centric tail by an order of
// magnitude and leave Lynx-on-BlueField untouched.
func TestIsolationShape(t *testing.T) {
	r := runExp(t, "sec62-isolation", 0.25)
	hc := cellValue(t, r, "host-centric (host CPU)", "inflation")
	bf := cellValue(t, r, "Lynx on BlueField", "inflation")
	if hc < 5 {
		t.Fatalf("host-centric inflation %vx, want ~13x", hc)
	}
	if bf > 1.2 {
		t.Fatalf("BlueField inflation %vx, want ~1x", bf)
	}
}

// Fig. 8a anchor: Lynx ~3.5K req/s > host-centric ~2.8K; p90 near 300µs.
func TestLeNetShape(t *testing.T) {
	r := runExp(t, "fig8a", 0.4)
	lynxTput := cellValue(t, r, "Lynx BlueField", "req/s")
	hcTput := cellValue(t, r, "Host-centric", "req/s")
	if lynxTput < 3200 || lynxTput > 3700 {
		t.Fatalf("Lynx LeNet %v req/s, paper 3.5K", lynxTput)
	}
	if hcTput < 2400 || hcTput > 3000 {
		t.Fatalf("host-centric LeNet %v req/s, paper 2.8K", hcTput)
	}
	if lynxTput <= hcTput {
		t.Fatal("Lynx must beat the host-centric baseline")
	}
	p90 := cellValue(t, r, "Lynx BlueField", "p90 low-load")
	if p90 < 270 || p90 > 330 {
		t.Fatalf("Lynx p90 %vµs, paper 300µs", p90)
	}
}

// Fig. 8b anchor: 12 GPUs scale linearly.
func TestScaleoutLinear(t *testing.T) {
	r := runExp(t, "fig8b", 0.3)
	t4 := cellValue(t, r, "4 local", "req/s")
	t12 := cellValue(t, r, "4 local + 8 remote", "req/s")
	ratio := t12 / t4
	if ratio < 2.8 || ratio > 3.2 {
		t.Fatalf("12/4 GPU scaling %.2fx, want ~3.0x", ratio)
	}
	if t12 < 33000 || t12 > 45000 {
		t.Fatalf("12-GPU throughput %v, paper ~40K", t12)
	}
}

// §6.2 Innova anchor: the FPGA path is an order of magnitude beyond
// BlueField, which is itself far beyond host-centric.
func TestInnovaOrdering(t *testing.T) {
	r := runExp(t, "sec62-innova", 0.3)
	innova := cellValue(t, r, "Innova FPGA (NICA AFU)", "pkt/s")
	bf := cellValue(t, r, "Lynx on BlueField", "pkt/s")
	hc := cellValue(t, r, "host-centric, 6 cores", "pkt/s")
	if innova < 8*bf {
		t.Fatalf("Innova %v vs BlueField %v: want >= 8x (paper 14.8x)", innova, bf)
	}
	if bf < 2*hc {
		t.Fatalf("BlueField %v vs host-centric %v: want >= 2x", bf, hc)
	}
	if innova < 4e6 {
		t.Fatalf("Innova %v pkt/s, paper 7.4M", innova)
	}
}

// §6.4 anchor: Lynx beats the host-centric multi-tier server severalfold.
func TestFaceVerifyShape(t *testing.T) {
	r := runExp(t, "sec64-faceverify", 0.3)
	hc := cellValue(t, r, "Host-centric", "req/s")
	bf := cellValue(t, r, "Lynx BlueField", "req/s")
	xeon := cellValue(t, r, "Lynx 6 Xeon cores", "req/s")
	if bf < 2.5*hc {
		t.Fatalf("BlueField speedup %.1fx, paper 4.4x", bf/hc)
	}
	if xeon < bf {
		t.Fatal("Xeon should beat BlueField (its TCP stack is faster, §6.4)")
	}
}

// §5.1 anchor: the barrier costs ~5µs per message.
func TestBarrierCostShape(t *testing.T) {
	r := runExp(t, "sec51-barrier", 0.25)
	extra := cellValue(t, r, "extra per message", "per-message delivery")
	if extra < 3.5 || extra > 7 {
		t.Fatalf("barrier extra %vµs, paper ~5µs", extra)
	}
}

// VCA anchor: Lynx several-fold below the bridge baseline at p90.
func TestVCAShape(t *testing.T) {
	r := runExp(t, "sec62-vca", 0.4)
	ratio := cellValue(t, r, "baseline/Lynx p90", "p90")
	if ratio < 3 || ratio > 8 {
		t.Fatalf("baseline/Lynx ratio %vx, paper 4.3x", ratio)
	}
	lynxP90 := cellValue(t, r, "Lynx (mqueue into mapped memory)", "p90")
	if lynxP90 < 25 || lynxP90 > 80 {
		t.Fatalf("Lynx p90 %vµs, paper 56µs", lynxP90)
	}
}

// Reports must be deterministic for a fixed seed.
func TestReportDeterminism(t *testing.T) {
	a := runExp(t, "fig8a", 0.25).String()
	b := runExp(t, "fig8a", 0.25).String()
	if a != b {
		t.Fatalf("nondeterministic report:\n%s\nvs\n%s", a, b)
	}
}

func TestReportFormatting(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	r.AddRow("row1", 1234.0, 150*time.Microsecond)
	r.AddRow("row2", "lit", 3.14)
	r.Note("hello %d", 7)
	s := r.String()
	for _, want := range []string{"=== x: t ===", "row1", "1.2K", "150µs", "lit", "3.14", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted report missing %q:\n%s", want, s)
		}
	}
	if _, ok := r.Cell("row1", "nope"); ok {
		t.Fatal("unknown column must miss")
	}
	if v, ok := r.Cell("row2", "a"); !ok || v != "lit" {
		t.Fatalf("cell lookup got %q", v)
	}
}

// Fig. 6's qualitative claims at one representative cell (200µs, 120 mq).
func TestFig6CellShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavyweight sweep cell")
	}
	cfg := Config{Seed: 1, Scale: 0.25}
	hc := fig6Throughput(cfg, platHostCentric, 200*time.Microsecond, 120)
	one := fig6Throughput(cfg, platLynx1Xeon, 200*time.Microsecond, 120)
	six := fig6Throughput(cfg, platLynx6Xeon, 200*time.Microsecond, 120)
	bf := fig6Throughput(cfg, platLynxBF, 200*time.Microsecond, 120)
	if !(hc < one && one < bf && bf < six) {
		t.Fatalf("ordering violated: hc=%.0f one=%.0f bf=%.0f six=%.0f", hc, one, bf, six)
	}
	// §6.2: BlueField within ~45%% of six Xeon cores.
	if ratio := bf / six; ratio < 0.45 || ratio > 0.85 {
		t.Fatalf("BF/6-core ratio %.2f, paper ~0.55", ratio)
	}
}

// Fig. 7's anchor: the BF/Xeon latency gap closes as requests grow.
func TestFig7GapCloses(t *testing.T) {
	if testing.Short() {
		t.Skip("heavyweight sweep cell")
	}
	r := runExp(t, "fig7", 0.2)
	short, _ := r.Cell("5µs", "1mq")
	long, _ := r.Cell("1.6ms", "1mq")
	shortRatio := leadingFloat(t, short)
	longRatio := leadingFloat(t, long)
	if shortRatio < 1.2 || shortRatio > 1.7 {
		t.Fatalf("short-request ratio %v, paper ~1.4x", shortRatio)
	}
	if longRatio > 1.05 {
		t.Fatalf("long-request ratio %v should be ~1.0", longRatio)
	}
}

func leadingFloat(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, 'x'); i > 0 {
		s = s[:i]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q", s)
	}
	return v
}
