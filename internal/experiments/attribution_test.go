package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lynx/internal/profile"
	"lynx/internal/trace"
)

// TestAttributionNamesDispatcher is the experiment's acceptance criterion:
// at the BlueField saturation point (Fig. 9 / §6.2 of the paper), the
// bottleneck ranking must put the dispatcher — the serialized SNIC stack
// section — first, ahead of the GPU and the wire.
func TestAttributionNamesDispatcher(t *testing.T) {
	cfg := Config{Seed: 1, Scale: 0.25}
	if rank := attributionDispatcherRank(cfg); rank != 1 {
		t.Fatalf("dispatcher ranked #%v, want #1", rank)
	}
	rep, err := Run("attribution", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"network", "snic", "transfer", "queueing", "execution", "end-to-end"} {
		if _, ok := rep.Cell(row, "wait-p99"); !ok {
			t.Errorf("report missing %q wait-p99 cell", row)
		}
	}
	var ranked bool
	for _, n := range rep.Notes {
		if strings.HasPrefix(n, "bottleneck #1 dispatcher:") {
			ranked = true
		}
	}
	if !ranked {
		t.Fatalf("no 'bottleneck #1 dispatcher' note in:\n%s", rep)
	}
}

// TestAttributionProfileJSON: the -profile-json dump of the attribution
// experiment is schema-complete and byte-identical across same-seed runs.
func TestAttributionProfileJSON(t *testing.T) {
	dir := t.TempDir()
	write := func(name string) []byte {
		path := filepath.Join(dir, name)
		if _, err := Run("attribution", Config{Seed: 1, Scale: 0.1, ProfileJSON: path}); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := write("a.json"), write("b.json")
	if !bytes.Equal(a, b) {
		t.Fatal("profile JSON differs across identical runs")
	}
	var rep profile.Report
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatalf("profile JSON invalid: %v", err)
	}
	if rep.SpansClosed == 0 || len(rep.Phases) != int(trace.NumPhases) || len(rep.Bottlenecks) == 0 {
		t.Fatalf("profile JSON incomplete: closed=%d phases=%d bottlenecks=%d",
			rep.SpansClosed, len(rep.Phases), len(rep.Bottlenecks))
	}
	if len(rep.Top) == 0 {
		t.Fatal("flight recorder empty in profile JSON")
	}
	for _, sr := range rep.Top {
		var sum int64
		for _, ph := range sr.Phases {
			if ph.WaitNs < 0 || ph.WaitNs+ph.ServiceNs != ph.TotalNs {
				t.Fatalf("span %d phase %s: wait %d + service %d != total %d",
					sr.ID, ph.Phase, ph.WaitNs, ph.ServiceNs, ph.TotalNs)
			}
			sum += ph.TotalNs
		}
		if len(sr.Phases) > 0 && sum != sr.LatencyNs {
			t.Fatalf("span %d phases sum %d != latency %d", sr.ID, sum, sr.LatencyNs)
		}
	}
}

// TestTopCollectorTable: deterministic ordering (latency desc, ID asc),
// truncation to k, and the wait/service cell rendering.
func TestTopCollectorTable(t *testing.T) {
	mkEntry := func(id uint64, lat time.Duration) profile.Entry {
		return profile.Entry{Span: trace.Span{ID: id, Status: trace.SpanDone, Queue: 0}, Latency: lat}
	}
	top := NewTopCollector(3)
	top.Add([]profile.Entry{mkEntry(4, 10*time.Microsecond), mkEntry(2, 30*time.Microsecond)})
	top.Add([]profile.Entry{mkEntry(9, 30*time.Microsecond), mkEntry(1, 50*time.Microsecond), mkEntry(7, 5*time.Microsecond)})

	rep := top.Table()
	if len(rep.Rows) != 3 {
		t.Fatalf("table has %d rows, want 3", len(rep.Rows))
	}
	wantOrder := []string{"span 1", "span 2", "span 9"} // 50µs, then the 30µs tie by ID
	for i, want := range wantOrder {
		if rep.Rows[i].Name != want {
			t.Errorf("row %d = %q, want %q", i, rep.Rows[i].Name, want)
		}
	}
	if cell, ok := rep.Cell("span 1", "latency"); !ok || cell != "50µs" {
		t.Errorf("latency cell = %q, %v", cell, ok)
	}
	// Hand-built spans carry no trajectory; their phase cells render as a
	// zero split rather than garbage.
	if cell, ok := rep.Cell("span 1", "network w/s"); !ok || cell != "0s/0s" {
		t.Errorf("zero-trajectory phase cell = %q, %v", cell, ok)
	}

	empty := NewTopCollector(2).Table()
	if len(empty.Rows) != 0 || len(empty.Notes) == 0 {
		t.Fatalf("empty collector: rows=%d notes=%d, want a no-spans note", len(empty.Rows), len(empty.Notes))
	}
}

// TestTopCollectorThroughExperiment: arming cfg.Top on a real experiment
// yields a full table of completed spans with rendered wait/service splits.
func TestTopCollectorThroughExperiment(t *testing.T) {
	top := NewTopCollector(5)
	if _, err := Run("breakdown", Config{Seed: 1, Scale: 0.1, Top: top}); err != nil {
		t.Fatal(err)
	}
	rep := top.Table()
	if len(rep.Rows) != 5 {
		t.Fatalf("table has %d rows, want 5", len(rep.Rows))
	}
	prev := time.Duration(-1)
	for _, row := range rep.Rows {
		status, _ := rep.Cell(row.Name, "status")
		if status != "done" {
			t.Errorf("%s status = %q", row.Name, status)
		}
		latCell, _ := rep.Cell(row.Name, "latency")
		lat, err := time.ParseDuration(latCell)
		if err != nil {
			t.Fatalf("%s latency %q: %v", row.Name, latCell, err)
		}
		if prev >= 0 && lat > prev {
			t.Fatalf("rows not sorted by latency: %v after %v", lat, prev)
		}
		prev = lat
		ws, _ := rep.Cell(row.Name, "execution w/s")
		if !strings.Contains(ws, "/") || ws == "-" {
			t.Errorf("%s execution w/s = %q, want a wait/service split", row.Name, ws)
		}
	}
}
