// The batch experiment is a repository extension (no paper counterpart): it
// sweeps the end-to-end batching configuration of PR 6 across mqueue counts
// on the Fig. 6 BlueField echo workload and reports where batching moves the
// dispatcher-serialization throughput knee that PR 5's profiler attributed.
package experiments

import (
	"fmt"
	"time"

	"lynx/internal/model"
	"lynx/internal/workload"
)

func init() {
	register("batch", "throughput knee shift from end-to-end batching (extension; Fig. 6 workload)", batchExp)
}

// batchMQCounts are the swept ring counts: 1 is latency-bound, 32 approaches
// the per-message serialization knee, 240 sits far past it (the Fig. 6
// configuration where host-centric loses 15.3x).
var batchMQCounts = []int{1, 32, 240}

// batchConfigs are the swept configurations, unit first (the baseline every
// speedup is relative to), then doubling quanta around DefaultBatchConfig.
var batchConfigs = []struct {
	name string
	bc   model.BatchConfig
}{
	{"unit (batch=1)", model.BatchConfig{Doorbell: 1, CQDrain: 1, Quantum: 1}},
	{"quantum-2", model.BatchConfig{Doorbell: 2, CQDrain: 4, Quantum: 2}},
	{"quantum-4", model.BatchConfig{Doorbell: 4, CQDrain: 8, Quantum: 4}},
	{"quantum-8 (default)", model.DefaultBatchConfig()},
	{"quantum-16", model.BatchConfig{Doorbell: 16, CQDrain: 32, Quantum: 16}},
}

// batchReqTime is the request service time of the sweep: the shortest Fig. 6
// kernel, where per-message SNIC overheads — the costs batching amortizes —
// dominate the service time.
const batchReqTime = 20 * time.Microsecond

// batchThroughput measures one (configuration, mqueues) cell: the Fig. 6
// BlueField echo deployment at 64B UDP, with the testbed's Params carrying
// the given batching configuration.
func batchThroughput(cfg Config, bc model.BatchConfig, nMQ int) float64 {
	p := model.Default()
	p.Batch = bc
	e := newEnvWith(cfg, &p)
	clients := nMQ * 2
	if clients > 480 {
		clients = 480
	}
	window := cfg.window(30 * time.Millisecond)
	target, _ := e.echoDeployment(e.lynxPlatform(platLynxBF), nMQ, batchReqTime, 128)
	res := e.measure(workload.Config{
		Proto: workload.UDP, Target: target, Payload: 64,
		Clients: clients, Duration: window, Warmup: window / 4,
		Timeout: 500 * time.Millisecond,
	})
	e.tb.Sim.Shutdown()
	return res.Throughput()
}

// batchKneeGain is scorecard claim #19: how far DefaultBatchConfig lifts
// BlueField echo throughput over the unit configuration at 240 mqueues —
// past the per-message serialization knee, where doorbell, completion and
// dequeue amortization all engage.
func batchKneeGain(cfg Config) float64 {
	unit := batchThroughput(cfg, model.BatchConfig{Doorbell: 1, CQDrain: 1, Quantum: 1}, 240)
	batched := batchThroughput(cfg, model.DefaultBatchConfig(), 240)
	return speedup(batched, unit)
}

func batchExp(cfg Config) *Report {
	r := &Report{
		ID:    "batch",
		Title: "Throughput knee shift from end-to-end batching (extension; BlueField GPU echo, 20us, 64B UDP)",
	}
	for _, n := range batchMQCounts {
		r.Columns = append(r.Columns, fmt.Sprintf("%dmq", n))
	}
	type point struct{ ci, ni int }
	var points []point
	for ci := range batchConfigs {
		for ni := range batchMQCounts {
			points = append(points, point{ci, ni})
		}
	}
	vals := make([]float64, len(points))
	cfg.sweep(len(points), func(i int) {
		pt := points[i]
		vals[i] = batchThroughput(cfg, batchConfigs[pt.ci].bc, batchMQCounts[pt.ni])
	})
	val := make(map[point]float64, len(points))
	for i, pt := range points {
		val[pt] = vals[i]
	}
	for ci, bcfg := range batchConfigs {
		cells := make([]any, len(batchMQCounts))
		for ni := range batchMQCounts {
			v := val[point{ci, ni}]
			base := val[point{0, ni}]
			cells[ni] = fmt.Sprintf("%s (%sx)", fmtFloat(v), fmtFloat(speedup(v, base)))
		}
		r.AddRow(bcfg.name, cells...)
	}
	r.Note("unit row is byte-identical to an unbatched runtime; speedups are vs that row's column")
	r.Note("amortized per quantum: doorbell issue, write-completion waits, dispatcher serialized section, TX sweep reads")
	r.Note("the knee moves right as the quantum grows; at 1mq batching is idle (no bursts to coalesce)")
	return r
}
