package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lynx/internal/bench"
	"lynx/internal/sentinel"
)

// Fast-mode config for sentinel measurements: short windows, sequential.
func sentinelCfg() Config {
	return Config{Seed: 1, Scale: 0.1, Workers: 1}
}

func TestSentinelExperimentPredictsBothKnees(t *testing.T) {
	rep, err := Run("sentinel", sentinelCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("a knee estimate came back invalid:\n%s", rep)
	}
	s := rep.String()
	// Both rows name the dispatcher as the pivot: the probe deployments are
	// dispatcher-bound, same as the measured knees.
	if strings.Count(s, "dispatcher") != 2 {
		t.Errorf("pivot column wrong:\n%s", s)
	}
	if !strings.Contains(s, "model: knee") {
		t.Errorf("model note missing:\n%s", s)
	}
}

func TestSentinelKneeRatiosWithinClaimBands(t *testing.T) {
	// The claim bands are calibrated for -scale >= 0.25 (the CI gate): below
	// that the closed-loop measured side is depressed by the ramp-up
	// transient and the ratio drifts high.
	cfg := Config{Seed: 1, Scale: 0.25, Workers: 1}
	outs := make([]kneeOutcome, 2)
	cfg.sweep(2, func(i int) {
		outs[i] = []func(Config) kneeOutcome{fig6Knee, fig9Knee}[i](cfg)
	})
	for i, name := range []string{"fig6", "fig9"} {
		r := outs[i].ratio()
		if r < 0.7 || r > 1.35 {
			t.Errorf("%s predicted/measured = %.2f, want within [0.7, 1.35] (est %+v, measured %.0f)",
				name, r, outs[i].est, outs[i].measured)
		}
	}
}

func TestBuildSentinelArtifactShapeAndDeterminism(t *testing.T) {
	cfg := sentinelCfg()
	a, err := BuildSentinelArtifact(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if a.Version != sentinel.Version || a.Report == nil {
		t.Fatalf("artifact incomplete: %+v", a)
	}
	if len(a.Scorecard) < 21 {
		t.Errorf("scorecard has %d claims, want >= 21", len(a.Scorecard))
	}
	if len(a.Knees) != 2 || a.Knees[0].Name != "fig6" || a.Knees[1].Name != "fig9" {
		t.Fatalf("knees = %+v", a.Knees)
	}
	if a.Fingerprint.Config != "seed=1 scale=0.1 batch=unit" {
		t.Errorf("config fingerprint = %q", a.Fingerprint.Config)
	}
	if a.Fingerprint.Scorecard == "" {
		t.Error("scorecard fingerprint empty")
	}
	if a.Bench != nil {
		t.Error("bench plane present without -bench-json")
	}

	// Byte-determinism across worker counts: the artifact is the contract the
	// CI baseline job diffs, so -parallel must not leak into it.
	par := cfg
	par.Workers = 4
	b, err := BuildSentinelArtifact(par, "")
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := a.WriteJSON(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("artifact bytes depend on the worker count")
	}

	// A same-config rebuild diffs clean against itself — the -compare gate.
	d := sentinel.Diff(a, b, sentinel.Options{})
	if !d.Clean() {
		t.Fatalf("same-config artifacts diff dirty:\n%s", d)
	}
}

func TestBuildSentinelArtifactEmbedsBenchRecording(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/cmp.json"
	c := &bench.Comparison{OldFile: "old.txt", NewFile: "new.txt"}
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	a, err := BuildSentinelArtifact(sentinelCfg(), path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bench == nil || a.Bench.OldFile != "old.txt" {
		t.Fatalf("bench recording not embedded: %+v", a.Bench)
	}
	if _, err := BuildSentinelArtifact(sentinelCfg(), dir+"/missing.json"); err == nil {
		t.Fatal("missing bench recording not reported")
	}
}
