package experiments

import (
	"testing"
	"time"
)

// Acceptance: the kvstore service under 1% datagram loss keeps goodput at
// ≥90% of the zero-loss run thanks to client retransmits.
func TestDegradationGoodput(t *testing.T) {
	cfg := Config{Seed: 1, Scale: 1}
	window := 10 * time.Millisecond
	clean := degradationPoint(cfg, true, 0, window)
	lossy := degradationPoint(cfg, true, 0.01, window)
	if clean.GoodputFraction() < 0.99 {
		t.Fatalf("zero-loss goodput %.3f — the clean run already drops", clean.GoodputFraction())
	}
	if g := lossy.GoodputFraction(); g < 0.9*clean.GoodputFraction() {
		t.Fatalf("1%% loss goodput %.3f, want ≥90%% of clean %.3f", g, clean.GoodputFraction())
	}
	if lossy.Retries == 0 {
		t.Fatal("no retransmits recorded at 1% loss")
	}
}

// The degradation experiment itself must be deterministic: same seed and
// loss rate, identical result.
func TestDegradationDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Scale: 1}
	a := degradationPoint(cfg, true, 0.01, 5*time.Millisecond)
	b := degradationPoint(cfg, true, 0.01, 5*time.Millisecond)
	if a.String() != b.String() {
		t.Fatalf("nondeterministic degradation point:\n  %s\n  %s", a, b)
	}
}
