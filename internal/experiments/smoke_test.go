package experiments

import (
	"fmt"
	"testing"
)

// TestSmokeAll runs every registered experiment at reduced scale and prints
// the reports; it guards against harness regressions.
func TestSmokeAll(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not short")
	}
	for _, id := range List() {
		if id == "fig6" || id == "fig8c" {
			continue // heavyweight sweeps, exercised by bench/lynxbench
		}
		r, err := Run(id, Config{Seed: 1, Scale: 0.25})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(r.Rows) == 0 {
			t.Fatalf("%s: empty report", id)
		}
		fmt.Println(r)
	}
}
