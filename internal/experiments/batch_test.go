package experiments

import (
	"testing"

	"lynx/internal/check"
	"lynx/internal/model"
)

// The unit batch configuration must be indistinguishable from no batch
// configuration at all, at the experiment level: same workload, same seed,
// same virtual-time throughput to the last bit.
func TestBatchUnitEquivalentToUnbatched(t *testing.T) {
	cfg := Config{Seed: 1, Scale: 0.1, Workers: 1}
	unit := batchThroughput(cfg, model.BatchConfig{Doorbell: 1, CQDrain: 1, Quantum: 1}, 32)
	zero := batchThroughput(cfg, model.BatchConfig{}, 32)
	if unit != zero {
		t.Fatalf("unit config throughput %v != zero-value config %v (must be byte-identical)", unit, zero)
	}
}

// The full -exp batch sweep must run clean under armed runtime invariants:
// batching must not break request conservation, ring bounds, or orphan
// detection at any swept configuration.
func TestBatchExperimentInvariantsClean(t *testing.T) {
	agg := check.NewAggregate()
	cfg := Config{Seed: 1, Scale: 0.1, Workers: AutoWorkers, Invariants: agg}
	r := batchExp(cfg)
	if r == nil || len(r.Rows) != len(batchConfigs) {
		t.Fatalf("batch report malformed: %+v", r)
	}
	if rep := agg.Report(); !rep.OK() {
		t.Fatalf("invariant violations during batched runs:\n%s", rep)
	}
	if agg.Runs() == 0 {
		t.Fatal("invariant checker saw no simulations")
	}
	// Batching must help where it matters: the default row's high-mq cell
	// should beat the unit row's (the scorecard pins the exact band; this
	// guards the ordering at the test scale).
	gain := batchKneeGain(cfg)
	if gain <= 1.0 {
		t.Fatalf("default batching did not improve high-mq throughput: gain %.3f", gain)
	}
}

// Deterministic: two identical batched sweeps give identical reports.
func TestBatchExperimentDeterministic(t *testing.T) {
	cfg := Config{Seed: 1, Scale: 0.1, Workers: AutoWorkers}
	a, b := batchExp(cfg).CSV(), batchExp(cfg).CSV()
	if a != b {
		t.Fatalf("batch experiment nondeterministic:\n%s\nvs\n%s", a, b)
	}
}
