package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// The testdata golden files were recorded from the PR 6 build — the last
// release before the scheduler's run-to-completion Task substrate took over
// the hot path (UDP receive, MQ-manager sweeps, the RDMA engine loop). These
// tests pin the substrate port: any drift in virtual-time behaviour shows up
// as a byte diff in the CSV report or the Chrome trace timeline. If an
// intentional semantic change lands, regenerate with:
//
//	go run ./cmd/lynxbench -exp breakdown -scale 0.25 -seed 7 -csv \
//	    -trace-json internal/experiments/testdata/pr6_breakdown_scale025_seed7_trace.json \
//	    > internal/experiments/testdata/pr6_breakdown_scale025_seed7.csv
//	go run ./cmd/lynxbench -exp batch -scale 0.25 -seed 7 -csv \
//	    > internal/experiments/testdata/pr6_batch_scale025_seed7.csv
//
// and say so in the commit message.
func TestBreakdownMatchesPR6Golden(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	rep, err := Run("breakdown", Config{Seed: 7, Scale: 0.25, Workers: 1, TraceJSON: tracePath})
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, err := os.ReadFile("testdata/pr6_breakdown_scale025_seed7.csv")
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.CSV(); got != string(wantCSV) {
		t.Errorf("breakdown CSV drifted from the PR 6 golden:\n got %d bytes\nwant %d bytes\n%s",
			len(got), len(wantCSV), firstDiff(got, string(wantCSV)))
	}
	gotTrace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	wantTrace, err := os.ReadFile("testdata/pr6_breakdown_scale025_seed7_trace.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(gotTrace) != string(wantTrace) {
		t.Errorf("breakdown trace timeline drifted from the PR 6 golden: got %d bytes, want %d\n%s",
			len(gotTrace), len(wantTrace), firstDiff(string(gotTrace), string(wantTrace)))
	}
}

func TestBatchMatchesPR6Golden(t *testing.T) {
	rep, err := Run("batch", Config{Seed: 7, Scale: 0.25, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, err := os.ReadFile("testdata/pr6_batch_scale025_seed7.csv")
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.CSV(); got != string(wantCSV) {
		t.Errorf("batch CSV drifted from the PR 6 golden:\n got %d bytes\nwant %d bytes\n%s",
			len(got), len(wantCSV), firstDiff(got, string(wantCSV)))
	}
}

// firstDiff renders the first divergent line pair for a readable failure.
func firstDiff(got, want string) string {
	g, w := splitLines(got), splitLines(want)
	n := len(g)
	if len(w) < n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		if g[i] != w[i] {
			return "first diff at line " + itoa(i+1) + ":\n got: " + g[i] + "\nwant: " + w[i]
		}
	}
	return "files differ only in length"
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
