// Replication breakdown: the rack-scope observability experiment. An RF=3
// rack is built with the per-node telemetry plane armed; a write-heavy
// workload drives node 0's owned keys so every request crosses the primary's
// quorum path, and the primary's span table decomposes each write into the
// six telescoping phases — network, SNIC, transfer, queueing, exec and the
// replication (quorum-wait) phase carved out of the SNIC hold between drain
// and forward. The report adds the per-peer straggler ranking: which
// replica's ack gated quorum, how often, and by what margin. The telescope
// error row (|phase-sum − end-to-end| / end-to-end) is also a scorecard
// claim, so a regression that un-telescopes the quorum wait fails the gate.
package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"lynx/internal/apps/kvstore"
	"lynx/internal/check"
	"lynx/internal/cluster"
	"lynx/internal/metrics"
	"lynx/internal/model"
	"lynx/internal/profile"
	"lynx/internal/trace"
	"lynx/internal/workload"
)

func init() {
	register("replbreakdown",
		"RF=3 write-path latency decomposition: quorum-wait phase, per-peer straggler ranking (cluster extension)",
		runReplBreakdown)
}

// replBreakdownOutcome bundles one instrumented RF=3 rack run.
type replBreakdownOutcome struct {
	res   workload.Result
	spans *trace.SpanTable   // node 0 (the measured primary)
	peers []profile.ReplPeer // straggler ranking, gating-count order
	prof  *profile.Report    // node 0 attribution report, replication section set
	reg   *metrics.Registry  // node 0 registry (repl/* series live here)
	rack  *cluster.Rack      // closed by the time the outcome returns
}

// replBreakdownRun stands the instrumented rack up, drives it, and tears it
// down. Every write targets a node-0-owned key, so node 0's span table sees
// complete spans (client stamps default into it via Rack.Measure) and node
// 0's replicator drives every quorum.
func replBreakdownRun(cfg Config) replBreakdownOutcome {
	p := model.Default()
	ccfg := cluster.Config{
		Nodes:     3,
		Replicas:  3,
		Seed:      cfg.Seed + 1, // the experiment-harness testbed convention
		Params:    &p,
		Faults:    cfg.Faults,
		Telemetry: &cluster.Telemetry{},
	}
	var ck *check.Checker
	if cfg.Invariants.Enabled() {
		ck = check.New()
		ccfg.Check = ck
	}
	rack, err := cluster.Build(ccfg)
	if err != nil {
		panic(err)
	}
	if ck != nil {
		inv := cfg.Invariants
		rack.TB.Sim.OnShutdown(func() { inv.Add(ck.Finalize()) })
	}
	spans := rack.Node(0).Spans
	rec := profile.NewRecorder(16, 64)
	rec.Attach(spans)
	window := cfg.window(20 * time.Millisecond)
	keys := rack.OwnedKeys(0)
	res := rack.Measure(workload.Config{
		Proto: workload.UDP, Target: rack.Node(0).Addr(), Payload: 64,
		Body: func(seq uint64, buf []byte) {
			copy(buf[workload.SeqBytes:],
				kvstore.EncodeSet(keys[seq%uint64(len(keys))], 0, []byte("value-0123456789")))
		},
		Clients: 8, Duration: window, Warmup: window / 5,
		Timeout: 2 * time.Millisecond, Retries: 3,
	})
	out := replBreakdownOutcome{res: res, spans: spans, reg: rack.Node(0).Reg, rack: rack}
	if repl := rack.Node(0).Repl; repl != nil {
		for i := 0; i < repl.PeerCount(); i++ {
			st := repl.PeerStat(i)
			out.peers = append(out.peers,
				profile.NewReplPeer(st.Name, st.Acks, st.GatedQuorums, st.AckLatency, st.GatingMargin))
		}
	}
	rack.Close()
	out.prof = profile.Build(spans, rec, out.reg)
	out.prof.SetReplication(out.peers)
	return out
}

// telescopeError is the relative error between the sum of per-phase means
// and the end-to-end mean over node 0's closed spans — ~0 by construction
// (the phases telescope span by span; only integer-mean truncation remains),
// so a nonzero value means a phase was double-counted or lost.
func telescopeError(spans *trace.SpanTable) float64 {
	e2e := float64(spans.EndToEnd().Mean())
	if e2e <= 0 {
		return 0
	}
	var sum float64
	for ph := trace.Phase(0); ph < trace.NumPhases; ph++ {
		sum += float64(spans.PhaseHist(ph).Mean())
	}
	err := (sum - e2e) / e2e
	if err < 0 {
		err = -err
	}
	return err
}

func runReplBreakdown(cfg Config) *Report {
	out := replBreakdownRun(cfg)
	rep := &Report{
		ID:      "replbreakdown",
		Title:   "Replicated write decomposition (3 nodes, RF=3, quorum over one-sided RDMA)",
		Columns: []string{"mean", "p99", "wait", "share"},
	}
	e2e := out.spans.EndToEnd()
	var sum time.Duration
	for ph := trace.Phase(0); ph < trace.NumPhases; ph++ {
		h := out.spans.PhaseHist(ph)
		sum += h.Mean()
		rep.AddRow(ph.String(), h.Mean(), h.P99(),
			out.spans.PhaseWaitHist(ph).Mean(), fmtShare(h.Mean(), e2e.Mean()))
	}
	rep.AddRow("phase-sum", sum, "", "", fmtShare(sum, e2e.Mean()))
	rep.AddRow("end-to-end", e2e.Mean(), e2e.P99(), "", "100.0%")
	rep.AddRow("telescope-err", fmt.Sprintf("%.4f%%", 100*telescopeError(out.spans)))
	var gatedTotal uint64
	for _, pr := range out.peers {
		gatedTotal += pr.GatedQuorums
	}
	for _, pr := range out.peers {
		rep.AddRow("peer "+pr.Peer,
			time.Duration(pr.AckLatency.MeanNs), time.Duration(pr.AckLatency.P99Ns),
			time.Duration(pr.GatingMargin.P99Ns),
			fmtShare(time.Duration(pr.GatedQuorums), time.Duration(gatedTotal)))
	}
	rep.Note("peer rows rank stragglers: mean/p99 of dispatch→ack latency, wait = p99 of the gating margin (quorum-completing ack minus the previous ack), share = fraction of parked quorums this peer's ack completed")
	rep.Note("replication phase = quorum hold carved out of the SNIC phase (drain→quorum); zero for writes whose quorum completed before the response drained")
	rep.Note("workload: %s (all writes target node 0's owned keys)", out.res.String())
	rep.Note("spans: begun=%d closed=%d evicted=%d", out.spans.Begun(), out.spans.Closed(), out.spans.Evicted())
	if k := profile.PredictKnee(out.reg, out.res.Throughput()); k.Valid || k.Reason != "" {
		rep.Note("primary knee: %s", k.String())
	}
	if cfg.ProfileJSON != "" {
		if err := writeJSONTo(cfg.ProfileJSON, out.prof.WriteJSON); err != nil {
			rep.Note("profile export failed: %v", err)
		} else {
			rep.Note("attribution profile (with replication section) written to %s", cfg.ProfileJSON)
		}
	}
	if cfg.RackTraceJSON != "" {
		ex := out.rack.TraceExport()
		if err := writeJSONTo(cfg.RackTraceJSON, ex.WriteJSON); err != nil {
			rep.Note("rack trace export failed: %v", err)
		} else {
			rep.Note("rack trace timeline written to %s", cfg.RackTraceJSON)
		}
	}
	if cfg.RackMetricsJSON != "" {
		if err := writeJSONTo(cfg.RackMetricsJSON, out.rack.TelemetrySnapshot().Dump); err != nil {
			rep.Note("rack metrics export failed: %v", err)
		} else {
			rep.Note("rack metrics rollup written to %s", cfg.RackMetricsJSON)
		}
	}
	return rep
}

// replicationTelescope recomputes the telescope error for the scorecard.
func replicationTelescope(cfg Config) float64 {
	out := replBreakdownRun(cfg)
	return telescopeError(out.spans)
}

// writeJSONTo creates path and streams one JSON document into it.
func writeJSONTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
