package experiments

import (
	"time"

	"lynx/internal/accel"
	"lynx/internal/core"
	"lynx/internal/hostcentric"
	"lynx/internal/metrics"
	"lynx/internal/model"
	"lynx/internal/mqueue"
	"lynx/internal/rdma"
	"lynx/internal/sim"
	"lynx/internal/workload"
)

func init() {
	register("sec3-invocation", "GPU management overhead of the host-centric pipeline (§3.2)", sec3Invocation)
	register("sec3-noisy", "noisy-neighbor p99 inflation on a host-centric GPU server (§3.2)", sec3Noisy)
	register("fig5", "mqueue transfer mechanisms vs cudaMemcpyAsync (Fig. 5)", fig5)
	register("sec511-vma", "VMA vs kernel network stack latency (§5.1.1)", sec511VMA)
	register("sec51-barrier", "RDMA-read write-barrier cost per message (§5.1)", sec51Barrier)
	register("ablate-coalesce", "ablation: metadata/data coalescing on/off (§5.1)", ablateCoalesce)
	register("ablate-dispatch", "ablation: round-robin vs sticky dispatch policies (§4.2)", ablateDispatch)
	register("ablate-poll", "ablation: accelerator polling interval sensitivity", ablatePoll)
	register("ablate-qp-share", "ablation: shared vs per-mqueue QPs (engine ops per message, §5.1)", ablateQPShare)
}

// invocationKernel is the §3.2 echo kernel duration.
const invocationKernel = 100 * time.Microsecond

// invocationOverhead runs the §3.2 echo measurement once and returns the
// median end-to-end latency and the pure GPU management overhead (end-to-end
// minus kernel time minus wire RTT). Shared by sec3-invocation and the
// scorecard.
func invocationOverhead(cfg Config) (e2e, overhead time.Duration) {
	e := newEnv(cfg)
	sv := hostcentric.New(e.tb.Sim, e.tb.Params, e.server.CPU, e.server.NetHost, e.gpu, hostcentric.Config{
		Port: 7000, Streams: 1, Cores: 1, Bypass: true, KernelTime: invocationKernel,
	})
	if err := sv.Start(); err != nil {
		panic(err)
	}
	res := e.measure(workload.Config{
		Proto: workload.UDP, Target: e.server.NetHost.Addr(7000), Payload: 8,
		Clients: 1, Duration: cfg.window(20 * time.Millisecond), Warmup: time.Millisecond,
	})
	wire := e.tb.Net.RTT(8)
	e.tb.Sim.Shutdown()
	return res.Hist.Median(), res.Hist.Median() - invocationKernel - wire
}

// sec3Invocation reproduces the §3.2 echo measurement: a 100 µs GPU kernel
// measures ~130 µs end-to-end through the host-centric pipeline — ~30 µs of
// pure GPU management overhead per request.
func sec3Invocation(cfg Config) *Report {
	const kernel = invocationKernel
	e2e, overhead := invocationOverhead(cfg)
	r := &Report{
		ID:      "sec3-invocation",
		Title:   "Host-centric GPU invocation overhead (100µs echo kernel)",
		Columns: []string{"measured", "paper"},
	}
	r.AddRow("end-to-end latency", e2e, "130µs")
	r.AddRow("kernel time", kernel, "100µs")
	r.AddRow("management overhead", overhead, "30µs")
	r.Note("overhead = 2x cudaMemcpyAsync setup + kernel launch + stream sync, all under the driver lock")
	return r
}

// noisyHostRun drives the §3.2 vector-multiply host-centric server once,
// with or without the LLC-thrashing neighbor. Shared by sec3-noisy and the
// scorecard.
func noisyHostRun(cfg Config, noisy bool) workload.Result {
	e := newEnv(Config{Seed: cfg.Seed, Scale: cfg.Scale, Invariants: cfg.Invariants})
	e.server.CPU.SetNoisy(noisy)
	sv := hostcentric.New(e.tb.Sim, e.tb.Params, e.server.CPU, e.server.NetHost, e.gpu, hostcentric.Config{
		Port: 7000, Streams: 4, Cores: 1, Bypass: true,
		KernelTime: 50 * time.Microsecond,
	})
	if err := sv.Start(); err != nil {
		panic(err)
	}
	res := e.measure(workload.Config{
		Proto: workload.UDP, Target: e.server.NetHost.Addr(7000),
		Payload: 4 * 256, // 256 integers, §3.2
		Clients: 4, Duration: cfg.window(80 * time.Millisecond), Warmup: 2 * time.Millisecond,
	})
	e.tb.Sim.Shutdown()
	return res
}

// sec3Noisy reproduces the §3.2 noisy-neighbor experiment: a vector-multiply
// GPU server co-located with an LLC-thrashing matrix product sees its p99
// latency inflate ~13x (0.13 ms -> 1.7 ms); the matmul slows by 21%.
func sec3Noisy(cfg Config) *Report {
	results := make([]workload.Result, 2)
	cfg.sweep(2, func(i int) { results[i] = noisyHostRun(cfg, i == 1) })
	quiet, noisy := results[0], results[1]
	params := newEnv(cfg).params
	r := &Report{
		ID:      "sec3-noisy",
		Title:   "Noisy neighbor vs host-centric GPU server (vector multiply)",
		Columns: []string{"p50", "p99", "paper p99"},
	}
	r.AddRow("isolated", quiet.Hist.Median(), quiet.Hist.P99(), "130µs")
	r.AddRow("with noisy neighbor", noisy.Hist.Median(), noisy.Hist.P99(), "1.7ms")
	r.AddRow("p99 inflation", "", fmtFloat(speedup(float64(noisy.Hist.P99()), float64(quiet.Hist.P99())))+"x", "13x")
	r.AddRow("matmul slowdown", "", fmtFloat(params.NeighborSlowdown*100)+"%", "21%")
	return r
}

// fig5 reproduces Figure 5: delivery rate of a single-mqueue GPU echo
// server under four data/control transfer mechanism combinations, as speedup
// over the all-cudaMemcpyAsync baseline, for payloads of 20..1416 bytes.
// Per message the manager moves the payload toward the GPU with the data
// mechanism, rings the notification register with the control mechanism, a
// single GPU threadblock consumes and echoes, and the manager collects the
// response through the same mechanisms.
// fig5Mech selects the data/control transfer mechanism of one Figure 5 row.
type fig5Mech struct {
	name        string
	dataRDMA    bool
	controlRDMA bool // coalesced with the data write
	controlGdr  bool
}

// fig5Mechanisms are Figure 5's four rows; index 0 is the all-cudaMemcpyAsync
// baseline the speedups are computed against.
var fig5Mechanisms = []fig5Mech{
	{name: "data:cudaMemcpy control:cudaMemcpy"},
	{name: "data:cudaMemcpy control:gdrcopy", controlGdr: true},
	{name: "data:RDMA control:gdrcopy", dataRDMA: true, controlGdr: true},
	{name: "data:RDMA control:RDMA", dataRDMA: true, controlRDMA: true},
}

// fig5Rate measures one Figure 5 cell: delivered echoes per second through a
// single mqueue with the given transfer mechanism and payload. Shared by
// fig5 and the scorecard.
func fig5Rate(cfg Config, m fig5Mech, payload int) float64 {
	e := newEnv(cfg)
	p := &e.params
	region := e.gpu.Device().Mem.MustAlloc("fig5", 1<<20)
	qp := e.server.RDMA.CreateQP(e.gpu.Device(), rdma.QPConfig{Kind: rdma.RC})
	st := e.gpu.NewStream()
	// The echo threadblock: consume (3 local accesses), produce.
	toGPU := sim.NewChan[[]byte](e.tb.Sim, 0)
	fromGPU := sim.NewChan[[]byte](e.tb.Sim, 0)
	e.gpu.LaunchPersistent(e.tb.Sim, 1, func(tb *accel.TB) {
		for {
			msg := toGPU.Get(tb.Proc())
			tb.Proc().Sleep(4 * p.GPULocalAccess)
			fromGPU.Put(tb.Proc(), msg)
		}
	})
	gdrOp := func(pr *sim.Proc) { pr.Sleep(p.GdrcopySetup + p.PCIeLatency) }
	done := 0
	e.tb.Sim.Spawn("manager", func(pr *sim.Proc) {
		buf := make([]byte, payload)
		for {
			// Deliver payload + notification.
			switch {
			case m.dataRDMA && m.controlRDMA:
				qp.Write(pr, region, 0, buf) // coalesced single write
			case m.dataRDMA:
				qp.Write(pr, region, 0, buf)
				gdrOp(pr) // doorbell via mapped BAR store
			default:
				st.MemcpyH2D(pr, payload)
				if m.controlGdr {
					gdrOp(pr)
				} else {
					st.MemcpyH2D(pr, 4)
				}
			}
			toGPU.Put(pr, buf)
			resp := fromGPU.Get(pr)
			// Collect the response with the real poll protocol:
			// header-counter read, payload read, consumed-counter
			// write-back.
			if m.dataRDMA {
				qp.Read(pr, region, 0, 8)
				qp.Read(pr, region, 0, len(resp))
				qp.Write(pr, region, 0, []byte{0, 0, 0, 0, 0, 0, 0, 0})
			} else {
				st.MemcpyD2H(pr, len(resp))
				if m.controlGdr {
					gdrOp(pr)
				} else {
					st.MemcpyD2H(pr, 4)
				}
			}
			done++
		}
	})
	window := cfg.window(8 * time.Millisecond)
	e.tb.Sim.RunUntil(sim.Time(window))
	e.tb.Sim.Shutdown()
	return float64(done) / window.Seconds()
}

func fig5(cfg Config) *Report {
	payloads := []int{20, 116, 516, 1016, 1416}
	mechanisms := fig5Mechanisms
	r := &Report{
		ID:      "fig5",
		Title:   "mqueue transfer mechanisms, speedup vs cudaMemcpyAsync (Fig. 5)",
		Columns: []string{"20B", "116B", "516B", "1016B", "1416B"},
	}
	// All (mechanism, payload) cells are independent testbeds; fan out and
	// assemble rows by index (the baseline mechanism doubles as the base for
	// the speedup column).
	nCells := len(mechanisms) * len(payloads)
	vals := make([]float64, nCells)
	cfg.sweep(nCells, func(i int) {
		vals[i] = fig5Rate(cfg, mechanisms[i/len(payloads)], payloads[i%len(payloads)])
	})
	base := vals[:len(payloads)]
	for mi, m := range mechanisms {
		cells := make([]any, len(payloads))
		for i := range payloads {
			cells[i] = fmtFloat(speedup(vals[mi*len(payloads)+i], base[i])) + "x"
		}
		r.AddRow(m.name, cells...)
	}
	r.Note("paper: RDMA wins everywhere, ~5x at small payloads; cudaMemcpyAsync pays a 7-8µs setup per op")
	return r
}

// vmaStackRatio is the kernel/VMA per-packet UDP stack cost ratio for the
// given core kind (§5.1.1). Shared by sec511-vma and the scorecard.
func vmaStackRatio(pm *model.Params, kind model.CPUKind) float64 {
	return float64(pm.UDPCost(kind, false)) / float64(pm.UDPCost(kind, true))
}

// sec511VMA compares kernel vs VMA (user-level) network stacks: §5.1.1
// reports 4x lower UDP processing latency on BlueField and 2x on the host.
func sec511VMA(cfg Config) *Report {
	run := func(useBF, bypass bool) time.Duration {
		e := newEnv(cfg)
		var plat core.Platform
		if useBF {
			plat = e.bf.Platform(7)
		} else {
			plat = e.server.HostPlatform(6, bypass)
		}
		plat.Bypass = bypass
		target, _ := e.echoDeployment(plat, 1, 0, 128)
		res := e.measure(workload.Config{
			Proto: workload.UDP, Target: target, Payload: 20,
			Clients: 1, Duration: cfg.window(10 * time.Millisecond), Warmup: time.Millisecond,
		})
		e.tb.Sim.Shutdown()
		return res.Hist.Median()
	}
	type point struct{ bf, bypass bool }
	points := []point{{true, false}, {true, true}, {false, false}, {false, true}}
	meds := make([]time.Duration, len(points))
	cfg.sweep(len(points), func(i int) { meds[i] = run(points[i].bf, points[i].bypass) })
	bfKernel, bfVMA, hostKernel, hostVMA := meds[0], meds[1], meds[2], meds[3]
	// Isolate the stack processing component (strip mqueue + wire parts
	// common to both) using per-message stack costs from the model.
	e := newEnv(cfg)
	r := &Report{
		ID:      "sec511-vma",
		Title:   "VMA user-level stack vs kernel stack (§5.1.1)",
		Columns: []string{"kernel", "VMA", "stack-cost ratio", "paper"},
	}
	pm := e.params
	bfRatio := vmaStackRatio(&pm, model.ARMCore)
	hostRatio := vmaStackRatio(&pm, model.XeonCore)
	r.AddRow("BlueField E2E", bfKernel, bfVMA, fmtFloat(bfRatio)+"x", "4x")
	r.AddRow("Host E2E", hostKernel, hostVMA, fmtFloat(hostRatio)+"x", "2x")
	r.Note("E2E latency includes mqueue and wire time; the ratio column isolates per-packet stack processing")
	return r
}

// barrierRun measures per-message delivery latency and rate through one
// mqueue, with or without the §5.1 RDMA-read write barrier. Shared by
// sec51-barrier and the scorecard.
func barrierRun(cfg Config, barrier bool) (time.Duration, float64) {
	e := newEnv(cfg)
	region := e.gpu.Device().Mem.MustAlloc("bar", 1<<20)
	qp := e.server.RDMA.CreateQP(e.gpu.Device(), rdma.QPConfig{Kind: rdma.RC})
	mqCfg := mqueue.Config{Slots: 64, SlotSize: 128, Barrier: barrier, NoCoalesce: barrier}
	q, _ := mqueue.New(region, 0, mqCfg, qp)
	aq, _ := mqueue.Attach(region, 0, mqCfg, e.gpu.Profile())
	e.gpu.LaunchPersistent(e.tb.Sim, 1, func(tb *accel.TB) {
		for {
			aq.Recv(tb.Proc())
		}
	})
	hist := metrics.NewHistogram()
	e.tb.Sim.Spawn("pusher", func(p *sim.Proc) {
		for {
			start := p.Now()
			if _, err := q.Push(p, make([]byte, 64), 0); err != nil {
				p.Sleep(2 * time.Microsecond)
				continue
			}
			hist.Record(p.Now().Sub(start))
		}
	})
	window := cfg.window(5 * time.Millisecond)
	e.tb.Sim.RunUntil(sim.Time(window))
	e.tb.Sim.Shutdown()
	return hist.Median(), float64(hist.Count()) / window.Seconds()
}

// sec51Barrier measures the cost of the §5.1 consistency workaround: with
// the RDMA-read write barrier each message needs three transactions instead
// of one coalesced write, ~5 µs extra.
func sec51Barrier(cfg Config) *Report {
	var (
		off, on         time.Duration
		offRate, onRate float64
	)
	cfg.sweep(2, func(i int) {
		if i == 0 {
			off, offRate = barrierRun(cfg, false)
		} else {
			on, onRate = barrierRun(cfg, true)
		}
	})
	r := &Report{
		ID:      "sec51-barrier",
		Title:   "GPU write-barrier workaround cost (§5.1)",
		Columns: []string{"per-message delivery", "deliveries/s"},
	}
	r.AddRow("coalesced (barrier off)", off, offRate)
	r.AddRow("barrier on (3 transactions)", on, onRate)
	r.AddRow("extra per message", on-off, "")
	r.Note("paper measures ~5µs extra per message; the evaluation (like ours) runs with the barrier disabled")
	return r
}

// ablateCoalesce quantifies metadata/data coalescing: RDMA ops per delivered
// message with and without it.
func ablateCoalesce(cfg Config) *Report {
	run := func(coalesce bool) float64 {
		e := newEnv(cfg)
		region := e.gpu.Device().Mem.MustAlloc("co", 1<<20)
		qp := e.server.RDMA.CreateQP(e.gpu.Device(), rdma.QPConfig{Kind: rdma.RC})
		mqCfg := mqueue.Config{Slots: 64, SlotSize: 128, NoCoalesce: !coalesce}
		q, _ := mqueue.New(region, 0, mqCfg, qp)
		aq, _ := mqueue.Attach(region, 0, mqCfg, e.gpu.Profile())
		e.gpu.LaunchPersistent(e.tb.Sim, 1, func(tb *accel.TB) {
			for {
				aq.Recv(tb.Proc())
			}
		})
		delivered := 0
		e.tb.Sim.Spawn("pusher", func(p *sim.Proc) {
			for {
				if _, err := q.Push(p, make([]byte, 64), 0); err != nil {
					p.Sleep(time.Microsecond)
					continue
				}
				delivered++
			}
		})
		e.tb.Sim.RunUntil(sim.Time(cfg.window(5 * time.Millisecond)))
		ops := float64(e.server.RDMA.Ops())
		e.tb.Sim.Shutdown()
		return ops / float64(delivered)
	}
	r := &Report{
		ID:      "ablate-coalesce",
		Title:   "Metadata/data coalescing ablation (§5.1)",
		Columns: []string{"RDMA ops per message"},
	}
	vals := make([]float64, 2)
	cfg.sweep(2, func(i int) { vals[i] = run(i == 0) })
	r.AddRow("coalesced", vals[0])
	r.AddRow("separate metadata", vals[1])
	return r
}

// ablateDispatch compares round-robin vs sticky dispatch with skewed
// clients: sticky keeps per-client order but can hotspot one queue.
func ablateDispatch(cfg Config) *Report {
	run := func(mk func(h *core.AccelHandle) core.Policy) workload.Result {
		e := newEnv(cfg)
		rt := core.NewRuntime(e.bf.Platform(7))
		h, _ := rt.Register(e.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}, 8)
		svc, _ := rt.AddService(core.UDP, 7000, mk(h), 8, h)
		qs := h.AccelQueues()
		e.gpu.LaunchPersistent(e.tb.Sim, 8, func(tb *accel.TB) {
			aq := qs[tb.Index()]
			for {
				m := aq.Recv(tb.Proc())
				tb.Compute(100 * time.Microsecond)
				if aq.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
					return
				}
			}
		})
		rt.Start()
		// Two clients only: sticky hashing cannot use more than 2 queues.
		res := e.measure(workload.Config{
			Proto: workload.UDP, Target: svc.Addr(), Payload: 64,
			Clients: 16, Duration: cfg.window(20 * time.Millisecond), Warmup: time.Millisecond,
		})
		e.tb.Sim.Shutdown()
		return res
	}
	policies := []func(h *core.AccelHandle) core.Policy{
		func(h *core.AccelHandle) core.Policy { return &core.RoundRobin{} },
		func(h *core.AccelHandle) core.Policy { return core.StickyHash{} },
		func(h *core.AccelHandle) core.Policy { return core.NewLeastLoaded(h) },
	}
	results := make([]workload.Result, len(policies))
	cfg.sweep(len(policies), func(i int) { results[i] = run(policies[i]) })
	rr, sticky, least := results[0], results[1], results[2]
	r := &Report{
		ID:      "ablate-dispatch",
		Title:   "Dispatch policy ablation: round-robin vs sticky vs least-loaded (§4.2)",
		Columns: []string{"throughput", "p99"},
	}
	r.AddRow("round-robin", rr.Throughput(), rr.Hist.P99())
	r.AddRow("sticky-hash", sticky.Throughput(), sticky.Hist.P99())
	r.AddRow("least-loaded", least.Throughput(), least.Hist.P99())
	r.Note("16 client flows from 2 hosts over 8 queues: sticky hashing concentrates load; round-robin and")
	r.Note("least-loaded balance it, least-loaded additionally absorbing service-time variance")
	return r
}

// ablatePoll sweeps the accelerator polling interval.
func ablatePoll(cfg Config) *Report {
	r := &Report{
		ID:      "ablate-poll",
		Title:   "Accelerator polling interval sensitivity",
		Columns: []string{"median latency", "throughput"},
	}
	intervals := []time.Duration{200 * time.Nanosecond, 600 * time.Nanosecond, 2 * time.Microsecond, 10 * time.Microsecond}
	results := make([]workload.Result, len(intervals))
	cfg.sweep(len(intervals), func(i int) {
		p := model.Default()
		p.GPUPollInterval = intervals[i]
		e := newEnvWith(cfg, &p)
		target, _ := e.echoDeployment(e.bf.Platform(7), 4, 20*time.Microsecond, 128)
		results[i] = e.measure(workload.Config{
			Proto: workload.UDP, Target: target, Payload: 64,
			Clients: 8, Duration: cfg.window(10 * time.Millisecond), Warmup: time.Millisecond,
		})
		e.tb.Sim.Shutdown()
	})
	for i, interval := range intervals {
		r.AddRow(interval.String(), results[i].Hist.Median(), results[i].Throughput())
	}
	return r
}

// ablateQPShare verifies the one-RC-QP-per-accelerator design: header
// polling of n queues costs one batched read on the shared QP, vs n reads
// with per-queue QPs.
func ablateQPShare(cfg Config) *Report {
	const n = 64
	e := newEnv(cfg)
	region := e.gpu.Device().Mem.MustAlloc("qps", 1<<22)
	sharedQP := e.server.RDMA.CreateQP(e.gpu.Device(), rdma.QPConfig{Kind: rdma.RC})
	mqCfg := mqueue.Config{Slots: 8, SlotSize: 64}
	group, err := mqueue.NewGroup(region, 0, mqCfg, n, sharedQP)
	if err != nil {
		panic(err)
	}
	var sharedOps, perQueueOps uint64
	e.tb.Sim.Spawn("x", func(p *sim.Proc) {
		before := e.server.RDMA.Ops()
		group.Refresh(p)
		sharedOps = e.server.RDMA.Ops() - before
		// Per-queue polling: one header read per queue.
		before = e.server.RDMA.Ops()
		for i := 0; i < n; i++ {
			group.Queue(i).Refresh(p)
		}
		perQueueOps = e.server.RDMA.Ops() - before
	})
	e.tb.Sim.RunUntil(sim.Time(time.Second))
	e.tb.Sim.Shutdown()
	r := &Report{
		ID:      "ablate-qp-share",
		Title:   "Shared QP + batched header polling vs per-queue polling (§5.1)",
		Columns: []string{"RDMA ops per sweep"},
	}
	r.AddRow("shared QP, batched headers", float64(sharedOps))
	r.AddRow("per-queue header reads", float64(perQueueOps))
	return r
}
