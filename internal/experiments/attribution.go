// The attribution experiment: drive the Lynx BlueField deployment to its
// dispatcher saturation point (the knee of the paper's Fig. 9 throughput
// curve) and attribute the tail. Output is the wait/service decomposition of
// every pipeline phase plus the ranked bottleneck report; the scorecard
// asserts the dispatcher comes out on top, matching the paper's finding that
// the BlueField's wimpy cores — not the GPU — limit Lynx throughput.
package experiments

import (
	"time"

	"lynx/internal/metrics"
	"lynx/internal/profile"
	"lynx/internal/trace"
	"lynx/internal/workload"
)

func init() {
	register("attribution", "tail-latency attribution: wait/service split and bottleneck ranking at BlueField saturation", runAttribution)
}

// attributionOutcome bundles one attribution run.
type attributionOutcome struct {
	res    workload.Result
	spans  *trace.SpanTable
	prof   *profile.Profile
	report *profile.Report
}

// attributionRun saturates the BlueField dispatcher: 32 server mqueues keep
// the GPU far from its limit (32 blocks x 20us echo = 1.6M req/s of
// accelerator capacity), while 256 closed-loop clients push well past the
// wimpy SNIC cores' dispatch capacity. At that operating point the waits
// pile up in front of the dispatcher, which the ranking must surface.
func attributionRun(cfg Config) attributionOutcome {
	e := newEnv(cfg)
	var out attributionOutcome
	out.spans = e.armSpans(1 << 15)
	plat := e.lynxPlatform(platLynxBF)
	addr, rt := e.echoDeployment(plat, 32, 20*time.Microsecond, 256)
	reg := metrics.NewRegistry()
	rt.StartMonitor(50*time.Microsecond, reg)
	e.tb.RegisterStats(reg)
	out.prof = profile.Assemble(out.spans, e.rec, reg)
	if cfg.ProfileJSON != "" {
		out.prof.ArmPostmortem(e.check, cfg.ProfileJSON+".postmortem")
	}
	window := e.cfg.window(20 * time.Millisecond)
	out.res = e.measure(workload.Config{
		Proto: workload.UDP, Target: addr, Payload: 128,
		Clients: 256, Duration: window, Warmup: window / 4,
		Timeout: 500 * time.Millisecond,
	})
	e.tb.Sim.Shutdown()
	out.report = out.prof.Report()
	return out
}

func runAttribution(cfg Config) *Report {
	out := attributionRun(cfg)
	rep := &Report{
		ID:      "attribution",
		Title:   "Tail-latency attribution (Lynx BlueField at dispatcher saturation, 32 mqueues, 20us GPU echo)",
		Columns: []string{"wait-mean", "wait-p99", "svc-mean", "svc-p99", "wait-share"},
	}
	for p := trace.PhaseNetwork; p < trace.NumPhases; p++ {
		w := out.spans.PhaseWaitHist(p)
		s := out.spans.PhaseServiceHist(p)
		ph := out.spans.PhaseHist(p)
		rep.AddRow(p.String(), w.Mean(), w.P99(), s.Mean(), s.P99(),
			fmtShare(w.Sum(), ph.Sum()))
	}
	e2e := out.spans.EndToEnd()
	rep.AddRow("end-to-end", "", e2e.P99(), "", "", "")
	for i, b := range out.report.Bottlenecks {
		rep.Note("bottleneck #%d %s", i+1, b)
	}
	rep.Note("workload: %s", out.res.String())
	rep.Note("flight recorder: %d spans observed, top-%d retained",
		out.prof.Recorder().Observed(), out.prof.Recorder().TopK())
	if cfg.ProfileJSON != "" {
		if err := out.prof.WriteFile(cfg.ProfileJSON); err != nil {
			rep.Note("profile export failed: %v", err)
		} else {
			rep.Note("attribution profile written to %s", cfg.ProfileJSON)
		}
	}
	return rep
}

// attributionDispatcherRank is the scorecard probe: the 1-based rank of the
// dispatcher in the bottleneck report at the Fig. 9 saturation point (0 when
// absent entirely).
func attributionDispatcherRank(cfg Config) float64 {
	out := attributionRun(cfg)
	return float64(out.report.Rank("dispatcher"))
}
