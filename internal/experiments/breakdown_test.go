package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestBreakdownPhasesSumToEndToEnd is the experiment's acceptance criterion:
// the per-stage latency decomposition must account for the whole end-to-end
// latency (within the report's 100ns cell rounding, far inside 5%).
func TestBreakdownPhasesSumToEndToEnd(t *testing.T) {
	rep, err := Run("breakdown", Config{Seed: 1, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	cell := func(row string) time.Duration {
		s, ok := rep.Cell(row, "mean")
		if !ok {
			t.Fatalf("report has no %q mean cell", row)
		}
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("cell %q = %q: %v", row, s, err)
		}
		return d
	}
	var sum time.Duration
	for _, row := range []string{"network", "snic", "transfer", "queueing", "execution"} {
		ph := cell(row)
		if ph <= 0 {
			t.Errorf("phase %s mean = %v, want > 0", row, ph)
		}
		sum += ph
	}
	e2e := cell("end-to-end")
	if e2e <= 0 {
		t.Fatalf("end-to-end mean = %v", e2e)
	}
	if gap := math.Abs(float64(sum-e2e)) / float64(e2e); gap > 0.05 {
		t.Fatalf("phase sum %v vs end-to-end %v: gap %.1f%% exceeds 5%%", sum, e2e, 100*gap)
	}
}

// TestBreakdownTraceJSON validates the exported timeline: schema-valid
// Chrome trace events, and byte-identical across runs with the same seed.
func TestBreakdownTraceJSON(t *testing.T) {
	dir := t.TempDir()
	write := func(name string) []byte {
		path := filepath.Join(dir, name)
		if _, err := Run("breakdown", Config{Seed: 1, Scale: 0.1, TraceJSON: path}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := write("a.json")
	b := write("b.json")
	if !bytes.Equal(a, b) {
		t.Fatal("trace JSON differs across identical runs (non-deterministic export)")
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	counters := 0
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %v missing %q", ev, field)
			}
		}
		if ev["ph"] == "C" {
			counters++
		}
	}
	if counters == 0 {
		t.Fatal("no sampler counter events in the trace (monitor not wired)")
	}
}

// TestBreakdownDisabledIsFree verifies the zero-overhead contract at the
// system level: the same deployment with the observability plane disabled
// produces the exact same workload result (virtual-time behaviour unchanged).
func TestBreakdownDisabledIsFree(t *testing.T) {
	cfg := Config{Seed: 1, Scale: 0.1}
	on := BreakdownRun(cfg, true)
	off := BreakdownRun(cfg, false)
	if on.Received != off.Received || on.Sent != off.Sent || on.Lost != off.Lost {
		t.Fatalf("tracing changed the run: traced %v untraced %v", on, off)
	}
	if on.Hist.Mean() != off.Hist.Mean() || on.Hist.P99() != off.Hist.P99() {
		t.Fatalf("tracing changed latency: traced mean=%v p99=%v, untraced mean=%v p99=%v",
			on.Hist.Mean(), on.Hist.P99(), off.Hist.Mean(), off.Hist.P99())
	}
}
