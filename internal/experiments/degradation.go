package experiments

import (
	"fmt"
	"time"

	"lynx/internal/accel"
	"lynx/internal/apps/kvstore"
	"lynx/internal/core"
	"lynx/internal/fault"
	"lynx/internal/mqueue"
	"lynx/internal/workload"
)

func init() {
	register("degradation",
		"graceful degradation: goodput & p99 vs datagram loss, Lynx vs host-centric (fault-injection extension)",
		degradation)
}

// degradationPoint runs the kvstore service on one platform under the given
// datagram loss rate, with loss-aware clients (bounded same-sequence
// retransmit), and reports the measured result.
//
// The Lynx deployment serves GETs from persistent GPU threadblocks through
// SNIC-managed mqueues; the host-centric baseline is the memcached-style
// deployment on the Xeon cores. Both see the same client behavior and the
// same fault plan shape, so the sweep isolates how each architecture's
// request path degrades as the network loses datagrams.
func degradationPoint(cfg Config, lynxSide bool, loss float64, window time.Duration) workload.Result {
	cfg.Faults = fault.Config{Seed: cfg.Seed, DropRate: loss}
	e := newEnv(cfg)
	wcfg := workload.Config{
		Proto: workload.UDP, Payload: 64,
		Body: func(seq uint64, buf []byte) {
			copy(buf[workload.SeqBytes:], kvstore.EncodeGet(fmt.Sprintf("key-%03d", seq%512)))
		},
		Clients: 8, Duration: window, Warmup: window / 5,
		// Loss-aware clients: retransmit the same sequence up to 3 times
		// with exponential backoff before declaring it lost.
		Timeout: time.Millisecond, Retries: 3,
	}
	if lynxSide {
		const nq = 4
		rt := core.NewRuntime(e.bf.Platform(7))
		h, err := rt.Register(e.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}, nq)
		if err != nil {
			panic(err)
		}
		svc, err := rt.AddService(core.UDP, 7000, nil, nq, h)
		if err != nil {
			panic(err)
		}
		store := kvstore.NewStore(16, 0)
		for i := 0; i < 512; i++ {
			store.Set(fmt.Sprintf("key-%03d", i), 0, []byte("value-0123456789"))
		}
		qs := h.AccelQueues()
		opCost := e.params.MemcachedOpXeon
		if err := e.gpu.LaunchPersistent(e.tb.Sim, nq, func(tb *accel.TB) {
			aq := qs[tb.Index()]
			for {
				m := aq.Recv(tb.Proc())
				if len(m.Payload) < workload.SeqBytes {
					continue
				}
				tb.Compute(opCost)
				reply := store.ServeRaw(m.Payload[workload.SeqBytes:])
				out := make([]byte, workload.SeqBytes+len(reply))
				copy(out, m.Payload[:workload.SeqBytes])
				copy(out[workload.SeqBytes:], reply)
				if aq.Send(tb.Proc(), uint16(m.Slot), out) != nil {
					return
				}
			}
		}); err != nil {
			panic(err)
		}
		if err := rt.Start(); err != nil {
			panic(err)
		}
		wcfg.Target = svc.Addr()
	} else {
		store := memcachedInstances(e.tb, e.server.NetHost, e.server.CPU, &e.params, 11211, 6, false, 0, nil)
		for i := 0; i < 512; i++ {
			store.Set(fmt.Sprintf("key-%03d", i), 0, []byte("value-0123456789"))
		}
		wcfg.Target = e.server.NetHost.Addr(11211)
	}
	res := e.measure(wcfg)
	e.tb.Sim.Shutdown()
	return res
}

func degradation(cfg Config) *Report {
	window := cfg.window(20 * time.Millisecond)
	losses := []float64{0, 0.001, 0.01, 0.05}
	r := &Report{
		ID:      "degradation",
		Title:   "goodput & tail latency vs datagram loss (retransmitting clients)",
		Columns: []string{"goodput", "req/s", "p99", "retries"},
	}
	type point struct {
		lynxSide bool
		loss     float64
	}
	var points []point
	for _, lynxSide := range []bool{true, false} {
		for _, loss := range losses {
			points = append(points, point{lynxSide, loss})
		}
	}
	results := make([]workload.Result, len(points))
	cfg.sweep(len(points), func(i int) {
		results[i] = degradationPoint(cfg, points[i].lynxSide, points[i].loss, window)
	})
	for i, pt := range points {
		name := platHostCentric
		if pt.lynxSide {
			name = platLynxBF
		}
		res := results[i]
		r.AddRow(fmt.Sprintf("%s @ %.1f%% loss", name, pt.loss*100),
			fmt.Sprintf("%.3f", res.GoodputFraction()),
			res.Throughput(), res.Hist.P99(), fmt.Sprint(res.Retries))
	}
	r.Note("goodput = responses/requests with ≤3 same-seq retransmits per request (1ms base timeout, exponential backoff)")
	r.Note("not in the paper: a robustness extension exercising the fault plane (internal/fault)")
	return r
}
