// The breakdown experiment: a paper-style latency decomposition. Request
// spans (internal/trace) split each measured request's end-to-end latency
// into network, SNIC, PCIe/RDMA transfer, queueing and accelerator-execution
// phases; the phases telescope, so their means sum to the end-to-end mean
// exactly (the experiment's own consistency check, asserted in tests). With
// Config.TraceJSON set it also writes the full Chrome trace-event timeline.
package experiments

import (
	"fmt"
	"os"
	"time"

	"lynx/internal/metrics"
	"lynx/internal/profile"
	"lynx/internal/trace"
	"lynx/internal/workload"
)

func init() {
	register("breakdown", "per-request latency decomposition across the Lynx pipeline", runBreakdown)
}

// breakdownOutcome bundles everything one instrumented run produces.
type breakdownOutcome struct {
	res    workload.Result
	spans  *trace.SpanTable
	events *trace.Tracer
	reg    *metrics.Registry
	prof   *profile.Profile
}

// BreakdownRun drives the breakdown deployment once — the BlueField GPU echo
// service, with the observability plane either fully enabled or fully
// disabled — and returns the workload result. Exported so the root-level
// overhead benchmark can compare traced and untraced runs of the exact same
// deployment.
func BreakdownRun(cfg Config, traced bool) workload.Result {
	return breakdownRun(cfg, traced).res
}

func breakdownRun(cfg Config, traced bool) breakdownOutcome {
	e := newEnv(cfg)
	var out breakdownOutcome
	if traced {
		out.spans = e.armSpans(1 << 14)
		out.events = trace.New(4096)
	}
	plat := e.lynxPlatform(platLynxBF)
	plat.Tracer = out.events
	addr, rt := e.echoDeployment(plat, 8, 20*time.Microsecond, 256)
	if traced {
		out.reg = metrics.NewRegistry()
		rt.StartMonitor(50*time.Microsecond, out.reg)
		e.tb.RegisterStats(out.reg)
		out.prof = profile.Assemble(out.spans, e.rec, out.reg)
		if cfg.ProfileJSON != "" {
			out.prof.ArmPostmortem(e.check, cfg.ProfileJSON+".postmortem")
		}
	}
	window := e.cfg.window(20 * time.Millisecond)
	out.res = e.measure(workload.Config{
		Proto: workload.UDP, Target: addr, Payload: 128,
		Clients: 16, Duration: window, Warmup: window / 4,
		Spans: out.spans,
	})
	e.tb.Sim.Shutdown()
	return out
}

func runBreakdown(cfg Config) *Report {
	out := breakdownRun(cfg, true)
	rep := &Report{
		ID:      "breakdown",
		Title:   "Request latency decomposition (Lynx BlueField, 8 mqueues, 20us GPU echo)",
		Columns: []string{"mean", "p99", "share"},
	}
	e2e := out.spans.EndToEnd()
	var sum time.Duration
	for ph := trace.Phase(0); ph < trace.NumPhases; ph++ {
		h := out.spans.PhaseHist(ph)
		sum += h.Mean()
		rep.AddRow(ph.String(), h.Mean(), h.P99(), fmtShare(h.Mean(), e2e.Mean()))
	}
	rep.AddRow("phase-sum", sum, "", fmtShare(sum, e2e.Mean()))
	rep.AddRow("end-to-end", e2e.Mean(), e2e.P99(), "100.0%")
	rep.Note("workload: %s", out.res.String())
	rep.Note("spans: begun=%d closed=%d evicted=%d (complete spans only enter the breakdown)",
		out.spans.Begun(), out.spans.Closed(), out.spans.Evicted())
	if cfg.TraceJSON != "" {
		ex := trace.Export{Spans: out.spans, Events: out.events, Series: out.reg.SeriesList()}
		if err := WriteTrace(cfg.TraceJSON, ex); err != nil {
			rep.Note("trace export failed: %v", err)
		} else {
			rep.Note("trace timeline written to %s", cfg.TraceJSON)
		}
	}
	if cfg.ProfileJSON != "" {
		if err := out.prof.WriteFile(cfg.ProfileJSON); err != nil {
			rep.Note("profile export failed: %v", err)
		} else {
			rep.Note("attribution profile written to %s", cfg.ProfileJSON)
		}
	}
	return rep
}

func fmtShare(part, whole time.Duration) string {
	if whole <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

// WriteTrace writes a Chrome trace-event export to path.
func WriteTrace(path string, ex trace.Export) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ex.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
