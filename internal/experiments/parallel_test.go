package experiments

import (
	"testing"
)

// TestParallelSweepDeterminism is the parallelism guard: one sweep experiment
// run sequentially and with a worker pool must render byte-identical reports
// and CSV. Every sweep point builds its own Sim, so the only way the outputs
// can differ is a point result leaking across workers or rows being
// assembled in completion order — exactly the bugs this test pins down.
func TestParallelSweepDeterminism(t *testing.T) {
	base := Config{Seed: 7, Scale: 0.05}
	for _, id := range []string{"fig6", "degradation"} {
		seqCfg := base
		seqCfg.Workers = 1
		parCfg := base
		parCfg.Workers = 4

		seq, err := Run(id, seqCfg)
		if err != nil {
			t.Fatalf("sequential %s: %v", id, err)
		}
		par, err := Run(id, parCfg)
		if err != nil {
			t.Fatalf("parallel %s: %v", id, err)
		}
		if seq.String() != par.String() {
			t.Errorf("%s: parallel report differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
				id, seq, par)
		}
		if seq.CSV() != par.CSV() {
			t.Errorf("%s: parallel CSV differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
				id, seq.CSV(), par.CSV())
		}
	}
}

// TestAutoWorkersResolves exercises the AutoWorkers sentinel end to end on a
// small sweep (it must behave like any other worker count, only sized by
// GOMAXPROCS).
func TestAutoWorkersResolves(t *testing.T) {
	cfg := Config{Seed: 3, Scale: 0.05, Workers: AutoWorkers}
	if got := cfg.workers(); got < 1 {
		t.Fatalf("AutoWorkers resolved to %d", got)
	}
	if _, err := Run("sec51-barrier", cfg); err != nil {
		t.Fatalf("run with AutoWorkers: %v", err)
	}
}

// TestSweepPanicPropagates ensures a panicking sweep point surfaces on the
// caller goroutine (parallel errors must not vanish into workers).
func TestSweepPanicPropagates(t *testing.T) {
	cfg := Config{Workers: 4}
	defer func() {
		if recover() == nil {
			t.Fatal("expected the sweep point panic to propagate")
		}
	}()
	cfg.sweep(8, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}
