// The sentinel experiment and baseline builder: predict each deployment's
// saturation knee from a single low-load probe (utilization slope +
// queue-growth model, internal/profile), validate the prediction against the
// measured closed-loop knee, and freeze a full attribution artifact
// (internal/sentinel) that later releases diff against with `lynxbench
// -compare`.
package experiments

import (
	"fmt"
	"time"

	"lynx/internal/bench"
	"lynx/internal/metrics"
	"lynx/internal/model"
	"lynx/internal/profile"
	"lynx/internal/sentinel"
	"lynx/internal/workload"
)

func init() {
	register("sentinel", "regression sentinel: saturation knees predicted from low-load probes vs measured", runSentinel)
}

// kneeProbeRate is the offered load of every knee probe: roughly a third of
// the BlueField dispatcher's measured knee, low enough that queues stay flat
// and the r/u extrapolation has room to be wrong in either direction.
const kneeProbeRate = 100e3

// kneeOutcome pairs a low-load extrapolation with the measured knee it
// predicts.
type kneeOutcome struct {
	est      profile.KneeEstimate
	measured float64
}

// ratio is predicted/measured — the scorecard metric (0 when the estimate is
// invalid, which always misses the claim band).
func (k kneeOutcome) ratio() float64 {
	if !k.est.Valid || k.measured == 0 {
		return 0
	}
	return k.est.PredictedPerSec / k.measured
}

// kneeProbe runs one open-loop low-load probe of a BlueField echo deployment
// and extrapolates its saturation point from the monitor's utilization
// series. One simulation, a fraction of the knee's load — the whole point is
// predicting the knee without sweeping up to it.
func kneeProbe(cfg Config, nQueues int, compute time.Duration, slotSize, payload int, rate float64) profile.KneeEstimate {
	e := newEnv(cfg)
	addr, rt := e.echoDeployment(e.lynxPlatform(platLynxBF), nQueues, compute, slotSize)
	reg := metrics.NewRegistry()
	rt.StartMonitor(50*time.Microsecond, reg)
	window := e.cfg.window(20 * time.Millisecond)
	e.measure(workload.Config{
		Proto: workload.UDP, Target: addr, Payload: payload,
		Clients: 16, RatePerSec: rate, Duration: window, Warmup: window / 4,
		Timeout: 500 * time.Millisecond,
	})
	e.tb.Sim.Shutdown()
	return profile.PredictKnee(reg, rate)
}

// fig6Knee predicts and measures the Fig. 6 BlueField knee: 240 mqueues,
// short (20µs) requests, 64B messages. The measured side is the same
// closed-loop cell fig6 and the scorecard report.
func fig6Knee(cfg Config) kneeOutcome {
	const reqTime = 20 * time.Microsecond
	return kneeOutcome{
		est:      kneeProbe(cfg, 240, reqTime, 128, 64, kneeProbeRate),
		measured: fig6Throughput(cfg, platLynxBF, reqTime, 240),
	}
}

// fig9Knee predicts and measures the attribution deployment's knee (the
// paper's Fig. 9 operating point): 32 mqueues, 20µs echo, 128B messages,
// saturated by 256 closed-loop clients.
func fig9Knee(cfg Config) kneeOutcome {
	return kneeOutcome{
		est:      kneeProbe(cfg, 32, 20*time.Microsecond, 256, 128, kneeProbeRate),
		measured: attributionRun(cfg).res.Throughput(),
	}
}

func runSentinel(cfg Config) *Report {
	outs := make([]kneeOutcome, 2)
	names := []string{"fig6 (BF, 240mq, 20µs)", "fig9 (BF, 32mq, 20µs)"}
	runs := []func(Config) kneeOutcome{fig6Knee, fig9Knee}
	cfg.sweep(len(runs), func(i int) { outs[i] = runs[i](cfg) })

	r := &Report{
		ID:      "sentinel",
		Title:   "Regression sentinel: knee predicted from one low-load probe vs measured saturation",
		Columns: []string{"probe req/s", "pivot", "util", "predicted req/s", "measured req/s", "ratio"},
	}
	for i, out := range outs {
		if !out.est.Valid {
			r.AddRow(names[i], fmtFloat(out.est.ProbePerSec), out.est.Reason, "", "", fmtFloat(out.measured), "")
			r.Failed = true
			continue
		}
		r.AddRow(names[i], fmtFloat(out.est.ProbePerSec), out.est.Resource,
			fmt.Sprintf("%.2f", out.est.Utilization), fmtFloat(out.est.PredictedPerSec),
			fmtFloat(out.measured), fmt.Sprintf("%.2f", out.ratio()))
	}
	r.Note("model: knee ≈ 0.85 · probe_rate / bottleneck_utilization (queueing blows up past ~85%% busy); a growing probe-time queue caps the estimate at the probe rate")
	r.Note("the scorecard gates sentinel.fig6_knee_ratio and sentinel.fig9_knee_ratio on these ratios")
	return r
}

// batchDesc renders a batch configuration for the artifact fingerprint.
func batchDesc(b model.BatchConfig) string {
	if b.Unit() {
		return "unit"
	}
	return fmt.Sprintf("db%d-cq%d-q%d-cw%s", b.EffDoorbell(), b.EffCQDrain(), b.EffQuantum(), b.CoalesceWindow)
}

// BuildSentinelArtifact measures one full sentinel baseline: the attribution
// report at the Fig. 9 saturation point, every scorecard claim, and both knee
// predictions, stamped with the run's fingerprint. benchJSON, when non-empty,
// names a cmd/benchcmp -json recording to embed (make bench-compare writes
// bench/benchcmp.json). This is `lynxbench -baseline` and the measuring side
// of `lynxbench -compare`.
func BuildSentinelArtifact(cfg Config, benchJSON string) (*sentinel.Artifact, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	sc := loadScorecard()
	var (
		att    attributionOutcome
		met    map[string]float64
		k6, k9 kneeOutcome
		rbo    replBreakdownOutcome
	)
	// The measurement groups are independent simulations; scorecardMetrics
	// fans its own out through cfg.sweep internally, and nested pools are
	// harmless (every point owns its Sim, results collect by index).
	tasks := []func(){
		func() { att = attributionRun(cfg) },
		func() { k6 = fig6Knee(cfg) },
		func() { k9 = fig9Knee(cfg) },
		func() { met = scorecardMetrics(cfg) },
		func() { rbo = replBreakdownRun(cfg) },
	}
	cfg.sweep(len(tasks), func(i int) { tasks[i]() })

	a := &sentinel.Artifact{
		Version: sentinel.Version,
		Fingerprint: sentinel.Fingerprint{
			Config:    fmt.Sprintf("seed=%d scale=%g batch=%s", cfg.Seed, cfg.Scale, batchDesc(cfg.Batch)),
			Scorecard: sc.Fingerprint(),
		},
		Report: att.report,
	}
	for _, res := range sc.Evaluate(met) {
		a.Scorecard = append(a.Scorecard, sentinel.ClaimRow{
			ID: res.Claim.ID, Metric: res.Claim.Metric,
			Value: res.Value, Band: res.Claim.Band(), Pass: res.Pass,
		})
	}
	for _, k := range []struct {
		name string
		out  kneeOutcome
	}{{"fig6", k6}, {"fig9", k9}} {
		a.Knees = append(a.Knees, sentinel.Knee{
			Name: k.name, Estimate: k.out.est,
			MeasuredPerSec: k.out.measured, Ratio: k.out.ratio(),
		})
	}
	a.Rack = rackSections(rbo)
	if benchJSON != "" {
		cmp, err := bench.ReadComparison(benchJSON)
		if err != nil {
			return nil, err
		}
		a.Bench = cmp
	}
	return a, nil
}

// rackSections freezes each node of the replication rack's telemetry plane
// into artifact rows, node-index order. Means are computed over the retained
// samples of each monitor series; everything is deterministic per seed.
func rackSections(out replBreakdownOutcome) []sentinel.RackNode {
	if out.rack == nil {
		return nil
	}
	rows := make([]sentinel.RackNode, 0, out.rack.Nodes())
	for i := 0; i < out.rack.Nodes(); i++ {
		n := out.rack.Node(i)
		row := sentinel.RackNode{Node: n.Name}
		if n.Spans != nil {
			row.SpansBegun, row.SpansClosed = n.Spans.Begun(), n.Spans.Closed()
		}
		if n.Tracer != nil {
			row.Events = len(n.Tracer.Events())
		}
		if n.Reg != nil {
			for _, s := range n.Reg.SeriesList() {
				pts := s.Points()
				if len(pts) == 0 {
					continue
				}
				var sum float64
				for _, p := range pts {
					sum += p.V
				}
				if row.SeriesMean == nil {
					row.SeriesMean = make(map[string]float64)
				}
				row.SeriesMean[s.Name()] = sum / float64(len(pts))
			}
		}
		rows = append(rows, row)
	}
	return rows
}
