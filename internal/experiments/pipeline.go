package experiments

import (
	"time"

	"lynx/internal/accel"
	"lynx/internal/apps/lenet"
	"lynx/internal/core"
	"lynx/internal/hostcentric"
	"lynx/internal/metrics"
	"lynx/internal/mqueue"
	"lynx/internal/netstack"
	"lynx/internal/sim"
	"lynx/internal/workload"
)

func lenetNew() *lenet.Network { return lenet.New(42) }

type netAddr = netstack.Addr

func init() {
	register("ext-pipeline", "extension: multi-accelerator composition vs client bouncing (§1 future work)", extPipeline)
}

// extPipeline evaluates the composition extension: a two-stage job
// (preprocess on GPU0, infer on GPU1) served either as one Lynx pipeline
// (SNIC relays between the accelerators) or as two separate services the
// client must call back-to-back. The pipeline saves a full network round
// trip and the client-side stack work per request.
func extPipeline(cfg Config) *Report {
	window := cfg.window(20 * time.Millisecond)
	const stageWork = 10 * time.Microsecond
	const nq = 4

	launchStage := func(e *env, gpu *accel.GPU, h *core.AccelHandle, lo, n int) {
		qs := h.AccelQueues()
		if err := gpu.LaunchPersistent(e.tb.Sim, n, func(tb *accel.TB) {
			aq := qs[lo+tb.Index()]
			for {
				m := aq.Recv(tb.Proc())
				tb.Compute(stageWork)
				if aq.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
					return
				}
			}
		}); err != nil {
			panic(err)
		}
	}

	runPipelined := func() workload.Result {
		e := newEnv(cfg)
		gpu2 := e.server.AddGPU("gpu1", accel.K40m, false, "server1")
		rt := core.NewRuntime(e.bf.Platform(7))
		mqCfg := mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}
		h1, _ := rt.Register(e.gpu, mqCfg, nq)
		h2, _ := rt.Register(gpu2, mqCfg, nq)
		pl, err := rt.AddPipeline(core.UDP, 7000, nil, nq, h1, h2)
		if err != nil {
			panic(err)
		}
		launchStage(e, e.gpu, h1, 0, nq)
		launchStage(e, gpu2, h2, 0, nq)
		rt.Start()
		res := e.measure(workload.Config{
			Proto: workload.UDP, Target: pl.Addr(), Payload: 64,
			Clients: 2 * nq, Duration: window, Warmup: window / 5,
		})
		e.tb.Sim.Shutdown()
		return res
	}

	runBounced := func() workload.Result {
		e := newEnv(cfg)
		gpu2 := e.server.AddGPU("gpu1", accel.K40m, false, "server1")
		rt := core.NewRuntime(e.bf.Platform(7))
		mqCfg := mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}
		h1, _ := rt.Register(e.gpu, mqCfg, nq)
		h2, _ := rt.Register(gpu2, mqCfg, nq)
		svc1, _ := rt.AddService(core.UDP, 7000, nil, nq, h1)
		svc2, _ := rt.AddService(core.UDP, 7001, nil, nq, h2)
		launchStage(e, e.gpu, h1, 0, nq)
		launchStage(e, gpu2, h2, 0, nq)
		rt.Start()
		// Closed-loop clients performing both calls per logical request;
		// the second call reuses the first's response payload.
		done := uint64(0)
		hist := metrics.NewHistogram()
		warmupEnd := e.tb.Sim.Now().Add(window / 5)
		end := e.tb.Sim.Now().Add(window/5 + window)
		const clients = 2 * nq
		for c := 0; c < clients; c++ {
			c := c
			sock := e.clients[c%2].MustUDPBind(uint16(24000 + c))
			e.tb.Sim.Spawn("bounce-client", func(p *sim.Proc) {
				seq := uint64(c) << 32
				for p.Now() < end {
					start := p.Now()
					seq++
					buf := make([]byte, 64)
					workload.PutSeq(buf, seq)
					sock.SendTo(svc1.Addr(), buf)
					dg, ok, _ := sock.RecvTimeout(p, 10*time.Millisecond)
					if !ok {
						continue
					}
					sock.SendTo(svc2.Addr(), dg.Payload)
					if _, ok, _ := sock.RecvTimeout(p, 10*time.Millisecond); !ok {
						continue
					}
					if start >= warmupEnd {
						hist.Record(p.Now().Sub(start))
						done++
					}
				}
			})
		}
		e.tb.Sim.RunUntil(end.Add(window / 10))
		e.tb.Sim.Shutdown()
		return workload.Result{Received: done, Hist: hist, Window: window}
	}

	results := make([]workload.Result, 2)
	cfg.sweep(2, func(i int) {
		if i == 0 {
			results[i] = runPipelined()
		} else {
			results[i] = runBounced()
		}
	})
	pipelined, bounced := results[0], results[1]

	r := &Report{
		ID:      "ext-pipeline",
		Title:   "Accelerator composition: SNIC-relayed pipeline vs client bouncing (extension)",
		Columns: []string{"req/s", "p50 latency"},
	}
	r.AddRow("Lynx pipeline (GPU0 -> GPU1)", pipelined.Throughput(), pipelined.Hist.Median())
	r.AddRow("two services, client bounces", bounced.Throughput(), bounced.Hist.Median())
	r.AddRow("pipeline advantage", speedup(pipelined.Throughput(), bounced.Throughput()), "")
	r.Note("the paper names multi-accelerator composition as Lynx's next step (§1); the SNIC-side relay")
	r.Note("saves one full wire round trip plus client and SNIC stack work per composed request")
	return r
}

func init() {
	register("ext-latency-curve", "extension: latency vs offered load, Lynx vs host-centric", extLatencyCurve)
}

// extLatencyCurve sweeps open-loop offered load against the LeNet service
// and reports p50/p99 latency — the classic hockey-stick plot. It shows the
// operational consequence of Fig. 8a: Lynx's knee sits ~25% further right
// than the host-centric baseline's.
func extLatencyCurve(cfg Config) *Report {
	window := cfg.window(50 * time.Millisecond)
	net := lenetNew()
	rates := []float64{1000, 2000, 2500, 2800, 3200, 3400}
	measure := func(lynxMode bool, rate float64) workload.Result {
		e := newEnv(cfg)
		var target netAddr
		if lynxMode {
			rt := core.NewRuntime(e.bf.Platform(7))
			target = deployLynxLeNet(e, rt, e.gpu, net, 7000, core.UDP)
			rt.Start()
		} else {
			sv := hostcentric.New(e.tb.Sim, e.tb.Params, e.server.CPU, e.server.NetHost, e.gpu, hostcentric.Config{
				Port: 7000, Streams: 8, Cores: 1, Bypass: true,
				KernelTime: e.params.LeNetServiceK40, Exclusive: true, Launches: lenetLaunches,
				Handler: lenetHandler(net),
			})
			if err := sv.Start(); err != nil {
				panic(err)
			}
			target = e.server.NetHost.Addr(7000)
		}
		res := e.measure(workload.Config{
			Proto: workload.UDP, Target: target, Payload: lenetPayload,
			Body: lenetBody(net), Clients: 4, RatePerSec: rate, Poisson: true,
			Duration: window, Warmup: window / 5,
		})
		e.tb.Sim.Shutdown()
		return res
	}
	r := &Report{
		ID:      "ext-latency-curve",
		Title:   "LeNet latency vs offered load (extension; open loop)",
		Columns: []string{"Lynx p50", "Lynx p99", "host-centric p50", "host-centric p99"},
	}
	// (mode, rate) points are independent testbeds sharing only the
	// read-only LeNet weights; fan out and assemble rows by index.
	results := make([]workload.Result, 2*len(rates))
	cfg.sweep(len(results), func(i int) {
		results[i] = measure(i%2 == 0, rates[i/2])
	})
	for i, rate := range rates {
		ly, hc := results[2*i], results[2*i+1]
		hcP50, hcP99 := "saturated", "saturated"
		if hc.Received > uint64(0.9*rate*window.Seconds()) {
			hcP50, hcP99 = hc.Hist.Median().String(), hc.Hist.P99().String()
		}
		r.AddRow(fmtFloat(rate)+" req/s", ly.Hist.Median(), ly.Hist.P99(), hcP50, hcP99)
	}
	r.Note("with Poisson arrivals the host-centric knee sits ~2.5K req/s and Lynx's ~3.2K; Lynx dominates at every load")
	return r
}
