package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// AutoWorkers is the Config.Workers value that selects one worker per
// available CPU (GOMAXPROCS).
const AutoWorkers = -1

// workers resolves Config.Workers to a concrete worker count.
func (c Config) workers() int {
	switch {
	case c.Workers == AutoWorkers:
		return runtime.GOMAXPROCS(0)
	case c.Workers > 1:
		return c.Workers
	default:
		return 1
	}
}

// sweep runs point(i) for every i in [0, n), fanning the calls out across
// cfg.Workers goroutines (sequentially when Workers <= 1). Sweep points must
// be independent: each builds its own Sim, so runs share nothing but
// read-only inputs. Callers store results by index and assemble rows after
// sweep returns, which keeps reports byte-identical to a sequential run.
//
// A panic in any point is re-raised on the caller's goroutine once all
// workers have stopped, matching sequential error behavior.
func (c Config) sweep(n int, point func(i int)) {
	w := c.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			point(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, &sweepPanic{val: r})
						}
					}()
					point(i)
				}()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.(*sweepPanic).val)
	}
}

// sweepPanic boxes a recovered panic value (atomic.Value needs a consistent
// concrete type).
type sweepPanic struct{ val any }
