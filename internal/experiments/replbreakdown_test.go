package experiments

import (
	"testing"

	"lynx/internal/check"
	"lynx/internal/trace"
)

// TestReplBreakdownTelescope: the RF=3 decomposition's quorum-wait phase is
// real (nonzero on a healthy rack) and telescopes — phase means sum to the
// end-to-end mean within the scorecard band — with invariants green.
func TestReplBreakdownTelescope(t *testing.T) {
	inv := check.NewAggregate()
	out := replBreakdownRun(Config{Seed: 1, Scale: 0.25, Invariants: inv})
	if out.spans.Closed() == 0 {
		t.Fatal("no closed spans")
	}
	if err := telescopeError(out.spans); err > 0.05 {
		t.Errorf("telescope error %.4f exceeds 0.05", err)
	}
	if out.spans.PhaseHist(trace.PhaseReplication).Mean() <= 0 {
		t.Error("replication phase mean is zero on an RF=3 rack")
	}
	if len(out.peers) != 2 {
		t.Fatalf("expected 2 peer stats, got %d", len(out.peers))
	}
	if rep := inv.Report(); !rep.OK() {
		t.Errorf("%s", rep)
	}
	// The profile report carries the straggler section, gating-count order.
	if got := len(out.prof.Replication); got != 2 {
		t.Fatalf("profile replication section has %d peers", got)
	}
	if out.prof.Replication[0].GatedQuorums < out.prof.Replication[1].GatedQuorums {
		t.Error("straggler ranking not sorted by gated quorums")
	}
	// The bottleneck taxonomy learned the replication resource.
	if out.prof.Rank("replication") == 0 {
		t.Error("replication resource missing from the bottleneck ranking")
	}
}

// TestReplBreakdownDeterminism: same seed, same report bytes.
func TestReplBreakdownDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Scale: 0.25}
	r1, err := Run("replbreakdown", cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run("replbreakdown", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CSV() != r2.CSV() {
		t.Errorf("replbreakdown reports diverged:\n%s\nvs\n%s", r1.CSV(), r2.CSV())
	}
}
