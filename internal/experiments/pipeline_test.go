package experiments

import (
	"fmt"
	"testing"
)

func TestExtPipeline(t *testing.T) {
	r := runExp(t, "ext-pipeline", 0.5)
	fmt.Println(r)
	adv := cellValue(t, r, "pipeline advantage", "req/s")
	if adv <= 1.0 {
		t.Fatalf("pipeline advantage %vx, must beat client bouncing", adv)
	}
}

func TestExtIntegratedNIC(t *testing.T) {
	r := runExp(t, "ext-integrated-nic", 0.4)
	adv := cellValue(t, r, "Lynx advantage", "req/s")
	if adv < 1.5 {
		t.Fatalf("Lynx advantage %vx over the self-hosted stack, want >= 1.5x", adv)
	}
}

func TestExtLatencyCurve(t *testing.T) {
	r := runExp(t, "ext-latency-curve", 0.3)
	if len(r.Rows) < 5 {
		t.Fatalf("latency curve has %d points", len(r.Rows))
	}
	// At low load Lynx must sit near the Fig. 8a floor and below the
	// host-centric baseline.
	ly := cellValue(t, r, "1.0K req/s", "Lynx p50")
	hc := cellValue(t, r, "1.0K req/s", "host-centric p50")
	if ly >= hc {
		t.Fatalf("Lynx p50 %vµs must beat host-centric %vµs", ly, hc)
	}
}

func TestExtInnovaDuplex(t *testing.T) {
	r := runExp(t, "ext-innova-duplex", 0.3)
	adv := cellValue(t, r, "specialization advantage", "echo/s")
	if adv < 2 {
		t.Fatalf("FPGA advantage %vx over BlueField, want >= 2x", adv)
	}
}
