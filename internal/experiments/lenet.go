package experiments

import (
	"fmt"
	"time"

	"lynx/internal/accel"
	"lynx/internal/apps/lenet"
	"lynx/internal/core"
	"lynx/internal/hostcentric"
	"lynx/internal/mqueue"
	"lynx/internal/netstack"
	"lynx/internal/snic"
	"lynx/internal/workload"
)

func init() {
	register("fig8a", "LeNet inference service: throughput and latency (Fig. 8a)", fig8a)
	register("fig8a-tcp", "LeNet inference service over TCP (§6.3)", fig8aTCP)
	register("fig8b", "LeNet scaleout to remote GPUs (Fig. 8b)", fig8b)
	register("fig8c", "multi-GPU scalability projection (Fig. 8c)", fig8c)
}

// lenetLaunches approximates the TVM-generated LeNet as a chain of per-layer
// kernels (conv1, pool1, conv2, pool2, fc1, fc2, fc3 + epilogue).
const lenetLaunches = 8

// lenetRequest builds a request carrying the sequence header plus a rendered
// digit image.
func lenetBody(net *lenet.Network) func(seq uint64, buf []byte) {
	return func(seq uint64, buf []byte) {
		img := lenet.RenderDigit(int(seq%10), int(seq%5)-2, int(seq/5%5)-2)
		copy(buf[workload.SeqBytes:], img)
	}
}

const lenetPayload = workload.SeqBytes + lenet.InputBytes

// lenetHandler runs the real network and produces [seq][class] responses.
func lenetHandler(net *lenet.Network) func(req []byte) []byte {
	return func(req []byte) []byte {
		resp := make([]byte, workload.SeqBytes+1)
		copy(resp, req[:workload.SeqBytes])
		if len(req) >= lenetPayload {
			if cls, err := net.Classify(req[workload.SeqBytes:lenetPayload]); err == nil {
				resp[workload.SeqBytes] = byte(cls)
			}
		}
		return resp
	}
}

// deployLynxLeNet stands up the §6.3 Lynx LeNet server on one GPU: a single
// server mqueue whose persistent threadblock polls, then runs the inference
// through dynamic parallelism (whole-GPU child kernels). Real LeNet code
// computes the answer; the calibrated service time charges the GPU.
func deployLynxLeNet(e *env, rt *core.Runtime, gpu *accel.GPU, net *lenet.Network, port uint16, proto core.Proto) netstack.Addr {
	service := e.params.LeNetServiceK40
	if gpu.Model() == accel.K80Half {
		service = e.params.LeNetServiceK80
	}
	h, err := rt.Register(gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: lenetPayload + 16}, 1)
	if err != nil {
		panic(err)
	}
	svc, err := rt.AddService(proto, port, nil, 1, h)
	if err != nil {
		panic(err)
	}
	handler := lenetHandler(net)
	aq := h.AccelQueues()[0]
	if err := gpu.LaunchPersistent(e.tb.Sim, 1, func(tb *accel.TB) {
		for {
			m := aq.Recv(tb.Proc())
			resp := handler(m.Payload)
			tb.SpawnChild(service)
			if aq.Send(tb.Proc(), uint16(m.Slot), resp) != nil {
				return
			}
		}
	}); err != nil {
		panic(err)
	}
	return svc.Addr()
}

// fig8a measures the LeNet server three ways and reports throughput plus the
// latency distribution at maximum throughput, like Figure 8a.
func fig8a(cfg Config) *Report {
	net := lenet.New(42)
	window := cfg.window(60 * time.Millisecond)
	run := func(platform string, clients int) workload.Result {
		e := newEnv(cfg)
		if platform == platHostCentric {
			sv := hostcentric.New(e.tb.Sim, e.tb.Params, e.server.CPU, e.server.NetHost, e.gpu, hostcentric.Config{
				Port: 7000, Streams: 8, Cores: 1, Bypass: true,
				KernelTime: e.params.LeNetServiceK40, Exclusive: true, Launches: lenetLaunches,
				Handler: lenetHandler(net),
			})
			if err := sv.Start(); err != nil {
				panic(err)
			}
			res := e.measure(workload.Config{
				Proto: workload.UDP, Target: e.server.NetHost.Addr(7000), Payload: lenetPayload,
				Body: lenetBody(net), Clients: clients, Duration: window, Warmup: window / 6,
			})
			e.tb.Sim.Shutdown()
			return res
		}
		rt := core.NewRuntime(e.lynxPlatform(platform))
		target := deployLynxLeNet(e, rt, e.gpu, net, 7000, core.UDP)
		if err := rt.Start(); err != nil {
			panic(err)
		}
		res := e.measure(workload.Config{
			Proto: workload.UDP, Target: target, Payload: lenetPayload,
			Body: lenetBody(net), Clients: clients, Duration: window, Warmup: window / 6,
		})
		e.tb.Sim.Shutdown()
		return res
	}
	r := &Report{
		ID:      "fig8a",
		Title:   "LeNet digit recognition service, UDP (Fig. 8a)",
		Columns: []string{"req/s", "p90 low-load", "p99 low-load", "paper req/s", "paper p90"},
	}
	rows := []struct{ plat, paperTput, paperP90 string }{
		{platHostCentric, "2.8K", "~340µs"},
		{platLynxBF, "3.5K", "300µs"},
		{platLynx1Xeon, "3.5K", "295µs"},
	}
	// Per platform: a saturation run (3 clients) and a low-load latency run
	// (1 client) — all independent testbeds.
	results := make([]workload.Result, 2*len(rows))
	cfg.sweep(len(results), func(i int) {
		clients := 3
		if i%2 == 1 {
			clients = 1
		}
		results[i] = run(rows[i/2].plat, clients)
	})
	for i, row := range rows {
		sat, lowLoad := results[2*i], results[2*i+1]
		r.AddRow(row.plat, sat.Throughput(), lowLoad.Hist.P90(), lowLoad.Hist.P99(),
			row.paperTput, row.paperP90)
	}
	maxRate := float64(time.Second) / float64(defaultParams().LeNetServiceK40+defaultParams().DynamicParallelismLaunch)
	r.AddRow("theoretical max (1 GPU)", maxRate, "", "", "3.6K", "")
	r.Note("throughput from 3 closed-loop clients (saturation); latency percentiles from a single-client run")
	return r
}

// fig8aTCP is the §6.3 TCP variant.
func fig8aTCP(cfg Config) *Report {
	net := lenet.New(42)
	window := cfg.window(60 * time.Millisecond)
	run := func(platform string, clients int) workload.Result {
		e := newEnv(cfg)
		rt := core.NewRuntime(e.lynxPlatform(platform))
		target := deployLynxLeNet(e, rt, e.gpu, net, 7000, core.TCP)
		if err := rt.Start(); err != nil {
			panic(err)
		}
		res := e.measure(workload.Config{
			Proto: workload.TCP, Target: target, Payload: lenetPayload,
			Body: lenetBody(net), Clients: clients, Duration: window, Warmup: window / 6,
		})
		e.tb.Sim.Shutdown()
		return res
	}
	r := &Report{
		ID:      "fig8a-tcp",
		Title:   "LeNet service over TCP (§6.3)",
		Columns: []string{"req/s", "p90 low-load", "paper req/s", "paper latency"},
	}
	type point struct {
		plat    string
		clients int
	}
	points := []point{{platLynxBF, 3}, {platLynxBF, 1}, {platLynx1Xeon, 3}, {platLynx1Xeon, 1}}
	results := make([]workload.Result, len(points))
	cfg.sweep(len(points), func(i int) { results[i] = run(points[i].plat, points[i].clients) })
	bf, bfLat, xeon, xeonLat := results[0], results[1], results[2], results[3]
	r.AddRow(platLynxBF, bf.Throughput(), bfLat.Hist.P90(), "3.1K", "346µs")
	r.AddRow(platLynx1Xeon, xeon.Throughput(), xeonLat.Hist.P90(), "3.3K", "322µs")
	r.Note("paper: TCP costs ~10%% throughput on BlueField and ~5%% on Xeon vs UDP; in this model the")
	r.Note("penalty appears as added per-request latency while single-GPU throughput stays GPU-bound")
	return r
}

// fig8b scales the LeNet service across 12 K80 GPUs in three machines: 4
// local to the BlueField, then 4 and 8 more behind remote hosts' RDMA NICs.
func fig8b(cfg Config) *Report {
	net := lenet.New(42)
	window := cfg.window(50 * time.Millisecond)
	run := func(nLocal, nRemote int) (float64, time.Duration) {
		e := newEnv(cfg)
		rt := core.NewRuntime(e.bf.Platform(7))
		var gpus []*accel.GPU
		for i := 0; i < nLocal; i++ {
			gpus = append(gpus, e.server.AddGPU(fmt.Sprintf("gpu-l%d", i), accel.K80Half, false, "server1"))
		}
		var remotes []*snic.Machine
		for m := 0; m*4 < nRemote; m++ {
			remotes = append(remotes, e.tb.NewMachine(fmt.Sprintf("server%d", m+2), 6))
		}
		for i := 0; i < nRemote; i++ {
			m := remotes[i/4]
			gpus = append(gpus, m.AddGPU(fmt.Sprintf("gpu-r%d", i), accel.K80Half, false, "server1"))
		}
		// One mqueue per GPU, all in one service; round-robin dispatch.
		var handles []*core.AccelHandle
		for _, g := range gpus {
			h, err := rt.Register(g, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: lenetPayload + 16}, 1)
			if err != nil {
				panic(err)
			}
			handles = append(handles, h)
		}
		svc, err := rt.AddService(core.UDP, 7000, nil, 1, handles...)
		if err != nil {
			panic(err)
		}
		handler := lenetHandler(net)
		for gi, g := range gpus {
			aq := handles[gi].AccelQueues()[0]
			g := g
			if err := g.LaunchPersistent(e.tb.Sim, 1, func(tb *accel.TB) {
				for {
					m := aq.Recv(tb.Proc())
					resp := handler(m.Payload)
					tb.SpawnChild(e.params.LeNetServiceK80)
					if aq.Send(tb.Proc(), uint16(m.Slot), resp) != nil {
						return
					}
				}
			}); err != nil {
				panic(err)
			}
		}
		rt.Start()
		res := e.measure(workload.Config{
			Proto: workload.UDP, Target: svc.Addr(), Payload: lenetPayload,
			Body: lenetBody(net), Clients: 3 * len(gpus), Duration: window, Warmup: window / 5,
		})
		e.tb.Sim.Shutdown()
		return res.Throughput(), res.Hist.Median()
	}
	r := &Report{
		ID:      "fig8b",
		Title:   "LeNet scaleout to remote K80 GPUs (Fig. 8b)",
		Columns: []string{"req/s", "median latency", "paper req/s"},
	}
	remoteCounts := []int{0, 4, 8}
	tputs := make([]float64, len(remoteCounts))
	lats := make([]time.Duration, len(remoteCounts))
	cfg.sweep(len(remoteCounts), func(i int) { tputs[i], lats[i] = run(4, remoteCounts[i]) })
	t4, l4 := tputs[0], lats[0]
	t8, l8 := tputs[1], lats[1]
	t12, l12 := tputs[2], lats[2]
	r.AddRow("4 local", t4, l4, "~13K")
	r.AddRow("4 local + 4 remote", t8, l8, "~26K")
	r.AddRow("4 local + 8 remote", t12, l12, "~40K")
	r.AddRow("scaling 12 vs 4", speedup(t12, t4), "", "3.0")
	r.Note("paper: linear scaling regardless of GPU location; remote GPUs add ~8µs latency")
	return r
}

// fig8c reproduces the scalability projection: emulated LeNet delay kernels
// (the paper's own methodology) on an increasing number of GPUs, for UDP and
// TCP, with Lynx on BlueField vs one Xeon core.
func fig8c(cfg Config) *Report {
	service := defaultParams().LeNetServiceK80
	window := cfg.window(30 * time.Millisecond)
	run := func(platform string, proto core.Proto, nGPUs int) float64 {
		e := newEnv(cfg)
		rt := core.NewRuntime(e.lynxPlatform(platform))
		// Emulation per §6.3: N delay kernels on one physical GPU, one
		// mqueue each, each registered as its own accelerator context.
		var handles []*core.AccelHandle
		for i := 0; i < nGPUs; i++ {
			h, err := rt.Register(e.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 96}, 1)
			if err != nil {
				panic(err)
			}
			handles = append(handles, h)
		}
		svc, err := rt.AddService(proto, 7000, nil, 1, handles...)
		if err != nil {
			panic(err)
		}
		for _, h := range handles {
			aq := h.AccelQueues()[0]
			if err := e.gpu.LaunchPersistent(e.tb.Sim, 1, func(tb *accel.TB) {
				for {
					m := aq.Recv(tb.Proc())
					tb.Compute(service) // delay kernel, not exclusive
					if aq.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
						return
					}
				}
			}); err != nil {
				panic(err)
			}
		}
		rt.Start()
		clients := 3 * nGPUs
		if clients > 360 {
			clients = 360
		}
		res := e.measure(workload.Config{
			Proto: protoToWorkload(proto), Target: svc.Addr(), Payload: 64,
			Clients: clients, Duration: window, Warmup: window / 5,
			Timeout: 500 * time.Millisecond,
		})
		e.tb.Sim.Shutdown()
		return res.Throughput()
	}
	counts := []int{1, 15, 30, 60, 90, 120}
	if cfg.Scale < 1 {
		counts = []int{1, 15, 60, 120}
	}
	r := &Report{
		ID:    "fig8c",
		Title: "Multi-GPU scalability projection, emulated LeNet kernels (Fig. 8c)",
	}
	for _, n := range counts {
		r.Columns = append(r.Columns, fmt.Sprintf("%d GPUs", n))
	}
	perGPU := float64(time.Second) / float64(service)
	series := []struct {
		name  string
		plat  string
		proto core.Proto
		paper string
	}{
		{"UDP " + platLynxBF, platLynxBF, core.UDP, "saturates at ~102 GPUs (paper)"},
		{"UDP " + platLynx1Xeon, platLynx1Xeon, core.UDP, "saturates at ~74 GPUs (paper)"},
		{"TCP " + platLynxBF, platLynxBF, core.TCP, "saturates at ~15 GPUs (paper)"},
		{"TCP " + platLynx1Xeon, platLynx1Xeon, core.TCP, "saturates at ~7 GPUs (paper)"},
	}
	// Every (series, GPU count) cell is an independent testbed.
	tputs := make([]float64, len(series)*len(counts))
	cfg.sweep(len(tputs), func(i int) {
		s := series[i/len(counts)]
		tputs[i] = run(s.plat, s.proto, counts[i%len(counts)])
	})
	for si, s := range series {
		cells := make([]any, len(counts))
		for i, n := range counts {
			tput := tputs[si*len(counts)+i]
			cells[i] = fmt.Sprintf("%s (%.0f%%)", fmtFloat(tput), 100*tput/(perGPU*float64(n)))
		}
		r.AddRow(s.name, cells...)
		r.Note("%s: %s", s.name, s.paper)
	}
	r.Note("cells: aggregate req/s (%% of linear scaling); one K80-speed delay kernel per emulated GPU")
	return r
}

func protoToWorkload(p core.Proto) workload.Proto {
	if p == core.TCP {
		return workload.TCP
	}
	return workload.UDP
}
