package experiments

import (
	"time"

	"lynx/internal/accel"
	"lynx/internal/core"
	"lynx/internal/model"
	"lynx/internal/mqueue"
	"lynx/internal/sim"
	"lynx/internal/workload"
)

func init() {
	register("ext-integrated-nic", "extension: accelerator with integrated NIC — self-hosted stack vs Lynx (§4.5)", extIntegratedNIC)
}

// extIntegratedNIC reproduces the §4.5 discussion: an accelerator with an
// integrated NIC (Goya-style) can either run its own TCP stack on its scarce
// scalar cores — "resource-demanding and inefficient" — or let a shared
// Lynx SNIC terminate TCP and feed it through mqueues like any remote
// accelerator. The accelerator has 16 compute units at 100 µs/request; the
// self-hosted variant burns two wimpy scalar cores on TCP processing.
func extIntegratedNIC(cfg Config) *Report {
	window := cfg.window(30 * time.Millisecond)
	const units = 16
	const service = 100 * time.Microsecond

	// Self-hosted: the accelerator's own 2-core scalar complex runs the
	// TCP stack; compute units do the application work.
	runSelfHosted := func() workload.Result {
		e := newEnv(cfg)
		accMachine := e.tb.NewMachine("goya1", 6)
		// The accelerator's scalar complex: two wimpy (ARM-class) cores.
		scalar := sim.NewResource(e.tb.Sim, 2)
		tcpCost := model.ScaleCPU(e.params.TCPCost(model.XeonCore, false), model.ARMCore)
		computeUnits := sim.NewResource(e.tb.Sim, units)
		l := accMachine.NetHost.MustTCPListen(7000)
		e.tb.Sim.Spawn("goya-accept", func(p *sim.Proc) {
			for {
				conn := l.Accept(p)
				e.tb.Sim.Spawn("goya-conn", func(p *sim.Proc) {
					for {
						msg, err := conn.Recv(p)
						if err != nil {
							return
						}
						scalar.With(p, tcpCost, nil)       // rx stack
						computeUnits.With(p, service, nil) // the kernel
						scalar.With(p, tcpCost, nil)       // tx stack
						if conn.Send(p, msg) != nil {
							return
						}
					}
				})
			}
		})
		res := e.measure(workload.Config{
			Proto: workload.TCP, Target: accMachine.NetHost.Addr(7000), Payload: 64,
			Clients: 3 * units, Duration: window, Warmup: window / 5,
			Timeout: 200 * time.Millisecond,
		})
		e.tb.Sim.Shutdown()
		return res
	}

	// Lynx-managed: the SNIC terminates TCP; the accelerator behaves like a
	// remote accelerator reached through its integrated RDMA NIC (§4.5:
	// "in a way similar to how it manages remote accelerators").
	runLynxManaged := func() workload.Result {
		e := newEnv(cfg)
		accHost := e.tb.NewMachine("goya1", 6)
		acc := accHost.AddGPU("goya-accel", accel.K40m, false, "server1")
		rt := core.NewRuntime(e.bf.Platform(7))
		h, err := rt.Register(acc, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}, units)
		if err != nil {
			panic(err)
		}
		svc, err := rt.AddService(core.TCP, 7000, nil, units, h)
		if err != nil {
			panic(err)
		}
		qs := h.AccelQueues()
		if err := acc.LaunchPersistent(e.tb.Sim, units, func(tb *accel.TB) {
			aq := qs[tb.Index()]
			for {
				m := aq.Recv(tb.Proc())
				tb.Compute(service)
				if aq.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
					return
				}
			}
		}); err != nil {
			panic(err)
		}
		rt.Start()
		res := e.measure(workload.Config{
			Proto: workload.TCP, Target: svc.Addr(), Payload: 64,
			Clients: 3 * units, Duration: window, Warmup: window / 5,
			Timeout: 200 * time.Millisecond,
		})
		e.tb.Sim.Shutdown()
		return res
	}

	results := make([]workload.Result, 2)
	cfg.sweep(2, func(i int) {
		if i == 0 {
			results[i] = runSelfHosted()
		} else {
			results[i] = runLynxManaged()
		}
	})
	selfHosted, lynxManaged := results[0], results[1]

	r := &Report{
		ID:      "ext-integrated-nic",
		Title:   "NIC-integrated accelerator: self-hosted TCP stack vs Lynx management (§4.5)",
		Columns: []string{"req/s", "p99", "compute-unit utilization"},
	}
	maxRate := float64(units) * float64(time.Second) / float64(service)
	r.AddRow("self-hosted TCP stack", selfHosted.Throughput(), selfHosted.Hist.P99(),
		fmtFloat(100*selfHosted.Throughput()/maxRate)+"%")
	r.AddRow("Lynx-managed (remote mqueues)", lynxManaged.Throughput(), lynxManaged.Hist.P99(),
		fmtFloat(100*lynxManaged.Throughput()/maxRate)+"%")
	r.AddRow("Lynx advantage", speedup(lynxManaged.Throughput(), selfHosted.Throughput()), "", "")
	r.Note("§4.5: running TCP on the accelerator's scalar cores starves its compute; Lynx offloads the")
	r.Note("stack to the shared SNIC and reaches the device like a remote accelerator")
	return r
}

func init() {
	register("ext-innova-duplex", "extension: Innova send path (full-duplex FPGA echo, §5.2 future work)", extInnovaDuplex)
}

// extInnovaDuplex measures a complete echo service through the Innova FPGA —
// receive AND send path in AFU logic — against the same service on
// BlueField. The paper's prototype stopped at the receive path (7.4M pkt/s);
// this quantifies the §6.2 claim that "the more specialized the SNIC
// architecture, the higher its performance potential" end to end.
func extInnovaDuplex(cfg Config) *Report {
	window := cfg.window(8 * time.Millisecond)
	const nq = 240
	runInnova := func() float64 {
		e := newEnv(cfg)
		in := e.server.AttachInnova("innova1")
		qs, err := in.ServeUDPFullDuplex(7000, e.gpu, mqueue.Config{Slots: 16, SlotSize: 128}, nq)
		if err != nil {
			panic(err)
		}
		if err := e.gpu.LaunchPersistent(e.tb.Sim, nq, func(tb *accel.TB) {
			aq := qs[tb.Index()]
			for {
				m := aq.Recv(tb.Proc())
				if aq.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
					return
				}
			}
		}); err != nil {
			panic(err)
		}
		g := workload.New(e.tb.Sim, workload.Config{
			Proto: workload.UDP, Target: in.NetHost.Addr(7000), Payload: 64,
			Clients: 8, RatePerSec: 5e6, Duration: window, Warmup: window / 4,
		}, e.clients...)
		g.Run()
		var atWarmup uint64
		e.tb.Sim.After(window/4, func() { atWarmup = in.Sent() })
		e.tb.Sim.RunUntil(e.tb.Sim.Now().Add(window + window/4))
		sent := in.Sent()
		e.tb.Sim.Shutdown()
		return float64(sent-atWarmup) / window.Seconds()
	}
	runBluefield := func() float64 {
		e := newEnv(cfg)
		target, rt := e.echoDeployment(e.bf.Platform(7), nq, 0, 128)
		g := workload.New(e.tb.Sim, workload.Config{
			Proto: workload.UDP, Target: target, Payload: 64,
			Clients: 8, RatePerSec: 1e6, Duration: window, Warmup: window / 4,
		}, e.clients...)
		g.Run()
		var atWarmup uint64
		e.tb.Sim.After(window/4, func() { atWarmup = rt.Stats().Responded })
		e.tb.Sim.RunUntil(e.tb.Sim.Now().Add(window + window/4))
		responded := rt.Stats().Responded
		e.tb.Sim.Shutdown()
		return float64(responded-atWarmup) / window.Seconds()
	}
	vals := make([]float64, 2)
	cfg.sweep(2, func(i int) {
		if i == 0 {
			vals[i] = runInnova()
		} else {
			vals[i] = runBluefield()
		}
	})
	innova, bluefield := vals[0], vals[1]
	r := &Report{
		ID:      "ext-innova-duplex",
		Title:   "Full-duplex echo through the FPGA AFU vs BlueField (extension of §5.2/§6.2)",
		Columns: []string{"echo/s"},
	}
	r.AddRow("Innova full duplex (AFU rx+tx)", innova)
	r.AddRow("Lynx on BlueField", bluefield)
	r.AddRow("specialization advantage", speedup(innova, bluefield))
	r.Note("the paper measured the FPGA receive path only (7.4M pkt/s); this implements the send path")
	r.Note("and shows the specialized pipeline sustaining Mpps full echoes where ARM cores top out ~0.3M")
	return r
}
