package experiments

import (
	"os"
	"strings"
	"testing"
)

// TestReplicationIdentity pins ROADMAP item 1's RF-1 byte-identity claim from
// both directions. Metamorphic: the 1-node RF=1 rack built by
// internal/cluster must produce the exact measured result and runtime event
// trace of the hand-built single-server KV deployment (same seed, same
// workload) — the replication hooks must be invisible when dormant. Golden:
// both must match the committed artifacts, so any cross-release drift in the
// single-server event sequence shows up as a byte diff here too.
//
// To regenerate after an intentional semantic change (and say so in the
// commit message):
//
//	LYNX_UPDATE_GOLDENS=1 go test ./internal/experiments/ -run TestReplicationIdentity
func TestReplicationIdentity(t *testing.T) {
	cfg := Config{Seed: 7, Scale: 0.25, Workers: 1}
	rackRep, rackTrace := replicationIdentity(cfg, true)
	singleRep, singleTrace := replicationIdentity(cfg, false)

	rackCSV, singleCSV := rackRep.CSV(), singleRep.CSV()
	if rackCSV != singleCSV {
		t.Errorf("RF=1 rack CSV diverges from the single-server deployment:\n%s",
			firstDiff(rackCSV, singleCSV))
	}
	rackEvents := strings.Join(rackTrace, "\n") + "\n"
	singleEvents := strings.Join(singleTrace, "\n") + "\n"
	if rackEvents != singleEvents {
		t.Errorf("RF=1 rack event trace diverges from the single-server deployment (%d vs %d events):\n%s",
			len(rackTrace), len(singleTrace), firstDiff(rackEvents, singleEvents))
	}

	csvPath := "testdata/pr9_replication_identity_scale025_seed7.csv"
	tracePath := "testdata/pr9_replication_identity_scale025_seed7_trace.txt"
	if os.Getenv("LYNX_UPDATE_GOLDENS") != "" {
		if err := os.WriteFile(csvPath, []byte(rackCSV), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tracePath, []byte(rackEvents), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("goldens updated: %s, %s", csvPath, tracePath)
		return
	}
	wantCSV, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if rackCSV != string(wantCSV) {
		t.Errorf("replication identity CSV drifted from the PR 9 golden:\n%s",
			firstDiff(rackCSV, string(wantCSV)))
	}
	wantTrace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if rackEvents != string(wantTrace) {
		t.Errorf("replication identity trace drifted from the PR 9 golden (%d bytes, want %d):\n%s",
			len(rackEvents), len(wantTrace), firstDiff(rackEvents, string(wantTrace)))
	}
}
