// The -top collector: cmd/lynxbench -top N arms span tracing on every
// testbed an experiment builds and renders the N slowest completed requests
// across all of them, with each request's per-phase wait/service split.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"lynx/internal/profile"
	"lynx/internal/trace"
)

// TopCollector accumulates flight-recorder entries from every testbed an
// experiment run builds (sweep points may run on parallel workers, so Add is
// mutex-guarded). The rendered table is deterministic regardless of worker
// count: entries are totally ordered by (latency desc, span ID asc, rendered
// row asc), so collection order cannot leak into the output.
type TopCollector struct {
	mu      sync.Mutex
	k       int
	entries []profile.Entry
}

// NewTopCollector creates a collector keeping the n slowest requests.
func NewTopCollector(n int) *TopCollector {
	if n <= 0 {
		n = 10
	}
	return &TopCollector{k: n}
}

// K reports the requested table size.
func (t *TopCollector) K() int {
	if t == nil {
		return 0
	}
	return t.k
}

// Add merges one testbed's slowest entries. Nil-safe.
func (t *TopCollector) Add(entries []profile.Entry) {
	if t == nil || len(entries) == 0 {
		return
	}
	t.mu.Lock()
	t.entries = append(t.entries, entries...)
	t.mu.Unlock()
}

// topRow pairs an entry with its rendered cells so sorting can fall back to
// the rendered form as the final deterministic tiebreak.
type topRow struct {
	e     profile.Entry
	cells []string
}

// Table renders the slowest collected requests as a report: one row per
// request with its end-to-end latency, status, and per-phase wait/service
// split. Empty (with a note) when nothing completed.
func (t *TopCollector) Table() *Report {
	rep := &Report{
		ID:      "top",
		Title:   "slowest requests (wait/service per phase)",
		Columns: []string{"latency", "status", "queue"},
	}
	for p := trace.PhaseNetwork; p < trace.NumPhases; p++ {
		rep.Columns = append(rep.Columns, p.String()+" w/s")
	}
	if t == nil {
		return rep
	}
	t.mu.Lock()
	entries := append([]profile.Entry(nil), t.entries...)
	t.mu.Unlock()
	rows := make([]topRow, 0, len(entries))
	for _, e := range entries {
		cells := []string{
			e.Latency.Round(100 * time.Nanosecond).String(),
			e.Span.Status.String(),
			fmt.Sprint(e.Span.Queue),
		}
		ph, ok := e.Span.Phases()
		for p := trace.PhaseNetwork; p < trace.NumPhases; p++ {
			if !ok {
				cells = append(cells, "-")
				continue
			}
			w := e.Span.WaitIn(p)
			cells = append(cells, fmtWS(w, ph[p]-w))
		}
		rows = append(rows, topRow{e: e, cells: cells})
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.e.Latency != b.e.Latency {
			return a.e.Latency > b.e.Latency
		}
		if a.e.Span.ID != b.e.Span.ID {
			return a.e.Span.ID < b.e.Span.ID
		}
		return strings.Join(a.cells, "|") < strings.Join(b.cells, "|")
	})
	if len(rows) > t.k {
		rows = rows[:t.k]
	}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, Row{Name: fmt.Sprintf("span %d", r.e.Span.ID), Cells: r.cells})
	}
	if len(rows) == 0 {
		rep.Note("no completed spans recorded (experiment may not trace requests end to end)")
	}
	return rep
}

func fmtWS(wait, service time.Duration) string {
	return wait.Round(100*time.Nanosecond).String() + "/" + service.Round(100*time.Nanosecond).String()
}
