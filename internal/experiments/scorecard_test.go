package experiments

import (
	"strings"
	"testing"

	"lynx/internal/check"
)

// TestScorecardDocument validates the embedded claims document itself:
// parseable, no duplicates, every claim bounded.
func TestScorecardDocument(t *testing.T) {
	sc, err := check.ParseScorecard(scorecardJSON)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sc.Claims); got != 24 {
		t.Fatalf("scorecard.json has %d claims, want 24 (update this test when adding claims)", got)
	}
	for _, c := range sc.Claims {
		if c.Paper == "" || c.Desc == "" {
			t.Errorf("claim %s: missing paper citation or description", c.ID)
		}
	}
}

// TestScorecard is the paper-fidelity gate: every shape claim of the
// reproduced evaluation must hold at the fast scale, under runtime
// invariants. A change that bends a reproduced result past its tolerance
// band fails here rather than waiting for a human to re-read the tables.
func TestScorecard(t *testing.T) {
	agg := check.NewAggregate()
	cfg := Config{Seed: 1, Scale: 0.25, Workers: AutoWorkers, Invariants: agg}
	metrics := scorecardMetrics(cfg)
	sc := loadScorecard()
	results := sc.Evaluate(metrics)
	for _, res := range results {
		if !res.Pass {
			t.Errorf("%s", res)
		}
	}
	if rep := agg.Report(); !rep.OK() {
		t.Errorf("invariants violated during scorecard runs:\n%s", rep)
	}

	// The gate must actually gate: perturb one measured metric per claim and
	// check the claim notices. A claim that passes any value is dead weight.
	t.Run("perturbed", func(t *testing.T) {
		for _, c := range sc.Claims {
			bad := make(map[string]float64, len(metrics))
			for k, v := range metrics {
				bad[k] = v
			}
			switch {
			case c.Min != nil:
				bad[c.Metric] = *c.Min * 0.5
			case c.Max != nil:
				bad[c.Metric] = *c.Max * 2
			}
			fails := check.Failures(sc.Evaluate(bad))
			found := false
			for _, f := range fails {
				if f.Claim.ID == c.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("claim %s did not fail on a perturbed metric", c.ID)
			}
		}
		// A metric the harness stops producing must fail, not silently pass.
		missing := map[string]float64{}
		if fails := check.Failures(sc.Evaluate(missing)); len(fails) != len(sc.Claims) {
			t.Errorf("empty metrics: %d failures, want %d", len(fails), len(sc.Claims))
		}
	})

	// The report form mirrors the evaluation and sets Failed on a miss.
	t.Run("report", func(t *testing.T) {
		r := scorecard(cfg)
		if r.Failed {
			t.Fatalf("scorecard report marked Failed:\n%s", r)
		}
		if len(r.Rows) != len(sc.Claims) {
			t.Fatalf("report has %d rows, want %d", len(r.Rows), len(sc.Claims))
		}
		if !strings.Contains(r.String(), "PASS") {
			t.Fatal("report does not render claim status")
		}
	})
}
