package experiments

import (
	"fmt"
	"time"

	"lynx/internal/accel"
	"lynx/internal/apps/kvstore"
	"lynx/internal/apps/lbp"
	"lynx/internal/apps/lenet"
	"lynx/internal/apps/secure"
	"lynx/internal/core"
	"lynx/internal/hostcentric"
	"lynx/internal/model"
	"lynx/internal/mqueue"
	"lynx/internal/netstack"
	"lynx/internal/sim"
	"lynx/internal/snic"
	"lynx/internal/workload"
)

func init() {
	register("fig9", "memcached co-location: host cores vs BlueField (Fig. 9)", fig9)
	register("sec64-faceverify", "multi-tier face verification server (§6.4)", sec64FaceVerify)
	register("sec62-vca", "VCA/SGX secure computing server (§6.2)", sec62VCA)
}

// ---------------------------------------------------------------------------
// Fig. 9: memcached + LeNet co-location

// memcachedInstances runs n memcached worker processes on the machine's
// cores (one pinned instance per core, the paper's deployment), serving the
// real kvstore over UDP. batched selects the BlueField throughput-optimized
// mode (deep batching: higher throughput, much higher latency).
func memcachedInstances(tb *snic.Testbed, host *netstack.Host, machine interface {
	Exec(p *sim.Proc, d time.Duration)
	Scale(d time.Duration) time.Duration
}, params *model.Params, port uint16, n int, kernelStack bool, batchLatency time.Duration, served *uint64) *kvstore.Store {
	store := kvstore.NewStore(16, 0)
	sock := host.MustUDPBind(port)
	stackCost := params.UDPCost(model.XeonCore, !kernelStack)
	if kernelStack {
		// The BlueField runs memcached over the kernel stack (§6.3's
		// efficiency experiment); ARM syscalls are dearer (§5.1.1).
		stackCost = time.Duration(float64(stackCost) * params.ARMSyscallPenalty)
	}
	for i := 0; i < n; i++ {
		tb.Sim.Spawn(fmt.Sprintf("memcached/%s/%d", host.Name(), i), func(p *sim.Proc) {
			for {
				dg := sock.Recv(p)
				machine.Exec(p, stackCost)
				// Strip the sequence header, serve, re-prefix.
				if len(dg.Payload) < workload.SeqBytes {
					continue
				}
				machine.Exec(p, params.MemcachedOpXeon)
				reply := store.ServeRaw(dg.Payload[workload.SeqBytes:])
				out := make([]byte, workload.SeqBytes+len(reply))
				copy(out, dg.Payload[:workload.SeqBytes])
				copy(out[workload.SeqBytes:], reply)
				machine.Exec(p, stackCost)
				if served != nil {
					*served++
				}
				if batchLatency > 0 {
					// Throughput-optimized batching: replies leave in batch
					// windows. Throughput is unaffected; latency pays the
					// window (Fig. 9: 160 µs p99 on BlueField at 400 Ktps).
					from := dg.From
					tb.Sim.After(batchLatency, func() { sock.SendTo(from, out) })
					continue
				}
				sock.SendTo(dg.From, out)
			}
		})
	}
	return store
}

// memcachedLoad drives get-heavy traffic and reports the result.
func memcachedLoad(e *env, target netstack.Addr, clients int, window time.Duration) workload.Result {
	return e.measure(workload.Config{
		Proto: workload.UDP, Target: target, Payload: 64,
		Body: func(seq uint64, buf []byte) {
			req := kvstore.EncodeGet(fmt.Sprintf("key-%03d", seq%512))
			copy(buf[workload.SeqBytes:], req)
		},
		Clients: clients, Duration: window, Warmup: window / 5,
	})
}

func fig9(cfg Config) *Report {
	window := cfg.window(20 * time.Millisecond)
	lenetNet := lenet.New(42)

	type outcome struct {
		name      string
		hostTput  float64
		hostP99   time.Duration
		bfTput    float64
		bfP99     time.Duration
		lenetTput float64
	}
	run := func(name string, hostCores int, bfMemcached bool, bfBatched bool, lynxOnHostCore bool) outcome {
		e := newEnv(cfg)
		// Populate a store per instance set through the loader below.
		var hostServed, bfServed uint64
		st := memcachedInstances(e.tb, e.server.NetHost, e.server.CPU, &e.params, 11211, hostCores, false, 0, &hostServed)
		for i := 0; i < 512; i++ {
			st.Set(fmt.Sprintf("key-%03d", i), 0, []byte("value-0123456789"))
		}
		var bfStore *kvstore.Store
		if bfMemcached {
			batch := time.Duration(0)
			if bfBatched {
				batch = e.params.MemcachedBatchLatencyBF
			}
			bfStore = memcachedInstances(e.tb, e.bf.NetHost, e.bf.ARM, &e.params, 11211, 7, true, batch, &bfServed)
			for i := 0; i < 512; i++ {
				bfStore.Set(fmt.Sprintf("key-%03d", i), 0, []byte("value-0123456789"))
			}
		}
		// The LeNet service rides on whatever platform is left.
		var lynxPlat core.Platform
		if lynxOnHostCore {
			lynxPlat = e.server.HostPlatform(1, true)
		} else {
			lynxPlat = e.bf.Platform(7)
		}
		rt := core.NewRuntime(lynxPlat)
		lenetTarget := deployLynxLeNet(e, rt, e.gpu, lenetNet, 7000, core.UDP)
		rt.Start()

		hostGen := workload.New(e.tb.Sim, workload.Config{
			Proto: workload.UDP, Target: e.server.NetHost.Addr(11211), Payload: 64,
			Body: func(seq uint64, buf []byte) {
				copy(buf[workload.SeqBytes:], kvstore.EncodeGet(fmt.Sprintf("key-%03d", seq%512)))
			},
			Clients: 4 * hostCores, Duration: window, Warmup: window / 5,
			BasePort: 21000,
		}, e.clients[0])
		hostRes := hostGen.Run()
		var bfRes *workload.Result
		if bfMemcached {
			bfGen := workload.New(e.tb.Sim, workload.Config{
				Proto: workload.UDP, Target: e.bf.NetHost.Addr(11211), Payload: 64,
				Body: func(seq uint64, buf []byte) {
					copy(buf[workload.SeqBytes:], kvstore.EncodeGet(fmt.Sprintf("key-%03d", seq%512)))
				},
				// Throughput-optimized: enough concurrency to saturate.
				// Latency-optimized: light load, chasing the host's 15µs
				// p99 target (which BlueField cannot reach, §6.3).
				Clients:  map[bool]int{true: 96, false: 8}[bfBatched],
				Duration: window, Warmup: window / 5,
				BasePort: 22000,
			}, e.clients[1])
			bfRes = bfGen.Run()
		}
		lenetGen := workload.New(e.tb.Sim, workload.Config{
			Proto: workload.UDP, Target: lenetTarget, Payload: lenetPayload,
			Body: lenetBody(lenetNet), Clients: 3, Duration: window, Warmup: window / 5,
			BasePort: 23000,
		}, e.clients[0])
		lenetRes := lenetGen.Run()

		e.tb.Sim.RunUntil(e.tb.Sim.Now().Add(window + window/3))
		e.tb.Sim.Shutdown()
		out := outcome{name: name,
			hostTput: hostRes.Throughput(), hostP99: hostRes.Hist.P99(),
			lenetTput: lenetRes.Throughput()}
		if bfRes != nil {
			// Throughput from server-side completions (closed-loop client
			// receipts understate batched configurations); latency from
			// the clients.
			out.bfTput = float64(bfServed) / (window + window/5).Seconds()
			out.bfP99 = bfRes.Hist.P99()
		}
		return out
	}

	specs := []struct {
		name                                   string
		hostCores                              int
		bfMemcached, bfBatched, lynxOnHostCore bool
	}{
		{"5 cores", 5, false, false, false},
		{"5 cores + BF (tput opt)", 5, true, true, true},
		{"5 cores + BF (latency opt)", 5, true, false, true},
		{"6 cores", 6, false, false, false},
	}
	rows := make([]outcome, len(specs))
	cfg.sweep(len(specs), func(i int) {
		s := specs[i]
		rows[i] = run(s.name, s.hostCores, s.bfMemcached, s.bfBatched, s.lynxOnHostCore)
	})
	r := &Report{
		ID:      "fig9",
		Title:   "memcached throughput/latency across placements (Fig. 9)",
		Columns: []string{"memcached tput", "host p99", "BF tput", "BF p99", "LeNet req/s"},
	}
	for _, o := range rows {
		bfT, bfL := "-", "-"
		if o.bfTput > 0 {
			bfT, bfL = fmtFloat(o.bfTput), o.bfP99.Round(time.Microsecond).String()
		}
		r.AddRow(o.name, o.hostTput, o.hostP99, bfT, bfL, o.lenetTput)
	}
	r.Note("paper: ~250 Ktps/Xeon core at 15µs p99; BlueField adds 400 Ktps at 160µs p99 (tput-optimized)")
	r.Note("paper: the 15µs latency target is unreachable on BlueField (latency-optimized row)")
	r.Note("paper: LeNet stays at 3.5K req/s in every placement")
	return r
}

// ---------------------------------------------------------------------------
// §6.4: Face Verification (multi-tier)

const (
	fvLabelBytes = 12
	fvReqBytes   = workload.SeqBytes + fvLabelBytes + lbp.ImageBytes
)

// fvBody builds [seq][label][probe image] requests for a random identity.
func fvBody(seq uint64, buf []byte) {
	id := uint32(seq % 500)
	copy(buf[workload.SeqBytes:], []byte(fmt.Sprintf("person-%05d", id)))
	probe := lbp.SynthFace(id, uint32(seq))
	copy(buf[workload.SeqBytes+fvLabelBytes:], probe)
}

// fvPopulate stores every identity's reference image.
func fvPopulate(store *kvstore.Store) {
	for id := uint32(0); id < 500; id++ {
		store.Set(fmt.Sprintf("person-%05d", id), 0, lbp.SynthFace(id, 0))
	}
}

// fvVerify runs the real LBP comparison, returning [seq][0|1].
func fvVerify(req, dbImage []byte) []byte {
	resp := make([]byte, workload.SeqBytes+1)
	copy(resp, req[:workload.SeqBytes])
	probe := req[workload.SeqBytes+fvLabelBytes : fvReqBytes]
	if ok, _, err := lbp.Verify(probe, dbImage, lbp.DefaultThreshold); err == nil && ok {
		resp[workload.SeqBytes] = 1
	}
	return resp
}

// memcachedBackend hosts the image database on its own machine (TCP).
func memcachedBackend(e *env) (*snic.Machine, *kvstore.Store) {
	backend := e.tb.NewMachine("dbserver", 6)
	store := kvstore.NewStore(16, 0)
	fvPopulate(store)
	l := backend.NetHost.MustTCPListen(11211)
	e.tb.Sim.Spawn("memcached-backend", func(p *sim.Proc) {
		for {
			conn := l.Accept(p)
			e.tb.Sim.Spawn("memcached-conn", func(p *sim.Proc) {
				for {
					msg, err := conn.Recv(p)
					if err != nil {
						return
					}
					backend.CPU.ExecOn(p, e.params.MemcachedOpXeon)
					if conn.Send(p, store.ServeRaw(msg)) != nil {
						return
					}
				}
			})
		}
	})
	return backend, store
}

func sec64FaceVerify(cfg Config) *Report {
	window := cfg.window(40 * time.Millisecond)
	const nTB = 28 // 28 server mqueues / threadblocks (§6.4)

	lynxRun := func(platform string) workload.Result {
		e := newEnv(cfg)
		_, _ = memcachedBackend(e)
		plat := e.lynxPlatform(platform)
		rt := core.NewRuntime(plat)
		// Slots fit both the 1044-byte requests and the memcached VALUE
		// replies (header line + 1024-byte image + trailer).
		mqCfg := mqueue.Config{Kind: mqueue.ServerQueue, Slots: 8, SlotSize: fvReqBytes + 96}
		h, err := rt.Register(e.gpu, mqCfg, 2*nTB) // server + client queue per TB
		if err != nil {
			panic(err)
		}
		svc, err := rt.AddService(core.UDP, 7000, nil, nTB, h)
		if err != nil {
			panic(err)
		}
		// One client mqueue per threadblock, all bound to the memcached
		// backend over TCP (§6.4).
		clientIdx := make([]int, nTB)
		for i := 0; i < nTB; i++ {
			cb, err := rt.AddClientQueue(h, core.TCP, netstack.Addr{Host: "dbserver", Port: 11211})
			if err != nil {
				panic(err)
			}
			clientIdx[i] = cb.QueueIndex()
		}
		qs := h.AccelQueues()
		if err := e.gpu.LaunchPersistent(e.tb.Sim, nTB, func(tb *accel.TB) {
			serverQ := qs[tb.Index()]
			clientQ := qs[clientIdx[tb.Index()]]
			for {
				m := serverQ.Recv(tb.Proc())
				if len(m.Payload) < fvReqBytes {
					continue
				}
				label := m.Payload[workload.SeqBytes : workload.SeqBytes+fvLabelBytes]
				if clientQ.Send(tb.Proc(), 0, kvstore.EncodeGet(string(label))) != nil {
					return
				}
				dbReply := clientQ.Recv(tb.Proc())
				img, ok, err := kvstore.DecodeValue(dbReply.Payload)
				if err != nil || !ok {
					continue
				}
				resp := fvVerify(m.Payload, img)
				tb.Compute(e.params.FaceVerifyService) // the LBP kernel, ~50µs
				if serverQ.Send(tb.Proc(), uint16(m.Slot), resp) != nil {
					return
				}
			}
		}); err != nil {
			panic(err)
		}
		rt.Start()
		res := e.measure(workload.Config{
			Proto: workload.UDP, Target: svc.Addr(), Payload: fvReqBytes,
			Body: fvBody, Clients: 2 * nTB, Duration: window, Warmup: window / 5,
		})
		e.tb.Sim.Shutdown()
		return res
	}

	hostRun := func() workload.Result {
		e := newEnv(cfg)
		_, _ = memcachedBackend(e)
		// Pool of memcached connections shared by the stream workers.
		conns := sim.NewChan[*netstack.TCPConn](e.tb.Sim, 0)
		e.tb.Sim.Spawn("conn-pool", func(p *sim.Proc) {
			for i := 0; i < nTB; i++ {
				conn, err := e.server.NetHost.TCPDial(p, netstack.Addr{Host: "dbserver", Port: 11211})
				if err != nil {
					return
				}
				conns.Put(p, conn)
			}
		})
		sv := hostcentric.New(e.tb.Sim, e.tb.Params, e.server.CPU, e.server.NetHost, e.gpu, hostcentric.Config{
			Port: 7000, Streams: nTB, Cores: 2, Bypass: true,
			KernelTime: e.params.FaceVerifyService,
			H2DBytes:   2 * lbp.ImageBytes, D2HBytes: 16,
			PreKernel: func(p *sim.Proc, req []byte) []byte {
				if len(req) < fvReqBytes {
					return req
				}
				label := req[workload.SeqBytes : workload.SeqBytes+fvLabelBytes]
				conn := conns.Get(p)
				defer conns.Put(p, conn)
				e.server.CPU.ExecOn(p, e.params.TCPCost(model.XeonCore, true))
				if conn.Send(p, kvstore.EncodeGet(string(label))) != nil {
					return req
				}
				reply, err := conn.Recv(p)
				if err != nil {
					return req
				}
				e.server.CPU.ExecOn(p, e.params.TCPCost(model.XeonCore, true))
				img, ok, derr := kvstore.DecodeValue(reply)
				if derr != nil || !ok {
					return req
				}
				return append(append([]byte{}, req...), img...)
			},
			Handler: func(req []byte) []byte {
				if len(req) < fvReqBytes+lbp.ImageBytes {
					return req[:workload.SeqBytes+1]
				}
				return fvVerify(req[:fvReqBytes], req[fvReqBytes:fvReqBytes+lbp.ImageBytes])
			},
		})
		if err := sv.Start(); err != nil {
			panic(err)
		}
		res := e.measure(workload.Config{
			Proto: workload.UDP, Target: e.server.NetHost.Addr(7000), Payload: fvReqBytes,
			Body: fvBody, Clients: 2 * nTB, Duration: window, Warmup: window / 5,
		})
		e.tb.Sim.Shutdown()
		return res
	}

	runs := []func() workload.Result{
		hostRun,
		func() workload.Result { return lynxRun(platLynxBF) },
		func() workload.Result { return lynxRun(platLynx6Xeon) },
	}
	results := make([]workload.Result, len(runs))
	cfg.sweep(len(runs), func(i int) { results[i] = runs[i]() })
	hc, bf, xeon := results[0], results[1], results[2]
	r := &Report{
		ID:      "sec64-faceverify",
		Title:   "Face Verification server: GPU frontend + memcached backend (§6.4)",
		Columns: []string{"req/s", "p99", "speedup", "paper speedup"},
	}
	r.AddRow(platHostCentric, hc.Throughput(), hc.Hist.P99(), "1.0x", "1.0x")
	r.AddRow(platLynxBF, bf.Throughput(), bf.Hist.P99(),
		fmtFloat(speedup(bf.Throughput(), hc.Throughput()))+"x", "4.4x")
	r.AddRow(platLynx6Xeon, xeon.Throughput(), xeon.Hist.P99(),
		fmtFloat(speedup(xeon.Throughput(), hc.Throughput()))+"x", "4.6x")
	r.Note("28 server mqueues, one LBP threadblock each; client mqueues reach memcached over TCP")
	r.Note("paper: BlueField ~5%% below Xeon due to its slower TCP stack")
	return r
}

// ---------------------------------------------------------------------------
// §6.2: VCA / SGX secure computing

func sec62VCA(cfg Config) *Report {
	window := cfg.window(250 * time.Millisecond)
	key := []byte("0123456789abcdef")
	mkBody := func(c *secure.Cipher) func(seq uint64, buf []byte) {
		return func(seq uint64, buf []byte) {
			copy(buf[workload.SeqBytes:], c.Seal(uint32(seq)))
		}
	}
	const vcaPayload = workload.SeqBytes + secure.CipherSize

	// enclaveServe decrypts, multiplies, encrypts inside the enclave.
	enclaveServe := func(enc *accel.Enclave, cipher *secure.Cipher, p *sim.Proc, req []byte) []byte {
		resp := make([]byte, vcaPayload)
		copy(resp, req[:workload.SeqBytes])
		var out []byte
		enc.ECall(p, defaultParams().SecureComputeService, func() {
			if o, err := secure.EnclaveCompute(cipher, req[workload.SeqBytes:vcaPayload]); err == nil {
				out = o
			}
		})
		copy(resp[workload.SeqBytes:], out)
		return resp
	}

	// Lynx path: mqueue in host-mapped memory, polled by the VCA node.
	lynxRun := func() workload.Result {
		e := newEnv(cfg)
		cipher, err := secure.NewCipher(key)
		if err != nil {
			panic(err)
		}
		vca := e.server.AddVCA("vca0")
		enc := vca.NewEnclave()
		rt := core.NewRuntime(e.bf.Platform(7))
		h, err := rt.Register(vca, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: vcaPayload + 16}, 1)
		if err != nil {
			panic(err)
		}
		svc, err := rt.AddService(core.UDP, 7000, nil, 1, h)
		if err != nil {
			panic(err)
		}
		aq := h.AccelQueues()[0]
		e.tb.Sim.Spawn("vca-node0", func(p *sim.Proc) {
			for {
				m := aq.Recv(p)
				if len(m.Payload) < vcaPayload {
					continue
				}
				resp := enclaveServe(enc, cipher, p, m.Payload)
				if aq.Send(p, uint16(m.Slot), resp) != nil {
					return
				}
			}
		})
		rt.Start()
		res := e.measure(workload.Config{
			Proto: workload.UDP, Target: svc.Addr(), Payload: vcaPayload,
			Body: mkBody(cipher), Clients: 1, RatePerSec: 1000, Poisson: true,
			Duration: window, Warmup: window / 5,
		})
		e.tb.Sim.Shutdown()
		return res
	}

	// Baseline: the Intel-preferred host network bridge into the VCA node's
	// native Linux stack (§6.2: "a host-based network bridge").
	baselineRun := func() workload.Result {
		e := newEnv(cfg)
		cipher, err := secure.NewCipher(key)
		if err != nil {
			panic(err)
		}
		vca := e.server.AddVCA("vca0")
		enc := vca.NewEnclave()
		sock := e.server.NetHost.MustUDPBind(7000)
		// One server context per VCA node (three E3 processors, §5.4).
		for node := 0; node < vca.Nodes(); node++ {
			e.tb.Sim.Spawn(fmt.Sprintf("vca-bridge-server/%d", node), func(p *sim.Proc) {
				for {
					dg := sock.Recv(p)
					// Host bridge + IP-over-PCIe tunnel + VCA kernel
					// stack, each way.
					p.Sleep(e.params.VCABridgeKernelPath)
					if len(dg.Payload) < vcaPayload {
						continue
					}
					resp := enclaveServe(enc, cipher, p, dg.Payload)
					p.Sleep(e.params.VCABridgeKernelPath)
					sock.SendTo(dg.From, resp)
				}
			})
		}
		res := e.measure(workload.Config{
			Proto: workload.UDP, Target: e.server.NetHost.Addr(7000), Payload: vcaPayload,
			Body: mkBody(cipher), Clients: 1, RatePerSec: 1000, Poisson: true,
			Duration: window, Warmup: window / 5,
		})
		e.tb.Sim.Shutdown()
		return res
	}

	results := make([]workload.Result, 2)
	cfg.sweep(2, func(i int) {
		if i == 0 {
			results[i] = lynxRun()
		} else {
			results[i] = baselineRun()
		}
	})
	lynx, base := results[0], results[1]
	r := &Report{
		ID:      "sec62-vca",
		Title:   "SGX secure multiply on Intel VCA at 1K req/s (§6.2)",
		Columns: []string{"p90", "p99", "req/s", "paper p90"},
	}
	r.AddRow("Lynx (mqueue into mapped memory)", lynx.Hist.P90(), lynx.Hist.P99(), lynx.Throughput(), "56µs")
	r.AddRow("native bridge baseline", base.Hist.P90(), base.Hist.P99(), base.Throughput(), "~240µs (4.3x)")
	r.AddRow("baseline/Lynx p90", fmtFloat(speedup(float64(base.Hist.P90()), float64(lynx.Hist.P90())))+"x", "", "", "4.3x")
	r.Note("AES-GCM runs for real inside the simulated enclave; SGX transitions cost %v each", defaultParams().SGXTransition)
	return r
}
