package experiments

import (
	"fmt"
	"time"

	"lynx/internal/accel"
	"lynx/internal/core"
	"lynx/internal/hostcentric"
	"lynx/internal/model"
	"lynx/internal/mqueue"
	"lynx/internal/sim"
	"lynx/internal/workload"
)

func init() {
	register("fig6", "relative throughput of GPU server implementations (Fig. 6)", fig6)
	register("fig7", "relative latency, Lynx on BlueField vs 6-core Xeon (Fig. 7)", fig7)
	register("sec62-innova", "receive throughput: Innova FPGA vs BlueField vs host-centric (§6.2)", sec62Innova)
	register("sec62-isolation", "performance isolation: Lynx on BlueField vs noisy neighbor (§6.2)", sec62Isolation)
}

// fig6MQCounts and request times swept by Figure 6.
var (
	fig6MQCounts = []int{1, 120, 240}
	fig6ReqTimes = []time.Duration{20 * time.Microsecond, 200 * time.Microsecond,
		800 * time.Microsecond, 1600 * time.Microsecond}
)

// fig6Throughput measures one (platform, request time, mqueues) cell in
// req/s using 64-byte UDP messages (§6.2: "We use 64B UDP messages to
// stress the system").
func fig6Throughput(cfg Config, platform string, reqTime time.Duration, nMQ int) float64 {
	e := newEnv(cfg)
	// Two closed-loop clients per mqueue saturate the pipeline without
	// building queueing that outlasts the measurement window.
	clients := nMQ * 2
	if clients > 480 {
		clients = 480
	}
	window := cfg.window(30 * time.Millisecond)
	if platform == platHostCentric {
		sv := hostcentric.New(e.tb.Sim, e.tb.Params, e.server.CPU, e.server.NetHost, e.gpu, hostcentric.Config{
			Port: 7000, Streams: nMQ, Cores: 1, Bypass: true, KernelTime: reqTime,
		})
		if err := sv.Start(); err != nil {
			panic(err)
		}
		// The baseline saturates at the driver lock; offering hundreds of
		// closed-loop clients only builds queueing that outlasts the
		// measurement window. A small multiple of the stream pool
		// saturates it.
		hcClients := 2 * nMQ
		if hcClients > 32 {
			hcClients = 32
		}
		res := e.measure(workload.Config{
			Proto: workload.UDP, Target: e.server.NetHost.Addr(7000), Payload: 64,
			Clients: hcClients, Duration: window, Warmup: window / 4,
			Timeout: 500 * time.Millisecond,
		})
		e.tb.Sim.Shutdown()
		return res.Throughput()
	}
	target, _ := e.echoDeployment(e.lynxPlatform(platform), nMQ, reqTime, 128)
	res := e.measure(workload.Config{
		Proto: workload.UDP, Target: target, Payload: 64,
		Clients: clients, Duration: window, Warmup: window / 4,
		Timeout: 500 * time.Millisecond,
	})
	e.tb.Sim.Shutdown()
	return res.Throughput()
}

func fig6(cfg Config) *Report {
	platforms := []string{platHostCentric, platLynx1Xeon, platLynx6Xeon, platLynxBF}
	r := &Report{
		ID:    "fig6",
		Title: "Relative throughput of GPU echo servers, 64B UDP (Fig. 6; speedup vs host-centric)",
	}
	for _, n := range fig6MQCounts {
		r.Columns = append(r.Columns, fmt.Sprintf("%dmq", n))
	}
	// Every (request time, platform, mqueue count) cell is an independent
	// testbed: enumerate them, fan out, and assemble rows by index so the
	// table is byte-identical to a sequential run.
	type point struct {
		rt   time.Duration
		plat string
		n    int
	}
	var points []point
	for _, rt := range fig6ReqTimes {
		for _, plat := range platforms {
			for _, n := range fig6MQCounts {
				points = append(points, point{rt, plat, n})
			}
		}
	}
	vals := make([]float64, len(points))
	cfg.sweep(len(points), func(i int) {
		p := points[i]
		vals[i] = fig6Throughput(cfg, p.plat, p.rt, p.n)
	})
	val := make(map[point]float64, len(points))
	for i, p := range points {
		val[p] = vals[i]
	}
	for _, rt := range fig6ReqTimes {
		for _, plat := range platforms {
			cells := make([]any, len(fig6MQCounts))
			for i, n := range fig6MQCounts {
				v := val[point{rt, plat, n}]
				base := val[point{rt, platHostCentric, n}]
				cells[i] = fmt.Sprintf("%s (%sx)", fmtFloat(v), fmtFloat(speedup(v, base)))
			}
			r.AddRow(fmt.Sprintf("%v %s", rt, plat), cells...)
		}
	}
	r.Note("paper: host-centric is slowest everywhere; Lynx/BlueField reaches 2x (1mq, short) to 15.3x (240mq)")
	r.Note("paper: BlueField always beats 1 Xeon core, and trails 6 Xeon cores by up to 45%% for short requests")
	return r
}

// fig7Latency measures one Figure 7 cell: unloaded median request latency of
// a Lynx echo deployment on the given platform. Shared by fig7 and the
// scorecard.
func fig7Latency(cfg Config, platform string, reqTime time.Duration, nMQ int) time.Duration {
	e := newEnv(cfg)
	target, _ := e.echoDeployment(e.lynxPlatform(platform), nMQ, reqTime, 128)
	reqs := 60
	if cfg.Scale < 1 {
		reqs = 20
	}
	res := e.measure(workload.Config{
		Proto: workload.UDP, Target: target, Payload: 20,
		Clients: 1, Duration: time.Duration(reqs) * (reqTime + 100*time.Microsecond),
		Warmup: 2 * (reqTime + 100*time.Microsecond),
	})
	e.tb.Sim.Shutdown()
	return res.Hist.Median()
}

// fig7 measures unloaded request latency on BlueField vs 6 Xeon cores for
// request durations of 5..1600 µs and 1/120/240 mqueues, reporting the
// BF/Xeon slowdown ratio like Figure 7.
func fig7(cfg Config) *Report {
	reqTimes := []time.Duration{5 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
		200 * time.Microsecond, 400 * time.Microsecond, 800 * time.Microsecond, 1600 * time.Microsecond}
	r := &Report{
		ID:      "fig7",
		Title:   "Latency slowdown: Lynx on BlueField vs Lynx on 6 Xeon cores (Fig. 7)",
		Columns: []string{"1mq", "120mq", "240mq"},
	}
	mqCounts := []int{1, 120, 240}
	plats := []string{platLynxBF, platLynx6Xeon}
	type point struct {
		rt   time.Duration
		n    int
		plat string
	}
	var points []point
	for _, rt := range reqTimes {
		for _, n := range mqCounts {
			for _, plat := range plats {
				points = append(points, point{rt, n, plat})
			}
		}
	}
	meds := make([]time.Duration, len(points))
	cfg.sweep(len(points), func(i int) {
		p := points[i]
		meds[i] = fig7Latency(cfg, p.plat, p.rt, p.n)
	})
	med := make(map[point]time.Duration, len(points))
	for i, p := range points {
		med[p] = meds[i]
	}
	for _, rt := range reqTimes {
		cells := make([]any, 0, len(mqCounts))
		for _, n := range mqCounts {
			bf := med[point{rt, n, platLynxBF}]
			xeon := med[point{rt, n, platLynx6Xeon}]
			cells = append(cells, fmt.Sprintf("%sx (%v vs %v)", fmtFloat(float64(bf)/float64(xeon)), bf, xeon))
		}
		r.AddRow(rt.String(), cells...)
	}
	r.Note("paper: short requests are up to ~1.4x slower on BlueField; the gap vanishes above ~150-200µs")
	r.Note("paper absolute floor: 25µs (BF) vs 19µs (Xeon) end-to-end for a zero-work request")
	return r
}

// sec62MQCount is the §6.2 receive-path mqueue count.
const sec62MQCount = 240

// launchRxSinks starts receive-only GPU threadblocks: consume without
// responding.
func launchRxSinks(e *env, qs []*mqueue.AccelQueue) {
	e.gpu.LaunchPersistent(e.tb.Sim, len(qs), func(tb *accel.TB) {
		aq := qs[tb.Index()]
		for {
			aq.Recv(tb.Proc())
		}
	})
}

// innovaRxRate measures the Innova AFU's receive-path steering rate into GPU
// mqueues (§6.2). Shared by sec62-innova and the scorecard.
func innovaRxRate(cfg Config) float64 {
	window := cfg.window(8 * time.Millisecond)
	e := newEnv(cfg)
	in := e.server.AttachInnova("innova1")
	qs, err := in.ServeUDP(7000, e.gpu, mqueue.Config{Slots: 16, SlotSize: 128}, sec62MQCount)
	if err != nil {
		panic(err)
	}
	launchRxSinks(e, qs)
	g := workload.New(e.tb.Sim, workload.Config{
		Proto: workload.UDP, Target: in.NetHost.Addr(7000), Payload: 64,
		Clients: 8, RatePerSec: 9e6, Duration: window, Warmup: window / 4,
	}, e.clients...)
	g.Run()
	var atWarmup uint64
	e.tb.Sim.After(window/4, func() { atWarmup, _ = in.Stats() })
	e.tb.Sim.RunUntil(e.tb.Sim.Now().Add(window + window/4))
	total, _ := in.Stats()
	e.tb.Sim.Shutdown()
	return float64(total-atWarmup) / window.Seconds()
}

// bluefieldRxRate measures the same receive-only accelerator behind the Lynx
// runtime on BlueField (§6.2). Shared by sec62-innova and the scorecard.
func bluefieldRxRate(cfg Config) float64 {
	window := cfg.window(8 * time.Millisecond)
	e := newEnv(cfg)
	rt := core.NewRuntime(e.bf.Platform(7))
	h, err := rt.Register(e.gpu, mqueue.Config{Kind: mqueue.ServerQueue, Slots: 16, SlotSize: 128}, sec62MQCount)
	if err != nil {
		panic(err)
	}
	if _, err := rt.AddService(core.UDP, 7000, nil, sec62MQCount, h); err != nil {
		panic(err)
	}
	launchRxSinks(e, h.AccelQueues())
	rt.Start()
	g := workload.New(e.tb.Sim, workload.Config{
		Proto: workload.UDP, Target: e.bf.NetHost.Addr(7000), Payload: 64,
		Clients: 8, RatePerSec: 2e6, Duration: window, Warmup: window / 4,
	}, e.clients...)
	g.Run()
	var atWarmup uint64
	e.tb.Sim.After(window/4, func() { atWarmup = rt.Stats().Received })
	e.tb.Sim.RunUntil(e.tb.Sim.Now().Add(window + window/4))
	received := rt.Stats().Received
	e.tb.Sim.Shutdown()
	return float64(received-atWarmup) / window.Seconds()
}

// hostRxRate measures the host-centric RX-only baseline: the CPU receives
// each packet and delivers it to the GPU with one cudaMemcpyAsync (no kernel
// per packet); the driver setup cost dominates. Shared by sec62-innova and
// the scorecard.
func hostRxRate(cfg Config) float64 {
	window := cfg.window(8 * time.Millisecond)
	e := newEnv(cfg)
	sock := e.server.NetHost.MustUDPBind(7000)
	delivered := 0
	for w := 0; w < 6; w++ {
		st := e.gpu.NewStream()
		e.tb.Sim.Spawn("hc-rx", func(p *sim.Proc) {
			for {
				dg := sock.Recv(p)
				e.server.CPU.ExecOn(p, e.params.UDPCost(model.XeonCore, true))
				st.MemcpyH2D(p, len(dg.Payload))
				delivered++
			}
		})
	}
	g := workload.New(e.tb.Sim, workload.Config{
		Proto: workload.UDP, Target: e.server.NetHost.Addr(7000), Payload: 64,
		Clients: 8, RatePerSec: 4e5, Duration: window, Warmup: window / 4,
	}, e.clients...)
	g.Run()
	atWarmup := 0
	e.tb.Sim.After(window/4, func() { atWarmup = delivered })
	e.tb.Sim.RunUntil(e.tb.Sim.Now().Add(window + window/4))
	e.tb.Sim.Shutdown()
	return float64(delivered-atWarmup) / window.Seconds()
}

// sec62Innova reproduces the receive-path comparison: Innova's AFU steers
// 7.4M pkt/s into mqueues, BlueField manages 0.5M, and the CPU-centric
// design is ~80x slower than Innova.
func sec62Innova(cfg Config) *Report {
	runs := []func(Config) float64{innovaRxRate, bluefieldRxRate, hostRxRate}
	rates := make([]float64, len(runs))
	cfg.sweep(len(runs), func(i int) { rates[i] = runs[i](cfg) })
	innovaRate, bfRate, hcRate := rates[0], rates[1], rates[2]

	r := &Report{
		ID:      "sec62-innova",
		Title:   "Receive throughput into GPU mqueues, 64B UDP, 240 mqueues (§6.2)",
		Columns: []string{"pkt/s", "paper"},
	}
	r.AddRow("Innova FPGA (NICA AFU)", innovaRate, "7.4M")
	r.AddRow("Lynx on BlueField", bfRate, "0.5M")
	r.AddRow("host-centric, 6 cores", hcRate, fmt.Sprintf("~%s (80x below Innova)", fmtFloat(7.4e6/80)))
	r.AddRow("Innova / BlueField", speedup(innovaRate, bfRate), "14.8x")
	r.AddRow("Innova / host-centric", speedup(innovaRate, hcRate), "80x")
	return r
}

// sec62Isolation re-runs the §3.2 noisy-neighbor experiment with Lynx on
// BlueField: the SNIC does not share the host LLC, so the server's tail is
// unaffected.
// isolationRun measures one noisy-neighbor point (§6.2 / §3.2): the Lynx
// BlueField deployment or the host-centric baseline, with or without a noisy
// co-tenant on the host CPU. Shared by sec62-isolation and the scorecard.
func isolationRun(cfg Config, useLynxBF, noisy bool) workload.Result {
	e := newEnv(cfg)
	e.server.CPU.SetNoisy(noisy)
	window := cfg.window(60 * time.Millisecond)
	if useLynxBF {
		target, _ := e.echoDeployment(e.bf.Platform(7), 4, 50*time.Microsecond, 1100)
		res := e.measure(workload.Config{
			Proto: workload.UDP, Target: target, Payload: 4 * 256,
			Clients: 4, Duration: window, Warmup: 2 * time.Millisecond,
		})
		e.tb.Sim.Shutdown()
		return res
	}
	sv := hostcentric.New(e.tb.Sim, e.tb.Params, e.server.CPU, e.server.NetHost, e.gpu, hostcentric.Config{
		Port: 7000, Streams: 4, Cores: 1, Bypass: true, KernelTime: 50 * time.Microsecond,
	})
	if err := sv.Start(); err != nil {
		panic(err)
	}
	res := e.measure(workload.Config{
		Proto: workload.UDP, Target: e.server.NetHost.Addr(7000), Payload: 4 * 256,
		Clients: 4, Duration: window, Warmup: 2 * time.Millisecond,
	})
	e.tb.Sim.Shutdown()
	return res
}

func sec62Isolation(cfg Config) *Report {
	type point struct{ lynx, noisy bool }
	points := []point{{true, false}, {true, true}, {false, false}, {false, true}}
	results := make([]workload.Result, len(points))
	cfg.sweep(len(points), func(i int) { results[i] = isolationRun(cfg, points[i].lynx, points[i].noisy) })
	bfQuiet, bfNoisy, hcQuiet, hcNoisy := results[0], results[1], results[2], results[3]
	r := &Report{
		ID:      "sec62-isolation",
		Title:   "Performance isolation under a noisy neighbor (§6.2 / §3.2)",
		Columns: []string{"p99 quiet", "p99 noisy", "inflation"},
	}
	r.AddRow("host-centric (host CPU)", hcQuiet.Hist.P99(), hcNoisy.Hist.P99(),
		fmtFloat(speedup(float64(hcNoisy.Hist.P99()), float64(hcQuiet.Hist.P99())))+"x")
	r.AddRow("Lynx on BlueField", bfQuiet.Hist.P99(), bfNoisy.Hist.P99(),
		fmtFloat(speedup(float64(bfNoisy.Hist.P99()), float64(bfQuiet.Hist.P99())))+"x")
	r.Note("paper: no interference on BlueField; ~13x p99 inflation for the CPU-resident server")
	return r
}
