// Package mqueue implements the paper's central abstraction: message queues
// (mqueues) for passing messages between the SmartNIC and accelerators
// (§4.2).
//
// An mqueue is a pair of producer-consumer ring buffers — receive (RX) and
// transmit (TX) — living in *accelerator-local* memory, with per-slot
// notification (doorbell) registers and a small queue header of
// producer/consumer counters. The accelerator touches the rings with plain
// local memory accesses (the entire accelerator-side I/O library is a thin
// wrapper, ~20 LoC in the paper's SGX port); the SmartNIC accesses them
// remotely with one-sided RDMA through the Remote Message Queue Manager.
//
// Following §5.1 ("One RC QP per accelerator"), all mqueues of one
// accelerator share one RDMA queue pair and one memory region, with the
// per-queue headers packed contiguously so the SNIC refreshes the state of
// every queue in a single RDMA READ per polling sweep (Group.Refresh). This
// batching is what lets a small SNIC drive hundreds of mqueues.
//
// Two further properties of the paper's design are modelled explicitly:
//
//   - Metadata/data coalescing (§5.1): the per-message control metadata
//     (size, error status, notification register) is carried in the same
//     RDMA WRITE as the payload, so delivering a message costs one
//     transaction. Valid only when the write-barrier workaround is off.
//   - The RDMA-read write barrier (§5.1): when the accelerator's memory has
//     relaxed DMA ordering, each message instead costs three transactions
//     (payload write, barrier read, doorbell write), adding ~5 µs/message.
package mqueue

import (
	"errors"
	"fmt"
	"time"

	"lynx/internal/check"
	"lynx/internal/fault"
	"lynx/internal/memdev"
	"lynx/internal/rdma"
	"lynx/internal/sim"
	"lynx/internal/trace"
)

// Kind distinguishes the two mqueue flavours of §4.3.
type Kind int

const (
	// ServerQueue is bound to a listening port; responses return to the
	// client a request arrived from (connection-less, UDP-socket-like).
	ServerQueue Kind = iota
	// ClientQueue sends to one statically configured destination and
	// receives its responses (for back-end services like memcached, §6.4).
	ClientQueue
)

// String names the kind.
func (k Kind) String() string {
	if k == ClientQueue {
		return "client"
	}
	return "server"
}

// Slot layout. The paper's metadata is 4 bytes (size, error, doorbell); we
// carry 2 further bytes of correlation index so that server-queue responses
// can name the request slot they answer — the paper folds this into its slot
// addressing, we keep it explicit.
const (
	offDoorbell = 0 // 1 byte: 0 free, 1 full
	offError    = 1 // 1 byte: connection error status from the SNIC (§5.1)
	offSize     = 2 // 2 bytes little-endian payload size
	offCorr     = 4 // 2 bytes little-endian correlation (request slot index)
	HeaderBytes = 6
)

// Per-queue header: three 8-byte little-endian counters.
const (
	hdrRxConsumed = 0  // written by the accelerator: RX messages consumed
	hdrTxSent     = 8  // written by the accelerator: TX messages produced
	hdrTxConsumed = 16 // written by the SNIC (RDMA): TX messages drained
	// QueueHeaderBytes is the header footprint (padded to 32).
	QueueHeaderBytes = 32
)

// Config shapes one mqueue.
type Config struct {
	Kind     Kind
	Slots    int // ring entries per direction
	SlotSize int // bytes per entry including HeaderBytes
	// Barrier enables the §5.1 RDMA-read write barrier before each
	// doorbell (required for correctness on relaxed-ordering memory,
	// disabled in the paper's evaluation and by default here).
	Barrier bool
	// NoCoalesce disables metadata/data coalescing (ablation): payload and
	// doorbell go in separate RDMA writes.
	NoCoalesce bool
	// Check, when enabled, receives ring-bound and counter-monotonicity
	// violations observed on the SNIC side of the queue. Nil costs one
	// pointer test per operation.
	Check *check.Checker
	// Spans, when non-nil, receives SNIC-side queue-wait attribution: PopTx
	// books the TX-ring residency (drain start minus StageAccelSent) against
	// the span's queueing phase. Nil costs one pointer test per drain.
	Spans *trace.SpanTable
	// ReplSpans, when non-nil, marks the queue as a replication ingest ring:
	// each record-bearing write stamps StageReplPushed for the record's span
	// into this table (the *origin's* span table — replica deliveries link
	// back to the origin span through the shared 8-byte wire-seq id) at its
	// delivery instant. First write wins, so the stamp is the earliest peer
	// delivery.
	ReplSpans *trace.SpanTable
}

func (c *Config) validate() error {
	if c.Slots <= 0 || c.SlotSize <= HeaderBytes {
		return fmt.Errorf("mqueue: invalid geometry slots=%d slotSize=%d", c.Slots, c.SlotSize)
	}
	return nil
}

// RingBytes is the rings-only footprint of one queue (without its header).
func (c Config) RingBytes() int { return 2 * c.Slots * c.SlotSize }

// Footprint returns the bytes of accelerator memory one standalone mqueue
// occupies (header + rings).
func (c Config) Footprint() int { return QueueHeaderBytes + c.RingBytes() }

// MaxPayload returns the largest payload one slot carries.
func (c Config) MaxPayload() int { return c.SlotSize - HeaderBytes }

// GroupFootprint returns the region bytes n grouped queues occupy: a packed
// header block followed by the rings.
func GroupFootprint(c Config, n int) int {
	return n*QueueHeaderBytes + n*c.RingBytes()
}

// ErrQueueFull reports RX ring exhaustion (accelerator not keeping up).
var ErrQueueFull = errors.New("mqueue: RX ring full")

// layout pins one queue's pieces within the shared region.
type layout struct {
	hdr  int // queue header offset
	ring int // rings offset (RX then TX)
}

func (l layout) rxSlot(c Config, slot int) int { return l.ring + slot*c.SlotSize }
func (l layout) txSlot(c Config, slot int) int { return l.ring + (c.Slots+slot)*c.SlotSize }

// ---------------------------------------------------------------------------
// SNIC side

// Queue is the SmartNIC-side handle of one mqueue, operated through a QP by
// the Remote Message Queue Manager. All methods must be called from SNIC
// processes.
type Queue struct {
	cfg    Config
	region *memdev.Region
	lay    layout
	qp     *rdma.QP

	rxHead     uint64   // next RX sequence to fill
	rxConsumed uint64   // accelerator's consumed-RX counter (cached)
	txSeen     uint64   // accelerator's sent-TX counter (cached)
	txTail     uint64   // TX messages we have drained
	txDirty    bool     // txConsumed needs publishing to the accelerator
	hdrAt      sim.Time // wire instant of the freshest absorbed header snapshot

	pushed, polled, full uint64
}

// New creates the SNIC-side view of a standalone mqueue at base within
// region, reached through qp.
func New(region *memdev.Region, base int, cfg Config, qp *rdma.QP) (*Queue, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if base+cfg.Footprint() > region.Size() {
		return nil, fmt.Errorf("mqueue: footprint %d at base %d exceeds region %d",
			cfg.Footprint(), base, region.Size())
	}
	return &Queue{cfg: cfg, region: region, qp: qp,
		lay: layout{hdr: base, ring: base + QueueHeaderBytes}}, nil
}

// Config returns the queue geometry.
func (q *Queue) Config() Config { return q.cfg }

// buildSlot assembles header+payload for one slot write.
func buildSlot(payload []byte, errStatus byte, corr uint16, doorbell byte) []byte {
	buf := make([]byte, HeaderBytes+len(payload))
	buf[offDoorbell] = doorbell
	buf[offError] = errStatus
	buf[offSize] = byte(len(payload))
	buf[offSize+1] = byte(len(payload) >> 8)
	buf[offCorr] = byte(corr)
	buf[offCorr+1] = byte(corr >> 8)
	copy(buf[HeaderBytes:], payload)
	return buf
}

// Push delivers one message into the accelerator's RX ring, returning the
// slot used. It fails with ErrQueueFull when the ring has no free slot
// (after refreshing the accelerator's counters once via RDMA).
func (q *Queue) Push(p *sim.Proc, payload []byte, errStatus byte) (int, error) {
	if len(payload) > q.cfg.MaxPayload() {
		return 0, fmt.Errorf("mqueue: payload %d exceeds slot capacity %d", len(payload), q.cfg.MaxPayload())
	}
	if q.rxHead-q.rxConsumed >= uint64(q.cfg.Slots) {
		q.Refresh(p)
		if q.rxHead-q.rxConsumed >= uint64(q.cfg.Slots) {
			q.full++
			return 0, ErrQueueFull
		}
	}
	// Reserve the slot before the (blocking) RDMA write: several dispatcher
	// contexts may push into the same queue concurrently, and the slot
	// assignment must not be computed from a stale head after a yield.
	slot := int(q.rxHead % uint64(q.cfg.Slots))
	q.rxHead++
	if ck := q.cfg.Check; ck.Enabled() && q.rxHead-q.rxConsumed > uint64(q.cfg.Slots) {
		ck.Failf("mqueue.ring-bound", "RX overcommit: head %d consumed %d slots %d",
			q.rxHead, q.rxConsumed, q.cfg.Slots)
	}
	off := q.lay.rxSlot(q.cfg, slot)
	// The span's StagePushed is stamped when the message-bearing write is
	// DELIVERED into the RX ring, not when its completion returns to the
	// pushing context: the accelerator can consume the message as soon as
	// the doorbell lands, which under load beats the completion's way back —
	// stamping on return would let AccelRecv precede Pushed and break stage
	// monotonicity.
	stamp := q.stampPushed(payload)
	switch {
	case q.cfg.Barrier:
		// Three transactions: payload+metadata (excluding the doorbell
		// byte, which only the doorbell write may touch), barrier,
		// doorbell.
		buf := buildSlot(payload, errStatus, 0, 0)
		q.qp.Write(p, q.region, off+offError, buf[offError:])
		q.qp.Barrier(p, q.region)
		q.qp.WriteNotify(p, q.region, off+offDoorbell, []byte{1}, stamp)
	case q.cfg.NoCoalesce:
		// Two transactions: payload+metadata, then doorbell. Without a
		// barrier these may become visible out of order on relaxed
		// memory — the §5.1 hazard.
		buf := buildSlot(payload, errStatus, 0, 0)
		q.qp.Write(p, q.region, off+offError, buf[offError:])
		q.qp.WriteNotify(p, q.region, off+offDoorbell, []byte{1}, stamp)
	default:
		// One coalesced transaction; NIC DMA commits lower addresses
		// first, so a single write carrying data and notification is
		// safe on strongly ordered regions (§5.1).
		buf := buildSlot(payload, errStatus, 0, 1)
		q.qp.WriteNotify(p, q.region, off, buf, stamp)
	}
	q.pushed++
	return slot, nil
}

// QP returns the queue pair this queue's transfers ride on. Queues of one
// group share a QP, which is what lets a dispatcher quantum post writes for
// several queues under one doorbell.
func (q *Queue) QP() *rdma.QP { return q.qp }

// PushT is Push for run-to-completion tasks: k runs with the slot used (or
// the error) once the message-bearing writes complete. Flow control, slot
// reservation before any yield, checking and stamping match Push operation
// for operation, so a ported caller produces byte-identical output. k runs
// inline only on immediate validation failure.
func (q *Queue) PushT(t *sim.Task, payload []byte, errStatus byte, k func(slot int, err error)) {
	if len(payload) > q.cfg.MaxPayload() {
		k(0, fmt.Errorf("mqueue: payload %d exceeds slot capacity %d", len(payload), q.cfg.MaxPayload()))
		return
	}
	if q.rxHead-q.rxConsumed >= uint64(q.cfg.Slots) {
		q.RefreshT(t, func() {
			if q.rxHead-q.rxConsumed >= uint64(q.cfg.Slots) {
				q.full++
				k(0, ErrQueueFull)
				return
			}
			q.pushSlotT(t, payload, errStatus, k)
		})
		return
	}
	q.pushSlotT(t, payload, errStatus, k)
}

// pushSlotT reserves the next RX slot and issues the mode-dependent write
// chain (the post-flow-control body of Push, in continuation-passing form).
func (q *Queue) pushSlotT(t *sim.Task, payload []byte, errStatus byte, k func(slot int, err error)) {
	slot := int(q.rxHead % uint64(q.cfg.Slots))
	q.rxHead++
	if ck := q.cfg.Check; ck.Enabled() && q.rxHead-q.rxConsumed > uint64(q.cfg.Slots) {
		ck.Failf("mqueue.ring-bound", "RX overcommit: head %d consumed %d slots %d",
			q.rxHead, q.rxConsumed, q.cfg.Slots)
	}
	off := q.lay.rxSlot(q.cfg, slot)
	stamp := q.stampPushed(payload)
	done := func(rdma.CQE) {
		q.pushed++
		k(slot, nil)
	}
	switch {
	case q.cfg.Barrier:
		buf := buildSlot(payload, errStatus, 0, 0)
		q.qp.WriteT(t, q.region, off+offError, buf[offError:], func(rdma.CQE) {
			q.qp.BarrierT(t, q.region, func() {
				q.qp.WriteNotifyT(t, q.region, off+offDoorbell, []byte{1}, stamp, done)
			})
		})
	case q.cfg.NoCoalesce:
		buf := buildSlot(payload, errStatus, 0, 0)
		q.qp.WriteT(t, q.region, off+offError, buf[offError:], func(rdma.CQE) {
			q.qp.WriteNotifyT(t, q.region, off+offDoorbell, []byte{1}, stamp, done)
		})
	default:
		buf := buildSlot(payload, errStatus, 0, 1)
		q.qp.WriteNotifyT(t, q.region, off, buf, stamp, done)
	}
}

// PrepareWrite reserves the next RX slot and returns the coalesced work
// request that delivers payload into it, without posting. Callers collect
// WRs from several PrepareWrite calls — across all queues of a group, which
// share a QP — and post them together (rdma.PostAndWait) so a k-message
// quantum costs ceil(k/doorbell) issue charges and ceil(k/cqDrain) wakeups
// instead of k of each. Flow control (one header Refresh retry, then
// ErrQueueFull), slot reservation before any yield, ring-bound checking and
// delivery-time StagePushed stamping are identical to Push. Coalesced mode
// only: the barrier and no-coalesce ablations model per-message transaction
// splits that multi-WQE posting cannot honestly amortize.
func (q *Queue) PrepareWrite(p *sim.Proc, payload []byte, errStatus byte) (rdma.WR, int, error) {
	if q.cfg.Barrier || q.cfg.NoCoalesce {
		return rdma.WR{}, 0, fmt.Errorf("mqueue: PrepareWrite requires coalesced mode")
	}
	if len(payload) > q.cfg.MaxPayload() {
		return rdma.WR{}, 0, fmt.Errorf("mqueue: payload %d exceeds slot capacity %d", len(payload), q.cfg.MaxPayload())
	}
	if q.rxHead-q.rxConsumed >= uint64(q.cfg.Slots) {
		q.Refresh(p)
		if q.rxHead-q.rxConsumed >= uint64(q.cfg.Slots) {
			q.full++
			return rdma.WR{}, 0, ErrQueueFull
		}
	}
	slot := int(q.rxHead % uint64(q.cfg.Slots))
	q.rxHead++
	if ck := q.cfg.Check; ck.Enabled() && q.rxHead-q.rxConsumed > uint64(q.cfg.Slots) {
		ck.Failf("mqueue.ring-bound", "RX overcommit: head %d consumed %d slots %d",
			q.rxHead, q.rxConsumed, q.cfg.Slots)
	}
	q.pushed++
	return rdma.WR{
		Op:        rdma.OpWrite,
		Region:    q.region,
		Offset:    q.lay.rxSlot(q.cfg, slot),
		Data:      buildSlot(payload, errStatus, 0, 1),
		OnDeliver: q.stampPushed(payload),
	}, slot, nil
}

// PrepareWriteT is PrepareWrite for tasks. When no header refresh is needed
// (the common case — the ring has known free slots) the WR returns inline
// with ok=true and k never runs; otherwise the task parks in the refresh and
// k runs with the result. Reservation and checks match PrepareWrite exactly.
func (q *Queue) PrepareWriteT(t *sim.Task, payload []byte, errStatus byte, k func(rdma.WR, int, error)) (rdma.WR, int, error, bool) {
	if q.cfg.Barrier || q.cfg.NoCoalesce {
		return rdma.WR{}, 0, fmt.Errorf("mqueue: PrepareWrite requires coalesced mode"), true
	}
	if len(payload) > q.cfg.MaxPayload() {
		return rdma.WR{}, 0, fmt.Errorf("mqueue: payload %d exceeds slot capacity %d", len(payload), q.cfg.MaxPayload()), true
	}
	if q.rxHead-q.rxConsumed >= uint64(q.cfg.Slots) {
		q.RefreshT(t, func() {
			if q.rxHead-q.rxConsumed >= uint64(q.cfg.Slots) {
				q.full++
				k(rdma.WR{}, 0, ErrQueueFull)
				return
			}
			wr, slot := q.reserveWrite(payload, errStatus)
			k(wr, slot, nil)
		})
		return rdma.WR{}, 0, nil, false
	}
	wr, slot := q.reserveWrite(payload, errStatus)
	return wr, slot, nil, true
}

// reserveWrite reserves the next RX slot and builds its coalesced WR (the
// non-blocking tail of PrepareWrite).
func (q *Queue) reserveWrite(payload []byte, errStatus byte) (rdma.WR, int) {
	slot := int(q.rxHead % uint64(q.cfg.Slots))
	q.rxHead++
	if ck := q.cfg.Check; ck.Enabled() && q.rxHead-q.rxConsumed > uint64(q.cfg.Slots) {
		ck.Failf("mqueue.ring-bound", "RX overcommit: head %d consumed %d slots %d",
			q.rxHead, q.rxConsumed, q.cfg.Slots)
	}
	q.pushed++
	return rdma.WR{
		Op:        rdma.OpWrite,
		Region:    q.region,
		Offset:    q.lay.rxSlot(q.cfg, slot),
		Data:      buildSlot(payload, errStatus, 0, 1),
		OnDeliver: q.stampPushed(payload),
	}, slot
}

// stampPushed returns the OnDeliver hook stamping StagePushed (or, for
// replication ingest rings, StageReplPushed) for payload's span at the
// write's delivery instant; nil when the queue has no span table (keeps the
// uninstrumented push path allocation-free).
func (q *Queue) stampPushed(payload []byte) func(at sim.Time) {
	sp := q.cfg.Spans
	if rp := q.cfg.ReplSpans; rp != nil {
		id := trace.SpanID(payload)
		if id == 0 {
			return nil
		}
		return func(at sim.Time) { rp.Stamp(id, trace.StageReplPushed, at) }
	}
	if sp == nil {
		return nil
	}
	id := trace.SpanID(payload)
	if id == 0 {
		return nil
	}
	return func(at sim.Time) { sp.Stamp(id, trace.StagePushed, at) }
}

// PushAsync delivers one message like Push but does not wait for the RDMA
// write to complete — the posting context moves on immediately (hardware
// pipelines like the Innova AFU, §5.2). Only valid in the default coalesced
// mode. Flow control uses cached counters; callers should Refresh
// periodically.
func (q *Queue) PushAsync(p *sim.Proc, payload []byte, errStatus byte) (int, error) {
	if q.cfg.Barrier || q.cfg.NoCoalesce {
		return 0, fmt.Errorf("mqueue: PushAsync requires coalesced mode")
	}
	if len(payload) > q.cfg.MaxPayload() {
		return 0, fmt.Errorf("mqueue: payload %d exceeds slot capacity %d", len(payload), q.cfg.MaxPayload())
	}
	if q.rxHead-q.rxConsumed >= uint64(q.cfg.Slots) {
		q.full++
		return 0, ErrQueueFull
	}
	slot := int(q.rxHead % uint64(q.cfg.Slots))
	q.rxHead++
	if ck := q.cfg.Check; ck.Enabled() && q.rxHead-q.rxConsumed > uint64(q.cfg.Slots) {
		ck.Failf("mqueue.ring-bound", "async RX overcommit: head %d consumed %d slots %d",
			q.rxHead, q.rxConsumed, q.cfg.Slots)
	}
	off := q.lay.rxSlot(q.cfg, slot)
	q.qp.Post(p, rdma.WR{Op: rdma.OpWrite, Region: q.region, Offset: off,
		Data: buildSlot(payload, errStatus, 0, 1), OnDeliver: q.stampPushed(payload)})
	q.pushed++
	return slot, nil
}

// Refresh re-reads this queue's header counters with one RDMA READ.
func (q *Queue) Refresh(p *sim.Proc) {
	cqe := q.qp.ReadCQE(p, q.region, q.lay.hdr, 16)
	q.absorbHeader(cqe.Data, cqe.At)
}

// RefreshT is Refresh for tasks: k runs once the header read lands and the
// cached counters are updated.
func (q *Queue) RefreshT(t *sim.Task, k func()) {
	q.qp.ReadCQET(t, q.region, q.lay.hdr, 16, func(cqe rdma.CQE) {
		q.absorbHeader(cqe.Data, cqe.At)
		k()
	})
}

// absorbHeader ingests the accelerator-written half of a header block. at is
// the wire instant the READ snapshotted memory (CQE.At), not its delivery
// time: RC completions are delivered in posting order, but a transport-level
// retry (fault plan RDMAErrRate) can delay an earlier READ's wire trip past a
// later one's, so a newer snapshot may be absorbed first. A stale snapshot is
// simply dropped — absorbing it would make the monotonic counters appear to
// run backwards (the false positive PR 7 documented).
func (q *Queue) absorbHeader(raw []byte, at sim.Time) {
	if at < q.hdrAt {
		return
	}
	q.hdrAt = at
	rxConsumed := leUint64(raw[hdrRxConsumed:])
	txSeen := leUint64(raw[hdrTxSent:])
	if ck := q.cfg.Check; ck.Enabled() {
		// The accelerator's counters only ever advance, never past what the
		// SNIC produced (RX) or more than a ring beyond what it drained (TX).
		if rxConsumed < q.rxConsumed || txSeen < q.txSeen {
			ck.Failf("mqueue.counter-monotonic", "header went backwards: rxConsumed %d->%d txSeen %d->%d",
				q.rxConsumed, rxConsumed, q.txSeen, txSeen)
		}
		if rxConsumed > q.rxHead {
			ck.Failf("mqueue.counter-bound", "rxConsumed %d beyond pushed head %d", rxConsumed, q.rxHead)
		}
		if txSeen > q.txTail+uint64(q.cfg.Slots) {
			ck.Failf("mqueue.ring-bound", "TX overcommit: seen %d drained %d slots %d",
				txSeen, q.txTail, q.cfg.Slots)
		}
	}
	q.rxConsumed = rxConsumed
	q.txSeen = txSeen
}

// Ready reports whether, per the cached counters, the TX ring has messages.
func (q *Queue) Ready() bool { return q.txSeen > q.txTail }

// TxMsg is one message drained from the accelerator's TX ring.
type TxMsg struct {
	Payload []byte
	Err     byte
	Corr    uint16 // RX slot index this responds to (server queues)
	Slot    int
}

// PopTx drains the next TX message (one full-slot RDMA READ). The caller
// must have observed Ready(); it must eventually call CommitTx so the
// accelerator sees the slots freed.
func (q *Queue) PopTx(p *sim.Proc) (TxMsg, bool) {
	if !q.Ready() {
		return TxMsg{}, false
	}
	drainStart := p.Now()
	slot := int(q.txTail % uint64(q.cfg.Slots))
	off := q.lay.txSlot(q.cfg, slot)
	raw := q.qp.Read(p, q.region, off, q.cfg.SlotSize)
	if raw[offDoorbell] == 0 {
		// Counter said ready but the slot write is not visible — cannot
		// happen with local accelerator stores (strong ordering), kept as
		// a guard.
		q.cfg.Check.Failf("mqueue.doorbell-miss",
			"TX slot %d counted ready (seen %d, drained %d) but doorbell clear", slot, q.txSeen, q.txTail)
		return TxMsg{}, false
	}
	size := int(raw[offSize]) | int(raw[offSize+1])<<8
	corr := uint16(raw[offCorr]) | uint16(raw[offCorr+1])<<8
	if size > q.cfg.MaxPayload() {
		size = q.cfg.MaxPayload()
	}
	payload := make([]byte, size)
	copy(payload, raw[HeaderBytes:HeaderBytes+size])
	q.txTail++
	q.txDirty = true
	q.polled++
	if sp := q.cfg.Spans; sp != nil {
		// TX-drain wait: the response sat in the ring from its publication
		// (StageAccelSent) until this sweep reached it.
		id := trace.SpanID(payload)
		if sentAt, ok := sp.StampAt(id, trace.StageAccelSent); ok {
			sp.AddWait(id, trace.PhaseQueueing, drainStart.Sub(sentAt))
		}
	}
	return TxMsg{Payload: payload, Err: raw[offError], Corr: corr, Slot: slot}, true
}

// PopTxT is PopTx for tasks: k runs with the drained message. k runs inline
// (with ok=false) only when the cached counters show nothing ready.
func (q *Queue) PopTxT(t *sim.Task, k func(TxMsg, bool)) {
	if !q.Ready() {
		k(TxMsg{}, false)
		return
	}
	drainStart := t.Now()
	slot := int(q.txTail % uint64(q.cfg.Slots))
	off := q.lay.txSlot(q.cfg, slot)
	q.qp.ReadT(t, q.region, off, q.cfg.SlotSize, func(raw []byte) {
		if raw[offDoorbell] == 0 {
			q.cfg.Check.Failf("mqueue.doorbell-miss",
				"TX slot %d counted ready (seen %d, drained %d) but doorbell clear", slot, q.txSeen, q.txTail)
			k(TxMsg{}, false)
			return
		}
		size := int(raw[offSize]) | int(raw[offSize+1])<<8
		corr := uint16(raw[offCorr]) | uint16(raw[offCorr+1])<<8
		if size > q.cfg.MaxPayload() {
			size = q.cfg.MaxPayload()
		}
		payload := make([]byte, size)
		copy(payload, raw[HeaderBytes:HeaderBytes+size])
		q.txTail++
		q.txDirty = true
		q.polled++
		if sp := q.cfg.Spans; sp != nil {
			id := trace.SpanID(payload)
			if sentAt, ok := sp.StampAt(id, trace.StageAccelSent); ok {
				sp.AddWait(id, trace.PhaseQueueing, drainStart.Sub(sentAt))
			}
		}
		k(TxMsg{Payload: payload, Err: raw[offError], Corr: corr, Slot: slot}, true)
	})
}

// PopTxMany drains up to budget TX messages with a single RDMA READ spanning
// the contiguous run of ready slots, storing them into out and returning the
// count. The run stops at the ring wrap (the next call picks up the
// remainder), so one sweep visit costs at most two read round trips instead
// of one per message. Per-slot parsing, the doorbell-miss guard and the
// TX-drain wait booking are identical to PopTx; like PopTx, the caller must
// eventually CommitTx.
func (q *Queue) PopTxMany(p *sim.Proc, budget int, out []TxMsg) int {
	if budget > len(out) {
		budget = len(out)
	}
	if backlog := q.TxBacklog(); budget > backlog {
		budget = backlog
	}
	first := int(q.txTail % uint64(q.cfg.Slots))
	if run := q.cfg.Slots - first; budget > run {
		budget = run
	}
	if budget <= 0 {
		return 0
	}
	drainStart := p.Now()
	raw := q.qp.Read(p, q.region, q.lay.txSlot(q.cfg, first), budget*q.cfg.SlotSize)
	for i := 0; i < budget; i++ {
		sraw := raw[i*q.cfg.SlotSize:]
		if sraw[offDoorbell] == 0 {
			q.cfg.Check.Failf("mqueue.doorbell-miss",
				"TX slot %d counted ready (seen %d, drained %d) but doorbell clear",
				first+i, q.txSeen, q.txTail)
			return i
		}
		size := int(sraw[offSize]) | int(sraw[offSize+1])<<8
		corr := uint16(sraw[offCorr]) | uint16(sraw[offCorr+1])<<8
		if size > q.cfg.MaxPayload() {
			size = q.cfg.MaxPayload()
		}
		payload := make([]byte, size)
		copy(payload, sraw[HeaderBytes:HeaderBytes+size])
		q.txTail++
		q.txDirty = true
		q.polled++
		if sp := q.cfg.Spans; sp != nil {
			id := trace.SpanID(payload)
			if sentAt, ok := sp.StampAt(id, trace.StageAccelSent); ok {
				sp.AddWait(id, trace.PhaseQueueing, drainStart.Sub(sentAt))
			}
		}
		out[i] = TxMsg{Payload: payload, Err: sraw[offError], Corr: corr, Slot: first + i}
	}
	return budget
}

// PopTxManyT is PopTxMany for tasks: k runs with the number of messages
// stored into out. k runs inline (with 0) only when nothing is ready.
func (q *Queue) PopTxManyT(t *sim.Task, budget int, out []TxMsg, k func(n int)) {
	if budget > len(out) {
		budget = len(out)
	}
	if backlog := q.TxBacklog(); budget > backlog {
		budget = backlog
	}
	first := int(q.txTail % uint64(q.cfg.Slots))
	if run := q.cfg.Slots - first; budget > run {
		budget = run
	}
	if budget <= 0 {
		k(0)
		return
	}
	drainStart := t.Now()
	q.qp.ReadT(t, q.region, q.lay.txSlot(q.cfg, first), budget*q.cfg.SlotSize, func(raw []byte) {
		for i := 0; i < budget; i++ {
			sraw := raw[i*q.cfg.SlotSize:]
			if sraw[offDoorbell] == 0 {
				q.cfg.Check.Failf("mqueue.doorbell-miss",
					"TX slot %d counted ready (seen %d, drained %d) but doorbell clear",
					first+i, q.txSeen, q.txTail)
				k(i)
				return
			}
			size := int(sraw[offSize]) | int(sraw[offSize+1])<<8
			corr := uint16(sraw[offCorr]) | uint16(sraw[offCorr+1])<<8
			if size > q.cfg.MaxPayload() {
				size = q.cfg.MaxPayload()
			}
			payload := make([]byte, size)
			copy(payload, sraw[HeaderBytes:HeaderBytes+size])
			q.txTail++
			q.txDirty = true
			q.polled++
			if sp := q.cfg.Spans; sp != nil {
				id := trace.SpanID(payload)
				if sentAt, ok := sp.StampAt(id, trace.StageAccelSent); ok {
					sp.AddWait(id, trace.PhaseQueueing, drainStart.Sub(sentAt))
				}
			}
			out[i] = TxMsg{Payload: payload, Err: sraw[offError], Corr: corr, Slot: first + i}
		}
		k(budget)
	})
}

// CommitTx publishes the drained-TX counter to the accelerator (one RDMA
// WRITE), releasing the slots for reuse. No-op when nothing was drained
// since the last commit.
func (q *Queue) CommitTx(p *sim.Proc) {
	if !q.txDirty {
		return
	}
	var buf [8]byte
	putLeUint64(buf[:], q.txTail)
	q.qp.Write(p, q.region, q.lay.hdr+hdrTxConsumed, buf[:])
	q.txDirty = false
}

// CommitTxT is CommitTx for tasks: k runs once the counter write completes.
// k runs inline when nothing was drained since the last commit.
func (q *Queue) CommitTxT(t *sim.Task, k func()) {
	if !q.txDirty {
		k()
		return
	}
	var buf [8]byte
	putLeUint64(buf[:], q.txTail)
	q.qp.WriteT(t, q.region, q.lay.hdr+hdrTxConsumed, buf[:], func(rdma.CQE) {
		q.txDirty = false
		k()
	})
}

// Poll is the standalone-queue convenience: refresh if idle, drain one
// message, commit. Grouped deployments use Refresh/PopTx/CommitTx directly
// for batching.
func (q *Queue) Poll(p *sim.Proc) (TxMsg, bool) {
	if !q.Ready() {
		q.Refresh(p)
	}
	msg, ok := q.PopTx(p)
	if ok {
		q.CommitTx(p)
	}
	return msg, ok
}

// InFlight reports RX messages pushed but not yet known consumed.
func (q *Queue) InFlight() int { return int(q.rxHead - q.rxConsumed) }

// Slots reports the ring capacity per direction.
func (q *Queue) Slots() int { return q.cfg.Slots }

// TxBacklog reports TX messages the accelerator has published (per the
// cached counters) that the MQ manager has not yet drained.
func (q *Queue) TxBacklog() int { return int(q.txSeen - q.txTail) }

// Counters returns the accelerator progress counters as last refreshed: RX
// messages consumed and TX messages produced. The MQ-manager watchdog uses
// them to detect a stalled accelerator context (in-flight messages with
// neither counter advancing).
func (q *Queue) Counters() (rxConsumed, txSeen uint64) { return q.rxConsumed, q.txSeen }

// Stats reports pushes, TX messages drained, and RX-full events.
func (q *Queue) Stats() (pushed, polled, full uint64) { return q.pushed, q.polled, q.full }

func leUint64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putLeUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// ---------------------------------------------------------------------------
// Groups (one RC QP / one region per accelerator, §5.1)

// Group is the SNIC-side view of all mqueues of one accelerator: a packed
// header block plus per-queue rings, all reached through one shared QP.
type Group struct {
	cfg    Config
	region *memdev.Region
	base   int
	qp     *rdma.QP
	queues []*Queue

	refreshes uint64
	activity  *sim.Gate
}

// NewGroup lays out n queues at base within region.
func NewGroup(region *memdev.Region, base int, cfg Config, n int, qp *rdma.QP) (*Group, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("mqueue: group needs at least one queue")
	}
	if base+GroupFootprint(cfg, n) > region.Size() {
		return nil, fmt.Errorf("mqueue: group footprint %d at base %d exceeds region %d",
			GroupFootprint(cfg, n), base, region.Size())
	}
	g := &Group{cfg: cfg, region: region, base: base, qp: qp}
	ringBase := base + n*QueueHeaderBytes
	for i := 0; i < n; i++ {
		g.queues = append(g.queues, &Queue{
			cfg: cfg, region: region, qp: qp,
			lay: layout{hdr: base + i*QueueHeaderBytes, ring: ringBase + i*cfg.RingBytes()},
		})
	}
	return g, nil
}

// Len reports the number of queues.
func (g *Group) Len() int { return len(g.queues) }

// Queue returns queue i.
func (g *Group) Queue(i int) *Queue { return g.queues[i] }

// Refresh reads the whole header block in one RDMA READ and updates every
// queue's cached counters — the batching that makes polling hundreds of
// mqueues affordable.
func (g *Group) Refresh(p *sim.Proc) {
	cqe := g.qp.ReadCQE(p, g.region, g.base, len(g.queues)*QueueHeaderBytes)
	for i, q := range g.queues {
		q.absorbHeader(cqe.Data[i*QueueHeaderBytes:], cqe.At)
	}
	g.refreshes++
}

// RefreshT is Refresh for tasks: one RDMA READ covers every queue header in
// the group; k runs once all cached counters are updated.
func (g *Group) RefreshT(t *sim.Task, k func()) {
	g.qp.ReadCQET(t, g.region, g.base, len(g.queues)*QueueHeaderBytes, func(cqe rdma.CQE) {
		for i, q := range g.queues {
			q.absorbHeader(cqe.Data[i*QueueHeaderBytes:], cqe.At)
		}
		g.refreshes++
		k()
	})
}

// Refreshes reports header-block reads performed.
func (g *Group) Refreshes() uint64 { return g.refreshes }

// ActivityGate returns a gate fired whenever the accelerator writes any
// queue header of the group (publishing new TX messages or RX consumption).
// The Remote MQ Manager blocks on it between polling sweeps instead of
// spinning, then charges its polling interval on wake-up.
func (g *Group) ActivityGate() *sim.Gate {
	if g.activity == nil {
		g.activity = g.region.Watch(g.base, len(g.queues)*QueueHeaderBytes)
	}
	return g.activity
}

// ---------------------------------------------------------------------------
// Accelerator side

// AccessProfile captures how expensive the accelerator's own accesses to
// mqueue memory are: device-local for GPUs (§4.2: "the latency of enqueuing
// ... is exactly the latency of accelerator local memory access"), mapped
// host memory for the VCA workaround (§5.4).
type AccessProfile struct {
	// LocalAccess is the cost of one ring access (header or payload).
	LocalAccess time.Duration
	// PollInterval is the doorbell polling period while idle.
	PollInterval time.Duration
	// Accel names the accelerator owning the queues, for fault targeting.
	Accel string
	// Faults is the fault plan consulted on every ring access; inside a
	// stall window the accessing context freezes until the window closes.
	// Nil injects nothing.
	Faults *fault.Plan
	// Spans, when non-nil, receives accelerator-side stage timestamps
	// (RX consume, TX publish) for request-scoped tracing.
	Spans *trace.SpanTable
	// Check, when enabled, receives slot-corruption and correlation-range
	// violations observed on the accelerator side.
	Check *check.Checker
}

// AccelQueue is the accelerator-side handle: the lightweight I/O layer that
// replaces a full network stack on the accelerator (§4.3).
type AccelQueue struct {
	cfg    Config
	region *memdev.Region
	lay    layout
	prof   AccessProfile
	index  int // position within the accelerator's queue group

	rxTail uint64
	txHead uint64

	// rxGate fires when anything lands in the RX ring; txFreeGate fires
	// when the SNIC publishes TX consumption. They let the simulator block
	// the polling loops instead of executing every poll iteration; the
	// modelled polling latency is re-added on wake-up.
	rxGate     *sim.Gate
	txFreeGate *sim.Gate

	received, sent, errs uint64
}

func (aq *AccelQueue) initGates() {
	aq.rxGate = aq.region.Watch(aq.lay.rxSlot(aq.cfg, 0), aq.cfg.Slots*aq.cfg.SlotSize)
	aq.txFreeGate = aq.region.Watch(aq.lay.hdr+hdrTxConsumed, 8)
}

// Attach creates the accelerator-side view of a standalone mqueue at base.
func Attach(region *memdev.Region, base int, cfg Config, prof AccessProfile) (*AccelQueue, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if base+cfg.Footprint() > region.Size() {
		return nil, fmt.Errorf("mqueue: footprint exceeds region")
	}
	aq := &AccelQueue{cfg: cfg, region: region, prof: prof,
		lay: layout{hdr: base, ring: base + QueueHeaderBytes}}
	aq.initGates()
	return aq, nil
}

// AttachGroup creates the accelerator-side views of a queue group laid out
// by NewGroup.
func AttachGroup(region *memdev.Region, base int, cfg Config, n int, prof AccessProfile) ([]*AccelQueue, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if base+GroupFootprint(cfg, n) > region.Size() {
		return nil, fmt.Errorf("mqueue: group footprint exceeds region")
	}
	ringBase := base + n*QueueHeaderBytes
	out := make([]*AccelQueue, n)
	for i := range out {
		out[i] = &AccelQueue{cfg: cfg, region: region, prof: prof, index: i,
			lay: layout{hdr: base + i*QueueHeaderBytes, ring: ringBase + i*cfg.RingBytes()}}
		out[i].initGates()
	}
	return out, nil
}

// Msg is one received message.
type Msg struct {
	Payload []byte
	Err     byte // non-zero: SNIC-reported connection error (§5.1 metadata)
	Slot    int  // RX slot index, echoed as Corr when responding
}

// maybeStall freezes the accessing accelerator context for the remainder of
// any fault-plan stall window covering the current time — the simulated
// equivalent of a hung threadblock or VCA node. No-op without a plan.
func (aq *AccelQueue) maybeStall(p *sim.Proc) {
	for {
		d := aq.prof.Faults.StallRemaining(aq.prof.Accel, aq.index, p.Now())
		if d <= 0 {
			return
		}
		p.Sleep(d)
	}
}

// TryRecv performs one poll of the next RX slot. It charges one local
// access; if a message is present it consumes it (two further accesses:
// payload read and doorbell clear + consumed-counter update).
func (aq *AccelQueue) TryRecv(p *sim.Proc) (Msg, bool) {
	aq.maybeStall(p)
	slot := int(aq.rxTail % uint64(aq.cfg.Slots))
	off := aq.lay.rxSlot(aq.cfg, slot)
	p.Sleep(aq.prof.LocalAccess)
	if aq.region.Byte(off+offDoorbell) == 0 {
		return Msg{}, false
	}
	seen := p.Now() // doorbell observed set: RX-ring residency ends here
	p.Sleep(aq.prof.LocalAccess)
	hdr := aq.region.ReadLocal(off, HeaderBytes)
	size := int(hdr[offSize]) | int(hdr[offSize+1])<<8
	if ck := aq.prof.Check; ck.Enabled() && size > aq.cfg.MaxPayload() {
		ck.Failf("mqueue.slot-corrupt", "RX slot %d size %d exceeds capacity %d",
			slot, size, aq.cfg.MaxPayload())
	}
	payload := aq.region.ReadLocal(off+HeaderBytes, size)
	// Clear doorbell and publish consumption.
	p.Sleep(aq.prof.LocalAccess)
	aq.region.WriteLocal(off+offDoorbell, []byte{0})
	aq.rxTail++
	var cnt [8]byte
	putLeUint64(cnt[:], aq.rxTail)
	aq.region.WriteLocal(aq.lay.hdr+hdrRxConsumed, cnt[:])
	aq.received++
	if hdr[offError] != 0 {
		aq.errs++
	}
	if sp := aq.prof.Spans; sp != nil {
		id := trace.SpanID(payload)
		// RX-ring wait: from the SNIC's push (StagePushed) until this
		// context observed the doorbell; the remaining accesses are service.
		if pushedAt, ok := sp.StampAt(id, trace.StagePushed); ok {
			sp.AddWait(id, trace.PhaseQueueing, seen.Sub(pushedAt))
		}
		sp.Stamp(id, trace.StageAccelRecv, p.Now())
	}
	return Msg{Payload: payload, Err: hdr[offError], Slot: slot}, true
}

// Recv blocks until a message arrives. Semantically the accelerator polls
// its doorbell at PollInterval; the simulation blocks on the ring's write
// gate and re-adds half a polling interval of detection latency.
func (aq *AccelQueue) Recv(p *sim.Proc) Msg {
	for {
		v := aq.rxGate.Version()
		if m, ok := aq.TryRecv(p); ok {
			return m
		}
		aq.rxGate.Wait(p, v)
		p.Sleep(aq.prof.PollInterval / 2)
	}
}

// ErrRemote is the error RecvTimeout returns alongside a message whose
// metadata carries a non-zero SNIC-reported connection error status (§5.1).
var ErrRemote = errors.New("mqueue: SNIC-reported connection error")

// RecvTimeout polls until a message arrives or the deadline passes,
// following the (value, ok, err) timeout-receive idiom: ok is false on
// timeout; err is ErrRemote when the received message's metadata flags a
// SNIC-reported connection error (the message itself is still returned, with
// Msg.Err holding the raw status byte).
func (aq *AccelQueue) RecvTimeout(p *sim.Proc, d time.Duration) (Msg, bool, error) {
	deadline := p.Now().Add(d)
	for {
		v := aq.rxGate.Version()
		if m, ok := aq.TryRecv(p); ok {
			if m.Err != 0 {
				return m, true, ErrRemote
			}
			return m, true, nil
		}
		if p.Now() >= deadline {
			return Msg{}, false, nil
		}
		if !aq.rxGate.WaitTimeout(p, v, deadline.Sub(p.Now())) {
			return Msg{}, false, nil
		}
		p.Sleep(aq.prof.PollInterval / 2)
	}
}

// Send writes one message into the TX ring, blocking (by polling the
// SNIC-written consumed counter) while the ring is full. corr names the RX
// slot being answered on server queues; pass 0 on client queues.
func (aq *AccelQueue) Send(p *sim.Proc, corr uint16, payload []byte) error {
	return aq.SendErr(p, corr, payload, 0)
}

// SendErr is Send with an explicit error-status byte.
func (aq *AccelQueue) SendErr(p *sim.Proc, corr uint16, payload []byte, errStatus byte) error {
	if len(payload) > aq.cfg.MaxPayload() {
		return fmt.Errorf("mqueue: payload %d exceeds slot capacity %d", len(payload), aq.cfg.MaxPayload())
	}
	aq.maybeStall(p)
	if ck := aq.prof.Check; ck.Enabled() && aq.cfg.Kind == ServerQueue && int(corr) >= aq.cfg.Slots {
		ck.Failf("mqueue.corr-range", "response correlates to slot %d of %d", corr, aq.cfg.Slots)
	}
	// Wait for the SNIC to have freed this slot (polling the SNIC-written
	// consumed counter; blocked on its write gate in the simulator).
	var consumed uint64
	freeWaitStart := p.Now()
	for {
		v := aq.txFreeGate.Version()
		p.Sleep(aq.prof.LocalAccess)
		consumed = leUint64(aq.region.ReadLocal(aq.lay.hdr+hdrTxConsumed, 8))
		if aq.txHead-consumed < uint64(aq.cfg.Slots) {
			break
		}
		aq.txFreeGate.Wait(p, v)
		p.Sleep(aq.prof.PollInterval / 2)
	}
	if sp := aq.prof.Spans; sp != nil {
		// TX-ring backpressure: time blocked for a free slot beyond the one
		// mandatory counter read is queue wait within the execution phase.
		if blocked := p.Now().Sub(freeWaitStart) - aq.prof.LocalAccess; blocked > 0 {
			sp.AddWait(trace.SpanID(payload), trace.PhaseExec, blocked)
		}
	}
	slot := int(aq.txHead % uint64(aq.cfg.Slots))
	if ck := aq.prof.Check; ck.Enabled() && aq.txHead+1-consumed > uint64(aq.cfg.Slots) {
		ck.Failf("mqueue.ring-bound", "TX overcommit: head %d consumed %d slots %d",
			aq.txHead+1, consumed, aq.cfg.Slots)
	}
	off := aq.lay.txSlot(aq.cfg, slot)
	buf := buildSlot(payload, errStatus, corr, 1)
	p.Sleep(aq.prof.LocalAccess)
	aq.region.WriteLocal(off, buf)
	aq.txHead++
	var cnt [8]byte
	putLeUint64(cnt[:], aq.txHead)
	aq.region.WriteLocal(aq.lay.hdr+hdrTxSent, cnt[:])
	aq.sent++
	aq.prof.Spans.Stamp(trace.SpanID(payload), trace.StageAccelSent, p.Now())
	return nil
}

// Stats reports received/sent message counts and error-flagged receives.
func (aq *AccelQueue) Stats() (received, sent, errs uint64) {
	return aq.received, aq.sent, aq.errs
}
