package mqueue

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"lynx/internal/fabric"
	"lynx/internal/memdev"
	"lynx/internal/model"
	"lynx/internal/rdma"
	"lynx/internal/sim"
)

type rig struct {
	s      *sim.Sim
	params model.Params
	gpu    *fabric.Device
	eng    *rdma.Engine
	region *memdev.Region
	qp     *rdma.QP
}

func newRig(t *testing.T, relaxed bool, regionSize int) *rig {
	t.Helper()
	s := sim.New(sim.Config{Seed: 11})
	p := model.Default()
	f := fabric.New(s)
	cfg := memdev.Config{}
	if relaxed {
		cfg = memdev.Config{Relaxed: true, MaxSkew: 10 * time.Microsecond}
	}
	mem := memdev.NewMemory(s, "gpu0", regionSize+4096, true, cfg)
	nic := f.AddDevice("nic", nil)
	gpu := f.AddDevice("gpu0", mem)
	f.Connect(nic, gpu, p.PCIeLatency, p.PCIeBandwidth)
	eng := rdma.NewEngine(s, &p, f, nic)
	region := mem.MustAlloc("mq", regionSize)
	qp := eng.CreateQP(gpu, rdma.QPConfig{Kind: rdma.RC})
	return &rig{s: s, params: p, gpu: gpu, eng: eng, region: region, qp: qp}
}

func gpuProfile(p model.Params) AccessProfile {
	return AccessProfile{LocalAccess: p.GPULocalAccess, PollInterval: p.GPUPollInterval}
}

func stdCfg() Config { return Config{Kind: ServerQueue, Slots: 16, SlotSize: 128} }

func TestConfigValidation(t *testing.T) {
	r := newRig(t, false, 1<<16)
	if _, err := New(r.region, 0, Config{Slots: 0, SlotSize: 64}, r.qp); err == nil {
		t.Error("zero slots must fail")
	}
	if _, err := New(r.region, 0, Config{Slots: 4, SlotSize: HeaderBytes}, r.qp); err == nil {
		t.Error("slot smaller than header must fail")
	}
	huge := Config{Slots: 1 << 12, SlotSize: 1 << 12}
	if _, err := New(r.region, 0, huge, r.qp); err == nil {
		t.Error("footprint beyond region must fail")
	}
	if _, err := Attach(r.region, 0, huge, gpuProfile(r.params)); err == nil {
		t.Error("accel attach beyond region must fail")
	}
	c := stdCfg()
	if c.Footprint() != QueueHeaderBytes+2*16*128 {
		t.Fatalf("footprint = %d", c.Footprint())
	}
	if c.MaxPayload() != 122 {
		t.Fatalf("max payload = %d", c.MaxPayload())
	}
	if GroupFootprint(c, 4) != 4*QueueHeaderBytes+4*c.RingBytes() {
		t.Fatalf("group footprint = %d", GroupFootprint(c, 4))
	}
	if _, err := NewGroup(r.region, 0, c, 0, r.qp); err == nil {
		t.Error("empty group must fail")
	}
	if _, err := NewGroup(r.region, 0, c, 1<<10, r.qp); err == nil {
		t.Error("oversized group must fail")
	}
	if _, err := AttachGroup(r.region, 0, c, 1<<10, gpuProfile(r.params)); err == nil {
		t.Error("oversized accel group must fail")
	}
}

func TestEndToEndEcho(t *testing.T) {
	r := newRig(t, false, 1<<16)
	cfg := stdCfg()
	snicQ, err := New(r.region, 0, cfg, r.qp)
	if err != nil {
		t.Fatal(err)
	}
	accQ, err := Attach(r.region, 0, cfg, gpuProfile(r.params))
	if err != nil {
		t.Fatal(err)
	}

	const n = 50
	// Accelerator: echo back with a prefix.
	r.s.Spawn("gpu-tb", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m := accQ.Recv(p)
			resp := append([]byte("r:"), m.Payload...)
			if err := accQ.Send(p, uint16(m.Slot), resp); err != nil {
				t.Error(err)
				return
			}
		}
	})
	var got [][]byte
	r.s.Spawn("snic", func(p *sim.Proc) {
		next := 0
		for len(got) < n {
			if next < n {
				if _, err := snicQ.Push(p, []byte(fmt.Sprintf("msg-%02d", next)), 0); err == nil {
					next++
					continue
				}
			}
			if msg, ok := snicQ.Poll(p); ok {
				got = append(got, msg.Payload)
			} else {
				p.Sleep(r.params.MQPollInterval)
			}
		}
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	if len(got) != n {
		t.Fatalf("got %d responses, want %d", len(got), n)
	}
	for i, g := range got {
		want := fmt.Sprintf("r:msg-%02d", i)
		if string(g) != want {
			t.Fatalf("response %d = %q, want %q", i, g, want)
		}
	}
	pushed, polled, _ := snicQ.Stats()
	if pushed != n || polled != n {
		t.Fatalf("stats pushed=%d polled=%d", pushed, polled)
	}
}

func TestRingFullBackpressure(t *testing.T) {
	r := newRig(t, false, 1<<16)
	cfg := Config{Kind: ServerQueue, Slots: 4, SlotSize: 64}
	snicQ, _ := New(r.region, 0, cfg, r.qp)
	r.s.Spawn("snic", func(p *sim.Proc) {
		// Nobody consumes: the 5th push must fail.
		for i := 0; i < 4; i++ {
			if _, err := snicQ.Push(p, []byte{byte(i)}, 0); err != nil {
				t.Errorf("push %d: %v", i, err)
			}
		}
		if _, err := snicQ.Push(p, []byte{9}, 0); err != ErrQueueFull {
			t.Errorf("push into full ring: %v", err)
		}
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	_, _, full := snicQ.Stats()
	if full != 1 {
		t.Fatalf("full events = %d", full)
	}
}

func TestRingFullRecoversAfterConsumption(t *testing.T) {
	r := newRig(t, false, 1<<16)
	cfg := Config{Kind: ServerQueue, Slots: 2, SlotSize: 64}
	snicQ, _ := New(r.region, 0, cfg, r.qp)
	accQ, _ := Attach(r.region, 0, cfg, gpuProfile(r.params))
	var consumed int
	r.s.Spawn("gpu", func(p *sim.Proc) {
		p.Sleep(100 * time.Microsecond) // let the ring fill first
		for i := 0; i < 3; i++ {
			accQ.Recv(p)
			consumed++
		}
	})
	r.s.Spawn("snic", func(p *sim.Proc) {
		snicQ.Push(p, []byte{1}, 0)
		snicQ.Push(p, []byte{2}, 0)
		if _, err := snicQ.Push(p, []byte{3}, 0); err != ErrQueueFull {
			t.Errorf("expected full, got %v", err)
		}
		p.Sleep(200 * time.Microsecond)
		// GPU consumed: the retry must succeed (consumed counter refresh).
		if _, err := snicQ.Push(p, []byte{3}, 0); err != nil {
			t.Errorf("push after drain: %v", err)
		}
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	if consumed != 3 {
		t.Fatalf("consumed = %d", consumed)
	}
}

func TestErrorStatusPropagates(t *testing.T) {
	r := newRig(t, false, 1<<16)
	cfg := stdCfg()
	snicQ, _ := New(r.region, 0, cfg, r.qp)
	accQ, _ := Attach(r.region, 0, cfg, gpuProfile(r.params))
	var got Msg
	r.s.Spawn("gpu", func(p *sim.Proc) { got = accQ.Recv(p) })
	r.s.Spawn("snic", func(p *sim.Proc) {
		// §5.1: the SNIC reports detected connection errors in metadata.
		snicQ.Push(p, []byte("conn reset"), 0x7)
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	if got.Err != 0x7 || string(got.Payload) != "conn reset" {
		t.Fatalf("msg = %+v", got)
	}
	_, _, errs := accQ.Stats()
	if errs != 1 {
		t.Fatalf("error receives = %d", errs)
	}
}

// Coalescing ablation: default mode must use exactly 1 RDMA op per push,
// NoCoalesce 2, Barrier 3.
func TestRDMAOpsPerPush(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want uint64
	}{
		{"coalesced", Config{Slots: 8, SlotSize: 64}, 1},
		{"no-coalesce", Config{Slots: 8, SlotSize: 64, NoCoalesce: true}, 2},
		{"barrier", Config{Slots: 8, SlotSize: 64, Barrier: true}, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, false, 1<<16)
			snicQ, _ := New(r.region, 0, tc.cfg, r.qp)
			r.s.Spawn("snic", func(p *sim.Proc) {
				snicQ.Push(p, []byte("x"), 0)
			})
			r.s.RunUntil(sim.Time(time.Second))
			r.s.Shutdown()
			if got := r.eng.Ops(); got != tc.want {
				t.Fatalf("RDMA ops per push = %d, want %d", got, tc.want)
			}
		})
	}
}

// §5.1: the barrier workaround costs ~5 µs extra per message.
func TestBarrierOverheadNearFiveMicros(t *testing.T) {
	measure := func(cfg Config) time.Duration {
		r := newRig(t, false, 1<<16)
		snicQ, _ := New(r.region, 0, cfg, r.qp)
		var elapsed time.Duration
		r.s.Spawn("snic", func(p *sim.Proc) {
			start := p.Now()
			for i := 0; i < 10; i++ {
				if _, err := snicQ.Push(p, make([]byte, 20), 0); err != nil {
					t.Error(err)
				}
			}
			elapsed = p.Now().Sub(start) / 10
		})
		r.s.RunUntil(sim.Time(time.Second))
		r.s.Shutdown()
		return elapsed
	}
	fast := measure(Config{Slots: 16, SlotSize: 64})
	slow := measure(Config{Slots: 16, SlotSize: 64, Barrier: true})
	extra := slow - fast
	if extra < 3500*time.Nanosecond || extra > 7*time.Microsecond {
		t.Fatalf("barrier adds %v per message, paper measures ~5µs", extra)
	}
}

// Failure injection: on relaxed-ordering memory, separate payload/doorbell
// writes without a barrier corrupt some messages; the barrier fixes it.
func TestRelaxedOrderingCorruptionAndFix(t *testing.T) {
	run := func(cfg Config) (corrupted, total int) {
		r := newRig(t, true, 1<<16)
		snicQ, _ := New(r.region, 0, cfg, r.qp)
		accQ, _ := Attach(r.region, 0, cfg, gpuProfile(r.params))
		const n = 150
		payload := func(i int) []byte { return []byte(fmt.Sprintf("msg%05d", i)) }
		r.s.Spawn("gpu", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				m := accQ.Recv(p)
				total++
				if !bytes.Equal(m.Payload, payload(i)) {
					corrupted++
				}
			}
		})
		r.s.Spawn("snic", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				for {
					_, err := snicQ.Push(p, payload(i), 0)
					if err == nil {
						break
					}
					p.Sleep(5 * time.Microsecond)
				}
			}
		})
		r.s.RunUntil(sim.Time(time.Second))
		r.s.Shutdown()
		return corrupted, total
	}
	corrupt, total := run(Config{Slots: 16, SlotSize: 64, NoCoalesce: true})
	if total != 150 {
		t.Fatalf("hazard run delivered %d/150", total)
	}
	if corrupt == 0 {
		t.Fatal("expected some corrupted messages without the barrier on relaxed memory")
	}
	fixed, totalFixed := run(Config{Slots: 16, SlotSize: 64, Barrier: true})
	if totalFixed != 150 || fixed != 0 {
		t.Fatalf("barrier run: %d corrupted of %d", fixed, totalFixed)
	}
}

// Property: for any payload sequence, the accelerator receives exactly the
// pushed payloads in order, and responses return in order with correct
// correlation slots.
func TestIntegrityProperty(t *testing.T) {
	prop := func(seed uint16, count uint8) bool {
		n := int(count)%40 + 1
		r := newRig(t, false, 1<<16)
		cfg := Config{Kind: ServerQueue, Slots: 8, SlotSize: 96}
		snicQ, _ := New(r.region, 0, cfg, r.qp)
		accQ, _ := Attach(r.region, 0, cfg, gpuProfile(r.params))
		mkPayload := func(i int) []byte {
			sz := (int(seed)+i*7)%cfg.MaxPayload() + 1
			buf := make([]byte, sz)
			for j := range buf {
				buf[j] = byte(int(seed) + i + j)
			}
			return buf
		}
		ok := true
		r.s.Spawn("gpu", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				m := accQ.Recv(p)
				if !bytes.Equal(m.Payload, mkPayload(i)) {
					ok = false
				}
				accQ.Send(p, uint16(m.Slot), m.Payload)
			}
		})
		done := false
		r.s.Spawn("snic", func(p *sim.Proc) {
			sent, rcvd := 0, 0
			for rcvd < n {
				if sent < n {
					if _, err := snicQ.Push(p, mkPayload(sent), 0); err == nil {
						sent++
						continue
					}
				}
				if msg, polled := snicQ.Poll(p); polled {
					if !bytes.Equal(msg.Payload, mkPayload(rcvd)) {
						ok = false
					}
					if int(msg.Corr) != rcvd%cfg.Slots {
						ok = false
					}
					rcvd++
				} else {
					p.Sleep(time.Microsecond)
				}
			}
			done = true
		})
		r.s.RunUntil(sim.Time(time.Second))
		r.s.Shutdown()
		return ok && done
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	r := newRig(t, false, 1<<16)
	cfg := Config{Slots: 4, SlotSize: 32}
	snicQ, _ := New(r.region, 0, cfg, r.qp)
	accQ, _ := Attach(r.region, 0, cfg, gpuProfile(r.params))
	r.s.Spawn("x", func(p *sim.Proc) {
		if _, err := snicQ.Push(p, make([]byte, 27), 0); err == nil {
			t.Error("oversize push must fail")
		}
		if err := accQ.Send(p, 0, make([]byte, 27)); err == nil {
			t.Error("oversize send must fail")
		}
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
}

// Two mqueues sharing one region and one QP (the paper's one-RC-QP-per-
// accelerator coalescing, §5.1) must not interfere.
func TestMultipleQueuesShareRegionAndQP(t *testing.T) {
	r := newRig(t, false, 1<<17)
	cfg := Config{Kind: ServerQueue, Slots: 8, SlotSize: 64}
	base2 := cfg.Footprint()
	q1, _ := New(r.region, 0, cfg, r.qp)
	q2, _ := New(r.region, base2, cfg, r.qp)
	a1, _ := Attach(r.region, 0, cfg, gpuProfile(r.params))
	a2, _ := Attach(r.region, base2, cfg, gpuProfile(r.params))
	var got1, got2 []byte
	r.s.Spawn("tb1", func(p *sim.Proc) { got1 = a1.Recv(p).Payload })
	r.s.Spawn("tb2", func(p *sim.Proc) { got2 = a2.Recv(p).Payload })
	r.s.Spawn("snic", func(p *sim.Proc) {
		q1.Push(p, []byte("one"), 0)
		q2.Push(p, []byte("two"), 0)
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	if string(got1) != "one" || string(got2) != "two" {
		t.Fatalf("got1=%q got2=%q", got1, got2)
	}
}

func TestRecvTimeout(t *testing.T) {
	r := newRig(t, false, 1<<16)
	cfg := stdCfg()
	accQ, _ := Attach(r.region, 0, cfg, gpuProfile(r.params))
	var ok bool
	var waited time.Duration
	r.s.Spawn("gpu", func(p *sim.Proc) {
		start := p.Now()
		_, ok, _ = accQ.RecvTimeout(p, 50*time.Microsecond)
		waited = p.Now().Sub(start)
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	if ok {
		t.Fatal("unexpected message")
	}
	if waited < 50*time.Microsecond || waited > 60*time.Microsecond {
		t.Fatalf("waited %v, want ~50µs", waited)
	}
}

func TestKindStringsAndAccessors(t *testing.T) {
	if ServerQueue.String() != "server" || ClientQueue.String() != "client" {
		t.Fatal("kind strings wrong")
	}
	r := newRig(t, false, 1<<16)
	cfg := stdCfg()
	q, _ := New(r.region, 0, cfg, r.qp)
	if q.Config() != cfg {
		t.Fatal("Config accessor wrong")
	}
	if q.InFlight() != 0 {
		t.Fatal("fresh queue has in-flight messages")
	}
	r.s.Spawn("x", func(p *sim.Proc) {
		q.Push(p, []byte("a"), 0)
		if q.InFlight() != 1 {
			t.Error("in-flight after push")
		}
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
}

// PushAsync (the Innova fast path): posted delivery, cached flow control.
func TestPushAsync(t *testing.T) {
	r := newRig(t, false, 1<<16)
	cfg := Config{Slots: 4, SlotSize: 64}
	q, _ := New(r.region, 0, cfg, r.qp)
	aq, _ := Attach(r.region, 0, cfg, gpuProfile(r.params))
	var got []byte
	r.s.Spawn("gpu", func(p *sim.Proc) {
		m := aq.Recv(p)
		got = m.Payload
	})
	r.s.Spawn("snic", func(p *sim.Proc) {
		if _, err := q.PushAsync(p, []byte("posted"), 0); err != nil {
			t.Error(err)
		}
		// Fill the ring: the 5th push must fail on cached counters alone
		// (no RDMA read).
		for i := 0; i < 3; i++ {
			if _, err := q.PushAsync(p, []byte{byte(i)}, 0); err != nil {
				t.Errorf("push %d: %v", i, err)
			}
		}
		if _, err := q.PushAsync(p, []byte{9}, 0); err != ErrQueueFull {
			t.Errorf("full ring: %v", err)
		}
		// Barrier/NoCoalesce modes reject async pushes.
		bq, _ := New(r.region, cfg.Footprint(), Config{Slots: 4, SlotSize: 64, Barrier: true}, r.qp)
		if _, err := bq.PushAsync(p, []byte{1}, 0); err == nil {
			t.Error("PushAsync must reject barrier mode")
		}
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	if string(got) != "posted" {
		t.Fatalf("got %q", got)
	}
}

func TestGroupActivityGate(t *testing.T) {
	r := newRig(t, false, 1<<18)
	cfg := Config{Slots: 8, SlotSize: 64}
	g, _ := NewGroup(r.region, 0, cfg, 2, r.qp)
	accQs, _ := AttachGroup(r.region, 0, cfg, 2, gpuProfile(r.params))
	gate := g.ActivityGate()
	if g.ActivityGate() != gate {
		t.Fatal("gate must be cached")
	}
	woken := false
	r.s.Spawn("manager", func(p *sim.Proc) {
		v := gate.Version()
		gate.Wait(p, v)
		woken = true
	})
	r.s.Spawn("gpu", func(p *sim.Proc) {
		p.Sleep(5 * time.Microsecond)
		accQs[1].Send(p, 0, []byte("out")) // txSent header write fires the gate
	})
	r.s.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return woken })
	r.s.Shutdown()
	if !woken {
		t.Fatal("activity gate never fired on a TX send")
	}
}

// drainAll runs an echo flow over a 4-slot ring and returns every response in
// drain order. With budget 0 it drains one message at a time via PopTx; with
// budget > 0 it drains runs via PopTxMany. The ring wraps several times, so
// the run-stops-at-wrap behavior of PopTxMany is exercised.
func drainAll(t *testing.T, total, budget int) []TxMsg {
	t.Helper()
	r := newRig(t, false, 1<<16)
	cfg := Config{Kind: ServerQueue, Slots: 4, SlotSize: 128}
	snicQ, err := New(r.region, 0, cfg, r.qp)
	if err != nil {
		t.Fatal(err)
	}
	accQ, err := Attach(r.region, 0, cfg, gpuProfile(r.params))
	if err != nil {
		t.Fatal(err)
	}
	r.s.Spawn("gpu-tb", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			m := accQ.Recv(p)
			if err := accQ.Send(p, uint16(m.Slot), append([]byte("r:"), m.Payload...)); err != nil {
				t.Error(err)
				return
			}
		}
	})
	var got []TxMsg
	r.s.Spawn("snic", func(p *sim.Proc) {
		next := 0
		buf := make([]TxMsg, 8)
		for len(got) < total {
			if next < total {
				if _, err := snicQ.Push(p, []byte(fmt.Sprintf("msg-%02d", next)), 0); err == nil {
					next++
					continue
				}
			}
			if !snicQ.Ready() {
				snicQ.Refresh(p)
			}
			drained := false
			if budget > 0 {
				for snicQ.Ready() {
					k := snicQ.PopTxMany(p, budget, buf)
					if k == 0 {
						break
					}
					got = append(got, buf[:k]...)
					drained = true
				}
			} else {
				for {
					m, ok := snicQ.PopTx(p)
					if !ok {
						break
					}
					got = append(got, m)
					drained = true
				}
			}
			snicQ.CommitTx(p)
			if !drained {
				p.Sleep(r.params.MQPollInterval)
			}
		}
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	return got
}

// PopTxMany must produce exactly the message sequence PopTx produces —
// payloads, error bytes, correlators and slots — across ring wraparounds.
func TestPopTxManyMatchesPopTx(t *testing.T) {
	const total = 11
	single := drainAll(t, total, 0)
	for _, budget := range []int{1, 3, 8} {
		batched := drainAll(t, total, budget)
		if len(single) != total || len(batched) != total {
			t.Fatalf("budget %d: drained %d single vs %d batched, want %d", budget, len(single), len(batched), total)
		}
		for i := range single {
			s, b := single[i], batched[i]
			if !bytes.Equal(s.Payload, b.Payload) || s.Err != b.Err || s.Corr != b.Corr || s.Slot != b.Slot {
				t.Fatalf("budget %d: message %d differs: single %+v vs batched %+v", budget, i, s, b)
			}
		}
	}
}

// PrepareWrite + PostAndWait is the batched push path: the payload WQEs of a
// whole dispatch quantum go out under shared doorbells, yet every message is
// delivered intact and in order.
func TestPrepareWritePostAndWaitDelivers(t *testing.T) {
	r := newRig(t, false, 1<<16)
	cfg := stdCfg()
	snicQ, err := New(r.region, 0, cfg, r.qp)
	if err != nil {
		t.Fatal(err)
	}
	accQ, err := Attach(r.region, 0, cfg, gpuProfile(r.params))
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	var recvd [][]byte
	r.s.Spawn("gpu-tb", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m := accQ.Recv(p)
			recvd = append(recvd, append([]byte(nil), m.Payload...))
		}
	})
	r.s.Spawn("snic", func(p *sim.Proc) {
		wrs := make([]rdma.WR, 0, n)
		for i := 0; i < n; i++ {
			wr, _, err := snicQ.PrepareWrite(p, []byte(fmt.Sprintf("batched-%d", i)), 0)
			if err != nil {
				t.Error(err)
				return
			}
			wrs = append(wrs, wr)
		}
		snicQ.QP().PostAndWait(p, wrs, 4, 3)
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	if len(recvd) != n {
		t.Fatalf("accelerator received %d messages, want %d", len(recvd), n)
	}
	for i, g := range recvd {
		if want := fmt.Sprintf("batched-%d", i); string(g) != want {
			t.Fatalf("message %d = %q, want %q", i, g, want)
		}
	}
	pushed, _, _ := snicQ.Stats()
	if pushed != n {
		t.Fatalf("pushed = %d, want %d", pushed, n)
	}
}
