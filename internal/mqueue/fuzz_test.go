package mqueue

import (
	"bytes"
	"testing"
	"time"

	"lynx/internal/check"
	"lynx/internal/sim"
)

// FuzzRingWraparound echoes a fuzz-chosen number of fuzz-sized payloads
// through a fuzz-shaped (but always small) ring, guaranteeing several full
// ring revolutions, with the mqueue invariant checks armed. Whatever the
// geometry, every payload must survive byte-identical and in FIFO order,
// every response must correlate to the right RX slot, and no ring-bounds or
// sequence invariant may trip.
func FuzzRingWraparound(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(24), []byte{1, 9, 40, 95, 2, 7})
	f.Add(uint8(3), uint8(1), uint8(50), []byte{0, 0, 0, 0, 0})
	f.Add(uint8(6), uint8(3), uint8(9), []byte{255, 128, 64, 32, 16, 8, 4, 2})
	f.Fuzz(func(t *testing.T, slotsRaw, sizeRaw, countRaw uint8, szs []byte) {
		if len(szs) == 0 {
			return
		}
		slots := 2 + int(slotsRaw)%7 // 2..8: small rings wrap quickly
		slotSize := HeaderBytes + 9 + int(sizeRaw)%56
		n := slots*2 + int(countRaw)%48 // always beyond one revolution
		ck := check.New()
		cfg := Config{Kind: ServerQueue, Slots: slots, SlotSize: slotSize, Check: ck}
		r := newRig(t, false, 1<<16)
		snicQ, err := New(r.region, 0, cfg, r.qp)
		if err != nil {
			t.Fatal(err)
		}
		prof := gpuProfile(r.params)
		prof.Check = ck
		accQ, err := Attach(r.region, 0, cfg, prof)
		if err != nil {
			t.Fatal(err)
		}
		payload := func(i int) []byte {
			sz := int(szs[i%len(szs)])%cfg.MaxPayload() + 1
			buf := make([]byte, sz)
			for j := range buf {
				buf[j] = byte(i + j)
			}
			return buf
		}
		r.s.Spawn("gpu", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				m := accQ.Recv(p)
				if err := accQ.Send(p, uint16(m.Slot), m.Payload); err != nil {
					t.Error(err)
					return
				}
			}
		})
		rcvd := 0
		var rxConsumed, txSeen uint64
		r.s.Spawn("snic", func(p *sim.Proc) {
			sent := 0
			for rcvd < n {
				if sent < n {
					if _, err := snicQ.Push(p, payload(sent), 0); err == nil {
						sent++
						continue
					}
				}
				if msg, ok := snicQ.Poll(p); ok {
					if !bytes.Equal(msg.Payload, payload(rcvd)) {
						t.Errorf("response %d corrupted (%d bytes)", rcvd, len(msg.Payload))
					}
					if int(msg.Corr) != rcvd%slots {
						t.Errorf("response %d correlates RX slot %d, want %d", rcvd, msg.Corr, rcvd%slots)
					}
					rcvd++
				} else {
					p.Sleep(time.Microsecond)
				}
			}
			snicQ.Refresh(p)
			rxConsumed, txSeen = snicQ.Counters()
		})
		r.s.RunUntil(sim.Time(time.Second))
		r.s.Shutdown()
		if rcvd != n {
			t.Fatalf("echoed %d of %d messages (slots=%d slotSize=%d)", rcvd, n, slots, slotSize)
		}
		if rxConsumed != uint64(n) || txSeen != uint64(n) {
			t.Fatalf("counters rxConsumed=%d txSeen=%d after %d echoes", rxConsumed, txSeen, n)
		}
		if rep := ck.Finalize(); !rep.OK() {
			t.Fatalf("mqueue invariants violated (slots=%d slotSize=%d n=%d):\n%s",
				slots, slotSize, n, rep)
		}
	})
}
