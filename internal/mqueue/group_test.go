package mqueue

import (
	"fmt"
	"testing"
	"time"

	"lynx/internal/sim"
)

// A full group round trip: n echo threadblocks, batched SNIC polling.
func TestGroupEndToEnd(t *testing.T) {
	r := newRig(t, false, 1<<20)
	cfg := Config{Kind: ServerQueue, Slots: 8, SlotSize: 96}
	const nq, perQ = 6, 10
	g, err := NewGroup(r.region, 0, cfg, nq, r.qp)
	if err != nil {
		t.Fatal(err)
	}
	accQs, err := AttachGroup(r.region, 0, cfg, nq, gpuProfile(r.params))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != nq {
		t.Fatalf("group len %d", g.Len())
	}
	for i, aq := range accQs {
		i, aq := i, aq
		r.s.Spawn(fmt.Sprintf("tb%d", i), func(p *sim.Proc) {
			for n := 0; n < perQ; n++ {
				m := aq.Recv(p)
				resp := append([]byte{byte('A' + i)}, m.Payload...)
				if err := aq.Send(p, uint16(m.Slot), resp); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	got := make([][]string, nq)
	r.s.Spawn("snic", func(p *sim.Proc) {
		sent := 0
		total := 0
		for total < nq*perQ {
			// Dispatch round-robin across queues.
			if sent < nq*perQ {
				qi := sent % nq
				if _, err := g.Queue(qi).Push(p, []byte(fmt.Sprintf("m%d", sent/nq)), 0); err == nil {
					sent++
				}
			}
			// Batched poll sweep: one header-block read for all queues.
			g.Refresh(p)
			for qi := 0; qi < nq; qi++ {
				q := g.Queue(qi)
				for {
					msg, ok := q.PopTx(p)
					if !ok {
						break
					}
					got[qi] = append(got[qi], string(msg.Payload))
					total++
				}
				q.CommitTx(p)
			}
		}
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	for qi := 0; qi < nq; qi++ {
		if len(got[qi]) != perQ {
			t.Fatalf("queue %d: %d messages, want %d", qi, len(got[qi]), perQ)
		}
		for j, m := range got[qi] {
			want := fmt.Sprintf("%cm%d", 'A'+qi, j)
			if m != want {
				t.Fatalf("queue %d msg %d = %q, want %q", qi, j, m, want)
			}
		}
	}
}

// The point of grouping: polling n idle queues costs one RDMA op, not n.
func TestGroupRefreshIsOneOp(t *testing.T) {
	r := newRig(t, false, 1<<20)
	cfg := Config{Slots: 8, SlotSize: 64}
	g, _ := NewGroup(r.region, 0, cfg, 240, r.qp)
	r.s.Spawn("snic", func(p *sim.Proc) {
		g.Refresh(p)
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	if ops := r.eng.Ops(); ops != 1 {
		t.Fatalf("refreshing 240 queues took %d RDMA ops, want 1", ops)
	}
	if g.Refreshes() != 1 {
		t.Fatalf("refreshes = %d", g.Refreshes())
	}
}

// Amortized drain cost: one refresh + per-message slot read + one commit per
// queue.
func TestGroupDrainOpCount(t *testing.T) {
	r := newRig(t, false, 1<<20)
	cfg := Config{Slots: 8, SlotSize: 64}
	const nq = 4
	g, _ := NewGroup(r.region, 0, cfg, nq, r.qp)
	accQs, _ := AttachGroup(r.region, 0, cfg, nq, gpuProfile(r.params))
	r.s.Spawn("gpu", func(p *sim.Proc) {
		for _, aq := range accQs {
			aq.Send(p, 0, []byte("out"))
		}
	})
	var before, after uint64
	r.s.Spawn("snic", func(p *sim.Proc) {
		p.Sleep(100 * time.Microsecond) // let the accelerator produce
		before = r.eng.Ops()
		g.Refresh(p)
		for i := 0; i < nq; i++ {
			q := g.Queue(i)
			for {
				if _, ok := q.PopTx(p); !ok {
					break
				}
			}
			q.CommitTx(p)
		}
		after = r.eng.Ops()
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	// 1 refresh + nq slot reads + nq commits.
	if got := after - before; got != 1+2*nq {
		t.Fatalf("drain of %d messages took %d ops, want %d", nq, got, 1+2*nq)
	}
}

// TX backpressure: with a full TX ring the accelerator's Send blocks until
// the SNIC commits consumption.
func TestGroupTxBackpressure(t *testing.T) {
	r := newRig(t, false, 1<<20)
	cfg := Config{Slots: 2, SlotSize: 64}
	g, _ := NewGroup(r.region, 0, cfg, 1, r.qp)
	accQs, _ := AttachGroup(r.region, 0, cfg, 1, gpuProfile(r.params))
	aq := accQs[0]
	var thirdSendAt, drainAt sim.Time
	r.s.Spawn("gpu", func(p *sim.Proc) {
		aq.Send(p, 0, []byte("a"))
		aq.Send(p, 0, []byte("b"))
		aq.Send(p, 0, []byte("c")) // blocks until SNIC drains
		thirdSendAt = p.Now()
	})
	r.s.Spawn("snic", func(p *sim.Proc) {
		p.Sleep(500 * time.Microsecond)
		drainAt = p.Now()
		q := g.Queue(0)
		q.Refresh(p)
		for {
			if _, ok := q.PopTx(p); !ok {
				break
			}
		}
		q.CommitTx(p)
	})
	r.s.RunUntil(sim.Time(time.Second))
	r.s.Shutdown()
	if thirdSendAt < drainAt {
		t.Fatalf("third Send completed at %v before SNIC drain at %v", thirdSendAt, drainAt)
	}
}
