// Package accel models the compute accelerators Lynx drives: NVIDIA GPUs
// (K40m/K80) running persistent kernels or host-launched CUDA streams, and
// the Intel Visual Compute Accelerator with its three E3/SGX nodes.
//
// Accelerators expose two things to the rest of the system:
//
//   - a fabric.Device with BAR-mapped memory, which is all the Remote MQ
//     Manager needs (the SNIC runs no accelerator driver, §4.5), and
//   - an mqueue.AccessProfile describing the cost of the accelerator's own
//     accesses to mqueue memory.
package accel

import (
	"fmt"
	"time"

	"lynx/internal/fabric"
	"lynx/internal/fault"
	"lynx/internal/memdev"
	"lynx/internal/model"
	"lynx/internal/mqueue"
	"lynx/internal/sim"
)

// Accelerator is the device-agnostic view Lynx manages (§4.5: portability).
type Accelerator interface {
	// Name identifies the accelerator.
	Name() string
	// Device returns the PCIe endpoint with the accelerator's BAR-mapped
	// memory in which mqueues are allocated.
	Device() *fabric.Device
	// Profile describes accelerator-side mqueue access costs.
	Profile() mqueue.AccessProfile
	// RemoteHost names the machine the accelerator lives in; empty when it
	// shares the SNIC's PCIe fabric (local).
	RemoteHost() string
}

// ---------------------------------------------------------------------------
// GPU

// GPUModel selects calibrated per-model characteristics.
type GPUModel int

const (
	// K40m is the NVIDIA Tesla K40m (240 resident threadblocks, §6.2).
	K40m GPUModel = iota
	// K80Half is one GK210 half of a Tesla K80 (slower; 3.3 K LeNet req/s
	// at most, §6.3).
	K80Half
)

// String names the model.
func (m GPUModel) String() string {
	if m == K80Half {
		return "K80"
	}
	return "K40m"
}

// GPU models one CUDA device.
type GPU struct {
	name   string
	modelK GPUModel
	dev    *fabric.Device
	params *model.Params
	driver *Driver
	remote string
	faults *fault.Plan

	maxTB    int
	resident int
	// exclusive serializes whole-GPU kernels (a LeNet inference saturates
	// the device, so concurrent inferences serialize, §6.3).
	exclusive *sim.Resource

	launches uint64
	busyTime time.Duration
}

// GPUConfig parameterizes NewGPU.
type GPUConfig struct {
	Model GPUModel
	// MemBytes is the device memory capacity (only mqueue footprints are
	// allocated from it in this simulation).
	MemBytes int
	// Relaxed marks the device memory as weakly ordered for incoming DMA
	// (the real K40m behaviour that motivates §5.1's barrier).
	Relaxed bool
	// MaxSkew bounds DMA visibility skew when Relaxed.
	MaxSkew time.Duration
	// RemoteHost marks the GPU as living in another machine, reached via
	// that machine's RDMA NIC (§5.5).
	RemoteHost string
	// Faults is the fault plan stalling this GPU's mqueue accesses inside
	// configured windows (nil injects nothing).
	Faults *fault.Plan
}

// NewGPU creates a GPU, attaches it to the fabric, and returns it. driver is
// the host driver instance used for host-centric stream operations (may be
// shared by several GPUs in one host, which is exactly the §6.2 bottleneck).
func NewGPU(s *sim.Sim, p *model.Params, fab *fabric.Fabric, driver *Driver, name string, cfg GPUConfig) *GPU {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 1 << 26
	}
	mem := memdev.NewMemory(s, name, cfg.MemBytes, true, memdev.Config{
		Relaxed: cfg.Relaxed, MaxSkew: cfg.MaxSkew,
	})
	dev := fab.AddDevice(name, mem)
	maxTB := p.GPUMaxThreadblocks
	if cfg.Model == K80Half {
		maxTB = 208
	}
	return &GPU{
		name:      name,
		modelK:    cfg.Model,
		dev:       dev,
		params:    p,
		driver:    driver,
		remote:    cfg.RemoteHost,
		faults:    cfg.Faults,
		maxTB:     maxTB,
		exclusive: sim.NewResource(s, 1),
	}
}

// Name implements Accelerator.
func (g *GPU) Name() string { return g.name }

// Device implements Accelerator.
func (g *GPU) Device() *fabric.Device { return g.dev }

// RemoteHost implements Accelerator.
func (g *GPU) RemoteHost() string { return g.remote }

// Model returns the GPU model.
func (g *GPU) Model() GPUModel { return g.modelK }

// Profile implements Accelerator: GPU-side mqueue accesses are device-local
// loads/stores from the persistent kernel (§4.2).
func (g *GPU) Profile() mqueue.AccessProfile {
	return mqueue.AccessProfile{
		LocalAccess:  g.params.GPULocalAccess,
		PollInterval: g.params.GPUPollInterval,
		Accel:        g.name,
		Faults:       g.faults,
	}
}

// MaxThreadblocks reports the persistent-kernel residency limit.
func (g *GPU) MaxThreadblocks() int { return g.maxTB }

// TB is the context of one persistent-kernel threadblock.
type TB struct {
	gpu   *GPU
	index int
	proc  *sim.Proc
}

// Index returns the threadblock index.
func (tb *TB) Index() int { return tb.index }

// Proc returns the simulation process the threadblock runs on.
func (tb *TB) Proc() *sim.Proc { return tb.proc }

// GPU returns the owning device.
func (tb *TB) GPU() *GPU { return tb.gpu }

// Compute charges d of threadblock-local execution (a kernel body that
// occupies only this TB, like the paper's microbenchmark delay kernels).
func (tb *TB) Compute(d time.Duration) {
	tb.gpu.busyTime += d
	tb.proc.Sleep(d)
}

// RunExclusive charges d of whole-GPU execution: concurrent exclusive
// kernels serialize on the device. Used for LeNet-class kernels.
func (tb *TB) RunExclusive(d time.Duration) {
	tb.gpu.exclusive.Acquire(tb.proc)
	tb.gpu.busyTime += d
	tb.proc.Sleep(d)
	tb.gpu.exclusive.Release()
}

// SpawnChild launches a child kernel via dynamic parallelism (§6.3) that
// occupies the whole GPU for d: device-side launch overhead plus exclusive
// execution.
func (tb *TB) SpawnChild(d time.Duration) {
	tb.proc.Sleep(tb.gpu.params.DynamicParallelismLaunch)
	tb.RunExclusive(d)
}

// LaunchPersistent starts a persistent kernel of n threadblocks, each
// running body forever (or until the simulation shuts down). It fails if
// residency would exceed the device limit.
func (g *GPU) LaunchPersistent(s *sim.Sim, n int, body func(tb *TB)) error {
	if g.resident+n > g.maxTB {
		return fmt.Errorf("accel: %s cannot host %d more TBs (%d/%d resident)",
			g.name, n, g.resident, g.maxTB)
	}
	g.resident += n
	g.launches++
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(fmt.Sprintf("%s/tb%d", g.name, i), func(p *sim.Proc) {
			body(&TB{gpu: g, index: i, proc: p})
		})
	}
	return nil
}

// Resident reports currently resident persistent threadblocks.
func (g *GPU) Resident() int { return g.resident }

// BusyTime reports accumulated kernel execution time (TB-local compute plus
// exclusive and stream kernels; launch overheads excluded), for SM
// utilization probes.
func (g *GPU) BusyTime() time.Duration { return g.busyTime }

// ---------------------------------------------------------------------------
// Host-centric driver machinery

// Driver models the host-side CUDA driver shared by all streams (and all
// GPUs) in one machine. Its lock is the serialization point that makes
// "more threads result in a slowdown" (§6.2) and caps host-centric
// throughput at roughly 1/DriverSerialization.
type Driver struct {
	sim    *sim.Sim
	params *model.Params
	lock   *sim.Resource
	ops    uint64
}

// NewDriver creates a driver instance for one host.
func NewDriver(s *sim.Sim, p *model.Params) *Driver {
	return &Driver{sim: s, params: p, lock: sim.NewResource(s, 1)}
}

// Ops reports driver-lock acquisitions (API call count).
func (d *Driver) Ops() uint64 { return d.ops }

// call runs one driver API call of the given CPU cost under the global lock.
func (d *Driver) call(p *sim.Proc, cost time.Duration) {
	d.lock.Acquire(p)
	d.ops++
	p.Sleep(cost)
	d.lock.Release()
}

// Stream is a CUDA stream: the host-centric server's unit of pipelining.
type Stream struct {
	gpu *GPU
}

// NewStream creates a stream on the GPU.
func (g *GPU) NewStream() *Stream { return &Stream{gpu: g} }

// MemcpyH2D issues an async host-to-device copy: constant driver setup under
// the lock (§5.1: 7-8 µs), then DMA at PCIe bandwidth outside it.
func (st *Stream) MemcpyH2D(p *sim.Proc, bytes int) {
	d := st.gpu.driver
	d.call(p, d.params.CudaMemcpyAsyncSetup)
	p.Sleep(model.TransferTime(bytes, d.params.PCIeBandwidth) + d.params.PCIeLatency)
}

// MemcpyD2H issues the device-to-host copy.
func (st *Stream) MemcpyD2H(p *sim.Proc, bytes int) { st.MemcpyH2D(p, bytes) }

// Launch starts a kernel of the given duration and blocks until it has
// executed (launch overhead under the driver lock; execution on the GPU).
// exclusive selects whole-GPU kernels (LeNet) vs single-TB ones (echo).
func (st *Stream) Launch(p *sim.Proc, exec time.Duration, exclusive bool) {
	st.LaunchN(p, 1, exec, exclusive)
}

// LaunchN launches a dependent sequence of n kernels totalling exec GPU time
// (a TVM-compiled network is a chain of per-layer kernels; each launch pays
// the driver overhead, and the GPU sits idle between layers — the §3.1/§6.3
// inefficiency that dynamic parallelism avoids). For exclusive sequences the
// GPU is held across the whole chain, since every layer depends on the
// previous one.
func (st *Stream) LaunchN(p *sim.Proc, n int, exec time.Duration, exclusive bool) {
	if n <= 0 {
		n = 1
	}
	d := st.gpu.driver
	if exclusive {
		st.gpu.exclusive.Acquire(p)
	}
	for i := 0; i < n; i++ {
		d.call(p, d.params.KernelLaunch)
		p.Sleep(exec / time.Duration(n))
		st.gpu.busyTime += exec / time.Duration(n)
		st.gpu.launches++
	}
	if exclusive {
		st.gpu.exclusive.Release()
	}
}

// Sync waits for stream completion: a driver round under the lock.
func (st *Stream) Sync(p *sim.Proc) {
	d := st.gpu.driver
	d.call(p, d.params.StreamSync)
}

// Launches reports kernels launched on the GPU (persistent + streams).
func (g *GPU) Launches() uint64 { return g.launches }

// ---------------------------------------------------------------------------
// Intel Visual Compute Accelerator

// VCA models the Intel VCA: three independent E3 processors behind a PCIe
// switch (§5.4). RDMA into VCA memory did not work in the paper's testbed,
// so mqueues live in *host* memory mapped into the VCA — which is why the
// access profile carries a PCIe-mapped penalty instead of a local-load cost.
type VCA struct {
	name   string
	dev    *fabric.Device
	params *model.Params
	nodes  int
	faults *fault.Plan
}

// SetFaults installs the fault plan stalling this VCA's mqueue accesses
// inside configured windows (nil injects nothing).
func (v *VCA) SetFaults(pl *fault.Plan) { v.faults = pl }

// NewVCA creates the VCA and its host-memory staging device on the fabric.
func NewVCA(s *sim.Sim, p *model.Params, fab *fabric.Fabric, name string) *VCA {
	// The mqueue region is allocated in host memory (BAR-capable from the
	// NIC's perspective) and mapped into the VCA nodes.
	mem := memdev.NewMemory(s, name+"-hostbuf", 1<<24, true, memdev.Config{})
	dev := fab.AddDevice(name, mem)
	return &VCA{name: name, dev: dev, params: p, nodes: 3}
}

// Name implements Accelerator.
func (v *VCA) Name() string { return v.name }

// Device implements Accelerator.
func (v *VCA) Device() *fabric.Device { return v.dev }

// RemoteHost implements Accelerator (the VCA of the paper is local).
func (v *VCA) RemoteHost() string { return "" }

// Nodes reports the number of E3 processors (3).
func (v *VCA) Nodes() int { return v.nodes }

// Profile implements Accelerator: every mqueue access from a VCA node
// crosses the PCIe switch into mapped host memory (the §5.4 workaround),
// so it costs PCIe latency rather than a local load.
func (v *VCA) Profile() mqueue.AccessProfile {
	return mqueue.AccessProfile{
		LocalAccess:  v.params.PCIeLatency + v.params.PCIeSwitchLatency,
		PollInterval: 2 * time.Microsecond,
		Accel:        v.name,
		Faults:       v.faults,
	}
}

// Enclave models an SGX enclave on one VCA node: entering and leaving costs
// SGX transitions; the body runs at E3 speed.
type Enclave struct {
	vca *VCA
}

// NewEnclave creates an enclave on the VCA.
func (v *VCA) NewEnclave() *Enclave { return &Enclave{vca: v} }

// ECall runs body inside the enclave: entry transition, scaled body cost,
// exit transition.
func (e *Enclave) ECall(p *sim.Proc, body time.Duration, fn func()) {
	prm := e.vca.params
	p.Sleep(prm.SGXTransition)
	p.Sleep(model.ScaleCPU(body, model.E3Core))
	if fn != nil {
		fn()
	}
	p.Sleep(prm.SGXTransition)
}
