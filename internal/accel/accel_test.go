package accel

import (
	"testing"
	"time"

	"lynx/internal/fabric"
	"lynx/internal/model"
	"lynx/internal/sim"
)

type rig struct {
	s      *sim.Sim
	params model.Params
	fab    *fabric.Fabric
	driver *Driver
}

func newRig() *rig {
	s := sim.New(sim.Config{Seed: 2})
	p := model.Default()
	return &rig{s: s, params: p, fab: fabric.New(s), driver: NewDriver(s, &p)}
}

func (r *rig) gpu(name string, cfg GPUConfig) *GPU {
	return NewGPU(r.s, &r.params, r.fab, r.driver, name, cfg)
}

func TestGPUMetadata(t *testing.T) {
	r := newRig()
	g := r.gpu("gpu0", GPUConfig{Model: K40m})
	if g.Name() != "gpu0" || g.Device() == nil || g.RemoteHost() != "" {
		t.Fatal("metadata wrong")
	}
	if g.MaxThreadblocks() != 240 {
		t.Fatalf("K40m TBs = %d, want 240 (§6.2)", g.MaxThreadblocks())
	}
	k80 := r.gpu("gpu1", GPUConfig{Model: K80Half, RemoteHost: "server2"})
	if k80.MaxThreadblocks() != 208 || k80.RemoteHost() != "server2" {
		t.Fatal("K80 config wrong")
	}
	if g.Model().String() != "K40m" || k80.Model().String() != "K80" {
		t.Fatal("model names wrong")
	}
	if !g.Device().Mem.BARCapable() {
		t.Fatal("GPU memory must be BAR-exposable (GPUDirect RDMA, §4.4)")
	}
}

func TestPersistentKernelResidencyLimit(t *testing.T) {
	r := newRig()
	g := r.gpu("gpu0", GPUConfig{Model: K40m})
	if err := g.LaunchPersistent(r.s, 240, func(tb *TB) {}); err != nil {
		t.Fatal(err)
	}
	if err := g.LaunchPersistent(r.s, 1, func(tb *TB) {}); err == nil {
		t.Fatal("241st TB must be rejected")
	}
	if g.Resident() != 240 {
		t.Fatalf("resident = %d", g.Resident())
	}
	r.s.Run()
}

func TestThreadblocksRunConcurrently(t *testing.T) {
	r := newRig()
	g := r.gpu("gpu0", GPUConfig{Model: K40m})
	var finish []sim.Time
	g.LaunchPersistent(r.s, 10, func(tb *TB) {
		tb.Compute(100 * time.Microsecond)
		finish = append(finish, tb.Proc().Now())
	})
	r.s.Run()
	if len(finish) != 10 {
		t.Fatalf("%d TBs finished", len(finish))
	}
	for _, f := range finish {
		if f != sim.Time(100*time.Microsecond) {
			t.Fatalf("TB finished at %v; single-TB kernels must not serialize", f)
		}
	}
}

func TestExclusiveKernelsSerialize(t *testing.T) {
	r := newRig()
	g := r.gpu("gpu0", GPUConfig{Model: K40m})
	var finish []sim.Time
	g.LaunchPersistent(r.s, 3, func(tb *TB) {
		tb.RunExclusive(100 * time.Microsecond)
		finish = append(finish, tb.Proc().Now())
	})
	r.s.Run()
	if last := finish[len(finish)-1]; last != sim.Time(300*time.Microsecond) {
		t.Fatalf("3 exclusive kernels finished at %v, want 300µs", last)
	}
}

func TestDynamicParallelismCost(t *testing.T) {
	r := newRig()
	g := r.gpu("gpu0", GPUConfig{Model: K40m})
	var elapsed time.Duration
	g.LaunchPersistent(r.s, 1, func(tb *TB) {
		start := tb.Proc().Now()
		tb.SpawnChild(r.params.LeNetServiceK40)
		elapsed = tb.Proc().Now().Sub(start)
	})
	r.s.Run()
	want := r.params.DynamicParallelismLaunch + r.params.LeNetServiceK40
	if elapsed != want {
		t.Fatalf("child kernel took %v, want %v", elapsed, want)
	}
}

// §3.2: the host-centric echo pipeline on a 100 µs kernel measures ~130 µs
// end to end — 30 µs of pure management overhead.
func TestHostCentricPipelineOverhead(t *testing.T) {
	r := newRig()
	g := r.gpu("gpu0", GPUConfig{Model: K40m})
	st := g.NewStream()
	var elapsed time.Duration
	r.s.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		st.MemcpyH2D(p, 4)
		st.Launch(p, 100*time.Microsecond, false)
		st.MemcpyD2H(p, 4)
		st.Sync(p)
		elapsed = p.Now().Sub(start)
	})
	r.s.Run()
	if elapsed < 125*time.Microsecond || elapsed > 140*time.Microsecond {
		t.Fatalf("pipeline %v, paper measures ~130µs", elapsed)
	}
}

// §6.2: the driver lock serializes concurrent streams — more worker threads
// do not add throughput.
func TestDriverLockSerializesStreams(t *testing.T) {
	r := newRig()
	g := r.gpu("gpu0", GPUConfig{Model: K40m})
	const n = 8
	var done int
	var last sim.Time
	for i := 0; i < n; i++ {
		st := g.NewStream()
		r.s.Spawn("worker", func(p *sim.Proc) {
			st.MemcpyH2D(p, 64)
			st.Launch(p, 10*time.Microsecond, false)
			st.MemcpyD2H(p, 64)
			st.Sync(p)
			done++
			last = p.Now()
		})
	}
	r.s.Run()
	if done != n {
		t.Fatalf("done = %d", done)
	}
	// Each request holds the lock for ≥ 2*7.5+10+5 = 30 µs; 8 requests
	// cannot finish faster than 240 µs no matter the parallelism.
	if last < sim.Time(240*time.Microsecond) {
		t.Fatalf("8 concurrent requests finished at %v; driver lock must serialize ~30µs each", last)
	}
	if r.driver.Ops() != uint64(4*n) {
		t.Fatalf("driver ops = %d, want %d", r.driver.Ops(), 4*n)
	}
}

func TestVCAProfileAndEnclave(t *testing.T) {
	r := newRig()
	v := NewVCA(r.s, &r.params, r.fab, "vca0")
	if v.Nodes() != 3 {
		t.Fatalf("VCA nodes = %d, want 3 (§5.4)", v.Nodes())
	}
	if v.RemoteHost() != "" || v.Name() != "vca0" {
		t.Fatal("metadata wrong")
	}
	// §5.4: mqueues live in mapped host memory, so accesses cost PCIe, not
	// a local load.
	if v.Profile().LocalAccess <= r.params.GPULocalAccess {
		t.Fatal("VCA mqueue access must be dearer than GPU-local access")
	}
	enc := v.NewEnclave()
	var elapsed time.Duration
	r.s.Spawn("node0", func(p *sim.Proc) {
		start := p.Now()
		ran := false
		enc.ECall(p, 5*time.Microsecond, func() { ran = true })
		elapsed = p.Now().Sub(start)
		if !ran {
			t.Error("enclave body did not run")
		}
	})
	r.s.Run()
	want := 2*r.params.SGXTransition + model.ScaleCPU(5*time.Microsecond, model.E3Core)
	if elapsed != want {
		t.Fatalf("ecall took %v, want %v", elapsed, want)
	}
}

func TestGPURelaxedMemoryConfig(t *testing.T) {
	r := newRig()
	g := r.gpu("gpu0", GPUConfig{Model: K40m, Relaxed: true, MaxSkew: 5 * time.Microsecond})
	reg := g.Device().Mem.MustAlloc("x", 64)
	reg.WriteDMA(0, []byte{1})
	if reg.PendingWrites() != 1 {
		t.Fatal("relaxed GPU memory must delay DMA visibility")
	}
}

func TestTBAccessorsAndProfiles(t *testing.T) {
	r := newRig()
	g := r.gpu("gpu0", GPUConfig{Model: K40m})
	prof := g.Profile()
	if prof.LocalAccess != r.params.GPULocalAccess || prof.PollInterval != r.params.GPUPollInterval {
		t.Fatal("GPU access profile wrong")
	}
	var idx int
	var owner *GPU
	g.LaunchPersistent(r.s, 3, func(tb *TB) {
		if tb.Index() == 2 {
			idx = tb.Index()
			owner = tb.GPU()
		}
	})
	r.s.Run()
	if idx != 2 || owner != g {
		t.Fatal("TB accessors wrong")
	}
	if g.Launches() == 0 {
		t.Fatal("launch counter not incremented")
	}
	v := NewVCA(r.s, &r.params, r.fab, "vca9")
	if v.Device() == nil || v.Device().Name() != "vca9" {
		t.Fatal("VCA device wrong")
	}
}

// LaunchN charges each launch under the driver lock and keeps the GPU held
// across the dependent chain when exclusive.
func TestLaunchNChain(t *testing.T) {
	r := newRig()
	g := r.gpu("gpu0", GPUConfig{Model: K40m})
	st := g.NewStream()
	var chainTime time.Duration
	r.s.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		st.LaunchN(p, 8, 80*time.Microsecond, true)
		chainTime = p.Now().Sub(start)
	})
	r.s.Run()
	// 8 launches x 10µs + 80µs of execution.
	want := 8*r.params.KernelLaunch + 80*time.Microsecond
	if chainTime != want {
		t.Fatalf("chain took %v, want %v", chainTime, want)
	}
	// n <= 0 behaves like a single launch.
	var single time.Duration
	r.s.Spawn("host2", func(p *sim.Proc) {
		start := p.Now()
		st.LaunchN(p, 0, 50*time.Microsecond, false)
		single = p.Now().Sub(start)
	})
	r.s.Run()
	if single != r.params.KernelLaunch+50*time.Microsecond {
		t.Fatalf("single launch %v", single)
	}
}
