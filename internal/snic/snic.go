// Package snic assembles the paper's testbed: physical machines with Xeon
// CPUs, PCIe switches and ConnectX NICs; the Mellanox BlueField SmartNIC
// (8 ARM cores behind an internal PCIe switch, multi-homed on the network,
// Figure 2b); and the Mellanox Innova bump-in-the-wire FPGA SmartNIC running
// the NICA-based AFU (Figure 2a, §5.2).
//
// It provides the Platform values the Lynx runtime (internal/core) executes
// on, and the specialized Innova receive-path server.
package snic

import (
	"fmt"
	"time"

	"lynx/internal/accel"
	"lynx/internal/check"
	"lynx/internal/core"
	"lynx/internal/cpuarch"
	"lynx/internal/fabric"
	"lynx/internal/fault"
	"lynx/internal/metrics"
	"lynx/internal/model"
	"lynx/internal/mqueue"
	"lynx/internal/netstack"
	"lynx/internal/rdma"
	"lynx/internal/sim"
)

// Testbed is one simulated deployment: a network switch, an InfiniBand/
// Ethernet backbone on the PCIe fabric graph, and any number of machines.
type Testbed struct {
	Sim    *sim.Sim
	Params *model.Params
	Net    *netstack.Network
	Fab    *fabric.Fabric
	// IB is the wire backbone joining all NIC devices for RDMA traffic
	// (the same physical SN2100 switch as Net; modelled separately because
	// client traffic and RDMA use different stacks).
	IB *fabric.Switch
	// Faults is the deployment-wide fault plan, consulted by the netstack,
	// the PCIe fabric, every RDMA engine and every accelerator. Nil (the
	// default) injects nothing.
	Faults *fault.Plan
	// Check is the deployment-wide invariant checker installed by
	// EnableInvariants. Nil (the default) checks nothing; Platform
	// constructors and the Innova serve path thread it through to the
	// runtime and every mqueue.
	Check *check.Checker
}

// NewTestbed creates an empty deployment with no fault injection.
func NewTestbed(seed uint64, p *model.Params) *Testbed {
	return NewTestbedWith(seed, p, fault.Config{})
}

// NewTestbedWith creates an empty deployment whose layers consult a fault
// plan built from fc. The plan draws from its own seeded stream, so enabling
// faults perturbs nothing else and identical (seed, fc) pairs replay exactly.
func NewTestbedWith(seed uint64, p *model.Params, fc fault.Config) *Testbed {
	s := sim.New(sim.Config{Seed: seed})
	f := fabric.New(s)
	tb := &Testbed{
		Sim:    s,
		Params: p,
		Net:    netstack.New(s, p),
		Fab:    f,
		IB:     f.AddSwitch("wire-backbone"),
	}
	if fc.Enabled() {
		tb.Faults = fault.NewPlan(fc)
		tb.Net.SetFaults(tb.Faults)
		tb.Fab.SetFaults(tb.Faults)
	}
	return tb
}

// EnableInvariants installs ck as the testbed-wide invariant checker: the
// netstack and PCIe fabric register their conservation finishers, the
// simulator's virtual-time sanity check is added, and ck.Finalize runs
// automatically when the simulation shuts down. Platforms and Innova servers
// created after this call thread ck through to the runtime and mqueues.
// A nil/disabled ck is a no-op.
func (tb *Testbed) EnableInvariants(ck *check.Checker) {
	if !ck.Enabled() {
		return
	}
	tb.Check = ck
	tb.Net.RegisterInvariants(ck)
	tb.Fab.RegisterInvariants(ck)
	ck.AddFinisher("sim.time-monotonic", func(fail func(string, ...any)) {
		if n := tb.Sim.TimeRegressions(); n > 0 {
			fail("%d events dispatched before the clock they were scheduled at", n)
		}
	})
	tb.Sim.OnShutdown(func() { ck.Finalize() })
}

// Machine is one physical server: Xeon cores, a PCIe switch, a ConnectX NIC
// (RDMA-capable, on the wire), and a CUDA driver instance.
type Machine struct {
	TB      *Testbed
	Name    string
	CPU     *cpuarch.Machine
	Switch  *fabric.Switch
	NIC     *fabric.Device
	RDMA    *rdma.Engine
	NetHost *netstack.Host
	Driver  *accel.Driver

	// wire is the switch this machine's NIC devices cable into: the flat
	// backbone (tb.IB) for single-rack testbeds, or a ToR switch for
	// machines placed with NewMachineAt.
	wire *fabric.Switch

	gpus int
}

// NewMachine adds a server with the given number of Xeon cores, cabled
// directly into the wire backbone.
func (tb *Testbed) NewMachine(name string, cores int) *Machine {
	return tb.newMachine(name, cores, tb.IB)
}

// AddToR adds a named top-of-rack switch uplinked to the wire backbone.
// Machines placed at the ToR with NewMachineAt reach each other in one
// rack-local hop; traffic to machines outside the rack crosses the uplink.
func (tb *Testbed) AddToR(name string) *fabric.ToR {
	p := tb.Params
	return tb.Fab.AddToR(name, tb.IB, p.WirePropagation, p.WireBandwidth)
}

// NewMachineAt is NewMachine with the machine's NICs cabled into a rack
// switch instead of directly into the backbone.
func (tb *Testbed) NewMachineAt(name string, cores int, tor *fabric.ToR) *Machine {
	return tb.newMachine(name, cores, tor.Switch())
}

func (tb *Testbed) newMachine(name string, cores int, wire *fabric.Switch) *Machine {
	p := tb.Params
	sw := tb.Fab.AddSwitch(name + "/pcie")
	nic := tb.Fab.AddDevice(name+"/nic", nil)
	tb.Fab.Connect(nic, sw, p.PCIeSwitchLatency, p.PCIeBandwidth)
	tb.Fab.Connect(nic, wire, p.WirePropagation, p.WireBandwidth)
	m := &Machine{
		TB:      tb,
		Name:    name,
		CPU:     cpuarch.New(tb.Sim, p, name+"/cpu", model.XeonCore, cores),
		Switch:  sw,
		NIC:     nic,
		RDMA:    rdma.NewEngine(tb.Sim, p, tb.Fab, nic),
		NetHost: tb.Net.AddHost(name),
		Driver:  accel.NewDriver(tb.Sim, p),
		wire:    wire,
	}
	m.RDMA.SetFaults(tb.Faults)
	return m
}

// AddGPU attaches a GPU to the machine's PCIe switch. snicHost names the
// machine running the Lynx SNIC: when it differs from this machine, the GPU
// is remote from Lynx's perspective (§5.5) and its QPs carry the network
// penalty.
func (m *Machine) AddGPU(name string, gmodel accel.GPUModel, relaxed bool, snicHost string) *accel.GPU {
	cfg := accel.GPUConfig{Model: gmodel, Relaxed: relaxed, MaxSkew: 10 * time.Microsecond,
		Faults: m.TB.Faults}
	if snicHost != m.Name {
		cfg.RemoteHost = m.Name
	}
	g := accel.NewGPU(m.TB.Sim, m.TB.Params, m.TB.Fab, m.Driver, name, cfg)
	m.TB.Fab.Connect(g.Device(), m.Switch, m.TB.Params.PCIeSwitchLatency, m.TB.Params.PCIeBandwidth)
	m.gpus++
	return g
}

// AddVCA attaches an Intel VCA to the machine.
func (m *Machine) AddVCA(name string) *accel.VCA {
	v := accel.NewVCA(m.TB.Sim, m.TB.Params, m.TB.Fab, name)
	v.SetFaults(m.TB.Faults)
	m.TB.Fab.Connect(v.Device(), m.Switch, m.TB.Params.PCIeSwitchLatency, m.TB.Params.PCIeBandwidth)
	return v
}

// AddClient adds a client-only host to the network (sockperf machines).
func (tb *Testbed) AddClient(name string) *netstack.Host {
	return tb.Net.AddHost(name)
}

// RegisterStats publishes the deployment-wide counters (fault injection,
// PCIe fabric) into reg as component snapshots.
func (tb *Testbed) RegisterStats(reg *metrics.Registry) {
	reg.AddStats("fabric", func() []metrics.Stat {
		return []metrics.Stat{{Name: "transfers", Value: float64(tb.Fab.Transfers())}}
	})
	reg.AddStats("faults", func() []metrics.Stat {
		st := tb.Faults.Stats()
		return []metrics.Stat{
			{Name: "datagrams_dropped", Value: float64(st.DatagramsDropped)},
			{Name: "datagrams_duplicated", Value: float64(st.DatagramsDuplicated)},
			{Name: "datagrams_delayed", Value: float64(st.DatagramsDelayed)},
			{Name: "tcp_delays", Value: float64(st.TCPDelays)},
			{Name: "rdma_errors", Value: float64(st.RDMAErrors)},
			{Name: "rdma_spikes", Value: float64(st.RDMASpikes)},
			{Name: "pcie_spikes", Value: float64(st.PCIeSpikes)},
			{Name: "stall_hits", Value: float64(st.StallHits)},
		}
	})
}

// ---------------------------------------------------------------------------
// Lynx platforms

// BlueField models the ARM SmartNIC of Figure 2b attached to a host machine:
// its NIC ASIC sits behind the BlueField-internal PCIe switch, the ARM
// complex runs Lynx, and the SNIC is multi-homed with its own address.
type BlueField struct {
	Host    *Machine
	ARM     *cpuarch.Machine
	NIC     *fabric.Device
	RDMA    *rdma.Engine
	NetHost *netstack.Host
}

// AttachBlueField plugs a BlueField into the machine.
func (m *Machine) AttachBlueField(name string) *BlueField {
	tb := m.TB
	p := tb.Params
	bfSwitch := tb.Fab.AddSwitch(name + "/pcie")
	nic := tb.Fab.AddDevice(name+"/nic-asic", nil)
	tb.Fab.Connect(nic, bfSwitch, p.PCIeSwitchLatency, p.PCIeBandwidth)
	tb.Fab.Connect(bfSwitch, m.Switch, p.PCIeLatency, p.PCIeBandwidth)
	tb.Fab.Connect(nic, m.wire, p.WirePropagation, p.WireBandwidth)
	bf := &BlueField{
		Host:    m,
		ARM:     cpuarch.New(tb.Sim, p, name+"/arm", model.ARMCore, 8),
		NIC:     nic,
		RDMA:    rdma.NewEngine(tb.Sim, p, tb.Fab, nic),
		NetHost: tb.Net.AddHost(name),
	}
	bf.RDMA.SetFaults(tb.Faults)
	return bf
}

// Platform returns a core.Platform running Lynx on the BlueField ARM cores.
// The paper dedicates 7 of the 8 cores (§6.1).
func (bf *BlueField) Platform(workers int) core.Platform {
	if workers <= 0 {
		workers = 7
	}
	return core.Platform{
		Sim:     bf.Host.TB.Sim,
		Params:  bf.Host.TB.Params,
		Machine: bf.ARM,
		NetHost: bf.NetHost,
		RDMA:    bf.RDMA,
		Workers: workers,
		Bypass:  true, // VMA, §5.1.1
		Check:   bf.Host.TB.Check,
	}
}

// HostPlatform returns a core.Platform running the same Lynx code on host
// Xeon cores ("source-compatible to run on X86", §5).
func (m *Machine) HostPlatform(workers int, bypass bool) core.Platform {
	return core.Platform{
		Sim:     m.TB.Sim,
		Params:  m.TB.Params,
		Machine: m.CPU,
		NetHost: m.NetHost,
		RDMA:    m.RDMA,
		Workers: workers,
		Bypass:  bypass,
		Check:   m.TB.Check,
	}
}

// ---------------------------------------------------------------------------
// Innova (FPGA, receive path)

// Innova models the bump-in-the-wire FPGA SmartNIC running the Lynx AFU on
// NICA (§5.2): every packet traverses the AFU pipeline at line rate and is
// steered into an mqueue through a UC QP custom ring; a host CPU helper
// thread refills the ring credits (the prototype's limitation).
type Innova struct {
	Host    *Machine
	NIC     *fabric.Device
	RDMA    *rdma.Engine
	NetHost *netstack.Host
	// pipeline is the AFU processing stage (one packet at a time at
	// InnovaPipeline per packet => 7.4 M pkt/s).
	pipeline *sim.Resource

	received, dropped, sent uint64
}

// AttachInnova plugs an Innova into the machine.
func (m *Machine) AttachInnova(name string) *Innova {
	tb := m.TB
	p := tb.Params
	nic := tb.Fab.AddDevice(name+"/fpga-nic", nil)
	tb.Fab.Connect(nic, m.Switch, p.PCIeSwitchLatency, p.PCIeBandwidth)
	tb.Fab.Connect(nic, m.wire, p.WirePropagation, p.WireBandwidth)
	in := &Innova{
		Host:     m,
		NIC:      nic,
		RDMA:     rdma.NewEngine(tb.Sim, p, tb.Fab, nic),
		NetHost:  tb.Net.AddHost(name),
		pipeline: sim.NewResource(tb.Sim, 1),
	}
	in.RDMA.SetFaults(tb.Faults)
	return in
}

// ServeUDP starts the receive-path AFU on a UDP port, steering packets
// round-robin into n mqueues allocated on the accelerator. It returns the
// accelerator-side queues. The send path is not implemented, as in the
// paper's prototype (§5.2); ServeUDPFullDuplex adds it.
func (in *Innova) ServeUDP(port uint16, acc accel.Accelerator, cfg mqueue.Config, n int) ([]*mqueue.AccelQueue, error) {
	qs, _, err := in.serve(port, acc, cfg, n, false)
	return qs, err
}

// ServeUDPFullDuplex implements the send path the paper's prototype lacks
// (§5.2 lists it as future work): a second AFU pipeline stage sweeps the TX
// rings and emits responses to the original senders, entirely in FPGA logic.
// It returns the accelerator-side queues and the group used for egress.
func (in *Innova) ServeUDPFullDuplex(port uint16, acc accel.Accelerator, cfg mqueue.Config, n int) ([]*mqueue.AccelQueue, error) {
	qs, _, err := in.serve(port, acc, cfg, n, true)
	return qs, err
}

func (in *Innova) serve(port uint16, acc accel.Accelerator, cfg mqueue.Config, n int, duplex bool) ([]*mqueue.AccelQueue, *mqueue.Group, error) {
	tb := in.Host.TB
	region, err := acc.Device().Mem.Alloc("innova-mq", mqueue.GroupFootprint(cfg, n))
	if err != nil {
		return nil, nil, err
	}
	// NICA uses an InfiniBand UC QP for the custom ring (§5.2), driven
	// directly by FPGA logic (no CPU issue cost, fully pipelined writes).
	qp := in.RDMA.CreateQP(acc.Device(), rdma.QPConfig{Kind: rdma.UC, Remote: acc.RemoteHost() != "", HWIssue: true})
	cfg.Check = tb.Check
	group, err := mqueue.NewGroup(region, 0, cfg, n, qp)
	if err != nil {
		return nil, nil, err
	}
	prof := acc.Profile()
	prof.Check = tb.Check
	accQs, err := mqueue.AttachGroup(region, 0, cfg, n, prof)
	if err != nil {
		return nil, nil, err
	}
	qp.AddCredits(n * cfg.Slots)
	sock, err := in.NetHost.UDPBind(port)
	if err != nil {
		return nil, nil, err
	}
	// The egress stage, when enabled, routes TX messages back to the
	// senders recorded at ingress.
	var pending []netQ
	if duplex {
		pending = make([]netQ, n)
		for i := range pending {
			pending[i].fifo = make([][]netstack.Addr, cfg.Slots)
		}
	}

	// Helper thread: refills UC credits in batches on a host CPU core
	// (§5.2: "requires a separate CPU thread to explicitly refill the QP
	// receive queue").
	const refillBatch = 32
	refill := sim.NewChan[struct{}](tb.Sim, 0)
	tb.Sim.Spawn("innova/helper", func(p *sim.Proc) {
		pendingCredits := 0
		for {
			refill.Get(p)
			pendingCredits++
			if pendingCredits >= refillBatch {
				in.Host.CPU.ExecOn(p, tb.Params.InnovaHelperRefill)
				qp.AddCredits(pendingCredits)
				pendingCredits = 0
			}
		}
	})

	// AFU: per-packet pipeline -> posted ring write. No CPU cost anywhere
	// on the receive path; ring-state refreshes are batched.
	tb.Sim.Spawn("innova/afu", func(p *sim.Proc) {
		next := 0
		sinceRefresh := 0
		for {
			dg := sock.Recv(p)
			in.pipeline.With(p, tb.Params.InnovaPipeline, nil)
			qi := next % n
			q := group.Queue(qi)
			next++
			sinceRefresh++
			// Refresh consumed-counters at a quarter of aggregate ring
			// capacity so stale flow control never reports rings full
			// while the accelerator is keeping up.
			if sinceRefresh >= n*cfg.Slots/4 {
				group.Refresh(p)
				sinceRefresh = 0
			}
			slot, err := q.PushAsync(p, dg.Payload, 0)
			if err != nil {
				in.dropped++
				continue
			}
			if duplex {
				pending[qi].fifo[slot] = append(pending[qi].fifo[slot], dg.From)
			}
			in.received++
			refill.TryPut(struct{}{})
		}
	})

	if duplex {
		// Egress AFU stage: sweep TX rings (batched header read, slot
		// reads) and emit responses at pipeline rate.
		tb.Sim.Spawn("innova/afu-tx", func(p *sim.Proc) {
			gate := group.ActivityGate()
			// With batching configured, the egress AFU drains each ring in
			// spanning reads of up to the CQ-drain budget per visit; the
			// per-response pipeline charge is unchanged (the FPGA pipeline
			// is per-packet — only the ring-poll round trips amortize).
			batch := tb.Params.Batch
			var txBuf []mqueue.TxMsg
			if !batch.Unit() {
				txBuf = make([]mqueue.TxMsg, batch.EffCQDrain())
			}
			emit := func(p *sim.Proc, qi int, msg mqueue.TxMsg) {
				in.pipeline.With(p, tb.Params.InnovaPipeline, nil)
				fifo := pending[qi].fifo[msg.Corr]
				if len(fifo) == 0 {
					tb.Check.Failf("snic.orphan-response",
						"innova q%d: TX message for slot %d has no pending request", qi, msg.Corr)
					return
				}
				to := fifo[0]
				pending[qi].fifo[msg.Corr] = fifo[1:]
				sock.SendTo(to, msg.Payload)
				in.sent++
			}
			for {
				v := gate.Version()
				group.Refresh(p)
				drained := false
				for qi := 0; qi < n; qi++ {
					q := group.Queue(qi)
					if txBuf != nil {
						for q.Ready() {
							k := q.PopTxMany(p, len(txBuf), txBuf)
							if k == 0 {
								break
							}
							drained = true
							for j := 0; j < k; j++ {
								emit(p, qi, txBuf[j])
							}
						}
					} else {
						for q.Ready() {
							msg, ok := q.PopTx(p)
							if !ok {
								break
							}
							drained = true
							emit(p, qi, msg)
						}
					}
					q.CommitTx(p)
				}
				if !drained {
					gate.Wait(p, v)
					p.Sleep(tb.Params.InnovaPipeline)
				}
			}
		})
	}
	return accQs, group, nil
}

// netQ tracks per-slot reply destinations for the duplex egress stage.
type netQ struct {
	fifo [][]netstack.Addr
}

// Stats reports packets steered into rings and packets dropped.
func (in *Innova) Stats() (received, dropped uint64) { return in.received, in.dropped }

// Sent reports responses emitted by the duplex egress stage.
func (in *Innova) Sent() uint64 { return in.sent }

// ---------------------------------------------------------------------------

// Validate sanity-checks a testbed topology (used by cmd/lynxtopo).
func (tb *Testbed) Validate(machines ...*Machine) error {
	for _, m := range machines {
		if m.TB != tb {
			return fmt.Errorf("snic: machine %s belongs to a different testbed", m.Name)
		}
		if _, ok := tb.Net.Host(m.Name); !ok {
			return fmt.Errorf("snic: machine %s missing from the network", m.Name)
		}
	}
	return nil
}
