package snic_test

import (
	"testing"
	"time"

	"lynx/internal/accel"
	"lynx/internal/model"
	"lynx/internal/mqueue"
	"lynx/internal/sim"
	"lynx/internal/snic"
	"lynx/internal/workload"
)

func newTB() (*snic.Testbed, model.Params) {
	p := model.Default()
	return snic.NewTestbed(3, &p), p
}

func TestTestbedTopology(t *testing.T) {
	tb, _ := newTB()
	m1 := tb.NewMachine("server1", 6)
	m2 := tb.NewMachine("server2", 6)
	bf := m1.AttachBlueField("bf1")
	gpuLocal := m1.AddGPU("gpu0", accel.K40m, false, "server1")
	gpuRemote := m2.AddGPU("gpu1", accel.K80Half, false, "server1")
	if err := tb.Validate(m1, m2); err != nil {
		t.Fatal(err)
	}
	if gpuLocal.RemoteHost() != "" {
		t.Fatal("gpu on the SNIC's machine must be local")
	}
	if gpuRemote.RemoteHost() != "server2" {
		t.Fatalf("remote gpu host = %q", gpuRemote.RemoteHost())
	}
	// Local path: bf-nic -> bf switch -> host switch -> gpu.
	if d := tb.Fab.Distance(bf.NIC, gpuLocal.Device()); d != 3 {
		t.Fatalf("local GPU hops = %d", d)
	}
	// Remote path: bf-nic -> wire backbone -> remote nic -> remote switch
	// -> gpu.
	if d := tb.Fab.Distance(bf.NIC, gpuRemote.Device()); d != 4 {
		t.Fatalf("remote GPU hops = %d, want 4", d)
	}
}

func TestPlatformDefaults(t *testing.T) {
	tb, _ := newTB()
	m := tb.NewMachine("server1", 6)
	bf := m.AttachBlueField("bf1")
	plat := bf.Platform(0)
	if plat.Workers != 7 {
		t.Fatalf("default BlueField workers = %d, paper uses 7 of 8", plat.Workers)
	}
	if !plat.Bypass {
		t.Fatal("BlueField must use VMA (§5.1.1)")
	}
	if plat.Machine.Kind() != model.ARMCore {
		t.Fatal("BlueField platform must run on ARM cores")
	}
	host := m.HostPlatform(6, true)
	if host.Machine.Kind() != model.XeonCore || host.Workers != 6 {
		t.Fatal("host platform wrong")
	}
}

func TestValidateRejectsForeignMachine(t *testing.T) {
	tb1, _ := newTB()
	p2 := model.Default()
	tb2 := snic.NewTestbed(4, &p2)
	foreign := tb2.NewMachine("elsewhere", 2)
	if err := tb1.Validate(foreign); err == nil {
		t.Fatal("foreign machine must fail validation")
	}
}

// Innova receive path end to end: packets flow through the AFU into GPU
// mqueues without any host/SNIC CPU processing.
func TestInnovaReceivePath(t *testing.T) {
	tb, _ := newTB()
	m := tb.NewMachine("server1", 6)
	in := m.AttachInnova("innova1")
	gpu := m.AddGPU("gpu0", accel.K40m, false, "server1")
	client := tb.AddClient("client1")

	const nq = 4
	qs, err := in.ServeUDP(7000, gpu, mqueue.Config{Slots: 16, SlotSize: 128}, nq)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, nq)
	total := 0
	if err := gpu.LaunchPersistent(tb.Sim, nq, func(tbk *accel.TB) {
		aq := qs[tbk.Index()]
		for {
			aq.Recv(tbk.Proc())
			got[tbk.Index()]++
			total++
		}
	}); err != nil {
		t.Fatal(err)
	}
	sock := client.MustUDPBind(9000)
	tb.Sim.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			sock.SendTo(in.NetHost.Addr(7000), make([]byte, 64))
			p.Sleep(2 * time.Microsecond)
		}
	})
	tb.Sim.RunUntilCond(sim.Time(100*time.Millisecond), time.Millisecond, func() bool { return total == 64 })
	tb.Sim.Shutdown()
	if total != 64 {
		t.Fatalf("AFU delivered %d/64 packets", total)
	}
	// Round-robin steering spreads packets evenly (§5.2).
	for i, g := range got {
		if g != 16 {
			t.Fatalf("queue %d got %d packets, want 16 (round robin)", i, g)
		}
	}
	rcvd, dropped := in.Stats()
	if rcvd != 64 || dropped != 0 {
		t.Fatalf("stats rcvd=%d dropped=%d", rcvd, dropped)
	}
}

// The Innova AFU must sustain multi-Mpps rates — far beyond any CPU path.
func TestInnovaAFURate(t *testing.T) {
	tb, _ := newTB()
	m := tb.NewMachine("server1", 6)
	in := m.AttachInnova("innova1")
	gpu := m.AddGPU("gpu0", accel.K40m, false, "server1")
	client := tb.AddClient("client1")
	client2 := tb.AddClient("client2")

	const nq = 64
	qs, err := in.ServeUDP(7000, gpu, mqueue.Config{Slots: 16, SlotSize: 128}, nq)
	if err != nil {
		t.Fatal(err)
	}
	if err := gpu.LaunchPersistent(tb.Sim, nq, func(tbk *accel.TB) {
		aq := qs[tbk.Index()]
		for {
			aq.Recv(tbk.Proc())
		}
	}); err != nil {
		t.Fatal(err)
	}
	g := workload.New(tb.Sim, workload.Config{
		Proto: workload.UDP, Target: in.NetHost.Addr(7000), Payload: 64,
		Clients: 8, RatePerSec: 8e6, Duration: 2 * time.Millisecond, Warmup: 500 * time.Microsecond,
	}, client, client2)
	g.Run()
	tb.Sim.RunUntil(sim.Time(3 * time.Millisecond))
	rcvd, _ := in.Stats()
	tb.Sim.Shutdown()
	rate := float64(rcvd) / 0.003
	if rate < 3e6 {
		t.Fatalf("Innova sustained only %.1fM pkt/s, want multi-Mpps (paper: 7.4M)", rate/1e6)
	}
}

// The duplex extension: a full echo service through the FPGA, send path
// included — the paper's §5.2 future work.
func TestInnovaFullDuplexEcho(t *testing.T) {
	tb, _ := newTB()
	m := tb.NewMachine("server1", 6)
	in := m.AttachInnova("innova1")
	gpu := m.AddGPU("gpu0", accel.K40m, false, "server1")
	client := tb.AddClient("client1")

	const nq = 4
	qs, err := in.ServeUDPFullDuplex(7000, gpu, mqueue.Config{Slots: 16, SlotSize: 128}, nq)
	if err != nil {
		t.Fatal(err)
	}
	if err := gpu.LaunchPersistent(tb.Sim, nq, func(tbk *accel.TB) {
		aq := qs[tbk.Index()]
		for {
			msg := aq.Recv(tbk.Proc())
			if aq.Send(tbk.Proc(), uint16(msg.Slot), msg.Payload) != nil {
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	sock := client.MustUDPBind(9000)
	got := 0
	tb.Sim.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			payload := []byte{byte(i), 0xAA}
			sock.SendTo(in.NetHost.Addr(7000), payload)
			dg := sock.Recv(p)
			if dg.Payload[0] != byte(i) {
				t.Errorf("echo %d corrupted", i)
			}
			got++
		}
	})
	tb.Sim.RunUntilCond(sim.Time(time.Second), time.Millisecond, func() bool { return got == 40 })
	tb.Sim.Shutdown()
	if got != 40 {
		t.Fatalf("echoed %d/40 through the FPGA", got)
	}
	if in.Sent() != 40 {
		t.Fatalf("egress sent %d", in.Sent())
	}
}
