package bench

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

const oldOutput = `goos: linux
BenchmarkSimEngine/echo-8   1000   200.0 ns/op   5000000 events/sec   0 B/op   0 allocs/op
BenchmarkSimEngine/echo-8   1000   201.0 ns/op   4990000 events/sec   0 B/op   0 allocs/op
BenchmarkSimEngine/echo-8   1000   199.0 ns/op   5010000 events/sec   0 B/op   0 allocs/op
BenchmarkSimEngine/echo-8   1000   200.0 ns/op   5000000 events/sec   0 B/op   0 allocs/op
BenchmarkSimEngine/echo-8   1000   202.0 ns/op   4980000 events/sec   0 B/op   0 allocs/op
BenchmarkSimEngine/gone-8   1000   100.0 ns/op
PASS
`

const newOutput = `BenchmarkSimEngine/echo-16   1000   300.0 ns/op   4000000 events/sec   0 B/op   0 allocs/op
BenchmarkSimEngine/echo-16   1000   301.0 ns/op   3990000 events/sec   0 B/op   0 allocs/op
BenchmarkSimEngine/echo-16   1000   299.0 ns/op   4010000 events/sec   0 B/op   0 allocs/op
BenchmarkSimEngine/echo-16   1000   300.0 ns/op   4000000 events/sec   0 B/op   0 allocs/op
BenchmarkSimEngine/echo-16   1000   302.0 ns/op   3980000 events/sec   0 B/op   0 allocs/op
BenchmarkSimEngine/fresh-16  1000   50.0 ns/op
`

func TestParseStripsGOMAXPROCSSuffix(t *testing.T) {
	samples, order, err := Parse(strings.NewReader(oldOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "BenchmarkSimEngine/echo" || order[1] != "BenchmarkSimEngine/gone" {
		t.Fatalf("order = %v", order)
	}
	k := Key{Bench: "BenchmarkSimEngine/echo", Metric: "ns/op"}
	if got := samples[k]; len(got) != 5 || got[0] != 200 {
		t.Fatalf("echo ns/op samples = %v", got)
	}
	if got := samples[Key{Bench: "BenchmarkSimEngine/echo", Metric: "events/sec"}]; len(got) != 5 {
		t.Fatalf("events/sec samples = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if m := Median(nil); !math.IsNaN(m) {
		t.Fatalf("empty median = %v, want NaN", m)
	}
	// Median must not mutate its argument.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Fatal("Median sorted the caller's slice")
	}
}

func TestMannWhitneyP(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := MannWhitneyP(same, same); p < 0.99 {
		t.Fatalf("identical samples p = %v, want ~1", p)
	}
	a := []float64{100, 101, 102, 99, 100, 101, 100, 99, 101, 100}
	b := []float64{130, 131, 132, 129, 130, 131, 130, 129, 131, 130}
	if p := MannWhitneyP(a, b); p >= Alpha {
		t.Fatalf("disjoint samples p = %v, want < %v", p, Alpha)
	}
	if p := MannWhitneyP(nil, a); p != 1 {
		t.Fatalf("empty side p = %v, want 1", p)
	}
	// All values equal: zero variance must not divide by zero.
	flat := []float64{5, 5, 5}
	if p := MannWhitneyP(flat, flat); p != 1 {
		t.Fatalf("zero-variance p = %v, want 1", p)
	}
}

func TestCompareRowOrderAndSides(t *testing.T) {
	oldS, oldOrder, _ := Parse(strings.NewReader(oldOutput))
	newS, newOrder, _ := Parse(strings.NewReader(newOutput))
	c := Compare(oldS, newS, oldOrder, newOrder)
	// Old-order benchmarks first, then new-only; MetricOrder within each.
	var got []string
	for _, r := range c.Rows {
		got = append(got, r.Benchmark+" "+r.Metric)
	}
	want := []string{
		"BenchmarkSimEngine/echo ns/op",
		"BenchmarkSimEngine/echo events/sec",
		"BenchmarkSimEngine/echo B/op",
		"BenchmarkSimEngine/echo allocs/op",
		"BenchmarkSimEngine/gone ns/op",
		"BenchmarkSimEngine/fresh ns/op",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("row order:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	rows := make(map[string]Row)
	for _, r := range c.Rows {
		rows[r.Benchmark+" "+r.Metric] = r
	}
	echo := rows["BenchmarkSimEngine/echo ns/op"]
	if echo.OldMedian == nil || echo.NewMedian == nil || *echo.OldMedian != 200 || *echo.NewMedian != 300 {
		t.Fatalf("echo medians = %+v", echo)
	}
	if !echo.Significant || echo.PValue == nil || *echo.PValue >= Alpha {
		t.Fatalf("50%% move on disjoint samples not significant: %+v", echo)
	}
	gone := rows["BenchmarkSimEngine/gone ns/op"]
	if gone.NewMedian != nil || gone.OldMedian == nil {
		t.Fatalf("removed benchmark row = %+v", gone)
	}
	fresh := rows["BenchmarkSimEngine/fresh ns/op"]
	if fresh.OldMedian != nil || fresh.NewMedian == nil {
		t.Fatalf("new benchmark row = %+v", fresh)
	}
	// Table marks both one-sided rows and the significant move.
	tbl := c.Table()
	if !strings.Contains(tbl, "(gone)") || !strings.Contains(tbl, "(new)") || !strings.Contains(tbl, "+50.0%") {
		t.Fatalf("table:\n%s", tbl)
	}
}

func TestComparisonJSONRoundTripDeterministic(t *testing.T) {
	oldS, oldOrder, _ := Parse(strings.NewReader(oldOutput))
	newS, newOrder, _ := Parse(strings.NewReader(newOutput))
	c := Compare(oldS, newS, oldOrder, newOrder)
	c.OldFile, c.NewFile = "old.txt", "new.txt"
	path := filepath.Join(t.TempDir(), "cmp.json")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadComparison(path)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := c.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := back.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("comparison JSON not byte-stable across a write/read/write cycle")
	}
	if back.OldFile != "old.txt" || len(back.Rows) != len(c.Rows) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if _, err := ReadComparison(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file not reported")
	}
}
