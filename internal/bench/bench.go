// Package bench is the single source of truth for benchmark-comparison
// statistics: the go-test output parser, the median and Mann-Whitney U
// machinery, and the row schema shared by cmd/benchcmp's -json output and the
// regression sentinel's artifact (internal/sentinel). Keeping one schema here
// means a recorded comparison can be embedded into a sentinel baseline and
// re-tested for significance later without re-parsing anything.
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Key identifies one metric series of one benchmark.
type Key struct {
	Bench  string
	Metric string
}

// MetricOrder is the fixed per-benchmark metric order of every rendered
// comparison; deterministic output depends on it.
var MetricOrder = []string{"ns/op", "events/sec", "B/op", "allocs/op"}

// Parse reads go-test benchmark output: lines of the form
//
//	BenchmarkName-8  1234  5678 ns/op  90 events/sec  0 B/op  0 allocs/op
//
// and returns metric samples keyed by (name, unit) plus the benchmark names
// in first-appearance order. The -N GOMAXPROCS suffix is stripped so files
// from different machines still line up.
func Parse(r io.Reader) (map[Key][]float64, []string, error) {
	samples := make(map[Key][]float64)
	var order []string
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if !seen[name] {
			seen[name] = true
			order = append(order, name)
		}
		// fields[1] is the iteration count; after that, (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			k := Key{Bench: name, Metric: fields[i+1]}
			samples[k] = append(samples[k], v)
		}
	}
	return samples, order, sc.Err()
}

// ParseFile is Parse over a file.
func ParseFile(path string) (map[Key][]float64, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Median returns the sample median (NaN for an empty slice).
func Median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MannWhitneyP returns the two-sided p-value of the Mann-Whitney U test via
// the normal approximation with tie correction — adequate for the n≈10
// sample counts benchmark comparisons use (and the same default benchstat
// falls back to at larger n).
func MannWhitneyP(a, b []float64) float64 {
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 == 0 || n2 == 0 {
		return 1
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Midranks with tie accounting.
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u := r1 - n1*(n1+1)/2
	mu := n1 * n2 / 2
	n := n1 + n2
	sigma2 := n1 * n2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		// All values identical: no evidence of difference.
		return 1
	}
	z := (u - mu) / math.Sqrt(sigma2)
	// Continuity correction toward the mean.
	if z > 0 {
		z -= 0.5 / math.Sqrt(sigma2)
	} else if z < 0 {
		z += 0.5 / math.Sqrt(sigma2)
	}
	return 2 * (1 - stdNormalCDF(math.Abs(z)))
}

func stdNormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// Alpha is the two-sided significance level a delta must clear before it is
// reported as real rather than "~" noise.
const Alpha = 0.05

// Row is one (benchmark, metric) comparison. Pointer fields are nil when the
// side is absent (a new or removed benchmark) — nil marshals away, keeping
// NaN out of the JSON.
type Row struct {
	Benchmark   string    `json:"benchmark"`
	Metric      string    `json:"metric"`
	OldSamples  []float64 `json:"old_samples,omitempty"`
	NewSamples  []float64 `json:"new_samples,omitempty"`
	OldMedian   *float64  `json:"old_median,omitempty"`
	NewMedian   *float64  `json:"new_median,omitempty"`
	DeltaPct    *float64  `json:"delta_pct,omitempty"`
	PValue      *float64  `json:"p_value,omitempty"`
	Significant bool      `json:"significant"`
}

// Comparison is a full two-file comparison: the -json document cmd/benchcmp
// writes and the sentinel artifact embeds.
type Comparison struct {
	OldFile string `json:"old_file"`
	NewFile string `json:"new_file"`
	Rows    []Row  `json:"rows"`
}

// Compare builds the row set for two parsed sample maps. Row order is stable:
// benchmarks as they appear in oldOrder, then new-only ones, with MetricOrder
// within each benchmark. Rows with only an old side (removed benchmarks) are
// included with a nil NewMedian.
func Compare(oldS, newS map[Key][]float64, oldOrder, newOrder []string) *Comparison {
	benches := append([]string(nil), oldOrder...)
	seen := make(map[string]bool, len(oldOrder))
	for _, b := range oldOrder {
		seen[b] = true
	}
	for _, b := range newOrder {
		if !seen[b] {
			benches = append(benches, b)
		}
	}
	c := &Comparison{}
	for _, b := range benches {
		for _, m := range MetricOrder {
			k := Key{Bench: b, Metric: m}
			o, haveOld := oldS[k]
			n, haveNew := newS[k]
			switch {
			case haveOld && haveNew:
				om, nm := Median(o), Median(n)
				p := MannWhitneyP(o, n)
				delta := 0.0
				if om != 0 {
					delta = (nm - om) / om * 100
				}
				c.Rows = append(c.Rows, Row{
					Benchmark: b, Metric: m,
					OldSamples: o, NewSamples: n,
					OldMedian: ptr(om), NewMedian: ptr(nm),
					DeltaPct: ptr(delta), PValue: ptr(p),
					Significant: p < Alpha,
				})
			case haveNew:
				c.Rows = append(c.Rows, Row{
					Benchmark: b, Metric: m,
					NewSamples: n, NewMedian: ptr(Median(n)),
				})
			case haveOld:
				c.Rows = append(c.Rows, Row{
					Benchmark: b, Metric: m,
					OldSamples: o, OldMedian: ptr(Median(o)),
				})
			}
		}
	}
	return c
}

func ptr(v float64) *float64 { return &v }

// Table renders the comparison as the aligned text table cmd/benchcmp prints:
// medians, delta ("~" when insignificant), p-value.
func (c *Comparison) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %-11s %14s %14s %9s %8s\n", "benchmark", "metric", "old median", "new median", "delta", "p")
	for _, r := range c.Rows {
		switch {
		case r.OldMedian != nil && r.NewMedian != nil:
			ds := "~"
			if r.Significant && r.DeltaPct != nil {
				ds = fmt.Sprintf("%+.1f%%", *r.DeltaPct)
			}
			p := math.NaN()
			if r.PValue != nil {
				p = *r.PValue
			}
			fmt.Fprintf(&b, "%-44s %-11s %14.1f %14.1f %9s %8.3f\n",
				r.Benchmark, r.Metric, *r.OldMedian, *r.NewMedian, ds, p)
		case r.NewMedian != nil:
			fmt.Fprintf(&b, "%-44s %-11s %14s %14.1f %9s %8s\n",
				r.Benchmark, r.Metric, "(new)", *r.NewMedian, "", "")
		case r.OldMedian != nil:
			fmt.Fprintf(&b, "%-44s %-11s %14.1f %14s %9s %8s\n",
				r.Benchmark, r.Metric, *r.OldMedian, "(gone)", "", "")
		}
	}
	return b.String()
}

// WriteJSON writes the comparison as indented JSON (byte-deterministic for a
// given comparison: fixed field order, no NaN, trailing newline).
func (c *Comparison) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteFile dumps the comparison as JSON to path.
func (c *Comparison) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadComparison loads a comparison document written by WriteFile (or
// cmd/benchcmp -json).
func ReadComparison(path string) (*Comparison, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Comparison
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &c, nil
}
